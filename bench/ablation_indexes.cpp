// Ablation: how much of the join-graph win is the tailored Table VI
// B-tree set? Runs Q1/Q3/Q4 with (a) the advisor set, (b) no indexes at
// all (every access path degenerates to TBSCAN).
//
// Set XQJG_BENCH_JSON=<path> to emit the series as JSON
// (BENCH_ablation_indexes.json in CI parlance).
#include <cstdio>
#include <string>

#include "bench/bench_common.h"

using namespace xqjg;
using bench::Workbench;

int main() {
  Workbench& wb = Workbench::Instance();
  std::printf("Ablation — tailored B-trees vs no indexes (join graph "
              "mode)\n\n%-5s %12s %12s %9s\n",
              "Query", "indexed (s)", "no-index (s)", "factor");
  std::string json = "{\"bench\":\"ablation_indexes\",\"queries\":[";
  bool first = true;
  for (const auto& q : api::PaperQueries()) {
    if (q.id == "Q2") continue;  // fallback path: not index-sensitive
    api::RunOptions options;
    options.mode = api::Mode::kJoinGraph;
    options.context_document = q.document;
    options.timeout_seconds = wb.dnf_seconds;
    auto with = wb.processor.Run(q.text, options);
    wb.processor.DropRelationalIndexes();
    auto without = wb.processor.Run(q.text, options);
    auto restore = wb.processor.CreateRelationalIndexes();
    if (!restore.ok() || !with.ok()) return 1;
    const bool dnf = !without.ok();
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"id\":\"%s\",\"indexed_seconds\":%.6f,"
                  "\"noindex_seconds\":%.6f,\"noindex_dnf\":%s}",
                  first ? "" : ",", q.id.c_str(), with.value().seconds,
                  dnf ? 0.0 : without.value().seconds,
                  dnf ? "true" : "false");
    json += buf;
    first = false;
    if (dnf) {
      std::printf("%-5s %12.3f %12s %9s\n", q.id.c_str(),
                  with.value().seconds, "DNF", "-");
      continue;
    }
    std::printf("%-5s %12.3f %12.3f %8.1fx\n", q.id.c_str(),
                with.value().seconds, without.value().seconds,
                without.value().seconds /
                    std::max(1e-9, with.value().seconds));
  }
  json += "]}\n";
  return bench::WriteBenchJson(json) ? 0 : 1;
}
