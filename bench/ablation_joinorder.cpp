// Ablation: cost-based join ordering vs syntactic left-to-right order —
// is the XPath step reordering of §IV-A really the optimizer's doing?
#include <cstdio>

#include "bench/bench_common.h"

using namespace xqjg;
using bench::Workbench;

int main() {
  Workbench& wb = Workbench::Instance();
  std::printf("Ablation — cost-based vs syntactic join order (join graph "
              "mode)\n\n%-5s %14s %14s %9s\n",
              "Query", "cost-based (s)", "syntactic (s)", "factor");
  for (const auto& q : api::PaperQueries()) {
    if (q.id == "Q2") continue;  // DAG fallback: join order not applicable
    api::RunOptions options;
    options.mode = api::Mode::kJoinGraph;
    options.context_document = q.document;
    options.timeout_seconds = wb.dnf_seconds;
    auto smart = wb.processor.Run(q.text, options);
    options.syntactic_join_order = true;
    auto naive = wb.processor.Run(q.text, options);
    if (!smart.ok()) continue;
    if (!naive.ok()) {
      std::printf("%-5s %14.3f %14s %9s\n", q.id.c_str(),
                  smart.value().seconds, "DNF", "-");
      continue;
    }
    std::printf("%-5s %14.3f %14.3f %8.1fx\n", q.id.c_str(),
                smart.value().seconds, naive.value().seconds,
                naive.value().seconds /
                    std::max(1e-9, smart.value().seconds));
  }
  return 0;
}
