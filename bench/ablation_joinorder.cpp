// Ablation: cost-based join ordering vs syntactic left-to-right order —
// is the XPath step reordering of §IV-A really the optimizer's doing?
//
// Set XQJG_BENCH_JSON=<path> to emit the series as JSON
// (BENCH_ablation_joinorder.json in CI parlance).
#include <cstdio>
#include <string>

#include "bench/bench_common.h"

using namespace xqjg;
using bench::Workbench;

int main() {
  Workbench& wb = Workbench::Instance();
  std::printf("Ablation — cost-based vs syntactic join order (join graph "
              "mode)\n\n%-5s %14s %14s %9s\n",
              "Query", "cost-based (s)", "syntactic (s)", "factor");
  std::string json = "{\"bench\":\"ablation_joinorder\",\"queries\":[";
  bool first = true;
  for (const auto& q : api::PaperQueries()) {
    if (q.id == "Q2") continue;  // DAG fallback: join order not applicable
    api::RunOptions options;
    options.mode = api::Mode::kJoinGraph;
    options.context_document = q.document;
    options.timeout_seconds = wb.dnf_seconds;
    auto smart = wb.processor.Run(q.text, options);
    options.syntactic_join_order = true;
    auto naive = wb.processor.Run(q.text, options);
    if (!smart.ok()) continue;
    const bool dnf = !naive.ok();
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"id\":\"%s\",\"costbased_seconds\":%.6f,"
                  "\"syntactic_seconds\":%.6f,\"syntactic_dnf\":%s}",
                  first ? "" : ",", q.id.c_str(), smart.value().seconds,
                  dnf ? 0.0 : naive.value().seconds, dnf ? "true" : "false");
    json += buf;
    first = false;
    if (dnf) {
      std::printf("%-5s %14.3f %14s %9s\n", q.id.c_str(),
                  smart.value().seconds, "DNF", "-");
      continue;
    }
    std::printf("%-5s %14.3f %14.3f %8.1fx\n", q.id.c_str(),
                smart.value().seconds, naive.value().seconds,
                naive.value().seconds /
                    std::max(1e-9, smart.value().seconds));
  }
  json += "]}\n";
  return bench::WriteBenchJson(json) ? 0 : 1;
}
