// Ablation: the rewrite rule phases — ϱ goal only vs the full rule set
// (what does the δ/join phase buy on top of rank consolidation?).
//
// Set XQJG_BENCH_JSON=<path> to emit the counts as JSON
// (BENCH_ablation_rules.json in CI parlance).
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/algebra/dag.h"
#include "src/compiler/compile.h"
#include "src/opt/rules.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"

using namespace xqjg;

int main() {
  std::printf("Ablation — rank phase only vs full isolation (operator "
              "counts)\n\n%-5s %8s | %11s %11s\n",
              "Query", "stacked", "rank-phase", "full");
  std::string json = "{\"bench\":\"ablation_rules\",\"queries\":[";
  bool first = true;
  for (const auto& q : api::PaperQueries()) {
    auto ast = xquery::Parse(q.text);
    xquery::NormalizeOptions nopts;
    nopts.context_document = q.document;
    auto core = xquery::Normalize(ast.value(), nopts);
    auto plan = compiler::CompileQuery(core.value());
    if (!plan.ok()) continue;

    opt::Rewriter rank_only(algebra::ClonePlan(plan.value()));
    if (!rank_only.RunRankPhase().ok()) continue;
    opt::Rewriter full(algebra::ClonePlan(plan.value()));
    if (!full.Run().ok()) continue;

    std::printf("%-5s %8zu | %11zu %11zu\n", q.id.c_str(),
                algebra::CountOps(plan.value()),
                algebra::CountOps(rank_only.root()),
                algebra::CountOps(full.root()));
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"id\":\"%s\",\"stacked_ops\":%zu,"
                  "\"rank_phase_ops\":%zu,\"full_ops\":%zu}",
                  first ? "" : ",", q.id.c_str(),
                  algebra::CountOps(plan.value()),
                  algebra::CountOps(rank_only.root()),
                  algebra::CountOps(full.root()));
    json += buf;
    first = false;
  }
  json += "]}\n";
  return bench::WriteBenchJson(json) ? 0 : 1;
}
