// Shared setup for the paper-reproduction benchmarks: builds the scaled
// XMark and DBLP instances once, loads all storage layouts, and creates
// the Table VI relational indexes plus the native XMLPATTERN family.
//
// Environment knobs:
//   XQJG_XMARK_SCALE  (default 1.0;  paper's 110 MB instance ~ 100)
//   XQJG_DBLP_PUBS    (default 4000; paper's DBLP ~ 1M publications)
//   XQJG_DNF_SECONDS  (default 30;   the paper's cutoff was 20 hours)
#ifndef XQJG_BENCH_BENCH_COMMON_H_
#define XQJG_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/api/paper_queries.h"
#include "src/api/processor.h"
#include "src/data/dblp.h"
#include "src/data/xmark.h"
#include "src/engine/database.h"

namespace xqjg::bench {

inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : fallback;
}

/// Writes `json` to the path in XQJG_BENCH_JSON (no-op when unset — CI
/// sets it to collect the perf-trajectory artifacts). Returns false only
/// when the path was requested but could not be written.
inline bool WriteBenchJson(const std::string& json) {
  const char* path = std::getenv("XQJG_BENCH_JSON");
  if (!path) return true;
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
  return true;
}

/// Storage-layout microbench: one name-equality scan over the doc
/// relation through the three access paths the migration compares —
///   row       boxed per-cell Value materialization (the retired row
///             layout, reproduced via Column().GetValue())
///   columnar  a typed plain-string column (post-migration, no dict)
///   dict      the dictionary-encoded column via one code compare per row
/// Seconds are totals over `iters` full passes (pick iters so the scan
/// runs long enough to time); all three paths must count the same
/// matches.
struct StorageScanResult {
  double row_seconds = 0;
  double columnar_seconds = 0;
  double dict_seconds = 0;
  long long matches = 0;
  int iters = 0;
};

inline StorageScanResult MeasureNameScan(const engine::Database& db,
                                         const std::string& needle,
                                         int iters) {
  using Clock = std::chrono::steady_clock;
  StorageScanResult out;
  out.iters = iters;
  const int col = db.ColumnIndex("name");
  const int64_t n = db.row_count();
  const ValueColumn& dict_col = db.Column(col);
  // NULL rows carry a don't-care code 0, so every lane must consult the
  // mask (nullptr for the null-free name column — a dead branch then).
  const uint8_t* nulls = dict_col.null_mask();
  // Plain-string copy of the column: the "typed but not dict" layout.
  std::vector<std::string> plain;
  plain.reserve(static_cast<size_t>(n));
  for (int64_t pre = 0; pre < n; ++pre) {
    const auto r = static_cast<size_t>(pre);
    plain.push_back((nulls && nulls[r]) ? std::string()
                                        : dict_col.StringAt(r));
  }
  long long row_matches = 0, col_matches = 0, dict_matches = 0;
  auto t0 = Clock::now();
  for (int it = 0; it < iters; ++it) {
    for (int64_t pre = 0; pre < n; ++pre) {
      // Boxed lane: one materialized Value per cell — the retired row
      // layout's cost model, reproduced over the typed column.
      const Value v = dict_col.GetValue(static_cast<size_t>(pre));
      if (!v.is_null() && v.AsString() == needle) ++row_matches;
    }
  }
  auto t1 = Clock::now();
  for (int it = 0; it < iters; ++it) {
    if (nulls) {
      for (int64_t pre = 0; pre < n; ++pre) {
        const auto r = static_cast<size_t>(pre);
        if (!nulls[r] && plain[r] == needle) ++col_matches;
      }
    } else {
      for (int64_t pre = 0; pre < n; ++pre) {
        if (plain[static_cast<size_t>(pre)] == needle) ++col_matches;
      }
    }
  }
  auto t2 = Clock::now();
  const int64_t code = dict_col.DictCode(needle);
  const auto& codes = dict_col.dict_codes();
  for (int it = 0; it < iters; ++it) {
    if (code < 0) continue;  // absent: zero matches without touching rows
    const auto c = static_cast<uint32_t>(code);
    if (nulls) {
      for (int64_t pre = 0; pre < n; ++pre) {
        const auto r = static_cast<size_t>(pre);
        if (!nulls[r] && codes[r] == c) ++dict_matches;
      }
    } else {
      for (int64_t pre = 0; pre < n; ++pre) {
        if (codes[static_cast<size_t>(pre)] == c) ++dict_matches;
      }
    }
  }
  auto t3 = Clock::now();
  auto secs = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  };
  out.row_seconds = secs(t0, t1);
  out.columnar_seconds = secs(t1, t2);
  out.dict_seconds = secs(t2, t3);
  if (row_matches != col_matches || row_matches != dict_matches) {
    std::fprintf(stderr, "storage scan paths disagree: %lld/%lld/%lld\n",
                 row_matches, col_matches, dict_matches);
    std::abort();
  }
  out.matches = iters > 0 ? row_matches / iters : 0;
  return out;
}

struct Workbench {
  api::XQueryProcessor processor;
  double dnf_seconds;
  int64_t xmark_nodes = 0;
  int64_t dblp_nodes = 0;

  static Workbench& Instance() {
    static Workbench bench;
    return bench;
  }

 private:
  Workbench() {
    dnf_seconds = EnvDouble("XQJG_DNF_SECONDS", 30.0);
    data::XmarkOptions xmark;
    xmark.scale = EnvDouble("XQJG_XMARK_SCALE", 1.0);
    data::DblpOptions dblp;
    dblp.publications =
        static_cast<int>(EnvDouble("XQJG_DBLP_PUBS", 4000.0));
    std::string auction = data::GenerateXmark(xmark);
    std::string bibliography = data::GenerateDblp(dblp);
    auto check = [](const Status& st, const char* what) {
      if (!st.ok()) {
        std::fprintf(stderr, "bench setup failed (%s): %s\n", what,
                     st.ToString().c_str());
        std::abort();
      }
    };
    check(processor.LoadDocument("auction.xml", auction,
                                 api::XmarkSegmentTags()),
          "auction.xml");
    check(processor.LoadDocument("dblp.xml", bibliography,
                                 api::DblpSegmentTags()),
          "dblp.xml");
    check(processor.CreateRelationalIndexes(), "Table VI indexes");
    for (auto& pattern : api::PaperPatternIndexes()) {
      processor.CreatePatternIndex(pattern);
    }
    xmark_nodes = 0;
    dblp_nodes = 0;
    const auto& doc = processor.doc_table();
    for (int64_t pre = 0; pre < doc.row_count(); ++pre) {
      if (doc.Root(pre) == 0) ++xmark_nodes;
      else ++dblp_nodes;
    }
  }
};

}  // namespace xqjg::bench

#endif  // XQJG_BENCH_BENCH_COMMON_H_
