// Shared setup for the paper-reproduction benchmarks: builds the scaled
// XMark and DBLP instances once, loads all storage layouts, and creates
// the Table VI relational indexes plus the native XMLPATTERN family.
//
// Environment knobs:
//   XQJG_XMARK_SCALE  (default 1.0;  paper's 110 MB instance ~ 100)
//   XQJG_DBLP_PUBS    (default 4000; paper's DBLP ~ 1M publications)
//   XQJG_DNF_SECONDS  (default 30;   the paper's cutoff was 20 hours)
#ifndef XQJG_BENCH_BENCH_COMMON_H_
#define XQJG_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "src/api/paper_queries.h"
#include "src/api/processor.h"
#include "src/data/dblp.h"
#include "src/data/xmark.h"

namespace xqjg::bench {

inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : fallback;
}

/// Writes `json` to the path in XQJG_BENCH_JSON (no-op when unset — CI
/// sets it to collect the perf-trajectory artifacts). Returns false only
/// when the path was requested but could not be written.
inline bool WriteBenchJson(const std::string& json) {
  const char* path = std::getenv("XQJG_BENCH_JSON");
  if (!path) return true;
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
  return true;
}

struct Workbench {
  api::XQueryProcessor processor;
  double dnf_seconds;
  int64_t xmark_nodes = 0;
  int64_t dblp_nodes = 0;

  static Workbench& Instance() {
    static Workbench bench;
    return bench;
  }

 private:
  Workbench() {
    dnf_seconds = EnvDouble("XQJG_DNF_SECONDS", 30.0);
    data::XmarkOptions xmark;
    xmark.scale = EnvDouble("XQJG_XMARK_SCALE", 1.0);
    data::DblpOptions dblp;
    dblp.publications =
        static_cast<int>(EnvDouble("XQJG_DBLP_PUBS", 4000.0));
    std::string auction = data::GenerateXmark(xmark);
    std::string bibliography = data::GenerateDblp(dblp);
    auto check = [](const Status& st, const char* what) {
      if (!st.ok()) {
        std::fprintf(stderr, "bench setup failed (%s): %s\n", what,
                     st.ToString().c_str());
        std::abort();
      }
    };
    check(processor.LoadDocument("auction.xml", auction,
                                 api::XmarkSegmentTags()),
          "auction.xml");
    check(processor.LoadDocument("dblp.xml", bibliography,
                                 api::DblpSegmentTags()),
          "dblp.xml");
    check(processor.CreateRelationalIndexes(), "Table VI indexes");
    for (auto& pattern : api::PaperPatternIndexes()) {
      processor.CreatePatternIndex(pattern);
    }
    xmark_nodes = 0;
    dblp_nodes = 0;
    const auto& doc = processor.doc_table();
    for (int64_t pre = 0; pre < doc.row_count(); ++pre) {
      if (doc.Root(pre) == 0) ++xmark_nodes;
      else ++dblp_nodes;
    }
  }
};

}  // namespace xqjg::bench

#endif  // XQJG_BENCH_BENCH_COMMON_H_
