// Renders paper Fig. 2: the pre/size/level encoding of the auction.xml
// snippet, plus bulk encode/serialize throughput for the benchmark
// instance size.
#include <chrono>
#include <cstdio>

#include "src/data/xmark.h"
#include "src/common/str.h"
#include "src/xml/parser.h"
#include "src/xml/serializer.h"

using namespace xqjg;

int main() {
  const char* snippet =
      "<open_auction id=\"1\"><initial>15</initial>"
      "<bidder><time>18:43</time><increase>4.20</increase></bidder>"
      "</open_auction>";
  xml::DocTable table;
  if (!xml::LoadDocument(&table, "auction.xml", snippet).ok()) return 1;
  std::printf("Fig. 2 — encoding of the auction.xml snippet\n\n");
  std::printf("%4s %5s %6s %5s %-13s %-8s %s\n", "pre", "size", "level",
              "kind", "name", "value", "data");
  for (int64_t pre = 0; pre < table.row_count(); ++pre) {
    xml::DocRow row = table.Row(pre);
    std::printf("%4lld %5lld %6lld %5s %-13s %-8s %s\n",
                static_cast<long long>(row.pre),
                static_cast<long long>(row.size),
                static_cast<long long>(row.level),
                xml::NodeKindToString(row.kind), row.name.c_str(),
                row.value.c_str(),
                row.has_data ? xqjg::FormatDecimal(row.data).c_str() : "");
  }
  // Bulk throughput.
  std::string big = data::GenerateXmark({});
  auto start = std::chrono::steady_clock::now();
  xml::DocTable bulk;
  if (!xml::LoadDocument(&bulk, "auction.xml", big).ok()) return 1;
  double encode_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  start = std::chrono::steady_clock::now();
  std::string round_trip = xml::SerializeSubtree(bulk, 0);
  double serialize_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf("\nbulk: %lld nodes encoded in %.3fs (%.1f MB/s), "
              "serialized in %.3fs\n",
              static_cast<long long>(bulk.row_count()), encode_s,
              static_cast<double>(big.size()) / 1e6 / encode_s, serialize_s);
  return 0;
}
