// Reproduces Figs 4 and 7 (and the §II-D discussion): the stacked plan's
// operator profile versus the isolated plan, per query — operator census,
// blocking-operator counts, and the full Q1 plans.
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/algebra/dag.h"
#include "src/algebra/printer.h"
#include "src/compiler/compile.h"
#include "src/opt/isolate.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"

using namespace xqjg;

int main() {
  std::printf("Fig. 4 / Fig. 7 — stacked vs isolated plan shapes\n\n");
  std::printf("%-5s %8s %8s | %7s %7s %7s | %7s %7s %7s\n", "Query",
              "ops-in", "ops-out", "dist-in", "rank-in", "rowid-in",
              "dist-out", "rank-out", "rowid-out");
  std::string json = "{\"bench\":\"plan_shapes\",\"queries\":[";
  bool first = true;
  for (const auto& q : api::PaperQueries()) {
    auto ast = xquery::Parse(q.text);
    xquery::NormalizeOptions nopts;
    nopts.context_document = q.document;
    auto core = xquery::Normalize(ast.value(), nopts);
    auto plan = compiler::CompileQuery(core.value());
    if (!plan.ok()) continue;
    auto iso = opt::Isolate(plan.value());
    if (!iso.ok()) continue;
    using algebra::CountOps;
    using algebra::OpKind;
    std::printf("%-5s %8zu %8zu | %7zu %7zu %7zu | %7zu %7zu %7zu\n",
                q.id.c_str(), iso.value().ops_before, iso.value().ops_after,
                CountOps(plan.value(), OpKind::kDistinct),
                CountOps(plan.value(), OpKind::kRank),
                CountOps(plan.value(), OpKind::kRowId),
                CountOps(iso.value().isolated, OpKind::kDistinct),
                CountOps(iso.value().isolated, OpKind::kRank),
                CountOps(iso.value().isolated, OpKind::kRowId));
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"id\":\"%s\",\"ops_before\":%zu,\"ops_after\":%zu,"
        "\"distinct_before\":%zu,\"rank_before\":%zu,\"rowid_before\":%zu,"
        "\"distinct_after\":%zu,\"rank_after\":%zu,\"rowid_after\":%zu}",
        first ? "" : ",", q.id.c_str(), iso.value().ops_before,
        iso.value().ops_after, CountOps(plan.value(), OpKind::kDistinct),
        CountOps(plan.value(), OpKind::kRank),
        CountOps(plan.value(), OpKind::kRowId),
        CountOps(iso.value().isolated, OpKind::kDistinct),
        CountOps(iso.value().isolated, OpKind::kRank),
        CountOps(iso.value().isolated, OpKind::kRowId));
    json += buf;
    first = false;
  }
  json += "]}\n";
  // Full plan render for Q1 (the figures' subject).
  const auto& q1 = api::PaperQueries()[0];
  auto ast = xquery::Parse(q1.text);
  xquery::NormalizeOptions nopts;
  nopts.context_document = q1.document;
  auto core = xquery::Normalize(ast.value(), nopts);
  auto plan = compiler::CompileQuery(core.value());
  std::printf("\n--- Fig. 4: initial stacked plan for Q1 ---\n%s",
              algebra::PrintPlan(plan.value()).c_str());
  auto iso = opt::Isolate(plan.value());
  std::printf("\n--- Fig. 7: isolated plan for Q1 ---\n%s",
              algebra::PrintPlan(iso.value().isolated).c_str());
  std::printf("\nrule applications:\n");
  for (const auto& [rule, count] : iso.value().rule_counts) {
    std::printf("  %-22s %d\n", rule.c_str(), count);
  }
  return bench::WriteBenchJson(json) ? 0 : 1;
}
