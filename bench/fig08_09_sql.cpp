// Reproduces Figs 8 and 9: the SQL encodings of Q1's and Q2's join graphs
// (for Q2 the paper shows a 12-fold self-join; our extraction covers the
// extractable queries and reports residuals honestly).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/compiler/compile.h"
#include "src/opt/isolate.h"
#include "src/opt/join_graph.h"
#include "src/sql/sqlgen.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"

using namespace xqjg;

int main() {
  for (const auto& q : api::PaperQueries()) {
    auto ast = xquery::Parse(q.text);
    xquery::NormalizeOptions nopts;
    nopts.context_document = q.document;
    auto core = xquery::Normalize(ast.value(), nopts);
    auto plan = compiler::CompileQuery(core.value());
    auto iso = opt::Isolate(plan.value());
    std::printf("=== %s ===\n", q.id.c_str());
    auto graph = opt::ExtractJoinGraph(iso.value().isolated);
    if (graph.ok()) {
      std::printf("%s\n\n", sql::EmitJoinGraphSql(graph.value()).c_str());
    } else {
      std::printf("join graph not fully extractable (%s); the shipped SQL "
                  "falls back to the CTE form\n\n",
                  graph.status().ToString().c_str());
    }
  }
  return 0;
}
