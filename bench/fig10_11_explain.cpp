// Reproduces Figs 10 and 11: the optimizer's execution plans for Q1 and
// Q2-family queries — look for path stitching (index scans resuming steps
// from covering key columns), step reordering, and axis reversal (a scan
// starting at a value index, resolving its context afterwards).
#include <cstdio>

#include "bench/bench_common.h"

using namespace xqjg;
using bench::Workbench;

int main() {
  Workbench& wb = Workbench::Instance();
  for (const auto& q : api::PaperQueries()) {
    api::RunOptions options;
    options.mode = api::Mode::kJoinGraph;
    options.context_document = q.document;
    options.timeout_seconds = wb.dnf_seconds;
    auto result = wb.processor.Run(q.text, options);
    std::printf("=== %s ===\n", q.id.c_str());
    if (!result.ok()) {
      std::printf("(%s)\n\n", result.status().ToString().c_str());
      continue;
    }
    if (result.value().explain.empty()) {
      std::printf("(executed through the DAG fallback — no join-tree "
                  "explain)\n\n");
      continue;
    }
    std::printf("%s\n", result.value().explain.c_str());
  }
  return 0;
}
