// Prepared-query throughput: what the prepare/execute split buys.
//
// For each paper query (join-graph mode, columnar executors) this bench
// compares three serving strategies:
//   cold Run       — plan cache cleared before every call, so each request
//                    pays parse + normalize + compile + isolate + plan;
//   cached Prepare+Execute — one compilation, then repeated executions of
//                    the shared immutable PreparedQuery (the paper's
//                    "ship the join graph once" architecture);
//   concurrent     — T threads executing the same PreparedQuery at once
//                    (const execution layers, per-execution state only).
//
// Set XQJG_BENCH_JSON=<path> to emit the numbers as JSON — CI stores the
// file as the BENCH_prepared.json perf-trajectory artifact.
//
// Environment knobs (plus the bench_common ones):
//   XQJG_BENCH_EXEC_ITERS  (default 3)  executions averaged per strategy
//   XQJG_BENCH_THREADS     (default 4)  concurrent sessions
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"

using namespace xqjg;
using bench::Workbench;

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct QueryNumbers {
  std::string id;
  size_t rows = 0;
  double compile_seconds = 0;
  double cold_run_seconds = 0;       // avg, cache cleared each call
  double warm_run_seconds = 0;       // avg, cache hit each call
  double cached_execute_seconds = 0; // avg ExecuteAll on shared prepared
  int threads = 0;
  int concurrent_execs = 0;
  double concurrent_wall_seconds = 0;
  double concurrent_qps = 0;
  double single_qps = 0;
  bool failed = false;
};

}  // namespace

int main() {
  Workbench& wb = Workbench::Instance();
  const int iters =
      static_cast<int>(bench::EnvDouble("XQJG_BENCH_EXEC_ITERS", 3));
  const int threads =
      static_cast<int>(bench::EnvDouble("XQJG_BENCH_THREADS", 4));

  std::printf(
      "Prepared-query throughput — cold Run vs cached Prepare+Execute vs\n"
      "%d concurrent sessions sharing one PreparedQuery (join-graph mode,\n"
      "columnar executors; %d executions averaged per strategy;\n"
      "%u hardware threads — scaling tops out there)\n\n",
      threads, iters, std::thread::hardware_concurrency());
  std::printf("%-5s %8s | %10s %10s %10s %8s | %10s %8s\n", "Query", "rows",
              "cold (s)", "warm (s)", "exec (s)", "amort", "conc qps",
              "scaling");
  std::printf("%.*s\n", 92,
              "--------------------------------------------------------------"
              "------------------------------");

  std::vector<QueryNumbers> numbers;
  for (const auto& q : api::PaperQueries()) {
    QueryNumbers n;
    n.id = q.id;
    n.threads = threads;

    api::PrepareOptions prep;
    prep.mode = api::Mode::kJoinGraph;
    prep.context_document = q.document;
    api::ExecuteOptions exec;
    exec.limits.timeout_seconds = wb.dnf_seconds;
    exec.use_columnar = true;
    api::RunOptions run;
    run.mode = api::Mode::kJoinGraph;
    run.context_document = q.document;
    run.timeout_seconds = wb.dnf_seconds;
    run.use_columnar = true;

    // Cold: every request recompiles (cache cleared in between).
    for (int i = 0; i < iters; ++i) {
      wb.processor.ClearPlanCache();
      const double started = Now();
      auto result = wb.processor.Run(q.text, run);
      if (!result.ok()) {
        std::fprintf(stderr, "%s cold: %s\n", q.id.c_str(),
                     result.status().ToString().c_str());
        n.failed = true;
        break;
      }
      n.cold_run_seconds += Now() - started;
      n.rows = result.value().result_count();
    }
    if (n.failed) {
      numbers.push_back(n);
      continue;
    }
    n.cold_run_seconds /= iters;

    // Cached: Prepare once, execute the shared artifact.
    auto prepared = wb.processor.Prepare(q.text, prep);
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s prepare: %s\n", q.id.c_str(),
                   prepared.status().ToString().c_str());
      n.failed = true;
      numbers.push_back(n);
      continue;
    }
    n.compile_seconds = prepared.value()->compile_seconds;
    for (int i = 0; i < iters && !n.failed; ++i) {
      const double started = Now();
      auto result = wb.processor.ExecuteAll(prepared.value(), exec);
      if (!result.ok()) n.failed = true;
      n.cached_execute_seconds += Now() - started;
    }
    n.cached_execute_seconds /= iters;

    // Warm Run: the shim hitting the plan cache.
    for (int i = 0; i < iters && !n.failed; ++i) {
      const double started = Now();
      auto result = wb.processor.Run(q.text, run);
      if (!result.ok()) n.failed = true;
      n.warm_run_seconds += Now() - started;
    }
    n.warm_run_seconds /= iters;
    if (n.failed) {
      // Don't average partial sums or report throughput for a failed
      // query — a bare "failed" row keeps the JSON trajectory honest.
      std::fprintf(stderr, "%s: cached/warm execution failed\n",
                   q.id.c_str());
      std::printf("%-5s %8zu | %10s\n", n.id.c_str(), n.rows, "FAILED");
      numbers.push_back(n);
      continue;
    }

    // Concurrent sessions: T threads × iters executions each.
    n.concurrent_execs = threads * iters;
    {
      std::atomic<bool> concurrent_failed{false};
      std::vector<std::thread> pool;
      const double started = Now();
      for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&]() {
          for (int i = 0; i < iters; ++i) {
            auto result = wb.processor.ExecuteAll(prepared.value(), exec);
            if (!result.ok()) concurrent_failed.store(true);
          }
        });
      }
      for (auto& thread : pool) thread.join();
      n.concurrent_wall_seconds = Now() - started;
      if (concurrent_failed.load()) n.failed = true;
    }
    if (n.failed) {
      std::fprintf(stderr, "%s: concurrent execution failed\n", q.id.c_str());
      std::printf("%-5s %8zu | %10s\n", n.id.c_str(), n.rows, "FAILED");
      numbers.push_back(n);
      continue;
    }
    n.concurrent_qps = n.concurrent_execs / n.concurrent_wall_seconds;
    n.single_qps = 1.0 / n.cached_execute_seconds;

    std::printf("%-5s %8zu | %10.4f %10.4f %10.4f %7.2fx | %10.2f %7.2fx\n",
                n.id.c_str(), n.rows, n.cold_run_seconds, n.warm_run_seconds,
                n.cached_execute_seconds,
                n.cold_run_seconds / n.cached_execute_seconds,
                n.concurrent_qps, n.concurrent_qps / n.single_qps);
    numbers.push_back(n);
  }

  // Parameterized-execute axis: one prepared statement with a `$person`
  // marker serves a whole literal family (plan-cache hits + per-Execute
  // bindings), against serving the same family as N distinct literal
  // query texts (one compilation per literal — the pre-parameter cost).
  struct ParamAxis {
    int bindings = 0;
    double literal_total_seconds = 0;  // N distinct texts, each compiled
    size_t literal_cache_entries = 0;
    double param_compile_seconds = 0;  // the one compilation
    double param_total_seconds = 0;    // N binds off the cached plan
    size_t param_cache_entries = 0;
    int64_t param_cache_hits = 0;
    bool failed = false;
  } axis;
  axis.bindings = 12;
  {
    const std::string param_text =
        "declare variable $person external; "
        "/site/people/person[@id = $person]/name/text()";
    api::PrepareOptions prep;
    prep.mode = api::Mode::kJoinGraph;
    prep.context_document = "auction.xml";
    api::RunOptions run;
    run.mode = api::Mode::kJoinGraph;
    run.context_document = "auction.xml";
    run.timeout_seconds = wb.dnf_seconds;
    run.use_columnar = true;

    // Literal family: every binding is a distinct query text.
    wb.processor.ClearPlanCache();
    std::vector<std::vector<std::string>> literal_items;
    const double lit_started = Now();
    for (int i = 0; i < axis.bindings && !axis.failed; ++i) {
      auto result = wb.processor.Run(
          "/site/people/person[@id = \"person" + std::to_string(i) +
              "\"]/name/text()",
          run);
      if (!result.ok()) {
        axis.failed = true;
        break;
      }
      literal_items.push_back(std::move(result.value().items));
    }
    axis.literal_total_seconds = Now() - lit_started;
    axis.literal_cache_entries = wb.processor.plan_cache_stats().entries;

    // Parameterized family: one text, one plan, N bindings.
    wb.processor.ClearPlanCache();
    const auto stats_before = wb.processor.plan_cache_stats();
    const double param_started = Now();
    auto prepared = wb.processor.Prepare(param_text, prep);
    if (!prepared.ok()) axis.failed = true;
    for (int i = 0; i < axis.bindings && !axis.failed; ++i) {
      // Re-Prepare per request, as a query service would: all hits.
      auto again = wb.processor.Prepare(param_text, prep);
      if (!again.ok() || again.value().get() != prepared.value().get()) {
        axis.failed = true;
        break;
      }
      api::ExecuteOptions exec;
      exec.limits.timeout_seconds = wb.dnf_seconds;
      exec.use_columnar = true;
      exec.parameters["person"] = Value::String("person" + std::to_string(i));
      auto result = wb.processor.ExecuteAll(again.value(), exec);
      if (!result.ok() ||
          result.value().items != literal_items[static_cast<size_t>(i)]) {
        axis.failed = true;  // differential: bindings must match literals
        break;
      }
    }
    axis.param_total_seconds = Now() - param_started;
    if (!axis.failed) {
      axis.param_compile_seconds = prepared.value()->compile_seconds;
    }
    const auto stats_after = wb.processor.plan_cache_stats();
    axis.param_cache_entries = stats_after.entries;
    axis.param_cache_hits = stats_after.hits - stats_before.hits;

    if (axis.failed) {
      std::printf("\nparameterized axis: FAILED\n");
    } else {
      std::printf(
          "\nparameterized: %d bindings via one cached plan in %.4fs "
          "(%zu cache entr%s, %lld hits) vs %.4fs as %zu literal plans "
          "— %.2fx\n",
          axis.bindings, axis.param_total_seconds, axis.param_cache_entries,
          axis.param_cache_entries == 1 ? "y" : "ies",
          static_cast<long long>(axis.param_cache_hits),
          axis.literal_total_seconds, axis.literal_cache_entries,
          axis.param_total_seconds > 0
              ? axis.literal_total_seconds / axis.param_total_seconds
              : 0.0);
    }
  }

  bool all_amortized = true;
  for (const auto& n : numbers) {
    if (n.failed || n.cached_execute_seconds >= n.cold_run_seconds) {
      all_amortized = false;
    }
  }
  if (axis.failed || axis.param_cache_entries != 1 ||
      axis.param_cache_hits < axis.bindings) {
    all_amortized = false;
  }
  std::printf("\n%s\n", all_amortized
                            ? "cached Prepare+Execute beat cold Run on "
                              "every query"
                            : "WARNING: some query did not amortize "
                              "(or failed)");

  std::string json = "{\"bench\":\"prepared_throughput\",\"exec_iters\":" +
                     std::to_string(numbers.empty() ? 0 : iters) +
                     ",\"queries\":[";
  for (size_t i = 0; i < numbers.size(); ++i) {
    const QueryNumbers& n = numbers[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"id\":\"%s\",\"rows\":%zu,\"failed\":%s,"
        "\"compile_seconds\":%.6f,\"cold_run_seconds\":%.6f,"
        "\"warm_run_seconds\":%.6f,\"cached_execute_seconds\":%.6f,"
        "\"threads\":%d,\"concurrent_execs\":%d,"
        "\"concurrent_wall_seconds\":%.6f,\"concurrent_qps\":%.3f,"
        "\"single_thread_qps\":%.3f}",
        i ? "," : "", n.id.c_str(), n.rows, n.failed ? "true" : "false",
        n.compile_seconds, n.cold_run_seconds, n.warm_run_seconds,
        n.cached_execute_seconds, n.threads, n.concurrent_execs,
        n.concurrent_wall_seconds, n.concurrent_qps, n.single_qps);
    json += buf;
  }
  json += "],\"parameterized\":";
  {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"bindings\":%d,\"failed\":%s,"
        "\"literal_total_seconds\":%.6f,\"literal_cache_entries\":%zu,"
        "\"param_compile_seconds\":%.6f,\"param_total_seconds\":%.6f,"
        "\"param_cache_entries\":%zu,\"param_cache_hits\":%lld}",
        axis.bindings, axis.failed ? "true" : "false",
        axis.literal_total_seconds, axis.literal_cache_entries,
        axis.param_compile_seconds, axis.param_total_seconds,
        axis.param_cache_entries,
        static_cast<long long>(axis.param_cache_hits));
    json += buf;
  }
  json += "}\n";
  if (!bench::WriteBenchJson(json)) return 1;
  return all_amortized ? 0 : 2;
}
