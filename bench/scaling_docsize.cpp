// Scaling sweep: join graph vs native-whole execution of Q4 (raw path
// traversal, the paper's "more than 20-fold advantage" case) across XMark
// scale factors. Note an honest substrate difference: the paper's XSCAN
// pays per-page I/O over a 110 MB on-disk instance, while our native DOM
// traversal is a pure in-memory pointer walk — so native-whole stays fast
// here and the series primarily demonstrates that *both* engines scale
// linearly in document size (no superlinear blowup in the join graph
// path).
//
// Set XQJG_BENCH_JSON=<path> to additionally emit the series as JSON
// (BENCH_scaling.json in CI parlance) for the perf trajectory.
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/api/paper_queries.h"
#include "src/api/processor.h"
#include "src/data/xmark.h"

using namespace xqjg;

int main() {
  std::printf("Scaling — Q4 (//closed_auction/price/text()) across XMark "
              "scales (row vs columnar join-graph execution, plus the\n"
              "storage row/columnar/dict name-scan axis, ns per row)\n\n"
              "%-7s %10s %14s %14s %8s %14s %8s | %8s %8s %8s\n",
              "scale", "nodes", "joingraph (s)", "jg-col (s)", "col x",
              "native (s)", "factor", "row ns", "col ns", "dict ns");
  std::string json = "{\"bench\":\"scaling_docsize\",\"points\":[";
  bool first = true;
  for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    api::XQueryProcessor processor;
    data::XmarkOptions options;
    options.scale = scale;
    if (!processor
             .LoadDocument("auction.xml", data::GenerateXmark(options),
                           api::XmarkSegmentTags())
             .ok()) {
      return 1;
    }
    if (!processor.CreateRelationalIndexes().ok()) return 1;
    const auto& q4 = api::PaperQueries()[3];
    api::RunOptions run;
    run.context_document = q4.document;
    run.timeout_seconds = 60;
    run.mode = api::Mode::kJoinGraph;
    auto jg = processor.Run(q4.text, run);
    run.use_columnar = true;
    auto jg_col = processor.Run(q4.text, run);
    run.use_columnar = false;
    run.mode = api::Mode::kNativeWhole;
    auto native = processor.Run(q4.text, run);
    if (!jg.ok() || !jg_col.ok() || !native.ok()) return 1;
    if (jg.value().items != jg_col.value().items) {
      std::fprintf(stderr, "row and columnar join-graph results differ!\n");
      return 1;
    }
    const long long nodes =
        static_cast<long long>(processor.doc_table().row_count());
    // Storage axis: the same name-equality scan through boxed per-cell
    // Values, a typed string column, and the dictionary codes.
    const int iters =
        static_cast<int>(std::max<long long>(2, 8000000 / (nodes + 1)));
    bench::StorageScanResult scan =
        bench::MeasureNameScan(*processor.database(), "bidder", iters);
    const double per_row = 1e9 / static_cast<double>(nodes * scan.iters);
    std::printf(
        "%-7.2f %10lld %14.3f %14.3f %7.1fx %14.3f %7.1fx | %8.2f %8.2f "
        "%8.2f\n",
        scale, nodes, jg.value().seconds, jg_col.value().seconds,
        jg.value().seconds / std::max(1e-9, jg_col.value().seconds),
        native.value().seconds,
        native.value().seconds / std::max(1e-9, jg.value().seconds),
        scan.row_seconds * per_row, scan.columnar_seconds * per_row,
        scan.dict_seconds * per_row);
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"scale\":%.2f,\"nodes\":%lld,\"rows\":%zu,"
                  "\"joingraph_row_seconds\":%.6f,"
                  "\"joingraph_columnar_seconds\":%.6f,"
                  "\"native_whole_seconds\":%.6f,"
                  "\"storage_scan_ns_per_row\":{\"row\":%.3f,"
                  "\"columnar\":%.3f,\"dict\":%.3f}}",
                  first ? "" : ",", scale, nodes,
                  jg.value().result_count(), jg.value().seconds,
                  jg_col.value().seconds, native.value().seconds,
                  scan.row_seconds * per_row,
                  scan.columnar_seconds * per_row,
                  scan.dict_seconds * per_row);
    json += buf;
    first = false;
  }
  json += "]}\n";
  return bench::WriteBenchJson(json) ? 0 : 1;
}
