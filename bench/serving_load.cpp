// Serving-layer load driver: throughput, tail latency, and overload
// shedding for the query server — over real TCP on loopback.
//
// Phase 1 (closed loop): K client threads, each with its own connection
// and session, drive a mixed workload for T seconds — the auction-corpus
// paper queries (join-graph mode, plus Q1 through the native lane, which
// always admits as heavy) and a parameterized literal family
// targeting D small XMark documents under a zipfian document popularity
// (doc_0 hot, the tail cold). Each client prepares its statements once
// and then loops execute + fetch-all + close; per-request wall latency
// is recorded under the admission class the server assigned at PREPARE.
//
// Phase 2 (overload): a second server configured with one slot and a
// near-zero admission queue per class, hammered by more clients than
// slots. The point of the measurement: the shed rate climbs, but the
// p99 of the *admitted* requests stays bounded — load shedding converts
// "everything times out" into "some requests get a fast BUSY and the
// rest stay fast".
//
// Phase 3 (open loop): the same tiny server under scheduled arrivals.
// Closed-loop clients self-throttle — a slow reply delays the next
// request, so the committed overload qps understates shed capacity.
// Here arrivals are a fixed Poisson schedule at a target rate consumed
// by a worker pool, and each request's latency is measured from its
// SCHEDULED arrival, so time spent waiting for a free worker counts.
//
// Phase 4 (streaming memory): a server with a spill-forcing session
// budget executes one wide stacked query; the gauge of record is
// SessionManagerStats::retained_cursor_bytes while the cursor is open
// and undrained — the O(batch)-not-O(result) serving observable.
//
// Set XQJG_BENCH_JSON=<path> to emit BENCH_serving.json.
//
// Environment knobs:
//   XQJG_SERVING_SECONDS  (default 5)  closed-loop measure seconds
//   XQJG_SERVING_CLIENTS  (default 4)  closed-loop client threads
//   XQJG_SERVING_SCALE    (default 0.5) XMark scale of the main corpus
//   XQJG_SERVING_OPEN_QPS (default 400) open-loop target arrival rate
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/api/paper_queries.h"
#include "src/api/processor.h"
#include "src/data/xmark.h"
#include "src/server/client.h"
#include "src/server/server.h"

using namespace xqjg;

namespace {

constexpr int kZipfDocs = 4;
const char kParamQuery[] =
    "declare variable $minprice as xs:decimal external; "
    "//closed_auction[price > $minprice]/price/text()";

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct LatencyTrack {
  std::vector<double> by_class[server::kNumQueryClasses];
  std::map<std::string, std::vector<double>> by_query;
  int64_t shed = 0;
  int64_t errors = 0;
};

double Percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(p * (sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

std::string ClassJson(std::vector<double> ms) {
  std::sort(ms.begin(), ms.end());
  std::string out = "{";
  out += "\"count\":" + std::to_string(ms.size());
  out += ",\"p50_ms\":" + std::to_string(Percentile(ms, 0.5));
  out += ",\"p99_ms\":" + std::to_string(Percentile(ms, 0.99));
  out += "}";
  return out;
}

/// One statement a client cycles through.
struct WorkItem {
  std::string label;
  uint32_t statement_id = 0;
  uint8_t query_class = 0;
  bool parameterized = false;
  int weight = 1;  ///< relative pick frequency (zipfian doc popularity)
};

/// Prepares the mixed workload on one session: the auction-corpus paper
/// queries (join-graph mode; Q2 is the heavy join), Q1 through the
/// native lane (no plan → always admitted heavy), and the parameterized
/// family over the zipf documents.
Status PrepareWorkload(server::Client& client, std::vector<WorkItem>* out) {
  for (const auto& q : api::PaperQueries()) {
    if (q.document != "auction.xml") continue;  // bench loads XMark only
    auto prepared = client.Prepare(q.text, /*mode=joingraph*/ 1, q.document);
    XQJG_RETURN_NOT_OK(prepared.status());
    WorkItem item;
    item.label = q.id;
    item.statement_id = prepared.value().statement_id;
    item.query_class = prepared.value().query_class;
    item.weight = q.id == "Q2" ? 1 : 2;  // the join is the slow one
    out->push_back(item);
  }
  {
    auto prepared = client.Prepare(api::PaperQueries()[0].text,
                                   /*mode=nativewhole*/ 2, "auction.xml");
    XQJG_RETURN_NOT_OK(prepared.status());
    WorkItem item;
    item.label = "Q1-native";
    item.statement_id = prepared.value().statement_id;
    item.query_class = prepared.value().query_class;
    item.weight = 1;
    out->push_back(item);
  }
  for (int d = 0; d < kZipfDocs; ++d) {
    const std::string uri = "doc_" + std::to_string(d) + ".xml";
    auto prepared = client.Prepare(kParamQuery, 1, uri);
    XQJG_RETURN_NOT_OK(prepared.status());
    WorkItem item;
    item.label = "param/" + uri;
    item.statement_id = prepared.value().statement_id;
    item.query_class = prepared.value().query_class;
    item.parameterized = true;
    // Zipf-ish popularity: doc_0 eight times hotter than doc_3.
    item.weight = 8 >> d;
    if (item.weight < 1) item.weight = 1;
    out->push_back(item);
  }
  return Status::OK();
}

/// Weighted pick over the prepared workload.
const WorkItem* PickItem(const std::vector<WorkItem>& work, int total_weight,
                         std::mt19937& rng) {
  std::uniform_int_distribution<int> pick_dist(0, total_weight - 1);
  int roll = pick_dist(rng);
  for (const auto& candidate : work) {
    roll -= candidate.weight;
    if (roll < 0) return &candidate;
  }
  return &work.back();
}

/// Executes one request and records its latency as measured from
/// `start` — the closed loop passes "now", the open loop the scheduled
/// arrival time (so waiting for a free worker counts against it).
void RunOnce(server::Client& client, const WorkItem& item, std::mt19937& rng,
             double start, LatencyTrack* track) {
  std::map<std::string, Value> params;
  if (item.parameterized) {
    std::uniform_real_distribution<double> price_dist(5.0, 100.0);
    params["minprice"] = Value::Double(price_dist(rng));
  }
  auto executed = client.Execute(item.statement_id, params);
  if (!executed.ok()) {
    if (executed.status().code() == StatusCode::kBusy) {
      ++track->shed;
    } else {
      ++track->errors;
    }
    return;
  }
  auto items = client.FetchAll(executed.value().cursor_id);
  if (!items.ok()) {
    ++track->errors;
    return;
  }
  const double ms = (Now() - start) * 1e3;
  track->by_class[item.query_class % server::kNumQueryClasses].push_back(ms);
  track->by_query[item.label].push_back(ms);
}

/// Runs the closed loop on one connection until `deadline`; `track` is
/// thread-local and merged by the caller.
void ClientLoop(const std::string& host, int port, int seed, double deadline,
                LatencyTrack* track) {
  auto connected = server::Client::Connect(host, port);
  if (!connected.ok()) {
    ++track->errors;
    return;
  }
  server::Client& client = *connected.value();
  std::vector<WorkItem> work;
  if (!PrepareWorkload(client, &work).ok()) {
    ++track->errors;
    return;
  }
  int total_weight = 0;
  for (const auto& item : work) total_weight += item.weight;
  std::mt19937 rng(static_cast<uint32_t>(seed) * 2654435761u + 1);

  while (Now() < deadline) {
    const WorkItem* item = PickItem(work, total_weight, rng);
    RunOnce(client, *item, rng, Now(), track);
  }
  client.Goodbye().ok();
}

/// Poisson arrival schedule shared by the open-loop worker pool: offsets
/// from phase start, claimed by atomic index. The schedule is fixed up
/// front (seeded), so the offered load is independent of how fast the
/// server answers — the defining open-loop property.
struct OpenSchedule {
  std::vector<double> offsets;
  std::atomic<size_t> next{0};
};

std::vector<double> MakeSchedule(double qps, double seconds) {
  std::vector<double> offsets;
  std::mt19937 rng(12345);
  std::exponential_distribution<double> gap(qps);
  double t = gap(rng);
  while (t < seconds) {
    offsets.push_back(t);
    t += gap(rng);
  }
  return offsets;
}

/// One open-loop worker: claims the next scheduled arrival, sleeps until
/// it is due (firing immediately — late — if the pool fell behind), and
/// measures from the scheduled time.
void OpenClientLoop(const std::string& host, int port, int seed, double start,
                    OpenSchedule* sched, LatencyTrack* track) {
  auto connected = server::Client::Connect(host, port);
  if (!connected.ok()) {
    ++track->errors;
    return;
  }
  server::Client& client = *connected.value();
  std::vector<WorkItem> work;
  if (!PrepareWorkload(client, &work).ok()) {
    ++track->errors;
    return;
  }
  int total_weight = 0;
  for (const auto& item : work) total_weight += item.weight;
  std::mt19937 rng(static_cast<uint32_t>(seed) * 2654435761u + 7);

  for (;;) {
    const size_t i = sched->next.fetch_add(1);
    if (i >= sched->offsets.size()) break;
    const double due = start + sched->offsets[i];
    const double now = Now();
    if (due > now) {
      std::this_thread::sleep_for(std::chrono::duration<double>(due - now));
    }
    const WorkItem* item = PickItem(work, total_weight, rng);
    RunOnce(client, *item, rng, due, track);
  }
  client.Goodbye().ok();
}

LatencyTrack RunOpenPhase(const std::string& host, int port, int workers,
                          OpenSchedule* sched) {
  std::vector<LatencyTrack> tracks(static_cast<size_t>(workers));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  const double start = Now();
  for (int c = 0; c < workers; ++c) {
    threads.emplace_back(OpenClientLoop, host, port, c, start, sched,
                         &tracks[c]);
  }
  for (auto& t : threads) t.join();
  LatencyTrack merged;
  for (auto& track : tracks) {
    for (int cls = 0; cls < server::kNumQueryClasses; ++cls) {
      auto& dst = merged.by_class[cls];
      dst.insert(dst.end(), track.by_class[cls].begin(),
                 track.by_class[cls].end());
    }
    for (auto& [label, values] : track.by_query) {
      auto& dst = merged.by_query[label];
      dst.insert(dst.end(), values.begin(), values.end());
    }
    merged.shed += track.shed;
    merged.errors += track.errors;
  }
  return merged;
}

LatencyTrack RunPhase(const std::string& host, int port, int clients,
                      double seconds) {
  std::vector<LatencyTrack> tracks(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  const double deadline = Now() + seconds;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back(ClientLoop, host, port, c, deadline, &tracks[c]);
  }
  for (auto& t : threads) t.join();
  LatencyTrack merged;
  for (auto& track : tracks) {
    for (int cls = 0; cls < server::kNumQueryClasses; ++cls) {
      auto& dst = merged.by_class[cls];
      dst.insert(dst.end(), track.by_class[cls].begin(),
                 track.by_class[cls].end());
    }
    for (auto& [label, values] : track.by_query) {
      auto& dst = merged.by_query[label];
      dst.insert(dst.end(), values.begin(), values.end());
    }
    merged.shed += track.shed;
    merged.errors += track.errors;
  }
  return merged;
}

}  // namespace

int main() {
  const double seconds = bench::EnvDouble("XQJG_SERVING_SECONDS", 5.0);
  const int clients =
      static_cast<int>(bench::EnvDouble("XQJG_SERVING_CLIENTS", 4));
  const double scale = bench::EnvDouble("XQJG_SERVING_SCALE", 0.5);
  const double open_qps = bench::EnvDouble("XQJG_SERVING_OPEN_QPS", 400.0);

  // One corpus serves both phases: the main auction instance for the
  // paper queries plus the zipf-targeted small documents.
  api::XQueryProcessor processor;
  {
    data::XmarkOptions xmark;
    xmark.scale = scale;
    Status s = processor.LoadDocument("auction.xml",
                                      data::GenerateXmark(xmark),
                                      api::XmarkSegmentTags());
    for (int d = 0; s.ok() && d < kZipfDocs; ++d) {
      data::XmarkOptions small;
      small.scale = 0.1;
      small.seed = static_cast<uint64_t>(100 + d);
      s = processor.LoadDocument("doc_" + std::to_string(d) + ".xml",
                                 data::GenerateXmark(small));
    }
    // Wide flat document for the phase-4 streaming-memory probe.
    if (s.ok()) {
      std::string flat = "<root>";
      for (int i = 0; i < 150000; ++i) {
        flat += "<x>";
        flat += std::to_string(i);
        flat += "</x>";
      }
      flat += "</root>";
      s = processor.LoadDocument("stream.xml", flat);
    }
    if (s.ok()) s = processor.CreateRelationalIndexes();
    if (!s.ok()) {
      std::fprintf(stderr, "corpus: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // ---- Phase 1: closed loop, production-ish admission config ----
  server::ServerConfig config;
  config.session.limits.timeout_seconds = 30.0;
  server::QueryServer server(&processor, config);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "serving_load — %d closed-loop clients for %.0fs against 127.0.0.1:%d"
      " (XMark scale %.2f + %d zipf docs)\n",
      clients, seconds, server.port(), scale, kZipfDocs);
  const double phase1_start = Now();
  LatencyTrack closed = RunPhase("127.0.0.1", server.port(), clients, seconds);
  const double phase1_wall = Now() - phase1_start;
  server.Stop();

  int64_t closed_count = 0;
  for (const auto& v : closed.by_class) {
    closed_count += static_cast<int64_t>(v.size());
  }
  const double qps = closed_count / phase1_wall;
  std::printf("  %lld requests in %.2fs -> %.1f qps (%lld errors)\n",
              static_cast<long long>(closed_count), phase1_wall, qps,
              static_cast<long long>(closed.errors));
  for (int cls = 0; cls < server::kNumQueryClasses; ++cls) {
    auto ms = closed.by_class[cls];
    std::sort(ms.begin(), ms.end());
    std::printf("  %-5s: %6zu reqs  p50 %7.2fms  p99 %7.2fms\n",
                server::QueryClassToString(
                    static_cast<server::QueryClass>(cls)),
                ms.size(), Percentile(ms, 0.5), Percentile(ms, 0.99));
  }

  // ---- Phase 2: overload against a deliberately tiny server ----
  server::ServerConfig tiny;
  tiny.session.limits.timeout_seconds = 30.0;
  tiny.admission.cheap_slots = 1;
  tiny.admission.heavy_slots = 1;
  tiny.admission.cheap_queue = 1;
  tiny.admission.heavy_queue = 1;
  tiny.admission.max_queue_wait_seconds = 0.05;
  server::QueryServer small_server(&processor, tiny);
  if (Status s = small_server.Start(); !s.ok()) {
    std::fprintf(stderr, "overload start: %s\n", s.ToString().c_str());
    return 1;
  }
  const int overload_clients = clients * 3;
  const double overload_seconds = std::min(seconds, 3.0);
  std::printf(
      "  overload: %d clients vs 1+1 admission slots for %.0fs\n",
      overload_clients, overload_seconds);
  const double phase2_start = Now();
  LatencyTrack over = RunPhase("127.0.0.1", small_server.port(),
                               overload_clients, overload_seconds);
  const double phase2_wall = Now() - phase2_start;
  const std::string small_stats = small_server.StatsJson();
  small_server.Stop();

  int64_t admitted = 0;
  std::vector<double> admitted_ms;
  for (const auto& v : over.by_class) {
    admitted += static_cast<int64_t>(v.size());
    admitted_ms.insert(admitted_ms.end(), v.begin(), v.end());
  }
  std::sort(admitted_ms.begin(), admitted_ms.end());
  const int64_t offered = admitted + over.shed;
  const double shed_rate =
      offered > 0 ? static_cast<double>(over.shed) / offered : 0.0;
  std::printf(
      "  offered %lld -> admitted %lld, shed %lld (%.0f%%); admitted "
      "p50 %.2fms p99 %.2fms (%lld errors)\n",
      static_cast<long long>(offered), static_cast<long long>(admitted),
      static_cast<long long>(over.shed), shed_rate * 100,
      Percentile(admitted_ms, 0.5), Percentile(admitted_ms, 0.99),
      static_cast<long long>(over.errors));

  // ---- Phase 3: open loop against the same tiny configuration ----
  server::QueryServer open_server(&processor, tiny);
  if (Status s = open_server.Start(); !s.ok()) {
    std::fprintf(stderr, "open-loop start: %s\n", s.ToString().c_str());
    return 1;
  }
  const double open_seconds = std::min(seconds, 3.0);
  OpenSchedule schedule;
  schedule.offsets = MakeSchedule(open_qps, open_seconds);
  const int open_workers = clients * 3;
  std::printf(
      "  open loop: %.0f qps target (%zu arrivals over %.0fs) on %d "
      "workers vs 1+1 slots\n",
      open_qps, schedule.offsets.size(), open_seconds, open_workers);
  const double phase3_start = Now();
  LatencyTrack open = RunOpenPhase("127.0.0.1", open_server.port(),
                                   open_workers, &schedule);
  const double phase3_wall = Now() - phase3_start;
  open_server.Stop();

  int64_t open_admitted = 0;
  std::vector<double> open_ms;
  for (const auto& v : open.by_class) {
    open_admitted += static_cast<int64_t>(v.size());
    open_ms.insert(open_ms.end(), v.begin(), v.end());
  }
  std::sort(open_ms.begin(), open_ms.end());
  const int64_t open_offered = open_admitted + open.shed;
  const double open_shed_rate =
      open_offered > 0 ? static_cast<double>(open.shed) / open_offered : 0.0;
  std::printf(
      "  open loop: offered %lld -> admitted %lld, shed %lld (%.0f%%); "
      "admitted p50 %.2fms p99 %.2fms (%lld errors)\n",
      static_cast<long long>(open_offered),
      static_cast<long long>(open_admitted),
      static_cast<long long>(open.shed), open_shed_rate * 100,
      Percentile(open_ms, 0.5), Percentile(open_ms, 0.99),
      static_cast<long long>(open.errors));

  // ---- Phase 4: streaming-memory probe ----
  server::ServerConfig memcfg;
  memcfg.session.limits.timeout_seconds = 30.0;
  memcfg.session.limits.max_memory_bytes = 256 * 1024;
  server::QueryServer mem_server(&processor, memcfg);
  if (Status s = mem_server.Start(); !s.ok()) {
    std::fprintf(stderr, "memory probe start: %s\n", s.ToString().c_str());
    return 1;
  }
  int64_t probe_rows = 0, probe_retained = 0;
  {
    auto probe = server::Client::Connect("127.0.0.1", mem_server.port());
    if (!probe.ok()) {
      std::fprintf(stderr, "probe: %s\n", probe.status().ToString().c_str());
      return 1;
    }
    auto prepared = probe.value()->Prepare("doc(\"stream.xml\")//x",
                                           /*mode=stacked*/ 0, "stream.xml");
    auto executed = prepared.ok()
                        ? probe.value()->Execute(prepared.value().statement_id)
                        : Result<server::ExecuteResult>(prepared.status());
    if (!executed.ok()) {
      std::fprintf(stderr, "probe: %s\n",
                   executed.status().ToString().c_str());
      return 1;
    }
    probe_rows = executed.value().rows_total;
    // The gauge while the cursor is open and fully undrained.
    probe_retained = mem_server.stats().sessions.retained_cursor_bytes;
    probe.value()->FetchAll(executed.value().cursor_id).ok();
    probe.value()->Goodbye().ok();
  }
  mem_server.Stop();
  std::printf(
      "  streaming memory: %lld-row open cursor retains %lld bytes "
      "(materialized floor %lld)\n",
      static_cast<long long>(probe_rows),
      static_cast<long long>(probe_retained),
      static_cast<long long>(probe_rows * 8));

  // ---- BENCH_serving.json ----
  std::string json = "{\n  \"bench\": \"serving_load\",\n";
  json += "  \"clients\": " + std::to_string(clients) + ",\n";
  json += "  \"seconds\": " + std::to_string(seconds) + ",\n";
  json += "  \"xmark_scale\": " + std::to_string(scale) + ",\n";
  json += "  \"closed_loop\": {\n";
  json += "    \"requests\": " + std::to_string(closed_count) + ",\n";
  json += "    \"wall_seconds\": " + std::to_string(phase1_wall) + ",\n";
  json += "    \"qps\": " + std::to_string(qps) + ",\n";
  json += "    \"errors\": " + std::to_string(closed.errors) + ",\n";
  json += "    \"classes\": {";
  for (int cls = 0; cls < server::kNumQueryClasses; ++cls) {
    if (cls > 0) json += ", ";
    json += std::string("\"") +
            server::QueryClassToString(static_cast<server::QueryClass>(cls)) +
            "\": " + ClassJson(closed.by_class[cls]);
  }
  json += "},\n    \"queries\": {";
  bool first = true;
  for (auto& [label, values] : closed.by_query) {
    if (!first) json += ", ";
    first = false;
    json += "\"" + label + "\": " + ClassJson(values);
  }
  json += "}\n  },\n";
  json += "  \"overload\": {\n";
  json += "    \"clients\": " + std::to_string(overload_clients) + ",\n";
  json += "    \"wall_seconds\": " + std::to_string(phase2_wall) + ",\n";
  json += "    \"offered\": " + std::to_string(offered) + ",\n";
  json += "    \"admitted\": " + std::to_string(admitted) + ",\n";
  json += "    \"shed\": " + std::to_string(over.shed) + ",\n";
  json += "    \"shed_rate\": " + std::to_string(shed_rate) + ",\n";
  json += "    \"errors\": " + std::to_string(over.errors) + ",\n";
  json += "    \"admitted_p50_ms\": " +
          std::to_string(Percentile(admitted_ms, 0.5)) + ",\n";
  json += "    \"admitted_p99_ms\": " +
          std::to_string(Percentile(admitted_ms, 0.99)) + ",\n";
  json += "    \"server_stats\": " + small_stats + "\n";
  json += "  },\n";
  json += "  \"open_loop\": {\n";
  json += "    \"target_qps\": " + std::to_string(open_qps) + ",\n";
  json += "    \"workers\": " + std::to_string(open_workers) + ",\n";
  json += "    \"wall_seconds\": " + std::to_string(phase3_wall) + ",\n";
  json += "    \"offered\": " + std::to_string(open_offered) + ",\n";
  json += "    \"admitted\": " + std::to_string(open_admitted) + ",\n";
  json += "    \"shed\": " + std::to_string(open.shed) + ",\n";
  json += "    \"shed_rate\": " + std::to_string(open_shed_rate) + ",\n";
  json += "    \"errors\": " + std::to_string(open.errors) + ",\n";
  json += "    \"admitted_p50_ms\": " +
          std::to_string(Percentile(open_ms, 0.5)) + ",\n";
  json += "    \"admitted_p99_ms\": " +
          std::to_string(Percentile(open_ms, 0.99)) + "\n";
  json += "  },\n";
  json += "  \"streaming_memory\": {\n";
  json += "    \"session_budget_bytes\": 262144,\n";
  json += "    \"rows_total\": " + std::to_string(probe_rows) + ",\n";
  json += "    \"retained_cursor_bytes\": " + std::to_string(probe_retained) +
          ",\n";
  json += "    \"materialized_floor_bytes\": " +
          std::to_string(probe_rows * 8) + "\n";
  json += "  }\n}\n";
  if (!bench::WriteBenchJson(json)) return 1;
  return closed.errors == 0 && over.errors == 0 && open.errors == 0 ? 0 : 1;
}
