// Storage-layer benchmark: what did migrating the doc relation from
// boxed vector<Value> columns onto typed/dictionary ValueColumns buy?
//
// Measures, on the scaled XMark instance:
//   - Database::Build (typed materialization + statistics collection)
//   - Table VI B-tree set build (typed-array sort comparators)
//   - a name-equality scan through the three access paths: a boxed
//     per-cell Value scan (the retired row layout), a typed plain-string
//     column (columnar), and the dictionary-encoded column (dict — one
//     uint32 compare per row)
//   - the memory axis of the shared document block: bytes of ONE block
//     vs bytes retained across every lane of a full processor (row
//     DocTable view + relational database + columnar batches) — the
//     all-lanes number must track ~1×, not ~3×
//
// Environment: XQJG_XMARK_SCALE (default 1.0). Set XQJG_BENCH_JSON to
// emit BENCH_storage.json for the CI perf trajectory.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/api/paper_queries.h"
#include "src/api/processor.h"
#include "src/data/xmark.h"
#include "src/engine/database.h"
#include "src/xml/doc_block.h"
#include "src/xml/parser.h"

using namespace xqjg;

int main() {
  using Clock = std::chrono::steady_clock;
  data::XmarkOptions options;
  options.scale = bench::EnvDouble("XQJG_XMARK_SCALE", 1.0);
  xml::DocTable doc;
  if (!xml::LoadDocument(&doc, "auction.xml", data::GenerateXmark(options))
           .ok()) {
    return 1;
  }
  auto t0 = Clock::now();
  auto db = engine::Database::Build(doc);
  auto t1 = Clock::now();
  for (const auto& def : engine::TableVIIndexes()) {
    if (!db->CreateIndex(def).ok()) return 1;
  }
  auto t2 = Clock::now();
  auto secs = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  };
  const double build_seconds = secs(t0, t1);
  const double index_seconds = secs(t1, t2);
  const long long nodes = static_cast<long long>(db->row_count());
  // Enough passes that even the dict scan runs tens of milliseconds.
  const int iters =
      static_cast<int>(std::max<long long>(4, 40000000 / (nodes + 1)));
  bench::StorageScanResult scan =
      bench::MeasureNameScan(*db, "bidder", iters);
  const double per_row = 1e9 / static_cast<double>(nodes * scan.iters);

  // Memory axis: one full processor with every relational lane forced —
  // the bytes it retains must track ONE shared block, not one copy per
  // lane. (The native stores stay lazy: no tree is ever built here.)
  api::XQueryProcessor processor;
  if (!processor
           .LoadDocument("auction.xml", data::GenerateXmark(options),
                         api::XmarkSegmentTags())
           .ok()) {
    return 1;
  }
  if (!processor.CreateRelationalIndexes().ok()) return 1;
  api::RunOptions lanes;
  lanes.mode = api::Mode::kJoinGraph;
  lanes.use_columnar = true;
  lanes.context_document = "auction.xml";
  if (!processor.Run("/site/people/person", lanes).ok()) return 1;
  auto snap = processor.snapshot();
  const long long shared_block =
      static_cast<long long>(snap->doc_table()->block()->ApproxBytes());
  const long long retained_all_lanes =
      static_cast<long long>(snap->RetainedStorageBytes());

  std::printf(
      "Storage layout — XMark scale %.2f (%lld nodes)\n\n"
      "Database::Build (typed + stats):  %8.3f s\n"
      "Table VI B-tree set:              %8.3f s\n\n"
      "name = 'bidder' scan (%d passes, %lld matches/pass):\n"
      "  row (boxed per-cell Values):    %8.3f s  (%6.2f ns/row)\n"
      "  columnar (typed strings):       %8.3f s  (%6.2f ns/row)\n"
      "  dict (code compare):            %8.3f s  (%6.2f ns/row)\n"
      "  speedup dict vs row:            %7.1fx\n"
      "  speedup dict vs columnar:       %7.1fx\n\n"
      "memory (shared document block):\n"
      "  one shared block:               %10lld bytes\n"
      "  retained across all lanes:      %10lld bytes  (%.2fx)\n",
      options.scale, nodes, build_seconds, index_seconds, scan.iters,
      scan.matches, scan.row_seconds, scan.row_seconds * per_row,
      scan.columnar_seconds, scan.columnar_seconds * per_row,
      scan.dict_seconds, scan.dict_seconds * per_row,
      scan.row_seconds / std::max(1e-9, scan.dict_seconds),
      scan.columnar_seconds / std::max(1e-9, scan.dict_seconds),
      shared_block, retained_all_lanes,
      static_cast<double>(retained_all_lanes) /
          std::max(1.0, static_cast<double>(shared_block)));
  char buf[1280];
  std::snprintf(
      buf, sizeof(buf),
      "{\"bench\":\"storage_layout\",\"scale\":%.2f,\"nodes\":%lld,"
      "\"build_seconds\":%.6f,\"index_seconds\":%.6f,"
      "\"scan\":{\"iters\":%d,\"matches\":%lld,"
      "\"row_seconds\":%.6f,\"columnar_seconds\":%.6f,"
      "\"dict_seconds\":%.6f},"
      "\"memory_bytes\":{\"shared_block\":%lld,"
      "\"retained_all_lanes\":%lld}}\n",
      options.scale, nodes, build_seconds, index_seconds, scan.iters,
      scan.matches, scan.row_seconds, scan.columnar_seconds,
      scan.dict_seconds, shared_block, retained_all_lanes);
  return bench::WriteBenchJson(buf) ? 0 : 1;
}
