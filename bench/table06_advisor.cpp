// Reproduces paper Table VI: the B-tree index set the design advisor
// proposes for the prototypical join graph workload (Q2 with the explicit
// serialization step). Key letters: p=pre, s=pre+size, l=level, k=kind,
// n=name, v=value, d=data (+ q=parent for the encoding extension).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/str.h"
#include "src/compiler/compile.h"
#include "src/opt/isolate.h"
#include "src/opt/join_graph.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"

using namespace xqjg;

int main() {
  std::printf("Table VI — B-tree indexes proposed by the advisor for the\n"
              "prototypical workload (paper: Q2 + serialization step)\n\n");
  std::vector<opt::JoinGraph> graphs;
  std::vector<const opt::JoinGraph*> workload;
  for (const auto& q : api::PaperQueries()) {
    auto ast = xquery::Parse(q.text);
    if (!ast.ok()) continue;
    xquery::NormalizeOptions nopts;
    nopts.context_document = q.document;
    auto core = xquery::Normalize(ast.value(), nopts);
    if (!core.ok()) continue;
    compiler::CompileOptions copts;
    copts.explicit_serialization_step = true;  // paper §IV
    auto plan = compiler::CompileQuery(core.value(), copts);
    if (!plan.ok()) continue;
    auto iso = opt::Isolate(plan.value());
    if (!iso.ok()) continue;
    auto graph = opt::ExtractJoinGraph(iso.value().isolated);
    if (!graph.ok()) {
      std::printf("  (%s: not extractable with serialization step — "
                  "skipped as advisor input)\n", q.id.c_str());
      continue;
    }
    graphs.push_back(std::move(graph).value());
  }
  for (const auto& g : graphs) workload.push_back(&g);
  auto proposed = engine::AdviseIndexes(workload);
  std::printf("\n%-10s %-40s %s\n", "Index", "Key columns", "Deployment");
  const char* deployment[] = {
      "XPath node test and axis step, access document node",
      "Atomization, value comparison with subsequent/preceding step",
      "Serialization support (supplies XML infoset in document order)",
  };
  for (const auto& def : proposed) {
    const char* note = deployment[0];
    if (def.name.find('v') != std::string::npos ||
        def.name.find('d') != std::string::npos) {
      note = deployment[1];
    }
    if (def.clustered) note = deployment[2];
    std::printf("%-10s %-40s %s\n", def.name.c_str(),
                Join(def.key_columns, ",").c_str(), note);
  }
  std::printf("\nPaper Table VI proposes: nkspl nlkps nksp nlkp | vnlkp "
              "nlkpv nkdlp | p|nvkls\n");
  return 0;
}
