// Reproduces paper Table IX: observed result sizes and wall-clock
// execution times for Q1–Q6 under the four execution modes
//   DB2+Pathfinder stacked | join graph || pureXML whole | segmented
// (here: materializing stacked executor | isolated join graph on the
// cost-based B-tree engine || native engine whole | segmented).
//
// Extended with a row-vs-columnar axis: both relational modes run under
// the row-at-a-time executor AND the columnar batch executor
// (use_columnar), so the executor speedup is tracked per query. Set
// XQJG_BENCH_JSON=<path> to additionally emit the numbers as JSON — CI
// stores that file as the perf-trajectory artifact (BENCH_table09.json).
//
// Absolute numbers differ from the paper's testbed; the comparison shape
// (who wins, rough factors, DNFs) is the reproduction target — see
// EXPERIMENTS.md.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"

using namespace xqjg;
using bench::Workbench;

namespace {

struct Cell {
  double seconds = 0;
  size_t rows = 0;
  bool dnf = false;
  bool na = false;
};

Cell RunMode(api::XQueryProcessor* processor, const api::PaperQuery& q,
             api::Mode mode, double dnf_seconds, bool use_columnar,
             int threads = 1) {
  // Q2 binds several independent for-clauses over doc(); per-fragment
  // evaluation cannot express the cross-fragment joins — the paper's
  // segmented pureXML run of Q2 also did not finish.
  if (mode == api::Mode::kNativeSegmented && q.id == "Q2") {
    Cell cell;
    cell.dnf = true;
    return cell;
  }
  api::RunOptions options;
  options.mode = mode;
  options.context_document = q.document;
  options.timeout_seconds = dnf_seconds;
  options.use_columnar = use_columnar;
  options.threads = threads;
  Cell cell;
  auto result = processor->Run(q.text, options);
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kTimeout) {
      cell.dnf = true;
    } else {
      std::fprintf(stderr, "%s %s: %s\n", q.id.c_str(),
                   api::ModeToString(mode),
                   result.status().ToString().c_str());
      cell.na = true;
    }
    return cell;
  }
  cell.seconds = result.value().seconds;
  cell.rows = result.value().result_count();
  return cell;
}

std::string Fmt(const Cell& cell) {
  if (cell.dnf) return "DNF";
  if (cell.na) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", cell.seconds);
  return buf;
}

std::string Speedup(const Cell& row, const Cell& col) {
  if (row.dnf || row.na || col.dnf || col.na || col.seconds <= 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fx", row.seconds / col.seconds);
  return buf;
}

void JsonCell(std::string* out, const char* name, const Cell& cell) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "\"%s\":{\"seconds\":%.6f,\"rows\":%zu,\"dnf\":%s,"
                "\"na\":%s}",
                name, cell.seconds, cell.rows, cell.dnf ? "true" : "false",
                cell.na ? "true" : "false");
  *out += buf;
}

}  // namespace

int main() {
  Workbench& wb = Workbench::Instance();
  std::printf(
      "Table IX — observed result sizes and wall clock execution times\n"
      "(XMark nodes: %lld, DBLP nodes: %lld; DNF budget %.0fs; paper used\n"
      " 4.7M / 31.8M nodes and a 20h budget — shapes, not absolutes)\n"
      "Each relational mode runs row-at-a-time and columnar (-col).\n\n",
      static_cast<long long>(wb.xmark_nodes),
      static_cast<long long>(wb.dblp_nodes), wb.dnf_seconds);
  std::printf("%-5s %9s | %9s %9s %6s | %9s %9s %6s | %9s %9s\n", "Query",
              "# nodes", "stacked", "stack-col", "gain", "joingraph",
              "jg-col", "gain", "whole", "segmented");
  std::printf("%.*s\n", 100,
              "--------------------------------------------------------------"
              "--------------------------------------");
  std::string json =
      "{\"bench\":\"table09\",\"xmark_nodes\":" +
      std::to_string(wb.xmark_nodes) +
      ",\"dblp_nodes\":" + std::to_string(wb.dblp_nodes) +
      ",\"dnf_seconds\":" + std::to_string(wb.dnf_seconds) + ",\"queries\":[";
  bool first = true;
  for (const auto& q : api::PaperQueries()) {
    Cell stacked =
        RunMode(&wb.processor, q, api::Mode::kStacked, wb.dnf_seconds, false);
    Cell stacked_col =
        RunMode(&wb.processor, q, api::Mode::kStacked, wb.dnf_seconds, true);
    Cell joingraph = RunMode(&wb.processor, q, api::Mode::kJoinGraph,
                             wb.dnf_seconds, false);
    Cell joingraph_col =
        RunMode(&wb.processor, q, api::Mode::kJoinGraph, wb.dnf_seconds, true);
    // Morsel-parallel columnar runs (threads axis; the threads=1 cells
    // above stay the serial baseline). On a single-core container the
    // worker pool degrades to time-slicing — the axis is still recorded
    // so multi-core runs show the scaling.
    Cell stacked_col_t2 = RunMode(&wb.processor, q, api::Mode::kStacked,
                                  wb.dnf_seconds, true, 2);
    Cell stacked_col_t8 = RunMode(&wb.processor, q, api::Mode::kStacked,
                                  wb.dnf_seconds, true, 8);
    Cell joingraph_col_t2 = RunMode(&wb.processor, q, api::Mode::kJoinGraph,
                                    wb.dnf_seconds, true, 2);
    Cell joingraph_col_t8 = RunMode(&wb.processor, q, api::Mode::kJoinGraph,
                                    wb.dnf_seconds, true, 8);
    Cell whole = RunMode(&wb.processor, q, api::Mode::kNativeWhole,
                         wb.dnf_seconds, false);
    Cell segmented = RunMode(&wb.processor, q, api::Mode::kNativeSegmented,
                             wb.dnf_seconds, false);
    size_t rows = joingraph.rows ? joingraph.rows : stacked.rows;
    std::printf("%-5s %9zu | %9s %9s %6s | %9s %9s %6s | %9s %9s\n",
                q.id.c_str(), rows, Fmt(stacked).c_str(),
                Fmt(stacked_col).c_str(), Speedup(stacked, stacked_col).c_str(),
                Fmt(joingraph).c_str(), Fmt(joingraph_col).c_str(),
                Speedup(joingraph, joingraph_col).c_str(), Fmt(whole).c_str(),
                Fmt(segmented).c_str());
    if (!stacked.dnf && !joingraph.dnf && joingraph.seconds > 0) {
      std::printf("%-5s %9s |   speedup of join graph over stacked: %.1fx\n",
                  "", "", stacked.seconds / joingraph.seconds);
    }
    std::printf(
        "%-5s %9s |   columnar threads axis — stacked t2 %s t8 %s (%s) | "
        "jg t2 %s t8 %s (%s)\n",
        "", "", Fmt(stacked_col_t2).c_str(), Fmt(stacked_col_t8).c_str(),
        Speedup(stacked_col, stacked_col_t8).c_str(),
        Fmt(joingraph_col_t2).c_str(), Fmt(joingraph_col_t8).c_str(),
        Speedup(joingraph_col, joingraph_col_t8).c_str());
    if (!first) json += ",";
    first = false;
    json += "{\"id\":\"" + q.id + "\",\"rows\":" + std::to_string(rows) + ",";
    JsonCell(&json, "stacked_row", stacked);
    json += ",";
    JsonCell(&json, "stacked_columnar", stacked_col);
    json += ",";
    JsonCell(&json, "joingraph_row", joingraph);
    json += ",";
    JsonCell(&json, "joingraph_columnar", joingraph_col);
    json += ",";
    JsonCell(&json, "stacked_columnar_t2", stacked_col_t2);
    json += ",";
    JsonCell(&json, "stacked_columnar_t8", stacked_col_t8);
    json += ",";
    JsonCell(&json, "joingraph_columnar_t2", joingraph_col_t2);
    json += ",";
    JsonCell(&json, "joingraph_columnar_t8", joingraph_col_t8);
    json += ",";
    JsonCell(&json, "native_whole", whole);
    json += ",";
    JsonCell(&json, "native_segmented", segmented);
    json += "}";
  }
  json += "]}\n";
  return bench::WriteBenchJson(json) ? 0 : 1;
}
