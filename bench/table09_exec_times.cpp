// Reproduces paper Table IX: observed result sizes and wall-clock
// execution times for Q1–Q6 under the four execution modes
//   DB2+Pathfinder stacked | join graph || pureXML whole | segmented
// (here: materializing stacked executor | isolated join graph on the
// cost-based B-tree engine || native engine whole | segmented).
//
// Absolute numbers differ from the paper's testbed; the comparison shape
// (who wins, rough factors, DNFs) is the reproduction target — see
// EXPERIMENTS.md.
#include <cstdio>
#include <string>

#include "bench/bench_common.h"

using namespace xqjg;
using bench::Workbench;

namespace {

struct Cell {
  double seconds = 0;
  size_t rows = 0;
  bool dnf = false;
  bool na = false;
};

Cell RunMode(api::XQueryProcessor* processor, const api::PaperQuery& q,
             api::Mode mode, double dnf_seconds) {
  // Q2 binds several independent for-clauses over doc(); per-fragment
  // evaluation cannot express the cross-fragment joins — the paper's
  // segmented pureXML run of Q2 also did not finish.
  if (mode == api::Mode::kNativeSegmented && q.id == "Q2") {
    Cell cell;
    cell.dnf = true;
    return cell;
  }
  api::RunOptions options;
  options.mode = mode;
  options.context_document = q.document;
  options.timeout_seconds = dnf_seconds;
  Cell cell;
  auto result = processor->Run(q.text, options);
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kTimeout) {
      cell.dnf = true;
    } else {
      std::fprintf(stderr, "%s %s: %s\n", q.id.c_str(),
                   api::ModeToString(mode),
                   result.status().ToString().c_str());
      cell.na = true;
    }
    return cell;
  }
  cell.seconds = result.value().seconds;
  cell.rows = result.value().result_count;
  return cell;
}

std::string Fmt(const Cell& cell) {
  if (cell.dnf) return "DNF";
  if (cell.na) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", cell.seconds);
  return buf;
}

}  // namespace

int main() {
  Workbench& wb = Workbench::Instance();
  std::printf(
      "Table IX — observed result sizes and wall clock execution times\n"
      "(XMark nodes: %lld, DBLP nodes: %lld; DNF budget %.0fs; paper used\n"
      " 4.7M / 31.8M nodes and a 20h budget — shapes, not absolutes)\n\n",
      static_cast<long long>(wb.xmark_nodes),
      static_cast<long long>(wb.dblp_nodes), wb.dnf_seconds);
  std::printf("%-5s %10s | %10s %10s | %10s %10s\n", "Query", "# nodes",
              "stacked", "join graph", "whole", "segmented");
  std::printf("%.*s\n", 68,
              "--------------------------------------------------------------"
              "------");
  for (const auto& q : api::PaperQueries()) {
    Cell stacked = RunMode(&wb.processor, q, api::Mode::kStacked,
                           wb.dnf_seconds);
    Cell joingraph = RunMode(&wb.processor, q, api::Mode::kJoinGraph,
                             wb.dnf_seconds);
    Cell whole = RunMode(&wb.processor, q, api::Mode::kNativeWhole,
                         wb.dnf_seconds);
    Cell segmented = RunMode(&wb.processor, q, api::Mode::kNativeSegmented,
                             wb.dnf_seconds);
    size_t rows = joingraph.rows ? joingraph.rows : stacked.rows;
    std::printf("%-5s %10zu | %10s %10s | %10s %10s\n", q.id.c_str(), rows,
                Fmt(stacked).c_str(), Fmt(joingraph).c_str(),
                Fmt(whole).c_str(), Fmt(segmented).c_str());
    if (!stacked.dnf && !joingraph.dnf && joingraph.seconds > 0) {
      std::printf("%-5s %10s |   speedup of join graph over stacked: "
                  "%.1fx\n",
                  "", "", stacked.seconds / joingraph.seconds);
    }
  }
  return 0;
}
