// Bibliography search over a DBLP-like corpus: demonstrates value
// predicates, conjunctive filters, and the native engine's XMLPATTERN
// index pruning (segmented storage shines for selective lookups — the
// paper's Q3/Q5 observation).
#include <cstdio>

#include "src/api/paper_queries.h"
#include "src/api/processor.h"
#include "src/data/dblp.h"

using namespace xqjg;

int main(int argc, char** argv) {
  int pubs = argc > 1 ? std::atoi(argv[1]) : 3000;
  api::XQueryProcessor processor;
  data::DblpOptions options;
  options.publications = pubs;
  Status st = processor.LoadDocument("dblp.xml", data::GenerateDblp(options),
                                     api::DblpSegmentTags());
  if (!st.ok()) return 1;
  if (!processor.CreateRelationalIndexes().ok()) return 1;
  for (auto& pattern : api::PaperPatternIndexes()) {
    processor.CreatePatternIndex(pattern);
  }
  std::printf("loaded %lld nodes (%d publications)\n\n",
              static_cast<long long>(processor.doc_table().row_count()),
              pubs);

  const char* queries[] = {
      // exact key lookup (paper Q5 family)
      "/dblp/*[@key = \"conf/vldb2001\" and editor and title]/title",
      // early theses (paper Q6 family)
      "for $t in /dblp/phdthesis[year < \"1994\" and author and title] "
      "return $t/title",
      // all VLDB papers' titles
      "/dblp/inproceedings[booktitle = \"vldb\"]/title/text()",
      // authors who published in TODS
      "/dblp/article[journal = \"TODS\"]/author",
  };
  for (const char* q : queries) {
    std::printf("== %s\n", q);
    for (api::Mode mode :
         {api::Mode::kJoinGraph, api::Mode::kNativeSegmented}) {
      api::RunOptions run;
      run.mode = mode;
      run.context_document = "dblp.xml";
      run.timeout_seconds = 60;
      auto result = processor.Run(q, run);
      if (!result.ok()) {
        std::printf("   %-17s %s\n", api::ModeToString(mode),
                    result.status().ToString().c_str());
        continue;
      }
      std::printf("   %-17s %6zu nodes  %.4fs\n", api::ModeToString(mode),
                  result.value().result_count(), result.value().seconds);
      if (mode == api::Mode::kJoinGraph &&
          result.value().result_count() <= 3) {
        for (const auto& item : result.value().items) {
          std::printf("      %s\n", item.c_str());
        }
      }
    }
  }
  return 0;
}
