// Peeking at the optimizer: shows, for one query, the stacked plan, the
// isolated plan, the extracted join graph, the shipped SQL, and the
// chosen physical join tree — the full Fig. 4 -> 7 -> 8 -> 10 pipeline on
// your own query text.
//
// Usage: explain_optimizer ["<xquery>"]
#include <cstdio>

#include "src/algebra/printer.h"
#include "src/api/processor.h"
#include "src/compiler/compile.h"
#include "src/data/xmark.h"
#include "src/opt/isolate.h"
#include "src/opt/join_graph.h"
#include "src/sql/sqlgen.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"

using namespace xqjg;

int main(int argc, char** argv) {
  const char* query =
      argc > 1 ? argv[1]
               : "doc(\"auction.xml\")/descendant::open_auction[bidder]";
  api::XQueryProcessor processor;
  data::XmarkOptions gen;
  gen.scale = 0.2;
  if (!processor.LoadDocument("auction.xml", data::GenerateXmark(gen)).ok()) {
    return 1;
  }
  if (!processor.CreateRelationalIndexes().ok()) return 1;

  auto ast = xquery::Parse(query);
  if (!ast.ok()) {
    std::fprintf(stderr, "parse: %s\n", ast.status().ToString().c_str());
    return 1;
  }
  std::printf("surface AST : %s\n", ast.value()->ToString().c_str());
  xquery::NormalizeOptions nopts;
  nopts.context_document = "auction.xml";
  auto core = xquery::Normalize(ast.value(), nopts);
  if (!core.ok()) return 1;
  std::printf("XQuery Core : %s\n\n", core.value()->ToString().c_str());

  auto plan = compiler::CompileQuery(core.value());
  if (!plan.ok()) return 1;
  std::printf("--- stacked plan (Fig. 4 shape) ---\n%s\n",
              algebra::PrintPlan(plan.value()).c_str());
  auto iso = opt::Isolate(plan.value());
  if (!iso.ok()) return 1;
  std::printf("--- isolated plan (Fig. 7 shape) ---\n%s\n",
              algebra::PrintPlan(iso.value().isolated).c_str());
  auto graph = opt::ExtractJoinGraph(iso.value().isolated);
  if (graph.ok()) {
    std::printf("--- join graph ---\n%s\n",
                graph.value().ToString().c_str());
    std::printf("--- SQL (Fig. 8 shape) ---\n%s\n\n",
                sql::EmitJoinGraphSql(graph.value()).c_str());
  } else {
    std::printf("join graph not fully extractable: %s\n",
                graph.status().ToString().c_str());
  }
  api::RunOptions run;
  run.mode = api::Mode::kJoinGraph;
  run.context_document = "auction.xml";
  auto result = processor.Run(query, run);
  if (result.ok() && !result.value().explain.empty()) {
    std::printf("--- physical plan (Fig. 10 shape) ---\n%s\n",
                result.value().explain.c_str());
    std::printf("%zu result nodes in %.4fs\n", result.value().result_count(),
                result.value().seconds);
  }
  return 0;
}
