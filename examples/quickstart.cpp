// Quickstart: load a document, run one XQuery through the full
// compile -> isolate -> plan -> execute pipeline, and look at every
// intermediate artifact (SQL, physical plan, result).
#include <cstdio>

#include "src/api/processor.h"

using namespace xqjg;

int main() {
  api::XQueryProcessor processor;

  const char* auction = R"(
    <site>
      <open_auction id="1">
        <initial>15</initial>
        <bidder><time>18:43</time><increase>4.20</increase></bidder>
        <bidder><time>19:01</time><increase>7.50</increase></bidder>
      </open_auction>
      <open_auction id="2"><initial>20</initial></open_auction>
      <open_auction id="3">
        <bidder><time>20:15</time><increase>1.00</increase></bidder>
      </open_auction>
    </site>)";
  Status st = processor.LoadDocument("auction.xml", auction);
  if (!st.ok()) {
    std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
    return 1;
  }
  st = processor.CreateRelationalIndexes();  // the Table VI B-tree set
  if (!st.ok()) return 1;

  // The paper's Q1: open auctions that have at least one bidder.
  const char* query =
      "doc(\"auction.xml\")/descendant::open_auction[bidder]";

  api::RunOptions options;
  options.mode = api::Mode::kJoinGraph;
  auto result = processor.Run(query, options);
  if (!result.ok()) {
    std::fprintf(stderr, "run: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("--- SQL shipped to the relational back-end ---\n%s\n\n",
              result.value().sql.c_str());
  std::printf("--- physical plan chosen by the optimizer ---\n%s\n",
              result.value().explain.c_str());
  std::printf("--- result (%zu nodes, %.4fs) ---\n",
              result.value().result_count, result.value().seconds);
  for (const auto& item : result.value().items) {
    std::printf("%s\n", item.c_str());
  }
  return 0;
}
