// Quickstart: load a document, prepare one XQuery through the full
// compile -> isolate -> plan pipeline, look at every compiled artifact
// (SQL, physical plan), then execute it — once via a streaming cursor,
// and again to show that repeated executions reuse the same plan.
#include <cstdio>

#include "src/api/processor.h"

using namespace xqjg;

int main() {
  api::XQueryProcessor processor;

  const char* auction = R"(
    <site>
      <open_auction id="1">
        <initial>15</initial>
        <bidder><time>18:43</time><increase>4.20</increase></bidder>
        <bidder><time>19:01</time><increase>7.50</increase></bidder>
      </open_auction>
      <open_auction id="2"><initial>20</initial></open_auction>
      <open_auction id="3">
        <bidder><time>20:15</time><increase>1.00</increase></bidder>
      </open_auction>
    </site>)";
  Status st = processor.LoadDocument("auction.xml", auction);
  if (!st.ok()) {
    std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
    return 1;
  }
  st = processor.CreateRelationalIndexes();  // the Table VI B-tree set
  if (!st.ok()) return 1;

  // The paper's Q1: open auctions that have at least one bidder.
  const char* query =
      "doc(\"auction.xml\")/descendant::open_auction[bidder]";

  // Prepare once: parse -> normalize -> compile -> isolate -> plan. The
  // returned PreparedQuery is immutable; every execution below shares it.
  api::PrepareOptions options;
  options.mode = api::Mode::kJoinGraph;
  auto prepared = processor.Prepare(query, options);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare: %s\n",
                 prepared.status().ToString().c_str());
    return 1;
  }
  std::printf("--- SQL shipped to the relational back-end ---\n%s\n\n",
              prepared.value()->sql.c_str());
  std::printf("--- physical plan chosen by the optimizer ---\n%s\n",
              prepared.value()->explain.c_str());

  // Execute with a streaming cursor: items arrive in batches, so result
  // memory is bounded by the batch size, not the result size.
  auto cursor = processor.Execute(prepared.value());
  if (!cursor.ok()) {
    std::fprintf(stderr, "execute: %s\n", cursor.status().ToString().c_str());
    return 1;
  }
  std::printf("--- result, fetched in batches of 2 ---\n");
  while (true) {
    auto batch = cursor.value()->FetchNext(2);
    if (!batch.ok()) {
      std::fprintf(stderr, "fetch: %s\n", batch.status().ToString().c_str());
      return 1;
    }
    if (batch.value().empty()) break;
    for (const auto& item : batch.value()) {
      std::printf("%s\n", item.c_str());
    }
  }
  const api::ExecutionStats& stats = cursor.value()->stats();
  std::printf("(%lld nodes, execute %.4fs + fetch %.4fs; compiled once in "
              "%.4fs)\n\n",
              static_cast<long long>(stats.rows_total),
              stats.execute_seconds, stats.fetch_seconds,
              prepared.value()->compile_seconds);

  // Re-executing the same PreparedQuery pays zero compilation. (The
  // one-shot Run facade gets the same effect through the LRU plan cache.)
  auto again = processor.ExecuteAll(prepared.value());
  if (!again.ok()) return 1;
  std::printf("re-executed the prepared plan: %zu nodes in %.4fs\n",
              again.value().result_count(), again.value().seconds);
  return 0;
}
