// Auction analytics over a generated XMark instance: several queries of
// increasing complexity, each prepared once per execution mode and then
// executed — a miniature Table IX you can play with, on the
// prepare/execute API (per-mode PreparedQuery, per-execution stats).
#include <cstdio>

#include "src/api/paper_queries.h"
#include "src/api/processor.h"
#include "src/data/xmark.h"

using namespace xqjg;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  api::XQueryProcessor processor;
  data::XmarkOptions options;
  options.scale = scale;
  std::printf("generating XMark instance (scale %.2f)...\n", scale);
  Status st = processor.LoadDocument(
      "auction.xml", data::GenerateXmark(options), api::XmarkSegmentTags());
  if (!st.ok()) return 1;
  if (!processor.CreateRelationalIndexes().ok()) return 1;
  for (auto& pattern : api::PaperPatternIndexes()) {
    processor.CreatePatternIndex(pattern);
  }
  std::printf("loaded %lld nodes\n\n",
              static_cast<long long>(processor.doc_table().row_count()));

  struct Scenario {
    const char* label;
    const char* query;
  };
  const Scenario scenarios[] = {
      {"auctions with bidders",
       "//open_auction[bidder]"},
      {"times of all bids",
       "//open_auction/bidder/time/text()"},
      {"high closing prices",
       "for $c in //closed_auction return if ($c/price > 500) "
       "then $c/price else ()"},
      {"sellers of expensive closed auctions",
       "for $c in //closed_auction[price > 200] return $c/seller"},
      {"categories of a person's region (ancestor axis)",
       "//incategory/ancestor::item/name"},
  };
  const api::Mode modes[] = {api::Mode::kStacked, api::Mode::kJoinGraph,
                             api::Mode::kNativeWhole,
                             api::Mode::kNativeSegmented};
  for (const auto& s : scenarios) {
    std::printf("== %s ==\n   %s\n", s.label, s.query);
    for (api::Mode mode : modes) {
      api::PrepareOptions prep;
      prep.mode = mode;
      prep.context_document = "auction.xml";
      auto prepared = processor.Prepare(s.query, prep);
      if (!prepared.ok()) {
        std::printf("   %-17s %s\n", api::ModeToString(mode),
                    prepared.status().ToString().c_str());
        continue;
      }
      api::ExecuteOptions exec;
      exec.limits.timeout_seconds = 60;
      auto result = processor.ExecuteAll(prepared.value(), exec);
      if (!result.ok()) {
        std::printf("   %-17s %s\n", api::ModeToString(mode),
                    result.status().ToString().c_str());
        continue;
      }
      std::printf("   %-17s %6zu nodes  %.4fs (compiled in %.4fs)%s\n",
                  api::ModeToString(mode), result.value().result_count(),
                  result.value().seconds, prepared.value()->compile_seconds,
                  result.value().used_fallback ? "  (DAG fallback)" : "");
    }
  }
  api::PlanCache::Stats cache = processor.plan_cache_stats();
  std::printf(
      "\nplan cache after the sweep: %zu entries, %lld hits, %lld misses\n",
      cache.entries, static_cast<long long>(cache.hits),
      static_cast<long long>(cache.misses));
  return 0;
}
