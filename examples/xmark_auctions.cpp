// Auction analytics over a generated XMark instance: several queries of
// increasing complexity, each run in all four execution modes with
// timings — a miniature Table IX you can play with.
#include <cstdio>

#include "src/api/paper_queries.h"
#include "src/api/processor.h"
#include "src/data/xmark.h"

using namespace xqjg;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  api::XQueryProcessor processor;
  data::XmarkOptions options;
  options.scale = scale;
  std::printf("generating XMark instance (scale %.2f)...\n", scale);
  Status st = processor.LoadDocument(
      "auction.xml", data::GenerateXmark(options), api::XmarkSegmentTags());
  if (!st.ok()) return 1;
  if (!processor.CreateRelationalIndexes().ok()) return 1;
  for (auto& pattern : api::PaperPatternIndexes()) {
    processor.CreatePatternIndex(pattern);
  }
  std::printf("loaded %lld nodes\n\n",
              static_cast<long long>(processor.doc_table().row_count()));

  struct Scenario {
    const char* label;
    const char* query;
  };
  const Scenario scenarios[] = {
      {"auctions with bidders",
       "//open_auction[bidder]"},
      {"times of all bids",
       "//open_auction/bidder/time/text()"},
      {"high closing prices",
       "for $c in //closed_auction return if ($c/price > 500) "
       "then $c/price else ()"},
      {"sellers of expensive closed auctions",
       "for $c in //closed_auction[price > 200] return $c/seller"},
      {"categories of a person's region (ancestor axis)",
       "//incategory/ancestor::item/name"},
  };
  const api::Mode modes[] = {api::Mode::kStacked, api::Mode::kJoinGraph,
                             api::Mode::kNativeWhole,
                             api::Mode::kNativeSegmented};
  for (const auto& s : scenarios) {
    std::printf("== %s ==\n   %s\n", s.label, s.query);
    for (api::Mode mode : modes) {
      api::RunOptions run;
      run.mode = mode;
      run.context_document = "auction.xml";
      run.timeout_seconds = 60;
      auto result = processor.Run(s.query, run);
      if (!result.ok()) {
        std::printf("   %-17s %s\n", api::ModeToString(mode),
                    result.status().ToString().c_str());
        continue;
      }
      std::printf("   %-17s %6zu nodes  %.4fs%s\n", api::ModeToString(mode),
                  result.value().result_count, result.value().seconds,
                  result.value().used_fallback ? "  (DAG fallback)" : "");
    }
  }
  return 0;
}
