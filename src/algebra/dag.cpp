#include "src/algebra/dag.h"

#include <algorithm>
#include <functional>

namespace xqjg::algebra {

namespace {

void PostOrder(Op* op, std::unordered_set<const Op*>* seen,
               std::vector<Op*>* out) {
  if (!seen->insert(op).second) return;
  for (const auto& child : op->children) {
    PostOrder(child.get(), seen, out);
  }
  out->push_back(op);
}

}  // namespace

std::vector<Op*> BottomUpOrder(const OpPtr& root) {
  std::unordered_set<const Op*> seen;
  std::vector<Op*> out;
  PostOrder(root.get(), &seen, &out);
  return out;
}

std::vector<Op*> TopoOrder(const OpPtr& root) {
  std::vector<Op*> out = BottomUpOrder(root);
  std::reverse(out.begin(), out.end());
  return out;
}

ParentMap BuildParentMap(const OpPtr& root) {
  ParentMap map;
  for (Op* op : TopoOrder(root)) {
    for (size_t slot = 0; slot < op->children.size(); ++slot) {
      map.parents[op->children[slot].get()].emplace_back(op, slot);
    }
  }
  return map;
}

bool Reaches(const Op* from, const Op* target) {
  if (from == target) return true;
  std::unordered_set<const Op*> seen;
  std::function<bool(const Op*)> walk = [&](const Op* op) {
    if (op == target) return true;
    if (!seen.insert(op).second) return false;
    for (const auto& child : op->children) {
      if (walk(child.get())) return true;
    }
    return false;
  };
  return walk(from);
}

size_t ReplaceChild(const OpPtr& root, const Op* old_child, OpPtr new_child) {
  size_t replaced = 0;
  // The topo order holds raw pointers; overwriting a child slot may drop
  // the last strong reference to the detached subtree, whose descendants
  // appear later in the walk. Pin it until the walk completes.
  OpPtr keep_alive;
  for (Op* op : TopoOrder(root)) {
    for (auto& child : op->children) {
      if (child.get() == old_child) {
        if (!keep_alive) keep_alive = child;
        child = new_child;
        ++replaced;
      }
    }
  }
  return replaced;
}

namespace {
OpPtr CloneRec(const OpPtr& op,
               std::unordered_map<const Op*, OpPtr>* memo) {
  auto it = memo->find(op.get());
  if (it != memo->end()) return it->second;
  auto copy = std::make_shared<Op>(*op);
  for (auto& child : copy->children) {
    child = CloneRec(child, memo);
  }
  (*memo)[op.get()] = copy;
  return copy;
}
}  // namespace

OpPtr ClonePlan(const OpPtr& root) {
  std::unordered_map<const Op*, OpPtr> memo;
  return CloneRec(root, &memo);
}

size_t CountOps(const OpPtr& root) { return BottomUpOrder(root).size(); }

size_t CountOps(const OpPtr& root, OpKind kind) {
  size_t n = 0;
  for (Op* op : BottomUpOrder(root)) {
    if (op->kind == kind) ++n;
  }
  return n;
}

}  // namespace xqjg::algebra
