// DAG utilities for algebra plans: traversal orders, parent maps,
// reachability (the paper's ⇛ relation), and node replacement.
#ifndef XQJG_ALGEBRA_DAG_H_
#define XQJG_ALGEBRA_DAG_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/algebra/operators.h"

namespace xqjg::algebra {

/// All distinct nodes reachable from `root`, parents before children
/// (reverse-topological from the leaves' perspective).
std::vector<Op*> TopoOrder(const OpPtr& root);

/// Leaves-first order (children before parents).
std::vector<Op*> BottomUpOrder(const OpPtr& root);

/// parent -> set of (parent node, child slot) links for every node.
struct ParentMap {
  std::unordered_map<const Op*, std::vector<std::pair<Op*, size_t>>> parents;

  /// Number of distinct parent links of `op` (a node may occupy both child
  /// slots of one parent).
  size_t NumParents(const Op* op) const {
    auto it = parents.find(op);
    return it == parents.end() ? 0 : it->second.size();
  }
};

ParentMap BuildParentMap(const OpPtr& root);

/// True iff `target` is reachable from `from` (from ⇛ target), following
/// child edges. A node reaches itself.
bool Reaches(const Op* from, const Op* target);

/// Replaces every occurrence of child `old_child` with `new_child` in the
/// plan under `root` (including the root's own child slots). Returns the
/// number of links rewritten.
size_t ReplaceChild(const OpPtr& root, const Op* old_child, OpPtr new_child);

/// Deep copy of the DAG preserving sharing (shared nodes stay shared in
/// the copy). The rewriter mutates plans in place; clone first when the
/// original must be kept (e.g. stacked-vs-isolated comparisons).
OpPtr ClonePlan(const OpPtr& root);

/// Number of operators in the DAG (distinct nodes).
size_t CountOps(const OpPtr& root);

/// Number of operators of the given kind.
size_t CountOps(const OpPtr& root, OpKind kind);

}  // namespace xqjg::algebra

#endif  // XQJG_ALGEBRA_DAG_H_
