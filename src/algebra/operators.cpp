#include "src/algebra/operators.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <set>

#include "src/common/str.h"

namespace xqjg::algebra {

const char* OpKindToString(OpKind kind) {
  switch (kind) {
    case OpKind::kSerialize:
      return "serialize";
    case OpKind::kProject:
      return "project";
    case OpKind::kSelect:
      return "select";
    case OpKind::kJoin:
      return "join";
    case OpKind::kCross:
      return "cross";
    case OpKind::kDistinct:
      return "distinct";
    case OpKind::kAttach:
      return "attach";
    case OpKind::kRowId:
      return "rowid";
    case OpKind::kRank:
      return "rank";
    case OpKind::kDocTable:
      return "doc";
    case OpKind::kLiteral:
      return "literal";
  }
  return "?";
}

const std::vector<std::string>& DocColumns() {
  static const std::vector<std::string> kCols = {
      "pre", "size", "level", "kind", "name", "value", "data", "parent",
      "root"};
  return kCols;
}

bool Op::HasColumn(const std::string& name) const {
  return std::find(schema.begin(), schema.end(), name) != schema.end();
}

std::string Op::Describe() const {
  switch (kind) {
    case OpKind::kSerialize:
      return "serialize pos:" + order[0] + " item:" + col;
    case OpKind::kProject: {
      std::vector<std::string> parts;
      for (const auto& [out, in] : proj) {
        parts.push_back(out == in ? out : out + ":" + in);
      }
      return "pi " + Join(parts, ",");
    }
    case OpKind::kSelect:
      return "select " + pred.ToString();
    case OpKind::kJoin:
      return "join " + pred.ToString();
    case OpKind::kCross:
      return "cross";
    case OpKind::kDistinct:
      return "distinct";
    case OpKind::kAttach:
      return "attach " + col + ":" + val.ToString();
    case OpKind::kRowId:
      return "rowid " + col;
    case OpKind::kRank:
      return "rank " + col + ":<" + Join(order, ",") + ">";
    case OpKind::kDocTable:
      return "doc";
    case OpKind::kLiteral:
      return StrPrintf("literal [%s] (%zu rows)",
                       Join(schema, ",").c_str(), rows.size());
  }
  return "?";
}

namespace {

std::atomic<int> g_next_op_id{1};

OpPtr New(OpKind kind) {
  auto op = std::make_shared<Op>();
  op->kind = kind;
  op->id = g_next_op_id.fetch_add(1);
  return op;
}

bool Disjoint(const std::vector<std::string>& a,
              const std::vector<std::string>& b) {
  std::set<std::string> sa(a.begin(), a.end());
  for (const auto& c : b) {
    if (sa.count(c)) return false;
  }
  return true;
}

}  // namespace

bool RecomputeSchema(Op* op) {
  auto child_schema = [&](size_t i) -> const std::vector<std::string>& {
    return op->children[i]->schema;
  };
  auto child_has = [&](size_t i, const std::string& c) {
    return op->children[i]->HasColumn(c);
  };
  switch (op->kind) {
    case OpKind::kSerialize:
      op->schema = child_schema(0);
      return op->order.size() == 1 && child_has(0, op->order[0]) &&
             child_has(0, op->col);
    case OpKind::kProject: {
      op->schema.clear();
      std::set<std::string> seen;
      for (const auto& [out, in] : op->proj) {
        if (!child_has(0, in)) return false;
        if (!seen.insert(out).second) return false;  // duplicate output col
        op->schema.push_back(out);
      }
      return !op->schema.empty();
    }
    case OpKind::kSelect: {
      op->schema = child_schema(0);
      for (const auto& c : op->pred.Cols()) {
        if (!child_has(0, c)) return false;
      }
      return true;
    }
    case OpKind::kJoin:
    case OpKind::kCross: {
      if (!Disjoint(child_schema(0), child_schema(1))) return false;
      op->schema = child_schema(0);
      op->schema.insert(op->schema.end(), child_schema(1).begin(),
                        child_schema(1).end());
      if (op->kind == OpKind::kJoin) {
        for (const auto& c : op->pred.Cols()) {
          if (!op->HasColumn(c)) return false;
        }
      }
      return true;
    }
    case OpKind::kDistinct:
      op->schema = child_schema(0);
      return true;
    case OpKind::kAttach:
    case OpKind::kRowId:
      if (child_has(0, op->col)) return false;
      op->schema = child_schema(0);
      op->schema.push_back(op->col);
      return true;
    case OpKind::kRank: {
      if (child_has(0, op->col)) return false;
      for (const auto& c : op->order) {
        if (!child_has(0, c)) return false;
      }
      op->schema = child_schema(0);
      op->schema.push_back(op->col);
      return true;
    }
    case OpKind::kDocTable:
      op->schema = DocColumns();
      return true;
    case OpKind::kLiteral:
      // schema fixed at construction
      return !op->schema.empty();
  }
  return false;
}

OpPtr MakeSerialize(OpPtr input, std::string pos_col, std::string item_col) {
  auto op = New(OpKind::kSerialize);
  op->children = {std::move(input)};
  op->order = {std::move(pos_col)};
  op->col = std::move(item_col);
  bool ok = RecomputeSchema(op.get());
  assert(ok && "serialize input must provide the pos and item columns");
  (void)ok;
  return op;
}

OpPtr MakeProject(OpPtr input,
                  std::vector<std::pair<std::string, std::string>> proj) {
  auto op = New(OpKind::kProject);
  op->children = {std::move(input)};
  op->proj = std::move(proj);
  bool ok = RecomputeSchema(op.get());
  assert(ok && "project references missing column or duplicates outputs");
  (void)ok;
  return op;
}

OpPtr MakeSelect(OpPtr input, Predicate pred) {
  auto op = New(OpKind::kSelect);
  op->children = {std::move(input)};
  op->pred = std::move(pred);
  bool ok = RecomputeSchema(op.get());
  assert(ok && "select predicate references missing column");
  (void)ok;
  return op;
}

OpPtr MakeJoin(OpPtr left, OpPtr right, Predicate pred) {
  auto op = New(OpKind::kJoin);
  op->children = {std::move(left), std::move(right)};
  op->pred = std::move(pred);
  bool ok = RecomputeSchema(op.get());
  assert(ok && "join schemas overlap or predicate references missing column");
  (void)ok;
  return op;
}

OpPtr MakeCross(OpPtr left, OpPtr right) {
  auto op = New(OpKind::kCross);
  op->children = {std::move(left), std::move(right)};
  bool ok = RecomputeSchema(op.get());
  assert(ok && "cross product schemas overlap");
  (void)ok;
  return op;
}

OpPtr MakeDistinct(OpPtr input) {
  auto op = New(OpKind::kDistinct);
  op->children = {std::move(input)};
  RecomputeSchema(op.get());
  return op;
}

OpPtr MakeAttach(OpPtr input, std::string col, Value val) {
  auto op = New(OpKind::kAttach);
  op->children = {std::move(input)};
  op->col = std::move(col);
  op->val = std::move(val);
  bool ok = RecomputeSchema(op.get());
  assert(ok && "attach column already exists");
  (void)ok;
  return op;
}

OpPtr MakeRowId(OpPtr input, std::string col) {
  auto op = New(OpKind::kRowId);
  op->children = {std::move(input)};
  op->col = std::move(col);
  bool ok = RecomputeSchema(op.get());
  assert(ok && "rowid column already exists");
  (void)ok;
  return op;
}

OpPtr MakeRank(OpPtr input, std::string col, std::vector<std::string> order) {
  auto op = New(OpKind::kRank);
  op->children = {std::move(input)};
  op->col = std::move(col);
  op->order = std::move(order);
  bool ok = RecomputeSchema(op.get());
  assert(ok && "rank column clashes or order column missing");
  (void)ok;
  return op;
}

OpPtr MakeDocTable() {
  auto op = New(OpKind::kDocTable);
  RecomputeSchema(op.get());
  return op;
}

OpPtr MakeLiteral(std::vector<std::string> cols,
                  std::vector<std::vector<Value>> rows) {
  auto op = New(OpKind::kLiteral);
  op->schema = std::move(cols);
  op->rows = std::move(rows);
#ifndef NDEBUG
  for (const auto& row : op->rows) {
    assert(row.size() == op->schema.size() && "literal row width mismatch");
  }
#endif
  return op;
}

}  // namespace xqjg::algebra
