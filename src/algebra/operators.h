// The table algebra dialect of paper Table I.
//
// Plans are DAGs of mutable Op nodes connected by shared_ptr children;
// sharing is real (the doc table leaf and variable bindings are shared
// sub-plans). Every node carries its output schema, kept consistent by the
// Make* constructors and the rewriter.
#ifndef XQJG_ALGEBRA_OPERATORS_H_
#define XQJG_ALGEBRA_OPERATORS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/algebra/predicate.h"
#include "src/common/status.h"
#include "src/common/value.h"

namespace xqjg::algebra {

enum class OpKind {
  kSerialize,  ///< plan root (Table I: serialization point)
  kProject,    ///< π  — project / rename
  kSelect,     ///< σ  — row filter
  kJoin,       ///< ⋈  — join with predicate
  kCross,      ///< ×  — Cartesian product
  kDistinct,   ///< δ  — duplicate row elimination
  kAttach,     ///< @  — attach constant column
  kRowId,      ///< #  — attach unique row id
  kRank,       ///< ϱ  — attach row rank (RANK semantics: ties share ranks)
  kDocTable,   ///< doc — the XML infoset encoding table
  kLiteral,    ///< singleton / small literal table
};

const char* OpKindToString(OpKind kind);

struct Op;
using OpPtr = std::shared_ptr<Op>;

/// Output columns of the doc table relation
/// (pre, size, level, kind, name, value, data, parent).
const std::vector<std::string>& DocColumns();

struct Op : std::enable_shared_from_this<Op> {
  OpKind kind;
  std::vector<OpPtr> children;

  /// Output schema (column names, in order).
  std::vector<std::string> schema;

  // --- kProject: (output name, input name) pairs ---
  std::vector<std::pair<std::string, std::string>> proj;
  // --- kSelect / kJoin: conjunctive predicate ---
  Predicate pred;
  // --- kAttach / kRowId / kRank: attached column name ---
  std::string col;
  // --- kAttach: attached constant ---
  Value val;
  // --- kRank: ordering criteria ---
  std::vector<std::string> order;
  // --- kLiteral: column names + rows ---
  std::vector<std::vector<Value>> rows;

  /// Stable id for printing / property tables.
  int id = 0;

  bool HasColumn(const std::string& name) const;

  /// One-line description ("π iter,item:pre", "⋈ pre = item", ...).
  std::string Describe() const;
};

// ---- constructors (validate child schemas; abort on misuse in debug) ----
/// The serialize root records which input columns carry sequence position
/// and item (column names are globally unique in compiled plans, so the
/// root must name them): `pos_col` is stored in `order[0]`, `item_col` in
/// `col`.
OpPtr MakeSerialize(OpPtr input, std::string pos_col, std::string item_col);
OpPtr MakeProject(OpPtr input,
                  std::vector<std::pair<std::string, std::string>> proj);
OpPtr MakeSelect(OpPtr input, Predicate pred);
OpPtr MakeJoin(OpPtr left, OpPtr right, Predicate pred);
OpPtr MakeCross(OpPtr left, OpPtr right);
OpPtr MakeDistinct(OpPtr input);
OpPtr MakeAttach(OpPtr input, std::string col, Value val);
OpPtr MakeRowId(OpPtr input, std::string col);
OpPtr MakeRank(OpPtr input, std::string col, std::vector<std::string> order);
OpPtr MakeDocTable();
OpPtr MakeLiteral(std::vector<std::string> cols,
                  std::vector<std::vector<Value>> rows);

/// Recomputes `op->schema` from its children + parameters (used after the
/// rewriter edits a node in place). Returns false if the node became
/// ill-formed (referenced column missing).
bool RecomputeSchema(Op* op);

}  // namespace xqjg::algebra

#endif  // XQJG_ALGEBRA_OPERATORS_H_
