#include "src/algebra/predicate.h"

#include "src/common/str.h"

namespace xqjg::algebra {

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

CmpOp FlipCmpOp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
    default:
      return op;
  }
}

void Term::CollectCols(std::set<std::string>* out) const {
  if (!col.empty()) out->insert(col);
  if (!col2.empty()) out->insert(col2);
}

bool Term::RenameCols(
    const std::vector<std::pair<std::string, std::string>>& out_to_in) {
  auto map_one = [&](std::string* c) {
    if (c->empty()) return true;
    for (const auto& [out_name, in_name] : out_to_in) {
      if (*c == out_name) {
        *c = in_name;
        return true;
      }
    }
    return false;
  };
  return map_one(&col) && map_one(&col2);
}

// Built with appends (not operator+) throughout: GCC 12's -Wrestrict
// reports false positives on `"literal" + std::string&&` chains.
void AppendTermTail(std::string* out, int param,
                    const std::string& param_name, const Value& constant) {
  if (param >= 0) {
    if (!out->empty()) *out += " + ";
    *out += '$';
    *out += param_name;
  }
  if (!constant.is_null()) {
    if (!out->empty()) {
      *out += " + ";
      *out += constant.ToString();
    } else if (constant.type() == ValueType::kString) {
      *out += '\'';
      *out += constant.ToString();
      *out += '\'';
    } else {
      *out = constant.ToString();
    }
  }
}

std::string Term::ToString() const {
  std::string out;
  if (!col.empty()) out = col;
  if (!col2.empty()) out += " + " + col2;
  AppendTermTail(&out, param, param_name, constant);
  return out.empty() ? "0" : out;
}

bool Term::operator==(const Term& other) const {
  return col == other.col && col2 == other.col2 && param == other.param &&
         constant == other.constant &&
         constant.is_null() == other.constant.is_null();
}

void Comparison::CollectCols(std::set<std::string>* out) const {
  lhs.CollectCols(out);
  rhs.CollectCols(out);
}

std::string Comparison::ToString() const {
  return lhs.ToString() + " " + CmpOpToString(op) + " " + rhs.ToString();
}

bool Comparison::operator==(const Comparison& other) const {
  return op == other.op && lhs == other.lhs && rhs == other.rhs;
}

std::set<std::string> Predicate::Cols() const {
  std::set<std::string> out;
  for (const auto& c : conjuncts) c.CollectCols(&out);
  return out;
}

std::string Predicate::ToString() const {
  if (conjuncts.empty()) return "true";
  std::vector<std::string> parts;
  parts.reserve(conjuncts.size());
  for (const auto& c : conjuncts) parts.push_back(c.ToString());
  return Join(parts, " AND ");
}

}  // namespace xqjg::algebra
