// Predicate language of the table algebra (paper Table I / Fig. 3).
//
// Every predicate is a conjunction of comparisons between *terms*. A term
// is `col (+ col2)? (+ const)?` — exactly enough to express the XPath axis
// predicates (`pre° < pre <= pre° + size°`, `level° + 1 = level`) and the
// kind/name/value tests, and simple enough to ship as one SQL WHERE
// conjunct per comparison.
#ifndef XQJG_ALGEBRA_PREDICATE_H_
#define XQJG_ALGEBRA_PREDICATE_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/value.h"

namespace xqjg::algebra {

/// Comparison operators in predicates.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpToString(CmpOp op);
CmpOp FlipCmpOp(CmpOp op);  ///< a OP b  <=>  b FlipCmpOp(OP) a

/// col + col2 + constant (absent parts contribute nothing).
struct Term {
  std::string col;        ///< empty for pure constants
  std::string col2;       ///< optional second column (e.g. pre + size)
  Value constant;         ///< NULL when absent

  static Term Col(std::string c) { return Term{std::move(c), "", Value()}; }
  static Term ColSum(std::string c1, std::string c2) {
    return Term{std::move(c1), std::move(c2), Value()};
  }
  static Term ColPlus(std::string c, int64_t k) {
    return Term{std::move(c), "", Value::Int(k)};
  }
  static Term Const(Value v) { return Term{"", "", std::move(v)}; }

  bool IsConst() const { return col.empty(); }
  bool IsSimpleCol() const { return !col.empty() && col2.empty() && constant.is_null(); }

  /// Columns referenced by this term.
  void CollectCols(std::set<std::string>* out) const;

  /// Substitutes column names (for pushing predicates through renames).
  /// Returns false if a referenced column has no image in `mapping`.
  bool RenameCols(const std::vector<std::pair<std::string, std::string>>&
                      out_to_in);

  std::string ToString() const;
  bool operator==(const Term& other) const;
};

/// One conjunct: lhs op rhs.
struct Comparison {
  Term lhs;
  CmpOp op = CmpOp::kEq;
  Term rhs;

  /// True iff this is `a = b` for two plain columns.
  bool IsColEq() const {
    return op == CmpOp::kEq && lhs.IsSimpleCol() && rhs.IsSimpleCol();
  }

  void CollectCols(std::set<std::string>* out) const;
  std::string ToString() const;
  bool operator==(const Comparison& other) const;
};

/// A conjunction of comparisons; empty predicate = true.
struct Predicate {
  std::vector<Comparison> conjuncts;

  static Predicate True() { return Predicate{}; }
  static Predicate Single(Term lhs, CmpOp op, Term rhs) {
    return Predicate{{Comparison{std::move(lhs), op, std::move(rhs)}}};
  }

  Predicate& And(Term lhs, CmpOp op, Term rhs) {
    conjuncts.push_back(Comparison{std::move(lhs), op, std::move(rhs)});
    return *this;
  }
  Predicate& And(const Predicate& other) {
    conjuncts.insert(conjuncts.end(), other.conjuncts.begin(),
                     other.conjuncts.end());
    return *this;
  }

  bool IsTrue() const { return conjuncts.empty(); }

  /// cols(p) of the paper's property inference.
  std::set<std::string> Cols() const;

  std::string ToString() const;
};

}  // namespace xqjg::algebra

#endif  // XQJG_ALGEBRA_PREDICATE_H_
