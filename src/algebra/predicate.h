// Predicate language of the table algebra (paper Table I / Fig. 3).
//
// Every predicate is a conjunction of comparisons between *terms*. A term
// is `col (+ col2)? (+ const)?` — exactly enough to express the XPath axis
// predicates (`pre° < pre <= pre° + size°`, `level° + 1 = level`) and the
// kind/name/value tests, and simple enough to ship as one SQL WHERE
// conjunct per comparison.
#ifndef XQJG_ALGEBRA_PREDICATE_H_
#define XQJG_ALGEBRA_PREDICATE_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/value.h"

namespace xqjg::algebra {

/// Comparison operators in predicates.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpToString(CmpOp op);
CmpOp FlipCmpOp(CmpOp op);  ///< a OP b  <=>  b FlipCmpOp(OP) a

/// col + col2 + constant (absent parts contribute nothing). A term may
/// instead be a *parameter marker* (param >= 0): a constant whose value is
/// unknown until Execute binds it — the executors substitute the bound
/// Value for `constant` before compiling qualifiers.
struct Term {
  std::string col;        ///< empty for pure constants
  std::string col2;       ///< optional second column (e.g. pre + size)
  Value constant;         ///< NULL when absent
  int param = -1;         ///< binding slot of a parameter marker
  std::string param_name; ///< parameter name (diagnostics / rendering)

  static Term Col(std::string c) {
    Term t;
    t.col = std::move(c);
    return t;
  }
  static Term ColSum(std::string c1, std::string c2) {
    Term t;
    t.col = std::move(c1);
    t.col2 = std::move(c2);
    return t;
  }
  static Term ColPlus(std::string c, int64_t k) {
    Term t;
    t.col = std::move(c);
    t.constant = Value::Int(k);
    return t;
  }
  static Term Const(Value v) {
    Term t;
    t.constant = std::move(v);
    return t;
  }
  static Term Param(int slot, std::string name) {
    Term t;
    t.param = slot;
    t.param_name = std::move(name);
    return t;
  }

  bool IsConst() const { return col.empty(); }
  bool IsParam() const { return param >= 0; }
  bool IsSimpleCol() const {
    return !col.empty() && col2.empty() && constant.is_null();
  }

  /// Columns referenced by this term.
  void CollectCols(std::set<std::string>* out) const;

  /// Substitutes column names (for pushing predicates through renames).
  /// Returns false if a referenced column has no image in `mapping`.
  bool RenameCols(const std::vector<std::pair<std::string, std::string>>&
                      out_to_in);

  std::string ToString() const;
  bool operator==(const Term& other) const;
};

/// One conjunct: lhs op rhs.
struct Comparison {
  Term lhs;
  CmpOp op = CmpOp::kEq;
  Term rhs;

  /// True iff this is `a = b` for two plain columns.
  bool IsColEq() const {
    return op == CmpOp::kEq && lhs.IsSimpleCol() && rhs.IsSimpleCol();
  }

  void CollectCols(std::set<std::string>* out) const;
  std::string ToString() const;
  bool operator==(const Comparison& other) const;
};

/// Substitutes a bound Value for a parameter marker (counterpart of the
/// join-graph ResolveParams in engine/qual_eval.h, for the stacked plan's
/// algebra terms). With no bindings a marker keeps its NULL constant, so
/// every comparison against it is false — the same contract as an unbound
/// qualifier. Out-of-range slots also stay NULL (Execute validates the
/// binding list before any executor runs).
inline Term ResolveParams(Term t, const std::vector<Value>* params) {
  if (t.IsParam() && params && t.param < static_cast<int>(params->size())) {
    t.constant = (*params)[t.param];
    t.param = -1;
  }
  return t;
}

inline Comparison ResolveParams(Comparison c,
                                const std::vector<Value>* params) {
  c.lhs = ResolveParams(std::move(c.lhs), params);
  c.rhs = ResolveParams(std::move(c.rhs), params);
  return c;
}

/// Appends a term's parameter-marker / constant tail to `out` (shared by
/// the algebra Term and the join graph's QualTerm renderers, which must
/// agree): " + $name" / "$name", then " + const" / "'const'" / "const".
void AppendTermTail(std::string* out, int param,
                    const std::string& param_name, const Value& constant);

/// A conjunction of comparisons; empty predicate = true.
struct Predicate {
  std::vector<Comparison> conjuncts;

  static Predicate True() { return Predicate{}; }
  static Predicate Single(Term lhs, CmpOp op, Term rhs) {
    return Predicate{{Comparison{std::move(lhs), op, std::move(rhs)}}};
  }

  Predicate& And(Term lhs, CmpOp op, Term rhs) {
    conjuncts.push_back(Comparison{std::move(lhs), op, std::move(rhs)});
    return *this;
  }
  Predicate& And(const Predicate& other) {
    conjuncts.insert(conjuncts.end(), other.conjuncts.begin(),
                     other.conjuncts.end());
    return *this;
  }

  bool IsTrue() const { return conjuncts.empty(); }

  /// cols(p) of the paper's property inference.
  std::set<std::string> Cols() const;

  std::string ToString() const;
};

}  // namespace xqjg::algebra

#endif  // XQJG_ALGEBRA_PREDICATE_H_
