#include "src/algebra/printer.h"

#include <map>
#include <unordered_set>

#include "src/algebra/dag.h"
#include "src/common/str.h"

namespace xqjg::algebra {

namespace {

void PrintNode(const Op* op, int depth, std::unordered_set<const Op*>* seen,
               std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  if (!seen->insert(op).second) {
    *out += StrPrintf("^ref %d\n", op->id);
    return;
  }
  *out += StrPrintf("[%d] %s\n", op->id, op->Describe().c_str());
  for (const auto& child : op->children) {
    PrintNode(child.get(), depth + 1, seen, out);
  }
}

}  // namespace

std::string PrintPlan(const OpPtr& root) {
  std::string out;
  std::unordered_set<const Op*> seen;
  PrintNode(root.get(), 0, &seen, &out);
  return out;
}

std::string PlanToDot(const OpPtr& root) {
  std::string out = "digraph plan {\n  rankdir=BT;\n  node [shape=box];\n";
  for (const Op* op : BottomUpOrder(root)) {
    std::string label = op->Describe();
    // Escape quotes for dot.
    std::string escaped;
    for (char c : label) {
      if (c == '"') escaped += "\\\"";
      else escaped += c;
    }
    out += StrPrintf("  n%d [label=\"%s\"];\n", op->id, escaped.c_str());
    for (const auto& child : op->children) {
      out += StrPrintf("  n%d -> n%d;\n", child->id, op->id);
    }
  }
  out += "}\n";
  return out;
}

std::string OperatorCensus(const OpPtr& root) {
  std::map<std::string, int> counts;
  for (const Op* op : BottomUpOrder(root)) {
    counts[OpKindToString(op->kind)]++;
  }
  std::vector<std::string> parts;
  for (const auto& [name, count] : counts) {
    parts.push_back(StrPrintf("%s:%d", name.c_str(), count));
  }
  return Join(parts, " ");
}

}  // namespace xqjg::algebra
