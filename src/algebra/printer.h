// Plan rendering: indented tree (with DAG sharing markers) and Graphviz.
#ifndef XQJG_ALGEBRA_PRINTER_H_
#define XQJG_ALGEBRA_PRINTER_H_

#include <string>

#include "src/algebra/operators.h"

namespace xqjg::algebra {

/// Indented plan tree. Shared nodes print in full the first time and as
/// "^ref <id>" afterwards.
std::string PrintPlan(const OpPtr& root);

/// Graphviz dot output (one node per operator, edges child -> parent).
std::string PlanToDot(const OpPtr& root);

/// One-line operator census ("serialize:1 project:12 join:5 ...").
std::string OperatorCensus(const OpPtr& root);

}  // namespace xqjg::algebra

#endif  // XQJG_ALGEBRA_PRINTER_H_
