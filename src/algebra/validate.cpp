#include "src/algebra/validate.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/common/str.h"

namespace xqjg::algebra {

namespace {

/// Depth-limited, cycle-safe subtree rendering for error excerpts (the
/// full-plan printer is unbounded; an excerpt shows the neighborhood the
/// violation lives in).
void PrintExcerpt(const Op* op, int depth, int max_depth,
                  std::unordered_set<const Op*>* seen, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  if (!op) {
    *out += "<null child>\n";
    return;
  }
  if (!seen->insert(op).second) {
    *out += StrPrintf("^ref %d\n", op->id);
    return;
  }
  *out += StrPrintf("[%d] %s\n", op->id, op->Describe().c_str());
  if (depth >= max_depth) {
    if (!op->children.empty()) {
      out->append(static_cast<size_t>(depth + 1) * 2, ' ');
      *out += "…\n";
    }
    return;
  }
  for (const auto& child : op->children) {
    PrintExcerpt(child.get(), depth + 1, max_depth, seen, out);
  }
}

std::string Excerpt(const Op* op, int max_depth) {
  std::string out;
  std::unordered_set<const Op*> seen;
  PrintExcerpt(op, 0, max_depth, &seen, &out);
  return out;
}

/// Expected number of children per operator kind.
int ExpectedArity(OpKind kind) {
  switch (kind) {
    case OpKind::kDocTable:
    case OpKind::kLiteral:
      return 0;
    case OpKind::kJoin:
    case OpKind::kCross:
      return 2;
    case OpKind::kSerialize:
    case OpKind::kProject:
    case OpKind::kSelect:
    case OpKind::kDistinct:
    case OpKind::kAttach:
    case OpKind::kRowId:
    case OpKind::kRank:
      return 1;
  }
  return -1;
}

class Validator {
 public:
  Validator(const std::string& stage, const ValidateOptions& options)
      : stage_(stage), options_(options) {}

  std::vector<ValidationError> Run(const OpPtr& root) {
    if (!root) {
      Report(nullptr, "dag-structure", "plan root is null");
      return std::move(errors_);
    }
    // Cycle detection + node collection in one DFS. A cyclic plan would
    // hang every recursive traversal downstream (TopoOrder, the
    // executors), so nothing else is checked until the plan is a DAG.
    if (!CheckAcyclic(root.get())) return std::move(errors_);
    if (options_.expect_serialize_root &&
        root->kind != OpKind::kSerialize) {
      Report(root.get(), "dag-structure",
             StrPrintf("plan root is %s, expected serialize",
                       OpKindToString(root->kind)));
    }
    for (const Op* op : order_) {
      CheckNode(op, op == root.get());
    }
    return std::move(errors_);
  }

 private:
  void Report(const Op* op, const char* invariant, std::string detail) {
    ValidationError err;
    err.stage = stage_;
    err.invariant = invariant;
    err.detail = std::move(detail);
    if (op) {
      err.op_id = op->id;
      err.op_desc = StrPrintf("[%d] %s", op->id, op->Describe().c_str());
      err.excerpt = Excerpt(op, options_.excerpt_depth);
    }
    errors_.push_back(std::move(err));
  }

  /// Iterative three-color DFS; fills `order_` (children before parents)
  /// when acyclic, reports the back edge when not.
  bool CheckAcyclic(const Op* root) {
    enum class Color { kOnStack, kDone };
    std::unordered_map<const Op*, Color> color;
    struct Frame {
      const Op* op;
      size_t next_child = 0;
    };
    std::vector<Frame> stack{{root}};
    color[root] = Color::kOnStack;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const Op* op = frame.op;
      if (frame.next_child < op->children.size()) {
        const Op* child = op->children[frame.next_child++].get();
        if (!child) continue;  // reported as dag-structure per node
        auto it = color.find(child);
        if (it == color.end()) {
          color[child] = Color::kOnStack;
          stack.push_back({child});
        } else if (it->second == Color::kOnStack) {
          Report(op, "acyclic",
                 StrPrintf("child edge to [%d] %s closes a cycle (the "
                           "child reaches this operator)",
                           child->id, child->Describe().c_str()));
          return false;
        }
        continue;
      }
      color[op] = Color::kDone;
      order_.push_back(op);
      stack.pop_back();
    }
    return true;
  }

  /// True iff `col` is produced by exactly one child of `op` (the
  /// "consumed column has exactly one producer" half of column-ref;
  /// duplicate producers across join inputs surface via schema-unique).
  bool ProducedByOneChild(const Op* op, const std::string& col) const {
    int producers = 0;
    for (const auto& child : op->children) {
      if (child && child->HasColumn(col)) ++producers;
    }
    return producers == 1;
  }

  void CheckConsumed(const Op* op, const std::string& col,
                     const char* role) {
    if (!ProducedByOneChild(op, col)) {
      Report(op, "column-ref",
             StrPrintf("%s column '%s' is not produced by exactly one "
                       "child", role, col.c_str()));
    }
  }

  void CheckTerm(const Op* op, const Term& t) {
    for (const std::string* col : {&t.col, &t.col2}) {
      if (!col->empty()) CheckConsumed(op, *col, "predicate");
    }
    if (t.IsParam()) {
      if (t.param_name.empty()) {
        Report(op, "param-slot",
               StrPrintf("parameter marker slot %d has no name", t.param));
      }
      if (options_.num_params != kParamsUnknown &&
          t.param >= options_.num_params) {
        Report(op, "param-slot",
               StrPrintf("parameter marker $%s uses slot %d but only %d "
                         "external variable(s) are declared",
                         t.param_name.c_str(), t.param,
                         options_.num_params));
      }
    }
  }

  void CheckPredicate(const Op* op) {
    for (const Comparison& c : op->pred.conjuncts) {
      CheckTerm(op, c.lhs);
      CheckTerm(op, c.rhs);
    }
  }

  void CheckSchemaEquals(const Op* op,
                         const std::vector<std::string>& expected) {
    if (op->schema != expected) {
      Report(op, "schema-arith",
             StrPrintf("stored schema (%s) does not match the schema "
                       "recomputed from the children (%s)",
                       Join(op->schema, ",").c_str(),
                       Join(expected, ",").c_str()));
    }
  }

  void CheckNode(const Op* op, bool is_root) {
    // Arity / null children first: the per-kind checks below index
    // children unconditionally.
    const int arity = ExpectedArity(op->kind);
    if (static_cast<int>(op->children.size()) != arity) {
      Report(op, "dag-structure",
             StrPrintf("%s has %zu children, expected %d",
                       OpKindToString(op->kind), op->children.size(),
                       arity));
      return;
    }
    for (const auto& child : op->children) {
      if (!child) {
        Report(op, "dag-structure", "null child pointer (dangling node)");
        return;
      }
    }
    if (op->kind == OpKind::kSerialize && !is_root) {
      Report(op, "dag-structure",
             "serialize below the root (a plan has exactly one "
             "serialization point)");
    }

    // Output schema is duplicate-free.
    {
      std::set<std::string> seen;
      for (const std::string& col : op->schema) {
        if (!seen.insert(col).second) {
          Report(op, "schema-unique",
                 StrPrintf("output schema lists column '%s' twice",
                           col.c_str()));
        }
      }
    }

    switch (op->kind) {
      case OpKind::kSerialize:
        if (op->order.size() != 1) {
          Report(op, "dag-structure",
                 StrPrintf("serialize carries %zu pos columns, expected 1",
                           op->order.size()));
          break;
        }
        CheckConsumed(op, op->order[0], "serialize pos");
        CheckConsumed(op, op->col, "serialize item");
        CheckSchemaEquals(op, op->children[0]->schema);
        break;
      case OpKind::kProject: {
        std::vector<std::string> expected;
        expected.reserve(op->proj.size());
        for (const auto& [out, in] : op->proj) {
          CheckConsumed(op, in, "projection input");
          expected.push_back(out);
        }
        if (expected.empty()) {
          Report(op, "schema-arith", "projection has no output columns");
        }
        CheckSchemaEquals(op, expected);
        break;
      }
      case OpKind::kSelect:
        CheckPredicate(op);
        CheckSchemaEquals(op, op->children[0]->schema);
        break;
      case OpKind::kJoin:
      case OpKind::kCross: {
        const Op* left = op->children[0].get();
        const Op* right = op->children[1].get();
        for (const std::string& col : right->schema) {
          if (left->HasColumn(col)) {
            Report(op, "schema-unique",
                   StrPrintf("column '%s' is produced by both join "
                             "inputs (schemas must be disjoint)",
                             col.c_str()));
          }
        }
        if (op->kind == OpKind::kJoin) CheckPredicate(op);
        std::vector<std::string> expected = left->schema;
        expected.insert(expected.end(), right->schema.begin(),
                        right->schema.end());
        CheckSchemaEquals(op, expected);
        break;
      }
      case OpKind::kDistinct:
        CheckSchemaEquals(op, op->children[0]->schema);
        break;
      case OpKind::kAttach:
      case OpKind::kRowId:
      case OpKind::kRank: {
        if (op->children[0]->HasColumn(op->col)) {
          Report(op, "schema-arith",
                 StrPrintf("attached column '%s' already exists in the "
                           "input", op->col.c_str()));
        }
        if (op->kind == OpKind::kRank) {
          for (const std::string& col : op->order) {
            CheckConsumed(op, col, "rank order");
          }
        }
        std::vector<std::string> expected = op->children[0]->schema;
        expected.push_back(op->col);
        CheckSchemaEquals(op, expected);
        break;
      }
      case OpKind::kDocTable:
        CheckSchemaEquals(op, DocColumns());
        break;
      case OpKind::kLiteral:
        if (op->schema.empty()) {
          Report(op, "schema-arith", "literal has an empty schema");
        }
        for (const auto& row : op->rows) {
          if (row.size() != op->schema.size()) {
            Report(op, "literal-shape",
                   StrPrintf("literal row has %zu cells for a %zu-column "
                             "schema", row.size(), op->schema.size()));
            break;
          }
        }
        break;
    }
  }

  const std::string& stage_;
  const ValidateOptions& options_;
  std::vector<const Op*> order_;
  std::vector<ValidationError> errors_;
};

}  // namespace

std::string ValidationError::ToString() const {
  std::string out = StrPrintf(
      "plan validation failed [stage=%s] [op=%s] [invariant=%s]: %s",
      stage.c_str(), op_id >= 0 ? op_desc.c_str() : "<plan>",
      invariant.c_str(), detail.c_str());
  if (!excerpt.empty()) {
    out += "\nplan excerpt:\n";
    out += excerpt;
  }
  return out;
}

Status ValidationError::ToStatus() const {
  return Status::Internal(ToString());
}

std::vector<ValidationError> ValidatePlan(const OpPtr& root,
                                          const std::string& stage,
                                          const ValidateOptions& options) {
  return Validator(stage, options).Run(root);
}

Status Validate(const OpPtr& root, const std::string& stage,
                const ValidateOptions& options) {
  std::vector<ValidationError> errors = ValidatePlan(root, stage, options);
  if (errors.empty()) return Status::OK();
  return errors.front().ToStatus();
}

}  // namespace xqjg::algebra
