// Static plan verifier for the table-algebra DAG (stage-boundary
// invariant checking).
//
// Every correctness bug this repo has shipped was an inter-stage invariant
// silently violated and only caught much later (sanitizers, differential
// fuzzing). Validate() turns those latent violations into immediate, named
// diagnostics: it checks a plan's well-formedness after each compilation
// stage — and, under XQJG_VALIDATE_REWRITES=1, after every individual
// rewrite rule — so a broken plan is rejected at the boundary that broke
// it, with the stage, the offending operator, and the violated invariant
// in the error message.
//
// Checked invariant classes (stable tokens, used in diagnostics and the
// negative tests):
//   acyclic        the plan is a DAG: no child edge reaches an ancestor
//   dag-structure  non-null root/children, per-kind arity, serialize only
//                  at the root (one serialization point per plan)
//   schema-unique  no duplicate column names in an operator's output, and
//                  join/cross inputs are disjoint — every column an
//                  operator consumes is produced by exactly one child
//   column-ref     every consumed column (predicate, projection input,
//                  rank order, serialize pos/item) exists in a child
//   schema-arith   the stored output schema equals the schema recomputed
//                  from the children (π/@/#/ϱ arithmetic is consistent)
//   literal-shape  literal rows match the literal schema width
//   param-slot     every kParam marker has a name and a slot that maps to
//                  a declared external variable
//
// Cost: one linear DFS plus per-node schema recomputation — micro-seconds
// on paper-sized plans. On by default in Debug builds and under ctest;
// request it explicitly in Release via PrepareOptions::validate_plans or
// XQJG_VALIDATE_PLANS=1 (see src/api/prepared_query.h).
#ifndef XQJG_ALGEBRA_VALIDATE_H_
#define XQJG_ALGEBRA_VALIDATE_H_

#include <string>
#include <vector>

#include "src/algebra/operators.h"
#include "src/common/status.h"

namespace xqjg::algebra {

/// One violated plan invariant — the diagnostic vocabulary shared by the
/// algebra validator, the join-graph/physical-plan checks in
/// src/opt/plan_check.h, and future optimizer work.
struct ValidationError {
  std::string stage;      ///< pipeline stage that produced the plan
  std::string invariant;  ///< violated invariant class (stable token)
  std::string detail;     ///< what exactly is wrong
  int op_id = -1;         ///< offending operator id (-1: whole plan)
  std::string op_desc;    ///< offending operator ("[12] join pre = item")
  std::string excerpt;    ///< printed plan excerpt around the operator

  /// "plan validation failed [stage=isolate] [op=[12] join …]
  ///  [invariant=schema-arith]: detail" + the excerpt on following lines.
  std::string ToString() const;
  /// The same, as the Status the compilation pipeline returns.
  Status ToStatus() const;
};

struct ValidateOptions {
  /// Compiled plans have exactly one serialization point, at the root.
  /// Rewrite-rule validation and tests over hand-built plan fragments
  /// disable this.
  bool expect_serialize_root = true;
  /// Number of declared external parameter slots; kParam markers must map
  /// into [0, num_params). kParamsUnknown skips the upper-bound check
  /// (used mid-rewrite where the declaration count is out of scope).
  int num_params = -1;
  /// Depth of the per-error plan excerpt (offending operator + children).
  int excerpt_depth = 2;
};

inline constexpr int kParamsUnknown = -1;

/// Runs every structural check over the DAG under `root` and returns all
/// violations (empty: the plan is well-formed). `stage` names the
/// pipeline stage whose output is being checked (e.g. "compile",
/// "isolate", "rewrite:r11-push-join") and is echoed in each error.
std::vector<ValidationError> ValidatePlan(const OpPtr& root,
                                          const std::string& stage,
                                          const ValidateOptions& options = {});

/// Status-returning wrapper: OK when well-formed, else the first
/// violation as Status::Internal naming stage, operator, and invariant.
Status Validate(const OpPtr& root, const std::string& stage,
                const ValidateOptions& options = {});

}  // namespace xqjg::algebra

#endif  // XQJG_ALGEBRA_VALIDATE_H_
