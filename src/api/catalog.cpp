#include "src/api/catalog.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "src/xml/doc_block.h"
#include "src/xml/parser.h"

namespace xqjg::api {

std::shared_ptr<const xml::DocTable> CatalogSnapshot::doc_table() const {
  std::lock_guard<std::mutex> lock(doc_slot->mu);
  if (!doc_slot->table) {
    // Parse every retained source into one scratch builder table, then
    // freeze it into the shared column block. The scratch vectors are
    // discarded; the published DocTable is a VIEW over the block, so the
    // relational database and the columnar doc-relation batch can adopt
    // the same columns without copying.
    xml::DocTable scratch;
    for (const DocSource& s : *sources) {
      // Every source parsed successfully when it was loaded (the DOM
      // build shares the scanner), so this cannot fail on retained
      // input. A failure here means the doc relation would silently
      // lose a document — abort loudly rather than serve wrong results.
      Status st = xml::LoadDocument(&scratch, s.uri, *s.xml);
      if (!st.ok()) {
        std::fprintf(stderr,
                     "fatal: retained source '%s' failed to rebuild the "
                     "doc relation: %s\n",
                     s.uri.c_str(), st.ToString().c_str());
        std::abort();
      }
    }
    doc_slot->table = std::make_shared<const xml::DocTable>(
        xml::DocTable::FromBlock(xml::DocBlock::FromTable(scratch)));
  }
  return doc_slot->table;
}

std::shared_ptr<const engine::Database> CatalogSnapshot::relational_db()
    const {
  std::lock_guard<std::mutex> lock(db_slot->mu);
  if (!db_slot->db) {
    db_slot->db = std::shared_ptr<const engine::Database>(
        engine::Database::Build(*doc_table()));
  }
  return db_slot->db;
}

int64_t CatalogSnapshot::RetainedStorageBytes() const {
  int64_t total = 0;
  std::vector<const ValueColumn*> cols_seen;
  std::vector<const void*> dicts_seen;
  auto add_column = [&](const std::shared_ptr<const ValueColumn>& col) {
    if (!col) return;
    if (std::find(cols_seen.begin(), cols_seen.end(), col.get()) !=
        cols_seen.end()) {
      return;  // same column object viewed by another lane — charged once
    }
    cols_seen.push_back(col.get());
    total += col->ApproxBytes();
    const auto dict = col->dict_ptr();
    if (dict && std::find(dicts_seen.begin(), dicts_seen.end(),
                          static_cast<const void*>(dict.get())) ==
                    dicts_seen.end()) {
      dicts_seen.push_back(dict.get());
      total += col->dict_bytes();
    }
  };
  {
    std::lock_guard<std::mutex> lock(doc_slot->mu);
    if (doc_slot->table && doc_slot->table->block()) {
      for (const auto& col : doc_slot->table->block()->columns()) {
        add_column(col);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(db_slot->mu);
    if (db_slot->db) {
      const auto& cols = engine::EngineDocColumns();
      for (size_t c = 0; c < cols.size(); ++c) {
        add_column(db_slot->db->ColumnPtr(static_cast<int>(c)));
      }
    }
  }
  if (whole_store) total += whole_store->RetainedBytes();
  if (segmented_store) total += segmented_store->RetainedBytes();
  return total;
}

}  // namespace xqjg::api
