#include "src/api/catalog.h"

#include <cstdio>
#include <cstdlib>

#include "src/xml/parser.h"

namespace xqjg::api {

std::shared_ptr<const xml::DocTable> CatalogSnapshot::doc_table() const {
  std::lock_guard<std::mutex> lock(doc_slot->mu);
  if (!doc_slot->table) {
    auto table = std::make_shared<xml::DocTable>();
    for (const DocSource& s : *sources) {
      // Every source parsed successfully when it was loaded (the DOM
      // build shares the scanner), so this cannot fail on retained
      // input. A failure here means the doc relation would silently
      // lose a document — abort loudly rather than serve wrong results.
      Status st = xml::LoadDocument(table.get(), s.uri, *s.xml);
      if (!st.ok()) {
        std::fprintf(stderr,
                     "fatal: retained source '%s' failed to rebuild the "
                     "doc relation: %s\n",
                     s.uri.c_str(), st.ToString().c_str());
        std::abort();
      }
    }
    doc_slot->table = std::move(table);
  }
  return doc_slot->table;
}

std::shared_ptr<const engine::Database> CatalogSnapshot::relational_db()
    const {
  std::lock_guard<std::mutex> lock(db_slot->mu);
  if (!db_slot->db) {
    db_slot->db = std::shared_ptr<const engine::Database>(
        engine::Database::Build(*doc_table()));
  }
  return db_slot->db;
}

}  // namespace xqjg::api
