// CatalogSnapshot — one immutable, shared-ownership version of the
// processor's catalog: the doc relation in every storage layout, the
// relational database (columns + statistics + B-tree indexes), and the
// native engines with their pattern indexes.
//
// The processor publishes exactly one current snapshot behind a swap;
// catalog mutations (LoadDocument, index create/drop) build a NEW
// snapshot and swap it in, sharing what they do not change: index DDL
// shares the doc-relation columns/statistics and every untouched B-tree;
// a document load shares the other URIs' parsed native-store documents,
// while the merged doc relation (whose pre ranks span all documents) and
// the relational database derive lazily from the retained sources.
// Prepare pins the snapshot it compiled against inside the
// PreparedQuery, and every ResultCursor executes against its prepared
// snapshot, so a catalog mutation never blocks, races, or invalidates an
// in-flight execution: old executions drain on the old snapshot while
// new sessions see the new catalog.
//
// Per-object epochs give the plan cache (and the Execute-time staleness
// check) per-document invalidation granularity: a prepared artifact stays
// servable while every catalog object it touches is unchanged, even if
// the snapshot it pins is no longer current.
#ifndef XQJG_API_CATALOG_H_
#define XQJG_API_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/engine/database.h"
#include "src/native/store.h"
#include "src/native/xscan.h"
#include "src/xml/infoset.h"

namespace xqjg::api {

/// Epoch recorded for a document a query touches that was not loaded when
/// the query was prepared (loading it later is a visible change).
inline constexpr uint64_t kDocAbsent = ~uint64_t{0};

struct CatalogSnapshot {
  /// Monotonic catalog version; every mutation publishes generation + 1.
  uint64_t generation = 0;

  /// Per-document epoch, keyed by URI. 0 on first load; a reload of the
  /// same URI bumps it. Loading a NEW document leaves other URIs' epochs
  /// untouched — that is the invalidation granularity.
  std::map<std::string, uint64_t> doc_epochs;
  /// Bumped by relational index DDL (create/drop) only. Document loads
  /// reset the relational index set (historical contract) without bumping
  /// this: plans pinned to older snapshots keep their own B-trees.
  uint64_t index_epoch = 0;
  /// Bumped by native XMLPATTERN index declarations.
  uint64_t pattern_epoch = 0;

  /// Definitions of the relational B-tree set, keyed by index name
  /// (value: IndexDef::ToString()). Maintained by index DDL alongside
  /// index_epoch; a document load resets the index set (historical
  /// contract) and leaves this empty without bumping the epoch. The plan
  /// cache intersects a plan's *used* indexes against this map so that
  /// unrelated index DDL does not evict it (see ServableAgainst).
  std::map<std::string, std::string> index_defs;

  /// Source documents in load order (uri + shared XML text). What the
  /// lazy doc-relation build parses; text is shared across snapshots, so
  /// carrying it costs one shared_ptr per document per snapshot.
  struct DocSource {
    std::string uri;
    std::shared_ptr<const std::string> xml;
  };
  std::shared_ptr<const std::vector<DocSource>> sources =
      std::make_shared<std::vector<DocSource>>();

  /// Lazily built derived state. Loading N documents creates N snapshots
  /// but pays neither the merged pre/size/level table nor relational
  /// column/stats construction per load — the doc relation materializes
  /// once, on first relational (or serialization) use, and native-only
  /// workloads never build it at all. Each slot is a separate shared
  /// object so snapshot copies that do NOT change the underlying state
  /// (e.g. pattern-index DDL) share one build, while mutations that do
  /// change it install a fresh slot. Read through the accessors below,
  /// never the slots directly.
  struct TableSlot {
    std::mutex mu;
    std::shared_ptr<const xml::DocTable> table;
  };
  struct DatabaseSlot {
    std::mutex mu;
    std::shared_ptr<const engine::Database> db;
  };
  std::shared_ptr<TableSlot> doc_slot = std::make_shared<TableSlot>();
  std::shared_ptr<DatabaseSlot> db_slot = std::make_shared<DatabaseSlot>();

  /// Get-or-build the doc relation (every caller sees one instance).
  /// Thread-safe; sources were validated when loaded, so the build
  /// cannot fail on retained input.
  std::shared_ptr<const xml::DocTable> doc_table() const;

  /// Get-or-build the relational database over doc_table(). Thread-safe;
  /// every caller sees the same instance (plans compiled over it hold
  /// pointers into its B-trees).
  std::shared_ptr<const engine::Database> relational_db() const;

  /// Approximate heap bytes of doc-relation STORAGE retained by this
  /// snapshot across every lane: the shared column block (payloads +
  /// dictionaries, each distinct ValueColumn/StringDict charged once, by
  /// pointer — the relational database and the columnar batches view the
  /// same objects) plus the native stores' materialized DOM trees.
  /// Excludes retained source text (the load input, not a storage copy),
  /// column statistics, and B-trees. Never forces a lazy build: state
  /// that was not materialized costs nothing.
  int64_t RetainedStorageBytes() const;

  /// Native storage layouts.
  std::shared_ptr<const native::DocumentStore> whole_store;
  std::shared_ptr<const native::DocumentStore> segmented_store;
  /// Native engines over the two stores (null until a document is loaded).
  std::shared_ptr<const native::NativeEngine> whole_engine;
  std::shared_ptr<const native::NativeEngine> segmented_engine;

  /// Current epoch of `uri`, or kDocAbsent when not loaded.
  uint64_t DocEpoch(const std::string& uri) const {
    auto it = doc_epochs.find(uri);
    return it == doc_epochs.end() ? kDocAbsent : it->second;
  }
};

}  // namespace xqjg::api

#endif  // XQJG_API_CATALOG_H_
