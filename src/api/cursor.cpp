#include "src/api/cursor.h"

#include <chrono>
#include <utility>

#include "src/engine/algebra_exec.h"
#include "src/engine/planner.h"
#include "src/native/xscan.h"
#include "src/xml/serializer.h"

namespace xqjg::api {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Accrues wall time into an accumulator on every exit path — a fetch
/// that times out did real work and must still show up in fetch_seconds.
class SecondsGuard {
 public:
  explicit SecondsGuard(double* acc)
      : acc_(acc), start_(std::chrono::steady_clock::now()) {}
  ~SecondsGuard() { *acc_ += SecondsSince(start_); }
  SecondsGuard(const SecondsGuard&) = delete;
  SecondsGuard& operator=(const SecondsGuard&) = delete;

 private:
  double* acc_;
  std::chrono::steady_clock::time_point start_;
};

/// FetchAll drains in bounded bites so a pipelined stream never has to
/// hand over more than this many pre ranks at once.
constexpr size_t kFetchAllBatch = 4096;

}  // namespace

Status ResultCursor::EnsureExecuted() {
  if (executed_) return Status::OK();
  const auto started = std::chrono::steady_clock::now();
  const PreparedQuery& pq = *prepared_;
  const CatalogSnapshot& cat = catalog();
  switch (pq.options.mode) {
    case Mode::kNativeWhole:
    case Mode::kNativeSegmented: {
      const native::NativeEngine* engine =
          pq.options.mode == Mode::kNativeWhole ? cat.whole_engine.get()
                                                : cat.segmented_engine.get();
      // Execute() verified the engine exists before handing out a cursor.
      // The native engine serializes while evaluating; row budgets do not
      // apply (it materializes no relational intermediates).
      //
      // The interpreter evaluates literals directly — it has no marker
      // substitution point — so parameterized executions bind their
      // values into a literal Core tree here (unchanged subtrees shared
      // with the cached artifact). One Prepare still serves the whole
      // literal family; only this execution sees the bound tree.
      xquery::ExprPtr core = pq.core;
      if (!params_.empty()) {
        XQJG_ASSIGN_OR_RETURN(core, xquery::BindParams(core, params_));
      }
      XQJG_ASSIGN_OR_RETURN(
          native_items_, engine->Run(core, options_.limits.timeout_seconds));
      rows_total_ = native_items_.size();
      stats_.rows_total = static_cast<int64_t>(rows_total_);
      break;
    }
    case Mode::kStacked: {
      engine::ExecOptions exec_options;
      exec_options.limits = options_.limits;
      exec_options.use_columnar = options_.use_columnar;
      exec_options.threads = options_.threads;
      if (!params_.empty()) exec_options.params = &params_;
      exec_options.stats = &stats_.engine;
      XQJG_ASSIGN_OR_RETURN(
          stream_, engine::OpenSequenceStream(pq.stacked, *cat.doc_table(),
                                              exec_options));
      break;
    }
    case Mode::kJoinGraph: {
      if (pq.has_plan) {
        engine::PlannerOptions popts;
        popts.syntactic_order = pq.options.syntactic_join_order;
        popts.limits = options_.limits;
        popts.use_columnar = options_.use_columnar;
        popts.threads = options_.threads;
        if (!params_.empty()) popts.params = &params_;
        // relational_db() returns the instance the plan was compiled
        // over (Prepare built it) — pq.plan's index pointers live in it.
        XQJG_ASSIGN_OR_RETURN(
            stream_, engine::OpenPlanStream(pq.plan, *cat.relational_db(),
                                            popts, &stats_.engine));
      } else {
        // Residual blocking operators: execute the isolated DAG directly.
        engine::ExecOptions exec_options;
        exec_options.limits = options_.limits;
        exec_options.use_columnar = options_.use_columnar;
        exec_options.threads = options_.threads;
        exec_options.stats = &stats_.engine;
        XQJG_ASSIGN_OR_RETURN(
            stream_, engine::OpenSequenceStream(pq.isolated, *cat.doc_table(),
                                                exec_options));
      }
      break;
    }
  }
  if (stream_) {
    // -1 until drained for a spill-governed streaming tail; see
    // ExecutionStats::rows_total.
    stats_.rows_total = stream_->rows_total();
  }
  stats_.execute_seconds = SecondsSince(started);
  executed_ = true;
  return Status::OK();
}

Status ResultCursor::PullPending(size_t want) {
  if (stream_done_ || pending_.size() >= want) return Status::OK();
  const size_t before = pending_.size();
  const size_t need = want - before;
  XQJG_RETURN_NOT_OK(stream_->Next(need, &pending_));
  if (pending_.size() - before < need) {
    // Short pull = exhausted (SequenceStream contract); the stream now
    // knows the final cardinality even if it opened with -1.
    stream_done_ = true;
    stats_.rows_total = stream_->rows_total();
  }
  return Status::OK();
}

Result<std::vector<std::string>> ResultCursor::FetchNext(size_t max_items) {
  if (max_items == 0) {
    return Status::InvalidArgument(
        "FetchNext(0): an empty batch signals exhaustion, ask for >= 1");
  }
  XQJG_RETURN_NOT_OK(EnsureExecuted());
  // Constructed after EnsureExecuted so execution time is never counted
  // twice; accrues on the error paths too (a timed-out fetch did work).
  SecondsGuard fetch_time(&stats_.fetch_seconds);
  std::vector<std::string> batch;
  if (!stream_) {
    // Native lanes: already serialized by the engine; handing out is
    // trivial work, no serialization budget needed.
    const size_t end = std::min(rows_total_, next_ + max_items);
    batch.reserve(end - next_);
    for (size_t i = next_; i < end; ++i) {
      batch.push_back(std::move(native_items_[i]));
    }
    next_ = end;
    stats_.rows_fetched += static_cast<int64_t>(batch.size());
    return batch;
  }
  XQJG_RETURN_NOT_OK(PullPending(max_items));
  // Serialization works under the same wall-clock budget, restarted per
  // fetch: a bounded fetch does bounded work.
  engine::BudgetClock clock(options_.limits);
  // Resolved once per fetch: doc_table() synchronizes on the snapshot's
  // lazy-build slot, which has no place in the per-item loop.
  const std::shared_ptr<const xml::DocTable> doc = catalog().doc_table();
  const size_t count = std::min(max_items, pending_.size());
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // A timed-out fetch leaves pending_ untouched: the caller may retry
    // and no item is skipped (serialization is repeatable).
    XQJG_RETURN_NOT_OK(clock.Tick());
    batch.push_back(xml::SerializeSubtree(*doc, pending_[i]));
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<ptrdiff_t>(count));
  delivered_ += static_cast<int64_t>(count);
  stats_.rows_fetched += static_cast<int64_t>(count);
  return batch;
}

Result<std::vector<std::string>> ResultCursor::FetchAll() {
  XQJG_RETURN_NOT_OK(EnsureExecuted());
  std::vector<std::string> all;
  while (!exhausted()) {
    XQJG_ASSIGN_OR_RETURN(std::vector<std::string> batch,
                          FetchNext(kFetchAllBatch));
    if (batch.empty()) break;  // streaming lane learned the end just now
    if (all.empty()) {
      all = std::move(batch);
    } else {
      for (auto& item : batch) all.push_back(std::move(item));
    }
  }
  return all;
}

int64_t ResultCursor::retained_memory_bytes() const {
  if (stream_) {
    return stream_->retained_bytes() +
           static_cast<int64_t>(pending_.capacity() * sizeof(int64_t));
  }
  int64_t bytes = 0;
  for (size_t i = next_; i < native_items_.size(); ++i) {
    bytes += static_cast<int64_t>(native_items_[i].size());
  }
  return bytes;
}

}  // namespace xqjg::api
