#include "src/api/cursor.h"

#include <chrono>
#include <utility>

#include "src/engine/algebra_exec.h"
#include "src/engine/planner.h"
#include "src/native/xscan.h"
#include "src/xml/serializer.h"

namespace xqjg::api {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

Status ResultCursor::EnsureExecuted() {
  if (executed_) return Status::OK();
  const auto started = std::chrono::steady_clock::now();
  const PreparedQuery& pq = *prepared_;
  const CatalogSnapshot& cat = catalog();
  switch (pq.options.mode) {
    case Mode::kNativeWhole:
    case Mode::kNativeSegmented: {
      const native::NativeEngine* engine =
          pq.options.mode == Mode::kNativeWhole ? cat.whole_engine.get()
                                                : cat.segmented_engine.get();
      // Execute() verified the engine exists before handing out a cursor.
      // The native engine serializes while evaluating; row budgets do not
      // apply (it materializes no relational intermediates).
      //
      // The interpreter evaluates literals directly — it has no marker
      // substitution point — so parameterized executions bind their
      // values into a literal Core tree here (unchanged subtrees shared
      // with the cached artifact). One Prepare still serves the whole
      // literal family; only this execution sees the bound tree.
      xquery::ExprPtr core = pq.core;
      if (!params_.empty()) {
        XQJG_ASSIGN_OR_RETURN(core, xquery::BindParams(core, params_));
      }
      XQJG_ASSIGN_OR_RETURN(
          native_items_, engine->Run(core, options_.limits.timeout_seconds));
      rows_total_ = native_items_.size();
      break;
    }
    case Mode::kStacked: {
      engine::ExecOptions exec_options;
      exec_options.limits = options_.limits;
      exec_options.use_columnar = options_.use_columnar;
      exec_options.threads = options_.threads;
      if (!params_.empty()) exec_options.params = &params_;
      exec_options.stats = &stats_.engine;
      XQJG_ASSIGN_OR_RETURN(
          pres_, engine::EvaluateToSequence(pq.stacked, *cat.doc_table(),
                                            exec_options));
      rows_total_ = pres_.size();
      break;
    }
    case Mode::kJoinGraph: {
      if (pq.has_plan) {
        engine::PlannerOptions popts;
        popts.syntactic_order = pq.options.syntactic_join_order;
        popts.limits = options_.limits;
        popts.use_columnar = options_.use_columnar;
        popts.threads = options_.threads;
        if (!params_.empty()) popts.params = &params_;
        // relational_db() returns the instance the plan was compiled
        // over (Prepare built it) — pq.plan's index pointers live in it.
        XQJG_ASSIGN_OR_RETURN(
            pres_, engine::ExecutePlan(pq.plan, *cat.relational_db(), popts,
                                       &stats_.engine));
      } else {
        // Residual blocking operators: execute the isolated DAG directly.
        engine::ExecOptions exec_options;
        exec_options.limits = options_.limits;
        exec_options.use_columnar = options_.use_columnar;
        exec_options.threads = options_.threads;
        exec_options.stats = &stats_.engine;
        XQJG_ASSIGN_OR_RETURN(
            pres_, engine::EvaluateToSequence(pq.isolated, *cat.doc_table(),
                                              exec_options));
      }
      rows_total_ = pres_.size();
      break;
    }
  }
  stats_.execute_seconds = SecondsSince(started);
  stats_.rows_total = static_cast<int64_t>(rows_total_);
  executed_ = true;
  return Status::OK();
}

Result<std::vector<std::string>> ResultCursor::FetchNext(size_t max_items) {
  if (max_items == 0) {
    return Status::InvalidArgument(
        "FetchNext(0): an empty batch signals exhaustion, ask for >= 1");
  }
  XQJG_RETURN_NOT_OK(EnsureExecuted());
  const auto started = std::chrono::steady_clock::now();
  // Serialization works under the same wall-clock budget, restarted per
  // fetch: a bounded fetch does bounded work.
  engine::BudgetClock clock(options_.limits);
  std::vector<std::string> batch;
  const size_t end = std::min(rows_total_, next_ + max_items);
  batch.reserve(end - next_);
  const bool native_mode = prepared_->options.mode == Mode::kNativeWhole ||
                           prepared_->options.mode == Mode::kNativeSegmented;
  // Resolved once per fetch: doc_table() synchronizes on the snapshot's
  // lazy-build slot, which has no place in the per-item loop.
  const std::shared_ptr<const xml::DocTable> doc =
      native_mode ? nullptr : catalog().doc_table();
  for (size_t i = next_; i < end; ++i) {
    if (native_mode) {
      // Already serialized by the engine; handing out is trivial work.
      batch.push_back(std::move(native_items_[i]));
    } else {
      // A timed-out fetch leaves next_ untouched: the caller may retry
      // and no item is skipped (serialization is repeatable).
      XQJG_RETURN_NOT_OK(clock.Tick());
      batch.push_back(xml::SerializeSubtree(*doc, pres_[i]));
    }
  }
  next_ = end;
  stats_.rows_fetched += static_cast<int64_t>(batch.size());
  stats_.fetch_seconds += SecondsSince(started);
  return batch;
}

Result<std::vector<std::string>> ResultCursor::FetchAll() {
  XQJG_RETURN_NOT_OK(EnsureExecuted());
  std::vector<std::string> all;
  while (!exhausted()) {
    XQJG_ASSIGN_OR_RETURN(std::vector<std::string> batch,
                          FetchNext(rows_total_ - next_));
    if (all.empty()) {
      all = std::move(batch);
    } else {
      for (auto& item : batch) all.push_back(std::move(item));
    }
  }
  return all;
}

}  // namespace xqjg::api
