#include "src/api/cursor.h"

#include <chrono>
#include <utility>

#include "src/api/processor.h"
#include "src/engine/algebra_exec.h"
#include "src/engine/planner.h"
#include "src/native/xscan.h"
#include "src/xml/serializer.h"

namespace xqjg::api {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

Status ResultCursor::CheckNotStale() const {
  if (prepared_->catalog_generation != owner_->catalog_generation()) {
    return Status::InvalidArgument(
        "stale cursor: documents or indexes changed since Prepare "
        "(re-Prepare and Execute against the current catalog)");
  }
  return Status::OK();
}

Status ResultCursor::EnsureExecuted() {
  if (executed_) return Status::OK();
  const auto started = std::chrono::steady_clock::now();
  const PreparedQuery& pq = *prepared_;
  switch (pq.options.mode) {
    case Mode::kNativeWhole:
    case Mode::kNativeSegmented: {
      // The native engine serializes while evaluating; row budgets do not
      // apply (it materializes no relational intermediates).
      XQJG_ASSIGN_OR_RETURN(
          native_items_,
          native_->Run(pq.core, options_.limits.timeout_seconds));
      rows_total_ = native_items_.size();
      break;
    }
    case Mode::kStacked: {
      engine::ExecOptions exec_options;
      exec_options.limits = options_.limits;
      exec_options.use_columnar = options_.use_columnar;
      exec_options.stats = &stats_.engine;
      XQJG_ASSIGN_OR_RETURN(
          pres_, engine::EvaluateToSequence(pq.stacked, *doc_, exec_options));
      rows_total_ = pres_.size();
      break;
    }
    case Mode::kJoinGraph: {
      if (pq.has_plan) {
        engine::PlannerOptions popts;
        popts.syntactic_order = pq.options.syntactic_join_order;
        popts.limits = options_.limits;
        popts.use_columnar = options_.use_columnar;
        XQJG_ASSIGN_OR_RETURN(
            pres_, engine::ExecutePlan(pq.plan, *db_, popts, &stats_.engine));
      } else {
        // Residual blocking operators: execute the isolated DAG directly.
        engine::ExecOptions exec_options;
        exec_options.limits = options_.limits;
        exec_options.use_columnar = options_.use_columnar;
        exec_options.stats = &stats_.engine;
        XQJG_ASSIGN_OR_RETURN(
            pres_,
            engine::EvaluateToSequence(pq.isolated, *doc_, exec_options));
      }
      rows_total_ = pres_.size();
      break;
    }
  }
  stats_.execute_seconds = SecondsSince(started);
  stats_.rows_total = static_cast<int64_t>(rows_total_);
  executed_ = true;
  return Status::OK();
}

Result<std::vector<std::string>> ResultCursor::FetchNext(size_t max_items) {
  if (max_items == 0) {
    return Status::InvalidArgument(
        "FetchNext(0): an empty batch signals exhaustion, ask for >= 1");
  }
  XQJG_RETURN_NOT_OK(CheckNotStale());
  XQJG_RETURN_NOT_OK(EnsureExecuted());
  const auto started = std::chrono::steady_clock::now();
  // Serialization works under the same wall-clock budget, restarted per
  // fetch: a bounded fetch does bounded work.
  engine::BudgetClock clock(options_.limits);
  std::vector<std::string> batch;
  const size_t end = std::min(rows_total_, next_ + max_items);
  batch.reserve(end - next_);
  const bool native_mode = prepared_->options.mode == Mode::kNativeWhole ||
                           prepared_->options.mode == Mode::kNativeSegmented;
  for (size_t i = next_; i < end; ++i) {
    if (native_mode) {
      // Already serialized by the engine; handing out is trivial work.
      batch.push_back(std::move(native_items_[i]));
    } else {
      // A timed-out fetch leaves next_ untouched: the caller may retry
      // and no item is skipped (serialization is repeatable).
      XQJG_RETURN_NOT_OK(clock.Tick());
      batch.push_back(xml::SerializeSubtree(*doc_, pres_[i]));
    }
  }
  next_ = end;
  stats_.rows_fetched += static_cast<int64_t>(batch.size());
  stats_.fetch_seconds += SecondsSince(started);
  return batch;
}

Result<std::vector<std::string>> ResultCursor::FetchAll() {
  XQJG_RETURN_NOT_OK(CheckNotStale());
  XQJG_RETURN_NOT_OK(EnsureExecuted());
  std::vector<std::string> all;
  while (!exhausted()) {
    XQJG_ASSIGN_OR_RETURN(std::vector<std::string> batch,
                          FetchNext(rows_total_ - next_));
    if (all.empty()) {
      all = std::move(batch);
    } else {
      for (auto& item : batch) all.push_back(std::move(item));
    }
  }
  return all;
}

}  // namespace xqjg::api
