// ResultCursor — streaming result delivery for prepared queries.
//
// Execute(prepared) does not materialize every serialized item up front:
// the cursor opens a pull-based SequenceStream on the first fetch and
// serializes items batch by batch as the caller FetchNext()s them. On
// the pipelined columnar lanes the stream is the live pipeline — pulled
// pre ranks flow out of the final sort breaker on demand — so an open
// cursor retains O(batch) tracked engine state (plus spill files, which
// are disk), not O(result). The row and native lanes stay materializing
// oracles behind the same interface.
//
// Snapshot pinning: a cursor holds shared ownership of the catalog
// snapshot its PreparedQuery was compiled against. Catalog mutations
// publish new snapshots instead of touching pinned ones, so an open
// cursor keeps draining correct results even while documents are loaded
// or indexes change concurrently — there is no staleness mid-stream and
// no drain-before-mutate requirement.
#ifndef XQJG_API_CURSOR_H_
#define XQJG_API_CURSOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/api/catalog.h"
#include "src/api/prepared_query.h"
#include "src/common/status.h"
#include "src/common/value.h"
#include "src/engine/exec_options.h"
#include "src/engine/exec_stream.h"

namespace xqjg::api {

/// Execution-time knobs: how (not which) plan runs.
struct ExecuteOptions {
  /// DNF budgets. The wall-clock budget applies per FetchNext call (the
  /// underlying plan execution happens inside the first fetch, so a run
  /// that would previously time out still does); max_intermediate_rows
  /// bounds the relational executors' intermediates.
  engine::ExecLimits limits;
  /// Execute relational modes via the columnar batch executors; identical
  /// results, faster (differential-tested).
  bool use_columnar = false;
  /// Morsel workers for the columnar executors (1 = serial; ignored by
  /// the row and native lanes). Results are independent of the worker
  /// count — per-morsel outputs merge in morsel order — so any value is
  /// safe for differential comparison.
  int threads = 1;
  /// Values for the query's external parameters, by name (without '$').
  /// Every parameter the query references must be bound, and every entry
  /// must name a referenced parameter; Execute rejects mismatches.
  std::map<std::string, Value> parameters;
};

/// Per-execution observability (one ResultCursor = one execution).
struct ExecutionStats {
  /// Producing the underlying result sequence (paid inside the first
  /// FetchNext — what the paper's Table IX reports as execution time).
  double execute_seconds = 0.0;
  /// Cumulative serialization time across all fetches.
  double fetch_seconds = 0.0;
  /// Result cardinality; -1 until known. Most executions know it as soon
  /// as the plan ran (Prime / first fetch); a spill-governed streaming
  /// tail only learns it when the cursor drains (DISTINCT and NULL-item
  /// skips decide the count row by row), so it can stay -1 mid-stream.
  int64_t rows_total = -1;
  int64_t rows_fetched = 0;
  /// Intermediate-materialization counters from the relational executors.
  engine::ExecStats engine;
};

class XQueryProcessor;

/// Yields a prepared query's serialized result items in batches. Not
/// thread-safe itself (one cursor = one session's iteration state), but
/// any number of cursors over the same PreparedQuery may run in parallel,
/// and catalog mutations never disturb an open cursor (see above).
class ResultCursor {
 public:
  ResultCursor(const ResultCursor&) = delete;
  ResultCursor& operator=(const ResultCursor&) = delete;

  /// Returns up to `max_items` serialized items, in result-sequence
  /// order. The first call runs the physical plan (under the execution
  /// limits); every call budgets its serialization work with the
  /// wall-clock limit. An empty batch means the cursor is exhausted;
  /// max_items == 0 is an error so that signal stays unambiguous.
  Result<std::vector<std::string>> FetchNext(size_t max_items);

  /// Drains the cursor: every remaining item in one vector (today's
  /// RunResult semantics).
  Result<std::vector<std::string>> FetchAll();

  /// Runs the physical plan / opens the result stream now instead of
  /// inside the first FetchNext. Idempotent. Callers that account
  /// execution separately from delivery (the query server runs the plan
  /// under an admission ticket, then serves fetches without holding a
  /// slot) prime eagerly; plain library use can keep relying on the lazy
  /// first fetch. Priming does NOT materialize a pipelined result — the
  /// stream's tail is drained by the fetches.
  Status Prime() { return EnsureExecuted(); }

  /// True once every item has been fetched. False before the first
  /// fetch, even for empty results: the plan has not run yet, or — for
  /// a streaming tail — the stream has not reported its end.
  bool exhausted() const {
    if (!executed_) return false;
    if (stream_) return stream_done_ && pending_.empty();
    return next_ >= rows_total_;
  }

  /// Tracked bytes this open cursor still retains: the engine stream's
  /// live state (breaker buffers, merge cursors; materialized lanes
  /// report their whole vector) plus the cursor's own pull buffer and,
  /// on the native lanes, the not-yet-delivered serialized items.
  int64_t retained_memory_bytes() const;

  const ExecutionStats& stats() const { return stats_; }
  const PreparedQuery& prepared() const { return *prepared_; }
  /// The catalog snapshot this execution reads (the one Prepare pinned —
  /// shared ownership through the PreparedQuery, so it outlives any
  /// catalog mutation).
  const CatalogSnapshot& catalog() const { return *prepared_->catalog; }

 private:
  friend class XQueryProcessor;

  ResultCursor(std::shared_ptr<const PreparedQuery> prepared,
               const ExecuteOptions& options, std::vector<Value> params)
      : prepared_(std::move(prepared)),
        options_(options),
        params_(std::move(params)) {}

  /// Runs the physical plan on first use; opens stream_ (relational
  /// modes) or fills native_items_ (native modes).
  Status EnsureExecuted();

  /// Tops pending_ up to `want` pre ranks from stream_ and latches
  /// stream_done_ / the final rows_total on a short pull.
  Status PullPending(size_t want);

  std::shared_ptr<const PreparedQuery> prepared_;
  ExecuteOptions options_;
  /// Parameter values by binding slot (resolved from options_.parameters
  /// against prepared_->parameters at Execute time).
  std::vector<Value> params_;

  bool executed_ = false;
  /// Relational modes: the live result stream and the pull buffer of
  /// pre ranks that have been pulled but not yet serialized (a timed-out
  /// fetch keeps them, so a retry re-serializes without skipping items).
  std::unique_ptr<engine::SequenceStream> stream_;
  std::vector<int64_t> pending_;
  bool stream_done_ = false;
  int64_t delivered_ = 0;  ///< items handed out (streaming lane)
  /// Native modes: the engine serializes during evaluation, so items
  /// arrive materialized; the cursor hands them out batch by batch.
  size_t rows_total_ = 0;
  size_t next_ = 0;
  std::vector<std::string> native_items_;
  ExecutionStats stats_;
};

}  // namespace xqjg::api

#endif  // XQJG_API_CURSOR_H_
