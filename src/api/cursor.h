// ResultCursor — streaming result delivery for prepared queries.
//
// Execute(prepared) does not materialize every serialized item up front:
// the cursor runs the physical plan on the first fetch (the result
// sequence of pre ranks), then serializes items batch by batch as the
// caller FetchNext()s them. Result memory is bounded by the batch size
// instead of the result size — the serialized XML strings, not the pre
// ranks, dominate a result's footprint.
//
// Snapshot pinning: a cursor holds shared ownership of the catalog
// snapshot its PreparedQuery was compiled against. Catalog mutations
// publish new snapshots instead of touching pinned ones, so an open
// cursor keeps draining correct results even while documents are loaded
// or indexes change concurrently — there is no staleness mid-stream and
// no drain-before-mutate requirement.
#ifndef XQJG_API_CURSOR_H_
#define XQJG_API_CURSOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/api/catalog.h"
#include "src/api/prepared_query.h"
#include "src/common/status.h"
#include "src/common/value.h"
#include "src/engine/exec_options.h"

namespace xqjg::api {

/// Execution-time knobs: how (not which) plan runs.
struct ExecuteOptions {
  /// DNF budgets. The wall-clock budget applies per FetchNext call (the
  /// underlying plan execution happens inside the first fetch, so a run
  /// that would previously time out still does); max_intermediate_rows
  /// bounds the relational executors' intermediates.
  engine::ExecLimits limits;
  /// Execute relational modes via the columnar batch executors; identical
  /// results, faster (differential-tested).
  bool use_columnar = false;
  /// Morsel workers for the columnar executors (1 = serial; ignored by
  /// the row and native lanes). Results are independent of the worker
  /// count — per-morsel outputs merge in morsel order — so any value is
  /// safe for differential comparison.
  int threads = 1;
  /// Values for the query's external parameters, by name (without '$').
  /// Every parameter the query references must be bound, and every entry
  /// must name a referenced parameter; Execute rejects mismatches.
  std::map<std::string, Value> parameters;
};

/// Per-execution observability (one ResultCursor = one execution).
struct ExecutionStats {
  /// Producing the underlying result sequence (paid inside the first
  /// FetchNext — what the paper's Table IX reports as execution time).
  double execute_seconds = 0.0;
  /// Cumulative serialization time across all fetches.
  double fetch_seconds = 0.0;
  /// Result cardinality; -1 until the first fetch ran the plan.
  int64_t rows_total = -1;
  int64_t rows_fetched = 0;
  /// Intermediate-materialization counters from the relational executors.
  engine::ExecStats engine;
};

class XQueryProcessor;

/// Yields a prepared query's serialized result items in batches. Not
/// thread-safe itself (one cursor = one session's iteration state), but
/// any number of cursors over the same PreparedQuery may run in parallel,
/// and catalog mutations never disturb an open cursor (see above).
class ResultCursor {
 public:
  ResultCursor(const ResultCursor&) = delete;
  ResultCursor& operator=(const ResultCursor&) = delete;

  /// Returns up to `max_items` serialized items, in result-sequence
  /// order. The first call runs the physical plan (under the execution
  /// limits); every call budgets its serialization work with the
  /// wall-clock limit. An empty batch means the cursor is exhausted;
  /// max_items == 0 is an error so that signal stays unambiguous.
  Result<std::vector<std::string>> FetchNext(size_t max_items);

  /// Drains the cursor: every remaining item in one vector (today's
  /// RunResult semantics).
  Result<std::vector<std::string>> FetchAll();

  /// Runs the physical plan now instead of inside the first FetchNext.
  /// Idempotent. Callers that account execution separately from delivery
  /// (the query server runs the plan under an admission ticket, then
  /// serves fetches without holding a slot) prime eagerly; plain library
  /// use can keep relying on the lazy first fetch.
  Status Prime() { return EnsureExecuted(); }

  /// True once every item has been fetched (false before the first
  /// fetch, even for empty results — the plan has not run yet).
  bool exhausted() const { return executed_ && next_ >= rows_total_; }

  const ExecutionStats& stats() const { return stats_; }
  const PreparedQuery& prepared() const { return *prepared_; }
  /// The catalog snapshot this execution reads (the one Prepare pinned —
  /// shared ownership through the PreparedQuery, so it outlives any
  /// catalog mutation).
  const CatalogSnapshot& catalog() const { return *prepared_->catalog; }

 private:
  friend class XQueryProcessor;

  ResultCursor(std::shared_ptr<const PreparedQuery> prepared,
               const ExecuteOptions& options, std::vector<Value> params)
      : prepared_(std::move(prepared)),
        options_(options),
        params_(std::move(params)) {}

  /// Runs the physical plan on first use; fills pres_ / native_items_.
  Status EnsureExecuted();

  std::shared_ptr<const PreparedQuery> prepared_;
  ExecuteOptions options_;
  /// Parameter values by binding slot (resolved from options_.parameters
  /// against prepared_->parameters at Execute time).
  std::vector<Value> params_;

  bool executed_ = false;
  size_t rows_total_ = 0;
  size_t next_ = 0;
  /// Relational modes: result-sequence pre ranks, serialized lazily.
  std::vector<int64_t> pres_;
  /// Native modes: the engine serializes during evaluation, so items
  /// arrive materialized; the cursor hands them out batch by batch.
  std::vector<std::string> native_items_;
  ExecutionStats stats_;
};

}  // namespace xqjg::api

#endif  // XQJG_API_CURSOR_H_
