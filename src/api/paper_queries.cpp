#include "src/api/paper_queries.h"

namespace xqjg::api {

using native::PatternStep;
using native::PatternType;
using native::XmlPattern;
using xquery::Axis;

const std::vector<PaperQuery>& PaperQueries() {
  static const std::vector<PaperQuery> kQueries = {
      {"Q1",
       "doc(\"auction.xml\")/descendant::open_auction[bidder]",
       "auction.xml",
       ""},
      {"Q2",
       "let $a := doc(\"auction.xml\") "
       "for $ca in $a//closed_auction[price > 500], "
       "    $i in $a//item, "
       "    $c in $a//category "
       "where $ca/itemref/@item = $i/@id "
       "  and $i/incategory/@category = $c/@id "
       "return $c/name",
       "auction.xml",
       ""},
      {"Q3",
       "/site/people/person[@id = \"person0\"]/name/text()",
       "auction.xml",
       ""},
      {"Q4",
       "//closed_auction/price/text()",
       "auction.xml",
       ""},
      {"Q5",
       "/dblp/*[@key = \"conf/vldb2001\" and editor and title]/title",
       "dblp.xml",
       ""},
      {"Q6",
       "for $thesis in /dblp/phdthesis[year < \"1994\" and author and title] "
       "return $thesis/title",
       "dblp.xml",
       "paper uses the non-standard return-tuple over (title, author, "
       "year); we return the titles (same cardinality)"},
  };
  return kQueries;
}

const std::set<std::string>& XmarkSegmentTags() {
  static const std::set<std::string> kTags = {
      "item", "open_auction", "closed_auction", "category", "person"};
  return kTags;
}

const std::set<std::string>& DblpSegmentTags() {
  static const std::set<std::string> kTags = {
      "article", "inproceedings", "proceedings", "phdthesis"};
  return kTags;
}

std::vector<XmlPattern> PaperPatternIndexes() {
  std::vector<XmlPattern> out;
  auto add = [&](const std::string& uri, std::vector<PatternStep> steps,
                 PatternType type) {
    out.push_back(XmlPattern{uri, std::move(steps), type});
  };
  const auto child = [](std::string name) {
    return PatternStep{Axis::kChild, std::move(name)};
  };
  const auto desc = [](std::string name) {
    return PatternStep{Axis::kDescendant, std::move(name)};
  };
  const auto attr = [](std::string name) {
    return PatternStep{Axis::kAttribute, std::move(name)};
  };
  // For Q3: /site/people/person/@id (the index the paper names).
  add("auction.xml",
      {child("site"), child("people"), child("person"), attr("id")},
      PatternType::kVarchar);
  // Value references of Q2.
  add("auction.xml", {desc("closed_auction"), child("price")},
      PatternType::kDouble);
  add("auction.xml", {desc("item"), attr("id")}, PatternType::kVarchar);
  add("auction.xml", {desc("category"), attr("id")}, PatternType::kVarchar);
  // DBLP keys and years (Q5, Q6).
  add("dblp.xml", {child("dblp"), child("*"), attr("key")},
      PatternType::kVarchar);
  add("dblp.xml", {child("dblp"), child("phdthesis"), child("year")},
      PatternType::kVarchar);
  return out;
}

}  // namespace xqjg::api
