// The paper's query set: Q1/Q2 (§II-D, §III-C) and the Table VIII sample
// queries Q3–Q6, plus the workload configuration (segment tags, native
// XMLPATTERN indexes) used in §IV.
#ifndef XQJG_API_PAPER_QUERIES_H_
#define XQJG_API_PAPER_QUERIES_H_

#include <set>
#include <string>
#include <vector>

#include "src/native/pattern_index.h"

namespace xqjg::api {

struct PaperQuery {
  std::string id;       ///< "Q1" .. "Q6"
  std::string text;     ///< XQuery source
  std::string document; ///< context document URI
  std::string note;     ///< deviations from the paper's formulation
};

/// Q1..Q6. Q6's non-standard return-tuple is narrowed to returning the
/// thesis titles (see EXPERIMENTS.md).
const std::vector<PaperQuery>& PaperQueries();

/// Segment tags used for the native engine's segmented store.
const std::set<std::string>& XmarkSegmentTags();
const std::set<std::string>& DblpSegmentTags();

/// XMLPATTERN indexes declared for the native engine ("we further created
/// an extensive XMLPATTERN index family", §IV-B).
std::vector<native::XmlPattern> PaperPatternIndexes();

}  // namespace xqjg::api

#endif  // XQJG_API_PAPER_QUERIES_H_
