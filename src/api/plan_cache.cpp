#include "src/api/plan_cache.h"

namespace xqjg::api {

std::string PlanCache::MakeKey(const std::string& query,
                               const PrepareOptions& options) {
  // Both variable-length fields are length-prefixed: the key is built
  // (and hit) before any parsing happens, so no byte of query text or
  // context URI can be trusted as a separator.
  std::string key;
  key.reserve(query.size() + options.context_document.size() + 16);
  key += std::to_string(query.size());
  key += ':';
  key += query;
  key += static_cast<char>('0' + static_cast<int>(options.mode));
  key += options.syntactic_join_order ? '1' : '0';
  key += options.explicit_serialization_step ? '1' : '0';
  // Resolved (not raw) validation state: kAuto and kOn hash alike in a
  // Debug build, where both validate.
  key += ResolveValidatePlans(options.validate_plans) ? '1' : '0';
  key += std::to_string(options.context_document.size());
  key += ':';
  key += options.context_document;
  return key;
}

std::shared_ptr<const PreparedQuery> PlanCache::Lookup(
    const std::string& key,
    const std::function<bool(const PreparedQuery&)>& stale) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  if (stale && it->second->second && stale(*it->second->second)) {
    lru_.erase(it->second);
    index_.erase(it);
    ++invalidations_;
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to front
  return it->second->second;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const PreparedQuery> prepared) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(prepared);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(prepared));
  index_[key] = lru_.begin();
  EvictOverCapacityLocked();
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

void PlanCache::EvictIf(
    const std::function<bool(const PreparedQuery&)>& stale) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->second && stale(*it->second)) {
      index_.erase(it->first);
      it = lru_.erase(it);
      ++invalidations_;
    } else {
      ++it;
    }
  }
}

void PlanCache::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  EvictOverCapacityLocked();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.invalidations = invalidations_;
  s.entries = lru_.size();
  s.capacity = capacity_;
  return s;
}

void PlanCache::EvictOverCapacityLocked() {
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace xqjg::api
