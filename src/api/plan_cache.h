// LRU cache of PreparedQuery artifacts, keyed by query text + the
// prepare-relevant options. Makes XQueryProcessor::Run a thin shim over
// Prepare + Execute: repeated Run calls pay compilation once.
//
// Thread-safe: all operations lock an internal mutex (lookups from
// concurrent sessions are the expected access pattern). Entries are
// shared_ptr<const PreparedQuery>, so an eviction never invalidates a
// handle a session still executes.
//
// Invalidation is per-entry, not all-or-nothing: catalog mutations call
// EvictIf with a predicate over each entry's touched-catalog metadata, so
// mutating document B evicts only the plans that touch B (and plans
// joining across B) while document-A plans stay cached.
#ifndef XQJG_API_PLAN_CACHE_H_
#define XQJG_API_PLAN_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/api/prepared_query.h"

namespace xqjg::api {

class PlanCache {
 public:
  static constexpr size_t kDefaultCapacity = 64;

  /// Hit / miss / eviction counters plus current occupancy.
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;      ///< LRU capacity evictions
    int64_t invalidations = 0;  ///< catalog-mutation evictions (EvictIf)
    size_t entries = 0;
    size_t capacity = 0;
  };

  explicit PlanCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  /// Canonical cache key: query text + every PrepareOptions field that
  /// influences compilation.
  static std::string MakeKey(const std::string& query,
                             const PrepareOptions& options);

  /// Returns the cached artifact and marks it most-recently-used; null on
  /// miss. Counts the hit/miss either way. When `stale` is provided and
  /// holds for the entry, the entry is evicted (an invalidation) and the
  /// lookup counts as a miss — callers revalidate cached artifacts
  /// against the current catalog without a separate sweep.
  std::shared_ptr<const PreparedQuery> Lookup(
      const std::string& key,
      const std::function<bool(const PreparedQuery&)>& stale = nullptr);

  /// Inserts (or refreshes) `prepared` under `key`, evicting the least
  /// recently used entry when over capacity. Capacity 0 disables caching.
  void Insert(const std::string& key,
              std::shared_ptr<const PreparedQuery> prepared);

  /// Drops every entry; counters survive.
  void Clear();

  /// Drops every entry whose artifact satisfies `stale` (counted under
  /// stats().invalidations). Catalog mutations pass a predicate over the
  /// entry's touched-catalog metadata — per-document granularity.
  void EvictIf(const std::function<bool(const PreparedQuery&)>& stale);

  /// Shrinks/grows the cache, evicting LRU entries as needed.
  void set_capacity(size_t capacity);

  Stats stats() const;

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const PreparedQuery>>;

  void EvictOverCapacityLocked();

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  int64_t invalidations_ = 0;
};

}  // namespace xqjg::api

#endif  // XQJG_API_PLAN_CACHE_H_
