// LRU cache of PreparedQuery artifacts, keyed by query text + the
// prepare-relevant options. Makes XQueryProcessor::Run a thin shim over
// Prepare + Execute: repeated Run calls pay compilation once.
//
// Thread-safe: all operations lock an internal mutex (lookups from
// concurrent sessions are the expected access pattern). Entries are
// shared_ptr<const PreparedQuery>, so an eviction never invalidates a
// handle a session still executes.
#ifndef XQJG_API_PLAN_CACHE_H_
#define XQJG_API_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/api/prepared_query.h"

namespace xqjg::api {

class PlanCache {
 public:
  static constexpr size_t kDefaultCapacity = 64;

  /// Hit / miss / eviction counters plus current occupancy.
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    size_t entries = 0;
    size_t capacity = 0;
  };

  explicit PlanCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  /// Canonical cache key: query text + every PrepareOptions field that
  /// influences compilation.
  static std::string MakeKey(const std::string& query,
                             const PrepareOptions& options);

  /// Returns the cached artifact and marks it most-recently-used; null on
  /// miss. Counts the hit/miss either way.
  std::shared_ptr<const PreparedQuery> Lookup(const std::string& key);

  /// Inserts (or refreshes) `prepared` under `key`, evicting the least
  /// recently used entry when over capacity. Capacity 0 disables caching.
  void Insert(const std::string& key,
              std::shared_ptr<const PreparedQuery> prepared);

  /// Drops every entry (catalog changed); counters survive.
  void Clear();

  /// Shrinks/grows the cache, evicting LRU entries as needed.
  void set_capacity(size_t capacity);

  Stats stats() const;

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const PreparedQuery>>;

  void EvictOverCapacityLocked();

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace xqjg::api

#endif  // XQJG_API_PLAN_CACHE_H_
