// The compiled half of the prepare/execute lifecycle.
//
// The paper's architecture splits query processing into a front-end phase
// (XQuery compilation + join graph isolation, §II–III) whose output — an
// isolated join graph / SQL block — is shipped to a relational back-end
// and executed repeatedly. PreparedQuery is that shipped artifact: an
// immutable snapshot of everything the front end produced, so compilation
// is paid once and any number of executions (including concurrent ones)
// amortize it.
#ifndef XQJG_API_PREPARED_QUERY_H_
#define XQJG_API_PREPARED_QUERY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/algebra/operators.h"
#include "src/api/catalog.h"
#include "src/engine/planner.h"
#include "src/opt/join_graph.h"
#include "src/xquery/ast.h"

namespace xqjg::api {

/// The four execution modes the paper's Table IX compares.
enum class Mode { kStacked, kJoinGraph, kNativeWhole, kNativeSegmented };

const char* ModeToString(Mode mode);

/// Whether Prepare runs the static plan verifier (src/algebra/validate.h
/// + src/opt/plan_check.h) at every compilation stage boundary. kAuto
/// resolves to ON in Debug builds and whenever XQJG_VALIDATE_PLANS=1 is
/// set in the environment (the test suite forces that, so Release test
/// runs validate too), OFF otherwise — production Release prepares pay
/// nothing unless they opt in.
enum class ValidatePlans { kAuto, kOn, kOff };

/// Resolves kAuto against the build type and environment (see above).
bool ResolveValidatePlans(ValidatePlans setting);

/// Everything that influences *compilation* (and therefore the plan-cache
/// key). Execution-time knobs — DNF budgets, executor selection — live in
/// ExecuteOptions instead: they select how a plan is run, not which plan
/// is built, so row and columnar executions share one cached plan.
struct PrepareOptions {
  Mode mode = Mode::kJoinGraph;
  /// Document substituted for absolute paths ("/site/...").
  std::string context_document;
  /// Disable cost-based join ordering (ablation).
  bool syntactic_join_order = false;
  /// Append the explicit serialization step (paper §IV).
  bool explicit_serialization_step = false;
  /// Stage-boundary plan verification (see ValidatePlans above). Part of
  /// the plan-cache key: a validated and an unvalidated artifact are
  /// interchangeable plans, but a cache hit must not silently skip the
  /// verification the caller asked for.
  ValidatePlans validate_plans = ValidatePlans::kAuto;
};

/// Compile-time observability: what the front end did to the query.
struct CompileDiagnostics {
  /// Isolation rule name -> application count (join-graph mode).
  std::map<std::string, int> rule_counts;
  /// Operator counts before/after isolation (the Fig. 4 / Fig. 7 shrink).
  size_t ops_stacked = 0;
  size_t ops_isolated = 0;
  /// Blocking operators surviving isolation (ϱ / δ).
  size_t ranks_after = 0;
  size_t distincts_after = 0;
};

/// An immutable compiled query: normalized Core AST, compiled plans, the
/// isolated join graph with its chosen physical plan, shipped SQL, and
/// compile-time diagnostics. Created by XQueryProcessor::Prepare, handed
/// out as shared_ptr<const PreparedQuery>; nothing mutates it afterwards,
/// so N threads may Execute the same instance simultaneously.
///
/// A PreparedQuery pins the catalog snapshot it was compiled against
/// (`catalog`), so its plan pointers (database columns, B-trees, native
/// stores) stay valid for as long as the artifact lives — catalog
/// mutations publish new snapshots instead of touching pinned ones.
/// Execute accepts the artifact while every catalog object it touches
/// (`touched_docs`, plus the index set for the modes that consult it) is
/// unchanged in the current catalog; otherwise it rejects with
/// InvalidArgument and the caller re-Prepares.
struct PreparedQuery {
  std::string query_text;
  PrepareOptions options;

  /// Normalized Core AST (all modes; the native engine executes this).
  xquery::ExprPtr core;
  /// Compiled stacked plan (relational modes).
  algebra::OpPtr stacked;
  /// Isolated plan DAG (join-graph mode; executed directly on fallback).
  algebra::OpPtr isolated;
  /// Extracted join graph — heap-allocated because `plan` points into it.
  std::unique_ptr<const opt::JoinGraph> graph;
  /// Cost-based physical join tree over `graph` (join-graph mode, no
  /// fallback). Executed by the row and the columnar plan executor alike.
  engine::PhysicalPlan plan;
  bool has_plan = false;
  /// Isolated plan ran via the materializing executor (extraction not
  /// possible — residual blocking operators).
  bool used_fallback = false;

  std::string sql;      ///< shipped SQL (join graph block or CTE chain)
  std::string explain;  ///< physical plan (join-graph mode)
  /// Parse + normalize + compile + isolate + extract + plan time.
  double compile_seconds = 0.0;
  CompileDiagnostics diagnostics;

  /// The catalog snapshot this artifact was compiled against — pinned so
  /// executions (and the plan pointers above) never dangle.
  std::shared_ptr<const CatalogSnapshot> catalog;
  /// Processor catalog generation this artifact was compiled against
  /// (== catalog->generation; kept as a plain field for observability).
  uint64_t catalog_generation = 0;

  /// Documents the query touches (doc(...) URIs in the normalized Core,
  /// which includes the substituted context document), with the epoch
  /// each had at Prepare (kDocAbsent when not loaded). The plan cache
  /// evicts, and Execute rejects, only when one of THESE changed.
  std::map<std::string, uint64_t> touched_docs;
  /// Join-graph mode consults the relational index set during planning;
  /// such artifacts are invalidated by index DDL.
  bool uses_relational_indexes = false;
  /// The relational indexes the chosen physical plan actually probes
  /// (name -> IndexDef::ToString(), collected from its kIxScan nodes).
  /// After index DDL the artifact stays servable while every entry here
  /// is still present with an identical definition — creating or dropping
  /// an index the plan never touches does not invalidate it.
  std::map<std::string, std::string> used_indexes;
  /// Native modes consult the XMLPATTERN index set during execution.
  bool uses_pattern_indexes = false;

  /// External parameters the query references ($x declared external in
  /// the prolog), ordered by binding slot. ExecuteOptions must bind every
  /// entry by name; one cached plan serves the whole literal family.
  std::vector<xquery::ParamDecl> parameters;
};

}  // namespace xqjg::api

#endif  // XQJG_API_PREPARED_QUERY_H_
