#include "src/api/processor.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "src/algebra/dag.h"
#include "src/algebra/validate.h"
#include "src/compiler/compile.h"
#include "src/opt/isolate.h"
#include "src/opt/plan_check.h"
#include "src/sql/sqlgen.h"
#include "src/xml/doc_block.h"
#include "src/xml/parser.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"

namespace xqjg::api {

const char* ModeToString(Mode mode) {
  switch (mode) {
    case Mode::kStacked:
      return "stacked";
    case Mode::kJoinGraph:
      return "joingraph";
    case Mode::kNativeWhole:
      return "native-whole";
    case Mode::kNativeSegmented:
      return "native-segmented";
  }
  return "?";
}

bool ResolveValidatePlans(ValidatePlans setting) {
  switch (setting) {
    case ValidatePlans::kOn:
      return true;
    case ValidatePlans::kOff:
      return false;
    case ValidatePlans::kAuto:
      break;
  }
#ifndef NDEBUG
  return true;
#else
  const char* env = std::getenv("XQJG_VALIDATE_PLANS");
  return env && *env && std::string(env) != "0";
#endif
}

namespace {

/// doc(...) URIs referenced by a normalized Core expression — after
/// normalization every path is anchored at an explicit kDoc node (the
/// context document included), so this is the query's touched-doc set.
void CollectDocUris(const xquery::Expr& e, std::set<std::string>* out) {
  if (e.kind == xquery::ExprKind::kDoc) out->insert(e.str);
  if (e.a) CollectDocUris(*e.a, out);
  if (e.b) CollectDocUris(*e.b, out);
}

/// The relational indexes a physical plan actually probes — its kIxScan
/// nodes. This is the plan's true index footprint; the cache staleness
/// check intersects on it instead of evicting on every index-set change.
void CollectUsedIndexes(const engine::PhysNode* node,
                        std::map<std::string, std::string>* out) {
  if (!node) return;
  if (node->kind == engine::PhysKind::kIxScan && node->index) {
    (*out)[node->index->def.name] = node->index->def.ToString();
  }
  CollectUsedIndexes(node->left.get(), out);
  CollectUsedIndexes(node->right.get(), out);
}

}  // namespace

XQueryProcessor::XQueryProcessor() {
  auto init = std::make_shared<CatalogSnapshot>();
  init->whole_store = std::make_shared<native::DocumentStore>();
  init->segmented_store = std::make_shared<native::DocumentStore>();
  snapshot_ = std::move(init);
}

std::shared_ptr<const CatalogSnapshot> XQueryProcessor::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

void XQueryProcessor::PublishLocked(
    std::shared_ptr<const CatalogSnapshot> next) {
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    // Generation is published inside the swap lock: a reader that
    // observed the new snapshot must never read an older generation.
    generation_.store(next->generation, std::memory_order_release);
    snapshot_ = next;
  }
  // Per-document invalidation: only entries whose touched catalog objects
  // changed fall out; everything else keeps serving from its pinned
  // snapshot (pointer-identical artifacts on re-Prepare).
  plan_cache_.EvictIf([&next](const PreparedQuery& pq) {
    return !ServableAgainst(pq, *next);
  });
}

bool XQueryProcessor::ServableAgainst(const PreparedQuery& pq,
                                      const CatalogSnapshot& current) {
  if (!pq.catalog) return false;
  if (pq.catalog->generation == current.generation) return true;
  if (pq.uses_relational_indexes &&
      pq.catalog->index_epoch != current.index_epoch) {
    // Index DDL happened since Prepare. The artifact survives iff every
    // index its plan probes still exists with an identical definition —
    // creating or dropping an UNRELATED index must not evict it. A plan
    // that probes none (or compiled without a physical plan) stays on the
    // old blanket rule: it was costed against the old index set, and a
    // new index could make a better plan available. The check is gated on
    // the epoch (not run on every mutation) because document loads reset
    // the index set without bumping the epoch: pinned plans keep their
    // own B-trees across loads by contract.
    if (pq.used_indexes.empty()) return false;
    for (const auto& [name, def] : pq.used_indexes) {
      auto it = current.index_defs.find(name);
      if (it == current.index_defs.end() || it->second != def) return false;
    }
  }
  if (pq.uses_pattern_indexes &&
      pq.catalog->pattern_epoch != current.pattern_epoch) {
    return false;
  }
  for (const auto& [uri, epoch] : pq.touched_docs) {
    if (current.DocEpoch(uri) != epoch) return false;
  }
  return true;
}

Status XQueryProcessor::LoadDocument(
    const std::string& uri, const std::string& xml_text,
    const std::set<std::string>& segment_tags) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  const std::shared_ptr<const CatalogSnapshot> cur = snapshot();
  // Parse into a fresh scratch table first: a malformed document must
  // leave the published catalog untouched. This single parse is also the
  // validation every deferred build (lazy doc relation, lazy native DOM)
  // relies on — they all share the scanner — and, when the predecessor
  // already materialized its shared block, the scratch rows splice into
  // it below without parsing again.
  xml::DocTable scratch;
  XQJG_RETURN_NOT_OK(xml::LoadDocument(&scratch, uri, xml_text));
  if (!segment_tags.empty()) {
    // Segment roots are validated eagerly (the native segmented build is
    // deferred): loading with tags that match nothing is a load error,
    // not a latent first-query abort.
    bool found = false;
    for (int64_t p = 0; p < scratch.row_count() && !found; ++p) {
      found = scratch.kind(p) == xml::NodeKind::kElem &&
              segment_tags.count(scratch.name(p)) > 0;
    }
    if (!found) {
      return Status::InvalidArgument("no segment roots found for document " +
                                     uri);
    }
  }
  auto text = std::make_shared<const std::string>(xml_text);

  // Native stores: share every other document's entry (and its
  // already-built DOM), replace only this URI. The new entry is lazy —
  // its tree parses from the retained text on first native use.
  auto whole = std::make_shared<native::DocumentStore>(*cur->whole_store);
  auto segmented =
      std::make_shared<native::DocumentStore>(*cur->segmented_store);
  whole->RemoveUri(uri);
  segmented->RemoveUri(uri);
  XQJG_RETURN_NOT_OK(whole->AddLazy(uri, text));
  if (!segment_tags.empty()) {
    XQJG_RETURN_NOT_OK(segmented->AddLazy(uri, text, segment_tags));
  }

  // Retained sources, load order preserved, this URI replaced-or-added
  // (text shared across snapshots). The doc relation and the relational
  // database derive from these lazily — a burst of loads builds neither.
  const bool reload = cur->doc_epochs.count(uri) > 0;
  auto sources =
      std::make_shared<std::vector<CatalogSnapshot::DocSource>>(*cur->sources);
  if (reload) {
    for (auto& s : *sources) {
      if (s.uri == uri) s.xml = text;
    }
  } else {
    sources->push_back(CatalogSnapshot::DocSource{uri, std::move(text)});
  }

  auto next = std::make_shared<CatalogSnapshot>();
  next->generation = cur->generation + 1;
  next->doc_epochs = cur->doc_epochs;
  next->doc_epochs[uri] = reload ? cur->doc_epochs.at(uri) + 1 : 0;
  // Historical contract: loading a document resets the relational index
  // set (callers re-create it) and the native pattern indexes. The epoch
  // stays — plans over other documents keep their pinned B-trees.
  next->index_epoch = cur->index_epoch;
  next->pattern_epoch = cur->pattern_epoch;
  next->sources = std::move(sources);
  next->whole_store = whole;
  next->segmented_store = segmented;
  next->whole_engine = std::make_shared<native::NativeEngine>(whole.get());
  next->segmented_engine =
      std::make_shared<native::NativeEngine>(segmented.get());
  // If the predecessor already materialized its shared block, derive the
  // successor's block from it incrementally — the scratch rows splice in
  // while every other document's column runs are copied verbatim (and
  // the dictionaries stay shared). Appending a NEW document extends the
  // block; a RELOAD rebuilds only the replaced run (pre ranks after it
  // shift by the size delta). Either way the alternative — a full
  // re-parse of every retained source on next relational use — is
  // avoided, so load/Prepare alternation never goes quadratic in parse
  // work. A burst of loads before any relational use stays fully lazy.
  {
    std::shared_ptr<const xml::DocTable> prev_table;
    {
      std::lock_guard<std::mutex> table_lock(cur->doc_slot->mu);
      prev_table = cur->doc_slot->table;
    }
    if (prev_table && prev_table->block()) {
      std::shared_ptr<const xml::DocBlock> block =
          reload ? xml::DocBlock::Reload(prev_table->block(), scratch, uri)
                 : xml::DocBlock::Append(prev_table->block(), scratch, uri);
      next->doc_slot->table = std::make_shared<const xml::DocTable>(
          xml::DocTable::FromBlock(std::move(block)));  // not yet published
    }
  }
  PublishLocked(std::move(next));
  return Status::OK();
}

Status XQueryProcessor::CreateRelationalIndexes(
    const std::vector<engine::IndexDef>& defs) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  const std::shared_ptr<const CatalogSnapshot> cur = snapshot();
  // Copy-on-write: the copy shares the doc-relation storage and every
  // already-built B-tree with the published database.
  auto db = std::make_shared<engine::Database>(*cur->relational_db());
  for (const auto& def : defs) {
    XQJG_RETURN_NOT_OK(db->CreateIndex(def));
  }
  auto next = std::make_shared<CatalogSnapshot>(*cur);
  next->generation = cur->generation + 1;
  next->index_epoch = cur->index_epoch + 1;
  next->index_defs.clear();
  for (const auto& idx : db->indexes()) {
    next->index_defs[idx->def.name] = idx->def.ToString();
  }
  next->db_slot = std::make_shared<CatalogSnapshot::DatabaseSlot>();
  next->db_slot->db = std::move(db);
  PublishLocked(std::move(next));
  return Status::OK();
}

void XQueryProcessor::DropRelationalIndexes() {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  const std::shared_ptr<const CatalogSnapshot> cur = snapshot();
  auto db = std::make_shared<engine::Database>(*cur->relational_db());
  db->DropAllIndexes();
  auto next = std::make_shared<CatalogSnapshot>(*cur);
  next->generation = cur->generation + 1;
  next->index_epoch = cur->index_epoch + 1;
  next->index_defs.clear();
  next->db_slot = std::make_shared<CatalogSnapshot::DatabaseSlot>();
  next->db_slot->db = std::move(db);
  PublishLocked(std::move(next));
}

void XQueryProcessor::CreatePatternIndex(native::XmlPattern pattern) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  const std::shared_ptr<const CatalogSnapshot> cur = snapshot();
  auto next = std::make_shared<CatalogSnapshot>(*cur);
  next->generation = cur->generation + 1;
  if (cur->whole_engine) {
    next->pattern_epoch = cur->pattern_epoch + 1;
    // Engines are immutable once published: build replacements over the
    // SAME stores, adopting the already-built (immutable) indexes so
    // K declarations cost K builds, not K^2.
    auto whole =
        std::make_shared<native::NativeEngine>(cur->whole_store.get());
    auto segmented =
        std::make_shared<native::NativeEngine>(cur->segmented_store.get());
    for (const auto& idx : cur->whole_engine->indexes()) {
      whole->AdoptIndex(idx);
    }
    for (const auto& idx : cur->segmented_engine->indexes()) {
      segmented->AdoptIndex(idx);
    }
    whole->CreateIndex(pattern);
    segmented->CreateIndex(std::move(pattern));
    next->whole_engine = std::move(whole);
    next->segmented_engine = std::move(segmented);
  }
  PublishLocked(std::move(next));
}

Result<std::shared_ptr<const PreparedQuery>> XQueryProcessor::Prepare(
    const std::string& query, const PrepareOptions& options) const {
  const std::shared_ptr<const CatalogSnapshot> cur = snapshot();
  const std::string key = PlanCache::MakeKey(query, options);
  // A cached artifact is returned only while it is still servable against
  // the current catalog — a stale entry (e.g. compiled concurrently with
  // a mutation) recompiles and overwrites itself.
  auto stale = [&cur](const PreparedQuery& pq) {
    return !ServableAgainst(pq, *cur);
  };
  if (auto cached = plan_cache_.Lookup(key, stale)) return cached;
  XQJG_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedQuery> prepared,
                        PrepareUncached(query, options, cur));
  plan_cache_.Insert(key, prepared);
  return prepared;
}

Result<std::shared_ptr<const PreparedQuery>> XQueryProcessor::PrepareUncached(
    const std::string& query, const PrepareOptions& options,
    const std::shared_ptr<const CatalogSnapshot>& snapshot) const {
  const auto started = std::chrono::steady_clock::now();
  auto out = std::make_shared<PreparedQuery>();
  out->query_text = query;
  out->options = options;
  out->catalog = snapshot;
  out->catalog_generation = snapshot->generation;

  XQJG_ASSIGN_OR_RETURN(xquery::ExprPtr ast, xquery::Parse(query));
  xquery::NormalizeOptions norm_options;
  norm_options.context_document = options.context_document;
  XQJG_ASSIGN_OR_RETURN(out->core, xquery::Normalize(ast, norm_options));

  // Touched-catalog metadata: the documents the query reads (with their
  // current epochs) and which index sets the mode consults. This is what
  // per-document cache invalidation and the Execute staleness check use.
  std::set<std::string> uris;
  CollectDocUris(*out->core, &uris);
  for (const std::string& uri : uris) {
    out->touched_docs[uri] = snapshot->DocEpoch(uri);
  }
  out->uses_relational_indexes = options.mode == Mode::kJoinGraph;
  out->uses_pattern_indexes = options.mode == Mode::kNativeWhole ||
                              options.mode == Mode::kNativeSegmented;
  out->parameters = xquery::CollectParams(*out->core);

  // Stage-boundary plan verification (src/algebra/validate.h): on, every
  // compiled plan is checked right after the stage that built it, so a
  // broken plan is rejected at the boundary that broke it.
  const bool validate = ResolveValidatePlans(options.validate_plans);
  int num_params = 0;
  for (const auto& decl : out->parameters) {
    num_params = std::max(num_params, decl.slot + 1);
  }
  algebra::ValidateOptions vopts;
  vopts.num_params = num_params;

  auto finish = [&]() -> std::shared_ptr<const PreparedQuery> {
    out->compile_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    return out;
  };

  if (options.mode == Mode::kNativeWhole ||
      options.mode == Mode::kNativeSegmented) {
    // The native engine interprets the Core AST directly: compilation
    // stops after normalization.
    return finish();
  }

  // Relational modes: compile to the stacked table-algebra plan.
  compiler::CompileOptions copts;
  copts.explicit_serialization_step = options.explicit_serialization_step;
  XQJG_ASSIGN_OR_RETURN(out->stacked, compiler::CompileQuery(out->core, copts));
  out->diagnostics.ops_stacked = algebra::CountOps(out->stacked);
  if (validate) {
    XQJG_RETURN_NOT_OK(algebra::Validate(out->stacked, "compile", vopts));
  }

  if (options.mode == Mode::kStacked) {
    auto sql = sql::EmitStackedCte(out->stacked);
    if (sql.ok()) out->sql = sql.value();
    return finish();
  }

  // Join-graph mode: isolate, extract, and cost-based plan.
  XQJG_ASSIGN_OR_RETURN(opt::IsolationResult iso, opt::Isolate(out->stacked));
  out->isolated = iso.isolated;
  out->diagnostics.rule_counts = std::move(iso.rule_counts);
  out->diagnostics.ops_isolated = iso.ops_after;
  out->diagnostics.ranks_after = iso.ranks_after;
  out->diagnostics.distincts_after = iso.distincts_after;
  if (validate) {
    XQJG_RETURN_NOT_OK(algebra::Validate(out->isolated, "isolate", vopts));
  }

  auto graph = opt::ExtractJoinGraph(out->isolated);
  if (graph.ok()) {
    auto owned = std::make_unique<opt::JoinGraph>(std::move(graph).value());
    if (validate) {
      XQJG_RETURN_NOT_OK(
          opt::ValidateJoinGraph(*owned, "extract", num_params));
    }
    out->sql = sql::EmitJoinGraphSql(*owned);
    engine::PlannerOptions popts;
    popts.syntactic_order = options.syntactic_join_order;
    XQJG_ASSIGN_OR_RETURN(
        out->plan,
        engine::PlanJoinGraph(*owned, *snapshot->relational_db(), popts));
    out->graph = std::move(owned);  // plan.graph points into *graph
    out->has_plan = true;
    out->explain = engine::ExplainPlan(out->plan);
    CollectUsedIndexes(out->plan.root.get(), &out->used_indexes);
    if (validate) {
      opt::PlanCheckContext pctx;
      pctx.catalog_index_defs = &snapshot->index_defs;
      pctx.used_indexes = &out->used_indexes;
      pctx.num_params = num_params;
      XQJG_RETURN_NOT_OK(opt::CheckPhysicalPlan(
          out->plan, *snapshot->relational_db(), pctx, "plan"));
    }
  } else {
    // Residual blocking operators (deeply nested FLWOR): execution will
    // run the isolated DAG directly — still drastically fewer blocking
    // operators than the stacked plan (see DESIGN.md).
    if (!out->parameters.empty()) {
      return Status::NotSupported(
          "external parameters require an isolatable join-graph plan: " +
          graph.status().ToString());
    }
    out->used_fallback = true;
    auto sql = sql::EmitStackedCte(out->isolated);
    if (sql.ok()) out->sql = sql.value();
  }
  return finish();
}

Result<std::unique_ptr<ResultCursor>> XQueryProcessor::Execute(
    std::shared_ptr<const PreparedQuery> prepared,
    const ExecuteOptions& options) const {
  if (!prepared) return Status::InvalidArgument("null PreparedQuery");
  if (!prepared->catalog) {
    return Status::InvalidArgument(
        "PreparedQuery carries no catalog snapshot (not produced by "
        "Prepare)");
  }
  const std::shared_ptr<const CatalogSnapshot> current = snapshot();
  if (!ServableAgainst(*prepared, *current)) {
    return Status::InvalidArgument(
        "stale PreparedQuery: a document or index set it touches changed "
        "since Prepare (re-Prepare against the current catalog)");
  }
  const CatalogSnapshot& cat = *prepared->catalog;
  if (prepared->options.mode == Mode::kNativeWhole ||
      prepared->options.mode == Mode::kNativeSegmented) {
    const native::NativeEngine* engine =
        prepared->options.mode == Mode::kNativeWhole
            ? cat.whole_engine.get()
            : cat.segmented_engine.get();
    if (!engine) return Status::InvalidArgument("no documents loaded");
  }

  // Resolve parameter bindings (by name) into the slot vector the
  // executors consume. Every referenced parameter must be bound; every
  // binding must name a referenced parameter.
  std::vector<Value> params;
  if (!prepared->parameters.empty() || !options.parameters.empty()) {
    int max_slot = -1;
    for (const auto& decl : prepared->parameters) {
      max_slot = std::max(max_slot, decl.slot);
    }
    params.assign(static_cast<size_t>(max_slot + 1), Value::Null());
    std::set<std::string> declared;
    for (const auto& decl : prepared->parameters) {
      declared.insert(decl.name);
      auto it = options.parameters.find(decl.name);
      if (it == options.parameters.end()) {
        return Status::InvalidArgument("missing value for parameter $" +
                                       decl.name);
      }
      const Value& v = it->second;
      if (!v.is_null()) {
        if (decl.numeric && !v.IsNumeric()) {
          return Status::InvalidArgument(
              "parameter $" + decl.name +
              " is declared numeric; bind an int or double value");
        }
        if (!decl.numeric && v.type() != ValueType::kString) {
          return Status::InvalidArgument(
              "parameter $" + decl.name +
              " is declared xs:string; bind a string value");
        }
      }
      params[static_cast<size_t>(decl.slot)] = v;
    }
    for (const auto& [name, value] : options.parameters) {
      (void)value;
      if (!declared.count(name)) {
        return Status::InvalidArgument(
            "unknown parameter $" + name +
            " (not declared external, or never referenced by the query)");
      }
    }
  }
  return std::unique_ptr<ResultCursor>(
      // ResultCursor's constructor is private (Execute is its only maker),
      // so make_unique cannot reach it.  xqjg-lint: allow(raw-alloc)
      new ResultCursor(std::move(prepared), options, std::move(params)));
}

Result<RunResult> XQueryProcessor::ExecuteAll(
    std::shared_ptr<const PreparedQuery> prepared,
    const ExecuteOptions& options) const {
  XQJG_ASSIGN_OR_RETURN(std::unique_ptr<ResultCursor> cursor,
                        Execute(std::move(prepared), options));
  RunResult result;
  XQJG_ASSIGN_OR_RETURN(result.items, cursor->FetchAll());
  const ExecutionStats& stats = cursor->stats();
  result.seconds = stats.execute_seconds + stats.fetch_seconds;
  const PreparedQuery& pq = cursor->prepared();
  result.compile_seconds = pq.compile_seconds;
  result.sql = pq.sql;
  result.explain = pq.explain;
  result.used_fallback = pq.used_fallback;
  return result;
}

Result<RunResult> XQueryProcessor::Run(const std::string& query,
                                       const RunOptions& options) {
  PrepareOptions popts;
  popts.mode = options.mode;
  popts.context_document = options.context_document;
  popts.syntactic_join_order = options.syntactic_join_order;
  popts.explicit_serialization_step = options.explicit_serialization_step;
  popts.validate_plans = options.validate_plans;
  const auto prepare_started = std::chrono::steady_clock::now();
  XQJG_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedQuery> prepared,
                        Prepare(query, popts));
  const double prepare_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    prepare_started)
          .count();
  ExecuteOptions eopts;
  eopts.limits.timeout_seconds = options.timeout_seconds;
  eopts.use_columnar = options.use_columnar;
  eopts.threads = options.threads;
  eopts.parameters = options.parameters;
  XQJG_ASSIGN_OR_RETURN(RunResult result,
                        ExecuteAll(std::move(prepared), eopts));
  // What this call paid for compilation: the full pipeline on a cache
  // miss, a lookup on a hit.
  result.compile_seconds = prepare_seconds;
  return result;
}

}  // namespace xqjg::api
