#include "src/api/processor.h"

#include <chrono>

#include "src/compiler/compile.h"
#include "src/engine/algebra_exec.h"
#include "src/sql/sqlgen.h"
#include "src/xml/parser.h"
#include "src/xml/serializer.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"

namespace xqjg::api {

const char* ModeToString(Mode mode) {
  switch (mode) {
    case Mode::kStacked:
      return "stacked";
    case Mode::kJoinGraph:
      return "joingraph";
    case Mode::kNativeWhole:
      return "native-whole";
    case Mode::kNativeSegmented:
      return "native-segmented";
  }
  return "?";
}

Status XQueryProcessor::LoadDocument(
    const std::string& uri, const std::string& xml_text,
    const std::set<std::string>& segment_tags) {
  XQJG_RETURN_NOT_OK(xml::LoadDocument(&doc_, uri, xml_text));
  db_.reset();  // rebuilt lazily with fresh statistics
  XQJG_ASSIGN_OR_RETURN(auto dom, xml::ParseDom(uri, xml_text));
  if (!segment_tags.empty()) {
    XQJG_RETURN_NOT_OK(segmented_store_.AddSegmented(*dom, segment_tags));
    segmented_uris_.insert(uri);
  }
  XQJG_RETURN_NOT_OK(whole_store_.AddWhole(std::move(dom)));
  whole_engine_ = std::make_unique<native::NativeEngine>(&whole_store_);
  segmented_engine_ = std::make_unique<native::NativeEngine>(&segmented_store_);
  return Status::OK();
}

Status XQueryProcessor::EnsureDatabase() {
  if (!db_) db_ = engine::Database::Build(doc_);
  return Status::OK();
}

Status XQueryProcessor::CreateRelationalIndexes(
    const std::vector<engine::IndexDef>& defs) {
  XQJG_RETURN_NOT_OK(EnsureDatabase());
  for (const auto& def : defs) {
    XQJG_RETURN_NOT_OK(db_->CreateIndex(def));
  }
  return Status::OK();
}

void XQueryProcessor::DropRelationalIndexes() {
  if (db_) db_->DropAllIndexes();
}

void XQueryProcessor::CreatePatternIndex(native::XmlPattern pattern) {
  if (whole_engine_) whole_engine_->CreateIndex(pattern);
  if (segmented_engine_) segmented_engine_->CreateIndex(std::move(pattern));
}

Result<RunResult> XQueryProcessor::Run(const std::string& query,
                                       const RunOptions& options) {
  XQJG_ASSIGN_OR_RETURN(xquery::ExprPtr ast, xquery::Parse(query));
  xquery::NormalizeOptions norm_options;
  norm_options.context_document = options.context_document;
  XQJG_ASSIGN_OR_RETURN(xquery::ExprPtr core,
                        xquery::Normalize(ast, norm_options));
  RunResult result;
  auto exec_started = std::chrono::steady_clock::now();
  const auto compile_started = exec_started;
  auto mark_compiled = [&]() {
    exec_started = std::chrono::steady_clock::now();
    result.compile_seconds =
        std::chrono::duration<double>(exec_started - compile_started).count();
  };
  auto finish = [&]() {
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - exec_started)
                         .count();
    result.result_count = result.items.size();
    return result;
  };

  if (options.mode == Mode::kNativeWhole ||
      options.mode == Mode::kNativeSegmented) {
    native::NativeEngine* eng = options.mode == Mode::kNativeWhole
                                    ? whole_engine_.get()
                                    : segmented_engine_.get();
    if (!eng) return Status::InvalidArgument("no documents loaded");
    mark_compiled();
    XQJG_ASSIGN_OR_RETURN(result.items,
                          eng->Run(core, options.timeout_seconds));
    return finish();
  }

  // Relational modes.
  XQJG_RETURN_NOT_OK(EnsureDatabase());
  compiler::CompileOptions copts;
  copts.explicit_serialization_step = options.explicit_serialization_step;
  XQJG_ASSIGN_OR_RETURN(algebra::OpPtr stacked,
                        compiler::CompileQuery(core, copts));

  engine::ExecOptions exec_options;
  exec_options.limits.timeout_seconds = options.timeout_seconds;
  exec_options.use_columnar = options.use_columnar;

  std::vector<int64_t> pres;
  if (options.mode == Mode::kStacked) {
    auto sql = sql::EmitStackedCte(stacked);
    if (sql.ok()) result.sql = sql.value();
    mark_compiled();
    XQJG_ASSIGN_OR_RETURN(
        pres, engine::EvaluateToSequence(stacked, doc_, exec_options));
  } else {
    XQJG_ASSIGN_OR_RETURN(opt::IsolationResult iso, opt::Isolate(stacked));
    auto graph = opt::ExtractJoinGraph(iso.isolated);
    if (graph.ok()) {
      result.sql = sql::EmitJoinGraphSql(graph.value());
      engine::PlannerOptions popts;
      popts.syntactic_order = options.syntactic_join_order;
      popts.timeout_seconds = options.timeout_seconds;
      popts.use_columnar = options.use_columnar;
      XQJG_ASSIGN_OR_RETURN(engine::PhysicalPlan plan,
                            engine::PlanJoinGraph(graph.value(), *db_, popts));
      result.explain = engine::ExplainPlan(plan);
      mark_compiled();
      XQJG_ASSIGN_OR_RETURN(pres, engine::ExecutePlan(plan, *db_, popts));
    } else {
      // Residual blocking operators (deeply nested FLWOR): execute the
      // isolated DAG directly — still drastically fewer blocking
      // operators than the stacked plan (see DESIGN.md).
      result.used_fallback = true;
      auto sql = sql::EmitStackedCte(iso.isolated);
      if (sql.ok()) result.sql = sql.value();
      mark_compiled();
      XQJG_ASSIGN_OR_RETURN(
          pres, engine::EvaluateToSequence(iso.isolated, doc_, exec_options));
    }
  }
  result.items.reserve(pres.size());
  for (int64_t pre : pres) {
    result.items.push_back(xml::SerializeSubtree(doc_, pre));
  }
  return finish();
}

}  // namespace xqjg::api
