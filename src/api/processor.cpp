#include "src/api/processor.h"

#include <chrono>
#include <utility>

#include "src/algebra/dag.h"
#include "src/compiler/compile.h"
#include "src/sql/sqlgen.h"
#include "src/xml/parser.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"

namespace xqjg::api {

const char* ModeToString(Mode mode) {
  switch (mode) {
    case Mode::kStacked:
      return "stacked";
    case Mode::kJoinGraph:
      return "joingraph";
    case Mode::kNativeWhole:
      return "native-whole";
    case Mode::kNativeSegmented:
      return "native-segmented";
  }
  return "?";
}

Status XQueryProcessor::LoadDocument(
    const std::string& uri, const std::string& xml_text,
    const std::set<std::string>& segment_tags) {
  XQJG_RETURN_NOT_OK(xml::LoadDocument(&doc_, uri, xml_text));
  db_.reset();  // rebuilt lazily with fresh statistics
  XQJG_ASSIGN_OR_RETURN(auto dom, xml::ParseDom(uri, xml_text));
  if (!segment_tags.empty()) {
    XQJG_RETURN_NOT_OK(segmented_store_.AddSegmented(*dom, segment_tags));
    segmented_uris_.insert(uri);
  }
  XQJG_RETURN_NOT_OK(whole_store_.AddWhole(std::move(dom)));
  whole_engine_ = std::make_unique<native::NativeEngine>(&whole_store_);
  segmented_engine_ = std::make_unique<native::NativeEngine>(&segmented_store_);
  InvalidatePlans();
  return Status::OK();
}

Status XQueryProcessor::EnsureDatabase() {
  if (!db_) db_ = engine::Database::Build(doc_);
  return Status::OK();
}

void XQueryProcessor::InvalidatePlans() {
  generation_.fetch_add(1, std::memory_order_acq_rel);
  plan_cache_.Clear();
}

Status XQueryProcessor::CreateRelationalIndexes(
    const std::vector<engine::IndexDef>& defs) {
  XQJG_RETURN_NOT_OK(EnsureDatabase());
  for (const auto& def : defs) {
    XQJG_RETURN_NOT_OK(db_->CreateIndex(def));
  }
  InvalidatePlans();
  return Status::OK();
}

void XQueryProcessor::DropRelationalIndexes() {
  if (db_) db_->DropAllIndexes();
  InvalidatePlans();
}

void XQueryProcessor::CreatePatternIndex(native::XmlPattern pattern) {
  if (whole_engine_) whole_engine_->CreateIndex(pattern);
  if (segmented_engine_) segmented_engine_->CreateIndex(std::move(pattern));
  InvalidatePlans();
}

Result<std::shared_ptr<const PreparedQuery>> XQueryProcessor::Prepare(
    const std::string& query, const PrepareOptions& options) {
  const std::string key = PlanCache::MakeKey(query, options);
  if (auto cached = plan_cache_.Lookup(key)) return cached;
  XQJG_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedQuery> prepared,
                        PrepareUncached(query, options));
  plan_cache_.Insert(key, prepared);
  return prepared;
}

Result<std::shared_ptr<const PreparedQuery>> XQueryProcessor::PrepareUncached(
    const std::string& query, const PrepareOptions& options) {
  const auto started = std::chrono::steady_clock::now();
  auto out = std::make_shared<PreparedQuery>();
  out->query_text = query;
  out->options = options;
  out->catalog_generation = catalog_generation();

  XQJG_ASSIGN_OR_RETURN(xquery::ExprPtr ast, xquery::Parse(query));
  xquery::NormalizeOptions norm_options;
  norm_options.context_document = options.context_document;
  XQJG_ASSIGN_OR_RETURN(out->core, xquery::Normalize(ast, norm_options));

  auto finish = [&]() -> std::shared_ptr<const PreparedQuery> {
    out->compile_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    return out;
  };

  if (options.mode == Mode::kNativeWhole ||
      options.mode == Mode::kNativeSegmented) {
    // The native engine interprets the Core AST directly: compilation
    // stops after normalization.
    return finish();
  }

  // Relational modes: compile to the stacked table-algebra plan.
  XQJG_RETURN_NOT_OK(EnsureDatabase());
  compiler::CompileOptions copts;
  copts.explicit_serialization_step = options.explicit_serialization_step;
  XQJG_ASSIGN_OR_RETURN(out->stacked, compiler::CompileQuery(out->core, copts));
  out->diagnostics.ops_stacked = algebra::CountOps(out->stacked);

  if (options.mode == Mode::kStacked) {
    auto sql = sql::EmitStackedCte(out->stacked);
    if (sql.ok()) out->sql = sql.value();
    return finish();
  }

  // Join-graph mode: isolate, extract, and cost-based plan.
  XQJG_ASSIGN_OR_RETURN(opt::IsolationResult iso, opt::Isolate(out->stacked));
  out->isolated = iso.isolated;
  out->diagnostics.rule_counts = std::move(iso.rule_counts);
  out->diagnostics.ops_isolated = iso.ops_after;
  out->diagnostics.ranks_after = iso.ranks_after;
  out->diagnostics.distincts_after = iso.distincts_after;

  auto graph = opt::ExtractJoinGraph(out->isolated);
  if (graph.ok()) {
    auto owned = std::make_unique<opt::JoinGraph>(std::move(graph).value());
    out->sql = sql::EmitJoinGraphSql(*owned);
    engine::PlannerOptions popts;
    popts.syntactic_order = options.syntactic_join_order;
    XQJG_ASSIGN_OR_RETURN(out->plan,
                          engine::PlanJoinGraph(*owned, *db_, popts));
    out->graph = std::move(owned);  // plan.graph points into *graph
    out->has_plan = true;
    out->explain = engine::ExplainPlan(out->plan);
  } else {
    // Residual blocking operators (deeply nested FLWOR): execution will
    // run the isolated DAG directly — still drastically fewer blocking
    // operators than the stacked plan (see DESIGN.md).
    out->used_fallback = true;
    auto sql = sql::EmitStackedCte(out->isolated);
    if (sql.ok()) out->sql = sql.value();
  }
  return finish();
}

Result<std::unique_ptr<ResultCursor>> XQueryProcessor::Execute(
    std::shared_ptr<const PreparedQuery> prepared,
    const ExecuteOptions& options) const {
  if (!prepared) return Status::InvalidArgument("null PreparedQuery");
  if (prepared->catalog_generation != catalog_generation()) {
    return Status::InvalidArgument(
        "stale PreparedQuery: documents or indexes changed since Prepare "
        "(re-Prepare against the current catalog)");
  }
  const native::NativeEngine* native_engine = nullptr;
  if (prepared->options.mode == Mode::kNativeWhole ||
      prepared->options.mode == Mode::kNativeSegmented) {
    native_engine = prepared->options.mode == Mode::kNativeWhole
                        ? whole_engine_.get()
                        : segmented_engine_.get();
    if (!native_engine) return Status::InvalidArgument("no documents loaded");
  } else if (!db_) {
    // Unreachable through Prepare (which builds the database), but keeps
    // a hand-rolled PreparedQuery from dereferencing null.
    return Status::InvalidArgument("no documents loaded");
  }
  return std::unique_ptr<ResultCursor>(new ResultCursor(
      std::move(prepared), this, &doc_, db_.get(), native_engine, options));
}

Result<RunResult> XQueryProcessor::ExecuteAll(
    std::shared_ptr<const PreparedQuery> prepared,
    const ExecuteOptions& options) const {
  XQJG_ASSIGN_OR_RETURN(std::unique_ptr<ResultCursor> cursor,
                        Execute(std::move(prepared), options));
  RunResult result;
  XQJG_ASSIGN_OR_RETURN(result.items, cursor->FetchAll());
  const ExecutionStats& stats = cursor->stats();
  result.seconds = stats.execute_seconds + stats.fetch_seconds;
  const PreparedQuery& pq = cursor->prepared();
  result.compile_seconds = pq.compile_seconds;
  result.sql = pq.sql;
  result.explain = pq.explain;
  result.used_fallback = pq.used_fallback;
  return result;
}

Result<RunResult> XQueryProcessor::Run(const std::string& query,
                                       const RunOptions& options) {
  PrepareOptions popts;
  popts.mode = options.mode;
  popts.context_document = options.context_document;
  popts.syntactic_join_order = options.syntactic_join_order;
  popts.explicit_serialization_step = options.explicit_serialization_step;
  const auto prepare_started = std::chrono::steady_clock::now();
  XQJG_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedQuery> prepared,
                        Prepare(query, popts));
  const double prepare_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    prepare_started)
          .count();
  ExecuteOptions eopts;
  eopts.limits.timeout_seconds = options.timeout_seconds;
  eopts.use_columnar = options.use_columnar;
  XQJG_ASSIGN_OR_RETURN(RunResult result,
                        ExecuteAll(std::move(prepared), eopts));
  // What this call paid for compilation: the full pipeline on a cache
  // miss, a lookup on a hit.
  result.compile_seconds = prepare_seconds;
  return result;
}

}  // namespace xqjg::api
