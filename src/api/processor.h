// XQueryProcessor — the library's public facade.
//
// Load XML documents once, then compile XQuery text into immutable
// PreparedQuery artifacts and execute them — repeatedly, concurrently,
// streaming — through any of the four execution modes the paper's
// Table IX compares:
//   kStacked         compile only, execute the stacked plan (staged,
//                    materializing — DB2 on Pathfinder's unrewritten SQL)
//   kJoinGraph       compile + join graph isolation + cost-based relational
//                    execution over B-tree indexes (the paper's approach)
//   kNativeWhole     pureXML™-style native engine over the monolithic doc
//   kNativeSegmented same engine over the segmented store
//
// Lifecycle (mirroring the paper's front-end / back-end split):
//   Prepare(query, PrepareOptions)  -> shared_ptr<const PreparedQuery>
//   Execute(prepared, ExecuteOptions) -> ResultCursor (batched FetchNext)
//   ExecuteAll(prepared)            -> RunResult (full materialization)
//   Run(query, RunOptions)          -> compatibility shim: Prepare via the
//                                      LRU plan cache, then ExecuteAll.
//
// Parameterized queries: a prolog `declare variable $x external;`
// (optionally `as xs:string|xs:integer|xs:decimal|xs:double`) turns $x
// into a parameter marker. One Prepare (one cached plan) then serves the
// whole literal family — each Execute binds values via
// ExecuteOptions::parameters. The relational modes (stacked, and
// join-graph with an isolatable plan) substitute the bindings into their
// compiled qualifiers at execute time; the native modes bind them into a
// literal Core tree per execution (xquery::BindParams — their engine
// interprets literals directly), sharing every unchanged subtree with
// the cached artifact.
//
// Threading contract: the catalog is a shared-ownership snapshot
// (CatalogSnapshot) behind an atomic swap. Mutators (LoadDocument,
// Create*/Drop* index) serialize among themselves and publish a NEW
// snapshot copy-on-write — they never touch the snapshot in-flight work
// pins. Prepare, Execute, ExecuteAll, Run, and open ResultCursors are
// safe to call from any number of threads concurrently with each other
// AND with mutators: an execution drains against the snapshot its
// PreparedQuery pinned, so catalog mutation requires no draining of
// in-flight executions. Execute re-checks only the catalog objects the
// artifact touches (per-document epochs + the index set) and rejects the
// artifact as stale when one of them changed — re-Prepare to pick up the
// new catalog.
#ifndef XQJG_API_PROCESSOR_H_
#define XQJG_API_PROCESSOR_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/api/catalog.h"
#include "src/api/cursor.h"
#include "src/api/plan_cache.h"
#include "src/api/prepared_query.h"
#include "src/common/status.h"
#include "src/common/value.h"
#include "src/engine/database.h"
#include "src/native/xscan.h"

namespace xqjg::api {

/// Options of the one-shot Run shim: the PrepareOptions fields plus the
/// execution-time knobs (Run splits them internally).
struct RunOptions {
  Mode mode = Mode::kJoinGraph;
  /// Wall-clock DNF budget in seconds (<= 0: unlimited).
  double timeout_seconds = -1.0;
  /// Document substituted for absolute paths ("/site/...").
  std::string context_document;
  /// Disable cost-based join ordering (ablation).
  bool syntactic_join_order = false;
  /// Append the explicit serialization step (paper §IV).
  bool explicit_serialization_step = false;
  /// Stage-boundary plan verification (see PrepareOptions).
  ValidatePlans validate_plans = ValidatePlans::kAuto;
  /// Execute relational modes via the columnar batch executors (stacked /
  /// fallback plans and physical join trees); identical results, faster.
  bool use_columnar = false;
  /// Morsel workers for the columnar executors (1 = serial; ignored by
  /// the row and native lanes — see ExecuteOptions::threads).
  int threads = 1;
  /// Values for external parameters, by name (see ExecuteOptions).
  std::map<std::string, Value> parameters;
};

struct RunResult {
  std::vector<std::string> items;  ///< serialized result nodes, in order

  /// Result cardinality. `items` is the single source of truth — this is
  /// a view of it, so materialized counts cannot drift from cursor-based
  /// counts (ResultCursor reports the same value via stats().rows_total).
  size_t result_count() const { return items.size(); }

  /// Query execution time (what the paper's Table IX reports — Pathfinder
  /// compiles/isolates before shipping, so compile time is separate).
  double seconds = 0.0;
  /// Time spent in the Prepare phase of this call — full compilation on a
  /// plan-cache miss, a cache lookup on a hit.
  double compile_seconds = 0.0;
  std::string sql;      ///< shipped SQL (join graph block or CTE chain)
  std::string explain;  ///< physical plan (join-graph mode)
  bool used_fallback = false;  ///< isolated plan ran via the materializing
                               ///< executor (extraction not possible)
};

class XQueryProcessor {
 public:
  XQueryProcessor();

  /// Parses and registers a document under `uri` in every storage layout;
  /// re-loading an existing `uri` replaces its content (and bumps its
  /// epoch, invalidating exactly the plans that touch it). Publishes a
  /// new catalog snapshot; open cursors and plans over other documents
  /// are untouched. Mirrors the historical contract in one respect:
  /// loading a document resets the relational index set (re-create it
  /// with CreateRelationalIndexes) and the native pattern indexes.
  Status LoadDocument(const std::string& uri, const std::string& xml_text,
                      const std::set<std::string>& segment_tags = {});

  /// Creates the given relational B-tree set (default: Table VI) in a new
  /// snapshot (copy-on-write: doc storage and prior B-trees are shared).
  /// Evicts/invalidates join-graph plans — they consult the index set.
  Status CreateRelationalIndexes(
      const std::vector<engine::IndexDef>& defs = engine::TableVIIndexes());
  void DropRelationalIndexes();

  /// Declares a native XMLPATTERN index (rebuilt into a new snapshot).
  void CreatePatternIndex(native::XmlPattern pattern);

  /// Compiles `query` into an immutable PreparedQuery, consulting the LRU
  /// plan cache first (keyed by query text + options; only successful
  /// compilations are cached, and a cached artifact is revalidated
  /// against the current catalog before being returned). Parse/normalize
  /// for native modes; parse/normalize/compile (+ isolate + extract +
  /// plan for kJoinGraph) for the relational ones. Thread-safe, including
  /// concurrently with catalog mutators.
  Result<std::shared_ptr<const PreparedQuery>> Prepare(
      const std::string& query, const PrepareOptions& options = {}) const;

  /// Opens a streaming cursor over one execution of `prepared`. The
  /// cursor pins the snapshot the artifact was compiled against, so it
  /// stays valid across catalog mutations. Fails with InvalidArgument if
  /// a catalog object the artifact touches changed since Prepare (stale),
  /// or if parameter bindings don't match the query's declarations.
  Result<std::unique_ptr<ResultCursor>> Execute(
      std::shared_ptr<const PreparedQuery> prepared,
      const ExecuteOptions& options = {}) const;

  /// Convenience: Execute + drain the cursor into a RunResult (full
  /// materialization — today's Run semantics).
  Result<RunResult> ExecuteAll(std::shared_ptr<const PreparedQuery> prepared,
                               const ExecuteOptions& options = {}) const;

  /// One-shot compatibility shim: Prepare through the LRU plan cache,
  /// then ExecuteAll. Identical items / order / SQL / explain to the
  /// pre-cache facade; repeated calls pay compilation once.
  Result<RunResult> Run(const std::string& query, const RunOptions& options);

  /// Plan-cache observability and control. Capacity 0 disables caching.
  PlanCache::Stats plan_cache_stats() const { return plan_cache_.stats(); }
  void set_plan_cache_capacity(size_t capacity) {
    plan_cache_.set_capacity(capacity);
  }
  void ClearPlanCache() { plan_cache_.Clear(); }

  /// Monotonic catalog version; bumped by every document/index mutation.
  uint64_t catalog_generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// The current catalog snapshot (shared ownership: safe to keep across
  /// mutations — it simply stops being current).
  std::shared_ptr<const CatalogSnapshot> snapshot() const;

  /// Views into the CURRENT snapshot (forcing the lazy doc-relation /
  /// database build if needed). The references/pointers stay valid until
  /// the next catalog mutation on this processor; hold snapshot()
  /// instead when mutations may run concurrently.
  const xml::DocTable& doc_table() const { return *snapshot()->doc_table(); }
  const engine::Database* database() const {
    return snapshot()->relational_db().get();
  }

 private:
  /// True while every catalog object `pq` touches is unchanged in
  /// `current` — the single staleness predicate shared by Execute, the
  /// plan-cache revalidation, and per-mutation eviction.
  static bool ServableAgainst(const PreparedQuery& pq,
                              const CatalogSnapshot& current);

  Result<std::shared_ptr<const PreparedQuery>> PrepareUncached(
      const std::string& query, const PrepareOptions& options,
      const std::shared_ptr<const CatalogSnapshot>& snapshot) const;

  /// Publishes `next` as the current snapshot and evicts cache entries no
  /// longer servable against it. Caller holds mutation_mu_.
  void PublishLocked(std::shared_ptr<const CatalogSnapshot> next);

  /// Serializes mutators (LoadDocument, index DDL).
  std::mutex mutation_mu_;
  /// Guards the snapshot pointer swap (readers copy under this lock).
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const CatalogSnapshot> snapshot_;
  /// Mirror of snapshot_->generation for lock-free reads.
  std::atomic<uint64_t> generation_{0};

  mutable PlanCache plan_cache_;
};

}  // namespace xqjg::api

#endif  // XQJG_API_PROCESSOR_H_
