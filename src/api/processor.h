// XQueryProcessor — the library's public facade.
//
// Load XML documents once, then run XQuery text through any of the four
// execution modes the paper's Table IX compares:
//   kStacked         compile only, execute the stacked plan (staged,
//                    materializing — DB2 on Pathfinder's unrewritten SQL)
//   kJoinGraph       compile + join graph isolation + cost-based relational
//                    execution over B-tree indexes (the paper's approach)
//   kNativeWhole     pureXML™-style native engine over the monolithic doc
//   kNativeSegmented same engine over the segmented store
#ifndef XQJG_API_PROCESSOR_H_
#define XQJG_API_PROCESSOR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/engine/database.h"
#include "src/engine/planner.h"
#include "src/native/xscan.h"
#include "src/opt/isolate.h"
#include "src/xml/infoset.h"

namespace xqjg::api {

enum class Mode { kStacked, kJoinGraph, kNativeWhole, kNativeSegmented };

const char* ModeToString(Mode mode);

struct RunOptions {
  Mode mode = Mode::kJoinGraph;
  /// Wall-clock DNF budget in seconds (<= 0: unlimited).
  double timeout_seconds = -1.0;
  /// Document substituted for absolute paths ("/site/...").
  std::string context_document;
  /// Disable cost-based join ordering (ablation).
  bool syntactic_join_order = false;
  /// Append the explicit serialization step (paper §IV).
  bool explicit_serialization_step = false;
  /// Execute relational modes via the columnar batch executors (stacked /
  /// fallback plans and physical join trees); identical results, faster.
  bool use_columnar = false;
};

struct RunResult {
  std::vector<std::string> items;  ///< serialized result nodes, in order
  size_t result_count = 0;
  /// Query execution time (what the paper's Table IX reports — Pathfinder
  /// compiles/isolates before shipping, so compile time is separate).
  double seconds = 0.0;
  /// Parse + normalize + compile + isolate + extract time.
  double compile_seconds = 0.0;
  std::string sql;      ///< shipped SQL (join graph block or CTE chain)
  std::string explain;  ///< physical plan (join-graph mode)
  bool used_fallback = false;  ///< isolated plan ran via the materializing
                               ///< executor (extraction not possible)
};

class XQueryProcessor {
 public:
  XQueryProcessor() = default;

  /// Parses and registers a document under `uri` in every storage layout.
  /// `segment_tags` configures the native engine's segmented store (empty:
  /// segmented mode unavailable for this document).
  Status LoadDocument(const std::string& uri, const std::string& xml_text,
                      const std::set<std::string>& segment_tags = {});

  /// Creates the given relational B-tree set (default: Table VI).
  Status CreateRelationalIndexes(
      const std::vector<engine::IndexDef>& defs = engine::TableVIIndexes());
  void DropRelationalIndexes();

  /// Declares a native XMLPATTERN index.
  void CreatePatternIndex(native::XmlPattern pattern);

  /// Runs XQuery text under `options`.
  Result<RunResult> Run(const std::string& query, const RunOptions& options);

  const xml::DocTable& doc_table() const { return doc_; }
  engine::Database* database() { return db_.get(); }

 private:
  Status EnsureDatabase();

  xml::DocTable doc_;
  std::unique_ptr<engine::Database> db_;
  native::DocumentStore whole_store_;
  native::DocumentStore segmented_store_;
  std::unique_ptr<native::NativeEngine> whole_engine_;
  std::unique_ptr<native::NativeEngine> segmented_engine_;
  std::set<std::string> segmented_uris_;
};

}  // namespace xqjg::api

#endif  // XQJG_API_PROCESSOR_H_
