// XQueryProcessor — the library's public facade.
//
// Load XML documents once, then compile XQuery text into immutable
// PreparedQuery artifacts and execute them — repeatedly, concurrently,
// streaming — through any of the four execution modes the paper's
// Table IX compares:
//   kStacked         compile only, execute the stacked plan (staged,
//                    materializing — DB2 on Pathfinder's unrewritten SQL)
//   kJoinGraph       compile + join graph isolation + cost-based relational
//                    execution over B-tree indexes (the paper's approach)
//   kNativeWhole     pureXML™-style native engine over the monolithic doc
//   kNativeSegmented same engine over the segmented store
//
// Lifecycle (mirroring the paper's front-end / back-end split):
//   Prepare(query, PrepareOptions)  -> shared_ptr<const PreparedQuery>
//   Execute(prepared, ExecuteOptions) -> ResultCursor (batched FetchNext)
//   ExecuteAll(prepared)            -> RunResult (full materialization)
//   Run(query, RunOptions)          -> compatibility shim: Prepare via the
//                                      LRU plan cache, then ExecuteAll.
//
// Threading contract: the loading/compiling surface (LoadDocument,
// Create*/Drop* index, Prepare, Run) mutates the processor and needs
// exclusive access — no concurrent calls to it AND no executions or
// live cursors in flight while it runs (a catalog mutation frees the
// database/engines an in-flight execution is reading; the generation
// check rejects stale artifacts *between* fetches, it cannot stop a
// mutation racing an active one). Execute/ExecuteAll are const — once
// prepared, any number of threads may execute the same PreparedQuery
// against the immutable database simultaneously.
#ifndef XQJG_API_PROCESSOR_H_
#define XQJG_API_PROCESSOR_H_

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/api/cursor.h"
#include "src/api/plan_cache.h"
#include "src/api/prepared_query.h"
#include "src/common/status.h"
#include "src/engine/database.h"
#include "src/engine/planner.h"
#include "src/native/xscan.h"
#include "src/opt/isolate.h"
#include "src/xml/infoset.h"

namespace xqjg::api {

/// Options of the one-shot Run shim: the PrepareOptions fields plus the
/// execution-time knobs (Run splits them internally).
struct RunOptions {
  Mode mode = Mode::kJoinGraph;
  /// Wall-clock DNF budget in seconds (<= 0: unlimited).
  double timeout_seconds = -1.0;
  /// Document substituted for absolute paths ("/site/...").
  std::string context_document;
  /// Disable cost-based join ordering (ablation).
  bool syntactic_join_order = false;
  /// Append the explicit serialization step (paper §IV).
  bool explicit_serialization_step = false;
  /// Execute relational modes via the columnar batch executors (stacked /
  /// fallback plans and physical join trees); identical results, faster.
  bool use_columnar = false;
};

struct RunResult {
  std::vector<std::string> items;  ///< serialized result nodes, in order

  /// Result cardinality. `items` is the single source of truth — this is
  /// a view of it, so materialized counts cannot drift from cursor-based
  /// counts (ResultCursor reports the same value via stats().rows_total).
  size_t result_count() const { return items.size(); }

  /// Query execution time (what the paper's Table IX reports — Pathfinder
  /// compiles/isolates before shipping, so compile time is separate).
  double seconds = 0.0;
  /// Time spent in the Prepare phase of this call — full compilation on a
  /// plan-cache miss, a cache lookup on a hit.
  double compile_seconds = 0.0;
  std::string sql;      ///< shipped SQL (join graph block or CTE chain)
  std::string explain;  ///< physical plan (join-graph mode)
  bool used_fallback = false;  ///< isolated plan ran via the materializing
                               ///< executor (extraction not possible)
};

class XQueryProcessor {
 public:
  XQueryProcessor() = default;

  /// Parses and registers a document under `uri` in every storage layout.
  /// `segment_tags` configures the native engine's segmented store (empty:
  /// segmented mode unavailable for this document). Invalidates the plan
  /// cache and every outstanding PreparedQuery.
  Status LoadDocument(const std::string& uri, const std::string& xml_text,
                      const std::set<std::string>& segment_tags = {});

  /// Creates the given relational B-tree set (default: Table VI).
  /// Invalidates the plan cache and every outstanding PreparedQuery.
  Status CreateRelationalIndexes(
      const std::vector<engine::IndexDef>& defs = engine::TableVIIndexes());
  void DropRelationalIndexes();

  /// Declares a native XMLPATTERN index.
  void CreatePatternIndex(native::XmlPattern pattern);

  /// Compiles `query` into an immutable PreparedQuery, consulting the LRU
  /// plan cache first (keyed by query text + options; only successful
  /// compilations are cached). Parse/normalize for native modes;
  /// parse/normalize/compile (+ isolate + extract + plan for kJoinGraph)
  /// for the relational ones.
  Result<std::shared_ptr<const PreparedQuery>> Prepare(
      const std::string& query, const PrepareOptions& options = {});

  /// Opens a streaming cursor over one execution of `prepared`. Const and
  /// thread-safe: concurrent Execute calls on one PreparedQuery (or many)
  /// are supported. Fails with InvalidArgument if the catalog changed
  /// since Prepare (stale artifact).
  Result<std::unique_ptr<ResultCursor>> Execute(
      std::shared_ptr<const PreparedQuery> prepared,
      const ExecuteOptions& options = {}) const;

  /// Convenience: Execute + drain the cursor into a RunResult (full
  /// materialization — today's Run semantics).
  Result<RunResult> ExecuteAll(std::shared_ptr<const PreparedQuery> prepared,
                               const ExecuteOptions& options = {}) const;

  /// One-shot compatibility shim: Prepare through the LRU plan cache,
  /// then ExecuteAll. Identical items / order / SQL / explain to the
  /// pre-cache facade; repeated calls pay compilation once.
  Result<RunResult> Run(const std::string& query, const RunOptions& options);

  /// Plan-cache observability and control. Capacity 0 disables caching.
  PlanCache::Stats plan_cache_stats() const { return plan_cache_.stats(); }
  void set_plan_cache_capacity(size_t capacity) {
    plan_cache_.set_capacity(capacity);
  }
  void ClearPlanCache() { plan_cache_.Clear(); }

  /// Monotonic catalog version; bumped by every document/index mutation.
  /// A PreparedQuery executes only while its recorded generation matches.
  uint64_t catalog_generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  const xml::DocTable& doc_table() const { return doc_; }
  engine::Database* database() { return db_.get(); }
  const engine::Database* database() const { return db_.get(); }

 private:
  Status EnsureDatabase();
  void InvalidatePlans();
  Result<std::shared_ptr<const PreparedQuery>> PrepareUncached(
      const std::string& query, const PrepareOptions& options);

  xml::DocTable doc_;
  std::unique_ptr<engine::Database> db_;
  native::DocumentStore whole_store_;
  native::DocumentStore segmented_store_;
  std::unique_ptr<native::NativeEngine> whole_engine_;
  std::unique_ptr<native::NativeEngine> segmented_engine_;
  std::set<std::string> segmented_uris_;
  PlanCache plan_cache_;
  std::atomic<uint64_t> generation_{0};
};

}  // namespace xqjg::api

#endif  // XQJG_API_PROCESSOR_H_
