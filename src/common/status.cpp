#include "src/common/status.h"

namespace xqjg {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kBusy:
      return "Busy";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace xqjg
