// Status / Result error handling for XQJG (Arrow/RocksDB idiom).
//
// Public XQJG APIs never throw; fallible operations return Status (no
// payload) or Result<T> (payload or error).
#ifndef XQJG_COMMON_STATUS_H_
#define XQJG_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace xqjg {

/// Error taxonomy used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller handed us something malformed
  kParseError,        ///< XML or XQuery text failed to parse
  kNotSupported,      ///< outside the implemented language / algebra subset
  kInternal,          ///< invariant violation inside the library
  kNotFound,          ///< named entity (document, index, table) missing
  kTimeout,           ///< execution exceeded its wall-clock budget (DNF)
  kBusy,              ///< admission control shed the request (retry later)
};

/// Renders a StatusCode as a short stable string ("ParseError", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation without a payload.
///
/// Cheap to copy in the OK case (no allocation); error carries a message.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(StatusCode::kBusy, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

}  // namespace xqjg

/// Propagates a non-OK Status out of the enclosing function.
#define XQJG_RETURN_NOT_OK(expr)             \
  do {                                       \
    ::xqjg::Status _st = (expr);             \
    if (!_st.ok()) return _st;               \
  } while (0)

/// Evaluates a Result<T> expression; on error propagates the Status, on
/// success binds the value to `lhs`.
#define XQJG_ASSIGN_OR_RETURN(lhs, expr)             \
  auto XQJG_CONCAT_(_res_, __LINE__) = (expr);       \
  if (!XQJG_CONCAT_(_res_, __LINE__).ok())           \
    return XQJG_CONCAT_(_res_, __LINE__).status();   \
  lhs = std::move(XQJG_CONCAT_(_res_, __LINE__)).value()

#define XQJG_CONCAT_IMPL_(a, b) a##b
#define XQJG_CONCAT_(a, b) XQJG_CONCAT_IMPL_(a, b)

#endif  // XQJG_COMMON_STATUS_H_
