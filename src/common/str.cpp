#include "src/common/str.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cctype>
#include <cmath>

namespace xqjg {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::optional<double> ParseDecimal(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  double d = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) return std::nullopt;
  if (std::isnan(d) || std::isinf(d)) return std::nullopt;
  return d;
}

std::string FormatDecimal(double d) {
  if (d == static_cast<int64_t>(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  // Prefer the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, d);
    if (std::strtod(shorter, nullptr) == d) return shorter;
  }
  return buf;
}

std::string StrPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

static std::string EscapeCommon(std::string_view s, bool attr) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        if (attr) {
          out += "&quot;";
          break;
        }
        [[fallthrough]];
      default:
        out += c;
    }
  }
  return out;
}

std::string XmlEscapeText(std::string_view s) { return EscapeCommon(s, false); }
std::string XmlEscapeAttr(std::string_view s) { return EscapeCommon(s, true); }

std::string SqlQuote(std::string_view s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

}  // namespace xqjg
