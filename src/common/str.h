// Small string helpers shared across XQJG modules.
#ifndef XQJG_COMMON_STR_H_
#define XQJG_COMMON_STR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace xqjg {

/// Joins `parts` with `sep` ("a", "b" -> "a, b").
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Parses a decimal literal ("15", "4.20", "-3.5e2"). Returns nullopt for
/// strings that are not entirely numeric after trimming — this implements
/// the partial cast to xs:decimal used for the doc table's `data` column.
std::optional<double> ParseDecimal(std::string_view s);

/// Formats a double the way the doc table / SQL emitter expects
/// (shortest round-trip representation, no trailing zeros).
std::string FormatDecimal(double d);

/// printf-style formatting into a std::string.
std::string StrPrintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Escapes XML text content (& < >).
std::string XmlEscapeText(std::string_view s);

/// Escapes an XML attribute value (& < > ").
std::string XmlEscapeAttr(std::string_view s);

/// Escapes a string for inclusion in a single-quoted SQL literal.
std::string SqlQuote(std::string_view s);

}  // namespace xqjg

#endif  // XQJG_COMMON_STR_H_
