#include "src/common/value.h"

#include "src/common/str.h"

namespace xqjg {

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) return kNullCmp;
  if (IsNumeric() && other.IsNumeric()) {
    if (type() == ValueType::kInt && other.type() == ValueType::kInt) {
      int64_t a = AsInt(), b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsDouble(), b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type() == ValueType::kString && other.type() == ValueType::kString) {
    int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Mixed string/number: SQL would error; we order by type tag so sorting
  // stays total (comparisons of this shape never arise from well-typed
  // compiled plans).
  int a = static_cast<int>(type()), b = static_cast<int>(other.type());
  return a < b ? -1 : (a > b ? 1 : 0);
}

bool Value::SortLess(const Value& other) const {
  if (is_null() != other.is_null()) return is_null();
  if (is_null()) return false;
  if (IsNumeric() != other.IsNumeric()) return IsNumeric();
  return Compare(other) < 0;
}

bool Value::operator==(const Value& other) const {
  if (is_null() && other.is_null()) return true;
  if (is_null() || other.is_null()) return false;
  return Compare(other) == 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return StrPrintf("%lld", static_cast<long long>(AsInt()));
    case ValueType::kDouble:
      return FormatDecimal(std::get<2>(storage_));
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return kNullHash;
    case ValueType::kInt:
      return std::hash<int64_t>()(AsInt());
    case ValueType::kDouble: {
      double d = std::get<2>(storage_);
      // Hash doubles holding integral values like the equal int (numeric
      // cross-type equality must imply equal hashes for hash joins).
      if (d == static_cast<int64_t>(d)) {
        return std::hash<int64_t>()(static_cast<int64_t>(d));
      }
      return std::hash<double>()(d);
    }
    case ValueType::kString:
      return std::hash<std::string>()(AsString());
  }
  return 0;
}

bool AccumulateTermValue(Value* acc, bool* have, const Value& v) {
  if (!*have) {
    *acc = v;
    *have = true;
    return true;
  }
  if (acc->IsNumeric() && v.IsNumeric()) {
    if (acc->type() == ValueType::kInt && v.type() == ValueType::kInt) {
      *acc = Value::Int(acc->AsInt() + v.AsInt());
    } else {
      *acc = Value::Double(acc->AsDouble() + v.AsDouble());
    }
    return true;
  }
  *acc = Value::Null();  // non-numeric addition: undefined
  return false;
}

}  // namespace xqjg
