// Typed runtime value shared by the algebra (constants in predicates and
// attach operators) and the relational engine (cell values, index keys).
#ifndef XQJG_COMMON_VALUE_H_
#define XQJG_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

namespace xqjg {

enum class ValueType { kNull = 0, kInt, kDouble, kString };

/// \brief Small tagged value: NULL, int64, double, or string.
///
/// Ordering follows SQL-ish semantics: NULL sorts first and compares
/// "unknown" (Compare against NULL returns kNullCmp); ints and doubles
/// compare numerically across types; strings compare bytewise. Values of
/// incomparable types order by type tag (only relevant for index keys).
class Value {
 public:
  Value() = default;
  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Storage(std::in_place_index<1>, v)); }
  static Value Double(double v) { return Value(Storage(std::in_place_index<2>, v)); }
  static Value String(std::string v) {
    return Value(Storage(std::in_place_index<3>, std::move(v)));
  }

  ValueType type() const { return static_cast<ValueType>(storage_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }

  int64_t AsInt() const { return std::get<1>(storage_); }
  double AsDouble() const {
    return type() == ValueType::kInt ? static_cast<double>(std::get<1>(storage_))
                                     : std::get<2>(storage_);
  }
  const std::string& AsString() const { return std::get<3>(storage_); }

  bool IsNumeric() const {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }

  /// Three-way comparison result; kNullCmp when either side is NULL
  /// (comparisons with NULL are never true).
  static constexpr int kNullCmp = 2;

  /// Hash() of a NULL value — the single source of truth shared with the
  /// typed-column fast paths (ValueColumn::HashAt must match Hash()).
  static constexpr size_t kNullHash = 0x9e3779b97f4a7c15ULL;

  /// Returns -1 / 0 / +1, or kNullCmp if either side is NULL.
  int Compare(const Value& other) const;

  /// Total order usable as an index/sort key (NULL first, then numerics,
  /// then strings). Unlike Compare, never returns kNullCmp.
  bool SortLess(const Value& other) const;
  bool operator==(const Value& other) const;

  std::string ToString() const;
  size_t Hash() const;

 private:
  using Storage = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Storage s) : storage_(std::move(s)) {}
  Storage storage_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Folds the non-NULL `v` into a running term accumulator (the `Σ cols +
/// constant` semantics shared by every executor): the first value is
/// adopted, numeric values add (int+int stays int, any other numeric mix
/// widens to double), and non-numeric addition poisons the term. Returns
/// false when poisoned (`*acc` is then NULL); `*have` tracks whether a
/// value has been adopted yet.
bool AccumulateTermValue(Value* acc, bool* have, const Value& v);

}  // namespace xqjg

#endif  // XQJG_COMMON_VALUE_H_
