#include "src/common/value_column.h"

#include <functional>
#include <utility>

namespace xqjg {

namespace {

size_t HashInt(int64_t v) { return std::hash<int64_t>()(v); }

size_t HashDouble(double d) {
  // Same rule as Value::Hash: integral doubles hash like the equal int.
  if (d == static_cast<int64_t>(d)) return HashInt(static_cast<int64_t>(d));
  return std::hash<double>()(d);
}

bool IsStringLike(ColumnTag tag) {
  return tag == ColumnTag::kString || tag == ColumnTag::kDictString;
}

}  // namespace

uint32_t StringDict::Intern(const std::string& s) {
  auto it = code_of.find(s);
  if (it != code_of.end()) return it->second;
  const auto code = static_cast<uint32_t>(strings.size());
  strings.push_back(s);
  hashes.push_back(std::hash<std::string>()(s));
  code_of.emplace(s, code);
  return code;
}

int64_t StringDict::Lookup(const std::string& s) const {
  auto it = code_of.find(s);
  return it == code_of.end() ? -1 : static_cast<int64_t>(it->second);
}

Value ValueColumn::GetValue(size_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (tag_) {
    case ColumnTag::kInt:
      return Value::Int(ints_[row]);
    case ColumnTag::kDouble:
      return Value::Double(doubles_[row]);
    case ColumnTag::kString:
      return Value::String(strings_[row]);
    case ColumnTag::kDictString:
      return Value::String(dict_->strings[codes_[row]]);
    case ColumnTag::kMixed:
      return values_[row];
  }
  return Value::Null();
}

void ValueColumn::Reserve(size_t n) {
  switch (tag_) {
    case ColumnTag::kInt:
      ints_.reserve(n);
      break;
    case ColumnTag::kDouble:
      doubles_.reserve(n);
      break;
    case ColumnTag::kString:
      strings_.reserve(n);
      break;
    case ColumnTag::kDictString:
      codes_.reserve(n);
      break;
    case ColumnTag::kMixed:
      values_.reserve(n);
      break;
  }
}

void ValueColumn::SetTagFromFirstValue(const Value& v) {
  ColumnTag tag = ColumnTag::kMixed;
  switch (v.type()) {
    case ValueType::kInt:
      tag = ColumnTag::kInt;
      break;
    case ValueType::kDouble:
      tag = ColumnTag::kDouble;
      break;
    case ValueType::kString:
      tag = ColumnTag::kString;
      break;
    case ValueType::kNull:
      return;  // tag stays undecided until a non-NULL value arrives
  }
  // Rows stored so far (if any) are all NULL and live in the default kInt
  // payload; move their placeholder slots to the decided representation.
  ints_.clear();
  tag_ = tag;
  tag_decided_ = true;
  switch (tag_) {
    case ColumnTag::kInt:
      ints_.assign(size_, 0);
      break;
    case ColumnTag::kDouble:
      doubles_.assign(size_, 0);
      break;
    case ColumnTag::kString:
      strings_.assign(size_, std::string());
      break;
    case ColumnTag::kDictString:
    case ColumnTag::kMixed:
      break;
  }
}

void ValueColumn::DemoteToMixed() {
  values_.reserve(size_);
  for (size_t i = 0; i < size_; ++i) values_.push_back(GetValue(i));
  ints_.clear();
  doubles_.clear();
  strings_.clear();
  codes_.clear();
  dict_.reset();
  tag_ = ColumnTag::kMixed;
  tag_decided_ = true;
}

void ValueColumn::MarkNull(size_t row) {
  if (nulls_.empty()) nulls_.assign(size_, 0);
  if (nulls_.size() <= row) nulls_.resize(row + 1, 0);
  nulls_[row] = 1;
}

StringDict* ValueColumn::MutableDict() {
  if (!dict_) dict_ = std::make_shared<StringDict>();
  if (dict_.use_count() > 1) dict_ = std::make_shared<StringDict>(*dict_);
  return dict_.get();
}

uint32_t ValueColumn::InternString(const std::string& s) {
  // Existing entries need no copy-on-write — only a NEW distinct string
  // forces a private dictionary.
  if (dict_) {
    const int64_t code = dict_->Lookup(s);
    if (code >= 0) return static_cast<uint32_t>(code);
  }
  return MutableDict()->Intern(s);
}

void ValueColumn::AppendNull() {
  const size_t row = size_;
  switch (tag_) {
    case ColumnTag::kInt:
      ints_.push_back(0);
      break;
    case ColumnTag::kDouble:
      doubles_.push_back(0);
      break;
    case ColumnTag::kString:
      strings_.emplace_back();
      break;
    case ColumnTag::kDictString:
      codes_.push_back(0);
      break;
    case ColumnTag::kMixed:
      values_.push_back(Value::Null());
      break;
  }
  ++size_;
  MarkNull(row);
}

void ValueColumn::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  if (!tag_decided_) SetTagFromFirstValue(v);
  const bool matches =
      (tag_ == ColumnTag::kMixed) ||
      (tag_ == ColumnTag::kInt && v.type() == ValueType::kInt) ||
      (tag_ == ColumnTag::kDouble && v.type() == ValueType::kDouble) ||
      (IsStringLike(tag_) && v.type() == ValueType::kString);
  if (!matches) DemoteToMixed();
  switch (tag_) {
    case ColumnTag::kInt:
      ints_.push_back(v.AsInt());
      break;
    case ColumnTag::kDouble:
      doubles_.push_back(v.AsDouble());
      break;
    case ColumnTag::kString:
      strings_.push_back(v.AsString());
      break;
    case ColumnTag::kDictString:
      codes_.push_back(InternString(v.AsString()));
      break;
    case ColumnTag::kMixed:
      values_.push_back(v);
      break;
  }
  ++size_;
  if (!nulls_.empty()) nulls_.push_back(0);
}

void ValueColumn::AppendFrom(const ValueColumn& src, size_t row) {
  if (src.IsNull(row)) {
    AppendNull();
    return;
  }
  if (tag_decided_ && tag_ == src.tag_ && src.tag_ != ColumnTag::kMixed) {
    switch (tag_) {
      case ColumnTag::kInt:
        ints_.push_back(src.ints_[row]);
        break;
      case ColumnTag::kDouble:
        doubles_.push_back(src.doubles_[row]);
        break;
      case ColumnTag::kString:
        strings_.push_back(src.strings_[row]);
        break;
      case ColumnTag::kDictString:
        if (dict_ == src.dict_) {
          codes_.push_back(src.codes_[row]);
        } else {
          codes_.push_back(InternString(src.StringAt(row)));
        }
        break;
      case ColumnTag::kMixed:
        break;
    }
    ++size_;
    if (!nulls_.empty()) nulls_.push_back(0);
    return;
  }
  // Cross-representation string appends stay typed (no Value round-trip).
  if (tag_decided_ && IsStringLike(tag_) && IsStringLike(src.tag_)) {
    if (tag_ == ColumnTag::kString) {
      strings_.push_back(src.StringAt(row));
    } else {
      codes_.push_back(InternString(src.StringAt(row)));
    }
    ++size_;
    if (!nulls_.empty()) nulls_.push_back(0);
    return;
  }
  Append(src.GetValue(row));
}

size_t ValueColumn::HashAt(size_t row) const {
  if (IsNull(row)) return Value::kNullHash;
  switch (tag_) {
    case ColumnTag::kInt:
      return HashInt(ints_[row]);
    case ColumnTag::kDouble:
      return HashDouble(doubles_[row]);
    case ColumnTag::kString:
      return std::hash<std::string>()(strings_[row]);
    case ColumnTag::kDictString:
      return dict_->hashes[codes_[row]];
    case ColumnTag::kMixed:
      return values_[row].Hash();
  }
  return 0;
}

bool ValueColumn::EqualAt(const ValueColumn& a, size_t arow,
                          const ValueColumn& b, size_t brow) {
  const bool anull = a.IsNull(arow), bnull = b.IsNull(brow);
  if (anull || bnull) return anull && bnull;
  if (a.tag_ == b.tag_) {
    switch (a.tag_) {
      case ColumnTag::kInt:
        return a.ints_[arow] == b.ints_[brow];
      case ColumnTag::kDouble:
        return a.doubles_[arow] == b.doubles_[brow];
      case ColumnTag::kString:
        return a.strings_[arow] == b.strings_[brow];
      case ColumnTag::kDictString:
        if (a.dict_ == b.dict_) return a.codes_[arow] == b.codes_[brow];
        return a.StringAt(arow) == b.StringAt(brow);
      case ColumnTag::kMixed:
        return a.values_[arow] == b.values_[brow];
    }
  }
  // Dict vs plain string columns compare their payloads directly.
  if (IsStringLike(a.tag_) && IsStringLike(b.tag_)) {
    return a.StringAt(arow) == b.StringAt(brow);
  }
  return a.GetValue(arow) == b.GetValue(brow);
}

bool ValueColumn::SortLessAt(const ValueColumn& a, size_t arow,
                             const ValueColumn& b, size_t brow) {
  const bool anull = a.IsNull(arow), bnull = b.IsNull(brow);
  if (anull != bnull) return anull;
  if (anull) return false;
  if (a.tag_ == b.tag_) {
    switch (a.tag_) {
      case ColumnTag::kInt:
        return a.ints_[arow] < b.ints_[brow];
      case ColumnTag::kDouble:
        return a.doubles_[arow] < b.doubles_[brow];
      case ColumnTag::kString:
        return a.strings_[arow] < b.strings_[brow];
      case ColumnTag::kDictString:
        // Codes are appearance-ordered, not sorted: compare the strings.
        return a.StringAt(arow) < b.StringAt(brow);
      case ColumnTag::kMixed:
        return a.values_[arow].SortLess(b.values_[brow]);
    }
  }
  if (IsStringLike(a.tag_) && IsStringLike(b.tag_)) {
    return a.StringAt(arow) < b.StringAt(brow);
  }
  return a.GetValue(arow).SortLess(b.GetValue(brow));
}

ValueColumn ValueColumn::Ints(std::vector<int64_t> v) {
  ValueColumn col;
  col.tag_ = ColumnTag::kInt;
  col.tag_decided_ = true;
  col.size_ = v.size();
  col.ints_ = std::move(v);
  return col;
}

ValueColumn ValueColumn::Doubles(std::vector<double> v,
                                 std::vector<uint8_t> nulls) {
  ValueColumn col;
  col.tag_ = ColumnTag::kDouble;
  col.tag_decided_ = true;
  col.size_ = v.size();
  col.doubles_ = std::move(v);
  if (!nulls.empty()) nulls.resize(col.size_, 0);  // mask covers every row
  col.nulls_ = std::move(nulls);
  return col;
}

ValueColumn ValueColumn::Strings(std::vector<std::string> v,
                                 std::vector<uint8_t> nulls) {
  ValueColumn col;
  col.tag_ = ColumnTag::kString;
  col.tag_decided_ = true;
  col.size_ = v.size();
  col.strings_ = std::move(v);
  if (!nulls.empty()) nulls.resize(col.size_, 0);  // mask covers every row
  col.nulls_ = std::move(nulls);
  return col;
}

ValueColumn ValueColumn::DictStrings(const std::vector<std::string>& v,
                                     std::vector<uint8_t> nulls) {
  ValueColumn col;
  col.tag_ = ColumnTag::kDictString;
  col.tag_decided_ = true;
  col.size_ = v.size();
  if (!nulls.empty()) nulls.resize(col.size_, 0);  // mask covers every row
  col.nulls_ = std::move(nulls);
  col.dict_ = std::make_shared<StringDict>();
  col.codes_.reserve(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    // NULL slots carry code 0 as a don't-care (the mask wins).
    col.codes_.push_back(col.IsNull(i) ? 0 : col.dict_->Intern(v[i]));
  }
  return col;
}

ValueColumn ValueColumn::Gather(const std::vector<uint32_t>& idx) const {
  ValueColumn out;
  out.tag_ = tag_;
  out.tag_decided_ = tag_decided_;
  out.size_ = idx.size();
  switch (tag_) {
    case ColumnTag::kInt:
      out.ints_.reserve(idx.size());
      for (uint32_t i : idx) out.ints_.push_back(ints_[i]);
      break;
    case ColumnTag::kDouble:
      out.doubles_.reserve(idx.size());
      for (uint32_t i : idx) out.doubles_.push_back(doubles_[i]);
      break;
    case ColumnTag::kString:
      out.strings_.reserve(idx.size());
      for (uint32_t i : idx) out.strings_.push_back(strings_[i]);
      break;
    case ColumnTag::kDictString:
      out.dict_ = dict_;  // shared — a gather never copies the dictionary
      out.codes_.reserve(idx.size());
      for (uint32_t i : idx) out.codes_.push_back(codes_[i]);
      break;
    case ColumnTag::kMixed:
      out.values_.reserve(idx.size());
      for (uint32_t i : idx) out.values_.push_back(values_[i]);
      break;
  }
  if (!nulls_.empty()) {
    out.nulls_.reserve(idx.size());
    bool any = false;
    for (uint32_t i : idx) {
      out.nulls_.push_back(nulls_[i]);
      any = any || nulls_[i];
    }
    if (!any) out.nulls_.clear();
  }
  return out;
}

ValueColumn ValueColumn::EmptyLike(const ValueColumn& src) {
  ValueColumn col;
  col.tag_ = src.tag_;
  col.tag_decided_ = src.tag_decided_;
  col.dict_ = src.dict_;  // shared until a new distinct string interns
  return col;
}

void ValueColumn::AppendRange(const ValueColumn& src, size_t begin,
                              size_t len) {
  if (len == 0) return;
  if (!tag_decided_ || tag_ != src.tag_ || tag_ == ColumnTag::kMixed) {
    // Representation mismatch: the per-row path handles every promotion.
    // Delta splice of an already-typed relation (DDL/load time, not query
    // execution).  xqjg-lint: allow(no-budget-guard)
    for (size_t i = 0; i < len; ++i) AppendFrom(src, begin + i);
    return;
  }
  const size_t old_size = size_;
  switch (tag_) {
    case ColumnTag::kInt:
      ints_.insert(ints_.end(), src.ints_.begin() + static_cast<ptrdiff_t>(begin),
                   src.ints_.begin() + static_cast<ptrdiff_t>(begin + len));
      break;
    case ColumnTag::kDouble:
      doubles_.insert(doubles_.end(),
                      src.doubles_.begin() + static_cast<ptrdiff_t>(begin),
                      src.doubles_.begin() + static_cast<ptrdiff_t>(begin + len));
      break;
    case ColumnTag::kString:
      strings_.insert(strings_.end(),
                      src.strings_.begin() + static_cast<ptrdiff_t>(begin),
                      src.strings_.begin() + static_cast<ptrdiff_t>(begin + len));
      break;
    case ColumnTag::kDictString: {
      if (dict_ == src.dict_) {
        codes_.insert(codes_.end(),
                      src.codes_.begin() + static_cast<ptrdiff_t>(begin),
                      src.codes_.begin() + static_cast<ptrdiff_t>(begin + len));
      } else {
        // Re-intern the source DICTIONARY once, then map codes through the
        // table. When this column's dictionary is a copy-on-write superset
        // of src's (the delta-splice case), every remapped code equals the
        // source code, so the spliced run stays byte-identical.
        std::vector<uint32_t> remap(src.dict_ ? src.dict_->strings.size() : 0);
        for (size_t c = 0; c < remap.size(); ++c) {
          remap[c] = InternString(src.dict_->strings[c]);
        }
        // xqjg-lint: allow(no-budget-guard): load/DDL-time splice
        for (size_t i = 0; i < len; ++i) {
          const size_t r = begin + i;
          // NULL slots carry code 0 as a don't-care (the mask wins).
          codes_.push_back(src.IsNull(r) ? 0 : remap[src.codes_[r]]);
        }
      }
      break;
    }
    case ColumnTag::kMixed:
      break;  // excluded above
  }
  const uint8_t* src_mask = src.null_mask();
  bool src_any = false;
  if (src_mask) {
    for (size_t i = 0; i < len && !src_any; ++i) src_any = src_mask[begin + i] != 0;
  }
  if (!nulls_.empty() || src_any) {
    if (nulls_.empty()) nulls_.assign(old_size, 0);
    if (src_mask) {
      nulls_.insert(nulls_.end(), src_mask + begin, src_mask + begin + len);
    } else {
      nulls_.insert(nulls_.end(), len, 0);
    }
  }
  size_ = old_size + len;
}

void ValueColumn::AppendString(const std::string& s) {
  if (tag_decided_ && tag_ == ColumnTag::kDictString) {
    codes_.push_back(InternString(s));
  } else if (tag_decided_ && tag_ == ColumnTag::kString) {
    strings_.push_back(s);
  } else {
    Append(Value::String(s));
    return;
  }
  ++size_;
  if (!nulls_.empty()) nulls_.push_back(0);
}

int64_t ValueColumn::dict_bytes() const {
  if (!dict_) return 0;
  int64_t bytes = 0;
  for (const std::string& s : dict_->strings) {
    // Each distinct string is stored twice (payload vector + code_of key).
    bytes += static_cast<int64_t>(2 * (sizeof(std::string) + s.size()));
  }
  bytes += static_cast<int64_t>(dict_->hashes.size() * sizeof(size_t));
  // Hash-map node overhead: bucket pointer + node links + code, rounded.
  bytes += static_cast<int64_t>(dict_->code_of.size() *
                                (sizeof(uint32_t) + 3 * sizeof(void*)));
  return bytes;
}

int64_t ValueColumn::ApproxBytes() const {
  int64_t bytes = static_cast<int64_t>(nulls_.size());
  bytes += static_cast<int64_t>(ints_.size()) * 8;
  bytes += static_cast<int64_t>(doubles_.size()) * 8;
  bytes += static_cast<int64_t>(codes_.size()) * 4;
  for (const std::string& s : strings_) {
    bytes += static_cast<int64_t>(sizeof(std::string) + s.size());
  }
  for (const Value& v : values_) {
    bytes += static_cast<int64_t>(sizeof(Value));
    if (v.type() == ValueType::kString) {
      bytes += static_cast<int64_t>(v.AsString().size());
    }
  }
  return bytes;
}

ValueColumn ColumnFromValues(const std::vector<Value>& values) {
  ValueColumn col;
  col.Reserve(values.size());
  for (const Value& v : values) col.Append(v);
  return col;
}

std::vector<Value> ColumnToValues(const ValueColumn& column) {
  std::vector<Value> out;
  out.reserve(column.size());
  for (size_t i = 0; i < column.size(); ++i) out.push_back(column.GetValue(i));
  return out;
}

}  // namespace xqjg
