// Typed column chunk + Value ↔ column conversion helpers.
//
// A ValueColumn stores one column of a materialized table in typed form
// (int64 / double / string vectors with an optional null mask) instead of
// one Value per cell. It is the storage unit of the columnar batch
// executor (src/engine/columnar/); the per-row accessors mirror Value
// semantics exactly (Hash / operator== / SortLess), so the columnar and
// row executors agree bit-for-bit.
//
// Columns whose cells do not share one runtime type degrade to a kMixed
// representation holding plain Values — correctness never depends on a
// column being cleanly typed, only speed does.
#ifndef XQJG_COMMON_VALUE_COLUMN_H_
#define XQJG_COMMON_VALUE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/value.h"

namespace xqjg {

enum class ColumnTag { kInt, kDouble, kString, kMixed };

class ValueColumn {
 public:
  ValueColumn() = default;

  size_t size() const { return size_; }
  ColumnTag tag() const { return tag_; }
  bool has_nulls() const { return !nulls_.empty(); }
  bool IsNull(size_t row) const { return !nulls_.empty() && nulls_[row]; }

  /// Reconstructs the cell as a Value (NULL slots return Value::Null()).
  Value GetValue(size_t row) const;

  void Reserve(size_t n);
  void Append(const Value& v);
  void AppendNull();
  /// Appends src's cell `row`; fast (no Value round-trip) when tags match.
  void AppendFrom(const ValueColumn& src, size_t row);

  /// Mirrors Value::Hash() of GetValue(row) without materializing it.
  size_t HashAt(size_t row) const;
  /// Mirrors Value::operator== (NULL == NULL is true, NULL == x is false).
  static bool EqualAt(const ValueColumn& a, size_t arow, const ValueColumn& b,
                      size_t brow);
  /// Mirrors Value::SortLess (total order: NULL, numerics, strings).
  static bool SortLessAt(const ValueColumn& a, size_t arow,
                         const ValueColumn& b, size_t brow);

  /// Typed raw access; valid only when tag() matches (and the slot may be
  /// a don't-care default for NULL rows).
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }

  /// Bulk constructors (empty `nulls` = no NULL rows; else one flag/row).
  static ValueColumn Ints(std::vector<int64_t> v);
  static ValueColumn Doubles(std::vector<double> v,
                             std::vector<uint8_t> nulls = {});
  static ValueColumn Strings(std::vector<std::string> v,
                             std::vector<uint8_t> nulls = {});

  /// New column with rows picked by `idx` (typed gather, no Value boxing).
  ValueColumn Gather(const std::vector<uint32_t>& idx) const;

 private:
  void SetTagFromFirstValue(const Value& v);
  void DemoteToMixed();
  void MarkNull(size_t row);

  ColumnTag tag_ = ColumnTag::kInt;
  bool tag_decided_ = false;
  size_t size_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<Value> values_;    // kMixed payload
  std::vector<uint8_t> nulls_;   // empty, or size_ flags (1 = NULL)
};

/// Value ↔ column conversion helpers.
ValueColumn ColumnFromValues(const std::vector<Value>& values);
std::vector<Value> ColumnToValues(const ValueColumn& column);

}  // namespace xqjg

#endif  // XQJG_COMMON_VALUE_COLUMN_H_
