// Typed column chunk + Value ↔ column conversion helpers.
//
// A ValueColumn stores one column of a materialized table in typed form
// (int64 / double / string vectors with an optional null mask) instead of
// one Value per cell. It is the storage unit of the columnar batch
// executor (src/engine/columnar/) and of the doc relation itself
// (engine::Database); the per-row accessors mirror Value semantics
// exactly (Hash / operator== / SortLess), so the columnar and row
// executors agree bit-for-bit.
//
// String columns may additionally be dictionary-encoded (kDictString): a
// shared dictionary of distinct strings plus a per-row code vector.
// Equality over dict codes, precomputed per-entry hashes, and gathers
// that share the dictionary make dictionary columns the preferred
// representation for low-cardinality columns like the doc relation's
// `name`. Dictionary and plain string columns agree on HashAt / EqualAt /
// SortLessAt, so the two representations mix freely in joins and sorts.
//
// Columns whose cells do not share one runtime type degrade to a kMixed
// representation holding plain Values — correctness never depends on a
// column being cleanly typed, only speed does.
#ifndef XQJG_COMMON_VALUE_COLUMN_H_
#define XQJG_COMMON_VALUE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/value.h"

namespace xqjg {

enum class ColumnTag { kInt, kDouble, kString, kDictString, kMixed };

/// The shared payload of a dictionary-encoded string column: the distinct
/// strings in first-appearance order, their precomputed hashes (identical
/// to Value::Hash() of the string), and a code lookup for appends.
/// Immutable once shared — appending a NEW distinct string to a column
/// whose dictionary is shared clones the dictionary first (copy-on-write).
struct StringDict {
  std::vector<std::string> strings;
  std::vector<size_t> hashes;
  std::unordered_map<std::string, uint32_t> code_of;

  /// Returns the code of `s`, inserting it if absent.
  uint32_t Intern(const std::string& s);
  /// Returns the code of `s`, or -1 if not in the dictionary.
  int64_t Lookup(const std::string& s) const;
};

class ValueColumn {
 public:
  ValueColumn() = default;

  size_t size() const { return size_; }
  ColumnTag tag() const { return tag_; }
  bool has_nulls() const { return !nulls_.empty(); }
  bool IsNull(size_t row) const { return !nulls_.empty() && nulls_[row]; }
  /// Raw null mask (1 = NULL), or nullptr when the column has no NULLs.
  const uint8_t* null_mask() const {
    return nulls_.empty() ? nullptr : nulls_.data();
  }

  /// Reconstructs the cell as a Value (NULL slots return Value::Null()).
  Value GetValue(size_t row) const;

  void Reserve(size_t n);
  void Append(const Value& v);
  void AppendNull();
  /// Appends src's cell `row`; fast (no Value round-trip) when tags match
  /// (dict → dict with a shared dictionary copies the code directly).
  void AppendFrom(const ValueColumn& src, size_t row);

  /// Mirrors Value::Hash() of GetValue(row) without materializing it
  /// (dictionary columns return the precomputed per-entry hash).
  size_t HashAt(size_t row) const;
  /// Mirrors Value::operator== (NULL == NULL is true, NULL == x is false).
  static bool EqualAt(const ValueColumn& a, size_t arow, const ValueColumn& b,
                      size_t brow);
  /// Mirrors Value::SortLess (total order: NULL, numerics, strings).
  static bool SortLessAt(const ValueColumn& a, size_t arow,
                         const ValueColumn& b, size_t brow);

  /// Typed raw access; valid only when tag() matches (and the slot may be
  /// a don't-care default for NULL rows).
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }

  /// Dictionary access; valid only for kDictString columns.
  const std::vector<uint32_t>& dict_codes() const { return codes_; }
  const StringDict& dict() const { return *dict_; }
  size_t dict_size() const { return dict_ ? dict_->strings.size() : 0; }
  /// Code of `s` in this column's dictionary, or -1 when absent (then no
  /// row of the column can equal `s`) — the equality-kernel fast path.
  int64_t DictCode(const std::string& s) const {
    return dict_ ? dict_->Lookup(s) : -1;
  }

  /// The string payload of row; valid for kString and kDictString tags.
  const std::string& StringAt(size_t row) const {
    return tag_ == ColumnTag::kDictString ? dict_->strings[codes_[row]]
                                          : strings_[row];
  }

  /// Bulk constructors (empty `nulls` = no NULL rows; else one flag/row).
  static ValueColumn Ints(std::vector<int64_t> v);
  static ValueColumn Doubles(std::vector<double> v,
                             std::vector<uint8_t> nulls = {});
  static ValueColumn Strings(std::vector<std::string> v,
                             std::vector<uint8_t> nulls = {});
  /// Dictionary-encoded construction: interns every non-NULL string.
  static ValueColumn DictStrings(const std::vector<std::string>& v,
                                 std::vector<uint8_t> nulls = {});

  /// New column with rows picked by `idx` (typed gather, no Value boxing;
  /// dictionary columns share the dictionary with the source).
  ValueColumn Gather(const std::vector<uint32_t>& idx) const;

  /// Zero-row column with src's representation; a dictionary column
  /// SHARES src's dictionary (copy-on-write fires only if a later append
  /// interns a new distinct string). The starting point of the delta
  /// splices in xml::DocBlock.
  static ValueColumn EmptyLike(const ValueColumn& src);

  /// Bulk-appends src rows [begin, begin+len): typed vector splices when
  /// the representations match. Dictionary → dictionary appends copy the
  /// code vector when the dictionary is shared; otherwise the source
  /// dictionary is re-interned ONCE (O(|src dict|)) and codes map through
  /// the resulting table — never a per-row string hash.
  void AppendRange(const ValueColumn& src, size_t begin, size_t len);

  /// Appends one non-NULL string without boxing a Value (dictionary
  /// columns intern, plain string columns push).
  void AppendString(const std::string& s);

  /// The shared dictionary (null for non-dictionary columns). Exposed for
  /// sharing/identity assertions and memory accounting — dictionaries are
  /// deduplicated by this pointer when summing a relation's footprint.
  std::shared_ptr<const StringDict> dict_ptr() const { return dict_; }

  /// Approximate heap bytes of the dictionary itself (strings + hashes +
  /// code map). Charged once per DISTINCT dictionary by block-level
  /// accounting; ApproxBytes() deliberately excludes it.
  int64_t dict_bytes() const;

  /// Approximate heap bytes of this column's per-row payload (shared
  /// dictionaries excluded — they are owned by the source relation). The
  /// unit the columnar executors charge against
  /// ExecLimits::max_memory_bytes.
  int64_t ApproxBytes() const;

 private:
  void SetTagFromFirstValue(const Value& v);
  void DemoteToMixed();
  void MarkNull(size_t row);
  /// Clones the dictionary if other columns share it (copy-on-write
  /// before interning a new entry).
  StringDict* MutableDict();
  /// Code of `s`, interning it (with copy-on-write) only when new.
  uint32_t InternString(const std::string& s);

  ColumnTag tag_ = ColumnTag::kInt;
  bool tag_decided_ = false;
  size_t size_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<uint32_t> codes_;            // kDictString payload
  std::shared_ptr<StringDict> dict_;       // kDictString dictionary
  std::vector<Value> values_;    // kMixed payload
  std::vector<uint8_t> nulls_;   // empty, or size_ flags (1 = NULL)
};

/// Value ↔ column conversion helpers.
ValueColumn ColumnFromValues(const std::vector<Value>& values);
std::vector<Value> ColumnToValues(const ValueColumn& column);

/// Compiled `dict_col = 'const'` / `dict_col != 'const'` kernel — the
/// single shared implementation behind every executor's dictionary
/// equality fast path (the constant is looked up in the dictionary once;
/// per row it is one uint32 compare). NULL rows never pass, either op —
/// comparisons against NULL are unknown. `ok` is false when the column
/// is not dictionary-encoded (callers fall back to their generic path).
/// Holds raw pointers into the column: valid only while the column (and
/// its dictionary) outlive the kernel.
struct DictEqKernel {
  bool ok = false;
  const uint32_t* codes = nullptr;
  const uint8_t* nulls = nullptr;  // may be null (no NULL rows)
  bool present = false;            // constant exists in the dictionary
  uint32_t code = 0;
  bool negate = false;  // inequality form

  static DictEqKernel Compile(const ValueColumn& col,
                              const std::string& constant, bool negate) {
    DictEqKernel k;
    if (col.tag() != ColumnTag::kDictString) return k;
    k.codes = col.dict_codes().data();
    k.nulls = col.null_mask();
    const int64_t code = col.DictCode(constant);
    k.present = code >= 0;
    k.code = k.present ? static_cast<uint32_t>(code) : 0;
    k.negate = negate;
    k.ok = true;
    return k;
  }

  bool Test(size_t row) const {
    if (nulls && nulls[row]) return false;  // NULL never compares true
    const bool eq = present && codes[row] == code;
    return negate ? !eq : eq;
  }
};

}  // namespace xqjg

#endif  // XQJG_COMMON_VALUE_COLUMN_H_
