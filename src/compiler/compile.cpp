#include "src/compiler/compile.h"

#include <map>
#include <set>

#include "src/common/str.h"
#include "src/xml/infoset.h"

namespace xqjg::compiler {

using algebra::CmpOp;
using algebra::MakeAttach;
using algebra::MakeCross;
using algebra::MakeDistinct;
using algebra::MakeDocTable;
using algebra::MakeJoin;
using algebra::MakeLiteral;
using algebra::MakeProject;
using algebra::MakeRank;
using algebra::MakeRowId;
using algebra::MakeSelect;
using algebra::MakeSerialize;
using algebra::OpPtr;
using algebra::Predicate;
using algebra::Term;
using xquery::Axis;
using xquery::ExprKind;
using xquery::ExprPtr;
using xquery::NodeTest;
using xquery::TestKind;

namespace {

Value KindConst(xml::NodeKind kind) {
  return Value::Int(static_cast<int64_t>(kind));
}

}  // namespace

Predicate AxisPredicate(Axis axis, const std::string& cpre,
                        const std::string& csize, const std::string& clevel,
                        const std::string& cparent, const std::string& croot) {
  Predicate p;
  switch (axis) {
    case Axis::kChild:
      p.And(Term::Col(cpre), CmpOp::kLt, Term::Col("pre"));
      p.And(Term::Col("pre"), CmpOp::kLe, Term::ColSum(cpre, csize));
      p.And(Term::ColPlus(clevel, 1), CmpOp::kEq, Term::Col("level"));
      break;
    case Axis::kDescendant:
      p.And(Term::Col(cpre), CmpOp::kLt, Term::Col("pre"));
      p.And(Term::Col("pre"), CmpOp::kLe, Term::ColSum(cpre, csize));
      break;
    case Axis::kDescendantOrSelf:
      p.And(Term::Col(cpre), CmpOp::kLe, Term::Col("pre"));
      p.And(Term::Col("pre"), CmpOp::kLe, Term::ColSum(cpre, csize));
      break;
    case Axis::kSelf:
      p.And(Term::Col("pre"), CmpOp::kEq, Term::Col(cpre));
      break;
    case Axis::kParent:
      p.And(Term::Col("pre"), CmpOp::kEq, Term::Col(cparent));
      break;
    case Axis::kAncestor:
      p.And(Term::Col("pre"), CmpOp::kLt, Term::Col(cpre));
      p.And(Term::Col(cpre), CmpOp::kLe, Term::ColSum("pre", "size"));
      break;
    case Axis::kAncestorOrSelf:
      p.And(Term::Col("pre"), CmpOp::kLe, Term::Col(cpre));
      p.And(Term::Col(cpre), CmpOp::kLe, Term::ColSum("pre", "size"));
      break;
    case Axis::kFollowing:
      p.And(Term::ColSum(cpre, csize), CmpOp::kLt, Term::Col("pre"));
      p.And(Term::Col("root"), CmpOp::kEq, Term::Col(croot));
      break;
    case Axis::kPreceding:
      p.And(Term::ColSum("pre", "size"), CmpOp::kLt, Term::Col(cpre));
      p.And(Term::Col("root"), CmpOp::kEq, Term::Col(croot));
      break;
    case Axis::kFollowingSibling:
      p.And(Term::Col("parent"), CmpOp::kEq, Term::Col(cparent));
      p.And(Term::Col(cpre), CmpOp::kLt, Term::Col("pre"));
      break;
    case Axis::kPrecedingSibling:
      p.And(Term::Col("parent"), CmpOp::kEq, Term::Col(cparent));
      p.And(Term::Col("pre"), CmpOp::kLt, Term::Col(cpre));
      break;
    case Axis::kAttribute:
      p.And(Term::Col("parent"), CmpOp::kEq, Term::Col(cpre));
      break;
  }
  return p;
}

Predicate NodeTestPredicate(Axis axis, const NodeTest& test) {
  using xml::NodeKind;
  Predicate p;
  const bool attr_axis = axis == Axis::kAttribute;
  switch (test.kind) {
    case TestKind::kName:
      p.And(Term::Col("kind"), CmpOp::kEq,
            Term::Const(KindConst(attr_axis ? NodeKind::kAttr
                                            : NodeKind::kElem)));
      p.And(Term::Col("name"), CmpOp::kEq,
            Term::Const(Value::String(test.name)));
      break;
    case TestKind::kWildcard:
      p.And(Term::Col("kind"), CmpOp::kEq,
            Term::Const(KindConst(attr_axis ? NodeKind::kAttr
                                            : NodeKind::kElem)));
      break;
    case TestKind::kText:
      p.And(Term::Col("kind"), CmpOp::kEq,
            Term::Const(KindConst(NodeKind::kText)));
      // Text nodes carry the empty name in the encoding; stating it makes
      // the predicate sargable for the name-prefixed B-trees (DB2 deploys
      // nkspl for text() steps the same way, Fig. 10).
      p.And(Term::Col("name"), CmpOp::kEq, Term::Const(Value::String("")));
      break;
    case TestKind::kComment:
      p.And(Term::Col("kind"), CmpOp::kEq,
            Term::Const(KindConst(NodeKind::kComment)));
      p.And(Term::Col("name"), CmpOp::kEq, Term::Const(Value::String("")));
      break;
    case TestKind::kPi:
      p.And(Term::Col("kind"), CmpOp::kEq,
            Term::Const(KindConst(NodeKind::kPi)));
      break;
    case TestKind::kElement:
      p.And(Term::Col("kind"), CmpOp::kEq,
            Term::Const(KindConst(NodeKind::kElem)));
      if (!test.name.empty()) {
        p.And(Term::Col("name"), CmpOp::kEq,
              Term::Const(Value::String(test.name)));
      }
      break;
    case TestKind::kAttribute:
      p.And(Term::Col("kind"), CmpOp::kEq,
            Term::Const(KindConst(NodeKind::kAttr)));
      if (!test.name.empty()) {
        p.And(Term::Col("name"), CmpOp::kEq,
              Term::Const(Value::String(test.name)));
      }
      break;
    case TestKind::kAnyNode:
      if (attr_axis) {
        p.And(Term::Col("kind"), CmpOp::kEq,
              Term::Const(KindConst(NodeKind::kAttr)));
      } else {
        p.And(Term::Col("kind"), CmpOp::kNe,
              Term::Const(KindConst(NodeKind::kAttr)));
        switch (axis) {
          case Axis::kChild:
          case Axis::kDescendant:
          case Axis::kFollowing:
          case Axis::kPreceding:
          case Axis::kFollowingSibling:
          case Axis::kPrecedingSibling:
            // These axes can never deliver a document node.
            p.And(Term::Col("kind"), CmpOp::kNe,
                  Term::Const(KindConst(NodeKind::kDoc)));
            break;
          default:
            break;
        }
      }
      break;
  }
  return p;
}

namespace {

/// A compiled subexpression: the plan plus the (globally unique) names of
/// its iter / pos / item columns.
struct Q {
  OpPtr op;
  std::string iter;
  std::string pos;
  std::string item;
};

/// A loop relation: single-column table of iteration ids.
struct Loop {
  OpPtr op;
  std::string iter;
};

/// Implements the judgment Γ; loop ⊢ e ⇒ q (Fig. 13) with globally unique
/// column naming (the real Pathfinder does the same: the paper's
/// presentation reuses iter/pos/item per plan section, which a named
/// algebra cannot).
class LoopLifter {
 public:
  LoopLifter() : doc_(MakeDocTable()) {}

  Result<Q> Compile(const ExprPtr& e, const std::map<std::string, Q>& env,
                    const Loop& loop) {
    switch (e->kind) {
      case ExprKind::kDoc:
        return CompileDoc(e, loop);
      case ExprKind::kVar: {
        auto it = env.find(e->var);
        if (it == env.end()) {
          return Status::InvalidArgument("unbound variable $" + e->var);
        }
        return it->second;
      }
      case ExprKind::kDdo: {
        XQJG_ASSIGN_OR_RETURN(Q q, Compile(e->a, env, loop));
        Q out;
        out.iter = Fresh("iter");
        out.item = Fresh("item");
        out.pos = Fresh("pos");
        out.op = MakeRank(
            MakeDistinct(MakeProject(
                q.op, {{out.iter, q.iter}, {out.item, q.item}})),
            out.pos, {out.item});
        return out;
      }
      case ExprKind::kStep: {
        XQJG_ASSIGN_OR_RETURN(Q q, Compile(e->a, env, loop));
        return CompileStep(e, std::move(q));
      }
      case ExprKind::kFor:
        return CompileFor(e, env, loop);
      case ExprKind::kLet: {
        XQJG_ASSIGN_OR_RETURN(Q value, Compile(e->a, env, loop));
        std::map<std::string, Q> env2 = env;
        env2[e->var] = std::move(value);
        return Compile(e->b, env2, loop);
      }
      case ExprKind::kIf:
        return CompileIf(e, env, loop);
      case ExprKind::kEbv:
        // The IF rule's loopif = δ(π_iter(q_if)) realizes fn:boolean.
        return Compile(e->a, env, loop);
      case ExprKind::kComp:
        return CompileComp(e, env, loop);
      case ExprKind::kEmptySeq: {
        Q out;
        out.iter = Fresh("iter");
        out.pos = Fresh("pos");
        out.item = Fresh("item");
        out.op = MakeLiteral({out.iter, out.pos, out.item}, {});
        return out;
      }
      case ExprKind::kParam:
        return Status::NotSupported(
            "parameter $" + e->var +
            " used outside a comparison operand position");
      default:
        return Status::NotSupported(
            StrPrintf("cannot compile non-Core expression kind '%s'",
                      xquery::ExprKindToString(e->kind)));
    }
  }

 private:
  std::string Fresh(const char* base) {
    return StrPrintf("%s%d", base, ++fresh_);
  }

  // DOC: π(σ_kind=DOC ∧ name=uri(doc) × @pos:1(loop))
  Result<Q> CompileDoc(const ExprPtr& e, const Loop& loop) {
    Predicate sel;
    sel.And(Term::Col("kind"), CmpOp::kEq,
            Term::Const(KindConst(xml::NodeKind::kDoc)));
    sel.And(Term::Col("name"), CmpOp::kEq,
            Term::Const(Value::String(e->str)));
    Q out;
    out.iter = Fresh("iter");
    out.pos = Fresh("pos");
    out.item = Fresh("item");
    OpPtr with_pos = MakeAttach(loop.op, out.pos, Value::Int(1));
    OpPtr cross = MakeCross(MakeSelect(doc_, std::move(sel)),
                            std::move(with_pos));
    out.op = MakeProject(std::move(cross), {{out.iter, loop.iter},
                                            {out.pos, out.pos},
                                            {out.item, "pre"}});
    return out;
  }

  // STEP: ϱ_pos:<item>( π( σ_test(doc) ⋈_axis(α) π_ctx(doc ⋈_pre=item q) ) )
  Result<Q> CompileStep(const ExprPtr& e, Q q) {
    const std::string cpre = Fresh("cpre");
    const std::string csize = Fresh("csize");
    const std::string clevel = Fresh("clevel");
    const std::string cparent = Fresh("cparent");
    const std::string croot = Fresh("croot");
    const std::string citer = Fresh("iter");
    OpPtr ctx = MakeJoin(doc_, q.op,
                         Predicate::Single(Term::Col("pre"), CmpOp::kEq,
                                           Term::Col(q.item)));
    ctx = MakeProject(std::move(ctx), {{citer, q.iter},
                                       {cpre, "pre"},
                                       {csize, "size"},
                                       {clevel, "level"},
                                       {cparent, "parent"},
                                       {croot, "root"}});
    OpPtr filtered = MakeSelect(doc_, NodeTestPredicate(e->axis, e->test));
    OpPtr joined =
        MakeJoin(std::move(filtered), std::move(ctx),
                 AxisPredicate(e->axis, cpre, csize, clevel, cparent, croot));
    Q out;
    out.iter = Fresh("iter");
    out.item = Fresh("item");
    out.pos = Fresh("pos");
    OpPtr projected = MakeProject(std::move(joined),
                                  {{out.iter, citer}, {out.item, "pre"}});
    out.op = MakeRank(std::move(projected), out.pos, {out.item});
    return out;
  }

  // COMP: existential general comparison (presence of an iter row encodes
  // "true"); pos = item = 1.
  Result<Q> CompileComp(const ExprPtr& e, const std::map<std::string, Q>& env,
                        const Loop& loop) {
    const bool lhs_lit = IsLiteral(e->a);
    const bool rhs_lit = IsLiteral(e->b);
    if (lhs_lit && rhs_lit) {
      return Status::NotSupported("comparison of two literals");
    }
    OpPtr selected;
    std::string iter_col;
    if (lhs_lit || rhs_lit) {
      const ExprPtr& node_side = lhs_lit ? e->b : e->a;
      const ExprPtr& lit_side = lhs_lit ? e->a : e->b;
      CmpOp op = lhs_lit ? algebra::FlipCmpOp(ToCmpOp(e->op)) : ToCmpOp(e->op);
      XQJG_ASSIGN_OR_RETURN(Q q, Compile(node_side, env, loop));
      OpPtr joined = MakeJoin(doc_, q.op,
                              Predicate::Single(Term::Col("pre"), CmpOp::kEq,
                                                Term::Col(q.item)));
      // Numeric literals compare against the typed-decimal column `data`,
      // string literals against the untyped `value` column (paper §II-A;
      // Table VI: the nkdlp vs vnlkp index split). Parameter markers use
      // their declared type for the same split and defer the value.
      const bool numeric = lit_side->kind == ExprKind::kNumLit ||
                           (lit_side->kind == ExprKind::kParam &&
                            lit_side->numeric);
      Term lit_term =
          lit_side->kind == ExprKind::kParam
              ? Term::Param(lit_side->slot, lit_side->var)
              : Term::Const(numeric ? Value::Double(lit_side->num)
                                    : Value::String(lit_side->str));
      selected = MakeSelect(
          std::move(joined),
          Predicate::Single(Term::Col(numeric ? "data" : "value"), op,
                            std::move(lit_term)));
      iter_col = q.iter;
    } else {
      // Node-node comparison: existential over pairs of atomized nodes,
      // untyped (string) comparison [11].
      XQJG_ASSIGN_OR_RETURN(Q q1, Compile(e->a, env, loop));
      XQJG_ASSIGN_OR_RETURN(Q q2, Compile(e->b, env, loop));
      const std::string v1 = Fresh("val");
      const std::string v2 = Fresh("val");
      const std::string i1 = Fresh("iter");
      const std::string i2 = Fresh("iter");
      OpPtr lhs = MakeProject(
          MakeJoin(doc_, q1.op,
                   Predicate::Single(Term::Col("pre"), CmpOp::kEq,
                                     Term::Col(q1.item))),
          {{i1, q1.iter}, {v1, "value"}});
      OpPtr rhs = MakeProject(
          MakeJoin(doc_, q2.op,
                   Predicate::Single(Term::Col("pre"), CmpOp::kEq,
                                     Term::Col(q2.item))),
          {{i2, q2.iter}, {v2, "value"}});
      OpPtr joined = MakeJoin(std::move(lhs), std::move(rhs),
                              Predicate::Single(Term::Col(i1), CmpOp::kEq,
                                                Term::Col(i2)));
      selected = MakeSelect(std::move(joined),
                            Predicate::Single(Term::Col(v1), ToCmpOp(e->op),
                                              Term::Col(v2)));
      iter_col = i1;
    }
    Q out;
    out.iter = Fresh("iter");
    out.pos = Fresh("pos");
    out.item = Fresh("item");
    OpPtr dedup = MakeDistinct(
        MakeProject(std::move(selected), {{out.iter, iter_col}}));
    out.op = MakeAttach(MakeAttach(std::move(dedup), out.pos, Value::Int(1)),
                        out.item, Value::Int(1));
    return out;
  }

  // IF: loopif = δ(π_iter1:iter(q_if)); remap the live environment into
  // the filtered loop; compile the then-branch under loopif.
  Result<Q> CompileIf(const ExprPtr& e, const std::map<std::string, Q>& env,
                      const Loop& loop) {
    XQJG_ASSIGN_OR_RETURN(Q q_if, Compile(e->a, env, loop));
    const std::string iter1 = Fresh("iter");
    OpPtr loopif =
        MakeDistinct(MakeProject(q_if.op, {{iter1, q_if.iter}}));
    std::map<std::string, Q> env2;
    for (const std::string& var : xquery::FreeVariables(*e->b)) {
      auto it = env.find(var);
      if (it == env.end()) continue;  // unbound -> error later in the body
      const Q& qv = it->second;
      OpPtr mapped = MakeJoin(loopif, qv.op,
                              Predicate::Single(Term::Col(iter1), CmpOp::kEq,
                                                Term::Col(qv.iter)));
      Q nv;
      nv.iter = Fresh("iter");
      nv.pos = Fresh("pos");
      nv.item = Fresh("item");
      nv.op = MakeProject(std::move(mapped), {{nv.iter, qv.iter},
                                              {nv.pos, qv.pos},
                                              {nv.item, qv.item}});
      env2[var] = std::move(nv);
    }
    Loop loop2;
    loop2.iter = Fresh("iter");
    loop2.op = MakeProject(loopif, {{loop2.iter, iter1}});
    return Compile(e->b, env2, loop2);
  }

  // FOR — the centerpiece (Fig. 13).
  Result<Q> CompileFor(const ExprPtr& e, const std::map<std::string, Q>& env,
                       const Loop& loop) {
    XQJG_ASSIGN_OR_RETURN(Q q_in, Compile(e->a, env, loop));
    const std::string inner = Fresh("inner");
    const std::string outer = Fresh("outer");
    const std::string sort = Fresh("sort");
    OpPtr q_x = MakeRowId(q_in.op, inner);
    OpPtr map = MakeProject(
        q_x, {{outer, q_in.iter}, {inner, inner}, {sort, q_in.pos}});
    std::map<std::string, Q> env2;
    for (const std::string& var : xquery::FreeVariables(*e->b)) {
      if (var == e->var) continue;
      auto it = env.find(var);
      if (it == env.end()) continue;
      const Q& qv = it->second;
      OpPtr mapped = MakeJoin(map, qv.op,
                              Predicate::Single(Term::Col(outer), CmpOp::kEq,
                                                Term::Col(qv.iter)));
      Q nv;
      nv.iter = Fresh("iter");
      nv.pos = Fresh("pos");
      nv.item = Fresh("item");
      nv.op = MakeProject(std::move(mapped), {{nv.iter, inner},
                                              {nv.pos, qv.pos},
                                              {nv.item, qv.item}});
      env2[var] = std::move(nv);
    }
    {
      Q bx;
      bx.iter = Fresh("iter");
      bx.pos = Fresh("pos");
      bx.item = Fresh("item");
      bx.op = MakeAttach(
          MakeProject(q_x, {{bx.iter, inner}, {bx.item, q_in.item}}),
          bx.pos, Value::Int(1));
      env2[e->var] = std::move(bx);
    }
    Loop loop2;
    loop2.iter = Fresh("iter");
    loop2.op = MakeProject(map, {{loop2.iter, inner}});
    XQJG_ASSIGN_OR_RETURN(Q q, Compile(e->b, env2, loop2));
    OpPtr joined = MakeJoin(q.op, map,
                            Predicate::Single(Term::Col(q.iter), CmpOp::kEq,
                                              Term::Col(inner)));
    const std::string pos1 = Fresh("pos");
    OpPtr ranked = MakeRank(std::move(joined), pos1, {sort, q.pos});
    Q out;
    out.iter = Fresh("iter");
    out.pos = Fresh("pos");
    out.item = Fresh("item");
    out.op = MakeProject(std::move(ranked), {{out.iter, outer},
                                             {out.pos, pos1},
                                             {out.item, q.item}});
    return out;
  }

  /// Literal-like comparison operands: literals and parameter markers
  /// (a parameter is a literal whose value arrives at Execute time).
  static bool IsLiteral(const ExprPtr& e) {
    return e->kind == ExprKind::kNumLit || e->kind == ExprKind::kStrLit ||
           e->kind == ExprKind::kParam;
  }

  static CmpOp ToCmpOp(xquery::CompOp op) {
    switch (op) {
      case xquery::CompOp::kEq:
        return CmpOp::kEq;
      case xquery::CompOp::kNe:
        return CmpOp::kNe;
      case xquery::CompOp::kLt:
        return CmpOp::kLt;
      case xquery::CompOp::kLe:
        return CmpOp::kLe;
      case xquery::CompOp::kGt:
        return CmpOp::kGt;
      case xquery::CompOp::kGe:
        return CmpOp::kGe;
    }
    return CmpOp::kEq;
  }

  OpPtr doc_;
  int fresh_ = 0;
};

}  // namespace

Result<OpPtr> CompileQuery(const ExprPtr& core, const CompileOptions& options) {
  if (!xquery::IsCore(*core)) {
    return Status::InvalidArgument(
        "CompileQuery expects a Core-normalized expression (run Normalize)");
  }
  xquery::ExprPtr query = core;
  if (options.explicit_serialization_step) {
    // for $fs:ser in Q return $fs:ser/descendant-or-self::node()
    query = xquery::MakeFor(
        "fs:ser", core,
        xquery::MakeDdo(xquery::MakeStep(
            xquery::MakeVar("fs:ser"), Axis::kDescendantOrSelf,
            NodeTest{TestKind::kAnyNode, ""})));
  }
  LoopLifter lifter;
  Loop loop;
  loop.iter = "iter0";
  loop.op = MakeLiteral({loop.iter}, {{Value::Int(1)}});
  XQJG_ASSIGN_OR_RETURN(Q q0, lifter.Compile(query, {}, loop));
  return MakeSerialize(q0.op, q0.pos, q0.item);
}

}  // namespace xqjg::compiler
