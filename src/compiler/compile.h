// Loop-lifting XQuery compiler (paper §II-C, Appendix A / Fig. 13).
//
// Compiles a Core-normalized expression into a table-algebra DAG. Every
// subexpression plan produces the ternary iter|pos|item encoding: row
// [i,p,v] = "in iteration i the expression yielded the node with pre rank
// v at sequence position p".
//
// Implemented rules: DOC, DDO, STEP (all 12 axes), IF, COMP (literal and
// node-node generalization), FOR, VAR, plus LET from [11].
#ifndef XQJG_COMPILER_COMPILE_H_
#define XQJG_COMPILER_COMPILE_H_

#include "src/algebra/operators.h"
#include "src/common/status.h"
#include "src/xquery/ast.h"

namespace xqjg::compiler {

struct CompileOptions {
  /// Append a final descendant-or-self::node() step to the query result,
  /// making the serialization workload explicit (paper §IV: "to provide
  /// the RDBMS with complete information about the expected queries").
  bool explicit_serialization_step = false;
};

/// Compiles Core expression `core` (see xquery::Normalize) to an algebra
/// plan rooted in a serialize operator.
Result<algebra::OpPtr> CompileQuery(const xquery::ExprPtr& core,
                                    const CompileOptions& options = {});

/// Builds the axis predicate axis(α) of Fig. 3 between context columns
/// (cpre/csize/clevel/cparent/croot — the ° columns) and the doc columns.
algebra::Predicate AxisPredicate(xquery::Axis axis, const std::string& cpre,
                                 const std::string& csize,
                                 const std::string& clevel,
                                 const std::string& cparent,
                                 const std::string& croot);

/// Builds the kind/name test predicate kindt(n) ∧ namet(n) of Fig. 3 over
/// the doc columns (axis-dependent: attribute axis selects ATTR nodes).
algebra::Predicate NodeTestPredicate(xquery::Axis axis,
                                     const xquery::NodeTest& test);

}  // namespace xqjg::compiler

#endif  // XQJG_COMPILER_COMPILE_H_
