#include "src/data/dblp.h"

#include "src/common/str.h"

namespace xqjg::data {

namespace {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 6364136223846793005ULL + 1) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 17;
  }
  int Uniform(int lo, int hi) {
    return lo + static_cast<int>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }

 private:
  uint64_t state_;
};

const char* kAuthors[] = {"M. Ley",      "T. Grust",   "J. Teubner",
                          "S. Sakr",     "D. Olteanu", "N. Bruno",
                          "H. Jagadish", "G. Graefe",  "P. O'Neil",
                          "E. Codd"};
const char* kTopics[] = {"Query Optimization", "XML Processing",
                         "Join Algorithms",    "Index Structures",
                         "Stream Processing",  "Transaction Models",
                         "Storage Engines",    "Cost Models"};
const char* kVenues[] = {"vldb", "sigmod", "icde", "edbt", "cidr"};

}  // namespace

std::string GenerateDblp(const DblpOptions& options) {
  Rng rng(options.seed);
  std::string out = "<dblp>\n";
  for (int i = 0; i < options.publications; ++i) {
    const int year = rng.Uniform(1985, 2007);
    const char* topic = kTopics[rng.Uniform(0, 7)];
    const int kind = rng.Uniform(0, 19);
    if (kind == 0) {
      // ~5% phdthesis, some before 1994 (the Q6 predicate).
      out += StrPrintf(
          "<phdthesis key=\"phd/thesis%d\" mdate=\"2002-01-03\">"
          "<author>%s</author>"
          "<title>A Study of %s</title>"
          "<year>%d</year>"
          "<school>University %d</school>"
          "</phdthesis>\n",
          i, kAuthors[rng.Uniform(0, 9)], topic, year, rng.Uniform(1, 40));
    } else if (kind <= 3) {
      // proceedings entries with editor (Q5's /dblp/*[... editor ...]).
      const char* venue = kVenues[rng.Uniform(0, 4)];
      out += StrPrintf(
          "<proceedings key=\"conf/%s%d/p\">"
          "<editor>%s</editor>"
          "<title>Proceedings of %s %d</title>"
          "<year>%d</year>"
          "<publisher>ACM</publisher>"
          "</proceedings>\n",
          venue, year, kAuthors[rng.Uniform(0, 9)], venue, year, year);
    } else if (kind <= 11) {
      const char* venue = kVenues[rng.Uniform(0, 4)];
      out += StrPrintf(
          "<inproceedings key=\"conf/%s/%d\" mdate=\"2004-06-01\">"
          "<author>%s</author><author>%s</author>"
          "<title>%s for Large Databases</title>"
          "<pages>%d-%d</pages>"
          "<year>%d</year>"
          "<booktitle>%s</booktitle>"
          "</inproceedings>\n",
          venue, i, kAuthors[rng.Uniform(0, 9)], kAuthors[rng.Uniform(0, 9)],
          topic, rng.Uniform(1, 300), rng.Uniform(301, 500), year, venue);
    } else {
      out += StrPrintf(
          "<article key=\"journals/j%d\" mdate=\"2003-03-07\">"
          "<author>%s</author>"
          "<title>On %s</title>"
          "<journal>TODS</journal>"
          "<volume>%d</volume>"
          "<year>%d</year>"
          "</article>\n",
          i, kAuthors[rng.Uniform(0, 9)], topic, rng.Uniform(1, 30), year);
    }
  }
  // The specific key Q5 looks up must exist exactly once.
  out +=
      "<proceedings key=\"conf/vldb2001\">"
      "<editor>P. Apers</editor>"
      "<title>VLDB 2001, Proceedings of 27th International Conference "
      "on Very Large Data Bases</title>"
      "<year>2001</year>"
      "</proceedings>\n";
  out += "</dblp>\n";
  return out;
}

}  // namespace xqjg::data
