// Deterministic DBLP-like bibliography generator (substitute for the
// paper's 400 MB DBLP instance; preserves what Q5/Q6 touch: publication
// kinds incl. phdthesis with author/title/year, editor/title entries with
// conference keys).
#ifndef XQJG_DATA_DBLP_H_
#define XQJG_DATA_DBLP_H_

#include <cstdint>
#include <string>

namespace xqjg::data {

struct DblpOptions {
  int publications = 2000;
  uint64_t seed = 7;
};

std::string GenerateDblp(const DblpOptions& options = {});

}  // namespace xqjg::data

#endif  // XQJG_DATA_DBLP_H_
