#include "src/data/xmark.h"

#include "src/common/str.h"

namespace xqjg::data {

namespace {

/// Deterministic 64-bit LCG (stable across platforms; std::mt19937 would
/// also do, but distributions are not portable).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 6364136223846793005ULL + 1) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 17;
  }
  int Uniform(int lo, int hi) {  // inclusive
    return lo + static_cast<int>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }
  double UniformReal(double lo, double hi) {
    return lo + (hi - lo) * (static_cast<double>(Next() % 1000000) / 1e6);
  }

 private:
  uint64_t state_;
};

const char* kWords[] = {"gold",   "vintage", "rare",    "classic", "signed",
                        "boxed",  "mint",    "antique", "modern",  "large",
                        "small",  "blue",    "red",     "green",   "silver"};
const char* kNames[] = {"Umeko", "Takano", "Jaak",  "Tempesti", "Gui",
                        "Rim",   "Moshe",  "Wagar", "Aloys",    "Ludovic"};

std::string Words(Rng* rng, int n) {
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i) out += " ";
    out += kWords[rng->Uniform(0, 14)];
  }
  return out;
}

}  // namespace

std::string GenerateXmark(const XmarkOptions& options) {
  Rng rng(options.seed);
  const int n_items = options.items();
  const int n_open = options.open_auctions();
  const int n_closed = options.closed_auctions();
  const int n_categories = options.categories();
  const int n_people = options.people();
  std::string out;
  out.reserve(static_cast<size_t>(1024) * 64);
  out += "<site>\n<regions>\n";
  const char* regions[] = {"africa", "asia", "europe", "namerica"};
  for (int i = 0; i < n_items; ++i) {
    const char* region = regions[i % 4];
    if (i % 4 == 0 || i == 0) {
      // group items into region containers lazily
    }
    (void)region;
  }
  // Emit items grouped by region.
  for (int r = 0; r < 4; ++r) {
    out += StrPrintf("<%s>\n", regions[r]);
    for (int i = r; i < n_items; i += 4) {
      out += StrPrintf("<item id=\"item%d\">", i);
      out += StrPrintf("<location>United States</location>");
      out += StrPrintf("<name>%s</name>", Words(&rng, 2).c_str());
      out += "<payment>Cash</payment>";
      out += StrPrintf("<description><text>%s</text></description>",
                       Words(&rng, rng.Uniform(3, 10)).c_str());
      const int n_cat = rng.Uniform(1, 3);
      for (int c = 0; c < n_cat; ++c) {
        out += StrPrintf("<incategory category=\"category%d\"/>",
                         rng.Uniform(0, n_categories - 1));
      }
      out += StrPrintf("<quantity>%d</quantity>", rng.Uniform(1, 5));
      out += "</item>\n";
    }
    out += StrPrintf("</%s>\n", regions[r]);
  }
  out += "</regions>\n<categories>\n";
  for (int c = 0; c < n_categories; ++c) {
    out += StrPrintf(
        "<category id=\"category%d\"><name>%s</name>"
        "<description><text>%s</text></description></category>\n",
        c, Words(&rng, 2).c_str(), Words(&rng, 5).c_str());
  }
  out += "</categories>\n<people>\n";
  for (int p = 0; p < n_people; ++p) {
    out += StrPrintf(
        "<person id=\"person%d\"><name>%s %s</name>"
        "<emailaddress>mailto:p%d@example.com</emailaddress>",
        p, kNames[rng.Uniform(0, 9)], kNames[rng.Uniform(0, 9)], p);
    if (rng.Uniform(0, 2) == 0) {
      out += StrPrintf("<phone>+1 (%d) %d</phone>", rng.Uniform(100, 999),
                       rng.Uniform(1000000, 9999999));
    }
    out += "</person>\n";
  }
  out += "</people>\n<open_auctions>\n";
  for (int a = 0; a < n_open; ++a) {
    out += StrPrintf("<open_auction id=\"open_auction%d\">", a);
    out += StrPrintf("<initial>%.2f</initial>", rng.UniformReal(1, 300));
    const int n_bidders = rng.Uniform(0, 6);
    for (int b = 0; b < n_bidders; ++b) {
      out += StrPrintf(
          "<bidder><time>%02d:%02d</time>"
          "<personref person=\"person%d\"/>"
          "<increase>%.2f</increase></bidder>",
          rng.Uniform(0, 23), rng.Uniform(0, 59),
          rng.Uniform(0, n_people - 1), rng.UniformReal(1.5, 60));
    }
    out += StrPrintf("<itemref item=\"item%d\"/>",
                     rng.Uniform(0, n_items - 1));
    out += StrPrintf("<seller person=\"person%d\"/>",
                     rng.Uniform(0, n_people - 1));
    out += StrPrintf("<current>%.2f</current>", rng.UniformReal(5, 800));
    out += "</open_auction>\n";
  }
  out += "</open_auctions>\n<closed_auctions>\n";
  for (int a = 0; a < n_closed; ++a) {
    out += StrPrintf("<closed_auction>");
    out += StrPrintf("<seller person=\"person%d\"/>",
                     rng.Uniform(0, n_people - 1));
    out += StrPrintf("<buyer person=\"person%d\"/>",
                     rng.Uniform(0, n_people - 1));
    out += StrPrintf("<itemref item=\"item%d\"/>",
                     rng.Uniform(0, n_items - 1));
    // Log-ish price distribution: a small fraction beyond 500 (the paper:
    // "only a fraction of price elements has a typed value in the range").
    double price = rng.UniformReal(1, 100);
    if (rng.Uniform(0, 9) == 0) price = rng.UniformReal(100, 2000);
    out += StrPrintf("<price>%.2f</price>", price);
    out += StrPrintf("<date>%02d/%02d/%d</date>", rng.Uniform(1, 12),
                     rng.Uniform(1, 28), rng.Uniform(1998, 2001));
    out += StrPrintf("<quantity>%d</quantity>", rng.Uniform(1, 4));
    out += "</closed_auction>\n";
  }
  out += "</closed_auctions>\n</site>\n";
  return out;
}

}  // namespace xqjg::data
