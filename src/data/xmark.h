// Deterministic XMark-like auction document generator (paper workload
// substitute; see DESIGN.md substitutions). Reproduces the schema/paths
// and value distributions the paper's queries touch: open_auction with
// bidders and increases, closed_auction with decimal prices and itemref
// foreign keys, items with incategory references, categories with names,
// people with ids.
#ifndef XQJG_DATA_XMARK_H_
#define XQJG_DATA_XMARK_H_

#include <cstdint>
#include <string>

namespace xqjg::data {

struct XmarkOptions {
  /// Rough size knob; 1.0 yields ~50k nodes. The paper's instance
  /// (110 MB, 4.7M nodes) corresponds to scale ~100.
  double scale = 1.0;
  uint64_t seed = 42;

  int items() const { return static_cast<int>(500 * scale); }
  int open_auctions() const { return static_cast<int>(300 * scale); }
  int closed_auctions() const { return static_cast<int>(200 * scale); }
  int categories() const { return static_cast<int>(25 * scale) + 5; }
  int people() const { return static_cast<int>(150 * scale); }
};

/// Generates the auction.xml text.
std::string GenerateXmark(const XmarkOptions& options = {});

}  // namespace xqjg::data

#endif  // XQJG_DATA_XMARK_H_
