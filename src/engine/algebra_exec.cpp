#include "src/engine/algebra_exec.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/algebra/dag.h"
#include "src/common/str.h"
#include "src/engine/columnar/columnar_exec.h"

namespace xqjg::engine {

using algebra::CmpOp;
using algebra::Comparison;
using algebra::Op;
using algebra::OpKind;
using algebra::OpPtr;
using algebra::Term;

int MatTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema[i] == name) return static_cast<int>(i);
  }
  return -1;
}

MatTable BuildDocRelation(const xml::DocTable& doc) {
  MatTable out;
  out.schema = algebra::DocColumns();
  out.rows.reserve(static_cast<size_t>(doc.row_count()));
  // Load-time conversion, not query execution (the DNF budget governs
  // query row production).  xqjg-lint: allow(no-budget-guard)
  for (int64_t pre = 0; pre < doc.row_count(); ++pre) {
    std::vector<Value> row;
    row.reserve(9);
    row.push_back(Value::Int(pre));
    row.push_back(Value::Int(doc.size(pre)));
    row.push_back(Value::Int(doc.level(pre)));
    row.push_back(Value::Int(static_cast<int64_t>(doc.kind(pre))));
    row.push_back(Value::String(doc.name(pre)));
    row.push_back(doc.has_value(pre) ? Value::String(doc.value(pre))
                                     : Value::Null());
    row.push_back(doc.has_data(pre) ? Value::Double(doc.data(pre))
                                    : Value::Null());
    row.push_back(Value::Int(doc.Parent(pre)));
    row.push_back(Value::Int(doc.Root(pre)));
    out.rows.push_back(std::move(row));
  }
  return out;
}

namespace {

Value EvalTerm(const Term& term, const std::vector<std::string>& schema,
               const std::vector<Value>& row) {
  auto col_value = [&](const std::string& c) -> const Value* {
    for (size_t i = 0; i < schema.size(); ++i) {
      if (schema[i] == c) return &row[i];
    }
    return nullptr;
  };
  Value acc = term.constant;  // NULL when absent
  bool have = !acc.is_null();
  auto add = [&](const std::string& c) {
    if (c.empty()) return true;
    const Value* v = col_value(c);
    if (!v || v->is_null()) {
      acc = Value::Null();
      return false;
    }
    return AccumulateTermValue(&acc, &have, *v);
  };
  if (!add(term.col)) return Value::Null();
  if (!add(term.col2)) return Value::Null();
  return acc;
}

/// Hash of a row restricted to the given column indexes.
size_t HashCols(const std::vector<Value>& row, const std::vector<int>& idx) {
  size_t h = 0xcbf29ce484222325ULL;
  for (int i : idx) {
    h = h * 1099511628211ULL + row[static_cast<size_t>(i)].Hash();
  }
  return h;
}

/// True iff any of the key columns holds NULL — such rows can never
/// satisfy an equality join predicate (Value::Compare: NULL is
/// incomparable), so the hash join skips them at build and probe.
bool AnyKeyNull(const std::vector<Value>& row, const std::vector<int>& idx) {
  for (int i : idx) {
    if (row[static_cast<size_t>(i)].is_null()) return true;
  }
  return false;
}

bool EqualCols(const std::vector<Value>& a, const std::vector<int>& ia,
               const std::vector<Value>& b, const std::vector<int>& ib) {
  for (size_t k = 0; k < ia.size(); ++k) {
    const Value& va = a[static_cast<size_t>(ia[k])];
    const Value& vb = b[static_cast<size_t>(ib[k])];
    if (va.is_null() || vb.is_null()) return false;
    if (!(va == vb)) return false;
  }
  return true;
}

class Evaluator {
 public:
  /// Internally mutable so the root table can be moved out; every
  /// consumer treats the pointee as const.
  using TableRef = std::shared_ptr<MatTable>;

  Evaluator(const xml::DocTable& doc, const ExecOptions& options)
      : doc_(doc),
        clock_(options.limits),
        stats_(options.stats),
        params_(options.params) {}

  Result<TableRef> Eval(const Op* op) {
    auto it = memo_.find(op);
    if (it != memo_.end()) return it->second;  // shared, not deep-copied
    XQJG_RETURN_NOT_OK(clock_.CheckRows(0));
    Result<MatTable> result = EvalUncached(op);
    if (!result.ok()) return result.status();
    XQJG_RETURN_NOT_OK(
        clock_.CheckRows(static_cast<int64_t>(result.value().rows.size())));
    auto ref = std::make_shared<MatTable>(std::move(result).value());
    if (stats_) {
      stats_->tuples_materialized += static_cast<int64_t>(ref->rows.size());
    }
    memo_[op] = ref;
    return ref;
  }

  /// Releases the root's table without a deep copy when the memo holds the
  /// only other reference (the common case — the evaluator dies next).
  MatTable TakeRoot(const Op* root, TableRef ref) {
    memo_.erase(root);
    if (ref.use_count() == 1) return std::move(*ref);
    return *ref;
  }

 private:
  Result<MatTable> EvalUncached(const Op* op) {
    switch (op->kind) {
      case OpKind::kDocTable:
        return EvalDocTable();
      case OpKind::kLiteral: {
        MatTable t;
        t.schema = op->schema;
        t.rows = op->rows;
        return t;
      }
      case OpKind::kSerialize: {
        XQJG_ASSIGN_OR_RETURN(TableRef in, Eval(op->children[0].get()));
        const int pos_idx = in->ColumnIndex(op->order[0]);
        const int item_idx = in->ColumnIndex(op->col);
        if (pos_idx < 0 || item_idx < 0) {
          return Status::Internal("serialize columns missing");
        }
        MatTable t = *in;  // sorted copy of the shared input
        try {
          std::stable_sort(t.rows.begin(), t.rows.end(),
                           [&](const auto& a, const auto& b) {
                             clock_.TickThrow();
                             if (a[pos_idx].SortLess(b[pos_idx])) return true;
                             if (b[pos_idx].SortLess(a[pos_idx])) return false;
                             return a[item_idx].SortLess(b[item_idx]);
                           });
        } catch (const BudgetExhausted&) {
          return Status::Timeout(
              "execution exceeded wall-clock budget (DNF)");
        }
        return t;
      }
      case OpKind::kProject: {
        XQJG_ASSIGN_OR_RETURN(TableRef in, Eval(op->children[0].get()));
        std::vector<int> idx;
        for (const auto& [out, src] : op->proj) {
          (void)out;
          idx.push_back(in->ColumnIndex(src));
          if (idx.back() < 0) {
            return Status::Internal("projection source missing: " + src);
          }
        }
        MatTable t;
        t.schema = op->schema;
        t.rows.reserve(in->rows.size());
        for (const auto& row : in->rows) {
          std::vector<Value> out_row;
          out_row.reserve(idx.size());
          for (int i : idx) out_row.push_back(row[static_cast<size_t>(i)]);
          t.rows.push_back(std::move(out_row));
          XQJG_RETURN_NOT_OK(clock_.Tick());
        }
        return t;
      }
      case OpKind::kSelect: {
        XQJG_ASSIGN_OR_RETURN(TableRef in, Eval(op->children[0].get()));
        MatTable t;
        t.schema = op->schema;
        // Parameter markers resolve to their bound Values once per select
        // (the compiler only places them in comparison operands).
        const std::vector<Comparison>* conjuncts = &op->pred.conjuncts;
        std::vector<Comparison> resolved;
        if (params_) {
          resolved.reserve(op->pred.conjuncts.size());
          for (const auto& cmp : op->pred.conjuncts) {
            resolved.push_back(algebra::ResolveParams(cmp, params_));
          }
          conjuncts = &resolved;
        }
        for (const auto& row : in->rows) {
          bool pass = true;
          for (const auto& cmp : *conjuncts) {
            if (!EvalComparison(cmp, in->schema, row)) {
              pass = false;
              break;
            }
          }
          if (pass) t.rows.push_back(row);
          XQJG_RETURN_NOT_OK(clock_.Tick());
        }
        return t;
      }
      case OpKind::kJoin:
      case OpKind::kCross:
        return EvalJoin(op);
      case OpKind::kDistinct: {
        XQJG_ASSIGN_OR_RETURN(TableRef in, Eval(op->children[0].get()));
        MatTable t;
        t.schema = op->schema;
        std::vector<int> all(in->schema.size());
        std::iota(all.begin(), all.end(), 0);
        std::unordered_map<size_t, std::vector<size_t>> buckets;
        for (const auto& row : in->rows) {
          XQJG_RETURN_NOT_OK(clock_.Tick());
          size_t h = HashCols(row, all);
          auto& bucket = buckets[h];
          bool dup = false;
          for (size_t j : bucket) {
            bool eq = true;
            for (size_t k = 0; k < row.size(); ++k) {
              const Value& a = t.rows[j][k];
              const Value& b = row[k];
              if (a.is_null() != b.is_null() ||
                  (!a.is_null() && !(a == b))) {
                eq = false;
                break;
              }
            }
            if (eq) {
              dup = true;
              break;
            }
          }
          if (!dup) {
            bucket.push_back(t.rows.size());
            t.rows.push_back(row);
          }
        }
        return t;
      }
      case OpKind::kAttach: {
        XQJG_ASSIGN_OR_RETURN(TableRef in, Eval(op->children[0].get()));
        MatTable t;
        t.schema = op->schema;
        t.rows = in->rows;
        for (auto& row : t.rows) {
          row.push_back(op->val);
          XQJG_RETURN_NOT_OK(clock_.Tick());
        }
        return t;
      }
      case OpKind::kRowId: {
        XQJG_ASSIGN_OR_RETURN(TableRef in, Eval(op->children[0].get()));
        MatTable t;
        t.schema = op->schema;
        t.rows = in->rows;
        int64_t next = 1;
        for (auto& row : t.rows) {
          row.push_back(Value::Int(next++));
          XQJG_RETURN_NOT_OK(clock_.Tick());
        }
        return t;
      }
      case OpKind::kRank:
        return EvalRank(op);
    }
    return Status::Internal("unhandled operator in Evaluate");
  }

  Result<MatTable> EvalDocTable() {
    XQJG_RETURN_NOT_OK(clock_.CheckRows(doc_.row_count()));
    MatTable t = BuildDocRelation(doc_);
    XQJG_RETURN_NOT_OK(clock_.CheckDeadline());
    return t;
  }

  Result<MatTable> EvalJoin(const Op* op) {
    XQJG_ASSIGN_OR_RETURN(TableRef left, Eval(op->children[0].get()));
    XQJG_ASSIGN_OR_RETURN(TableRef right, Eval(op->children[1].get()));
    MatTable t;
    t.schema = op->schema;
    // Split the predicate into hashable equality conjuncts (plain col =
    // plain col across the two sides) and residual comparisons.
    std::vector<int> lkeys, rkeys;
    std::vector<Comparison> residual;
    if (op->kind == OpKind::kJoin) {
      for (const auto& cmp : op->pred.conjuncts) {
        if (cmp.IsColEq()) {
          int li = left->ColumnIndex(cmp.lhs.col);
          int ri = right->ColumnIndex(cmp.rhs.col);
          if (li < 0 && ri < 0) {
            li = left->ColumnIndex(cmp.rhs.col);
            ri = right->ColumnIndex(cmp.lhs.col);
          }
          if (li >= 0 && ri >= 0) {
            lkeys.push_back(li);
            rkeys.push_back(ri);
            continue;
          }
        }
        residual.push_back(params_ ? algebra::ResolveParams(cmp, params_)
                                   : cmp);
      }
    }
    auto emit = [&](const std::vector<Value>& l,
                    const std::vector<Value>& r) -> Status {
      std::vector<Value> row = l;
      row.insert(row.end(), r.begin(), r.end());
      bool pass = true;
      for (const auto& cmp : residual) {
        if (!EvalComparison(cmp, t.schema, row)) {
          pass = false;
          break;
        }
      }
      if (pass) {
        t.rows.push_back(std::move(row));
        if ((t.rows.size() & 0xFFF) == 0) {
          XQJG_RETURN_NOT_OK(
              clock_.CheckRows(static_cast<int64_t>(t.rows.size())));
        }
      }
      return Status::OK();
    };
    if (!lkeys.empty()) {
      // Hash join: build on the smaller side (right by convention here).
      // Rows with NULL in any key column are skipped outright: NULL keys
      // never join (Value::Compare treats NULL as incomparable).
      std::unordered_map<size_t, std::vector<size_t>> buckets;
      for (size_t j = 0; j < right->rows.size(); ++j) {
        XQJG_RETURN_NOT_OK(clock_.Tick());
        if (AnyKeyNull(right->rows[j], rkeys)) continue;
        buckets[HashCols(right->rows[j], rkeys)].push_back(j);
      }
      for (const auto& lrow : left->rows) {
        XQJG_RETURN_NOT_OK(clock_.Tick());
        if (AnyKeyNull(lrow, lkeys)) continue;
        auto it = buckets.find(HashCols(lrow, lkeys));
        if (it == buckets.end()) continue;
        for (size_t j : it->second) {
          if (EqualCols(lrow, lkeys, right->rows[j], rkeys)) {
            XQJG_RETURN_NOT_OK(emit(lrow, right->rows[j]));
          }
        }
      }
    } else {
      for (const auto& lrow : left->rows) {
        XQJG_RETURN_NOT_OK(clock_.Tick());
        for (const auto& rrow : right->rows) {
          XQJG_RETURN_NOT_OK(emit(lrow, rrow));
        }
      }
    }
    return t;
  }

  Result<MatTable> EvalRank(const Op* op) {
    XQJG_ASSIGN_OR_RETURN(TableRef in, Eval(op->children[0].get()));
    std::vector<int> order_idx;
    for (const auto& b : op->order) {
      order_idx.push_back(in->ColumnIndex(b));
      if (order_idx.back() < 0) {
        return Status::Internal("rank criterion missing: " + b);
      }
    }
    std::vector<size_t> perm(in->rows.size());
    std::iota(perm.begin(), perm.end(), 0);
    auto less = [&](size_t a, size_t b) {
      clock_.TickThrow();
      for (int i : order_idx) {
        const Value& va = in->rows[a][static_cast<size_t>(i)];
        const Value& vb = in->rows[b][static_cast<size_t>(i)];
        if (va.SortLess(vb)) return true;
        if (vb.SortLess(va)) return false;
      }
      return false;
    };
    std::vector<int64_t> ranks(in->rows.size(), 0);
    try {
      std::stable_sort(perm.begin(), perm.end(), less);
      // RANK() semantics: ties share the rank of their first row (1-based).
      for (size_t k = 0; k < perm.size(); ++k) {
        if (k > 0 && !less(perm[k - 1], perm[k]) &&
            !less(perm[k], perm[k - 1])) {
          ranks[perm[k]] = ranks[perm[k - 1]];
        } else {
          ranks[perm[k]] = static_cast<int64_t>(k) + 1;
        }
      }
    } catch (const BudgetExhausted&) {
      return Status::Timeout("execution exceeded wall-clock budget (DNF)");
    }
    MatTable t;
    t.schema = op->schema;
    t.rows = in->rows;
    for (size_t k = 0; k < t.rows.size(); ++k) {
      t.rows[k].push_back(Value::Int(ranks[k]));
      XQJG_RETURN_NOT_OK(clock_.Tick());
    }
    return t;
  }

  const xml::DocTable& doc_;
  BudgetClock clock_;
  ExecStats* stats_;
  const std::vector<Value>* params_;  ///< Execute-time bindings, not owned
  std::unordered_map<const Op*, TableRef> memo_;
};

}  // namespace

bool CompareValues(const Value& lhs, CmpOp op, const Value& rhs) {
  int c = lhs.Compare(rhs);
  if (c == Value::kNullCmp) return false;
  switch (op) {
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

bool EvalComparison(const Comparison& cmp,
                    const std::vector<std::string>& schema,
                    const std::vector<Value>& row) {
  Value lhs = EvalTerm(cmp.lhs, schema, row);
  Value rhs = EvalTerm(cmp.rhs, schema, row);
  return CompareValues(lhs, cmp.op, rhs);
}

Result<MatTable> Evaluate(const OpPtr& plan, const xml::DocTable& doc,
                          const ExecOptions& options) {
  if (options.use_columnar) {
    return columnar::EvaluateColumnar(plan, doc, options);
  }
  Evaluator evaluator(doc, options);
  XQJG_ASSIGN_OR_RETURN(Evaluator::TableRef ref, evaluator.Eval(plan.get()));
  if (options.stats) {
    options.stats->rows_out = static_cast<int64_t>(ref->rows.size());
  }
  return evaluator.TakeRoot(plan.get(), std::move(ref));
}

Result<std::vector<int64_t>> EvaluateToSequence(const OpPtr& plan,
                                                const xml::DocTable& doc,
                                                const ExecOptions& options) {
  if (options.use_columnar) {
    return columnar::EvaluateToSequenceColumnar(plan, doc, options);
  }
  if (plan->kind != OpKind::kSerialize) {
    return Status::InvalidArgument("expected a serialize-rooted plan");
  }
  Evaluator evaluator(doc, options);
  XQJG_ASSIGN_OR_RETURN(Evaluator::TableRef result, evaluator.Eval(plan.get()));
  const int item_idx = result->ColumnIndex(plan->col);
  std::vector<int64_t> out;
  out.reserve(result->rows.size());
  // Exit extraction: every result row was already budget-admitted by the
  // evaluator's per-operator checks.  xqjg-lint: allow(no-budget-guard)
  for (const auto& row : result->rows) {
    const Value& v = row[static_cast<size_t>(item_idx)];
    if (v.is_null()) return Status::Internal("NULL item in result sequence");
    out.push_back(v.type() == ValueType::kInt
                      ? v.AsInt()
                      : static_cast<int64_t>(v.AsDouble()));
  }
  if (options.stats) {
    options.stats->rows_out = static_cast<int64_t>(out.size());
  }
  return out;
}

Result<std::unique_ptr<SequenceStream>> OpenSequenceStream(
    const OpPtr& plan, const xml::DocTable& doc,
    const ExecOptions& options) {
  if (options.use_columnar) {
    return columnar::OpenSequenceStreamColumnar(plan, doc, options);
  }
  XQJG_ASSIGN_OR_RETURN(std::vector<int64_t> items,
                        EvaluateToSequence(plan, doc, options));
  std::unique_ptr<SequenceStream> stream =
      std::make_unique<VectorSequenceStream>(std::move(items));
  return stream;
}

}  // namespace xqjg::engine
