// Materializing evaluator for table-algebra plans.
//
// Executes a plan DAG operator by operator, materializing every
// intermediate table — deliberately mirroring the staged execution the
// paper observes DB2 applying to stacked plans ("read and then again
// materialize temporary tables", §II-D). It doubles as the reference
// executor for differential tests of the compiler and rewriter: stacked
// plan, isolated plan, and the native interpreter must agree.
//
// The cost-based engine (src/engine/planner.h) is the fast path used for
// isolated join graphs; this evaluator is the baseline.
#ifndef XQJG_ENGINE_ALGEBRA_EXEC_H_
#define XQJG_ENGINE_ALGEBRA_EXEC_H_

#include <chrono>
#include <string>
#include <vector>

#include "src/algebra/operators.h"
#include "src/common/status.h"
#include "src/common/value.h"
#include "src/xml/infoset.h"

namespace xqjg::engine {

/// A materialized intermediate table.
struct MatTable {
  std::vector<std::string> schema;
  std::vector<std::vector<Value>> rows;

  int ColumnIndex(const std::string& name) const;
};

struct ExecLimits {
  /// Abort with Status::Timeout once this wall-clock budget is exceeded
  /// (<= 0: unlimited). Emulates the paper's 20-hour DNF cutoff.
  double timeout_seconds = -1.0;
  /// Abort when an intermediate table exceeds this many rows (<= 0:
  /// unlimited); a second DNF guard against runaway Cartesian products.
  int64_t max_intermediate_rows = -1;
};

/// Builds the relational doc table (one row per XML node) from the infoset
/// encoding; schema = algebra::DocColumns().
MatTable BuildDocRelation(const xml::DocTable& doc);

/// Evaluates `plan` (rooted at any operator, including serialize) against
/// `doc`. For a serialize root the returned table has the serialize
/// child's schema with rows in result sequence order.
Result<MatTable> Evaluate(const algebra::OpPtr& plan,
                          const xml::DocTable& doc,
                          const ExecLimits& limits = {});

/// Evaluates a serialize-rooted plan and returns the result sequence as
/// pre ranks (in sequence order).
Result<std::vector<int64_t>> EvaluateToSequence(const algebra::OpPtr& plan,
                                                const xml::DocTable& doc,
                                                const ExecLimits& limits = {});

/// Evaluates a single predicate comparison between two rows' terms — the
/// shared predicate semantics used by every executor. NULL operands
/// compare false.
bool EvalComparison(const algebra::Comparison& cmp,
                    const std::vector<std::string>& schema,
                    const std::vector<Value>& row);

}  // namespace xqjg::engine

#endif  // XQJG_ENGINE_ALGEBRA_EXEC_H_
