// Materializing evaluator for table-algebra plans.
//
// Executes a plan DAG operator by operator, materializing every
// intermediate table — deliberately mirroring the staged execution the
// paper observes DB2 applying to stacked plans ("read and then again
// materialize temporary tables", §II-D). It doubles as the reference
// executor for differential tests of the compiler and rewriter: stacked
// plan, isolated plan, and the native interpreter must agree.
//
// Two execution paths sit behind Evaluate / EvaluateToSequence:
//   - the row-at-a-time materializer in this file (the oracle), and
//   - the columnar batch executor (src/engine/columnar/), selected via
//     ExecOptions::use_columnar, which produces bit-identical tables.
// Memoized intermediates are shared (shared_ptr), never deep-copied.
//
// The cost-based engine (src/engine/planner.h) is the fast path used for
// isolated join graphs; this evaluator is the baseline.
#ifndef XQJG_ENGINE_ALGEBRA_EXEC_H_
#define XQJG_ENGINE_ALGEBRA_EXEC_H_

#include <memory>
#include <string>
#include <vector>

#include "src/algebra/operators.h"
#include "src/common/status.h"
#include "src/common/value.h"
#include "src/engine/exec_options.h"
#include "src/engine/exec_stream.h"
#include "src/xml/infoset.h"

namespace xqjg::engine {

/// A materialized intermediate table.
struct MatTable {
  std::vector<std::string> schema;
  std::vector<std::vector<Value>> rows;

  int ColumnIndex(const std::string& name) const;
};

/// Builds the relational doc table (one row per XML node) from the infoset
/// encoding; schema = algebra::DocColumns().
MatTable BuildDocRelation(const xml::DocTable& doc);

/// Evaluates `plan` (rooted at any operator, including serialize) against
/// `doc`. For a serialize root the returned table has the serialize
/// child's schema with rows in result sequence order. ExecOptions selects
/// the executor (row oracle vs columnar batch), carries the DNF budget,
/// and optionally collects ExecStats; an ExecLimits converts implicitly.
Result<MatTable> Evaluate(const algebra::OpPtr& plan,
                          const xml::DocTable& doc,
                          const ExecOptions& options = {});

/// Evaluates a serialize-rooted plan and returns the result sequence as
/// pre ranks (in sequence order).
Result<std::vector<int64_t>> EvaluateToSequence(const algebra::OpPtr& plan,
                                                const xml::DocTable& doc,
                                                const ExecOptions& options = {});

/// Streaming form of EvaluateToSequence: opens a pull-based cursor over
/// the result sequence. On the columnar path the pipeline stays live —
/// batches flow out of the final sort breaker as the caller pulls, so an
/// open cursor retains O(batch) state (plus any spill-run cursors); the
/// row oracle materializes as before and wraps the vector. `doc` and
/// `options.params` must outlive the stream; `options.stats` (if set)
/// must outlive it too.
Result<std::unique_ptr<SequenceStream>> OpenSequenceStream(
    const algebra::OpPtr& plan, const xml::DocTable& doc,
    const ExecOptions& options = {});

/// Evaluates a single predicate comparison between two rows' terms — the
/// shared predicate semantics used by every executor. NULL operands
/// compare false.
bool EvalComparison(const algebra::Comparison& cmp,
                    const std::vector<std::string>& schema,
                    const std::vector<Value>& row);

/// Applies `op` to an already-computed three-way comparison — the shared
/// comparison semantics of every executor (NULL operands compare false).
bool CompareValues(const Value& lhs, algebra::CmpOp op, const Value& rhs);

}  // namespace xqjg::engine

#endif  // XQJG_ENGINE_ALGEBRA_EXEC_H_
