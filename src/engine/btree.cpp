#include "src/engine/btree.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace xqjg::engine {

int CompareKeyPrefix(const Key& probe, const Key& entry) {
  const size_t n = std::min(probe.size(), entry.size());
  for (size_t i = 0; i < n; ++i) {
    if (probe[i].SortLess(entry[i])) return -1;
    if (entry[i].SortLess(probe[i])) return 1;
  }
  return 0;  // equal on the shared prefix
}

namespace {

/// Full-key comparison used internally (shorter sorts first on ties so
/// separator keys behave).
bool KeyLess(const Key& a, const Key& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i].SortLess(b[i])) return true;
    if (b[i].SortLess(a[i])) return false;
  }
  return a.size() < b.size();
}

}  // namespace

struct BTree::Node {
  bool leaf = true;
  // Leaf: keys[i] pairs with rids[i]. Internal: children[i] holds keys
  // < keys[i]; children.back() holds the rest.
  std::vector<Key> keys;
  std::vector<int64_t> rids;
  std::vector<std::unique_ptr<Node>> children;
  Node* next = nullptr;  // leaf chain
};

BTree::BTree(int fanout) : root_(std::make_unique<Node>()), fanout_(std::max(4, fanout)) {}
BTree::~BTree() = default;
BTree::BTree(BTree&&) noexcept = default;
BTree& BTree::operator=(BTree&&) noexcept = default;

int BTree::height() const {
  int h = 1;
  const Node* n = root_.get();
  while (!n->leaf) {
    n = n->children.front().get();
    ++h;
  }
  return h;
}

void BTree::SplitChild(Node* parent, size_t slot) {
  Node* child = parent->children[slot].get();
  auto right = std::make_unique<Node>();
  right->leaf = child->leaf;
  const size_t mid = child->keys.size() / 2;
  Key separator = child->keys[mid];
  if (child->leaf) {
    right->keys.assign(child->keys.begin() + mid, child->keys.end());
    right->rids.assign(child->rids.begin() + mid, child->rids.end());
    child->keys.resize(mid);
    child->rids.resize(mid);
    right->next = child->next;
    child->next = right.get();
  } else {
    right->keys.assign(child->keys.begin() + mid + 1, child->keys.end());
    // Index build (DDL time), not query execution.
    // xqjg-lint: allow(no-budget-guard)
    for (size_t i = mid + 1; i < child->children.size(); ++i) {
      right->children.push_back(std::move(child->children[i]));
    }
    child->keys.resize(mid);
    child->children.resize(mid + 1);
  }
  parent->keys.insert(parent->keys.begin() + slot, std::move(separator));
  parent->children.insert(parent->children.begin() + slot + 1,
                          std::move(right));
}

void BTree::Insert(Key key, int64_t row_id) {
  if (root_->keys.size() >= static_cast<size_t>(fanout_)) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    SplitChild(root_.get(), 0);
  }
  Node* node = root_.get();
  while (!node->leaf) {
    size_t slot = std::upper_bound(node->keys.begin(), node->keys.end(), key,
                                   KeyLess) -
                  node->keys.begin();
    Node* child = node->children[slot].get();
    if (child->keys.size() >= static_cast<size_t>(fanout_)) {
      SplitChild(node, slot);
      if (!KeyLess(key, node->keys[slot])) ++slot;
      child = node->children[slot].get();
    }
    node = child;
  }
  size_t pos = std::upper_bound(node->keys.begin(), node->keys.end(), key,
                                KeyLess) -
               node->keys.begin();
  node->keys.insert(node->keys.begin() + pos, std::move(key));
  node->rids.insert(node->rids.begin() + pos, row_id);
  ++size_;
}

void BTree::BulkLoad(std::vector<std::pair<Key, int64_t>> sorted_entries) {
  // Build leaves left to right, then stack internal levels.
  root_ = std::make_unique<Node>();
  size_ = sorted_entries.size();
  if (sorted_entries.empty()) return;
  const size_t per_leaf = static_cast<size_t>(fanout_) * 3 / 4;
  std::vector<std::unique_ptr<Node>> level;
  for (size_t i = 0; i < sorted_entries.size();) {
    auto leaf = std::make_unique<Node>();
    for (size_t j = 0; j < per_leaf && i < sorted_entries.size(); ++j, ++i) {
      leaf->keys.push_back(std::move(sorted_entries[i].first));
      leaf->rids.push_back(sorted_entries[i].second);
    }
    if (!level.empty()) level.back()->next = leaf.get();
    level.push_back(std::move(leaf));
  }
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> parents;
    for (size_t i = 0; i < level.size();) {
      auto parent = std::make_unique<Node>();
      parent->leaf = false;
      parent->children.push_back(std::move(level[i++]));
      for (size_t j = 1; j < per_leaf && i < level.size(); ++j, ++i) {
        const Node* first = level[i].get();
        while (!first->leaf) first = first->children.front().get();
        parent->keys.push_back(first->keys.front());
        parent->children.push_back(std::move(level[i]));
      }
      parents.push_back(std::move(parent));
    }
    level = std::move(parents);
  }
  root_ = std::move(level.front());
}

const BTree::Node* BTree::LeftmostLeafFor(const Key& lower) const {
  const Node* node = root_.get();
  while (!node->leaf) {
    size_t slot = node->keys.size();
    for (size_t i = 0; i < node->keys.size(); ++i) {
      // Descend into the first child that can contain `lower`.
      if (CompareKeyPrefix(lower, node->keys[i]) <= 0) {
        slot = i;
        break;
      }
    }
    node = node->children[slot].get();
  }
  return node;
}

void BTree::Scan(const KeyRange& range,
                 const std::function<bool(const Key&, int64_t)>& fn) const {
  const Node* leaf = range.lower.empty() ? LeftmostLeafFor(Key{})
                                         : LeftmostLeafFor(range.lower);
  // The descent can land one leaf early (separator keys are prefixes);
  // the per-entry bound checks below handle it.
  for (; leaf; leaf = leaf->next) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      const Key& key = leaf->keys[i];
      if (!range.lower.empty()) {
        int c = CompareKeyPrefix(range.lower, key);
        if (c > 0 || (c == 0 && !range.lower_inclusive)) continue;
      }
      if (!range.upper.empty()) {
        int c = CompareKeyPrefix(range.upper, key);
        if (c < 0 || (c == 0 && !range.upper_inclusive)) return;
      }
      if (!fn(key, leaf->rids[i])) return;
    }
  }
}

std::vector<int64_t> BTree::Lookup(const KeyRange& range) const {
  std::vector<int64_t> out;
  Scan(range, [&](const Key&, int64_t rid) {
    out.push_back(rid);
    return true;
  });
  return out;
}

}  // namespace xqjg::engine
