// In-memory B+-tree with composite keys (the engine's only index
// structure — the paper's point is that *vanilla* B-trees suffice).
//
// Keys are tuples of Values ordered lexicographically; every entry carries
// the row id (pre rank) of its doc-table row. Lookups support an equality
// prefix plus one range component, exactly the sargable shape the join
// graph workload produces (paper §IV: "evaluate predicates against ranges
// with endpoints pre, pre + size").
#ifndef XQJG_ENGINE_BTREE_H_
#define XQJG_ENGINE_BTREE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/value.h"

namespace xqjg::engine {

using Key = std::vector<Value>;

/// Lexicographic comparison of composite keys (shorter key = prefix
/// comparison: equal prefixes compare equal).
int CompareKeyPrefix(const Key& probe, const Key& entry);

/// A range over composite keys: entries e with lower <= e <= upper under
/// prefix comparison; empty bounds are unbounded.
struct KeyRange {
  Key lower;
  bool lower_inclusive = true;
  Key upper;
  bool upper_inclusive = true;
};

class BTree {
 public:
  /// `fanout` = max entries per node (>= 4).
  explicit BTree(int fanout = 64);
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;
  BTree(BTree&&) noexcept;
  BTree& operator=(BTree&&) noexcept;

  /// Inserts one entry (duplicates allowed).
  void Insert(Key key, int64_t row_id);

  /// Builds the tree from entries sorted by key (bottom-up bulk load);
  /// replaces any existing contents.
  void BulkLoad(std::vector<std::pair<Key, int64_t>> sorted_entries);

  /// Invokes `fn(key, row_id)` for every entry in `range`, in key order.
  /// `fn` returns false to stop the scan early.
  void Scan(const KeyRange& range,
            const std::function<bool(const Key&, int64_t)>& fn) const;

  /// Convenience: collects the row ids in `range`.
  std::vector<int64_t> Lookup(const KeyRange& range) const;

  size_t size() const { return size_; }
  int height() const;

 private:
  struct Node;
  void SplitChild(Node* parent, size_t slot);
  const Node* LeftmostLeafFor(const Key& lower) const;

  std::unique_ptr<Node> root_;
  int fanout_;
  size_t size_ = 0;
};

}  // namespace xqjg::engine

#endif  // XQJG_ENGINE_BTREE_H_
