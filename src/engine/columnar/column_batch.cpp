#include "src/engine/columnar/column_batch.h"

#include <numeric>
#include <utility>

#include "src/xml/doc_block.h"

namespace xqjg::engine::columnar {

int ColumnBatch::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema[i] == name) return static_cast<int>(i);
  }
  return -1;
}

ColumnBatch BatchFromMatTable(const MatTable& table) {
  ColumnBatch batch;
  batch.schema = table.schema;
  batch.num_rows = table.rows.size();
  batch.cols.reserve(table.schema.size());
  for (size_t c = 0; c < table.schema.size(); ++c) {
    ValueColumn col;
    col.Reserve(table.rows.size());
    for (const auto& row : table.rows) col.Append(row[c]);
    batch.cols.push_back(std::make_shared<const ValueColumn>(std::move(col)));
  }
  return batch;
}

MatTable BatchToMatTable(const ColumnBatch& batch) {
  MatTable table;
  table.schema = batch.schema;
  table.rows.resize(batch.num_rows);
  for (auto& row : table.rows) row.reserve(batch.cols.size());
  // xqjg-lint: allow(no-budget-guard): O(schema columns), plan-shaped
  for (const ColumnRef& col : batch.cols) {
    // Boundary conversion of a batch the executor already budget-admitted.
    // xqjg-lint: allow(no-budget-guard)
    for (size_t r = 0; r < batch.num_rows; ++r) {
      table.rows[r].push_back(col->GetValue(batch.PhysRow(r)));
    }
  }
  return table;
}

Result<ColumnBatch> DocRelationBatch(const xml::DocTable& doc,
                                     BudgetClock* clock) {
  const auto n = static_cast<size_t>(doc.row_count());
  XQJG_RETURN_NOT_OK(clock->CheckRows(doc.row_count()));
  if (const std::shared_ptr<const xml::DocBlock>& block = doc.block()) {
    // Shared-block corpus: the batch VIEWS the block's columns (the
    // algebra's doc columns are the block's engine-order prefix) — zero
    // copies, zero per-execution materialization. The row-count budget
    // check above still applies; there is no per-row work to meter.
    ColumnBatch batch;
    batch.schema = algebra::DocColumns();
    batch.num_rows = n;
    batch.cols.assign(block->columns().begin(),
                      block->columns().begin() +
                          static_cast<ptrdiff_t>(batch.schema.size()));
    return batch;
  }
  std::vector<int64_t> pre(n), size(n), level(n), kind(n), parent(n), root(n);
  std::vector<std::string> name(n), value(n);
  std::vector<uint8_t> value_null(n, 0);
  std::vector<double> data(n, 0.0);
  std::vector<uint8_t> data_null(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const auto p = static_cast<int64_t>(i);
    pre[i] = p;
    size[i] = doc.size(p);
    level[i] = doc.level(p);
    kind[i] = static_cast<int64_t>(doc.kind(p));
    name[i] = doc.name(p);
    if (doc.has_value(p)) {
      value[i] = doc.value(p);
    } else {
      value_null[i] = 1;
    }
    if (doc.has_data(p)) {
      data[i] = doc.data(p);
    } else {
      data_null[i] = 1;
    }
    parent[i] = doc.Parent(p);
    root[i] = doc.Root(p);
    XQJG_RETURN_NOT_OK(clock->Tick());
  }
  ColumnBatch batch;
  batch.schema = algebra::DocColumns();
  batch.num_rows = n;
  auto add = [&](ValueColumn col) {
    batch.cols.push_back(std::make_shared<const ValueColumn>(std::move(col)));
  };
  add(ValueColumn::Ints(std::move(pre)));
  add(ValueColumn::Ints(std::move(size)));
  add(ValueColumn::Ints(std::move(level)));
  add(ValueColumn::Ints(std::move(kind)));
  // name and value are dictionary-encoded: the tag alphabet is tiny, so
  // the equality kernels compare one uint32 code per row.
  add(ValueColumn::DictStrings(name));
  add(ValueColumn::DictStrings(value, std::move(value_null)));
  add(ValueColumn::Doubles(std::move(data), std::move(data_null)));
  add(ValueColumn::Ints(std::move(parent)));
  add(ValueColumn::Ints(std::move(root)));
  return batch;
}

ColumnBatch GatherPhysicalRows(const ColumnBatch& batch,
                               const std::vector<uint32_t>& phys_idx) {
  ColumnBatch out;
  out.num_rows = phys_idx.size();
  out.cols.reserve(batch.cols.size());
  // xqjg-lint: allow(no-budget-guard): O(schema columns), plan-shaped
  for (const ColumnRef& col : batch.cols) {
    out.cols.push_back(
        std::make_shared<const ValueColumn>(col->Gather(phys_idx)));
  }
  return out;
}

ColumnBatch GatherBatch(const ColumnBatch& batch,
                        const std::vector<uint32_t>& idx) {
  ColumnBatch out;
  if (batch.sel) {
    std::vector<uint32_t> translated;
    translated.reserve(idx.size());
    for (uint32_t i : idx) translated.push_back((*batch.sel)[i]);
    out = GatherPhysicalRows(batch, translated);
  } else {
    out = GatherPhysicalRows(batch, idx);
  }
  out.schema = batch.schema;
  return out;
}

}  // namespace xqjg::engine::columnar
