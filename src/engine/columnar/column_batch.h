// ColumnBatch — the unit of work of the columnar batch executor.
//
// A batch is a schema plus one shared, immutable ValueColumn per output
// column. Columns are shared_ptr'd so structural operators (π, @, #, ϱ)
// reuse input columns without copying a cell; only operators that change
// the row set (σ, ⋈, δ, sort) gather new columns.
#ifndef XQJG_ENGINE_COLUMNAR_COLUMN_BATCH_H_
#define XQJG_ENGINE_COLUMNAR_COLUMN_BATCH_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value_column.h"
#include "src/engine/algebra_exec.h"
#include "src/engine/exec_options.h"
#include "src/xml/infoset.h"

namespace xqjg::engine::columnar {

using ColumnRef = std::shared_ptr<const ValueColumn>;

struct ColumnBatch {
  std::vector<std::string> schema;
  std::vector<ColumnRef> cols;
  size_t num_rows = 0;

  int ColumnIndex(const std::string& name) const;
  void AddColumn(std::string name, ValueColumn col);
};

/// Row-major ↔ columnar conversion at the executor boundary.
ColumnBatch BatchFromMatTable(const MatTable& table);
MatTable BatchToMatTable(const ColumnBatch& batch);

/// Typed doc relation (schema = algebra::DocColumns()) built directly from
/// the infoset encoding — no per-cell Value boxing. Budget-checked.
Result<ColumnBatch> DocRelationBatch(const xml::DocTable& doc,
                                     BudgetClock* clock);

/// New batch holding rows `idx` of `batch` (typed gather of every column).
ColumnBatch GatherBatch(const ColumnBatch& batch,
                        const std::vector<uint32_t>& idx);

}  // namespace xqjg::engine::columnar

#endif  // XQJG_ENGINE_COLUMNAR_COLUMN_BATCH_H_
