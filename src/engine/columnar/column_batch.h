// ColumnBatch — the unit of work of the columnar batch executor.
//
// A batch is a schema plus one shared, immutable ValueColumn per output
// column. Columns are shared_ptr'd so structural operators (π, @, #, ϱ)
// reuse input columns without copying a cell.
//
// Late materialization: operators that shrink the row set (σ, δ) do not
// gather either — they publish a selection vector (`sel`) mapping logical
// row r to physical row (*sel)[r] of the shared columns, so chains of
// σ/π/δ carry index vectors only. Physical gathers happen exclusively at
// the boundaries that need contiguous columns: join outputs, sorts
// (serialize), and the executor exit. Row-reading helpers must translate
// logical rows through PhysRow() before indexing a column.
#ifndef XQJG_ENGINE_COLUMNAR_COLUMN_BATCH_H_
#define XQJG_ENGINE_COLUMNAR_COLUMN_BATCH_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value_column.h"
#include "src/engine/algebra_exec.h"
#include "src/engine/exec_options.h"
#include "src/xml/infoset.h"

namespace xqjg::engine::columnar {

using ColumnRef = std::shared_ptr<const ValueColumn>;

struct ColumnBatch {
  std::vector<std::string> schema;
  std::vector<ColumnRef> cols;
  size_t num_rows = 0;  ///< logical row count (== sel->size() when lazy)
  /// Selection vector: logical → physical row of `cols`; null = dense.
  /// Entries are strictly increasing (filters preserve row order).
  std::shared_ptr<const std::vector<uint32_t>> sel;

  /// Physical row backing logical row `row`.
  size_t PhysRow(size_t row) const { return sel ? (*sel)[row] : row; }
  /// Physical length of the shared columns (≥ num_rows when lazy).
  size_t PhysSize() const { return cols.empty() ? num_rows : cols[0]->size(); }

  int ColumnIndex(const std::string& name) const;
};

/// Row-major ↔ columnar conversion at the executor boundary.
ColumnBatch BatchFromMatTable(const MatTable& table);
MatTable BatchToMatTable(const ColumnBatch& batch);

/// Typed doc relation (schema = algebra::DocColumns()) built directly from
/// the infoset encoding — no per-cell Value boxing; `name` and `value`
/// are dictionary-encoded. Budget-checked.
Result<ColumnBatch> DocRelationBatch(const xml::DocTable& doc,
                                     BudgetClock* clock);

/// New dense batch holding LOGICAL rows `idx` of `batch` (typed gather of
/// every column; indices are translated through the selection vector).
ColumnBatch GatherBatch(const ColumnBatch& batch,
                        const std::vector<uint32_t>& idx);

/// Same, but `phys_idx` already indexes the physical columns (no schema,
/// no selection-vector translation) — the shared per-column gather loop
/// behind GatherBatch and the executor's density-cutoff compaction.
ColumnBatch GatherPhysicalRows(const ColumnBatch& batch,
                               const std::vector<uint32_t>& phys_idx);

}  // namespace xqjg::engine::columnar

#endif  // XQJG_ENGINE_COLUMNAR_COLUMN_BATCH_H_
