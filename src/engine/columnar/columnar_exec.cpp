#include "src/engine/columnar/columnar_exec.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <memory>
#include <numeric>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/str.h"
#include "src/engine/columnar/column_batch.h"
#include "src/engine/exec_stream.h"
#include "src/engine/parallel/worker_pool.h"
#include "src/engine/spill.h"
#include "src/opt/plan_check.h"

namespace xqjg::engine::columnar {

using algebra::CmpOp;
using algebra::Comparison;
using algebra::Op;
using algebra::OpKind;
using algebra::OpPtr;
using algebra::Term;

namespace {

// ---------------------------------------------------------------------------
// Term / comparison compilation. A Comparison is bound once per batch (column
// name -> ValueColumn*), then evaluated per row; conjuncts whose columns are
// all null-free int64 compile to a branch-light integer kernel.

/// A term bound against one batch (single-input operators).
struct BoundTerm {
  const ValueColumn* col = nullptr;
  const ValueColumn* col2 = nullptr;
  bool missing = false;  ///< a named column is absent from the schema
  Value constant;
};

BoundTerm BindTerm(const Term& term, const ColumnBatch& batch) {
  BoundTerm b;
  b.constant = term.constant;
  auto resolve = [&](const std::string& name, const ValueColumn** out) {
    if (name.empty()) return;
    int idx = batch.ColumnIndex(name);
    if (idx < 0) {
      b.missing = true;
      return;
    }
    *out = batch.cols[static_cast<size_t>(idx)].get();
  };
  resolve(term.col, &b.col);
  resolve(term.col2, &b.col2);
  return b;
}

/// Mirrors EvalTerm in algebra_exec.cpp: Σ cols + constant, NULL-poisoning,
/// int+int stays int, any other numeric mix widens to double, non-numeric
/// addition is undefined (NULL).
Value BoundTermValue(const BoundTerm& t, size_t row) {
  if (t.missing) return Value::Null();
  Value acc = t.constant;
  bool have = !acc.is_null();
  auto add = [&](const ValueColumn* c) -> bool {
    if (!c) return true;
    if (c->IsNull(row)) {
      acc = Value::Null();
      return false;
    }
    return AccumulateTermValue(&acc, &have, c->GetValue(row));
  };
  if (!add(t.col)) return Value::Null();
  if (!add(t.col2)) return Value::Null();
  return acc;
}

/// Integer fast-path view of a BoundTerm: valid when every referenced
/// column is null-free int64 and the constant (if any) is an int.
struct FastIntTerm {
  bool ok = false;
  const int64_t* a = nullptr;
  const int64_t* b = nullptr;
  int64_t k = 0;
};

FastIntTerm FastInt(const BoundTerm& t) {
  FastIntTerm f;
  if (t.missing) return f;
  if (!t.col && !t.col2 && t.constant.is_null()) return f;  // NULL term
  if (!t.constant.is_null()) {
    if (t.constant.type() != ValueType::kInt) return f;
    f.k = t.constant.AsInt();
  }
  auto use = [](const ValueColumn* c, const int64_t** out) {
    if (!c) return true;
    if (c->tag() != ColumnTag::kInt || c->has_nulls()) return false;
    *out = c->ints().data();
    return true;
  };
  if (!use(t.col, &f.a) || !use(t.col2, &f.b)) return f;
  f.ok = true;
  return f;
}

inline int64_t FastIntValue(const FastIntTerm& f, size_t row) {
  int64_t v = f.k;
  if (f.a) v += f.a[row];
  if (f.b) v += f.b[row];
  return v;
}

inline bool IntPasses(int64_t a, CmpOp op, int64_t b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

/// Dictionary equality fast path: `dict_col = 'const'` (or ≠) compiles to
/// the shared DictEqKernel (common/value_column.h — one uint32 compare
/// per row, same kernel the physical-plan executors use via qual_eval.h).
DictEqKernel FastDict(const BoundTerm& lhs, const BoundTerm& rhs, CmpOp op) {
  if (op != CmpOp::kEq && op != CmpOp::kNe) return {};
  auto single_dict_col = [](const BoundTerm& t) -> const ValueColumn* {
    if (t.missing || !t.col || t.col2 || !t.constant.is_null()) {
      return nullptr;
    }
    return t.col->tag() == ColumnTag::kDictString ? t.col : nullptr;
  };
  auto string_const = [](const BoundTerm& t) {
    return !t.missing && !t.col && !t.col2 &&
           t.constant.type() == ValueType::kString;
  };
  if (single_dict_col(lhs) && string_const(rhs)) {
    return DictEqKernel::Compile(*lhs.col, rhs.constant.AsString(),
                                 op == CmpOp::kNe);
  }
  if (single_dict_col(rhs) && string_const(lhs)) {
    return DictEqKernel::Compile(*rhs.col, lhs.constant.AsString(),
                                 op == CmpOp::kNe);
  }
  return {};
}

struct CompiledCmp {
  BoundTerm lhs, rhs;
  FastIntTerm fast_lhs, fast_rhs;
  DictEqKernel fast_dict;
  CmpOp op = CmpOp::kEq;
  bool fast = false;
};

CompiledCmp CompileCmp(const Comparison& cmp, const ColumnBatch& batch,
                       const std::vector<Value>* params) {
  CompiledCmp c;
  // Parameter markers substitute their bound Value before binding, so a
  // bound string parameter still reaches the dictionary fast path. The
  // common unparameterized case pays no Term copy.
  c.lhs = params ? BindTerm(algebra::ResolveParams(cmp.lhs, params), batch)
                 : BindTerm(cmp.lhs, batch);
  c.rhs = params ? BindTerm(algebra::ResolveParams(cmp.rhs, params), batch)
                 : BindTerm(cmp.rhs, batch);
  c.op = cmp.op;
  c.fast_lhs = FastInt(c.lhs);
  c.fast_rhs = FastInt(c.rhs);
  c.fast = c.fast_lhs.ok && c.fast_rhs.ok;
  c.fast_dict = FastDict(c.lhs, c.rhs, c.op);
  return c;
}

/// `row` is a PHYSICAL row index of the batch the comparison was compiled
/// against (callers translate through ColumnBatch::PhysRow).
inline bool CmpPasses(const CompiledCmp& c, size_t row) {
  if (c.fast_dict.ok) return c.fast_dict.Test(row);
  if (c.fast) {
    return IntPasses(FastIntValue(c.fast_lhs, row), c.op,
                     FastIntValue(c.fast_rhs, row));
  }
  return CompareValues(BoundTermValue(c.lhs, row), c.op,
                       BoundTermValue(c.rhs, row));
}

// --- Join-side variants: a term bound against (left, right) batches. ------

struct JoinColRef {
  const ValueColumn* col = nullptr;
  bool left = true;
};

struct JoinBoundTerm {
  JoinColRef a, b;  ///< term.col / term.col2
  bool missing = false;
  Value constant;
};

JoinBoundTerm BindJoinTerm(const Term& term, const ColumnBatch& left,
                           const ColumnBatch& right) {
  JoinBoundTerm t;
  t.constant = term.constant;
  auto resolve = [&](const std::string& name, JoinColRef* out) {
    if (name.empty()) return;
    int idx = left.ColumnIndex(name);
    if (idx >= 0) {
      out->col = left.cols[static_cast<size_t>(idx)].get();
      out->left = true;
      return;
    }
    idx = right.ColumnIndex(name);
    if (idx >= 0) {
      out->col = right.cols[static_cast<size_t>(idx)].get();
      out->left = false;
      return;
    }
    t.missing = true;
  };
  resolve(term.col, &t.a);
  resolve(term.col2, &t.b);
  return t;
}

Value JoinTermValue(const JoinBoundTerm& t, size_t lrow, size_t rrow) {
  if (t.missing) return Value::Null();
  Value acc = t.constant;
  bool have = !acc.is_null();
  auto add = [&](const JoinColRef& ref) -> bool {
    if (!ref.col) return true;
    const size_t row = ref.left ? lrow : rrow;
    if (ref.col->IsNull(row)) {
      acc = Value::Null();
      return false;
    }
    return AccumulateTermValue(&acc, &have, ref.col->GetValue(row));
  };
  if (!add(t.a)) return Value::Null();
  if (!add(t.b)) return Value::Null();
  return acc;
}

struct FastIntJoinTerm {
  bool ok = false;
  const int64_t* a = nullptr;
  bool a_left = true;
  const int64_t* b = nullptr;
  bool b_left = true;
  int64_t k = 0;
};

FastIntJoinTerm FastIntJoin(const JoinBoundTerm& t) {
  FastIntJoinTerm f;
  if (t.missing) return f;
  if (!t.a.col && !t.b.col && t.constant.is_null()) return f;
  if (!t.constant.is_null()) {
    if (t.constant.type() != ValueType::kInt) return f;
    f.k = t.constant.AsInt();
  }
  auto use = [](const JoinColRef& ref, const int64_t** out, bool* out_left) {
    if (!ref.col) return true;
    if (ref.col->tag() != ColumnTag::kInt || ref.col->has_nulls()) {
      return false;
    }
    *out = ref.col->ints().data();
    *out_left = ref.left;
    return true;
  };
  if (!use(t.a, &f.a, &f.a_left) || !use(t.b, &f.b, &f.b_left)) return f;
  f.ok = true;
  return f;
}

inline int64_t FastIntJoinValue(const FastIntJoinTerm& f, size_t lrow,
                                size_t rrow) {
  int64_t v = f.k;
  if (f.a) v += f.a[f.a_left ? lrow : rrow];
  if (f.b) v += f.b[f.b_left ? lrow : rrow];
  return v;
}

struct CompiledJoinCmp {
  JoinBoundTerm lhs, rhs;
  FastIntJoinTerm fast_lhs, fast_rhs;
  CmpOp op = CmpOp::kEq;
  bool fast = false;
};

CompiledJoinCmp CompileJoinCmp(const Comparison& cmp, const ColumnBatch& left,
                               const ColumnBatch& right,
                               const std::vector<Value>* params) {
  CompiledJoinCmp c;
  c.lhs = params
              ? BindJoinTerm(algebra::ResolveParams(cmp.lhs, params), left,
                             right)
              : BindJoinTerm(cmp.lhs, left, right);
  c.rhs = params
              ? BindJoinTerm(algebra::ResolveParams(cmp.rhs, params), left,
                             right)
              : BindJoinTerm(cmp.rhs, left, right);
  c.op = cmp.op;
  c.fast_lhs = FastIntJoin(c.lhs);
  c.fast_rhs = FastIntJoin(c.rhs);
  c.fast = c.fast_lhs.ok && c.fast_rhs.ok;
  return c;
}

inline bool JoinCmpPasses(const CompiledJoinCmp& c, size_t lrow, size_t rrow) {
  if (c.fast) {
    return IntPasses(FastIntJoinValue(c.fast_lhs, lrow, rrow), c.op,
                     FastIntJoinValue(c.fast_rhs, lrow, rrow));
  }
  return CompareValues(JoinTermValue(c.lhs, lrow, rrow), c.op,
                       JoinTermValue(c.rhs, lrow, rrow));
}

// ---------------------------------------------------------------------------
// Row hashing over key column sets (same FNV chain as the row executor).

size_t HashKeysAt(const ColumnBatch& batch, const std::vector<int>& keys,
                  size_t row) {
  size_t h = 0xcbf29ce484222325ULL;
  for (int k : keys) {
    h = h * 1099511628211ULL + batch.cols[static_cast<size_t>(k)]->HashAt(row);
  }
  return h;
}

bool AnyKeyNull(const ColumnBatch& batch, const std::vector<int>& keys,
                size_t row) {
  for (int k : keys) {
    if (batch.cols[static_cast<size_t>(k)]->IsNull(row)) return true;
  }
  return false;
}

bool KeysEqual(const ColumnBatch& a, const std::vector<int>& ka, size_t arow,
               const ColumnBatch& b, const std::vector<int>& kb, size_t brow) {
  for (size_t i = 0; i < ka.size(); ++i) {
    const ValueColumn& ca = *a.cols[static_cast<size_t>(ka[i])];
    const ValueColumn& cb = *b.cols[static_cast<size_t>(kb[i])];
    // NULL join keys never match (Value::Compare: NULL is incomparable).
    if (ca.IsNull(arow) || cb.IsNull(brow)) return false;
    if (!ValueColumn::EqualAt(ca, arow, cb, brow)) return false;
  }
  return true;
}

constexpr size_t kMaxBatchRows = std::numeric_limits<uint32_t>::max();

/// Late-materialization density cutoff: a filter stays lazy (publishes a
/// selection vector over the shared physical columns) while survivors
/// keep at least half of the physical row space. Sparser selections
/// compact immediately — downstream operators would otherwise pay
/// scattered access into full-size columns on every probe, which costs
/// more than the one gather saved (measured on the Q2-class DAG plans).
bool KeepLazy(size_t survivors, size_t phys_rows) {
  return survivors * 2 >= phys_rows;
}

/// Morsel geometry for the parallel paths: below the cutoff a fan-out
/// costs more in scheduling than the scan saves; above it, fixed-size
/// morsels keep the shared claim counter cold while giving the pool
/// enough pieces to balance skew.
constexpr size_t kParallelRowCutoff = 2048;
constexpr size_t kMorselRows = 1024;

inline size_t MorselCount(size_t n) {
  return (n + kMorselRows - 1) / kMorselRows;
}

// ---------------------------------------------------------------------------
// Pipelined execution over ColumnBatch morsels.
//
// Plans execute as pull-based pipelines: non-blocking operators (σ, π, @,
// #, join probe) transform one ≤kStreamRows window at a time, while the
// blocking ones (sort/serialize, hash build, δ, ϱ) are explicit pipeline
// breakers that consume their input inside Prime(). Breakers charge the
// bytes they buffer against the execution's MemoryBudget; the
// spill-capable ones (sort runs, hash build sides, δ) move buffered state
// to disk when the budget is exceeded and still reproduce the serial
// executor's exact row order (see ExternalValueSorter in engine/spill.h,
// which also owns the shared spill geometry: kSpillPartitions,
// kMinSpillRows, SpillPartition). Leaf relations and shared sub-DAGs
// materialize once and are re-streamed per consumer.

constexpr size_t kStreamRows = 4096;

int SchemaIndex(const std::vector<std::string>& schema,
                const std::string& name) {
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema[i] == name) return static_cast<int>(i);
  }
  return -1;
}

/// Tracked bytes of one batch. Lazy batches share physical columns wider
/// than their row set; their charge is scaled to the selected share so a
/// window over a large shared column does not bill the whole column per
/// window.
int64_t ApproxBatchBytes(const ColumnBatch& b) {
  int64_t bytes = 64;  // struct + schema overhead floor
  const size_t phys = b.PhysSize();
  for (const ColumnRef& col : b.cols) {
    int64_t cb = col->ApproxBytes();
    if (b.sel && phys > 0) {
      cb = cb * static_cast<int64_t>(b.num_rows) /
           static_cast<int64_t>(phys);
    }
    bytes += cb;
  }
  return bytes;
}

ValueColumn ConstantColumn(const Value& v, size_t n) {
  switch (v.type()) {
    case ValueType::kInt:
      return ValueColumn::Ints(std::vector<int64_t>(n, v.AsInt()));
    case ValueType::kDouble:
      return ValueColumn::Doubles(std::vector<double>(n, v.AsDouble()));
    case ValueType::kString:
      return ValueColumn::Strings(std::vector<std::string>(n, v.AsString()));
    case ValueType::kNull:
      break;
  }
  ValueColumn col;
  for (size_t i = 0; i < n; ++i) col.AppendNull();
  return col;
}

ColumnBatch LiteralBatch(const Op* op) {
  ColumnBatch batch;
  batch.schema = op->schema;
  batch.num_rows = op->rows.size();
  for (size_t c = 0; c < op->schema.size(); ++c) {
    ValueColumn col;
    col.Reserve(op->rows.size());
    for (const auto& row : op->rows) col.Append(row[c]);
    batch.cols.push_back(std::make_shared<const ValueColumn>(std::move(col)));
  }
  return batch;
}

/// Shared state of one pipelined execution: DNF clock, memory governor,
/// stats sink, and the knobs every stream needs.
struct PipelineCtx {
  PipelineCtx(const xml::DocTable& doc_table, const ExecOptions& options)
      : doc(doc_table),
        clock(options.limits),
        budget(options.limits.max_memory_bytes),
        stats(options.stats),
        threads(options.threads),
        params(options.params) {
    const char* env = std::getenv("XQJG_DCHECK_BATCHES");
    dcheck_batches = env && *env && std::string(env) != "0";
  }

  void NoteSpill(int64_t bytes) {
    if (stats) {
      stats->spill_bytes += bytes;
      stats->spill_events += 1;
    }
  }

  void SyncPeak() {
    if (stats) {
      stats->peak_memory_bytes =
          std::max(stats->peak_memory_bytes, budget.peak());
    }
  }

  const xml::DocTable& doc;
  BudgetClock clock;
  MemoryBudget budget;
  ExecStats* stats;
  const int threads;
  const std::vector<Value>* params;
  /// XQJG_DCHECK_BATCHES: verify every stream-output batch (batch-sel).
  bool dcheck_batches = false;
};

/// One pipeline operator. Callers pull batches through Next(), which
/// wraps the operator's NextImpl with the per-stream invariants: batch
/// dchecks, tuples_materialized accounting, and the cumulative row-budget
/// tick — so no NextImpl loop can forget the DNF guard.
class BatchStream {
 public:
  BatchStream(PipelineCtx* ctx, const char* label, bool count_rows = true)
      : ctx_(ctx), label_(label), count_rows_(count_rows) {}
  virtual ~BatchStream() = default;

  BatchStream(const BatchStream&) = delete;
  BatchStream& operator=(const BatchStream&) = delete;

  /// Runs the blocking work: breakers consume their whole input here (and
  /// spill if the governor says so); pass-through streams forward to
  /// their children. Idempotent. Must be called before the first Next().
  virtual Status Prime() { return Status::OK(); }

  /// Pulls the next batch into *out; false when the stream is exhausted.
  Result<bool> Next(ColumnBatch* out) {
    *out = ColumnBatch{};
    XQJG_ASSIGN_OR_RETURN(bool more, NextImpl(out));
    if (!more) return false;
    if (ctx_->dcheck_batches) {
      XQJG_RETURN_NOT_OK(opt::CheckColumnBatch(*out, label_));
    }
    rows_out_ += static_cast<int64_t>(out->num_rows);
    if (count_rows_ && ctx_->stats) {
      ctx_->stats->tuples_materialized +=
          static_cast<int64_t>(out->num_rows);
    }
    XQJG_RETURN_NOT_OK(ctx_->clock.TickRows(rows_out_));
    return true;
  }

  /// Result cardinality when known after Prime() (the final sort breaker
  /// knows it; -1 otherwise).
  virtual int64_t total_rows() const { return -1; }

  int64_t rows_out() const { return rows_out_; }

 protected:
  virtual Result<bool> NextImpl(ColumnBatch* out) = 0;

  PipelineCtx* ctx_;
  const char* label_;
  /// Re-streaming a memoized batch must not re-count tuples_materialized
  /// (SliceStream sets this false).
  bool count_rows_;
  int64_t rows_out_ = 0;
};

/// Emits `src` as ≤kStreamRows windows. A window is a lazy view: the
/// shared physical columns plus a selection of the window's rows; callers
/// that need density compact via NormalizeDensity.
Result<bool> NextWindow(const ColumnBatch& src, size_t* pos,
                        ColumnBatch* out) {
  if (*pos >= src.num_rows) return false;
  if (*pos == 0 && src.num_rows <= kStreamRows) {
    *out = src;  // shares columns; no per-window selection needed
    *pos = src.num_rows;
    return true;
  }
  const size_t end = std::min(src.num_rows, *pos + kStreamRows);
  out->schema = src.schema;
  out->num_rows = end - *pos;
  out->cols = src.cols;
  if (src.cols.empty()) {
    // Zero-column batches have no physical row space; the count alone
    // carries the window.
    *pos = end;
    return true;
  }
  std::vector<uint32_t> sel;
  sel.reserve(end - *pos);
  for (size_t i = *pos; i < end; ++i) {
    sel.push_back(static_cast<uint32_t>(src.PhysRow(i)));
  }
  out->sel = std::make_shared<const std::vector<uint32_t>>(std::move(sel));
  *pos = end;
  return true;
}

/// Streams a memoized batch (leaf relation or shared sub-DAG) without
/// re-counting its tuples.
class SliceStream final : public BatchStream {
 public:
  SliceStream(PipelineCtx* ctx, std::shared_ptr<const ColumnBatch> src)
      : BatchStream(ctx, "slice", /*count_rows=*/false),
        src_(std::move(src)) {}

 protected:
  Result<bool> NextImpl(ColumnBatch* out) override {
    return NextWindow(*src_, &pos_, out);
  }

 private:
  std::shared_ptr<const ColumnBatch> src_;
  size_t pos_ = 0;
};

/// A stream with one upstream child; forwards Prime() by default.
class UnaryStream : public BatchStream {
 public:
  UnaryStream(PipelineCtx* ctx, const char* label, const Op* op,
              std::unique_ptr<BatchStream> child, bool count_rows = true)
      : BatchStream(ctx, label, count_rows),
        op_(op),
        child_(std::move(child)) {}

  Status Prime() override { return child_->Prime(); }

 protected:
  const Op* op_;
  std::unique_ptr<BatchStream> child_;
};

/// @ and # append a column aligned with the physical row space; when the
/// window is a sparse view of large shared columns that would cost
/// O(phys) per window, so compact to a dense batch first (same cutoff σ
/// uses for late materialization).
void NormalizeDensity(ColumnBatch* b) {
  if (!b->sel || b->cols.empty()) return;
  if (KeepLazy(b->num_rows, b->PhysSize())) return;
  std::vector<uint32_t> rows(b->sel->begin(), b->sel->end());
  ColumnBatch dense = GatherPhysicalRows(*b, rows);
  dense.schema = std::move(b->schema);
  dense.num_rows = b->num_rows;
  *b = std::move(dense);
}

/// One window of σ — the exact EvalSelect algorithm (late
/// materialization, density cutoff, morsel fan-out) applied per batch.
Result<ColumnBatch> FilterOneBatch(PipelineCtx* ctx, const Op* op,
                                   const ColumnBatch& in) {
  if (in.num_rows > kMaxBatchRows) {
    return Status::Internal("select input exceeds batch row limit");
  }
  std::vector<CompiledCmp> cmps;
  cmps.reserve(op->pred.conjuncts.size());
  for (const auto& cmp : op->pred.conjuncts) {
    cmps.push_back(CompileCmp(cmp, in, ctx->params));
  }
  // Late materialization: the filter produces a selection vector over the
  // shared physical columns — no gather.
  std::vector<uint32_t> sel;
  if (ctx->threads > 1 && in.num_rows >= kParallelRowCutoff) {
    // Morsel fan-out: each morsel filters its logical row range into a
    // private selection slice; concatenating the slices in morsel order
    // reproduces the serial emission order exactly.
    const size_t n = in.num_rows;
    const size_t morsels = MorselCount(n);
    std::vector<std::vector<uint32_t>> parts(morsels);
    RegionBudget budget(ctx->clock);
    parallel::WorkerPool::Instance().ParallelFor(
        ctx->threads, morsels, [&](size_t m, int) {
          BudgetClock wclock = budget.Worker();
          std::vector<uint32_t>& part = parts[m];
          const size_t end = std::min(n, (m + 1) * kMorselRows);
          for (size_t row = m * kMorselRows; row < end; ++row) {
            const size_t phys = in.PhysRow(row);
            bool pass = true;
            for (const CompiledCmp& c : cmps) {
              if (!CmpPasses(c, phys)) {
                pass = false;
                break;
              }
            }
            if (pass) part.push_back(static_cast<uint32_t>(phys));
            Status st = wclock.Tick();
            if (!st.ok()) {
              budget.Abort(st);
              return;
            }
          }
        });
    XQJG_RETURN_NOT_OK(budget.status());
    size_t total = 0;
    for (const auto& part : parts) total += part.size();
    sel.reserve(total);
    for (const auto& part : parts) {
      sel.insert(sel.end(), part.begin(), part.end());
    }
  } else {
    for (size_t row = 0; row < in.num_rows; ++row) {
      const size_t phys = in.PhysRow(row);
      bool pass = true;
      for (const CompiledCmp& c : cmps) {
        if (!CmpPasses(c, phys)) {
          pass = false;
          break;
        }
      }
      if (pass) sel.push_back(static_cast<uint32_t>(phys));
      XQJG_RETURN_NOT_OK(ctx->clock.Tick());
    }
  }
  // Nothing filtered: pass the window through (row set unchanged).
  if (sel.size() == in.num_rows) {
    ColumnBatch out = in;
    out.schema = op->schema;
    return out;
  }
  // A zero-column batch has no physical row space to select into; its
  // row count alone carries the result.
  if (in.cols.empty() || !KeepLazy(sel.size(), in.PhysSize())) {
    ColumnBatch out =
        in.cols.empty() ? ColumnBatch{} : GatherPhysicalRows(in, sel);
    out.schema = op->schema;
    out.num_rows = sel.size();
    return out;
  }
  ColumnBatch out;
  out.schema = op->schema;
  out.cols = in.cols;  // shared — deferred gather
  out.num_rows = sel.size();
  out.sel = std::make_shared<const std::vector<uint32_t>>(std::move(sel));
  return out;
}

class FilterStream final : public UnaryStream {
 public:
  FilterStream(PipelineCtx* ctx, const Op* op,
               std::unique_ptr<BatchStream> child)
      : UnaryStream(ctx, "select", op, std::move(child)) {}

 protected:
  Result<bool> NextImpl(ColumnBatch* out) override {
    for (;;) {
      ColumnBatch in;
      XQJG_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
      if (!more) return false;
      XQJG_ASSIGN_OR_RETURN(*out, FilterOneBatch(ctx_, op_, in));
      if (out->num_rows > 0) return true;
      // A fully filtered window yields nothing; keep pulling.
    }
  }
};

class ProjectStream final : public UnaryStream {
 public:
  ProjectStream(PipelineCtx* ctx, const Op* op,
                std::unique_ptr<BatchStream> child)
      : UnaryStream(ctx, "project", op, std::move(child)) {}

 protected:
  Result<bool> NextImpl(ColumnBatch* out) override {
    ColumnBatch in;
    XQJG_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    if (!more) return false;
    out->schema = op_->schema;
    out->num_rows = in.num_rows;
    out->sel = in.sel;  // lazy rows pass through untouched
    out->cols.reserve(op_->proj.size());
    for (const auto& [out_name, src] : op_->proj) {
      (void)out_name;
      int idx = in.ColumnIndex(src);
      if (idx < 0) {
        return Status::Internal("projection source missing: " + src);
      }
      out->cols.push_back(in.cols[static_cast<size_t>(idx)]);  // zero copy
    }
    return true;
  }
};

class AttachStream final : public UnaryStream {
 public:
  AttachStream(PipelineCtx* ctx, const Op* op,
               std::unique_ptr<BatchStream> child)
      : UnaryStream(ctx, "attach", op, std::move(child)) {}

 protected:
  Result<bool> NextImpl(ColumnBatch* out) override {
    ColumnBatch in;
    XQJG_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    if (!more) return false;
    NormalizeDensity(&in);
    out->schema = op_->schema;
    out->num_rows = in.num_rows;
    out->sel = in.sel;
    out->cols = in.cols;  // shared
    // The constant column spans the physical row space so it aligns with
    // the shared columns under the same selection vector.
    out->cols.push_back(std::make_shared<const ValueColumn>(
        ConstantColumn(op_->val, in.PhysSize())));
    return true;
  }
};

class RowIdStream final : public UnaryStream {
 public:
  RowIdStream(PipelineCtx* ctx, const Op* op,
              std::unique_ptr<BatchStream> child)
      : UnaryStream(ctx, "rowid", op, std::move(child)) {}

 protected:
  Result<bool> NextImpl(ColumnBatch* out) override {
    ColumnBatch in;
    XQJG_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    if (!more) return false;
    NormalizeDensity(&in);
    // Ids number LOGICAL rows across the whole stream (offset_ carries
    // the count over window boundaries) and scatter to physical slots.
    std::vector<int64_t> ids(in.PhysSize(), 0);
    for (size_t i = 0; i < in.num_rows; ++i) {
      ids[in.PhysRow(i)] = offset_ + static_cast<int64_t>(i) + 1;
      XQJG_RETURN_NOT_OK(ctx_->clock.Tick());
    }
    offset_ += static_cast<int64_t>(in.num_rows);
    out->schema = op_->schema;
    out->num_rows = in.num_rows;
    out->sel = in.sel;
    out->cols = in.cols;  // shared
    out->cols.push_back(std::make_shared<const ValueColumn>(
        ValueColumn::Ints(std::move(ids))));
    return true;
  }

 private:
  int64_t offset_ = 0;
};

/// Drains a stream into one dense batch — the shape the non-streaming
/// exits and the rank breaker need. The result is charged against the
/// governor via *charge when given (tracked, not spillable).
Result<ColumnBatch> DrainStreamDense(BatchStream* stream,
                                     const std::vector<std::string>& schema,
                                     MemoryCharge* charge) {
  std::vector<ValueColumn> cols(schema.size());
  size_t rows = 0;
  for (;;) {
    ColumnBatch in;
    XQJG_ASSIGN_OR_RETURN(bool more, stream->Next(&in));
    if (!more) break;
    if (in.cols.size() != cols.size()) {
      return Status::Internal("stream batch arity mismatch");
    }
    // Row admission happened inside Next (BatchStream ticks the clock per
    // batch); the appends below only restructure admitted rows.
    // xqjg-lint: allow(no-budget-guard)
    for (size_t c = 0; c < cols.size(); ++c) {
      const ValueColumn& src = *in.cols[c];
      for (size_t r = 0; r < in.num_rows; ++r) {
        cols[c].AppendFrom(src, in.PhysRow(r));
      }
    }
    rows += in.num_rows;
    if (rows > kMaxBatchRows) {
      return Status::Internal("stream result exceeds batch row limit");
    }
  }
  ColumnBatch acc;
  acc.schema = schema;
  acc.num_rows = rows;
  for (ValueColumn& c : cols) {
    acc.cols.push_back(std::make_shared<const ValueColumn>(std::move(c)));
  }
  if (charge) charge->Set(ApproxBatchBytes(acc));
  return acc;
}

/// ϱ — a breaker by necessity (ranks need the whole input). The drained
/// input is tracked but not spillable: the rank column must scatter into
/// the full physical row space anyway, so spilling would buy nothing.
class RankStream final : public UnaryStream {
 public:
  RankStream(PipelineCtx* ctx, const Op* op,
             std::unique_ptr<BatchStream> child)
      : UnaryStream(ctx, "rank", op, std::move(child)),
        charge_(&ctx->budget) {}

  Status Prime() override {
    if (primed_) return Status::OK();
    primed_ = true;
    XQJG_RETURN_NOT_OK(child_->Prime());
    XQJG_ASSIGN_OR_RETURN(
        ColumnBatch in,
        DrainStreamDense(child_.get(), op_->children[0]->schema, &charge_));
    std::vector<const ValueColumn*> order;
    for (const auto& b : op_->order) {
      int idx = in.ColumnIndex(b);
      if (idx < 0) return Status::Internal("rank criterion missing: " + b);
      order.push_back(in.cols[static_cast<size_t>(idx)].get());
    }
    std::vector<uint32_t> perm(in.num_rows);
    std::iota(perm.begin(), perm.end(), 0);
    auto less = [&](uint32_t a, uint32_t b) {
      ctx_->clock.TickThrow();
      for (const ValueColumn* c : order) {
        if (ValueColumn::SortLessAt(*c, a, *c, b)) return true;
        if (ValueColumn::SortLessAt(*c, b, *c, a)) return false;
      }
      return false;
    };
    std::vector<int64_t> ranks(in.num_rows, 0);
    try {
      std::stable_sort(perm.begin(), perm.end(), less);
      // RANK() semantics: ties share the rank of their first row
      // (1-based).
      for (size_t k = 0; k < perm.size(); ++k) {
        if (k > 0 && !less(perm[k - 1], perm[k]) &&
            !less(perm[k], perm[k - 1])) {
          ranks[perm[k]] = ranks[perm[k - 1]];
        } else {
          ranks[perm[k]] = static_cast<int64_t>(k) + 1;
        }
      }
    } catch (const BudgetExhausted&) {
      return Status::Timeout("execution exceeded wall-clock budget (DNF)");
    }
    ColumnBatch out;
    out.schema = op_->schema;
    out.num_rows = in.num_rows;
    out.cols = in.cols;  // shared (drained input is dense)
    out.cols.push_back(std::make_shared<const ValueColumn>(
        ValueColumn::Ints(std::move(ranks))));
    charge_.Set(ApproxBatchBytes(out));
    out_ = std::make_shared<const ColumnBatch>(std::move(out));
    return Status::OK();
  }

 protected:
  Result<bool> NextImpl(ColumnBatch* out) override {
    if (out_ == nullptr) return false;
    XQJG_ASSIGN_OR_RETURN(bool more, NextWindow(*out_, &pos_, out));
    if (!more) {
      // Every window has been consumed (typically inside a downstream
      // breaker's Prime). Windows share the physical columns, so any
      // consumer that still needs them holds — and has charged — its own
      // reference; keeping ours would make an open streaming cursor
      // retain the full rank materialization for its whole lifetime.
      out_.reset();
      charge_.Reset();
    }
    return more;
  }

 private:
  MemoryCharge charge_;
  bool primed_ = false;
  std::shared_ptr<const ColumnBatch> out_;
  size_t pos_ = 0;
};

/// Constructs the shared external-merge sorter (engine/spill.h) wired to
/// this execution's clock, governor, and stats sink.
std::unique_ptr<ExternalValueSorter> MakeSorter(PipelineCtx* ctx,
                                                size_t arity,
                                                std::vector<int> keys) {
  return std::make_unique<ExternalValueSorter>(&ctx->clock, &ctx->budget,
                                               ctx->stats, arity,
                                               std::move(keys));
}

/// Builds a dense output window from boxed sorter rows, dropping `skip`
/// leading bookkeeping columns (order-restoration sequence numbers).
Result<bool> SorterWindow(ExternalValueSorter* sorter, size_t skip,
                          const std::vector<std::string>& schema,
                          ColumnBatch* out) {
  std::vector<ValueColumn> cols(schema.size());
  std::vector<Value> row;
  size_t n = 0;
  while (n < kStreamRows) {
    XQJG_ASSIGN_OR_RETURN(bool more, sorter->Next(&row));
    if (!more) break;
    for (size_t c = 0; c < cols.size(); ++c) cols[c].Append(row[c + skip]);
    ++n;
  }
  if (n == 0) return false;
  out->schema = schema;
  out->num_rows = n;
  for (ValueColumn& c : cols) {
    out->cols.push_back(std::make_shared<const ValueColumn>(std::move(c)));
  }
  return true;
}

/// The serialize sort — the root pipeline breaker. Prime() consumes the
/// child, retaining batches in memory (charged) or, once the governor
/// says spill, re-routing every buffered and future row through an
/// ExternalValueSorter keyed on (pos, item). Either way the result
/// cardinality is known when Prime() returns and emission is pure
/// on-demand work: window gathers from the sorted permutation, or run
/// merging from disk.
class SerializeStream final : public UnaryStream {
 public:
  SerializeStream(PipelineCtx* ctx, const Op* op,
                  std::unique_ptr<BatchStream> child)
      : UnaryStream(ctx, "serialize", op, std::move(child)),
        charge_(&ctx->budget) {}

  Status Prime() override {
    if (primed_) return Status::OK();
    primed_ = true;
    XQJG_RETURN_NOT_OK(child_->Prime());
    const std::vector<std::string>& in_schema = op_->children[0]->schema;
    arity_ = in_schema.size();
    pos_idx_ = SchemaIndex(in_schema, op_->order[0]);
    item_idx_ = SchemaIndex(in_schema, op_->col);
    if (pos_idx_ < 0 || item_idx_ < 0) {
      return Status::Internal("serialize columns missing");
    }
    for (;;) {
      ColumnBatch in;
      XQJG_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
      if (!more) break;
      if (in.num_rows == 0) continue;
      if (sorter_) {
        XQJG_RETURN_NOT_OK(AddToSorter(in));
        continue;
      }
      buffered_rows_ += in.num_rows;
      if (buffered_rows_ > kMaxBatchRows) {
        return Status::Internal("serialize input exceeds batch row limit");
      }
      charge_.Add(ApproxBatchBytes(in));
      bufs_.push_back(std::make_shared<const ColumnBatch>(std::move(in)));
      if (ctx_->budget.ShouldSpill() && buffered_rows_ >= kMinSpillRows) {
        XQJG_RETURN_NOT_OK(StartSpill());
      }
    }
    if (sorter_) {
      XQJG_RETURN_NOT_OK(sorter_->Finish());
      total_rows_ = sorter_->total_rows();
      return Status::OK();
    }
    // In-memory: sort a (batch, row) permutation. The initial permutation
    // is arrival order — exactly the serial executor's input row order —
    // so the stable sort reproduces its tie-breaks.
    perm_.reserve(buffered_rows_);
    for (size_t bi = 0; bi < bufs_.size(); ++bi) {
      // bounded by the already-charged buffered_rows_, and the
      // stable_sort just below ticks per comparison
      // xqjg-lint: allow(no-budget-guard)
      for (size_t r = 0; r < bufs_[bi]->num_rows; ++r) {
        perm_.push_back(
            RowRef{static_cast<uint32_t>(bi), static_cast<uint32_t>(r)});
      }
    }
    try {
      std::stable_sort(perm_.begin(), perm_.end(),
                       [&](const RowRef& a, const RowRef& b) {
                         ctx_->clock.TickThrow();
                         return RefLess(a, b);
                       });
    } catch (const BudgetExhausted&) {
      return Status::Timeout("execution exceeded wall-clock budget (DNF)");
    }
    total_rows_ = static_cast<int64_t>(perm_.size());
    return Status::OK();
  }

  int64_t total_rows() const override { return total_rows_; }

 protected:
  Result<bool> NextImpl(ColumnBatch* out) override {
    if (sorter_) return SorterWindow(sorter_.get(), 0, op_->schema, out);
    if (next_ >= perm_.size()) return false;
    const size_t end = std::min(perm_.size(), next_ + kStreamRows);
    std::vector<ValueColumn> cols(arity_);
    // Window gather in sort order; rows were admitted during Prime.
    // xqjg-lint: allow(no-budget-guard)
    for (size_t i = next_; i < end; ++i) {
      const RowRef& ref = perm_[i];
      const ColumnBatch& b = *bufs_[ref.batch];
      const size_t p = b.PhysRow(ref.row);
      for (size_t c = 0; c < arity_; ++c) {
        cols[c].AppendFrom(*b.cols[c], p);
      }
    }
    out->schema = op_->schema;
    out->num_rows = end - next_;
    for (ValueColumn& c : cols) {
      out->cols.push_back(std::make_shared<const ValueColumn>(std::move(c)));
    }
    next_ = end;
    return true;
  }

 private:
  struct RowRef {
    uint32_t batch;
    uint32_t row;  ///< logical row within the batch
  };

  bool RefLess(const RowRef& a, const RowRef& b) const {
    const ColumnBatch& ba = *bufs_[a.batch];
    const ColumnBatch& bb = *bufs_[b.batch];
    const size_t pa = ba.PhysRow(a.row);
    const size_t pb = bb.PhysRow(b.row);
    const ValueColumn& pos_a = *ba.cols[static_cast<size_t>(pos_idx_)];
    const ValueColumn& pos_b = *bb.cols[static_cast<size_t>(pos_idx_)];
    if (ValueColumn::SortLessAt(pos_a, pa, pos_b, pb)) return true;
    if (ValueColumn::SortLessAt(pos_b, pb, pos_a, pa)) return false;
    const ValueColumn& item_a = *ba.cols[static_cast<size_t>(item_idx_)];
    const ValueColumn& item_b = *bb.cols[static_cast<size_t>(item_idx_)];
    return ValueColumn::SortLessAt(item_a, pa, item_b, pb);
  }

  Status AddToSorter(const ColumnBatch& in) {
    std::vector<Value> row(arity_);
    for (size_t r = 0; r < in.num_rows; ++r) {
      const size_t p = in.PhysRow(r);
      for (size_t c = 0; c < arity_; ++c) row[c] = in.cols[c]->GetValue(p);
      XQJG_RETURN_NOT_OK(sorter_->Add(row));
      XQJG_RETURN_NOT_OK(ctx_->clock.Tick());
    }
    return Status::OK();
  }

  /// Hands the retained buffer to the external sorter (in arrival order,
  /// preserving the stable tie-break) and releases its charge.
  Status StartSpill() {
    sorter_ = MakeSorter(ctx_, arity_, {pos_idx_, item_idx_});
    for (const auto& b : bufs_) XQJG_RETURN_NOT_OK(AddToSorter(*b));
    bufs_.clear();
    charge_.Reset();
    return Status::OK();
  }

  MemoryCharge charge_;
  bool primed_ = false;
  size_t arity_ = 0;
  int pos_idx_ = -1;
  int item_idx_ = -1;
  size_t buffered_rows_ = 0;
  std::vector<std::shared_ptr<const ColumnBatch>> bufs_;
  std::vector<RowRef> perm_;
  size_t next_ = 0;
  std::unique_ptr<ExternalValueSorter> sorter_;
  int64_t total_rows_ = 0;
};

/// Join (hash, residual-only, or cross). The build side (right child) is
/// the breaker: Prime() consumes it into retained batches plus a bucket
/// table. The probe side streams — each pulled left window probes and
/// emits one output window, in the serial executor's exact order (probe
/// arrival order, then bucket insertion order).
///
/// When the governor trips during a hashable build, the join goes Grace:
/// both sides hash-partition to disk (rows carry their arrival sequence
/// numbers), partitions join one at a time, and the matches pass through
/// an ExternalValueSorter keyed (probe seq, build seq) — restoring exactly
/// the order the in-memory probe would have emitted. Cross and
/// residual-only joins keep their build resident (tracked, not
/// spillable): they have no keys to partition on.
class HashJoinStream final : public BatchStream {
 public:
  HashJoinStream(PipelineCtx* ctx, const Op* op,
                 std::unique_ptr<BatchStream> left,
                 std::unique_ptr<BatchStream> right)
      : BatchStream(ctx, "join"),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)),
        charge_(&ctx->budget) {}

  Status Prime() override {
    if (primed_) return Status::OK();
    primed_ = true;
    XQJG_RETURN_NOT_OK(left_->Prime());
    XQJG_RETURN_NOT_OK(right_->Prime());
    const std::vector<std::string>& ls = op_->children[0]->schema;
    const std::vector<std::string>& rs = op_->children[1]->schema;
    lw_ = ls.size();
    rw_ = rs.size();
    // Split the predicate into hashable equality conjuncts and residual
    // comparisons — same classification as the row executor.
    if (op_->kind == OpKind::kJoin) {
      for (const auto& cmp : op_->pred.conjuncts) {
        if (cmp.IsColEq()) {
          int li = SchemaIndex(ls, cmp.lhs.col);
          int ri = SchemaIndex(rs, cmp.rhs.col);
          if (li < 0 && ri < 0) {
            li = SchemaIndex(ls, cmp.rhs.col);
            ri = SchemaIndex(rs, cmp.lhs.col);
          }
          if (li >= 0 && ri >= 0) {
            lkeys_.push_back(li);
            rkeys_.push_back(ri);
            continue;
          }
        }
        residual_.push_back(cmp);
      }
    }
    // Build: consume the right child. NULL keys are skipped — NULL never
    // equals NULL in a join predicate.
    for (;;) {
      ColumnBatch in;
      XQJG_ASSIGN_OR_RETURN(bool more, right_->Next(&in));
      if (!more) break;
      if (in.num_rows == 0) continue;
      if (spilling_) {
        XQJG_RETURN_NOT_OK(SpillBuildBatch(in));
        continue;
      }
      const uint32_t bi = static_cast<uint32_t>(build_bufs_.size());
      charge_.Add(ApproxBatchBytes(in));
      build_bufs_.push_back(std::make_shared<const ColumnBatch>(std::move(in)));
      const ColumnBatch& b = *build_bufs_.back();
      build_rows_ += b.num_rows;
      if (!lkeys_.empty()) {
        for (size_t j = 0; j < b.num_rows; ++j) {
          const size_t jp = b.PhysRow(j);
          if (AnyKeyNull(b, rkeys_, jp)) continue;
          buckets_[HashKeysAt(b, rkeys_, jp)].push_back(
              BuildRef{bi, static_cast<uint32_t>(jp)});
          XQJG_RETURN_NOT_OK(ctx_->clock.Tick());
        }
        if (ctx_->budget.ShouldSpill() && build_rows_ >= kMinSpillRows) {
          XQJG_RETURN_NOT_OK(StartBuildSpill());
        }
      }
    }
    if (spilling_) return SpillProbeAndJoin();
    return Status::OK();
  }

 protected:
  Result<bool> NextImpl(ColumnBatch* out) override {
    if (sorter_) return SorterWindow(sorter_.get(), 2, op_->schema, out);
    for (;;) {
      ColumnBatch in;
      XQJG_ASSIGN_OR_RETURN(bool more, left_->Next(&in));
      if (!more) return false;
      XQJG_ASSIGN_OR_RETURN(bool emitted, ProbeBatch(in, out));
      if (emitted) return true;
      // A matchless probe window yields nothing; keep pulling.
    }
  }

 private:
  struct BuildRef {
    uint32_t batch;
    uint32_t phys;
  };

  /// Grace handover: re-route every retained build row to its hash
  /// partition on disk, then drop the in-memory build state.
  Status StartBuildSpill() {
    spilling_ = true;
    build_parts_.resize(kSpillPartitions);
    for (const auto& b : build_bufs_) {
      XQJG_RETURN_NOT_OK(SpillBuildBatch(*b));
    }
    build_bufs_.clear();
    buckets_.clear();
    charge_.Reset();
    return Status::OK();
  }

  Status SpillBuildBatch(const ColumnBatch& in) {
    std::vector<Value> row(rw_ + 1);
    for (size_t j = 0; j < in.num_rows; ++j) {
      const size_t jp = in.PhysRow(j);
      const int64_t seq = bseq_++;
      if (AnyKeyNull(in, rkeys_, jp)) continue;
      row[0] = Value::Int(seq);
      for (size_t c = 0; c < rw_; ++c) row[c + 1] = in.cols[c]->GetValue(jp);
      const size_t part = SpillPartition(HashKeysAt(in, rkeys_, jp));
      XQJG_RETURN_NOT_OK(
          SpillAppendRow(&build_parts_[part], row.data(), rw_ + 1));
      XQJG_RETURN_NOT_OK(ctx_->clock.Tick());
    }
    return NoteParts(&build_parts_, &build_spill_reported_);
  }

  Status NoteParts(std::vector<SpillFile>* parts, int64_t* reported) {
    int64_t total = 0;
    for (const SpillFile& f : *parts) total += f.bytes_written();
    if (total > *reported) {
      ctx_->NoteSpill(total - *reported);
      *reported = total;
    }
    return Status::OK();
  }

  /// Spilled-probe phase: partition the whole probe stream, join the
  /// partitions one at a time, and restore the serial emission order via
  /// the (probe seq, build seq) sort.
  Status SpillProbeAndJoin() {
    probe_parts_.resize(kSpillPartitions);
    std::vector<Value> row(lw_ + 1);
    int64_t pseq = 0;
    for (;;) {
      ColumnBatch in;
      XQJG_ASSIGN_OR_RETURN(bool more, left_->Next(&in));
      if (!more) break;
      for (size_t l = 0; l < in.num_rows; ++l) {
        const size_t lp = in.PhysRow(l);
        const int64_t seq = pseq++;
        if (AnyKeyNull(in, lkeys_, lp)) continue;
        row[0] = Value::Int(seq);
        for (size_t c = 0; c < lw_; ++c) {
          row[c + 1] = in.cols[c]->GetValue(lp);
        }
        const size_t part = SpillPartition(HashKeysAt(in, lkeys_, lp));
        XQJG_RETURN_NOT_OK(
            SpillAppendRow(&probe_parts_[part], row.data(), lw_ + 1));
        XQJG_RETURN_NOT_OK(ctx_->clock.Tick());
      }
      XQJG_RETURN_NOT_OK(NoteParts(&probe_parts_, &probe_spill_reported_));
    }
    sorter_ = MakeSorter(ctx_, 2 + lw_ + rw_, {0, 1});
    for (size_t p = 0; p < kSpillPartitions; ++p) {
      XQJG_RETURN_NOT_OK(JoinPartition(p));
    }
    build_parts_.clear();
    probe_parts_.clear();
    return sorter_->Finish();
  }

  Status JoinPartition(size_t p) {
    SpillFile& bf = build_parts_[p];
    SpillFile& pf = probe_parts_[p];
    if (bf.rows() == 0 || pf.rows() == 0) return Status::OK();
    XQJG_RETURN_NOT_OK(bf.Rewind());
    XQJG_RETURN_NOT_OK(pf.Rewind());
    // Rebuild the partition's build side as one batch (charged while the
    // partition is live); file order is build arrival order, so the
    // buckets keep the serial insertion order.
    std::vector<Value> row(std::max(lw_, rw_) + 1);
    std::vector<ValueColumn> bcols(rw_);
    std::vector<int64_t> bseqs;
    for (;;) {
      XQJG_ASSIGN_OR_RETURN(bool more,
                            SpillReadRow(&bf, row.data(), rw_ + 1));
      if (!more) break;
      bseqs.push_back(row[0].AsInt());
      for (size_t c = 0; c < rw_; ++c) bcols[c].Append(row[c + 1]);
      XQJG_RETURN_NOT_OK(ctx_->clock.Tick());
    }
    ColumnBatch build;
    build.schema = op_->children[1]->schema;
    build.num_rows = bseqs.size();
    for (ValueColumn& c : bcols) {
      build.cols.push_back(std::make_shared<const ValueColumn>(std::move(c)));
    }
    MemoryCharge charge(&ctx_->budget);
    charge.Add(ApproxBatchBytes(build));
    std::unordered_map<size_t, std::vector<uint32_t>> buckets;
    buckets.reserve(build.num_rows * 2);
    for (size_t j = 0; j < build.num_rows; ++j) {
      buckets[HashKeysAt(build, rkeys_, j)].push_back(
          static_cast<uint32_t>(j));
      XQJG_RETURN_NOT_OK(ctx_->clock.Tick());
    }
    // Stream the partition's probe rows in chunks.
    std::vector<Value> out_row(2 + lw_ + rw_);
    for (;;) {
      std::vector<ValueColumn> pcols(lw_);
      std::vector<int64_t> pseqs;
      for (size_t n = 0; n < kStreamRows; ++n) {
        XQJG_ASSIGN_OR_RETURN(bool more,
                              SpillReadRow(&pf, row.data(), lw_ + 1));
        if (!more) break;
        pseqs.push_back(row[0].AsInt());
        for (size_t c = 0; c < lw_; ++c) pcols[c].Append(row[c + 1]);
        XQJG_RETURN_NOT_OK(ctx_->clock.Tick());
      }
      if (pseqs.empty()) break;
      ColumnBatch probe;
      probe.schema = op_->children[0]->schema;
      probe.num_rows = pseqs.size();
      for (ValueColumn& c : pcols) {
        probe.cols.push_back(
            std::make_shared<const ValueColumn>(std::move(c)));
      }
      std::vector<CompiledJoinCmp> res;
      res.reserve(residual_.size());
      for (const auto& cmp : residual_) {
        res.push_back(CompileJoinCmp(cmp, probe, build, ctx_->params));
      }
      for (size_t l = 0; l < probe.num_rows; ++l) {
        XQJG_RETURN_NOT_OK(ctx_->clock.Tick());
        auto it = buckets.find(HashKeysAt(probe, lkeys_, l));
        if (it == buckets.end()) continue;
        for (uint32_t j : it->second) {
          if (!KeysEqual(probe, lkeys_, l, build, rkeys_, j)) continue;
          bool pass = true;
          for (const CompiledJoinCmp& c : res) {
            if (!JoinCmpPasses(c, l, j)) {
              pass = false;
              break;
            }
          }
          if (!pass) continue;
          out_row[0] = Value::Int(pseqs[l]);
          out_row[1] = Value::Int(bseqs[j]);
          for (size_t c = 0; c < lw_; ++c) {
            out_row[2 + c] = probe.cols[c]->GetValue(l);
          }
          for (size_t c = 0; c < rw_; ++c) {
            out_row[2 + lw_ + c] = build.cols[c]->GetValue(j);
          }
          XQJG_RETURN_NOT_OK(sorter_->Add(out_row));
          XQJG_RETURN_NOT_OK(
              ctx_->clock.TickRows(rows_out_ + sorter_->total_rows()));
        }
      }
    }
    bf.Close();
    pf.Close();
    return Status::OK();
  }

  /// In-memory probe of one left window against the retained build side.
  Result<bool> ProbeBatch(const ColumnBatch& left, ColumnBatch* out) {
    if (left.num_rows > kMaxBatchRows) {
      return Status::Internal("join input exceeds batch row limit");
    }
    // Residual comparisons bind per (probe window, build batch) pair.
    std::vector<std::vector<CompiledJoinCmp>> res(build_bufs_.size());
    for (size_t bi = 0; bi < build_bufs_.size(); ++bi) {
      res[bi].reserve(residual_.size());
      for (const auto& cmp : residual_) {
        res[bi].push_back(
            CompileJoinCmp(cmp, left, *build_bufs_[bi], ctx_->params));
      }
    }
    std::vector<uint32_t> lidx;
    std::vector<BuildRef> rrefs;
    auto match = [&](size_t lp, const BuildRef& ref) -> bool {
      for (const CompiledJoinCmp& c : res[ref.batch]) {
        if (!JoinCmpPasses(c, lp, ref.phys)) return false;
      }
      return true;
    };
    if (!lkeys_.empty()) {
      const size_t ln = left.num_rows;
      if (ctx_->threads > 1 && ln >= kParallelRowCutoff) {
        // Shared read-only probe: morsels over the window's rows append
        // into private pair slices, concatenated in morsel order.
        const size_t morsels = MorselCount(ln);
        std::vector<std::vector<uint32_t>> lparts(morsels);
        std::vector<std::vector<BuildRef>> rparts(morsels);
        RegionBudget budget(ctx_->clock);
        parallel::WorkerPool::Instance().ParallelFor(
            ctx_->threads, morsels, [&](size_t m, int) {
              BudgetClock wclock = budget.Worker();
              std::vector<uint32_t>& ld = lparts[m];
              std::vector<BuildRef>& rd = rparts[m];
              auto run = [&]() -> Status {
                const size_t end = std::min(ln, (m + 1) * kMorselRows);
                for (size_t l = m * kMorselRows; l < end; ++l) {
                  XQJG_RETURN_NOT_OK(wclock.Tick());
                  const size_t lp = left.PhysRow(l);
                  if (AnyKeyNull(left, lkeys_, lp)) continue;
                  auto it = buckets_.find(HashKeysAt(left, lkeys_, lp));
                  if (it == buckets_.end()) continue;
                  for (const BuildRef& ref : it->second) {
                    const ColumnBatch& rb = *build_bufs_[ref.batch];
                    if (!KeysEqual(left, lkeys_, lp, rb, rkeys_,
                                   ref.phys)) {
                      continue;
                    }
                    if (!match(lp, ref)) continue;
                    ld.push_back(static_cast<uint32_t>(lp));
                    rd.push_back(ref);
                    XQJG_RETURN_NOT_OK(
                        wclock.TickRows(static_cast<int64_t>(ld.size())));
                  }
                }
                return wclock.FinishLocalRows(
                    static_cast<int64_t>(ld.size()));
              };
              Status st = run();
              if (!st.ok()) budget.Abort(st);
            });
        XQJG_RETURN_NOT_OK(budget.status());
        size_t total = 0;
        for (const auto& part : lparts) total += part.size();
        lidx.reserve(total);
        rrefs.reserve(total);
        for (size_t m = 0; m < morsels; ++m) {
          lidx.insert(lidx.end(), lparts[m].begin(), lparts[m].end());
          rrefs.insert(rrefs.end(), rparts[m].begin(), rparts[m].end());
        }
      } else {
        for (size_t l = 0; l < ln; ++l) {
          XQJG_RETURN_NOT_OK(ctx_->clock.Tick());
          const size_t lp = left.PhysRow(l);
          if (AnyKeyNull(left, lkeys_, lp)) continue;
          auto it = buckets_.find(HashKeysAt(left, lkeys_, lp));
          if (it == buckets_.end()) continue;
          for (const BuildRef& ref : it->second) {
            const ColumnBatch& rb = *build_bufs_[ref.batch];
            if (!KeysEqual(left, lkeys_, lp, rb, rkeys_, ref.phys)) {
              continue;
            }
            if (!match(lp, ref)) continue;
            lidx.push_back(static_cast<uint32_t>(lp));
            rrefs.push_back(ref);
            XQJG_RETURN_NOT_OK(ctx_->clock.TickRows(
                rows_out_ + static_cast<int64_t>(lidx.size())));
          }
        }
      }
    } else {
      // Cross / residual-only: nested loop over the retained build
      // batches in arrival order.
      for (size_t l = 0; l < left.num_rows; ++l) {
        XQJG_RETURN_NOT_OK(ctx_->clock.Tick());
        const size_t lp = left.PhysRow(l);
        for (size_t bi = 0; bi < build_bufs_.size(); ++bi) {
          const ColumnBatch& rb = *build_bufs_[bi];
          for (size_t j = 0; j < rb.num_rows; ++j) {
            const BuildRef ref{static_cast<uint32_t>(bi),
                               static_cast<uint32_t>(rb.PhysRow(j))};
            if (!match(lp, ref)) continue;
            lidx.push_back(static_cast<uint32_t>(lp));
            rrefs.push_back(ref);
            XQJG_RETURN_NOT_OK(ctx_->clock.TickRows(
                rows_out_ + static_cast<int64_t>(lidx.size())));
          }
        }
      }
    }
    if (lidx.empty()) return false;
    if (lidx.size() > kMaxBatchRows) {
      return Status::Internal("join output exceeds batch row limit");
    }
    out->schema = op_->schema;
    out->num_rows = lidx.size();
    const size_t ncols = lw_ + rw_;
    out->cols.resize(ncols);
    // Each gather writes its own pre-sized slot, so columns materialize
    // independently. Pairs were admitted above.
    // xqjg-lint: allow(no-budget-guard)
    auto build_col = [&](size_t c) {
      if (c < lw_) {
        out->cols[c] =
            std::make_shared<const ValueColumn>(left.cols[c]->Gather(lidx));
        return;
      }
      ValueColumn col;
      col.Reserve(rrefs.size());
      for (const BuildRef& ref : rrefs) {
        col.AppendFrom(*build_bufs_[ref.batch]->cols[c - lw_], ref.phys);
      }
      out->cols[c] = std::make_shared<const ValueColumn>(std::move(col));
    };
    if (ctx_->threads > 1 && ncols > 1 &&
        lidx.size() >= kParallelRowCutoff) {
      parallel::WorkerPool::Instance().ParallelFor(
          ctx_->threads, ncols, [&](size_t c, int) { build_col(c); });
    } else {
      for (size_t c = 0; c < ncols; ++c) build_col(c);
    }
    return true;
  }

  const Op* op_;
  std::unique_ptr<BatchStream> left_;
  std::unique_ptr<BatchStream> right_;
  MemoryCharge charge_;
  bool primed_ = false;
  size_t lw_ = 0;
  size_t rw_ = 0;
  std::vector<int> lkeys_, rkeys_;
  std::vector<Comparison> residual_;
  // In-memory build state.
  std::vector<std::shared_ptr<const ColumnBatch>> build_bufs_;
  std::unordered_map<size_t, std::vector<BuildRef>> buckets_;
  size_t build_rows_ = 0;
  // Grace state.
  bool spilling_ = false;
  std::vector<SpillFile> build_parts_;
  std::vector<SpillFile> probe_parts_;
  int64_t bseq_ = 0;
  int64_t build_spill_reported_ = 0;
  int64_t probe_spill_reported_ = 0;
  std::unique_ptr<ExternalValueSorter> sorter_;
};

/// δ — duplicate elimination. A breaker: survivors cannot be declared
/// final until every row has been seen... they can, actually (a first
/// occurrence survives no matter what follows), but the old executor
/// emitted them against the whole input and the differential contract
/// pins that shape, so Prime() consumes the child. In memory the input
/// batches are retained (charged) and deduped with cross-batch bucket
/// probes; under pressure the rows hash-partition to disk, each partition
/// dedups independently, and survivors merge back in first-occurrence
/// order by their arrival sequence number.
class DistinctStream final : public UnaryStream {
 public:
  DistinctStream(PipelineCtx* ctx, const Op* op,
                 std::unique_ptr<BatchStream> child)
      : UnaryStream(ctx, "distinct", op, std::move(child)),
        charge_(&ctx->budget) {}

  Status Prime() override {
    if (primed_) return Status::OK();
    primed_ = true;
    XQJG_RETURN_NOT_OK(child_->Prime());
    arity_ = op_->children[0]->schema.size();
    all_.resize(arity_);
    std::iota(all_.begin(), all_.end(), 0);
    for (;;) {
      ColumnBatch in;
      XQJG_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
      if (!more) break;
      if (in.num_rows == 0) continue;
      if (spilling_) {
        XQJG_RETURN_NOT_OK(SpillBatch(in));
        continue;
      }
      buffered_rows_ += in.num_rows;
      if (buffered_rows_ > kMaxBatchRows) {
        return Status::Internal("distinct input exceeds batch row limit");
      }
      charge_.Add(ApproxBatchBytes(in));
      bufs_.push_back(std::make_shared<const ColumnBatch>(std::move(in)));
      if (ctx_->budget.ShouldSpill() && buffered_rows_ >= kMinSpillRows) {
        XQJG_RETURN_NOT_OK(StartSpill());
      }
    }
    if (spilling_) return FinishSpill();
    return FinishInMemory();
  }

 protected:
  Result<bool> NextImpl(ColumnBatch* out) override {
    if (sorter_) return SorterWindow(sorter_.get(), 1, op_->schema, out);
    if (next_ >= keep_.size()) return false;
    const size_t end = std::min(keep_.size(), next_ + kStreamRows);
    std::vector<ValueColumn> cols(arity_);
    // Survivor gather; rows were admitted during Prime.
    // xqjg-lint: allow(no-budget-guard)
    for (size_t i = next_; i < end; ++i) {
      const RowRef& ref = keep_[i];
      const ColumnBatch& b = *bufs_[ref.batch];
      const size_t p = b.PhysRow(ref.row);
      for (size_t c = 0; c < arity_; ++c) cols[c].AppendFrom(*b.cols[c], p);
    }
    out->schema = op_->schema;
    out->num_rows = end - next_;
    for (ValueColumn& c : cols) {
      out->cols.push_back(std::make_shared<const ValueColumn>(std::move(c)));
    }
    next_ = end;
    return true;
  }

 private:
  struct RowRef {
    uint32_t batch;
    uint32_t row;  ///< logical row within the batch
  };

  bool RefEqual(const RowRef& a, const RowRef& b) const {
    const ColumnBatch& ba = *bufs_[a.batch];
    const ColumnBatch& bb = *bufs_[b.batch];
    const size_t pa = ba.PhysRow(a.row);
    const size_t pb = bb.PhysRow(b.row);
    for (size_t c = 0; c < arity_; ++c) {
      // Distinct treats NULLs as duplicates of each other (unlike join
      // keys): ValueColumn::EqualAt mirrors Value::operator==.
      if (!ValueColumn::EqualAt(*ba.cols[c], pa, *bb.cols[c], pb)) {
        return false;
      }
    }
    return true;
  }

  Status FinishInMemory() {
    std::unordered_map<size_t, std::vector<RowRef>> buckets;
    for (size_t bi = 0; bi < bufs_.size(); ++bi) {
      const ColumnBatch& b = *bufs_[bi];
      for (size_t r = 0; r < b.num_rows; ++r) {
        XQJG_RETURN_NOT_OK(ctx_->clock.Tick());
        const RowRef ref{static_cast<uint32_t>(bi),
                         static_cast<uint32_t>(r)};
        auto& bucket = buckets[HashKeysAt(b, all_, b.PhysRow(r))];
        bool dup = false;
        for (const RowRef& seen : bucket) {
          if (RefEqual(seen, ref)) {
            dup = true;
            break;
          }
        }
        if (!dup) {
          bucket.push_back(ref);
          keep_.push_back(ref);
        }
      }
    }
    return Status::OK();
  }

  /// Grace handover: re-route the retained rows to hash partitions.
  Status StartSpill() {
    spilling_ = true;
    parts_.resize(kSpillPartitions);
    for (const auto& b : bufs_) XQJG_RETURN_NOT_OK(SpillBatch(*b));
    bufs_.clear();
    charge_.Reset();
    return Status::OK();
  }

  Status SpillBatch(const ColumnBatch& in) {
    std::vector<Value> row(arity_ + 1);
    for (size_t r = 0; r < in.num_rows; ++r) {
      const size_t p = in.PhysRow(r);
      row[0] = Value::Int(seq_++);
      for (size_t c = 0; c < arity_; ++c) {
        row[c + 1] = in.cols[c]->GetValue(p);
      }
      const size_t part = SpillPartition(HashKeysAt(in, all_, p));
      XQJG_RETURN_NOT_OK(SpillAppendRow(&parts_[part], row.data(), arity_ + 1));
      XQJG_RETURN_NOT_OK(ctx_->clock.Tick());
    }
    int64_t total = 0;
    for (const SpillFile& f : parts_) total += f.bytes_written();
    if (total > spill_reported_) {
      ctx_->NoteSpill(total - spill_reported_);
      spill_reported_ = total;
    }
    return Status::OK();
  }

  /// Each partition holds every copy of any value it holds at all, so
  /// partitions dedup independently; survivors merge back in arrival
  /// order through a sorter keyed on the sequence number.
  Status FinishSpill() {
    sorter_ = MakeSorter(ctx_, arity_ + 1, {0});
    std::vector<Value> row(arity_ + 1);
    for (SpillFile& part : parts_) {
      if (part.rows() == 0) continue;
      XQJG_RETURN_NOT_OK(part.Rewind());
      // Rebuild the partition as one batch (charged while live) and run
      // the exact in-memory dedup over it.
      std::vector<ValueColumn> cols(arity_);
      std::vector<int64_t> seqs;
      for (;;) {
        XQJG_ASSIGN_OR_RETURN(bool more,
                              SpillReadRow(&part, row.data(), arity_ + 1));
        if (!more) break;
        seqs.push_back(row[0].AsInt());
        for (size_t c = 0; c < arity_; ++c) cols[c].Append(row[c + 1]);
        XQJG_RETURN_NOT_OK(ctx_->clock.Tick());
      }
      ColumnBatch b;
      b.schema = op_->children[0]->schema;
      b.num_rows = seqs.size();
      for (ValueColumn& c : cols) {
        b.cols.push_back(std::make_shared<const ValueColumn>(std::move(c)));
      }
      MemoryCharge charge(&ctx_->budget);
      charge.Add(ApproxBatchBytes(b));
      std::unordered_map<size_t, std::vector<uint32_t>> buckets;
      for (size_t r = 0; r < b.num_rows; ++r) {
        XQJG_RETURN_NOT_OK(ctx_->clock.Tick());
        auto& bucket = buckets[HashKeysAt(b, all_, r)];
        bool dup = false;
        for (uint32_t j : bucket) {
          bool eq = true;
          for (const ColumnRef& col : b.cols) {
            if (!ValueColumn::EqualAt(*col, r, *col, j)) {
              eq = false;
              break;
            }
          }
          if (eq) {
            dup = true;
            break;
          }
        }
        if (dup) continue;
        bucket.push_back(static_cast<uint32_t>(r));
        row[0] = Value::Int(seqs[r]);
        for (size_t c = 0; c < arity_; ++c) row[c + 1] = b.cols[c]->GetValue(r);
        XQJG_RETURN_NOT_OK(sorter_->Add(row));
      }
      part.Close();
    }
    parts_.clear();
    return sorter_->Finish();
  }

  MemoryCharge charge_;
  bool primed_ = false;
  size_t arity_ = 0;
  std::vector<int> all_;
  size_t buffered_rows_ = 0;
  std::vector<std::shared_ptr<const ColumnBatch>> bufs_;
  std::vector<RowRef> keep_;
  size_t next_ = 0;
  // Grace state.
  bool spilling_ = false;
  std::vector<SpillFile> parts_;
  int64_t seq_ = 0;
  int64_t spill_reported_ = 0;
  std::unique_ptr<ExternalValueSorter> sorter_;
};

// ---------------------------------------------------------------------------
// Pipeline construction. Leaf relations and shared sub-DAGs materialize
// once (memoized, like the old evaluator) and re-stream per consumer;
// single-consumer interior operators become live streams.

class PipelineBuilder {
 public:
  explicit PipelineBuilder(PipelineCtx* ctx) : ctx_(ctx) {}

  Result<std::unique_ptr<BatchStream>> BuildRoot(const Op* op) {
    CountConsumers(op);
    return Build(op);
  }

 private:
  void CountConsumers(const Op* op) {
    for (const auto& child : op->children) {
      const bool first = consumers_.find(child.get()) == consumers_.end();
      ++consumers_[child.get()];
      if (first) CountConsumers(child.get());
    }
  }

  Result<std::unique_ptr<BatchStream>> Build(const Op* op) {
    if (op->kind == OpKind::kDocTable || op->kind == OpKind::kLiteral ||
        consumers_[op] > 1) {
      XQJG_ASSIGN_OR_RETURN(std::shared_ptr<const ColumnBatch> batch,
                            Materialize(op));
      std::unique_ptr<BatchStream> s =
          std::make_unique<SliceStream>(ctx_, std::move(batch));
      return s;
    }
    return BuildOperator(op);
  }

  Result<std::unique_ptr<BatchStream>> BuildOperator(const Op* op) {
    std::unique_ptr<BatchStream> s;
    switch (op->kind) {
      case OpKind::kDocTable:
      case OpKind::kLiteral:
        // Handled in Build() (always memoized); unreachable here.
        return Status::Internal("leaf operator in BuildOperator");
      case OpKind::kSerialize: {
        XQJG_ASSIGN_OR_RETURN(auto child, Build(op->children[0].get()));
        s = std::make_unique<SerializeStream>(ctx_, op, std::move(child));
        return s;
      }
      case OpKind::kProject: {
        XQJG_ASSIGN_OR_RETURN(auto child, Build(op->children[0].get()));
        s = std::make_unique<ProjectStream>(ctx_, op, std::move(child));
        return s;
      }
      case OpKind::kSelect: {
        XQJG_ASSIGN_OR_RETURN(auto child, Build(op->children[0].get()));
        s = std::make_unique<FilterStream>(ctx_, op, std::move(child));
        return s;
      }
      case OpKind::kJoin:
      case OpKind::kCross: {
        XQJG_ASSIGN_OR_RETURN(auto left, Build(op->children[0].get()));
        XQJG_ASSIGN_OR_RETURN(auto right, Build(op->children[1].get()));
        s = std::make_unique<HashJoinStream>(ctx_, op, std::move(left),
                                             std::move(right));
        return s;
      }
      case OpKind::kDistinct: {
        XQJG_ASSIGN_OR_RETURN(auto child, Build(op->children[0].get()));
        s = std::make_unique<DistinctStream>(ctx_, op, std::move(child));
        return s;
      }
      case OpKind::kAttach: {
        XQJG_ASSIGN_OR_RETURN(auto child, Build(op->children[0].get()));
        s = std::make_unique<AttachStream>(ctx_, op, std::move(child));
        return s;
      }
      case OpKind::kRowId: {
        XQJG_ASSIGN_OR_RETURN(auto child, Build(op->children[0].get()));
        s = std::make_unique<RowIdStream>(ctx_, op, std::move(child));
        return s;
      }
      case OpKind::kRank: {
        XQJG_ASSIGN_OR_RETURN(auto child, Build(op->children[0].get()));
        s = std::make_unique<RankStream>(ctx_, op, std::move(child));
        return s;
      }
    }
    return Status::Internal("unhandled operator in columnar pipeline");
  }

  /// Evaluates `op` to one memoized batch: leaves build directly, shared
  /// interior nodes drain their own sub-pipeline. Doc relation bytes are
  /// source data (resident regardless of the plan), so only drained
  /// sub-DAGs charge the governor.
  Result<std::shared_ptr<const ColumnBatch>> Materialize(const Op* op) {
    auto it = memo_.find(op);
    if (it != memo_.end()) return it->second;
    XQJG_RETURN_NOT_OK(ctx_->clock.CheckRows(0));
    ColumnBatch batch;
    if (op->kind == OpKind::kDocTable) {
      XQJG_ASSIGN_OR_RETURN(batch, DocRelationBatch(ctx_->doc, &ctx_->clock));
    } else if (op->kind == OpKind::kLiteral) {
      batch = LiteralBatch(op);
    } else {
      XQJG_ASSIGN_OR_RETURN(std::unique_ptr<BatchStream> stream,
                            BuildOperator(op));
      XQJG_RETURN_NOT_OK(stream->Prime());
      MemoryCharge charge(&ctx_->budget);
      XQJG_ASSIGN_OR_RETURN(
          batch, DrainStreamDense(stream.get(), op->schema, &charge));
      charges_.push_back(std::move(charge));
    }
    if (ctx_->dcheck_batches) {
      XQJG_RETURN_NOT_OK(opt::CheckColumnBatch(
          batch, algebra::OpKindToString(op->kind)));
    }
    XQJG_RETURN_NOT_OK(
        ctx_->clock.CheckRows(static_cast<int64_t>(batch.num_rows)));
    if (ctx_->stats &&
        (op->kind == OpKind::kDocTable || op->kind == OpKind::kLiteral)) {
      // Interior nodes were counted by the streams that drained them.
      ctx_->stats->tuples_materialized +=
          static_cast<int64_t>(batch.num_rows);
    }
    auto ref = std::make_shared<const ColumnBatch>(std::move(batch));
    memo_[op] = ref;
    return ref;
  }

  PipelineCtx* ctx_;
  std::unordered_map<const Op*, int> consumers_;
  std::unordered_map<const Op*, std::shared_ptr<const ColumnBatch>> memo_;
  /// Outstanding charges for memoized shared sub-DAGs (tracked for the
  /// pipeline's lifetime; released on destruction).
  std::vector<MemoryCharge> charges_;
};

/// Extracts the item column of a serialize output window as int64 pre
/// ranks (exit extraction of rows the pipeline already budget-admitted).
Status AppendItems(const ColumnBatch& b, int item_idx,
                   std::vector<int64_t>* out) {
  const ValueColumn& item = *b.cols[static_cast<size_t>(item_idx)];
  if (item.tag() == ColumnTag::kInt && !item.has_nulls() && !b.sel &&
      item.size() == b.num_rows) {
    out->insert(out->end(), item.ints().begin(), item.ints().end());
    return Status::OK();
  }
  // xqjg-lint: allow(no-budget-guard)
  for (size_t r = 0; r < b.num_rows; ++r) {
    Value v = item.GetValue(b.PhysRow(r));
    if (v.is_null()) {
      return Status::Internal("NULL item in result sequence");
    }
    out->push_back(v.type() == ValueType::kInt
                       ? v.AsInt()
                       : static_cast<int64_t>(v.AsDouble()));
  }
  return Status::OK();
}

/// The live pipeline behind an open cursor: pulls serialize windows on
/// demand and buffers only the current window's items.
class ColumnarSequenceStream final : public SequenceStream {
 public:
  ColumnarSequenceStream(OpPtr plan, std::unique_ptr<PipelineCtx> ctx,
                         std::unique_ptr<PipelineBuilder> builder,
                         std::unique_ptr<BatchStream> root, int item_idx,
                         int64_t rows_total)
      : plan_(std::move(plan)),
        ctx_(std::move(ctx)),
        builder_(std::move(builder)),
        root_(std::move(root)),
        item_idx_(item_idx),
        rows_total_(rows_total) {}

  int64_t rows_total() const override { return rows_total_; }

  Status Next(size_t max_rows, std::vector<int64_t>* out) override {
    while (buf_.size() < max_rows && !done_) {
      ColumnBatch b;
      XQJG_ASSIGN_OR_RETURN(bool more, root_->Next(&b));
      if (!more) {
        done_ = true;
        break;
      }
      XQJG_RETURN_NOT_OK(AppendItems(b, item_idx_, &buf_));
      ctx_->SyncPeak();
    }
    const size_t n = std::min(max_rows, buf_.size());
    out->insert(out->end(), buf_.begin(),
                buf_.begin() + static_cast<ptrdiff_t>(n));
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(n));
    return Status::OK();
  }

  int64_t retained_bytes() const override { return ctx_->budget.used(); }

 private:
  algebra::OpPtr plan_;  ///< keeps the Op DAG alive under the streams
  std::unique_ptr<PipelineCtx> ctx_;
  std::unique_ptr<PipelineBuilder> builder_;  ///< owns memoized batches
  std::unique_ptr<BatchStream> root_;
  int item_idx_;
  int64_t rows_total_;
  std::vector<int64_t> buf_;
  bool done_ = false;
};

}  // namespace

Result<MatTable> EvaluateColumnar(const OpPtr& plan, const xml::DocTable& doc,
                                  const ExecOptions& options) {
  PipelineCtx ctx(doc, options);
  PipelineBuilder builder(&ctx);
  XQJG_ASSIGN_OR_RETURN(std::unique_ptr<BatchStream> root,
                        builder.BuildRoot(plan.get()));
  XQJG_RETURN_NOT_OK(root->Prime());
  XQJG_ASSIGN_OR_RETURN(ColumnBatch out,
                        DrainStreamDense(root.get(), plan->schema, nullptr));
  ctx.SyncPeak();
  MatTable table = BatchToMatTable(out);
  if (options.stats) {
    options.stats->rows_out = static_cast<int64_t>(table.rows.size());
  }
  return table;
}

Result<std::vector<int64_t>> EvaluateToSequenceColumnar(
    const OpPtr& plan, const xml::DocTable& doc, const ExecOptions& options) {
  if (plan->kind != OpKind::kSerialize) {
    return Status::InvalidArgument("expected a serialize-rooted plan");
  }
  PipelineCtx ctx(doc, options);
  PipelineBuilder builder(&ctx);
  XQJG_ASSIGN_OR_RETURN(std::unique_ptr<BatchStream> root,
                        builder.BuildRoot(plan.get()));
  XQJG_RETURN_NOT_OK(root->Prime());
  const int item_idx = SchemaIndex(plan->schema, plan->col);
  if (item_idx < 0) return Status::Internal("serialize item column missing");
  std::vector<int64_t> out;
  if (root->total_rows() > 0) {
    out.reserve(static_cast<size_t>(root->total_rows()));
  }
  for (;;) {
    ColumnBatch b;
    XQJG_ASSIGN_OR_RETURN(bool more, root->Next(&b));
    if (!more) break;
    XQJG_RETURN_NOT_OK(AppendItems(b, item_idx, &out));
  }
  ctx.SyncPeak();
  if (options.stats) {
    options.stats->rows_out = static_cast<int64_t>(out.size());
  }
  return out;
}

Result<std::unique_ptr<SequenceStream>> OpenSequenceStreamColumnar(
    const OpPtr& plan, const xml::DocTable& doc, const ExecOptions& options) {
  if (plan->kind != OpKind::kSerialize) {
    return Status::InvalidArgument("expected a serialize-rooted plan");
  }
  auto ctx = std::make_unique<PipelineCtx>(doc, options);
  auto builder = std::make_unique<PipelineBuilder>(ctx.get());
  XQJG_ASSIGN_OR_RETURN(std::unique_ptr<BatchStream> root,
                        builder->BuildRoot(plan.get()));
  // Priming runs the pipeline through its final sort breaker: the result
  // cardinality is known here, and everything left for the cursor's pulls
  // is window emission (merge + gather + item extraction).
  XQJG_RETURN_NOT_OK(root->Prime());
  const int item_idx = SchemaIndex(plan->schema, plan->col);
  if (item_idx < 0) return Status::Internal("serialize item column missing");
  ctx->SyncPeak();
  const int64_t total = root->total_rows();
  if (options.stats) options.stats->rows_out = total;
  std::unique_ptr<SequenceStream> stream =
      std::make_unique<ColumnarSequenceStream>(plan, std::move(ctx),
                                               std::move(builder),
                                               std::move(root), item_idx,
                                               total);
  return stream;
}

}  // namespace xqjg::engine::columnar
