#include "src/engine/columnar/columnar_exec.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "src/common/str.h"
#include "src/engine/columnar/column_batch.h"
#include "src/engine/parallel/worker_pool.h"
#include "src/opt/plan_check.h"

namespace xqjg::engine::columnar {

using algebra::CmpOp;
using algebra::Comparison;
using algebra::Op;
using algebra::OpKind;
using algebra::OpPtr;
using algebra::Term;

namespace {

// ---------------------------------------------------------------------------
// Term / comparison compilation. A Comparison is bound once per batch (column
// name -> ValueColumn*), then evaluated per row; conjuncts whose columns are
// all null-free int64 compile to a branch-light integer kernel.

/// A term bound against one batch (single-input operators).
struct BoundTerm {
  const ValueColumn* col = nullptr;
  const ValueColumn* col2 = nullptr;
  bool missing = false;  ///< a named column is absent from the schema
  Value constant;
};

BoundTerm BindTerm(const Term& term, const ColumnBatch& batch) {
  BoundTerm b;
  b.constant = term.constant;
  auto resolve = [&](const std::string& name, const ValueColumn** out) {
    if (name.empty()) return;
    int idx = batch.ColumnIndex(name);
    if (idx < 0) {
      b.missing = true;
      return;
    }
    *out = batch.cols[static_cast<size_t>(idx)].get();
  };
  resolve(term.col, &b.col);
  resolve(term.col2, &b.col2);
  return b;
}

/// Mirrors EvalTerm in algebra_exec.cpp: Σ cols + constant, NULL-poisoning,
/// int+int stays int, any other numeric mix widens to double, non-numeric
/// addition is undefined (NULL).
Value BoundTermValue(const BoundTerm& t, size_t row) {
  if (t.missing) return Value::Null();
  Value acc = t.constant;
  bool have = !acc.is_null();
  auto add = [&](const ValueColumn* c) -> bool {
    if (!c) return true;
    if (c->IsNull(row)) {
      acc = Value::Null();
      return false;
    }
    return AccumulateTermValue(&acc, &have, c->GetValue(row));
  };
  if (!add(t.col)) return Value::Null();
  if (!add(t.col2)) return Value::Null();
  return acc;
}

/// Integer fast-path view of a BoundTerm: valid when every referenced
/// column is null-free int64 and the constant (if any) is an int.
struct FastIntTerm {
  bool ok = false;
  const int64_t* a = nullptr;
  const int64_t* b = nullptr;
  int64_t k = 0;
};

FastIntTerm FastInt(const BoundTerm& t) {
  FastIntTerm f;
  if (t.missing) return f;
  if (!t.col && !t.col2 && t.constant.is_null()) return f;  // NULL term
  if (!t.constant.is_null()) {
    if (t.constant.type() != ValueType::kInt) return f;
    f.k = t.constant.AsInt();
  }
  auto use = [](const ValueColumn* c, const int64_t** out) {
    if (!c) return true;
    if (c->tag() != ColumnTag::kInt || c->has_nulls()) return false;
    *out = c->ints().data();
    return true;
  };
  if (!use(t.col, &f.a) || !use(t.col2, &f.b)) return f;
  f.ok = true;
  return f;
}

inline int64_t FastIntValue(const FastIntTerm& f, size_t row) {
  int64_t v = f.k;
  if (f.a) v += f.a[row];
  if (f.b) v += f.b[row];
  return v;
}

inline bool IntPasses(int64_t a, CmpOp op, int64_t b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

/// Dictionary equality fast path: `dict_col = 'const'` (or ≠) compiles to
/// the shared DictEqKernel (common/value_column.h — one uint32 compare
/// per row, same kernel the physical-plan executors use via qual_eval.h).
DictEqKernel FastDict(const BoundTerm& lhs, const BoundTerm& rhs, CmpOp op) {
  if (op != CmpOp::kEq && op != CmpOp::kNe) return {};
  auto single_dict_col = [](const BoundTerm& t) -> const ValueColumn* {
    if (t.missing || !t.col || t.col2 || !t.constant.is_null()) {
      return nullptr;
    }
    return t.col->tag() == ColumnTag::kDictString ? t.col : nullptr;
  };
  auto string_const = [](const BoundTerm& t) {
    return !t.missing && !t.col && !t.col2 &&
           t.constant.type() == ValueType::kString;
  };
  if (single_dict_col(lhs) && string_const(rhs)) {
    return DictEqKernel::Compile(*lhs.col, rhs.constant.AsString(),
                                 op == CmpOp::kNe);
  }
  if (single_dict_col(rhs) && string_const(lhs)) {
    return DictEqKernel::Compile(*rhs.col, lhs.constant.AsString(),
                                 op == CmpOp::kNe);
  }
  return {};
}

struct CompiledCmp {
  BoundTerm lhs, rhs;
  FastIntTerm fast_lhs, fast_rhs;
  DictEqKernel fast_dict;
  CmpOp op = CmpOp::kEq;
  bool fast = false;
};

CompiledCmp CompileCmp(const Comparison& cmp, const ColumnBatch& batch,
                       const std::vector<Value>* params) {
  CompiledCmp c;
  // Parameter markers substitute their bound Value before binding, so a
  // bound string parameter still reaches the dictionary fast path. The
  // common unparameterized case pays no Term copy.
  c.lhs = params ? BindTerm(algebra::ResolveParams(cmp.lhs, params), batch)
                 : BindTerm(cmp.lhs, batch);
  c.rhs = params ? BindTerm(algebra::ResolveParams(cmp.rhs, params), batch)
                 : BindTerm(cmp.rhs, batch);
  c.op = cmp.op;
  c.fast_lhs = FastInt(c.lhs);
  c.fast_rhs = FastInt(c.rhs);
  c.fast = c.fast_lhs.ok && c.fast_rhs.ok;
  c.fast_dict = FastDict(c.lhs, c.rhs, c.op);
  return c;
}

/// `row` is a PHYSICAL row index of the batch the comparison was compiled
/// against (callers translate through ColumnBatch::PhysRow).
inline bool CmpPasses(const CompiledCmp& c, size_t row) {
  if (c.fast_dict.ok) return c.fast_dict.Test(row);
  if (c.fast) {
    return IntPasses(FastIntValue(c.fast_lhs, row), c.op,
                     FastIntValue(c.fast_rhs, row));
  }
  return CompareValues(BoundTermValue(c.lhs, row), c.op,
                       BoundTermValue(c.rhs, row));
}

// --- Join-side variants: a term bound against (left, right) batches. ------

struct JoinColRef {
  const ValueColumn* col = nullptr;
  bool left = true;
};

struct JoinBoundTerm {
  JoinColRef a, b;  ///< term.col / term.col2
  bool missing = false;
  Value constant;
};

JoinBoundTerm BindJoinTerm(const Term& term, const ColumnBatch& left,
                           const ColumnBatch& right) {
  JoinBoundTerm t;
  t.constant = term.constant;
  auto resolve = [&](const std::string& name, JoinColRef* out) {
    if (name.empty()) return;
    int idx = left.ColumnIndex(name);
    if (idx >= 0) {
      out->col = left.cols[static_cast<size_t>(idx)].get();
      out->left = true;
      return;
    }
    idx = right.ColumnIndex(name);
    if (idx >= 0) {
      out->col = right.cols[static_cast<size_t>(idx)].get();
      out->left = false;
      return;
    }
    t.missing = true;
  };
  resolve(term.col, &t.a);
  resolve(term.col2, &t.b);
  return t;
}

Value JoinTermValue(const JoinBoundTerm& t, size_t lrow, size_t rrow) {
  if (t.missing) return Value::Null();
  Value acc = t.constant;
  bool have = !acc.is_null();
  auto add = [&](const JoinColRef& ref) -> bool {
    if (!ref.col) return true;
    const size_t row = ref.left ? lrow : rrow;
    if (ref.col->IsNull(row)) {
      acc = Value::Null();
      return false;
    }
    return AccumulateTermValue(&acc, &have, ref.col->GetValue(row));
  };
  if (!add(t.a)) return Value::Null();
  if (!add(t.b)) return Value::Null();
  return acc;
}

struct FastIntJoinTerm {
  bool ok = false;
  const int64_t* a = nullptr;
  bool a_left = true;
  const int64_t* b = nullptr;
  bool b_left = true;
  int64_t k = 0;
};

FastIntJoinTerm FastIntJoin(const JoinBoundTerm& t) {
  FastIntJoinTerm f;
  if (t.missing) return f;
  if (!t.a.col && !t.b.col && t.constant.is_null()) return f;
  if (!t.constant.is_null()) {
    if (t.constant.type() != ValueType::kInt) return f;
    f.k = t.constant.AsInt();
  }
  auto use = [](const JoinColRef& ref, const int64_t** out, bool* out_left) {
    if (!ref.col) return true;
    if (ref.col->tag() != ColumnTag::kInt || ref.col->has_nulls()) {
      return false;
    }
    *out = ref.col->ints().data();
    *out_left = ref.left;
    return true;
  };
  if (!use(t.a, &f.a, &f.a_left) || !use(t.b, &f.b, &f.b_left)) return f;
  f.ok = true;
  return f;
}

inline int64_t FastIntJoinValue(const FastIntJoinTerm& f, size_t lrow,
                                size_t rrow) {
  int64_t v = f.k;
  if (f.a) v += f.a[f.a_left ? lrow : rrow];
  if (f.b) v += f.b[f.b_left ? lrow : rrow];
  return v;
}

struct CompiledJoinCmp {
  JoinBoundTerm lhs, rhs;
  FastIntJoinTerm fast_lhs, fast_rhs;
  CmpOp op = CmpOp::kEq;
  bool fast = false;
};

CompiledJoinCmp CompileJoinCmp(const Comparison& cmp, const ColumnBatch& left,
                               const ColumnBatch& right,
                               const std::vector<Value>* params) {
  CompiledJoinCmp c;
  c.lhs = params
              ? BindJoinTerm(algebra::ResolveParams(cmp.lhs, params), left,
                             right)
              : BindJoinTerm(cmp.lhs, left, right);
  c.rhs = params
              ? BindJoinTerm(algebra::ResolveParams(cmp.rhs, params), left,
                             right)
              : BindJoinTerm(cmp.rhs, left, right);
  c.op = cmp.op;
  c.fast_lhs = FastIntJoin(c.lhs);
  c.fast_rhs = FastIntJoin(c.rhs);
  c.fast = c.fast_lhs.ok && c.fast_rhs.ok;
  return c;
}

inline bool JoinCmpPasses(const CompiledJoinCmp& c, size_t lrow, size_t rrow) {
  if (c.fast) {
    return IntPasses(FastIntJoinValue(c.fast_lhs, lrow, rrow), c.op,
                     FastIntJoinValue(c.fast_rhs, lrow, rrow));
  }
  return CompareValues(JoinTermValue(c.lhs, lrow, rrow), c.op,
                       JoinTermValue(c.rhs, lrow, rrow));
}

// ---------------------------------------------------------------------------
// Row hashing over key column sets (same FNV chain as the row executor).

size_t HashKeysAt(const ColumnBatch& batch, const std::vector<int>& keys,
                  size_t row) {
  size_t h = 0xcbf29ce484222325ULL;
  for (int k : keys) {
    h = h * 1099511628211ULL + batch.cols[static_cast<size_t>(k)]->HashAt(row);
  }
  return h;
}

bool AnyKeyNull(const ColumnBatch& batch, const std::vector<int>& keys,
                size_t row) {
  for (int k : keys) {
    if (batch.cols[static_cast<size_t>(k)]->IsNull(row)) return true;
  }
  return false;
}

bool KeysEqual(const ColumnBatch& a, const std::vector<int>& ka, size_t arow,
               const ColumnBatch& b, const std::vector<int>& kb, size_t brow) {
  for (size_t i = 0; i < ka.size(); ++i) {
    const ValueColumn& ca = *a.cols[static_cast<size_t>(ka[i])];
    const ValueColumn& cb = *b.cols[static_cast<size_t>(kb[i])];
    // NULL join keys never match (Value::Compare: NULL is incomparable).
    if (ca.IsNull(arow) || cb.IsNull(brow)) return false;
    if (!ValueColumn::EqualAt(ca, arow, cb, brow)) return false;
  }
  return true;
}

constexpr size_t kMaxBatchRows = std::numeric_limits<uint32_t>::max();

/// Late-materialization density cutoff: a filter stays lazy (publishes a
/// selection vector over the shared physical columns) while survivors
/// keep at least half of the physical row space. Sparser selections
/// compact immediately — downstream operators would otherwise pay
/// scattered access into full-size columns on every probe, which costs
/// more than the one gather saved (measured on the Q2-class DAG plans).
bool KeepLazy(size_t survivors, size_t phys_rows) {
  return survivors * 2 >= phys_rows;
}

/// Morsel geometry for the parallel paths: below the cutoff a fan-out
/// costs more in scheduling than the scan saves; above it, fixed-size
/// morsels keep the shared claim counter cold while giving the pool
/// enough pieces to balance skew.
constexpr size_t kParallelRowCutoff = 2048;
constexpr size_t kMorselRows = 1024;

inline size_t MorselCount(size_t n) {
  return (n + kMorselRows - 1) / kMorselRows;
}



// ---------------------------------------------------------------------------

class ColumnarEvaluator {
 public:
  using BatchRef = std::shared_ptr<const ColumnBatch>;

  ColumnarEvaluator(const xml::DocTable& doc, const ExecOptions& options)
      : doc_(doc),
        clock_(options.limits),
        stats_(options.stats),
        threads_(options.threads),
        params_(options.params) {
    const char* env = std::getenv("XQJG_DCHECK_BATCHES");
    dcheck_batches_ = env && *env && std::string(env) != "0";
  }

  Result<BatchRef> Eval(const Op* op) {
    auto it = memo_.find(op);
    if (it != memo_.end()) return it->second;
    XQJG_RETURN_NOT_OK(clock_.CheckRows(0));
    Result<ColumnBatch> result = EvalUncached(op);
    if (!result.ok()) return result.status();
    if (dcheck_batches_) {
      // Every operator output flows through here (Eval is the memoizing
      // chokepoint), so one check site covers all batch producers.
      XQJG_RETURN_NOT_OK(opt::CheckColumnBatch(
          result.value(), algebra::OpKindToString(op->kind)));
    }
    XQJG_RETURN_NOT_OK(
        clock_.CheckRows(static_cast<int64_t>(result.value().num_rows)));
    auto ref = std::make_shared<const ColumnBatch>(std::move(result).value());
    if (stats_) {
      stats_->tuples_materialized += static_cast<int64_t>(ref->num_rows);
    }
    memo_[op] = ref;
    return ref;
  }

 private:
  Result<ColumnBatch> EvalUncached(const Op* op) {
    switch (op->kind) {
      case OpKind::kDocTable:
        return DocRelationBatch(doc_, &clock_);
      case OpKind::kLiteral:
        return EvalLiteral(op);
      case OpKind::kSerialize:
        return EvalSerialize(op);
      case OpKind::kProject:
        return EvalProject(op);
      case OpKind::kSelect:
        return EvalSelect(op);
      case OpKind::kJoin:
      case OpKind::kCross:
        return EvalJoin(op);
      case OpKind::kDistinct:
        return EvalDistinct(op);
      case OpKind::kAttach:
        return EvalAttach(op);
      case OpKind::kRowId:
        return EvalRowId(op);
      case OpKind::kRank:
        return EvalRank(op);
    }
    return Status::Internal("unhandled operator in columnar Evaluate");
  }

  Result<ColumnBatch> EvalLiteral(const Op* op) {
    ColumnBatch batch;
    batch.schema = op->schema;
    batch.num_rows = op->rows.size();
    for (size_t c = 0; c < op->schema.size(); ++c) {
      ValueColumn col;
      col.Reserve(op->rows.size());
      for (const auto& row : op->rows) col.Append(row[c]);
      batch.cols.push_back(
          std::make_shared<const ValueColumn>(std::move(col)));
    }
    return batch;
  }

  Result<ColumnBatch> EvalProject(const Op* op) {
    XQJG_ASSIGN_OR_RETURN(BatchRef in, Eval(op->children[0].get()));
    ColumnBatch out;
    out.schema = op->schema;
    out.num_rows = in->num_rows;
    out.sel = in->sel;  // lazy rows pass through untouched
    out.cols.reserve(op->proj.size());
    for (const auto& [out_name, src] : op->proj) {
      (void)out_name;
      int idx = in->ColumnIndex(src);
      if (idx < 0) {
        return Status::Internal("projection source missing: " + src);
      }
      out.cols.push_back(in->cols[static_cast<size_t>(idx)]);  // zero copy
    }
    return out;
  }

  Result<ColumnBatch> EvalSelect(const Op* op) {
    XQJG_ASSIGN_OR_RETURN(BatchRef in, Eval(op->children[0].get()));
    if (in->num_rows > kMaxBatchRows) {
      return Status::Internal("select input exceeds batch row limit");
    }
    std::vector<CompiledCmp> cmps;
    cmps.reserve(op->pred.conjuncts.size());
    for (const auto& cmp : op->pred.conjuncts) {
      cmps.push_back(CompileCmp(cmp, *in, params_));
    }
    // Late materialization: the filter produces a selection vector over
    // the shared physical columns — no gather. Chained σ compose by
    // filtering the incoming logical rows (already physical-translated).
    std::vector<uint32_t> sel;
    if (threads_ > 1 && in->num_rows >= kParallelRowCutoff) {
      // Morsel fan-out: each morsel filters its logical row range into a
      // private selection slice; concatenating the slices in morsel order
      // reproduces the serial emission order exactly.
      const size_t n = in->num_rows;
      const size_t morsels = MorselCount(n);
      std::vector<std::vector<uint32_t>> parts(morsels);
      RegionBudget budget(clock_);
      parallel::WorkerPool::Instance().ParallelFor(
          threads_, morsels, [&](size_t m, int) {
            BudgetClock wclock = budget.Worker();
            std::vector<uint32_t>& part = parts[m];
            const size_t end = std::min(n, (m + 1) * kMorselRows);
            for (size_t row = m * kMorselRows; row < end; ++row) {
              const size_t phys = in->PhysRow(row);
              bool pass = true;
              for (const CompiledCmp& c : cmps) {
                if (!CmpPasses(c, phys)) {
                  pass = false;
                  break;
                }
              }
              if (pass) part.push_back(static_cast<uint32_t>(phys));
              Status st = wclock.Tick();
              if (!st.ok()) {
                budget.Abort(st);
                return;
              }
            }
          });
      XQJG_RETURN_NOT_OK(budget.status());
      size_t total = 0;
      for (const auto& part : parts) total += part.size();
      sel.reserve(total);
      for (const auto& part : parts) {
        sel.insert(sel.end(), part.begin(), part.end());
      }
    } else {
      for (size_t row = 0; row < in->num_rows; ++row) {
        const size_t phys = in->PhysRow(row);
        bool pass = true;
        for (const CompiledCmp& c : cmps) {
          if (!CmpPasses(c, phys)) {
            pass = false;
            break;
          }
        }
        if (pass) sel.push_back(static_cast<uint32_t>(phys));
        XQJG_RETURN_NOT_OK(clock_.Tick());
      }
    }
    // Nothing filtered: pass the input through (row set unchanged — no
    // selection vector, no gather).
    if (sel.size() == in->num_rows) {
      ColumnBatch out = *in;
      out.schema = op->schema;
      return out;
    }
    // A zero-column batch has no physical row space to select into; its
    // row count alone carries the result.
    if (in->cols.empty() || !KeepLazy(sel.size(), in->PhysSize())) {
      ColumnBatch out =
          in->cols.empty() ? ColumnBatch{} : GatherPhysicalRows(*in, sel);
      out.schema = op->schema;
      out.num_rows = sel.size();
      return out;
    }
    ColumnBatch out;
    out.schema = op->schema;
    out.cols = in->cols;  // shared — deferred gather
    out.num_rows = sel.size();
    out.sel = std::make_shared<const std::vector<uint32_t>>(std::move(sel));
    return out;
  }

  Result<ColumnBatch> EvalJoin(const Op* op) {
    XQJG_ASSIGN_OR_RETURN(BatchRef left, Eval(op->children[0].get()));
    XQJG_ASSIGN_OR_RETURN(BatchRef right, Eval(op->children[1].get()));
    if (left->num_rows > kMaxBatchRows || right->num_rows > kMaxBatchRows) {
      return Status::Internal("join input exceeds batch row limit");
    }
    // Split the predicate into hashable equality conjuncts and residual
    // comparisons — same classification as the row executor.
    std::vector<int> lkeys, rkeys;
    std::vector<Comparison> residual;
    if (op->kind == OpKind::kJoin) {
      for (const auto& cmp : op->pred.conjuncts) {
        if (cmp.IsColEq()) {
          int li = left->ColumnIndex(cmp.lhs.col);
          int ri = right->ColumnIndex(cmp.rhs.col);
          if (li < 0 && ri < 0) {
            li = left->ColumnIndex(cmp.rhs.col);
            ri = right->ColumnIndex(cmp.lhs.col);
          }
          if (li >= 0 && ri >= 0) {
            lkeys.push_back(li);
            rkeys.push_back(ri);
            continue;
          }
        }
        residual.push_back(cmp);
      }
    }
    std::vector<CompiledJoinCmp> res;
    res.reserve(residual.size());
    for (const auto& cmp : residual) {
      res.push_back(CompileJoinCmp(cmp, *left, *right, params_));
    }
    // The join build/probe is a gather boundary: lazy inputs resolve
    // their selection vectors here — all row indices below are PHYSICAL,
    // so the output gathers read the shared columns directly.
    std::vector<uint32_t> lidx, ridx;
    auto emit = [&](size_t l, size_t r) -> Status {
      for (const CompiledJoinCmp& c : res) {
        if (!JoinCmpPasses(c, l, r)) return Status::OK();
      }
      lidx.push_back(static_cast<uint32_t>(l));
      ridx.push_back(static_cast<uint32_t>(r));
      if ((lidx.size() & 0xFFF) == 0) {
        XQJG_RETURN_NOT_OK(
            clock_.CheckRows(static_cast<int64_t>(lidx.size())));
      }
      return Status::OK();
    };
    if (!lkeys.empty()) {
      // Batch hash join: build on the right, probe left in row order (the
      // row executor's emission order). NULL keys are skipped on both
      // sides — NULL never equals NULL in a join predicate.
      std::unordered_map<size_t, std::vector<uint32_t>> buckets;
      buckets.reserve(right->num_rows * 2);
      if (threads_ > 1 && right->num_rows >= kParallelRowCutoff) {
        // Partitioned parallel build: each partition hashes a contiguous
        // ascending row range into a private table; merging the partials
        // in partition order keeps every bucket's rows ascending — the
        // exact order the serial build produces, so the probe emits
        // identically.
        const size_t rn = right->num_rows;
        const size_t morsels = MorselCount(rn);
        std::vector<std::unordered_map<size_t, std::vector<uint32_t>>> built(
            morsels);
        RegionBudget budget(clock_);
        parallel::WorkerPool::Instance().ParallelFor(
            threads_, morsels, [&](size_t m, int) {
              BudgetClock wclock = budget.Worker();
              auto& local = built[m];
              const size_t end = std::min(rn, (m + 1) * kMorselRows);
              for (size_t j = m * kMorselRows; j < end; ++j) {
                const size_t jp = right->PhysRow(j);
                if (AnyKeyNull(*right, rkeys, jp)) continue;
                local[HashKeysAt(*right, rkeys, jp)].push_back(
                    static_cast<uint32_t>(jp));
                Status st = wclock.Tick();
                if (!st.ok()) {
                  budget.Abort(st);
                  return;
                }
              }
            });
        XQJG_RETURN_NOT_OK(budget.status());
        for (auto& local : built) {
          for (auto& [h, rows] : local) {
            auto& dst = buckets[h];
            dst.insert(dst.end(), rows.begin(), rows.end());
          }
        }
      } else {
        for (size_t j = 0; j < right->num_rows; ++j) {
          const size_t jp = right->PhysRow(j);
          if (AnyKeyNull(*right, rkeys, jp)) continue;
          buckets[HashKeysAt(*right, rkeys, jp)].push_back(
              static_cast<uint32_t>(jp));
          XQJG_RETURN_NOT_OK(clock_.Tick());
        }
      }
      if (threads_ > 1 && left->num_rows >= kParallelRowCutoff) {
        // Shared read-only probe: morsels over the left rows append into
        // private (lidx, ridx) slices, concatenated in morsel order.
        // Worker clocks flush emitted-pair counts into the region's joint
        // row budget (see RegionBudget).
        const size_t ln = left->num_rows;
        const size_t morsels = MorselCount(ln);
        std::vector<std::vector<uint32_t>> lparts(morsels), rparts(morsels);
        RegionBudget budget(clock_);
        parallel::WorkerPool::Instance().ParallelFor(
            threads_, morsels, [&](size_t m, int) {
              BudgetClock wclock = budget.Worker();
              std::vector<uint32_t>& ld = lparts[m];
              std::vector<uint32_t>& rd = rparts[m];
              auto run = [&]() -> Status {
                const size_t end = std::min(ln, (m + 1) * kMorselRows);
                for (size_t l = m * kMorselRows; l < end; ++l) {
                  XQJG_RETURN_NOT_OK(wclock.Tick());
                  const size_t lp = left->PhysRow(l);
                  if (AnyKeyNull(*left, lkeys, lp)) continue;
                  auto it = buckets.find(HashKeysAt(*left, lkeys, lp));
                  if (it == buckets.end()) continue;
                  for (uint32_t jp : it->second) {
                    if (!KeysEqual(*left, lkeys, lp, *right, rkeys, jp)) {
                      continue;
                    }
                    bool pass = true;
                    for (const CompiledJoinCmp& c : res) {
                      if (!JoinCmpPasses(c, lp, jp)) {
                        pass = false;
                        break;
                      }
                    }
                    if (!pass) continue;
                    ld.push_back(static_cast<uint32_t>(lp));
                    rd.push_back(jp);
                    XQJG_RETURN_NOT_OK(
                        wclock.TickRows(static_cast<int64_t>(ld.size())));
                  }
                }
                return wclock.FinishLocalRows(
                    static_cast<int64_t>(ld.size()));
              };
              Status st = run();
              if (!st.ok()) budget.Abort(st);
            });
        XQJG_RETURN_NOT_OK(budget.status());
        size_t total = 0;
        for (const auto& part : lparts) total += part.size();
        lidx.reserve(total);
        ridx.reserve(total);
        for (size_t m = 0; m < morsels; ++m) {
          lidx.insert(lidx.end(), lparts[m].begin(), lparts[m].end());
          ridx.insert(ridx.end(), rparts[m].begin(), rparts[m].end());
        }
      } else {
        for (size_t l = 0; l < left->num_rows; ++l) {
          XQJG_RETURN_NOT_OK(clock_.Tick());
          const size_t lp = left->PhysRow(l);
          if (AnyKeyNull(*left, lkeys, lp)) continue;
          auto it = buckets.find(HashKeysAt(*left, lkeys, lp));
          if (it == buckets.end()) continue;
          for (uint32_t jp : it->second) {
            if (KeysEqual(*left, lkeys, lp, *right, rkeys, jp)) {
              XQJG_RETURN_NOT_OK(emit(lp, jp));
            }
          }
        }
      }
    } else {
      for (size_t l = 0; l < left->num_rows; ++l) {
        XQJG_RETURN_NOT_OK(clock_.Tick());
        const size_t lp = left->PhysRow(l);
        for (size_t r = 0; r < right->num_rows; ++r) {
          XQJG_RETURN_NOT_OK(emit(lp, right->PhysRow(r)));
        }
      }
    }
    ColumnBatch out;
    out.schema = op->schema;
    out.num_rows = lidx.size();
    const size_t ncols = left->cols.size() + right->cols.size();
    out.cols.resize(ncols);
    auto gather_col = [&](size_t c) {
      const ColumnRef& src = c < left->cols.size()
                                 ? left->cols[c]
                                 : right->cols[c - left->cols.size()];
      const std::vector<uint32_t>& idx =
          c < left->cols.size() ? lidx : ridx;
      out.cols[c] = std::make_shared<const ValueColumn>(src->Gather(idx));
    };
    // Each gather writes its own pre-sized slot, so columns materialize
    // independently.
    if (threads_ > 1 && ncols > 1 && lidx.size() >= kParallelRowCutoff) {
      parallel::WorkerPool::Instance().ParallelFor(
          threads_, ncols, [&](size_t c, int) { gather_col(c); });
    } else {
      for (size_t c = 0; c < ncols; ++c) gather_col(c);
    }
    return out;
  }

  Result<ColumnBatch> EvalDistinct(const Op* op) {
    XQJG_ASSIGN_OR_RETURN(BatchRef in, Eval(op->children[0].get()));
    if (in->num_rows > kMaxBatchRows) {
      return Status::Internal("distinct input exceeds batch row limit");
    }
    std::vector<int> all(in->schema.size());
    std::iota(all.begin(), all.end(), 0);
    // δ is a filter: it publishes a selection vector of the first
    // occurrences (physical rows) instead of gathering the survivors.
    std::vector<uint32_t> keep;
    std::unordered_map<size_t, std::vector<uint32_t>> buckets;
    for (size_t row = 0; row < in->num_rows; ++row) {
      XQJG_RETURN_NOT_OK(clock_.Tick());
      const size_t phys = in->PhysRow(row);
      size_t h = HashKeysAt(*in, all, phys);
      auto& bucket = buckets[h];
      bool dup = false;
      for (uint32_t j : bucket) {
        bool eq = true;
        for (const ColumnRef& col : in->cols) {
          // Distinct treats NULLs as duplicates of each other (unlike join
          // keys): ValueColumn::EqualAt mirrors Value::operator==.
          if (!ValueColumn::EqualAt(*col, phys, *col, j)) {
            eq = false;
            break;
          }
        }
        if (eq) {
          dup = true;
          break;
        }
      }
      if (!dup) {
        bucket.push_back(static_cast<uint32_t>(phys));
        keep.push_back(static_cast<uint32_t>(phys));
      }
    }
    // All rows distinct: pass the input through unchanged.
    if (keep.size() == in->num_rows) {
      ColumnBatch out = *in;
      out.schema = op->schema;
      return out;
    }
    if (in->cols.empty() || !KeepLazy(keep.size(), in->PhysSize())) {
      ColumnBatch out =
          in->cols.empty() ? ColumnBatch{} : GatherPhysicalRows(*in, keep);
      out.schema = op->schema;
      out.num_rows = keep.size();
      return out;
    }
    ColumnBatch out;
    out.schema = op->schema;
    out.cols = in->cols;  // shared — deferred gather
    out.num_rows = keep.size();
    out.sel = std::make_shared<const std::vector<uint32_t>>(std::move(keep));
    return out;
  }

  Result<ColumnBatch> EvalAttach(const Op* op) {
    XQJG_ASSIGN_OR_RETURN(BatchRef in, Eval(op->children[0].get()));
    ColumnBatch out;
    out.schema = op->schema;
    out.num_rows = in->num_rows;
    out.sel = in->sel;
    out.cols = in->cols;  // shared
    // The constant column spans the physical row space so it aligns with
    // the shared columns under the same selection vector.
    out.cols.push_back(std::make_shared<const ValueColumn>(
        ConstantColumn(op->val, in->PhysSize())));
    return out;
  }

  Result<ColumnBatch> EvalRowId(const Op* op) {
    XQJG_ASSIGN_OR_RETURN(BatchRef in, Eval(op->children[0].get()));
    // Ids are numbered over LOGICAL rows and scattered to their physical
    // slots (unselected slots keep a don't-care 0 the mask never shows).
    std::vector<int64_t> ids(in->PhysSize(), 0);
    for (size_t i = 0; i < in->num_rows; ++i) {
      ids[in->PhysRow(i)] = static_cast<int64_t>(i) + 1;
      XQJG_RETURN_NOT_OK(clock_.Tick());
    }
    ColumnBatch out;
    out.schema = op->schema;
    out.num_rows = in->num_rows;
    out.sel = in->sel;
    out.cols = in->cols;  // shared
    out.cols.push_back(
        std::make_shared<const ValueColumn>(ValueColumn::Ints(std::move(ids))));
    return out;
  }

  Result<ColumnBatch> EvalRank(const Op* op) {
    XQJG_ASSIGN_OR_RETURN(BatchRef in, Eval(op->children[0].get()));
    if (in->num_rows > kMaxBatchRows) {
      return Status::Internal("rank input exceeds batch row limit");
    }
    std::vector<const ValueColumn*> order;
    for (const auto& b : op->order) {
      int idx = in->ColumnIndex(b);
      if (idx < 0) return Status::Internal("rank criterion missing: " + b);
      order.push_back(in->cols[static_cast<size_t>(idx)].get());
    }
    // Logical permutation; comparisons and the rank scatter translate to
    // physical rows, so the rank column aligns with the shared columns.
    std::vector<uint32_t> perm(in->num_rows);
    std::iota(perm.begin(), perm.end(), 0);
    auto less = [&](uint32_t a, uint32_t b) {
      clock_.TickThrow();
      const size_t pa = in->PhysRow(a), pb = in->PhysRow(b);
      for (const ValueColumn* c : order) {
        if (ValueColumn::SortLessAt(*c, pa, *c, pb)) return true;
        if (ValueColumn::SortLessAt(*c, pb, *c, pa)) return false;
      }
      return false;
    };
    std::vector<int64_t> ranks(in->PhysSize(), 0);
    try {
      std::stable_sort(perm.begin(), perm.end(), less);
      // RANK() semantics: ties share the rank of their first row (1-based).
      for (size_t k = 0; k < perm.size(); ++k) {
        if (k > 0 && !less(perm[k - 1], perm[k]) &&
            !less(perm[k], perm[k - 1])) {
          ranks[in->PhysRow(perm[k])] = ranks[in->PhysRow(perm[k - 1])];
        } else {
          ranks[in->PhysRow(perm[k])] = static_cast<int64_t>(k) + 1;
        }
      }
    } catch (const BudgetExhausted&) {
      return Status::Timeout("execution exceeded wall-clock budget (DNF)");
    }
    ColumnBatch out;
    out.schema = op->schema;
    out.num_rows = in->num_rows;
    out.sel = in->sel;
    out.cols = in->cols;  // shared
    out.cols.push_back(std::make_shared<const ValueColumn>(
        ValueColumn::Ints(std::move(ranks))));
    return out;
  }

  Result<ColumnBatch> EvalSerialize(const Op* op) {
    XQJG_ASSIGN_OR_RETURN(BatchRef in, Eval(op->children[0].get()));
    if (in->num_rows > kMaxBatchRows) {
      return Status::Internal("serialize input exceeds batch row limit");
    }
    const int pos_idx = in->ColumnIndex(op->order[0]);
    const int item_idx = in->ColumnIndex(op->col);
    if (pos_idx < 0 || item_idx < 0) {
      return Status::Internal("serialize columns missing");
    }
    const ValueColumn& pos = *in->cols[static_cast<size_t>(pos_idx)];
    const ValueColumn& item = *in->cols[static_cast<size_t>(item_idx)];
    // The serialize sort is a gather boundary: the logical permutation is
    // sorted with physical-row comparisons, then materialized densely.
    std::vector<uint32_t> perm(in->num_rows);
    std::iota(perm.begin(), perm.end(), 0);
    try {
      std::stable_sort(perm.begin(), perm.end(),
                       [&](uint32_t a, uint32_t b) {
                         clock_.TickThrow();
                         const size_t pa = in->PhysRow(a);
                         const size_t pb = in->PhysRow(b);
                         if (ValueColumn::SortLessAt(pos, pa, pos, pb)) {
                           return true;
                         }
                         if (ValueColumn::SortLessAt(pos, pb, pos, pa)) {
                           return false;
                         }
                         return ValueColumn::SortLessAt(item, pa, item, pb);
                       });
    } catch (const BudgetExhausted&) {
      return Status::Timeout("execution exceeded wall-clock budget (DNF)");
    }
    ColumnBatch out = GatherBatch(*in, perm);
    out.schema = op->schema;
    return out;
  }

  static ValueColumn ConstantColumn(const Value& v, size_t n) {
    switch (v.type()) {
      case ValueType::kInt:
        return ValueColumn::Ints(std::vector<int64_t>(n, v.AsInt()));
      case ValueType::kDouble:
        return ValueColumn::Doubles(std::vector<double>(n, v.AsDouble()));
      case ValueType::kString:
        return ValueColumn::Strings(
            std::vector<std::string>(n, v.AsString()));
      case ValueType::kNull:
        break;
    }
    ValueColumn col;
    for (size_t i = 0; i < n; ++i) col.AppendNull();
    return col;
  }

  const xml::DocTable& doc_;
  BudgetClock clock_;
  ExecStats* stats_;
  const int threads_;
  const std::vector<Value>* params_;
  /// XQJG_DCHECK_BATCHES: verify every operator-output batch (batch-sel).
  bool dcheck_batches_ = false;
  std::unordered_map<const Op*, BatchRef> memo_;
};

}  // namespace

Result<MatTable> EvaluateColumnar(const OpPtr& plan, const xml::DocTable& doc,
                                  const ExecOptions& options) {
  ColumnarEvaluator evaluator(doc, options);
  XQJG_ASSIGN_OR_RETURN(ColumnarEvaluator::BatchRef out,
                        evaluator.Eval(plan.get()));
  MatTable table = BatchToMatTable(*out);
  if (options.stats) {
    options.stats->rows_out = static_cast<int64_t>(table.rows.size());
  }
  return table;
}

Result<std::vector<int64_t>> EvaluateToSequenceColumnar(
    const OpPtr& plan, const xml::DocTable& doc, const ExecOptions& options) {
  if (plan->kind != OpKind::kSerialize) {
    return Status::InvalidArgument("expected a serialize-rooted plan");
  }
  ColumnarEvaluator evaluator(doc, options);
  XQJG_ASSIGN_OR_RETURN(ColumnarEvaluator::BatchRef result,
                        evaluator.Eval(plan.get()));
  const int item_idx = result->ColumnIndex(plan->col);
  if (item_idx < 0) return Status::Internal("serialize item column missing");
  const ValueColumn& item = *result->cols[static_cast<size_t>(item_idx)];
  std::vector<int64_t> out;
  out.reserve(result->num_rows);
  if (item.tag() == ColumnTag::kInt && !item.has_nulls()) {
    if (!result->sel) {
      out = item.ints();  // the common case: plain pre ranks
    } else {
      // Exit extraction of a batch Eval already budget-admitted.
      // xqjg-lint: allow(no-budget-guard)
      for (size_t r = 0; r < result->num_rows; ++r) {
        out.push_back(item.ints()[result->PhysRow(r)]);
      }
    }
  } else {
    // Same: rows were admitted when the serialize batch was produced.
    // xqjg-lint: allow(no-budget-guard)
    for (size_t r = 0; r < result->num_rows; ++r) {
      Value v = item.GetValue(result->PhysRow(r));
      if (v.is_null()) {
        return Status::Internal("NULL item in result sequence");
      }
      out.push_back(v.type() == ValueType::kInt
                        ? v.AsInt()
                        : static_cast<int64_t>(v.AsDouble()));
    }
  }
  if (options.stats) {
    options.stats->rows_out = static_cast<int64_t>(out.size());
  }
  return out;
}

}  // namespace xqjg::engine::columnar
