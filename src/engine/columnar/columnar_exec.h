// Columnar batch evaluator for table-algebra plans.
//
// The drop-in fast sibling of the materializing row evaluator
// (src/engine/algebra_exec.h): same plans, same memoization across shared
// sub-DAGs, same DNF budgets, bit-identical output tables (including row
// order) — but intermediates are ColumnBatches of typed columns, filters
// run as vectorized kernels over int64 arrays where the predicate allows,
// projection / attach / rowid / rank share input columns instead of
// copying rows, and the hash join builds and probes typed key columns
// (NULL keys never match, per Value::Compare).
//
// Selected via ExecOptions::use_columnar; the row evaluator remains the
// differential-test oracle.
#ifndef XQJG_ENGINE_COLUMNAR_COLUMNAR_EXEC_H_
#define XQJG_ENGINE_COLUMNAR_COLUMNAR_EXEC_H_

#include <vector>

#include "src/algebra/operators.h"
#include "src/common/status.h"
#include "src/engine/algebra_exec.h"
#include "src/engine/exec_options.h"
#include "src/xml/infoset.h"

namespace xqjg::engine::columnar {

/// Evaluates `plan` against `doc` via the batch executor and converts the
/// final batch to a MatTable (the only row-major materialization).
Result<MatTable> EvaluateColumnar(const algebra::OpPtr& plan,
                                  const xml::DocTable& doc,
                                  const ExecOptions& options);

/// Serialize-rooted plans: returns the result sequence (item column pre
/// ranks) without materializing the final table row-major.
Result<std::vector<int64_t>> EvaluateToSequenceColumnar(
    const algebra::OpPtr& plan, const xml::DocTable& doc,
    const ExecOptions& options);

}  // namespace xqjg::engine::columnar

#endif  // XQJG_ENGINE_COLUMNAR_COLUMNAR_EXEC_H_
