// Columnar batch evaluator for table-algebra plans.
//
// The drop-in fast sibling of the materializing row evaluator
// (src/engine/algebra_exec.h): same plans, same memoization across shared
// sub-DAGs, same DNF budgets, bit-identical output tables (including row
// order) — but intermediates are ColumnBatches of typed columns, filters
// run as vectorized kernels over int64 arrays where the predicate allows,
// projection / attach / rowid / rank share input columns instead of
// copying rows, and the hash join builds and probes typed key columns
// (NULL keys never match, per Value::Compare).
//
// Selected via ExecOptions::use_columnar; the row evaluator remains the
// differential-test oracle.
//
// Execution is pipelined: plans run as pull-based streams of ≤4096-row
// ColumnBatch windows, with the blocking operators (sort, hash build, δ,
// ϱ) as explicit breakers that charge ExecLimits::max_memory_bytes and
// spill to disk under pressure — results stay bit-identical at every
// budget (see engine/spill.h for the order-exactness argument).
#ifndef XQJG_ENGINE_COLUMNAR_COLUMNAR_EXEC_H_
#define XQJG_ENGINE_COLUMNAR_COLUMNAR_EXEC_H_

#include <memory>
#include <vector>

#include "src/algebra/operators.h"
#include "src/common/status.h"
#include "src/engine/algebra_exec.h"
#include "src/engine/exec_options.h"
#include "src/engine/exec_stream.h"
#include "src/xml/infoset.h"

namespace xqjg::engine::columnar {

/// Evaluates `plan` against `doc` via the batch executor and converts the
/// final batch to a MatTable (the only row-major materialization).
Result<MatTable> EvaluateColumnar(const algebra::OpPtr& plan,
                                  const xml::DocTable& doc,
                                  const ExecOptions& options);

/// Serialize-rooted plans: returns the result sequence (item column pre
/// ranks) without materializing the final table row-major.
Result<std::vector<int64_t>> EvaluateToSequenceColumnar(
    const algebra::OpPtr& plan, const xml::DocTable& doc,
    const ExecOptions& options);

/// Serialize-rooted plans, streaming form: primes the pipeline through
/// its final sort breaker and hands back a live SequenceStream — the
/// cursor pulls pre ranks batch by batch instead of receiving the whole
/// materialized sequence. `doc` and `options.params` must outlive the
/// stream.
Result<std::unique_ptr<SequenceStream>> OpenSequenceStreamColumnar(
    const algebra::OpPtr& plan, const xml::DocTable& doc,
    const ExecOptions& options);

}  // namespace xqjg::engine::columnar

#endif  // XQJG_ENGINE_COLUMNAR_COLUMNAR_EXEC_H_
