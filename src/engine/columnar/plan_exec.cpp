#include "src/engine/columnar/plan_exec.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "src/engine/algebra_exec.h"
#include "src/engine/btree.h"
#include "src/engine/parallel/worker_pool.h"
#include "src/engine/exec_stream.h"
#include "src/engine/qual_eval.h"
#include "src/engine/spill.h"

namespace xqjg::engine::columnar {

using algebra::CmpOp;
using opt::JoinGraph;
using opt::QualComparison;
using opt::QualTerm;

namespace {

// ---------------------------------------------------------------------------
// Alias-column tuple store: one contiguous pre-rank column per bound doc
// alias instead of one heap-allocated tuple per row. Qualifiers are
// compiled once per plan node (engine::BoundQualCmp — typed-array and
// dictionary-code fast paths over the columnar doc relation) and
// evaluated through the row views below.

struct AliasBatch {
  size_t rows = 0;
  std::vector<uint8_t> bound;              ///< per alias
  std::vector<std::vector<int64_t>> cols;  ///< per alias; filled iff bound

  explicit AliasBatch(int num_aliases = 0)
      : bound(static_cast<size_t>(num_aliases), 0),
        cols(static_cast<size_t>(num_aliases)) {}

  /// Bit mask of bound aliases (the compile-time bound set of its rows).
  uint32_t AliasMask() const {
    uint32_t mask = 0;
    for (size_t a = 0; a < bound.size(); ++a) {
      if (bound[a]) mask |= 1u << a;
    }
    return mask;
  }
};

/// Abstract row view: pre rank of `alias` in the current row, -1 when the
/// alias is unbound. The three concrete contexts mirror the row
/// executor's tuple states: a batch row, a scan probe (outer row + the
/// scanned alias candidate), and a join candidate pair.
struct BatchRow {
  const AliasBatch* batch;
  size_t row;

  int64_t operator()(int alias) const {
    const auto a = static_cast<size_t>(alias);
    return batch->bound[a] ? batch->cols[a][row] : -1;
  }
};

struct ScanRow {
  const AliasBatch* outer;  ///< nullptr for leaf scans
  size_t orow;
  int alias;
  int64_t pre;

  int64_t operator()(int a) const {
    if (a == alias) return pre;
    if (outer && outer->bound[static_cast<size_t>(a)]) {
      return outer->cols[static_cast<size_t>(a)][orow];
    }
    return -1;
  }
};

struct PairRow {
  const AliasBatch* left;
  size_t lrow;
  const AliasBatch* right;
  size_t rrow;

  int64_t operator()(int a) const {
    const auto idx = static_cast<size_t>(a);
    // Left binding wins, mirroring MergeTuples in the row executor.
    if (left->bound[idx]) return left->cols[idx][lrow];
    if (right->bound[idx]) return right->cols[idx][rrow];
    return -1;
  }
};

template <typename Row>
bool AllPass(const std::vector<BoundQualCmp>& cmps, const Row& row) {
  for (const BoundQualCmp& c : cmps) {
    if (!c.Test(row)) return false;
  }
  return true;
}

std::vector<uint32_t> IdentityPerm(size_t n) {
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  return perm;
}

std::vector<int64_t> GatherInts(const std::vector<int64_t>& src,
                                const std::vector<uint32_t>& idx) {
  std::vector<int64_t> out;
  out.reserve(idx.size());
  for (uint32_t i : idx) out.push_back(src[i]);
  return out;
}

/// Row indices travel as uint32; a batch beyond 2^32 rows must fail loudly
/// instead of letting the casts wrap.
constexpr size_t kMaxBatchRows = std::numeric_limits<uint32_t>::max();

/// Morsel geometry for the parallel paths (threads > 1 only): below the
/// cutoff the fan-out costs more in scheduling than it saves; above it,
/// fixed-size morsels give the pool enough pieces to balance skew while
/// per-morsel outputs stay cache-resident until the ordered concat.
constexpr size_t kParallelRowCutoff = 2048;
constexpr size_t kMorselRows = 1024;
/// Outer rows of an index-probe loop: each row is a whole B-tree probe,
/// so far fewer rows amortize a morsel.
constexpr size_t kParallelProbeCutoff = 256;
constexpr size_t kMorselProbeRows = 128;

inline size_t MorselCount(size_t n, size_t morsel) {
  return (n + morsel - 1) / morsel;
}

/// Concatenates per-morsel slices in morsel-index order — the step that
/// makes every parallel path emit exactly the serial order.
template <typename T>
void ConcatParts(const std::vector<std::vector<T>>& parts,
                 std::vector<T>* out) {
  size_t total = out->size();
  for (const auto& part : parts) total += part.size();
  out->reserve(total);
  for (const auto& part : parts) {
    out->insert(out->end(), part.begin(), part.end());
  }
}

Status CheckBatchSize(const AliasBatch& batch) {
  if (batch.rows > kMaxBatchRows) {
    return Status::Internal("join input exceeds batch row limit");
  }
  return Status::OK();
}


// ---------------------------------------------------------------------------

/// Tracked bytes of one alias batch: the bound pre-rank columns (the
/// bound bitmap is noise). Stable across the batch's charged lifetime —
/// batches are never resized between ChargeBatch and ReleaseBatch.
int64_t AliasBatchBytes(const AliasBatch& batch) {
  int64_t bytes = static_cast<int64_t>(batch.bound.size());
  for (const auto& col : batch.cols) {
    bytes += static_cast<int64_t>(col.size() * sizeof(int64_t));
  }
  return bytes;
}

/// Shared state of one plan execution: the DNF clock and the memory
/// governor. Heap-hoistable so a streaming tail (OpenPlanStreamColumnar)
/// can keep ticking and accounting after the executor's stack frame is
/// gone.
struct PlanExecCtx {
  explicit PlanExecCtx(const ExecLimits& limits)
      : clock(limits), budget(limits.max_memory_bytes) {}

  void SyncPeak() {
    if (stats != nullptr) {
      stats->peak_memory_bytes =
          std::max(stats->peak_memory_bytes, budget.peak());
    }
  }

  BudgetClock clock;
  MemoryBudget budget;
  ExecStats* stats = nullptr;
};

// ---------------------------------------------------------------------------

class ColumnarPlanExecutor {
 public:
  ColumnarPlanExecutor(const JoinGraph& graph, const Database& db,
                       const PlannerOptions& options, ExecStats* stats,
                       PlanExecCtx* ctx)
      : graph_(graph), db_(db), params_(options.params), stats_(stats),
        threads_(options.threads), ctx_(ctx) {}

  Result<AliasBatch> Run(const PhysNode* node) {
    XQJG_RETURN_NOT_OK(ctx_->clock.CheckDeadline());
    switch (node->kind) {
      case PhysKind::kTbScan:
      case PhysKind::kIxScan: {
        AliasBatch out(graph_.num_aliases);
        std::vector<int64_t> pres;
        const CompiledScan scan = CompileScan(*node, db_, 0, params_);
        if (node->kind == PhysKind::kTbScan && threads_ > 1 &&
            static_cast<size_t>(db_.row_count()) >= kParallelRowCutoff) {
          XQJG_RETURN_NOT_OK(LeafTbScanParallel(node, scan, &pres));
        } else {
          XQJG_RETURN_NOT_OK(ProbeScan(node, scan, nullptr, 0, nullptr,
                                       &pres, &ctx_->clock));
        }
        out.rows = pres.size();
        out.bound[static_cast<size_t>(node->alias)] = 1;
        out.cols[static_cast<size_t>(node->alias)] = std::move(pres);
        ChargeBatch(out);
        return out;
      }
      case PhysKind::kNlJoin:
        return RunNlJoin(node);
      case PhysKind::kHsJoin:
        return RunHsJoin(node);
    }
    return Status::Internal("unknown physical operator");
  }

 private:
  /// Every AliasBatch a Run() returns is charged against the governor;
  /// the consumer releases it once its rows have been merged onward.
  void ChargeBatch(const AliasBatch& batch) {
    ctx_->budget.Charge(AliasBatchBytes(batch));
  }
  void ReleaseBatch(AliasBatch* batch) {
    ctx_->budget.Release(AliasBatchBytes(*batch));
    *batch = AliasBatch();  // actually free — the charge says we did
  }

  Result<AliasBatch> RunNlJoin(const PhysNode* node) {
    XQJG_ASSIGN_OR_RETURN(AliasBatch outer, Run(node->left.get()));
    XQJG_RETURN_NOT_OK(CheckBatchSize(outer));
    if (node->right->kind == PhysKind::kIxScan ||
        node->right->kind == PhysKind::kTbScan) {
      const int alias = node->right->alias;
      const CompiledScan scan =
          CompileScan(*node->right, db_, outer.AliasMask(), params_);
      std::vector<uint32_t> orows;
      std::vector<int64_t> pres;
      if (threads_ > 1 && outer.rows >= kParallelProbeCutoff) {
        // Morsels over the outer rows: each morsel probes its range into
        // private (orow, pre) slices — the scan node and its B-tree are
        // read-only — concatenated in morsel order.
        const size_t morsels = MorselCount(outer.rows, kMorselProbeRows);
        std::vector<std::vector<uint32_t>> oparts(morsels);
        std::vector<std::vector<int64_t>> pparts(morsels);
        RegionBudget budget(ctx_->clock);
        parallel::WorkerPool::Instance().ParallelFor(
            threads_, morsels, [&](size_t m, int) {
              BudgetClock wclock = budget.Worker();
              auto run = [&]() -> Status {
                const size_t end =
                    std::min(outer.rows, (m + 1) * kMorselProbeRows);
                for (size_t o = m * kMorselProbeRows; o < end; ++o) {
                  XQJG_RETURN_NOT_OK(ProbeScan(node->right.get(), scan,
                                               &outer, o, &oparts[m],
                                               &pparts[m], &wclock));
                  XQJG_RETURN_NOT_OK(wclock.TickRows(
                      static_cast<int64_t>(pparts[m].size())));
                }
                return wclock.FinishLocalRows(
                    static_cast<int64_t>(pparts[m].size()));
              };
              Status st = run();
              if (!st.ok()) budget.Abort(st);
            });
        XQJG_RETURN_NOT_OK(budget.status());
        ConcatParts(oparts, &orows);
        ConcatParts(pparts, &pres);
      } else {
        for (size_t o = 0; o < outer.rows; ++o) {
          XQJG_RETURN_NOT_OK(ProbeScan(node->right.get(), scan, &outer, o,
                                       &orows, &pres, &ctx_->clock));
          XQJG_RETURN_NOT_OK(
              ctx_->clock.TickRows(static_cast<int64_t>(pres.size())));
        }
      }
      AliasBatch merged = MergeScanResult(outer, alias, orows, pres);
      ReleaseBatch(&outer);
      // Edge predicates not already applied inside the probe.
      XQJG_RETURN_NOT_OK(FilterBatch(node->preds, &merged));
      ChargeBatch(merged);
      if (stats_) {
        stats_->tuples_materialized += static_cast<int64_t>(merged.rows);
      }
      return merged;
    }
    XQJG_ASSIGN_OR_RETURN(AliasBatch inner, Run(node->right.get()));
    XQJG_RETURN_NOT_OK(CheckBatchSize(inner));
    const std::vector<BoundQualCmp> cmps = CompileQuals(
        node->preds, db_, outer.AliasMask() | inner.AliasMask(), params_);
    std::vector<uint32_t> lidx, ridx;
    XQJG_RETURN_NOT_OK(NestedPairs(
        outer.rows, inner.rows,
        [&](size_t l, size_t r) {
          return AllPass(cmps, PairRow{&outer, l, &inner, r});
        },
        &lidx, &ridx));
    AliasBatch merged = MergePair(outer, inner, lidx, ridx);
    ReleaseBatch(&outer);
    ReleaseBatch(&inner);
    ChargeBatch(merged);
    if (stats_) {
      stats_->tuples_materialized += static_cast<int64_t>(merged.rows);
    }
    return merged;
  }

  /// l-major × r-minor candidate sweep shared by both nested-loop join
  /// paths; `pass(l, r)` decides emission. Parallel over l-morsels when
  /// the pair space is worth fanning out; morsel-order concat reproduces
  /// the serial emission order.
  template <typename PassFn>
  Status NestedPairs(size_t lrows, size_t rrows, const PassFn& pass,
                     std::vector<uint32_t>* lidx,
                     std::vector<uint32_t>* ridx) {
    if (threads_ > 1 && lrows >= 2 &&
        lrows * rrows >= kParallelRowCutoff) {
      const size_t morsel =
          std::max<size_t>(1, kParallelRowCutoff / std::max<size_t>(rrows, 1));
      const size_t morsels = MorselCount(lrows, morsel);
      std::vector<std::vector<uint32_t>> lparts(morsels), rparts(morsels);
      RegionBudget budget(ctx_->clock);
      parallel::WorkerPool::Instance().ParallelFor(
          threads_, morsels, [&](size_t m, int) {
            BudgetClock wclock = budget.Worker();
            std::vector<uint32_t>& ld = lparts[m];
            std::vector<uint32_t>& rd = rparts[m];
            auto run = [&]() -> Status {
              const size_t end = std::min(lrows, (m + 1) * morsel);
              for (size_t l = m * morsel; l < end; ++l) {
                for (size_t r = 0; r < rrows; ++r) {
                  XQJG_RETURN_NOT_OK(
                      wclock.TickRows(static_cast<int64_t>(ld.size())));
                  if (pass(l, r)) {
                    ld.push_back(static_cast<uint32_t>(l));
                    rd.push_back(static_cast<uint32_t>(r));
                  }
                }
              }
              return wclock.FinishLocalRows(
                  static_cast<int64_t>(ld.size()));
            };
            Status st = run();
            if (!st.ok()) budget.Abort(st);
          });
      XQJG_RETURN_NOT_OK(budget.status());
      ConcatParts(lparts, lidx);
      ConcatParts(rparts, ridx);
      return Status::OK();
    }
    for (size_t l = 0; l < lrows; ++l) {
      for (size_t r = 0; r < rrows; ++r) {
        XQJG_RETURN_NOT_OK(
            ctx_->clock.TickRows(static_cast<int64_t>(lidx->size())));
        if (pass(l, r)) {
          lidx->push_back(static_cast<uint32_t>(l));
          ridx->push_back(static_cast<uint32_t>(r));
        }
      }
    }
    return Status::OK();
  }

  /// Leaf full-table scan, morselized over contiguous pre ranges.
  Status LeafTbScanParallel(const PhysNode* node, const CompiledScan& scan,
                            std::vector<int64_t>* pres) {
    const auto nrows = static_cast<size_t>(db_.row_count());
    const size_t morsels = MorselCount(nrows, kMorselRows);
    std::vector<std::vector<int64_t>> parts(morsels);
    RegionBudget budget(ctx_->clock);
    parallel::WorkerPool::Instance().ParallelFor(
        threads_, morsels, [&](size_t m, int) {
          BudgetClock wclock = budget.Worker();
          std::vector<int64_t>& part = parts[m];
          auto run = [&]() -> Status {
            const auto end = static_cast<int64_t>(
                std::min(nrows, (m + 1) * kMorselRows));
            for (auto pre = static_cast<int64_t>(m * kMorselRows);
                 pre < end; ++pre) {
              if (AllPass(scan.row_preds,
                          ScanRow{nullptr, 0, node->alias, pre})) {
                part.push_back(pre);
              }
              XQJG_RETURN_NOT_OK(
                  wclock.TickRows(static_cast<int64_t>(part.size())));
            }
            return wclock.FinishLocalRows(
                static_cast<int64_t>(part.size()));
          };
          Status st = run();
          if (!st.ok()) budget.Abort(st);
        });
    XQJG_RETURN_NOT_OK(budget.status());
    ConcatParts(parts, pres);
    return Status::OK();
  }

  Result<AliasBatch> RunHsJoin(const PhysNode* node) {
    XQJG_ASSIGN_OR_RETURN(AliasBatch left, Run(node->left.get()));
    XQJG_ASSIGN_OR_RETURN(AliasBatch right, Run(node->right.get()));
    XQJG_RETURN_NOT_OK(CheckBatchSize(left));
    XQJG_RETURN_NOT_OK(CheckBatchSize(right));
    const std::vector<BoundQualCmp> cmps = CompileQuals(
        node->preds, db_, left.AliasMask() | right.AliasMask(), params_);
    // Hash on the first equality predicate; others become residual.
    const QualComparison* hash_pred = nullptr;
    for (const auto& p : node->preds) {
      if (p.op == CmpOp::kEq) {
        hash_pred = &p;
        break;
      }
    }
    std::vector<uint32_t> lidx, ridx;
    auto pair_passes = [&](size_t l, size_t r) {
      return AllPass(cmps, PairRow{&left, l, &right, r});
    };
    if (!hash_pred) {
      XQJG_RETURN_NOT_OK(
          NestedPairs(left.rows, right.rows, pair_passes, &lidx, &ridx));
      AliasBatch merged = MergePair(left, right, lidx, ridx);
      ReleaseBatch(&left);
      ReleaseBatch(&right);
      ChargeBatch(merged);
      return merged;
    }
    // Determine which side provides which term (same rule as the row
    // executor: a term is probe-side if its aliases are bound there).
    const uint32_t left_mask = left.AliasMask();
    auto on_left = [&](const QualTerm& t) {
      for (int a : {t.alias, t.alias2}) {
        if (a >= 0 && !(left_mask & (1u << a))) return false;
      }
      return true;
    };
    const bool lhs_left = on_left(hash_pred->lhs);
    const BoundQualTerm lterm(
        ResolveParams(lhs_left ? hash_pred->lhs : hash_pred->rhs, params_),
        db_);
    const BoundQualTerm rterm(
        ResolveParams(lhs_left ? hash_pred->rhs : hash_pred->lhs, params_),
        db_);
    if (ctx_->budget.ShouldSpill() && right.rows >= kMinSpillRows) {
      // The governor says the resident state is already over budget and
      // the build side is large enough to be worth moving to disk.
      return GraceHashJoin(std::move(left), std::move(right), cmps, lterm,
                           rterm);
    }
    std::unordered_map<size_t, std::vector<uint32_t>> buckets;
    if (threads_ > 1 && right.rows >= kParallelRowCutoff) {
      // Partitioned parallel build: contiguous ascending row ranges into
      // private tables, merged in partition order — every bucket keeps
      // its rows ascending, exactly the serial insertion order, so the
      // probe emits identically.
      const size_t rn = right.rows;
      const size_t morsels = MorselCount(rn, kMorselRows);
      std::vector<std::unordered_map<size_t, std::vector<uint32_t>>> built(
          morsels);
      RegionBudget budget(ctx_->clock);
      parallel::WorkerPool::Instance().ParallelFor(
          threads_, morsels, [&](size_t m, int) {
            BudgetClock wclock = budget.Worker();
            auto& local = built[m];
            const size_t end = std::min(rn, (m + 1) * kMorselRows);
            for (size_t j = m * kMorselRows; j < end; ++j) {
              Status st = wclock.Tick();
              if (!st.ok()) {
                budget.Abort(st);
                return;
              }
              Value v = rterm.Eval(BatchRow{&right, j});
              if (v.is_null()) continue;
              local[v.Hash()].push_back(static_cast<uint32_t>(j));
            }
          });
      XQJG_RETURN_NOT_OK(budget.status());
      buckets.reserve(rn * 2);
      for (auto& local : built) {
        for (auto& [h, rows] : local) {
          auto& dst = buckets[h];
          dst.insert(dst.end(), rows.begin(), rows.end());
        }
      }
    } else {
      for (size_t j = 0; j < right.rows; ++j) {
        XQJG_RETURN_NOT_OK(ctx_->clock.Tick());
        // NULL keys never join (Value::Compare: NULL is incomparable).
        Value v = rterm.Eval(BatchRow{&right, j});
        if (v.is_null()) continue;
        buckets[v.Hash()].push_back(static_cast<uint32_t>(j));
      }
    }
    if (threads_ > 1 && left.rows >= kParallelRowCutoff) {
      // Shared read-only probe over morsels of the left rows.
      const size_t ln = left.rows;
      const size_t morsels = MorselCount(ln, kMorselRows);
      std::vector<std::vector<uint32_t>> lparts(morsels), rparts(morsels);
      RegionBudget budget(ctx_->clock);
      parallel::WorkerPool::Instance().ParallelFor(
          threads_, morsels, [&](size_t m, int) {
            BudgetClock wclock = budget.Worker();
            std::vector<uint32_t>& ld = lparts[m];
            std::vector<uint32_t>& rd = rparts[m];
            auto run = [&]() -> Status {
              const size_t end = std::min(ln, (m + 1) * kMorselRows);
              for (size_t l = m * kMorselRows; l < end; ++l) {
                XQJG_RETURN_NOT_OK(wclock.Tick());
                Value v = lterm.Eval(BatchRow{&left, l});
                if (v.is_null()) continue;
                auto it = buckets.find(v.Hash());
                if (it == buckets.end()) continue;
                for (uint32_t j : it->second) {
                  XQJG_RETURN_NOT_OK(
                      wclock.TickRows(static_cast<int64_t>(ld.size())));
                  if (pair_passes(l, j)) {
                    ld.push_back(static_cast<uint32_t>(l));
                    rd.push_back(j);
                  }
                }
              }
              return wclock.FinishLocalRows(
                  static_cast<int64_t>(ld.size()));
            };
            Status st = run();
            if (!st.ok()) budget.Abort(st);
          });
      XQJG_RETURN_NOT_OK(budget.status());
      ConcatParts(lparts, &lidx);
      ConcatParts(rparts, &ridx);
    } else {
      for (size_t l = 0; l < left.rows; ++l) {
        XQJG_RETURN_NOT_OK(ctx_->clock.Tick());
        Value v = lterm.Eval(BatchRow{&left, l});
        if (v.is_null()) continue;
        auto it = buckets.find(v.Hash());
        if (it == buckets.end()) continue;
        for (uint32_t j : it->second) {
          XQJG_RETURN_NOT_OK(
              ctx_->clock.TickRows(static_cast<int64_t>(lidx.size())));
          if (pair_passes(l, j)) {
            lidx.push_back(static_cast<uint32_t>(l));
            ridx.push_back(j);
          }
        }
      }
    }
    AliasBatch merged = MergePair(left, right, lidx, ridx);
    ReleaseBatch(&left);
    ReleaseBatch(&right);
    ChargeBatch(merged);
    if (stats_) {
      stats_->tuples_materialized += static_cast<int64_t>(merged.rows);
    }
    return merged;
  }

  /// Grace fallback for the hash join: the build side's rows move to
  /// hash-partitioned spill files (raw int64 frames: original build row
  /// index, key hash, then one pre rank per build-bound alias) and RAM
  /// holds one rebuilt partition at a time while the resident probe side
  /// runs against it. Emitted (probe row, build row) pairs are re-sorted
  /// by (probe row, original build row) — exactly the serial probe's
  /// emission order (outer rows ascending, bucket candidates in build
  /// arrival order, which is ascending) — so the merged output is
  /// bit-identical to the in-memory join at any budget.
  Result<AliasBatch> GraceHashJoin(AliasBatch left, AliasBatch right,
                                   const std::vector<BoundQualCmp>& cmps,
                                   const BoundQualTerm& lterm,
                                   const BoundQualTerm& rterm) {
    // Aliases whose columns the build side must carry through disk.
    std::vector<size_t> rbound;
    for (size_t a = 0; a < right.bound.size(); ++a) {
      if (right.bound[a]) rbound.push_back(a);
    }
    const size_t rb = rbound.size();
    const size_t arity = 2 + rb;
    std::vector<SpillFile> parts(kSpillPartitions);
    std::vector<int64_t> frame(arity);
    for (size_t j = 0; j < right.rows; ++j) {
      XQJG_RETURN_NOT_OK(ctx_->clock.Tick());
      const Value v = rterm.Eval(BatchRow{&right, j});
      if (v.is_null()) continue;  // NULL keys never join
      const size_t h = v.Hash();
      frame[0] = static_cast<int64_t>(j);
      frame[1] = static_cast<int64_t>(h);
      for (size_t c = 0; c < rb; ++c) {
        frame[2 + c] = right.cols[rbound[c]][j];
      }
      XQJG_RETURN_NOT_OK(
          SpillAppendInts(&parts[SpillPartition(h)], frame.data(), arity));
    }
    if (stats_ != nullptr) {
      for (const SpillFile& f : parts) {
        stats_->spill_bytes += f.bytes_written();
      }
      stats_->spill_events += 1;
    }
    ReleaseBatch(&right);  // the point: the build side leaves RAM

    // Probe-side hashes and per-partition probe lists (the probe side
    // stays resident; partitions nobody probes are skipped unread).
    std::vector<std::vector<uint32_t>> plists(kSpillPartitions);
    std::vector<size_t> lhash(left.rows, 0);
    for (size_t l = 0; l < left.rows; ++l) {
      XQJG_RETURN_NOT_OK(ctx_->clock.Tick());
      const Value v = lterm.Eval(BatchRow{&left, l});
      if (v.is_null()) continue;
      lhash[l] = v.Hash();
      plists[SpillPartition(lhash[l])].push_back(static_cast<uint32_t>(l));
    }

    std::vector<uint32_t> pl, pj;  // emitted (probe, build) row pairs
    std::vector<std::vector<int64_t>> rvals(rb);  // build values per pair
    for (size_t p = 0; p < kSpillPartitions; ++p) {
      if (plists[p].empty() || !parts[p].open()) {
        parts[p].Close();
        continue;
      }
      XQJG_RETURN_NOT_OK(parts[p].Rewind());
      // Rebuild this partition's build rows; bucket insertion order is
      // ascending original build row, exactly the serial insertion order.
      AliasBatch rightp(graph_.num_aliases);
      for (size_t c = 0; c < rb; ++c) rightp.bound[rbound[c]] = 1;
      std::vector<uint32_t> jorig;
      std::unordered_map<size_t, std::vector<uint32_t>> buckets;
      for (;;) {
        XQJG_ASSIGN_OR_RETURN(
            const bool more, SpillReadInts(&parts[p], frame.data(), arity));
        if (!more) break;
        XQJG_RETURN_NOT_OK(ctx_->clock.Tick());
        buckets[static_cast<size_t>(frame[1])].push_back(
            static_cast<uint32_t>(jorig.size()));
        jorig.push_back(static_cast<uint32_t>(frame[0]));
        for (size_t c = 0; c < rb; ++c) {
          rightp.cols[rbound[c]].push_back(frame[2 + c]);
        }
      }
      rightp.rows = jorig.size();
      parts[p].Close();
      MemoryCharge part_charge(&ctx_->budget);
      part_charge.Set(AliasBatchBytes(rightp) +
                      static_cast<int64_t>(jorig.size() * sizeof(uint32_t)));
      for (uint32_t l : plists[p]) {
        auto it = buckets.find(lhash[l]);
        if (it == buckets.end()) continue;
        for (uint32_t jl : it->second) {
          XQJG_RETURN_NOT_OK(
              ctx_->clock.TickRows(static_cast<int64_t>(pl.size())));
          if (AllPass(cmps, PairRow{&left, l, &rightp, jl})) {
            pl.push_back(l);
            pj.push_back(jorig[jl]);
            for (size_t c = 0; c < rb; ++c) {
              rvals[c].push_back(rightp.cols[rbound[c]][jl]);
            }
          }
        }
      }
    }
    if (pl.size() > kMaxBatchRows) {
      return Status::Internal("join result exceeds batch row limit");
    }

    // Restore the serial emission order. Pairs are unique, so the plain
    // sort is deterministic.
    std::vector<uint32_t> perm = IdentityPerm(pl.size());
    try {
      std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
        ctx_->clock.TickThrow();
        if (pl[a] != pl[b]) return pl[a] < pl[b];
        return pj[a] < pj[b];
      });
    } catch (const BudgetExhausted&) {
      return Status::Timeout("execution exceeded wall-clock budget (DNF)");
    }
    AliasBatch out(graph_.num_aliases);
    out.rows = perm.size();
    std::vector<uint32_t> lsorted;
    lsorted.reserve(perm.size());
    for (uint32_t i : perm) lsorted.push_back(pl[i]);
    for (int a = 0; a < graph_.num_aliases; ++a) {
      const auto idx = static_cast<size_t>(a);
      if (left.bound[idx]) {
        out.bound[idx] = 1;
        out.cols[idx] = ParallelGatherInts(left.cols[idx], lsorted);
      }
    }
    for (size_t c = 0; c < rb; ++c) {
      const size_t idx = rbound[c];
      if (out.bound[idx]) continue;  // left binding wins (MergeTuples)
      out.bound[idx] = 1;
      auto& col = out.cols[idx];
      col.reserve(perm.size());
      for (uint32_t i : perm) col.push_back(rvals[c][i]);
    }
    ReleaseBatch(&left);
    ChargeBatch(out);
    if (stats_ != nullptr) {
      stats_->tuples_materialized += static_cast<int64_t>(out.rows);
    }
    return out;
  }

  AliasBatch MergeScanResult(const AliasBatch& outer, int alias,
                             const std::vector<uint32_t>& orows,
                             std::vector<int64_t> pres) {
    AliasBatch out(graph_.num_aliases);
    out.rows = pres.size();
    for (int a = 0; a < graph_.num_aliases; ++a) {
      const auto idx = static_cast<size_t>(a);
      if (!outer.bound[idx]) continue;
      out.bound[idx] = 1;
      out.cols[idx] = ParallelGatherInts(outer.cols[idx], orows);
    }
    out.bound[static_cast<size_t>(alias)] = 1;
    out.cols[static_cast<size_t>(alias)] = std::move(pres);
    return out;
  }

  AliasBatch MergePair(const AliasBatch& left, const AliasBatch& right,
                       const std::vector<uint32_t>& lidx,
                       const std::vector<uint32_t>& ridx) {
    AliasBatch out(graph_.num_aliases);
    out.rows = lidx.size();
    for (int a = 0; a < graph_.num_aliases; ++a) {
      const auto idx = static_cast<size_t>(a);
      // Left binding wins, mirroring MergeTuples.
      if (left.bound[idx]) {
        out.bound[idx] = 1;
        out.cols[idx] = ParallelGatherInts(left.cols[idx], lidx);
      } else if (right.bound[idx]) {
        out.bound[idx] = 1;
        out.cols[idx] = ParallelGatherInts(right.cols[idx], ridx);
      }
    }
    return out;
  }

  /// GatherInts, morselized into disjoint slices of the pre-sized output
  /// when the batch is worth fanning out (bitwise-identical result).
  std::vector<int64_t> ParallelGatherInts(const std::vector<int64_t>& src,
                                          const std::vector<uint32_t>& idx) {
    if (threads_ <= 1 || idx.size() < kParallelRowCutoff) {
      return GatherInts(src, idx);
    }
    std::vector<int64_t> out(idx.size());
    parallel::WorkerPool::Instance().ParallelFor(
        threads_, MorselCount(idx.size(), kMorselRows), [&](size_t m, int) {
          const size_t end = std::min(idx.size(), (m + 1) * kMorselRows);
          for (size_t r = m * kMorselRows; r < end; ++r) {
            out[r] = src[idx[r]];
          }
        });
    return out;
  }

  Status FilterBatch(const std::vector<QualComparison>& preds,
                     AliasBatch* batch) {
    if (preds.empty()) return Status::OK();
    const std::vector<BoundQualCmp> cmps =
        CompileQuals(preds, db_, batch->AliasMask(), params_);
    std::vector<uint32_t> sel;
    for (size_t r = 0; r < batch->rows; ++r) {
      XQJG_RETURN_NOT_OK(ctx_->clock.Tick());
      if (AllPass(cmps, BatchRow{batch, r})) {
        sel.push_back(static_cast<uint32_t>(r));
      }
    }
    if (sel.size() == batch->rows) return Status::OK();
    for (int a = 0; a < graph_.num_aliases; ++a) {
      const auto idx = static_cast<size_t>(a);
      if (batch->bound[idx]) {
        batch->cols[idx] = GatherInts(batch->cols[idx], sel);
      }
    }
    batch->rows = sel.size();
    return Status::OK();
  }

  /// Runs one scan (compiled once per node) with outer bindings from
  /// `outer` row `orow` (both null for leaf scans); appends matches as
  /// (outer row, pre) pairs. Mirrors the row executor's ProbeScan.
  /// `clock` is the caller's budget clock — the execution clock for
  /// serial callers, a per-morsel worker clock inside parallel regions.
  Status ProbeScan(const PhysNode* node, const CompiledScan& scan,
                   const AliasBatch* outer, size_t orow,
                   std::vector<uint32_t>* out_orow,
                   std::vector<int64_t>* out_pre, BudgetClock* clock) {
    const int alias = node->alias;
    auto emit_if_match = [&](int64_t pre) {
      // Conjuncts whose other aliases are still unbound were dropped at
      // compile time (they are re-checked at the join that binds them).
      if (!AllPass(scan.row_preds, ScanRow{outer, orow, alias, pre})) {
        return;
      }
      if (out_orow) out_orow->push_back(static_cast<uint32_t>(orow));
      out_pre->push_back(pre);
    };
    if (node->kind == PhysKind::kTbScan) {
      for (int64_t pre = 0; pre < db_.row_count(); ++pre) {
        emit_if_match(pre);
        XQJG_RETURN_NOT_OK(
            clock->TickRows(static_cast<int64_t>(out_pre->size())));
      }
      return Status::OK();
    }
    // Index scan: build the probe range from the compiled probe plan
    // (probe terms reference only outer bindings by construction).
    KeyRange range;
    if (!BuildProbeRange(scan, ScanRow{outer, orow, -1, -1}, &range)) {
      return Status::OK();  // NULL probe value never matches
    }
    bool expired = false, over_rows = false;
    node->index->tree.Scan(range, [&](const Key&, int64_t pre) {
      emit_if_match(pre);
      if (clock->RowsExceeded(static_cast<int64_t>(out_pre->size())) ||
          clock->RegionAborted()) {
        over_rows = true;
        return false;  // stop the scan
      }
      if (clock->TickQuiet() && clock->Expired()) {
        expired = true;
        return false;  // stop the scan
      }
      return true;
    });
    if (over_rows) {
      return clock->TickRows(static_cast<int64_t>(out_pre->size()));
    }
    if (expired) return clock->CheckDeadline();
    return Status::OK();
  }

  const JoinGraph& graph_;
  const Database& db_;
  const std::vector<Value>* params_;  ///< Execute-time bindings, not owned
  ExecStats* stats_;
  const int threads_;  ///< morsel workers (1 = serial)
  PlanExecCtx* ctx_;   ///< clock + memory governor, not owned
};

// ---------------------------------------------------------------------------
// Plan tail: ORDER BY + DISTINCT + item projection.

/// Drain granularity of the materializing fallback over a spilled tail.
constexpr size_t kTailDrainRows = 4096;

/// Live state of a spilled plan tail: the external sorter plus the
/// adjacent-row dedup cursor. Outlives the executor (the sorter holds
/// only spill files, boxed rows, and pointers into PlanExecCtx).
struct TailStream {
  std::unique_ptr<ExternalValueSorter> sorter;
  /// Row indices compared for DISTINCT (the sort keys when the payload
  /// equals the sort key, the trailing payload columns otherwise).
  std::vector<int> dedup_idx;
  size_t item_idx = 0;
  bool distinct = false;
  std::vector<Value> prev;  ///< last kept row (dedup reference)
  bool have_prev = false;
};

bool TailValuesEqual(const Value& a, const Value& b) {
  return a.is_null() == b.is_null() && (a.is_null() || a == b);
}

/// Pulls sorted rows out of the tail, applying DISTINCT and the NULL-item
/// skip exactly as the serial loop does, until `max_items` items were
/// appended or the sorter ran dry. Returns true when exhausted.
Result<bool> DrainTailSome(TailStream* ts, size_t max_items,
                           std::vector<int64_t>* out) {
  size_t emitted = 0;
  std::vector<Value> row;
  // Every pulled row ticked the clock inside ExternalValueSorter::Next.
  // xqjg-lint: allow(no-budget-guard)
  while (emitted < max_items) {
    XQJG_ASSIGN_OR_RETURN(const bool more, ts->sorter->Next(&row));
    if (!more) return true;
    if (ts->distinct) {
      if (ts->have_prev) {
        bool same = true;
        for (int c : ts->dedup_idx) {
          if (!TailValuesEqual(row[static_cast<size_t>(c)],
                               ts->prev[static_cast<size_t>(c)])) {
            same = false;
            break;
          }
        }
        if (same) continue;
      }
      ts->prev = row;
      ts->have_prev = true;
    }
    const Value& item = row[ts->item_idx];
    if (item.is_null()) continue;
    out->push_back(item.AsInt());
    ++emitted;
  }
  return false;
}

/// SequenceStream over a spilled plan tail: each pull merges a few rows
/// off the sorted runs. rows_total() is unknown (-1) until the drain
/// finishes — DISTINCT and the NULL-item skip decide the cardinality row
/// by row.
class PlanSequenceStream final : public SequenceStream {
 public:
  PlanSequenceStream(std::unique_ptr<PlanExecCtx> ctx,
                     std::unique_ptr<TailStream> tail)
      : ctx_(std::move(ctx)), tail_(std::move(tail)) {}

  int64_t rows_total() const override { return done_ ? emitted_ : -1; }

  Status Next(size_t max_rows, std::vector<int64_t>* out) override {
    if (done_) return Status::OK();
    const size_t before = out->size();
    Result<bool> drained = DrainTailSome(tail_.get(), max_rows, out);
    // Count rows appended even on an error path (a mid-drain timeout):
    // the caller keeps them, so the final total must include them.
    emitted_ += static_cast<int64_t>(out->size() - before);
    if (!drained.ok()) return drained.status();
    if (drained.value()) {
      done_ = true;
      if (ctx_->stats != nullptr) ctx_->stats->rows_out = emitted_;
      tail_.reset();  // drop run cursors and the dedup row now
      ctx_->SyncPeak();
    }
    return Status::OK();
  }

  int64_t retained_bytes() const override { return ctx_->budget.used(); }

 private:
  std::unique_ptr<PlanExecCtx> ctx_;
  std::unique_ptr<TailStream> tail_;
  int64_t emitted_ = 0;
  bool done_ = false;
};

/// Runs the physical tree and its tail. Sort keys (ORDER BY terms +
/// item) are compiled once against the typed columns and evaluated
/// exactly once per tuple — the row executor re-derives them O(n log n)
/// times. In memory the tail is one stable sort over a row permutation;
/// when the governor is over budget the rows route through the external
/// sorter instead, and `*stream_out` (when the caller accepts streaming)
/// receives the live merge state in place of a materialized vector.
Result<std::vector<int64_t>> RunPlanToItems(
    const PhysicalPlan& plan, const Database& db,
    const PlannerOptions& options, ExecStats* stats, PlanExecCtx* ctx,
    std::unique_ptr<TailStream>* stream_out) {
  const JoinGraph& graph = *plan.graph;
  ColumnarPlanExecutor executor(graph, db, options, stats, ctx);
  XQJG_ASSIGN_OR_RETURN(AliasBatch tuples, executor.Run(plan.root.get()));
  if (tuples.rows > std::numeric_limits<uint32_t>::max()) {
    return Status::Internal("plan result exceeds batch row limit");
  }
  BudgetClock* clock = &ctx->clock;

  const size_t n = tuples.rows;
  // Key evaluation fans out over row morsels into disjoint slices of the
  // pre-sized column; the sort itself stays a serial merge barrier.
  auto eval_term_column = [&](const QualTerm& qt,
                              std::vector<Value>* out_col) -> Status {
    const BoundQualTerm term(qt, db);
    if (options.threads > 1 && n >= kParallelRowCutoff) {
      out_col->resize(n);
      RegionBudget budget(*clock);
      parallel::WorkerPool::Instance().ParallelFor(
          options.threads, MorselCount(n, kMorselRows),
          [&](size_t m, int) {
            BudgetClock wclock = budget.Worker();
            const size_t end = std::min(n, (m + 1) * kMorselRows);
            for (size_t r = m * kMorselRows; r < end; ++r) {
              (*out_col)[r] = term.Eval(BatchRow{&tuples, r});
              Status st = wclock.Tick();
              if (!st.ok()) {
                budget.Abort(st);
                return;
              }
            }
          });
      return budget.status();
    }
    out_col->reserve(n);
    for (size_t r = 0; r < n; ++r) {
      out_col->push_back(term.Eval(BatchRow{&tuples, r}));
      XQJG_RETURN_NOT_OK(clock->Tick());
    }
    return Status::OK();
  };
  std::vector<std::vector<Value>> keys(graph.order_by.size() + 1);
  for (size_t kcol = 0; kcol < keys.size(); ++kcol) {
    XQJG_RETURN_NOT_OK(eval_term_column(kcol < graph.order_by.size()
                                            ? graph.order_by[kcol]
                                            : graph.item,
                                        &keys[kcol]));
  }
  MemoryCharge keys_charge(&ctx->budget);
  keys_charge.Set(
      static_cast<int64_t>(keys.size() * n * sizeof(Value)));
  const bool dedup_by_key =
      graph.distinct && graph.DistinctPayloadEqualsSortKey();

  if (ctx->budget.ShouldSpill() && n >= kMinSpillRows) {
    // ---- External tail: the sort works off disk runs. Rows carry the
    // sort keys (item last, exactly the serial comparator) plus the
    // DISTINCT payload when it differs from the keys; the run merge with
    // run-index tie-break reproduces the stable in-memory sort.
    std::vector<std::vector<Value>> payload_cols;
    if (graph.distinct && !dedup_by_key) {
      payload_cols.resize(graph.select_list.size());
      for (size_t c = 0; c < graph.select_list.size(); ++c) {
        XQJG_RETURN_NOT_OK(
            eval_term_column(graph.select_list[c], &payload_cols[c]));
      }
      keys_charge.Add(
          static_cast<int64_t>(payload_cols.size() * n * sizeof(Value)));
    }
    ctx->budget.Release(AliasBatchBytes(tuples));
    tuples = AliasBatch();
    const size_t nkeys = keys.size();
    const size_t arity = nkeys + payload_cols.size();
    std::vector<int> sort_keys(nkeys);
    std::iota(sort_keys.begin(), sort_keys.end(), 0);
    auto ts = std::make_unique<TailStream>();
    ts->sorter = std::make_unique<ExternalValueSorter>(
        &ctx->clock, &ctx->budget, stats, arity, std::move(sort_keys));
    for (size_t r = 0; r < n; ++r) {
      std::vector<Value> row;
      row.reserve(arity);
      for (size_t c = 0; c < nkeys; ++c) row.push_back(std::move(keys[c][r]));
      for (auto& pc : payload_cols) row.push_back(std::move(pc[r]));
      XQJG_RETURN_NOT_OK(ts->sorter->Add(std::move(row)));
    }
    keys.clear();
    payload_cols.clear();
    keys_charge.Reset();
    XQJG_RETURN_NOT_OK(ts->sorter->Finish());
    ts->distinct = graph.distinct;
    ts->item_idx = nkeys - 1;
    if (graph.distinct) {
      const size_t lo = dedup_by_key ? 0 : nkeys;
      const size_t hi = dedup_by_key ? nkeys : arity;
      for (size_t c = lo; c < hi; ++c) {
        ts->dedup_idx.push_back(static_cast<int>(c));
      }
    }
    if (stream_out != nullptr) {
      *stream_out = std::move(ts);
      return std::vector<int64_t>{};
    }
    std::vector<int64_t> out;
    for (;;) {
      XQJG_ASSIGN_OR_RETURN(const bool exhausted,
                            DrainTailSome(ts.get(), kTailDrainRows, &out));
      if (exhausted) break;
    }
    if (stats) stats->rows_out = static_cast<int64_t>(out.size());
    return out;
  }

  // ---- In-memory tail: one stable sort over a row permutation.
  std::vector<uint32_t> perm = IdentityPerm(n);
  try {
    std::stable_sort(perm.begin(), perm.end(),
                     [&](uint32_t a, uint32_t b) {
                       clock->TickThrow();
                       for (const auto& kc : keys) {
                         if (kc[a].SortLess(kc[b])) return true;
                         if (kc[b].SortLess(kc[a])) return false;
                       }
                       return false;
                     });
  } catch (const BudgetExhausted&) {
    return Status::Timeout("execution exceeded wall-clock budget (DNF)");
  }

  // DISTINCT payload: when the select list carries exactly the sort-key
  // terms (the common shape after isolation — tail metadata from opt/),
  // adjacent key comparison suffices; otherwise evaluate the payload.
  std::vector<std::vector<Value>> payload_cols;
  if (graph.distinct && !dedup_by_key) {
    payload_cols.resize(graph.select_list.size());
    for (size_t c = 0; c < graph.select_list.size(); ++c) {
      XQJG_RETURN_NOT_OK(
          eval_term_column(graph.select_list[c], &payload_cols[c]));
    }
  }
  const std::vector<std::vector<Value>>& dedup_cols =
      dedup_by_key ? keys : payload_cols;

  std::vector<int64_t> out;
  const std::vector<Value>& item_col = keys.back();
  bool have_prev = false;
  uint32_t prev_row = 0;
  for (uint32_t r : perm) {
    XQJG_RETURN_NOT_OK(clock->Tick());
    if (graph.distinct) {
      if (have_prev) {
        bool same = true;
        for (const auto& col : dedup_cols) {
          if (!TailValuesEqual(col[r], col[prev_row])) {
            same = false;
            break;
          }
        }
        if (same) continue;
      }
      prev_row = r;
      have_prev = true;
    }
    const Value& item = item_col[r];
    if (item.is_null()) continue;
    out.push_back(item.AsInt());
  }
  if (stats) stats->rows_out = static_cast<int64_t>(out.size());
  return out;
}

}  // namespace

Result<std::vector<int64_t>> ExecutePlanColumnar(const PhysicalPlan& plan,
                                                 const Database& db,
                                                 const PlannerOptions& options,
                                                 ExecStats* stats) {
  PlanExecCtx ctx(options.limits);
  ctx.stats = stats;
  Result<std::vector<int64_t>> out =
      RunPlanToItems(plan, db, options, stats, &ctx, nullptr);
  ctx.SyncPeak();
  return out;
}

Result<std::unique_ptr<SequenceStream>> OpenPlanStreamColumnar(
    const PhysicalPlan& plan, const Database& db,
    const PlannerOptions& options, ExecStats* stats) {
  auto ctx = std::make_unique<PlanExecCtx>(options.limits);
  ctx->stats = stats;
  std::unique_ptr<TailStream> tail;
  XQJG_ASSIGN_OR_RETURN(
      std::vector<int64_t> items,
      RunPlanToItems(plan, db, options, stats, ctx.get(), &tail));
  ctx->SyncPeak();
  if (tail != nullptr) {
    std::unique_ptr<SequenceStream> stream =
        std::make_unique<PlanSequenceStream>(std::move(ctx), std::move(tail));
    return stream;
  }
  // The in-memory tail already materialized the sequence; hand it out
  // through the adapter (its retained_bytes honestly reports the vector).
  std::unique_ptr<SequenceStream> stream =
      std::make_unique<VectorSequenceStream>(std::move(items));
  return stream;
}

}  // namespace xqjg::engine::columnar
