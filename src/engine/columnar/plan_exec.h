// Columnar executor for the cost-based physical plans of
// src/engine/planner.h.
//
// The row executor threads one std::vector<int64_t> tuple at a time
// through the join tree (a heap allocation per tuple, plus re-evaluation
// of every ORDER BY term O(n log n) times in the plan tail). This
// executor keeps intermediates as alias columns — one contiguous int64
// pre-rank column per bound doc alias — probes scans and joins in
// batches, and evaluates the plan-tail sort keys exactly once per tuple.
// Emission order, predicate semantics (NULL join keys never match), and
// the DISTINCT tail mirror the row executor exactly; the differential
// suite holds both to identical result sequences.
//
// Selected via PlannerOptions::use_columnar.
#ifndef XQJG_ENGINE_COLUMNAR_PLAN_EXEC_H_
#define XQJG_ENGINE_COLUMNAR_PLAN_EXEC_H_

#include <vector>

#include "src/common/status.h"
#include "src/engine/exec_options.h"
#include "src/engine/planner.h"

namespace xqjg::engine::columnar {

/// Drop-in batch replacement for ExecutePlan: returns result-sequence pre
/// ranks (ordered, DISTINCT applied per the graph's tail).
Result<std::vector<int64_t>> ExecutePlanColumnar(const PhysicalPlan& plan,
                                                 const Database& db,
                                                 const PlannerOptions& options,
                                                 ExecStats* stats);

}  // namespace xqjg::engine::columnar

#endif  // XQJG_ENGINE_COLUMNAR_PLAN_EXEC_H_
