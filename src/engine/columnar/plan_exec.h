// Columnar executor for the cost-based physical plans of
// src/engine/planner.h.
//
// The row executor threads one std::vector<int64_t> tuple at a time
// through the join tree (a heap allocation per tuple, plus re-evaluation
// of every ORDER BY term O(n log n) times in the plan tail). This
// executor keeps intermediates as alias columns — one contiguous int64
// pre-rank column per bound doc alias — probes scans and joins in
// batches, and evaluates the plan-tail sort keys exactly once per tuple.
// Emission order, predicate semantics (NULL join keys never match), and
// the DISTINCT tail mirror the row executor exactly; the differential
// suite holds both to identical result sequences.
//
// Execution is governed by ExecLimits::max_memory_bytes: every live
// alias batch is charged against the budget, an over-budget hash join
// falls back to a Grace partitioned build (engine/spill.h), and the
// ORDER BY tail routes through the shared external-merge sorter — all
// bit-identical to the unlimited in-memory run (see spill.h for the
// order-exactness argument).
//
// Selected via PlannerOptions::use_columnar.
#ifndef XQJG_ENGINE_COLUMNAR_PLAN_EXEC_H_
#define XQJG_ENGINE_COLUMNAR_PLAN_EXEC_H_

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/engine/exec_options.h"
#include "src/engine/exec_stream.h"
#include "src/engine/planner.h"

namespace xqjg::engine::columnar {

/// Drop-in batch replacement for ExecutePlan: returns result-sequence pre
/// ranks (ordered, DISTINCT applied per the graph's tail).
Result<std::vector<int64_t>> ExecutePlanColumnar(const PhysicalPlan& plan,
                                                 const Database& db,
                                                 const PlannerOptions& options,
                                                 ExecStats* stats);

/// Streaming form: runs the join tree, then hands the tail back as a
/// SequenceStream. When the memory governor pushed the ORDER BY sort to
/// disk the stream merges spilled runs batch by batch (rows_total() is
/// -1 until drained — DISTINCT and the NULL-item skip decide the count
/// row by row); otherwise it wraps the already-materialized sequence.
/// `db` and `options.params` must outlive the stream.
Result<std::unique_ptr<SequenceStream>> OpenPlanStreamColumnar(
    const PhysicalPlan& plan, const Database& db,
    const PlannerOptions& options, ExecStats* stats);

}  // namespace xqjg::engine::columnar

#endif  // XQJG_ENGINE_COLUMNAR_PLAN_EXEC_H_
