#include "src/engine/database.h"

#include <algorithm>
#include <set>

#include "src/common/str.h"

namespace xqjg::engine {

const std::vector<std::string>& EngineDocColumns() {
  static const std::vector<std::string> kCols = {
      "pre", "size", "level", "kind", "name", "value",
      "data", "parent", "root", "pss"};
  return kCols;
}

std::string IndexDef::ToString() const {
  std::string out = name + " (" + Join(key_columns, ", ") + ")";
  if (!include_columns.empty()) {
    out += " INCLUDE (" + Join(include_columns, ", ") + ")";
  }
  if (clustered) out += " CLUSTERED";
  return out;
}

double ColumnStats::EqSelectivity(const Value& v) const {
  if (row_count == 0) return 0.0;
  if (!frequent.empty()) {
    auto it = frequent.find(v.ToString());
    if (it == frequent.end()) return 0.5 / static_cast<double>(row_count);
    return static_cast<double>(it->second) / static_cast<double>(row_count);
  }
  if (ndv <= 0) return 0.0;
  return 1.0 / static_cast<double>(ndv);
}

double ColumnStats::RangeSelectivity(const Value& lo, const Value& hi) const {
  if (row_count == 0 || bucket_bounds.empty()) return 0.1;
  const double buckets = static_cast<double>(bucket_bounds.size());
  auto position = [&](const Value& v) {
    size_t idx = 0;
    while (idx < bucket_bounds.size() && bucket_bounds[idx].SortLess(v)) ++idx;
    return static_cast<double>(idx) / buckets;
  };
  double from = lo.is_null() ? 0.0 : position(lo);
  double to = hi.is_null() ? 1.0 : position(hi);
  return std::max(1.0 / static_cast<double>(row_count),
                  std::max(0.0, to - from));
}

std::unique_ptr<Database> Database::Build(const xml::DocTable& doc) {
  auto db = std::make_unique<Database>();
  db->source_ = &doc;
  db->row_count_ = doc.row_count();
  const auto& cols = EngineDocColumns();
  db->columns_.resize(cols.size());
  for (auto& col : db->columns_) {
    col.reserve(static_cast<size_t>(doc.row_count()));
  }
  for (int64_t pre = 0; pre < doc.row_count(); ++pre) {
    db->columns_[0].push_back(Value::Int(pre));
    db->columns_[1].push_back(Value::Int(doc.size(pre)));
    db->columns_[2].push_back(Value::Int(doc.level(pre)));
    db->columns_[3].push_back(Value::Int(static_cast<int64_t>(doc.kind(pre))));
    db->columns_[4].push_back(Value::String(doc.name(pre)));
    db->columns_[5].push_back(doc.has_value(pre)
                                  ? Value::String(doc.value(pre))
                                  : Value::Null());
    db->columns_[6].push_back(doc.has_data(pre) ? Value::Double(doc.data(pre))
                                                : Value::Null());
    db->columns_[7].push_back(Value::Int(doc.Parent(pre)));
    db->columns_[8].push_back(Value::Int(doc.Root(pre)));
    db->columns_[9].push_back(Value::Int(pre + doc.size(pre)));
  }
  // Statistics: ndv, min/max, equi-depth histogram; exact frequencies for
  // the low-cardinality columns kind and name.
  db->stats_.resize(cols.size());
  for (size_t c = 0; c < cols.size(); ++c) {
    ColumnStats& st = db->stats_[c];
    st.row_count = db->row_count_;
    std::vector<const Value*> non_null;
    non_null.reserve(db->columns_[c].size());
    for (const Value& v : db->columns_[c]) {
      if (!v.is_null()) non_null.push_back(&v);
    }
    if (non_null.empty()) continue;
    std::sort(non_null.begin(), non_null.end(),
              [](const Value* a, const Value* b) { return a->SortLess(*b); });
    st.min = *non_null.front();
    st.max = *non_null.back();
    int64_t ndv = 1;
    for (size_t i = 1; i < non_null.size(); ++i) {
      if (non_null[i - 1]->SortLess(*non_null[i])) ++ndv;
    }
    st.ndv = ndv;
    const size_t kBuckets = 32;
    for (size_t b = 1; b <= kBuckets; ++b) {
      st.bucket_bounds.push_back(
          *non_null[std::min(non_null.size() - 1,
                             b * non_null.size() / kBuckets)]);
    }
    if (cols[c] == "kind" || cols[c] == "name") {
      for (const Value* v : non_null) st.frequent[v->ToString()]++;
    }
  }
  return db;
}

int Database::ColumnIndex(const std::string& name) const {
  const auto& cols = EngineDocColumns();
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Status Database::CreateIndex(const IndexDef& def) {
  auto index = std::make_unique<Index>();
  index->def = def;
  for (const auto& col : def.key_columns) {
    int idx = ColumnIndex(col);
    if (idx < 0) return Status::InvalidArgument("unknown column " + col);
    index->key_cols.push_back(idx);
  }
  std::vector<std::pair<Key, int64_t>> entries;
  entries.reserve(static_cast<size_t>(row_count_));
  for (int64_t pre = 0; pre < row_count_; ++pre) {
    Key key;
    key.reserve(index->key_cols.size());
    for (int c : index->key_cols) key.push_back(Cell(pre, c));
    entries.emplace_back(std::move(key), pre);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              int c = CompareKeyPrefix(a.first, b.first);
              if (c != 0) return c < 0;
              return a.second < b.second;
            });
  index->tree.BulkLoad(std::move(entries));
  indexes_.push_back(std::move(index));
  return Status::OK();
}

void Database::DropAllIndexes() { indexes_.clear(); }

namespace {

void AddIndex(std::vector<IndexDef>* out, const std::string& name,
              std::vector<std::string> keys,
              std::vector<std::string> includes = {}, bool clustered = false) {
  for (const auto& existing : *out) {
    if (existing.name == name) return;
  }
  out->push_back(IndexDef{name, std::move(keys), std::move(includes),
                          clustered});
}

}  // namespace

std::vector<IndexDef> TableVIIndexes() {
  // Paper Table VI with the key-letter mapping p:pre, s:pre+size(=pss),
  // l:level, k:kind, n:name, v:value, d:data — extended by one
  // parent-prefixed key (qnkp) for the attribute/owner and sibling steps
  // our `parent` encoding column supports.
  std::vector<IndexDef> out;
  AddIndex(&out, "nkspl", {"name", "kind", "pss", "pre", "level"});
  AddIndex(&out, "nlkps", {"name", "level", "kind", "pre", "pss"});
  AddIndex(&out, "nksp", {"name", "kind", "pss", "pre"});
  AddIndex(&out, "nlkp", {"name", "level", "kind", "pre"});
  AddIndex(&out, "vnlkp", {"value", "name", "level", "kind", "pre"});
  AddIndex(&out, "nlkpv", {"name", "level", "kind", "pre", "value"});
  AddIndex(&out, "nkdlp", {"name", "kind", "data", "level", "pre"});
  AddIndex(&out, "p-nvkls", {"pre"},
           {"name", "value", "kind", "level", "pss"}, /*clustered=*/true);
  AddIndex(&out, "qnkp", {"parent", "name", "kind", "pre"});
  return out;
}

std::vector<IndexDef> AdviseIndexes(
    const std::vector<const opt::JoinGraph*>& workload) {
  // Feature scan over the workload's conjunctive predicates — the join
  // graph SQL is completely regular (paper §IV), so a handful of
  // predicate shapes determines the useful key layouts.
  bool name_tests = false;       // name = '...' equality
  bool level_preds = false;      // level° + 1 = level (child steps)
  bool pre_ranges = false;       // pre BETWEEN ... (descendant/child)
  bool value_comparisons = false;
  bool data_comparisons = false;
  bool parent_joins = false;     // attribute / sibling steps
  bool serialization = false;    // bare pre-range scans of full rows
  for (const opt::JoinGraph* jg : workload) {
    for (const auto& p : jg->predicates) {
      auto mentions = [&](const char* col) {
        return p.lhs.col == col || p.lhs.col2 == col || p.rhs.col == col ||
               p.rhs.col2 == col;
      };
      if (mentions("name") && p.op == algebra::CmpOp::kEq) name_tests = true;
      if (mentions("level")) level_preds = true;
      if (mentions("pre") && p.op != algebra::CmpOp::kEq) pre_ranges = true;
      if (mentions("value")) value_comparisons = true;
      if (mentions("data")) data_comparisons = true;
      if (mentions("parent")) parent_joins = true;
    }
    // A select list wider than a couple of columns means full infoset rows
    // flow to serialization.
    if (jg->select_list.size() >= 2) serialization = true;
  }
  std::vector<IndexDef> out;
  if (name_tests && pre_ranges) {
    AddIndex(&out, "nkspl", {"name", "kind", "pss", "pre", "level"});
    AddIndex(&out, "nksp", {"name", "kind", "pss", "pre"});
  }
  if (name_tests && level_preds) {
    AddIndex(&out, "nlkps", {"name", "level", "kind", "pre", "pss"});
    AddIndex(&out, "nlkp", {"name", "level", "kind", "pre"});
  }
  if (value_comparisons) {
    AddIndex(&out, "vnlkp", {"value", "name", "level", "kind", "pre"});
    AddIndex(&out, "nlkpv", {"name", "level", "kind", "pre", "value"});
  }
  if (data_comparisons) {
    AddIndex(&out, "nkdlp", {"name", "kind", "data", "level", "pre"});
  }
  if (parent_joins) {
    AddIndex(&out, "qnkp", {"parent", "name", "kind", "pre"});
  }
  if (serialization) {
    AddIndex(&out, "p-nvkls", {"pre"},
             {"name", "value", "kind", "level", "pss"}, /*clustered=*/true);
  }
  return out;
}

}  // namespace xqjg::engine
