#include "src/engine/database.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "src/common/str.h"
#include "src/xml/doc_block.h"

namespace xqjg::engine {

const std::vector<std::string>& EngineDocColumns() {
  static const std::vector<std::string> kCols = {
      "pre", "size", "level", "kind", "name", "value",
      "data", "parent", "root", "pss"};
  return kCols;
}

std::string IndexDef::ToString() const {
  std::string out = name + " (" + Join(key_columns, ", ") + ")";
  if (!include_columns.empty()) {
    out += " INCLUDE (" + Join(include_columns, ", ") + ")";
  }
  if (clustered) out += " CLUSTERED";
  return out;
}

double ColumnStats::EqSelectivity(const Value& v) const {
  if (row_count == 0) return 0.0;
  if (!frequent.empty()) {
    auto it = frequent.find(v.ToString());
    if (it == frequent.end()) return 0.5 / static_cast<double>(row_count);
    return static_cast<double>(it->second) / static_cast<double>(row_count);
  }
  if (ndv <= 0) return 0.0;
  return 1.0 / static_cast<double>(ndv);
}

double ColumnStats::RangeSelectivity(const Value& lo, const Value& hi) const {
  if (row_count == 0 || bucket_bounds.empty()) return 0.1;
  const double buckets = static_cast<double>(bucket_bounds.size());
  auto position = [&](const Value& v) {
    size_t idx = 0;
    while (idx < bucket_bounds.size() && bucket_bounds[idx].SortLess(v)) ++idx;
    return static_cast<double>(idx) / buckets;
  };
  double from = lo.is_null() ? 0.0 : position(lo);
  double to = hi.is_null() ? 1.0 : position(hi);
  return std::max(1.0 / static_cast<double>(row_count),
                  std::max(0.0, to - from));
}

namespace {

constexpr size_t kStatBuckets = 32;

/// Equi-depth bucket positions of the old Value-based collector: the
/// sorted element at min(n-1, b*n/32) for b = 1..32.
template <typename Emit>
void EmitBucketPositions(size_t n, const Emit& emit) {
  for (size_t b = 1; b <= kStatBuckets; ++b) {
    emit(std::min(n - 1, b * n / kStatBuckets));
  }
}

/// Sorted-typed-array statistics shared by the int64 and double
/// collectors: sort the non-NULL payload, then derive ndv / min / max /
/// bounds (and exact frequencies) — one algorithm, one place.
template <typename T, typename Box>
void CollectSortedStats(const ValueColumn& col,
                        const std::vector<T>& payload, const Box& box,
                        bool want_frequent, ColumnStats* st) {
  std::vector<T> sorted;
  sorted.reserve(col.size());
  for (size_t r = 0; r < col.size(); ++r) {
    if (!col.IsNull(r)) sorted.push_back(payload[r]);
  }
  if (sorted.empty()) return;
  std::sort(sorted.begin(), sorted.end());
  st->min = box(sorted.front());
  st->max = box(sorted.back());
  int64_t ndv = 1;
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i - 1] < sorted[i]) ++ndv;
  }
  st->ndv = ndv;
  EmitBucketPositions(sorted.size(), [&](size_t pos) {
    st->bucket_bounds.push_back(box(sorted[pos]));
  });
  if (want_frequent) {
    for (size_t i = 0; i < sorted.size();) {
      size_t j = i;
      while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
      st->frequent[box(sorted[i]).ToString()] = static_cast<int64_t>(j - i);
      i = j;
    }
  }
}

/// Dictionary-column statistics come from the dictionary directly: one
/// count per code (a single pass over the code vector), then a sort of
/// the dictionary — never a sort or re-hash of all rows.
void CollectDictStats(const ValueColumn& col, bool want_frequent,
                      ColumnStats* st) {
  const auto& dict = col.dict().strings;
  std::vector<int64_t> count(dict.size(), 0);
  size_t non_null = 0;
  const auto& codes = col.dict_codes();
  for (size_t r = 0; r < col.size(); ++r) {
    if (col.IsNull(r)) continue;
    ++count[codes[r]];
    ++non_null;
  }
  if (non_null == 0) return;
  // Codes present at least once, in dictionary string order.
  std::vector<uint32_t> order;
  order.reserve(dict.size());
  for (uint32_t c = 0; c < dict.size(); ++c) {
    if (count[c] > 0) order.push_back(c);
  }
  std::sort(order.begin(), order.end(),
            [&](uint32_t a, uint32_t b) { return dict[a] < dict[b]; });
  st->ndv = static_cast<int64_t>(order.size());
  st->min = Value::String(dict[order.front()]);
  st->max = Value::String(dict[order.back()]);
  // Equi-depth bounds via cumulative counts over the sorted dictionary
  // (bucket positions are ascending, so one forward walk suffices).
  size_t cursor = 0;
  size_t cum_end = static_cast<size_t>(count[order[0]]);
  EmitBucketPositions(non_null, [&](size_t pos) {
    while (pos >= cum_end && cursor + 1 < order.size()) {
      ++cursor;
      cum_end += static_cast<size_t>(count[order[cursor]]);
    }
    st->bucket_bounds.push_back(Value::String(dict[order[cursor]]));
  });
  if (want_frequent) {
    for (uint32_t c : order) st->frequent[dict[c]] = count[c];
  }
}

/// Boxed fallback for representations without a typed collector (the doc
/// relation never hits this; kept so ad-hoc databases stay correct).
void CollectGenericStats(const ValueColumn& col, bool want_frequent,
                         ColumnStats* st) {
  std::vector<Value> non_null;
  non_null.reserve(col.size());
  for (size_t r = 0; r < col.size(); ++r) {
    Value v = col.GetValue(r);
    if (!v.is_null()) non_null.push_back(std::move(v));
  }
  if (non_null.empty()) return;
  std::sort(non_null.begin(), non_null.end(),
            [](const Value& a, const Value& b) { return a.SortLess(b); });
  st->min = non_null.front();
  st->max = non_null.back();
  int64_t ndv = 1;
  for (size_t i = 1; i < non_null.size(); ++i) {
    if (non_null[i - 1].SortLess(non_null[i])) ++ndv;
  }
  st->ndv = ndv;
  EmitBucketPositions(non_null.size(), [&](size_t pos) {
    st->bucket_bounds.push_back(non_null[pos]);
  });
  if (want_frequent) {
    for (const Value& v : non_null) st->frequent[v.ToString()]++;
  }
}

void CollectColumnStats(const ValueColumn& col, bool want_frequent,
                        ColumnStats* st) {
  switch (col.tag()) {
    case ColumnTag::kInt:
      CollectSortedStats(col, col.ints(), Value::Int, want_frequent, st);
      return;
    case ColumnTag::kDouble:
      CollectSortedStats(col, col.doubles(), Value::Double, want_frequent,
                         st);
      return;
    case ColumnTag::kDictString:
      CollectDictStats(col, want_frequent, st);
      return;
    case ColumnTag::kString:
    case ColumnTag::kMixed:
      CollectGenericStats(col, want_frequent, st);
      return;
  }
}

}  // namespace

// GCC 12's inliner mis-tracks the control-block allocation of the
// shared Storage below at -O3 and reports a spurious
// -Wfree-nonheap-object from the vector destructors (GCC PR104475
// family); there is no non-heap free here — clang and newer GCCs agree.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wfree-nonheap-object"
#endif
std::unique_ptr<Database> Database::Build(const xml::DocTable& doc) {
  auto db = std::make_unique<Database>();
  auto storage = std::make_shared<Storage>();
  db->source_ = &doc;
  db->row_count_ = doc.row_count();
  const auto& cols = EngineDocColumns();
  // One materialization per corpus: a block-backed table shares its
  // columns outright (zero copies — the block's layout IS the engine
  // layout); an ad-hoc builder table materializes a fresh block first.
  // Either way xml::DocBlock is the single place that knows how to turn
  // the infoset encoding into typed columns.
  std::shared_ptr<const xml::DocBlock> block =
      doc.block() ? doc.block() : xml::DocBlock::FromTable(doc);
  storage->columns = block->columns();
  // Statistics: ndv, min/max, equi-depth histogram; exact frequencies for
  // the low-cardinality columns kind and name. Computed per typed
  // representation (dictionary columns straight from the dictionary),
  // exactly over the merged columns — delta reload/append changes the
  // columns, so stats recompute; the column BYTES are what is reused.
  storage->stats.resize(cols.size());
  for (size_t c = 0; c < cols.size(); ++c) {
    ColumnStats& st = storage->stats[c];
    st.row_count = db->row_count_;
    CollectColumnStats(*storage->columns[c],
                       cols[c] == "kind" || cols[c] == "name", &st);
  }
  db->storage_ = std::move(storage);
  return db;
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

int Database::ColumnIndex(const std::string& name) const {
  const auto& cols = EngineDocColumns();
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Status Database::CreateIndex(const IndexDef& def) {
  auto index = std::make_shared<Index>();
  index->def = def;
  for (const auto& col : def.key_columns) {
    int idx = ColumnIndex(col);
    if (idx < 0) return Status::InvalidArgument("unknown column " + col);
    index->key_cols.push_back(idx);
  }
  // Sort pre ranks over the typed arrays (no per-cell Value boxing in the
  // comparator). Per key column a three-way compare matching
  // Value::SortLess: NULLs first, then the typed payload; dictionary
  // columns compare via the lexicographic rank of their codes, computed
  // once from the dictionary.
  struct KeyColCmp {
    const ValueColumn* col;
    std::vector<uint32_t> dict_rank;  // kDictString only: code → rank
  };
  std::vector<KeyColCmp> cmps;
  cmps.reserve(index->key_cols.size());
  for (int c : index->key_cols) {
    KeyColCmp cc;
    cc.col = &Column(c);
    if (cc.col->tag() == ColumnTag::kDictString) {
      const auto& dict = cc.col->dict().strings;
      std::vector<uint32_t> order(dict.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(),
                [&](uint32_t a, uint32_t b) { return dict[a] < dict[b]; });
      cc.dict_rank.resize(dict.size());
      for (uint32_t r = 0; r < order.size(); ++r) {
        cc.dict_rank[order[r]] = r;
      }
    }
    cmps.push_back(std::move(cc));
  }
  auto cmp3 = [](const KeyColCmp& cc, size_t a, size_t b) -> int {
    const ValueColumn& col = *cc.col;
    const bool an = col.IsNull(a), bn = col.IsNull(b);
    if (an != bn) return an ? -1 : 1;
    if (an) return 0;
    switch (col.tag()) {
      case ColumnTag::kInt: {
        const int64_t x = col.ints()[a], y = col.ints()[b];
        return x < y ? -1 : (x > y ? 1 : 0);
      }
      case ColumnTag::kDouble: {
        const double x = col.doubles()[a], y = col.doubles()[b];
        return x < y ? -1 : (x > y ? 1 : 0);
      }
      case ColumnTag::kDictString: {
        const uint32_t x = cc.dict_rank[col.dict_codes()[a]];
        const uint32_t y = cc.dict_rank[col.dict_codes()[b]];
        return x < y ? -1 : (x > y ? 1 : 0);
      }
      case ColumnTag::kString: {
        const int c = col.strings()[a].compare(col.strings()[b]);
        return c < 0 ? -1 : (c > 0 ? 1 : 0);
      }
      case ColumnTag::kMixed:
        if (ValueColumn::SortLessAt(col, a, col, b)) return -1;
        if (ValueColumn::SortLessAt(col, b, col, a)) return 1;
        return 0;
    }
    return 0;
  };
  std::vector<int64_t> order(static_cast<size_t>(row_count_));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    for (const KeyColCmp& cc : cmps) {
      const int c =
          cmp3(cc, static_cast<size_t>(a), static_cast<size_t>(b));
      if (c != 0) return c < 0;
    }
    return a < b;
  });
  // Materialize the composite keys only once, in sorted order, straight
  // from the typed columns (no boxed Cell() shim in the build loop).
  std::vector<const ValueColumn*> key_columns;
  key_columns.reserve(index->key_cols.size());
  for (int c : index->key_cols) key_columns.push_back(&Column(c));
  std::vector<std::pair<Key, int64_t>> entries;
  entries.reserve(static_cast<size_t>(row_count_));
  // Index build (DDL time), not query execution.
  // xqjg-lint: allow(no-budget-guard)
  for (int64_t pre : order) {
    Key key;
    key.reserve(key_columns.size());
    for (const ValueColumn* col : key_columns) {
      key.push_back(col->GetValue(static_cast<size_t>(pre)));
    }
    entries.emplace_back(std::move(key), pre);
  }
  index->tree.BulkLoad(std::move(entries));
  indexes_.push_back(std::move(index));
  return Status::OK();
}

void Database::DropAllIndexes() { indexes_.clear(); }

namespace {

void AddIndex(std::vector<IndexDef>* out, const std::string& name,
              std::vector<std::string> keys,
              std::vector<std::string> includes = {}, bool clustered = false) {
  for (const auto& existing : *out) {
    if (existing.name == name) return;
  }
  out->push_back(IndexDef{name, std::move(keys), std::move(includes),
                          clustered});
}

}  // namespace

std::vector<IndexDef> TableVIIndexes() {
  // Paper Table VI with the key-letter mapping p:pre, s:pre+size(=pss),
  // l:level, k:kind, n:name, v:value, d:data — extended by one
  // parent-prefixed key (qnkp) for the attribute/owner and sibling steps
  // our `parent` encoding column supports.
  std::vector<IndexDef> out;
  AddIndex(&out, "nkspl", {"name", "kind", "pss", "pre", "level"});
  AddIndex(&out, "nlkps", {"name", "level", "kind", "pre", "pss"});
  AddIndex(&out, "nksp", {"name", "kind", "pss", "pre"});
  AddIndex(&out, "nlkp", {"name", "level", "kind", "pre"});
  AddIndex(&out, "vnlkp", {"value", "name", "level", "kind", "pre"});
  AddIndex(&out, "nlkpv", {"name", "level", "kind", "pre", "value"});
  AddIndex(&out, "nkdlp", {"name", "kind", "data", "level", "pre"});
  AddIndex(&out, "p-nvkls", {"pre"},
           {"name", "value", "kind", "level", "pss"}, /*clustered=*/true);
  AddIndex(&out, "qnkp", {"parent", "name", "kind", "pre"});
  return out;
}

std::vector<IndexDef> AdviseIndexes(
    const std::vector<const opt::JoinGraph*>& workload) {
  // Feature scan over the workload's conjunctive predicates — the join
  // graph SQL is completely regular (paper §IV), so a handful of
  // predicate shapes determines the useful key layouts.
  bool name_tests = false;       // name = '...' equality
  bool level_preds = false;      // level° + 1 = level (child steps)
  bool pre_ranges = false;       // pre BETWEEN ... (descendant/child)
  bool value_comparisons = false;
  bool data_comparisons = false;
  bool parent_joins = false;     // attribute / sibling steps
  bool serialization = false;    // bare pre-range scans of full rows
  for (const opt::JoinGraph* jg : workload) {
    for (const auto& p : jg->predicates) {
      auto mentions = [&](const char* col) {
        return p.lhs.col == col || p.lhs.col2 == col || p.rhs.col == col ||
               p.rhs.col2 == col;
      };
      if (mentions("name") && p.op == algebra::CmpOp::kEq) name_tests = true;
      if (mentions("level")) level_preds = true;
      if (mentions("pre") && p.op != algebra::CmpOp::kEq) pre_ranges = true;
      if (mentions("value")) value_comparisons = true;
      if (mentions("data")) data_comparisons = true;
      if (mentions("parent")) parent_joins = true;
    }
    // A select list wider than a couple of columns means full infoset rows
    // flow to serialization.
    if (jg->select_list.size() >= 2) serialization = true;
  }
  std::vector<IndexDef> out;
  if (name_tests && pre_ranges) {
    AddIndex(&out, "nkspl", {"name", "kind", "pss", "pre", "level"});
    AddIndex(&out, "nksp", {"name", "kind", "pss", "pre"});
  }
  if (name_tests && level_preds) {
    AddIndex(&out, "nlkps", {"name", "level", "kind", "pre", "pss"});
    AddIndex(&out, "nlkp", {"name", "level", "kind", "pre"});
  }
  if (value_comparisons) {
    AddIndex(&out, "vnlkp", {"value", "name", "level", "kind", "pre"});
    AddIndex(&out, "nlkpv", {"name", "level", "kind", "pre", "value"});
  }
  if (data_comparisons) {
    AddIndex(&out, "nkdlp", {"name", "kind", "data", "level", "pre"});
  }
  if (parent_joins) {
    AddIndex(&out, "qnkp", {"parent", "name", "kind", "pre"});
  }
  if (serialization) {
    AddIndex(&out, "p-nvkls", {"pre"},
             {"name", "value", "kind", "level", "pss"}, /*clustered=*/true);
  }
  return out;
}

}  // namespace xqjg::engine
