// The relational back-end's storage layer: the doc relation, column
// statistics, B-tree indexes, and the workload-driven index advisor (the
// db2advis substitute behind Table VI).
//
// The doc relation is stored columnar-native: one typed ValueColumn per
// engine column (int64 arrays for pre/size/level/kind/parent/root/pss, a
// dictionary-encoded string column for name and value, doubles-with-nulls
// for data). Hot paths — scan probes, term evaluation, index builds,
// statistics — read the typed arrays directly via Column()/the typed
// accessors. When the source DocTable is backed by a shared xml::DocBlock
// (the processor's corpora always are), Build adopts the block's column
// pointers instead of materializing a copy — the database, the columnar
// doc-relation batch, and the row lane all read the same bytes.
#ifndef XQJG_ENGINE_DATABASE_H_
#define XQJG_ENGINE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/common/value_column.h"
#include "src/engine/btree.h"
#include "src/opt/join_graph.h"
#include "src/xml/infoset.h"

namespace xqjg::engine {

/// Column order of the engine's doc relation: the algebra's doc columns
/// plus the computed column `pss` = pre + size (the paper replaces `size`
/// by this sum because it is the only way size is ever used).
const std::vector<std::string>& EngineDocColumns();

struct IndexDef {
  std::string name;                       ///< e.g. "nkspl"
  std::vector<std::string> key_columns;   ///< significant order
  std::vector<std::string> include_columns;  ///< leaf-page payload only
  bool clustered = false;

  std::string ToString() const;
};

struct ColumnStats {
  int64_t row_count = 0;
  int64_t ndv = 0;
  Value min, max;
  /// Equi-depth histogram bucket boundaries (ascending, ~32 buckets);
  /// empty for all-NULL columns.
  std::vector<Value> bucket_bounds;
  /// Exact frequencies for low-cardinality columns (kind, name).
  std::map<std::string, int64_t> frequent;

  /// Estimated fraction of rows with column = v.
  double EqSelectivity(const Value& v) const;
  /// Estimated fraction of rows within [lo, hi] (unbounded sides NULL).
  double RangeSelectivity(const Value& lo, const Value& hi) const;
};

/// One loaded database: the doc relation + indexes + statistics.
///
/// Copying a Database is cheap and copy-on-write-friendly: the typed
/// columns and statistics live in one immutable shared block, and built
/// B-trees are held through shared_ptr — a copy shares both. This is what
/// the processor's catalog snapshots rely on: index create/drop clones the
/// Database (sharing the doc-relation storage and every untouched B-tree)
/// instead of rebuilding or mutating in place, so in-flight executions
/// over the previous snapshot are never disturbed.
class Database {
 public:
  /// Builds the relation from the infoset encoding and collects stats.
  static std::unique_ptr<Database> Build(const xml::DocTable& doc);

  int64_t row_count() const { return row_count_; }

  /// Typed column access by engine column index — the storage interface
  /// every per-row loop should use (direct int64/code/double arrays).
  const ValueColumn& Column(int col) const {
    return *storage_->columns[static_cast<size_t>(col)];
  }

  /// Shared-ownership handle of one column — for sharing/identity
  /// assertions and footprint accounting (columns adopted from a
  /// DocBlock are pointer-identical to the block's).
  const std::shared_ptr<const ValueColumn>& ColumnPtr(int col) const {
    return storage_->columns[static_cast<size_t>(col)];
  }
  int ColumnIndex(const std::string& name) const;

  const ColumnStats& Stats(int col) const {
    return storage_->stats[static_cast<size_t>(col)];
  }

  /// Creates (and builds) a B-tree index.
  Status CreateIndex(const IndexDef& def);
  void DropAllIndexes();

  struct Index {
    IndexDef def;
    std::vector<int> key_cols;  ///< engine column indexes
    BTree tree;
  };
  const std::vector<std::shared_ptr<const Index>>& indexes() const {
    return indexes_;
  }

  const xml::DocTable* source() const { return source_; }

 private:
  /// The immutable doc-relation storage every copy of this Database
  /// shares. Columns are shared_ptr'd so they can additionally be shared
  /// with the xml::DocBlock they were adopted from (and with the columnar
  /// executor's doc-relation batches) — one corpus, one set of columns.
  struct Storage {
    std::vector<std::shared_ptr<const ValueColumn>> columns;
    std::vector<ColumnStats> stats;
  };

  int64_t row_count_ = 0;
  std::shared_ptr<const Storage> storage_;
  std::vector<std::shared_ptr<const Index>> indexes_;
  const xml::DocTable* source_ = nullptr;
};

/// The db2advis substitute: derives a tailored B-tree set from a join
/// graph workload (paper Table VI). Key-letter naming: p=pre, s=pre+size,
/// l=level, k=kind, n=name, v=value, d=data, q=parent, r=root.
std::vector<IndexDef> AdviseIndexes(
    const std::vector<const opt::JoinGraph*>& workload);

/// The fixed Table VI index set (what the advisor proposes for the paper's
/// Q2-with-serialization workload); used by benches and tests.
std::vector<IndexDef> TableVIIndexes();

}  // namespace xqjg::engine

#endif  // XQJG_ENGINE_DATABASE_H_
