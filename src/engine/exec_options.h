// Execution knobs shared by every query executor (the materializing row
// evaluator, the columnar batch executor, and the cost-based physical
// engine): DNF budgets, executor selection, and observable statistics.
#ifndef XQJG_ENGINE_EXEC_OPTIONS_H_
#define XQJG_ENGINE_EXEC_OPTIONS_H_

#include <chrono>
#include <cstdint>

#include "src/common/status.h"
#include "src/common/str.h"

namespace xqjg::engine {

struct ExecLimits {
  /// Abort with Status::Timeout once this wall-clock budget is exceeded
  /// (<= 0: unlimited). Emulates the paper's 20-hour DNF cutoff.
  double timeout_seconds = -1.0;
  /// Abort when an intermediate table exceeds this many rows (<= 0:
  /// unlimited); a second DNF guard against runaway Cartesian products.
  int64_t max_intermediate_rows = -1;
};

/// Counters every executor fills in (when given a sink); the bench
/// trajectory and regression tests read these.
struct ExecStats {
  int64_t rows_out = 0;
  /// Tuples written into materialized intermediates. Memoized re-reads of
  /// a shared sub-plan must NOT re-count (regression: the old evaluator
  /// deep-copied each memo hit, doubling this).
  int64_t tuples_materialized = 0;
};

struct ExecOptions {
  ExecOptions() = default;
  // NOLINTNEXTLINE(runtime/explicit): ExecLimits-only callers predate this.
  ExecOptions(const ExecLimits& l) : limits(l) {}

  ExecLimits limits;
  /// Evaluate via the columnar batch executor instead of the row-at-a-time
  /// materializer. Both produce identical tables (differential-tested).
  bool use_columnar = false;
  ExecStats* stats = nullptr;  ///< optional sink, not owned
};

/// Thrown by sort comparators when the wall-clock budget expires mid-sort
/// (a comparator cannot return Status); always caught inside the executor
/// and converted to Status::Timeout.
struct BudgetExhausted {};

/// One DNF budget, checkable from every loop. Deadline reads are amortized
/// via Tick()/TickThrow() so tight per-row loops pay ~one clock read per
/// 4096 iterations.
class BudgetClock {
 public:
  BudgetClock() = default;
  explicit BudgetClock(const ExecLimits& limits)
      : max_rows_(limits.max_intermediate_rows) {
    if (limits.timeout_seconds > 0) {
      deadline_ =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(limits.timeout_seconds));
      have_deadline_ = true;
    }
  }

  /// Row budget + deadline; call once per materialized intermediate.
  Status CheckRows(int64_t rows) const {
    if (RowsExceeded(rows)) return RowBudgetExceeded();
    return CheckDeadline();
  }

  Status CheckDeadline() const {
    if (Expired()) {
      return Status::Timeout("execution exceeded wall-clock budget (DNF)");
    }
    return Status::OK();
  }

  bool Expired() const {
    return have_deadline_ && std::chrono::steady_clock::now() > deadline_;
  }

  /// Amortized deadline check for row-producing loops.
  Status Tick() {
    if ((++tick_ & kStrideMask) == 0) return CheckDeadline();
    return Status::OK();
  }

  /// Amortized deadline check for sort comparators: throws BudgetExhausted
  /// (callers wrap the sort in try/catch and surface Status::Timeout).
  void TickThrow() {
    if ((++tick_ & kStrideMask) == 0 && Expired()) throw BudgetExhausted{};
  }

  /// Row budget for a growing intermediate plus the amortized deadline —
  /// the per-iteration guard of every tuple-producing loop in the physical
  /// plan executors. The row comparison is a plain integer check (paid on
  /// every call); the clock read is amortized like Tick().
  Status TickRows(int64_t rows) {
    if (RowsExceeded(rows)) return RowBudgetExceeded();
    return Tick();
  }

  /// Row-budget check alone — for callback loops that cannot propagate
  /// Status directly (pair with TickQuiet()/Expired() for the deadline).
  bool RowsExceeded(int64_t rows) const {
    return max_rows_ > 0 && rows > max_rows_;
  }

  /// Advances the tick counter and reports whether the deadline is due for
  /// a check — for callback loops that cannot propagate Status directly.
  bool TickQuiet() { return (++tick_ & kStrideMask) == 0; }

  int64_t max_rows() const { return max_rows_; }

 private:
  static constexpr uint64_t kStrideMask = 0xFFF;  // every 4096 calls

  Status RowBudgetExceeded() const {
    return Status::Timeout(
        StrPrintf("intermediate table exceeds %lld rows (DNF)",
                  static_cast<long long>(max_rows_)));
  }

  std::chrono::steady_clock::time_point deadline_;
  bool have_deadline_ = false;
  int64_t max_rows_ = -1;
  uint64_t tick_ = 0;
};

}  // namespace xqjg::engine

#endif  // XQJG_ENGINE_EXEC_OPTIONS_H_
