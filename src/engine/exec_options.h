// Execution knobs shared by every query executor (the materializing row
// evaluator, the columnar batch executor, and the cost-based physical
// engine): DNF budgets, executor selection, and observable statistics.
#ifndef XQJG_ENGINE_EXEC_OPTIONS_H_
#define XQJG_ENGINE_EXEC_OPTIONS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/common/status.h"
#include "src/common/str.h"
#include "src/common/value.h"

namespace xqjg::engine {

struct ExecLimits {
  /// Abort with Status::Timeout once this wall-clock budget is exceeded
  /// (<= 0: unlimited). Emulates the paper's 20-hour DNF cutoff.
  double timeout_seconds = -1.0;
  /// Abort when an intermediate table exceeds this many rows (<= 0:
  /// unlimited); a second DNF guard against runaway Cartesian products.
  int64_t max_intermediate_rows = -1;
  /// Memory budget for the columnar executors' *tracked intermediate*
  /// state, in bytes (<= 0: unlimited). Unlike the two abort knobs above
  /// this one GOVERNS instead of tripping: pipeline breakers (sorts, hash
  /// build sides, duplicate elimination) spill to disk when their buffered
  /// state would exceed the budget, and execution completes with identical
  /// results. Non-spillable breaker state (rank materialization, shared
  /// sub-DAG memos, nested-loop inner sides) is tracked — it shows up in
  /// ExecStats::peak_memory_bytes — but never aborts. The row and native
  /// oracles ignore this knob (they stay materializing by design).
  int64_t max_memory_bytes = -1;
};

/// Counters every executor fills in (when given a sink); the bench
/// trajectory and regression tests read these.
struct ExecStats {
  int64_t rows_out = 0;
  /// Tuples written into materialized intermediates. Memoized re-reads of
  /// a shared sub-plan must NOT re-count (regression: the old evaluator
  /// deep-copied each memo hit, doubling this).
  int64_t tuples_materialized = 0;
  /// High-water mark of tracked intermediate bytes (pipeline-breaker
  /// buffers; the columnar executors charge these against
  /// ExecLimits::max_memory_bytes). 0 for the row/native oracles.
  int64_t peak_memory_bytes = 0;
  /// Bytes written to spill files over the execution, and the number of
  /// times a breaker decided to spill (a run flush, a partition flush, or
  /// a build-side handover counts once each).
  int64_t spill_bytes = 0;
  int64_t spill_events = 0;
};

struct ExecOptions {
  ExecOptions() = default;
  // NOLINTNEXTLINE(runtime/explicit): ExecLimits-only callers predate this.
  ExecOptions(const ExecLimits& l) : limits(l) {}

  ExecLimits limits;
  /// Evaluate via the columnar batch executor instead of the row-at-a-time
  /// materializer. Both produce identical tables (differential-tested).
  bool use_columnar = false;
  /// Morsel workers for the columnar executors (1 = serial, today's exact
  /// code paths; the row executors always run serial so they stay
  /// byte-identical differential oracles). Results are independent of the
  /// worker count: morsel outputs merge in morsel-index order.
  int threads = 1;
  /// Execute-time values for the plan's parameter markers, indexed by
  /// binding slot (null: no parameters). Not owned; must outlive the
  /// execution.
  const std::vector<Value>* params = nullptr;
  ExecStats* stats = nullptr;  ///< optional sink, not owned
};

/// Thrown by sort comparators when the wall-clock budget expires mid-sort
/// (a comparator cannot return Status); always caught inside the executor
/// and converted to Status::Timeout.
struct BudgetExhausted {};

/// One DNF budget, checkable from every loop. Deadline reads are amortized
/// via Tick()/TickThrow() so tight per-row loops pay ~one clock read per
/// 4096 iterations.
///
/// A clock is either *serial* (the default: plain mutable counters, one
/// owning thread — exactly the pre-parallelism behavior) or a *worker*
/// clock handed out by RegionBudget::Worker() for one morsel of a parallel
/// region. A worker clock keeps its own tick counter (no shared mutable
/// state on the hot path) and cooperates through the region's shared
/// atomic core: local row production is flushed into the joint counter
/// every kFlushStride rows, and every Tick observes the region's abort
/// latch so one worker hitting a budget stops the others promptly.
class BudgetClock {
 public:
  BudgetClock() = default;
  explicit BudgetClock(const ExecLimits& limits)
      : max_rows_(limits.max_intermediate_rows) {
    if (limits.timeout_seconds > 0) {
      deadline_ =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(limits.timeout_seconds));
      have_deadline_ = true;
    }
  }

  /// Row budget + deadline; call once per materialized intermediate.
  Status CheckRows(int64_t rows) const {
    if (RowsExceeded(rows)) return RowBudgetExceeded();
    if (region_ && region_->aborted.load(std::memory_order_relaxed)) {
      return region_->Error();
    }
    return CheckDeadline();
  }

  Status CheckDeadline() const {
    if (Expired()) {
      return Status::Timeout("execution exceeded wall-clock budget (DNF)");
    }
    return Status::OK();
  }

  bool Expired() const {
    return have_deadline_ && std::chrono::steady_clock::now() > deadline_;
  }

  /// Amortized deadline check for row-producing loops. Worker clocks also
  /// observe the region abort latch here (one relaxed load per call).
  Status Tick() {
    if (region_ && region_->aborted.load(std::memory_order_relaxed)) {
      return region_->Error();
    }
    if ((++tick_ & kStrideMask) == 0) return CheckDeadline();
    return Status::OK();
  }

  /// Amortized deadline check for sort comparators: throws BudgetExhausted
  /// (callers wrap the sort in try/catch and surface Status::Timeout).
  /// Worker clocks observe the region abort latch like Tick() does — a
  /// comparator must not keep sorting after another worker hit a budget
  /// (regression: this check used to consult only the local deadline).
  void TickThrow() {
    if (region_ && region_->aborted.load(std::memory_order_relaxed)) {
      throw BudgetExhausted{};
    }
    if ((++tick_ & kStrideMask) == 0 && Expired()) throw BudgetExhausted{};
  }

  /// Row budget for a growing intermediate plus the amortized deadline —
  /// the per-iteration guard of every tuple-producing loop in the physical
  /// plan executors. The row comparison is a plain integer check (paid on
  /// every call); the clock read is amortized like Tick().
  Status TickRows(int64_t rows) {
    if (region_ && max_rows_ > 0 && rows - reported_ >= kFlushStride) {
      FlushLocalRows(rows);
    }
    if (RowsExceeded(rows)) return RowBudgetExceeded();
    return Tick();
  }

  /// Worker clocks only: folds the still-unreported tail of this clock's
  /// local container into the region's joint row counter and returns the
  /// row-budget verdict. Call exactly once when the local container is
  /// complete (morsel end) — without it the joint counter undercounts by
  /// up to kFlushStride rows per morsel. Serial clocks: plain row check.
  Status FinishLocalRows(int64_t rows) {
    if (region_ && max_rows_ > 0 && rows > reported_) FlushLocalRows(rows);
    if (RowsExceeded(rows)) return RowBudgetExceeded();
    return Status::OK();
  }

  /// Row-budget check alone — for callback loops that cannot propagate
  /// Status directly (pair with TickQuiet()/Expired() for the deadline).
  /// Worker clocks count `rows` on top of the rest of the region's
  /// production as of the last flush.
  bool RowsExceeded(int64_t rows) const {
    return max_rows_ > 0 && others_ + rows > max_rows_;
  }

  /// Advances the tick counter and reports whether the deadline is due for
  /// a check — for callback loops that cannot propagate Status directly.
  bool TickQuiet() { return (++tick_ & kStrideMask) == 0; }

  /// True when another worker in this clock's parallel region already hit
  /// a budget — callback loops should stop early and let the region
  /// surface the first error. Always false for serial clocks.
  bool RegionAborted() const {
    return region_ && region_->aborted.load(std::memory_order_relaxed);
  }

  int64_t max_rows() const { return max_rows_; }

 private:
  friend class RegionBudget;

  static constexpr uint64_t kStrideMask = 0xFFF;  // every 4096 calls
  /// Rows a worker may produce between flushes into the joint counter;
  /// bounds the region's row-budget overshoot at workers × kFlushStride.
  static constexpr int64_t kFlushStride = 256;

  /// Shared core of one parallel region's cooperative budget: the joint
  /// row counter plus a set-once first-error latch (see RegionBudget).
  struct RegionCore {
    std::atomic<int64_t> rows{0};
    std::atomic<bool> aborted{false};

    void Abort(const Status& error) {
      std::lock_guard<std::mutex> lock(mu);
      if (!aborted.load(std::memory_order_relaxed)) {
        first_error = error;
        aborted.store(true, std::memory_order_release);
      }
    }
    Status Error() const {
      std::lock_guard<std::mutex> lock(mu);
      return first_error.ok()
                 ? Status::Timeout("parallel region aborted (DNF)")
                 : first_error;
    }

    mutable std::mutex mu;
    Status first_error;  ///< guarded by mu; set exactly once
  };

  Status RowBudgetExceeded() const {
    return Status::Timeout(
        StrPrintf("intermediate table exceeds %lld rows (DNF)",
                  static_cast<long long>(max_rows_)));
  }

  /// Publishes the delta since the last flush and refreshes this worker's
  /// view of everyone else's production.
  void FlushLocalRows(int64_t rows) {
    const int64_t delta = rows - reported_;
    const int64_t total =
        region_->rows.fetch_add(delta, std::memory_order_relaxed) + delta;
    reported_ = rows;
    others_ = total - rows;
  }

  std::chrono::steady_clock::time_point deadline_;
  bool have_deadline_ = false;
  int64_t max_rows_ = -1;
  uint64_t tick_ = 0;
  // Worker mode (clocks handed out by RegionBudget::Worker()); all three
  // stay at their defaults on serial clocks, making every check above
  // reduce to the original serial logic.
  RegionCore* region_ = nullptr;  ///< not owned; outlives the worker clock
  int64_t reported_ = 0;          ///< local rows already in the joint counter
  int64_t others_ = 0;            ///< joint total minus this clock's share
};

/// Cooperative DNF budget for one parallel region: owns the shared atomic
/// row-budget core and hands out per-worker clocks (fresh tick counters
/// over the parent clock's deadline and row limits). The region must
/// outlive every worker clock it vends. Morsel bodies route any non-OK
/// status into Abort(); the first error wins and is what status() reports
/// — so a row-budget abort on worker 3 surfaces as the row-budget error,
/// not as a generic failure of whoever noticed the latch.
class RegionBudget {
 public:
  explicit RegionBudget(const BudgetClock& parent) : parent_(parent) {
    // Regions do not nest: a worker clock used as a parent would drag its
    // old region pointer into the copies.
    parent_.region_ = nullptr;
    parent_.reported_ = 0;
    parent_.others_ = 0;
  }

  RegionBudget(const RegionBudget&) = delete;
  RegionBudget& operator=(const RegionBudget&) = delete;

  /// A private clock for one morsel: shares the joint row counter and
  /// abort latch, owns its tick counter. Pair with FinishLocalRows at
  /// morsel end.
  BudgetClock Worker() {
    BudgetClock clock = parent_;
    clock.tick_ = 0;
    clock.region_ = &core_;
    return clock;
  }

  void Abort(const Status& error) { core_.Abort(error); }

  /// OK unless some worker aborted; then the first recorded error.
  Status status() const {
    return core_.aborted.load(std::memory_order_acquire) ? core_.Error()
                                                         : Status::OK();
  }

 private:
  BudgetClock parent_;
  BudgetClock::RegionCore core_;
};

/// Tracked-memory governor for one execution's intermediate state. Every
/// pipeline breaker charges the bytes it buffers and releases them when
/// the buffer is handed downstream, spilled, or destroyed. The governor
/// never fails a charge — `ShouldSpill()` tells spill-capable consumers
/// when their next buffer-full would exceed the budget, and non-spillable
/// consumers simply keep charging (the peak stays observable either way).
/// Thread-safe: parallel morsels may charge concurrently.
class MemoryBudget {
 public:
  explicit MemoryBudget(int64_t max_bytes) : max_bytes_(max_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  void Charge(int64_t bytes) {
    if (bytes <= 0) return;
    const int64_t now =
        used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed)) {
    }
  }

  void Release(int64_t bytes) {
    if (bytes > 0) used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// True when a budget is set and tracked usage already exceeds it — the
  /// signal for a spill-capable breaker to move its buffered state to
  /// disk before accepting more input.
  bool ShouldSpill() const {
    return max_bytes_ > 0 &&
           used_.load(std::memory_order_relaxed) > max_bytes_;
  }

  bool limited() const { return max_bytes_ > 0; }
  int64_t used() const { return used_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  int64_t max_bytes() const { return max_bytes_; }

 private:
  const int64_t max_bytes_;
  std::atomic<int64_t> used_{0};
  std::atomic<int64_t> peak_{0};
};

/// RAII charge against a MemoryBudget — releases what is still charged on
/// destruction. Movable so buffers can hand their accounting downstream.
class MemoryCharge {
 public:
  MemoryCharge() = default;
  explicit MemoryCharge(MemoryBudget* budget) : budget_(budget) {}
  MemoryCharge(MemoryCharge&& other) noexcept
      : budget_(other.budget_), bytes_(other.bytes_) {
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  MemoryCharge& operator=(MemoryCharge&& other) noexcept {
    if (this != &other) {
      Reset();
      budget_ = other.budget_;
      bytes_ = other.bytes_;
      other.budget_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  MemoryCharge(const MemoryCharge&) = delete;
  MemoryCharge& operator=(const MemoryCharge&) = delete;
  ~MemoryCharge() { Reset(); }

  void Add(int64_t bytes) {
    if (budget_) budget_->Charge(bytes);
    bytes_ += bytes;
  }
  /// Re-measures: adjusts the outstanding charge to `bytes` total.
  void Set(int64_t bytes) {
    if (bytes >= bytes_) {
      Add(bytes - bytes_);
      return;
    }
    if (budget_) budget_->Release(bytes_ - bytes);
    bytes_ = bytes;
  }
  void Reset() {
    if (budget_) budget_->Release(bytes_);
    bytes_ = 0;
  }

  int64_t bytes() const { return bytes_; }

 private:
  MemoryBudget* budget_ = nullptr;  ///< not owned; outlives the charge
  int64_t bytes_ = 0;
};

}  // namespace xqjg::engine

#endif  // XQJG_ENGINE_EXEC_OPTIONS_H_
