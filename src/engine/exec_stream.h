// SequenceStream — the pull interface between an executed relational
// query and the API cursor.
//
// A stream yields the result sequence's pre ranks batch by batch. For
// the pipelined columnar executors the stream is the live pipeline: the
// final sort breaker has already consumed its input when the stream is
// handed out (so rows_total() is known and the expensive work is
// attributable to Prime/Execute), and everything after it — run merge,
// batch construction, item extraction — happens on demand as the caller
// pulls. An open cursor therefore retains O(batch) tracked state plus
// any spill files, not O(result).
//
// The row and native lanes stay serial materializing oracles by design;
// VectorSequenceStream adapts their fully evaluated vectors to the same
// interface so the cursor has a single drain path.
#ifndef XQJG_ENGINE_EXEC_STREAM_H_
#define XQJG_ENGINE_EXEC_STREAM_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace xqjg::engine {

class SequenceStream {
 public:
  virtual ~SequenceStream() = default;

  /// Result cardinality, or -1 while it is still unknown. Most streams
  /// know it at open time (the pipeline is primed through its final
  /// breaker before the stream is handed out); a spilled plan tail does
  /// not — DISTINCT and the NULL-item skip decide the count row by row
  /// during the run merge — so it reports -1 until the drain finishes.
  virtual int64_t rows_total() const = 0;

  /// Appends up to `max_rows` pre ranks to *out. Appending fewer than
  /// `max_rows` (in particular zero) means the sequence is exhausted.
  virtual Status Next(size_t max_rows, std::vector<int64_t>* out) = 0;

  /// Tracked bytes of intermediate state the stream still retains
  /// (breaker buffers and merge state; spill files excluded — they are
  /// disk, which is the point).
  virtual int64_t retained_bytes() const = 0;
};

/// Adapter over a fully materialized sequence (row/native oracle lanes).
/// retained_bytes() reports the whole vector: a materialized result IS
/// retained state, and the serving tests assert the pipelined lanes stay
/// below what this adapter would report.
class VectorSequenceStream final : public SequenceStream {
 public:
  explicit VectorSequenceStream(std::vector<int64_t> pres)
      : pres_(std::move(pres)) {}

  int64_t rows_total() const override {
    return static_cast<int64_t>(pres_.size());
  }

  Status Next(size_t max_rows, std::vector<int64_t>* out) override {
    const size_t end = std::min(pres_.size(), next_ + max_rows);
    out->insert(out->end(), pres_.begin() + static_cast<ptrdiff_t>(next_),
                pres_.begin() + static_cast<ptrdiff_t>(end));
    next_ = end;
    return Status::OK();
  }

  int64_t retained_bytes() const override {
    return static_cast<int64_t>(pres_.size() * sizeof(int64_t));
  }

 private:
  std::vector<int64_t> pres_;
  size_t next_ = 0;
};

}  // namespace xqjg::engine

#endif  // XQJG_ENGINE_EXEC_STREAM_H_
