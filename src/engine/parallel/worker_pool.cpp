#include "src/engine/parallel/worker_pool.h"

#include <algorithm>
#include <thread>

namespace xqjg::engine::parallel {

WorkerPool& WorkerPool::Instance() {
  // Leaked on purpose: helper threads block on work_cv_ forever, so a
  // destructor would deadlock (or race a late region) at process exit.
  static WorkerPool* pool = new WorkerPool();
  return *pool;
}

void WorkerPool::RunRegion(Region* region, int worker) {
  const auto& body = *region->body;
  for (;;) {
    const size_t i = region->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= region->n) return;
    body(i, worker);
  }
}

void WorkerPool::ParallelFor(
    int threads, size_t n,
    const std::function<void(size_t index, int worker)>& body) {
  if (threads <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) body(i, 0);
    return;
  }
  auto region = std::make_shared<Region>();
  region->body = &body;
  region->n = n;
  region->max_helpers = std::min<int>(threads - 1, static_cast<int>(n) - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(region);
    const int want = std::min(kMaxWorkers, region->max_helpers);
    while (spawned_ < want) {
      std::thread(&WorkerPool::WorkerLoop, this).detach();
      ++spawned_;
    }
  }
  work_cv_.notify_all();
  RunRegion(region.get(), /*worker=*/0);
  // The caller only leaves RunRegion once every morsel has been claimed;
  // wait until no helper is still inside body on one of them.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return region->active == 0; });
  auto it = std::find(queue_.begin(), queue_.end(), region);
  if (it != queue_.end()) queue_.erase(it);
}

void WorkerPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return !queue_.empty(); });
    auto region = queue_.front();
    if (region->handed_out >= region->max_helpers ||
        region->next.load(std::memory_order_relaxed) >= region->n) {
      // Region is fully staffed or drained; retire it from the queue (the
      // owning caller still holds its shared_ptr) and look again.
      queue_.pop_front();
      continue;
    }
    const int worker = ++region->handed_out;  // caller is worker 0
    ++region->active;
    lock.unlock();
    RunRegion(region.get(), worker);
    lock.lock();
    if (--region->active == 0) done_cv_.notify_all();
  }
}

}  // namespace xqjg::engine::parallel
