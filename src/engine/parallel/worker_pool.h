// Process-wide shared worker pool for morsel-driven intra-query
// parallelism (Leis et al.'s morsel model adapted to the columnar
// executors): a query partitions its row space into morsels, and
// ParallelFor fans the morsel indexes out over the calling thread plus a
// bounded set of shared pool workers.
//
// Ownership/lifetime contract:
//   - One pool per process (leaked singleton): workers are lazily
//     spawned, shared by every concurrent query region, and never
//     destroyed, so process teardown cannot race an in-flight region and
//     repeated queries never pay thread creation.
//   - The calling thread always participates as worker 0 and claims
//     morsels like any helper, so ParallelFor(1, ...) degenerates to a
//     plain serial loop with zero synchronization.
//   - Morsels are claimed from a shared atomic counter (work stealing at
//     morsel granularity); callers that need deterministic output
//     concatenate per-morsel results in morsel-index order.
//
// `body(index, worker)` must not throw and must tolerate concurrent
// invocation from distinct workers; `worker` is in [0, threads) so
// callers can maintain per-worker state (e.g. a BudgetClock per worker).
#ifndef XQJG_ENGINE_PARALLEL_WORKER_POOL_H_
#define XQJG_ENGINE_PARALLEL_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>

namespace xqjg::engine::parallel {

class WorkerPool {
 public:
  /// Helper threads the process will ever spawn. Requests beyond this are
  /// clamped (the extra "workers" simply never materialize; the morsel
  /// counter hands their share to whoever is free).
  static constexpr int kMaxWorkers = 16;

  /// The shared pool (leaked: workers outlive every static destructor).
  static WorkerPool& Instance();

  /// Runs body(i, worker) for every i in [0, n), using the calling
  /// thread (worker 0) plus up to threads-1 pool workers with ids
  /// 1..threads-1. Returns when every invocation has completed. With
  /// threads <= 1 or n <= 1 this is a plain serial loop.
  void ParallelFor(int threads, size_t n,
                   const std::function<void(size_t index, int worker)>& body);

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

 private:
  /// One ParallelFor call: a shared morsel counter plus the bookkeeping
  /// that lets the caller wait for the helpers it attracted.
  struct Region {
    const std::function<void(size_t, int)>* body = nullptr;
    size_t n = 0;
    std::atomic<size_t> next{0};  ///< next unclaimed morsel index
    int max_helpers = 0;          ///< helper slots this region offers
    int handed_out = 0;           ///< helper slots taken (guarded by pool mu)
    int active = 0;               ///< helpers inside body (guarded by pool mu)
  };

  WorkerPool() = default;
  void WorkerLoop();
  /// Claims morsels until the counter is exhausted.
  static void RunRegion(Region* region, int worker);

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: a region was queued
  std::condition_variable done_cv_;  ///< callers: a region drained
  std::deque<std::shared_ptr<Region>> queue_;
  int spawned_ = 0;
};

}  // namespace xqjg::engine::parallel

#endif  // XQJG_ENGINE_PARALLEL_WORKER_POOL_H_
