#include "src/engine/planner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <map>
#include <unordered_map>

#include "src/common/str.h"
#include "src/engine/columnar/plan_exec.h"
#include "src/engine/qual_eval.h"

namespace xqjg::engine {

using algebra::CmpOp;
using opt::JoinGraph;
using opt::QualComparison;
using opt::QualTerm;

namespace {

// ---------------------------------------------------------------------------
// Tuple runtime: a tuple binds one doc row (pre) per alias; -1 = unbound.
// Qualifiers are compiled per plan node (BoundQualCmp — typed-array fast
// paths over the columnar doc relation) and evaluated through a tuple row
// view: pre_of(alias) → bound pre rank.

using Tuple = std::vector<int64_t>;

/// Row view over one tuple.
struct TupleView {
  const Tuple* t;
  int64_t operator()(int alias) const {
    return (*t)[static_cast<size_t>(alias)];
  }
};

/// Row view over a candidate join pair: left binding wins, mirroring
/// MergeTuples (merge happens only for passing pairs).
struct TuplePairView {
  const Tuple* l;
  const Tuple* r;
  int64_t operator()(int alias) const {
    const auto a = static_cast<size_t>(alias);
    return (*l)[a] >= 0 ? (*l)[a] : (*r)[a];
  }
};

bool AllPass(const std::vector<BoundQualCmp>& cmps, const auto& view) {
  for (const BoundQualCmp& c : cmps) {
    if (!c.Test(view)) return false;
  }
  return true;
}

std::vector<int> AliasesOf(const QualComparison& p) { return p.Aliases(); }

/// Aliases bound by the scans of a subtree (the bound set of its tuples).
uint32_t AliasMaskOf(const PhysNode* node) {
  if (!node) return 0;
  uint32_t mask = AliasMaskOf(node->left.get()) |
                  AliasMaskOf(node->right.get());
  if (node->kind == PhysKind::kTbScan || node->kind == PhysKind::kIxScan) {
    mask |= 1u << node->alias;
  }
  return mask;
}

/// True iff all of p's aliases lie within `mask`.
bool CoveredBy(const QualComparison& p, uint32_t mask) {
  for (int a : AliasesOf(p)) {
    if (!(mask & (1u << a))) return false;
  }
  return true;
}

bool Mentions(const QualComparison& p, int alias) {
  for (int a : AliasesOf(p)) {
    if (a == alias) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Selectivity estimation.

double PredSelectivity(const QualComparison& p, const Database& db) {
  const auto aliases = AliasesOf(p);
  // Local predicate with a constant side.
  if (aliases.size() == 1) {
    const QualTerm& col_side = p.lhs.IsConst() ? p.rhs : p.lhs;
    const QualTerm& const_side = p.lhs.IsConst() ? p.lhs : p.rhs;
    if (!const_side.IsConst() || !col_side.IsSimpleCol()) return 0.3;
    const ColumnStats& st = db.Stats(db.ColumnIndex(col_side.col));
    CmpOp op = p.lhs.IsConst() ? algebra::FlipCmpOp(p.op) : p.op;
    if (const_side.IsParam()) {
      // Parameter marker: the value is unknown at plan time, so fall back
      // to value-independent estimates (uniform 1/ndv for equality, a
      // fixed fraction for ranges) — the classic bind-peeking-free shape.
      switch (op) {
        case CmpOp::kEq:
          return st.ndv > 0 ? 1.0 / static_cast<double>(st.ndv) : 0.01;
        case CmpOp::kNe:
          return st.ndv > 0 ? 1.0 - 1.0 / static_cast<double>(st.ndv) : 0.99;
        default:
          return 1.0 / 3.0;
      }
    }
    switch (op) {
      case CmpOp::kEq:
        return st.EqSelectivity(const_side.constant);
      case CmpOp::kNe:
        return 1.0 - st.EqSelectivity(const_side.constant);
      case CmpOp::kLt:
      case CmpOp::kLe:
        return st.RangeSelectivity(Value::Null(), const_side.constant);
      default:
        return st.RangeSelectivity(const_side.constant, Value::Null());
    }
  }
  // Join predicate.
  if (p.op == CmpOp::kEq) {
    double ndv = 2;
    if (p.lhs.IsSimpleCol()) {
      ndv = std::max(ndv, static_cast<double>(
                              db.Stats(db.ColumnIndex(p.lhs.col)).ndv));
    }
    if (p.rhs.IsSimpleCol()) {
      ndv = std::max(ndv, static_cast<double>(
                              db.Stats(db.ColumnIndex(p.rhs.col)).ndv));
    }
    return 1.0 / ndv;
  }
  // Structural range conjunct (half of a containment pair): average
  // subtree fraction.
  const double n = std::max<double>(1, static_cast<double>(db.row_count()));
  const ColumnStats& size_stats = db.Stats(db.ColumnIndex("size"));
  double avg_size = 4.0;
  if (!size_stats.bucket_bounds.empty()) {
    // median of size as a robust average
    const Value& median =
        size_stats.bucket_bounds[size_stats.bucket_bounds.size() / 2];
    avg_size = std::max(1.0, median.IsNumeric() ? median.AsDouble() : 4.0);
  }
  return std::min(0.5, std::sqrt(avg_size) / std::sqrt(n));
}

// ---------------------------------------------------------------------------
// Access path selection.

struct AccessPath {
  const Database::Index* index = nullptr;  // null = table scan
  int eq_prefix = 0;
  bool has_range = false;
  double selectivity = 1.0;  // of the index-applied portion
  double cost = 0.0;
  std::vector<QualComparison> matched;   // served by the index probe
  std::vector<QualComparison> residual;  // checked per fetched row
};

/// Picks the best access path for `alias`, given conjuncts `applicable`
/// (their other aliases are bound at probe time).
AccessPath ChooseAccessPath(int alias,
                            const std::vector<QualComparison>& applicable,
                            const Database& db) {
  const double n = std::max<double>(1, static_cast<double>(db.row_count()));
  AccessPath best;
  best.cost = n;  // table scan
  best.residual = applicable;
  for (const auto& index : db.indexes()) {
    AccessPath path;
    path.index = index.get();
    std::vector<bool> used(applicable.size(), false);
    double sel = 1.0;
    // Match an equality per key column, then one range.
    size_t k = 0;
    for (; k < index->def.key_columns.size(); ++k) {
      const std::string& key_col = index->def.key_columns[k];
      bool matched_eq = false;
      for (size_t i = 0; i < applicable.size(); ++i) {
        if (used[i]) continue;
        QualComparison p = OrientTo(applicable[i], alias);
        if (p.op != CmpOp::kEq) continue;
        if (SargColumn(p.lhs, alias) != key_col) continue;
        used[i] = true;
        path.matched.push_back(applicable[i]);
        sel *= PredSelectivity(applicable[i], db);
        matched_eq = true;
        ++path.eq_prefix;
        break;
      }
      if (!matched_eq) break;
    }
    if (k < index->def.key_columns.size()) {
      const std::string& key_col = index->def.key_columns[k];
      for (size_t i = 0; i < applicable.size(); ++i) {
        if (used[i]) continue;
        QualComparison p = OrientTo(applicable[i], alias);
        if (p.op == CmpOp::kEq || p.op == CmpOp::kNe) continue;
        if (SargColumn(p.lhs, alias) != key_col) continue;
        used[i] = true;
        path.matched.push_back(applicable[i]);
        sel *= PredSelectivity(applicable[i], db);
        path.has_range = true;
      }
    }
    if (path.matched.empty()) continue;
    for (size_t i = 0; i < applicable.size(); ++i) {
      if (!used[i]) path.residual.push_back(applicable[i]);
    }
    path.selectivity = sel;
    path.cost = 2.0 * std::log2(n + 1) + sel * n;
    if (path.cost < best.cost) best = std::move(path);
  }
  return best;
}

// ---------------------------------------------------------------------------
// Join-order optimization (DP over connected subsets; greedy fallback).

struct SubPlan {
  std::unique_ptr<PhysNode> node;
  double rows = 0;
  double cost = 0;
  uint32_t mask = 0;
};

class Planner {
 public:
  Planner(const JoinGraph& graph, const Database& db,
          const PlannerOptions& options)
      : graph_(graph), db_(db), options_(options) {}

  Result<PhysicalPlan> Plan() {
    const int n = graph_.num_aliases;
    if (n == 0) return Status::InvalidArgument("join graph has no relations");
    if (options_.syntactic_order || n > 13) return PlanGreedy();
    return PlanDp();
  }

 private:
  double RowsOf(int alias) {
    double rows = static_cast<double>(db_.row_count());
    for (const auto& p : graph_.predicates) {
      if (AliasesOf(p).size() == 1 && Mentions(p, alias)) {
        rows *= PredSelectivity(p, db_);
      }
    }
    return std::max(1.0, rows);
  }

  /// Predicates fully evaluable once `mask` is bound and not evaluable on
  /// either sub-mask alone.
  std::vector<QualComparison> NewPreds(uint32_t mask, uint32_t left,
                                       uint32_t right) {
    std::vector<QualComparison> out;
    for (const auto& p : graph_.predicates) {
      if (!CoveredBy(p, mask)) continue;
      if (CoveredBy(p, left) || CoveredBy(p, right)) continue;
      out.push_back(p);
    }
    return out;
  }

  SubPlan MakeScan(int alias, uint32_t bound_mask) {
    std::vector<QualComparison> applicable;
    for (const auto& p : graph_.predicates) {
      if (Mentions(p, alias) &&
          CoveredBy(p, bound_mask | (1u << alias))) {
        applicable.push_back(p);
      }
    }
    AccessPath path = ChooseAccessPath(alias, applicable, db_);
    SubPlan plan;
    plan.mask = 1u << alias;
    auto node = std::make_unique<PhysNode>();
    node->alias = alias;
    if (path.index) {
      node->kind = PhysKind::kIxScan;
      node->index = path.index;
      node->eq_prefix = path.eq_prefix;
      node->has_range = path.has_range;
      node->preds = path.matched;
      node->preds.insert(node->preds.end(), path.residual.begin(),
                         path.residual.end());
    } else {
      node->kind = PhysKind::kTbScan;
      node->preds = path.residual;
    }
    plan.rows = RowsOf(alias);
    plan.cost = path.cost;
    node->est_rows = plan.rows;
    node->est_cost = plan.cost;
    plan.node = std::move(node);
    return plan;
  }

  SubPlan Join(SubPlan left, SubPlan right, bool right_is_single) {
    const uint32_t mask = left.mask | right.mask;
    std::vector<QualComparison> edge = NewPreds(mask, left.mask, right.mask);
    double sel = 1.0;
    for (const auto& p : edge) sel *= PredSelectivity(p, db_);
    double rows = std::max(1.0, left.rows * right.rows * sel);
    auto node = std::make_unique<PhysNode>();
    bool has_eq = false;
    for (const auto& p : edge) {
      if (p.op == CmpOp::kEq) has_eq = true;
    }
    double cost;
    if (right_is_single) {
      // Index nested-loop: re-plan the inner scan with outer bindings.
      int alias = 0;
      while (!(right.mask & (1u << alias))) ++alias;
      SubPlan inner = MakeScan(alias, left.mask);
      node->kind = PhysKind::kNlJoin;
      cost = left.cost + left.rows * inner.cost + rows;
      node->right = std::move(inner.node);
      node->preds = std::move(edge);
      node->left = std::move(left.node);
    } else if (has_eq) {
      node->kind = PhysKind::kHsJoin;
      cost = left.cost + right.cost + left.rows + right.rows + rows;
      node->preds = std::move(edge);
      node->left = std::move(left.node);
      node->right = std::move(right.node);
    } else {
      node->kind = PhysKind::kNlJoin;  // filter nested-loop
      cost = left.cost + right.cost + left.rows * right.rows;
      node->preds = std::move(edge);
      node->left = std::move(left.node);
      node->right = std::move(right.node);
    }
    node->est_rows = rows;
    node->est_cost = cost;
    SubPlan out;
    out.mask = mask;
    out.rows = rows;
    out.cost = cost;
    out.node = std::move(node);
    return out;
  }

  bool Connected(uint32_t a, uint32_t b) {
    for (const auto& p : graph_.predicates) {
      bool touches_a = false, touches_b = false;
      for (int al : AliasesOf(p)) {
        if (a & (1u << al)) touches_a = true;
        if (b & (1u << al)) touches_b = true;
      }
      if (touches_a && touches_b && CoveredBy(p, a | b)) return true;
    }
    return false;
  }

  /// Analytic estimate of a parameterized scan's probe cost and the join
  /// edge selectivity — no PhysNodes built. Memoized per (alias, mask).
  struct ScanEst {
    double cost;
  };
  double ScanCost(int alias, uint32_t bound_mask) {
    const uint64_t key =
        (static_cast<uint64_t>(alias) << 32) | bound_mask;
    auto it = scan_cost_memo_.find(key);
    if (it != scan_cost_memo_.end()) return it->second;
    std::vector<QualComparison> applicable;
    for (const auto& p : graph_.predicates) {
      if (Mentions(p, alias) && CoveredBy(p, bound_mask | (1u << alias))) {
        applicable.push_back(p);
      }
    }
    double cost = ChooseAccessPath(alias, applicable, db_).cost;
    scan_cost_memo_[key] = cost;
    return cost;
  }

  double EdgeSelectivity(uint32_t mask, uint32_t left, uint32_t right) {
    double sel = 1.0;
    for (const auto& p : graph_.predicates) {
      if (!CoveredBy(p, mask)) continue;
      if (CoveredBy(p, left) || CoveredBy(p, right)) continue;
      sel *= PredSelectivity(p, db_);
    }
    return sel;
  }

  struct DpEntry {
    double cost = 0;
    double rows = 0;
    uint32_t left = 0;  // best split (0 = leaf)
    bool valid = false;
  };

  Result<PhysicalPlan> PlanDp() {
    const int n = graph_.num_aliases;
    const uint32_t full = (1u << n) - 1;
    std::vector<DpEntry> dp(static_cast<size_t>(full) + 1);
    for (int a = 0; a < n; ++a) {
      DpEntry& e = dp[1u << a];
      e.cost = ScanCost(a, 0);
      e.rows = RowsOf(a);
      e.valid = true;
    }
    for (uint32_t mask = 1; mask <= full; ++mask) {
      if (__builtin_popcount(mask) < 2) continue;
      DpEntry best;
      for (uint32_t left = (mask - 1) & mask; left; left = (left - 1) & mask) {
        const uint32_t right = mask & ~left;
        if (!dp[left].valid || !dp[right].valid) continue;
        if (!Connected(left, right)) continue;
        const double sel = EdgeSelectivity(mask, left, right);
        const double rows =
            std::max(1.0, dp[left].rows * dp[right].rows * sel);
        double cost;
        if (__builtin_popcount(right) == 1) {
          int alias = static_cast<int>(__builtin_ctz(right));
          cost = dp[left].cost + dp[left].rows * ScanCost(alias, left) + rows;
        } else {
          cost = dp[left].cost + dp[right].cost + dp[left].rows +
                 dp[right].rows + rows;
        }
        if (!best.valid || cost < best.cost) {
          best.valid = true;
          best.cost = cost;
          best.rows = rows;
          best.left = left;
        }
      }
      if (!best.valid) {
        // Cross product fallback: split off the lowest alias.
        const uint32_t low = mask & (~mask + 1);
        const uint32_t rest = mask & ~low;
        if (dp[rest].valid && dp[low].valid) {
          best.valid = true;
          best.left = rest;
          best.rows = dp[rest].rows * dp[low].rows;
          best.cost = dp[rest].cost + dp[rest].rows * dp[low].cost +
                      best.rows;
        }
      }
      dp[mask] = best;
    }
    if (!dp[full].valid) {
      return Status::Internal("join-order DP failed to cover all relations");
    }
    // Reconstruct the plan tree along the recorded best splits.
    SubPlan root = BuildFromDp(dp, full);
    PhysicalPlan plan;
    plan.root = std::move(root.node);
    plan.est_cost = dp[full].cost;
    plan.graph = &graph_;
    return plan;
  }

  SubPlan BuildFromDp(const std::vector<DpEntry>& dp, uint32_t mask) {
    if (__builtin_popcount(mask) == 1) {
      return MakeScan(static_cast<int>(__builtin_ctz(mask)), 0);
    }
    const uint32_t left = dp[mask].left;
    const uint32_t right = mask & ~left;
    SubPlan lhs = BuildFromDp(dp, left);
    SubPlan rhs = BuildFromDp(dp, right);
    return Join(std::move(lhs), std::move(rhs),
                __builtin_popcount(right) == 1);
  }

  Result<PhysicalPlan> PlanGreedy() {
    const int n = graph_.num_aliases;
    std::vector<bool> joined(static_cast<size_t>(n), false);
    // Syntactic mode starts from alias 0; cost mode from the most
    // selective alias.
    int start = 0;
    if (!options_.syntactic_order) {
      double best_rows = 1e300;
      for (int a = 0; a < n; ++a) {
        double rows = RowsOf(a);
        if (rows < best_rows) {
          best_rows = rows;
          start = a;
        }
      }
    }
    SubPlan current = MakeScan(start, 0);
    joined[static_cast<size_t>(start)] = true;
    for (int step = 1; step < n; ++step) {
      int pick = -1;
      double pick_cost = 1e300;
      for (int a = 0; a < n; ++a) {
        if (joined[static_cast<size_t>(a)]) continue;
        if (options_.syntactic_order) {
          pick = a;
          break;
        }
        const bool connected = Connected(current.mask, 1u << a);
        const double sel =
            EdgeSelectivity(current.mask | (1u << a), current.mask, 1u << a);
        const double rows = std::max(1.0, current.rows * RowsOf(a) * sel);
        double cost = current.cost +
                      current.rows * ScanCost(a, current.mask) + rows +
                      (connected ? 0 : 1e12);
        if (cost < pick_cost) {
          pick_cost = cost;
          pick = a;
        }
      }
      current = Join(std::move(current), MakeScan(pick, current.mask), true);
      joined[static_cast<size_t>(pick)] = true;
    }
    PhysicalPlan plan;
    plan.root = std::move(current.node);
    plan.est_cost = current.cost;
    plan.graph = &graph_;
    return plan;
  }

  SubPlan ClonePlan(const SubPlan& plan) {
    SubPlan copy;
    copy.rows = plan.rows;
    copy.cost = plan.cost;
    copy.mask = plan.mask;
    copy.node = CloneNode(plan.node.get());
    return copy;
  }

  static std::unique_ptr<PhysNode> CloneNode(const PhysNode* node) {
    if (!node) return nullptr;
    auto copy = std::make_unique<PhysNode>();
    copy->kind = node->kind;
    copy->alias = node->alias;
    copy->index = node->index;
    copy->preds = node->preds;
    copy->eq_prefix = node->eq_prefix;
    copy->has_range = node->has_range;
    copy->est_rows = node->est_rows;
    copy->est_cost = node->est_cost;
    copy->left = CloneNode(node->left.get());
    copy->right = CloneNode(node->right.get());
    return copy;
  }

  const JoinGraph& graph_;
  const Database& db_;
  PlannerOptions options_;
  std::unordered_map<uint64_t, double> scan_cost_memo_;
};

// ---------------------------------------------------------------------------
// Execution.

class Executor {
 public:
  Executor(const JoinGraph& graph, const Database& db,
           const PlannerOptions& options, ExecStats* stats)
      : graph_(graph), db_(db), options_(options), stats_(stats),
        clock_(options.limits) {}

  BudgetClock* clock() { return &clock_; }

  Result<std::vector<Tuple>> Run(const PhysNode* node) {
    Result<std::vector<Tuple>> result = RunInner(node);
    static const bool trace = std::getenv("XQJG_EXEC_TRACE") != nullptr;
    if (trace && result.ok()) {
      std::fprintf(stderr, "exec %s d%d -> %zu tuples\n",
                   node->kind == PhysKind::kIxScan   ? "IXSCAN"
                   : node->kind == PhysKind::kTbScan ? "TBSCAN"
                   : node->kind == PhysKind::kNlJoin ? "NLJOIN"
                                                     : "HSJOIN",
                   node->alias, result.value().size());
    }
    return result;
  }

  Result<std::vector<Tuple>> RunInner(const PhysNode* node) {
    XQJG_RETURN_NOT_OK(CheckDeadline());
    switch (node->kind) {
      case PhysKind::kTbScan:
      case PhysKind::kIxScan: {
        std::vector<Tuple> out;
        Tuple empty(static_cast<size_t>(graph_.num_aliases), -1);
        const CompiledScan scan = CompileScan(*node, db_, 0, options_.params);
        XQJG_RETURN_NOT_OK(ProbeScan(node, scan, empty, &out));
        return out;
      }
      case PhysKind::kNlJoin: {
        XQJG_ASSIGN_OR_RETURN(std::vector<Tuple> outer, Run(node->left.get()));
        std::vector<Tuple> out;
        if (node->right->kind == PhysKind::kIxScan ||
            node->right->kind == PhysKind::kTbScan) {
          const uint32_t outer_mask = AliasMaskOf(node->left.get());
          const CompiledScan scan =
              CompileScan(*node->right, db_, outer_mask, options_.params);
          for (const Tuple& t : outer) {
            XQJG_RETURN_NOT_OK(ProbeScan(node->right.get(), scan, t, &out));
            XQJG_RETURN_NOT_OK(
                clock_.TickRows(static_cast<int64_t>(out.size())));
            XQJG_RETURN_NOT_OK(CheckDeadline());
          }
          // Edge predicates not already applied inside the probe.
          FilterInPlace(node->preds,
                        outer_mask | (1u << node->right->alias), &out);
        } else {
          XQJG_ASSIGN_OR_RETURN(std::vector<Tuple> inner,
                                Run(node->right.get()));
          const std::vector<BoundQualCmp> cmps = CompileQuals(
              node->preds, db_,
              AliasMaskOf(node->left.get()) | AliasMaskOf(node->right.get()),
              options_.params);
          for (const Tuple& l : outer) {
            for (const Tuple& r : inner) {
              XQJG_RETURN_NOT_OK(
                  clock_.TickRows(static_cast<int64_t>(out.size())));
              if (AllPass(cmps, TuplePairView{&l, &r})) {
                out.push_back(MergeTuples(l, r));
              }
            }
          }
        }
        if (stats_) {
          stats_->tuples_materialized += static_cast<int64_t>(out.size());
        }
        return out;
      }
      case PhysKind::kHsJoin: {
        XQJG_ASSIGN_OR_RETURN(std::vector<Tuple> left, Run(node->left.get()));
        XQJG_ASSIGN_OR_RETURN(std::vector<Tuple> right,
                              Run(node->right.get()));
        const uint32_t left_mask = AliasMaskOf(node->left.get());
        const uint32_t full_mask = left_mask | AliasMaskOf(node->right.get());
        const std::vector<BoundQualCmp> cmps =
            CompileQuals(node->preds, db_, full_mask, options_.params);
        // Hash on the first equality predicate; others become residual.
        const QualComparison* hash_pred = nullptr;
        for (const auto& p : node->preds) {
          if (p.op == CmpOp::kEq) {
            hash_pred = &p;
            break;
          }
        }
        std::vector<Tuple> out;
        if (!hash_pred) {
          for (const Tuple& l : left) {
            for (const Tuple& r : right) {
              XQJG_RETURN_NOT_OK(
                  clock_.TickRows(static_cast<int64_t>(out.size())));
              if (AllPass(cmps, TuplePairView{&l, &r})) {
                out.push_back(MergeTuples(l, r));
              }
            }
          }
          return out;
        }
        // Determine which side provides which term (a term is left-side
        // if every alias it references is bound by the left subtree).
        auto on_left = [&](const QualTerm& t) {
          for (int a : {t.alias, t.alias2}) {
            if (a >= 0 && !(left_mask & (1u << a))) return false;
          }
          return true;
        };
        const bool lhs_left = on_left(hash_pred->lhs);
        const BoundQualTerm lterm(
            ResolveParams(lhs_left ? hash_pred->lhs : hash_pred->rhs,
                          options_.params),
            db_);
        const BoundQualTerm rterm(
            ResolveParams(lhs_left ? hash_pred->rhs : hash_pred->lhs,
                          options_.params),
            db_);
        std::unordered_map<size_t, std::vector<size_t>> buckets;
        for (size_t j = 0; j < right.size(); ++j) {
          XQJG_RETURN_NOT_OK(clock_.Tick());
          // NULL keys never join: Value::Compare treats NULL as
          // incomparable, so rows with a NULL key are skipped outright.
          Value v = rterm.Eval(TupleView{&right[j]});
          if (v.is_null()) continue;
          buckets[v.Hash()].push_back(j);
        }
        for (const Tuple& l : left) {
          XQJG_RETURN_NOT_OK(clock_.Tick());
          Value v = lterm.Eval(TupleView{&l});
          if (v.is_null()) continue;
          auto it = buckets.find(v.Hash());
          if (it == buckets.end()) continue;
          for (size_t j : it->second) {
            XQJG_RETURN_NOT_OK(
                clock_.TickRows(static_cast<int64_t>(out.size())));
            if (AllPass(cmps, TuplePairView{&l, &right[j]})) {
              out.push_back(MergeTuples(l, right[j]));
            }
          }
        }
        if (stats_) {
          stats_->tuples_materialized += static_cast<int64_t>(out.size());
        }
        return out;
      }
    }
    return Status::Internal("unknown physical operator");
  }

 private:
  Status CheckDeadline() { return clock_.CheckDeadline(); }

  Tuple MergeTuples(const Tuple& a, const Tuple& b) {
    Tuple out = a;
    for (size_t i = 0; i < out.size(); ++i) {
      if (out[i] < 0) out[i] = b[i];
    }
    return out;
  }

  void FilterInPlace(const std::vector<QualComparison>& preds,
                     uint32_t bound_mask, std::vector<Tuple>* tuples) {
    if (preds.empty()) return;
    const std::vector<BoundQualCmp> cmps =
        CompileQuals(preds, db_, bound_mask, options_.params);
    std::vector<Tuple> kept;
    // Shrink-only pass over tuples that were budget-admitted when
    // produced.  xqjg-lint: allow(no-budget-guard)
    for (Tuple& t : *tuples) {
      if (AllPass(cmps, TupleView{&t})) kept.push_back(std::move(t));
    }
    *tuples = std::move(kept);
  }

  /// Runs a scan (compiled once per node) with outer bindings from
  /// `outer`; appends bound tuples.
  Status ProbeScan(const PhysNode* node, const CompiledScan& scan,
                   const Tuple& outer, std::vector<Tuple>* out) {
    const int alias = node->alias;
    auto emit_if_match = [&](int64_t pre) {
      // Conjuncts whose other aliases are still unbound were dropped at
      // compile time (they are re-checked at the join that binds them).
      auto view = [&](int a) {
        return a == alias ? pre : outer[static_cast<size_t>(a)];
      };
      if (!AllPass(scan.row_preds, view)) return;
      Tuple t = outer;
      t[static_cast<size_t>(alias)] = pre;
      out->push_back(std::move(t));
    };
    if (node->kind == PhysKind::kTbScan) {
      for (int64_t pre = 0; pre < db_.row_count(); ++pre) {
        emit_if_match(pre);
        XQJG_RETURN_NOT_OK(
            clock_.TickRows(static_cast<int64_t>(out->size())));
      }
      return Status::OK();
    }
    // Index scan: build the probe range from the compiled probe plan.
    KeyRange range;
    if (!BuildProbeRange(scan, TupleView{&outer}, &range)) {
      return Status::OK();  // NULL probe value never matches
    }
    bool expired = false, over_rows = false;
    node->index->tree.Scan(range, [&](const Key&, int64_t pre) {
      emit_if_match(pre);
      if (clock_.RowsExceeded(static_cast<int64_t>(out->size()))) {
        over_rows = true;
        return false;  // stop the scan
      }
      if (clock_.TickQuiet() && clock_.Expired()) {
        expired = true;
        return false;  // stop the scan
      }
      return true;
    });
    if (over_rows) {
      return clock_.TickRows(static_cast<int64_t>(out->size()));
    }
    if (expired) return clock_.CheckDeadline();
    return Status::OK();
  }

  const JoinGraph& graph_;
  const Database& db_;
  PlannerOptions options_;
  ExecStats* stats_;
  BudgetClock clock_;
};

}  // namespace

Result<PhysicalPlan> PlanJoinGraph(const JoinGraph& graph, const Database& db,
                                   const PlannerOptions& options) {
  if (graph.num_aliases > 31) {
    return Status::NotSupported("join graphs beyond 31 relations");
  }
  Planner planner(graph, db, options);
  return planner.Plan();
}

Result<std::vector<int64_t>> ExecutePlan(const PhysicalPlan& plan,
                                         const Database& db,
                                         const PlannerOptions& options,
                                         ExecStats* stats) {
  if (options.use_columnar) {
    return columnar::ExecutePlanColumnar(plan, db, options, stats);
  }
  const JoinGraph& graph = *plan.graph;
  Executor executor(graph, db, options, stats);
  BudgetClock& clock = *executor.clock();
  XQJG_ASSIGN_OR_RETURN(std::vector<Tuple> tuples, executor.Run(plan.root.get()));
  // Plan tail: ORDER BY + DISTINCT + item projection (the single SORT of
  // Fig. 10/11). Tail terms are compiled once against the typed columns.
  std::vector<BoundQualTerm> order_terms;
  order_terms.reserve(graph.order_by.size() + 1);
  for (const auto& term : graph.order_by) {
    order_terms.emplace_back(term, db);
  }
  order_terms.emplace_back(graph.item, db);
  auto order_key = [&](const Tuple& t) {
    std::vector<Value> key;
    key.reserve(order_terms.size());
    for (const auto& term : order_terms) {
      key.push_back(term.Eval(TupleView{&t}));
    }
    return key;
  };
  try {
    std::stable_sort(tuples.begin(), tuples.end(),
                     [&](const Tuple& a, const Tuple& b) {
                       clock.TickThrow();
                       return CompareKeyPrefix(order_key(a), order_key(b)) < 0;
                     });
  } catch (const BudgetExhausted&) {
    return Status::Timeout("execution exceeded wall-clock budget (DNF)");
  }
  std::vector<BoundQualTerm> select_terms;
  select_terms.reserve(graph.select_list.size());
  for (const auto& term : graph.select_list) {
    select_terms.emplace_back(term, db);
  }
  const BoundQualTerm item_term(graph.item, db);
  std::vector<int64_t> out;
  std::vector<Value> prev_payload;
  bool have_prev = false;
  for (const Tuple& t : tuples) {
    XQJG_RETURN_NOT_OK(clock.Tick());
    if (graph.distinct) {
      std::vector<Value> payload;
      payload.reserve(select_terms.size());
      for (const auto& term : select_terms) {
        payload.push_back(term.Eval(TupleView{&t}));
      }
      if (have_prev && payload.size() == prev_payload.size()) {
        bool same = true;
        for (size_t i = 0; i < payload.size(); ++i) {
          if (payload[i].is_null() != prev_payload[i].is_null() ||
              (!payload[i].is_null() && !(payload[i] == prev_payload[i]))) {
            same = false;
            break;
          }
        }
        if (same) continue;
      }
      prev_payload = std::move(payload);
      have_prev = true;
    }
    Value item = item_term.Eval(TupleView{&t});
    if (item.is_null()) continue;
    out.push_back(item.AsInt());
  }
  if (stats) stats->rows_out = static_cast<int64_t>(out.size());
  return out;
}

Result<std::unique_ptr<SequenceStream>> OpenPlanStream(
    const PhysicalPlan& plan, const Database& db,
    const PlannerOptions& options, ExecStats* stats) {
  if (options.use_columnar) {
    return columnar::OpenPlanStreamColumnar(plan, db, options, stats);
  }
  XQJG_ASSIGN_OR_RETURN(std::vector<int64_t> items,
                        ExecutePlan(plan, db, options, stats));
  std::unique_ptr<SequenceStream> stream =
      std::make_unique<VectorSequenceStream>(std::move(items));
  return stream;
}

namespace {

void ExplainNode(const PhysNode* node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  switch (node->kind) {
    case PhysKind::kTbScan:
      *out += StrPrintf("TBSCAN doc d%d", node->alias);
      break;
    case PhysKind::kIxScan:
      *out += StrPrintf("IXSCAN doc d%d [%s]%s", node->alias,
                        node->index->def.name.c_str(),
                        node->has_range ? " (range)" : "");
      break;
    case PhysKind::kNlJoin:
      *out += "NLJOIN";
      break;
    case PhysKind::kHsJoin:
      *out += "HSJOIN";
      break;
  }
  if (!node->preds.empty()) {
    std::vector<std::string> preds;
    for (const auto& p : node->preds) preds.push_back(p.ToString());
    *out += "  {" + Join(preds, " AND ") + "}";
  }
  *out += StrPrintf("  (~%.0f rows)\n", node->est_rows);
  if (node->left) ExplainNode(node->left.get(), depth + 1, out);
  if (node->right) ExplainNode(node->right.get(), depth + 1, out);
}

}  // namespace

std::string ExplainPlan(const PhysicalPlan& plan) {
  std::string out = "RETURN\n  SORT";
  if (plan.graph->distinct) out += " (distinct)";
  out += "\n";
  ExplainNode(plan.root.get(), 2, &out);
  return out;
}

}  // namespace xqjg::engine
