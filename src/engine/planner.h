// Cost-based planning and execution of isolated join graphs — the "DB2
// role" of the paper: given only vanilla B-tree indexes and statistics,
// the join-order optimizer decides XPath step order, trades axes for
// their duals, and stitches paths (paper §IV-A), because the join graph
// does not prescribe any evaluation order.
#ifndef XQJG_ENGINE_PLANNER_H_
#define XQJG_ENGINE_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/engine/database.h"
#include "src/engine/exec_options.h"
#include "src/engine/exec_stream.h"
#include "src/opt/join_graph.h"

namespace xqjg::engine {

/// Physical operators (paper Table VII).
enum class PhysKind { kIxScan, kTbScan, kNlJoin, kHsJoin };

struct PhysNode {
  PhysKind kind;
  // scans
  int alias = -1;
  const Database::Index* index = nullptr;  // kIxScan
  /// Conjuncts evaluated at this node (scan: local + parameterized;
  /// join: edge predicates).
  std::vector<opt::QualComparison> preds;
  /// For kIxScan: how many leading key columns are bound by equality, and
  /// whether the next key column carries a range (diagnostics / explain).
  int eq_prefix = 0;
  bool has_range = false;
  std::unique_ptr<PhysNode> left, right;  // kNlJoin/kHsJoin (left = outer)
  double est_rows = 0;
  double est_cost = 0;
};

struct PhysicalPlan {
  std::unique_ptr<PhysNode> root;
  const opt::JoinGraph* graph = nullptr;
  double est_cost = 0;
};

// ExecStats lives in src/engine/exec_options.h (shared by all executors).

struct PlannerOptions {
  /// Disable cost-based join ordering: join aliases in syntactic order
  /// with filter joins (the ablation baseline).
  bool syntactic_order = false;
  /// DNF budgets (wall clock + intermediate row count); both enforced by
  /// the row and the columnar physical-plan executors at every
  /// tuple-producing point.
  ExecLimits limits;
  /// Execute via the columnar batch executor (alias-column tuple store,
  /// batched probes/joins, single-pass sort keys) instead of the
  /// row-at-a-time tuple executor. Identical results, differential-tested.
  bool use_columnar = false;
  /// Morsel workers for the columnar plan executor (1 = serial, today's
  /// exact code paths; the row executor always runs serial so it stays a
  /// byte-identical differential oracle). Results are independent of the
  /// worker count: morsel outputs merge in morsel-index order.
  int threads = 1;
  /// Execute-time values for the plan's parameter markers, indexed by
  /// binding slot (null: no parameters). Not owned; must outlive the
  /// execution. Both executors substitute these into the per-node compiled
  /// qualifiers, so one PhysicalPlan serves a whole literal family.
  const std::vector<Value>* params = nullptr;
};

/// Builds the cheapest physical join tree for `graph` over `db`.
Result<PhysicalPlan> PlanJoinGraph(const opt::JoinGraph& graph,
                                   const Database& db,
                                   const PlannerOptions& options = {});

/// Executes the plan: returns result-sequence pre ranks (ordered,
/// DISTINCT applied per the graph's tail).
Result<std::vector<int64_t>> ExecutePlan(const PhysicalPlan& plan,
                                         const Database& db,
                                         const PlannerOptions& options = {},
                                         ExecStats* stats = nullptr);

/// Streaming form of ExecutePlan: opens a pull-based cursor over the
/// result sequence. On the columnar path with a spilled ORDER BY tail
/// the sort's run merge stays live and rows flow out per pull
/// (rows_total() is -1 until drained); otherwise the materialized
/// sequence is wrapped. `db`, `options.params`, and `stats` (if set)
/// must outlive the stream.
Result<std::unique_ptr<SequenceStream>> OpenPlanStream(
    const PhysicalPlan& plan, const Database& db,
    const PlannerOptions& options = {}, ExecStats* stats = nullptr);

/// DB2-visual-explain-style rendering (Fig. 10 / Fig. 11).
std::string ExplainPlan(const PhysicalPlan& plan);

}  // namespace xqjg::engine

#endif  // XQJG_ENGINE_PLANNER_H_
