// Compiled qualifier evaluation over the columnar doc relation — shared
// by both physical-plan executors (the row tuple executor in planner.cpp
// and the alias-column executor in columnar/plan_exec.cpp).
//
// A QualTerm / QualComparison is bound against the Database ONCE per plan
// node: column names resolve to typed ValueColumn pointers (no per-row
// ColumnIndex string search), all-integer terms compile to raw int64
// pointer sums, and `name = '...'`-shaped predicates compile to a single
// dictionary-code comparison. Per row, evaluation takes a row view — any
// callable mapping alias → pre rank (< 0 = unbound) — so each executor
// keeps its own tuple representation.
//
// Semantics mirror the historical boxed EvalQualTerm/EvalQualComparison
// exactly: terms are Σ cols + constant with NULL poisoning (unbound alias
// or NULL cell → NULL term), and comparisons against NULL are never true.
#ifndef XQJG_ENGINE_QUAL_EVAL_H_
#define XQJG_ENGINE_QUAL_EVAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/value.h"
#include "src/common/value_column.h"
#include "src/engine/btree.h"
#include "src/engine/database.h"
#include "src/engine/planner.h"
#include "src/opt/join_graph.h"

namespace xqjg::engine {

/// Substitutes bound parameter values into a term / comparison before it
/// is compiled against the database. Qualifiers are compiled per plan node
/// per execution, so each execution's bindings produce fresh compiled
/// quals (including the dictionary-code equality kernel) from one shared
/// PhysicalPlan. A marker without a binding keeps its NULL constant — the
/// comparison is then never true, matching NULL-comparison semantics; the
/// API layer rejects unbound parameters before execution starts.
inline opt::QualTerm ResolveParams(opt::QualTerm t,
                                   const std::vector<Value>* params) {
  if (t.param >= 0 && params &&
      static_cast<size_t>(t.param) < params->size()) {
    t.constant = (*params)[static_cast<size_t>(t.param)];
    t.param = -1;
  }
  return t;
}

inline opt::QualComparison ResolveParams(opt::QualComparison p,
                                         const std::vector<Value>* params) {
  p.lhs = ResolveParams(std::move(p.lhs), params);
  p.rhs = ResolveParams(std::move(p.rhs), params);
  return p;
}

/// A QualTerm bound to the database's typed columns.
class BoundQualTerm {
 public:
  BoundQualTerm() = default;

  BoundQualTerm(const opt::QualTerm& t, const Database& db) {
    constant_ = t.constant;
    auto bind = [&](int alias, const std::string& col) {
      if (alias < 0) return;
      Ref& r = refs_[num_refs_++];
      r.alias = alias;
      r.col = &db.Column(db.ColumnIndex(col));
      r.ints = (r.col->tag() == ColumnTag::kInt && !r.col->has_nulls())
                   ? r.col->ints().data()
                   : nullptr;
    };
    bind(t.alias, t.col);
    bind(t.alias2, t.col2);
    int_only_ =
        constant_.is_null() || constant_.type() == ValueType::kInt;
    for (int i = 0; i < num_refs_; ++i) {
      int_only_ = int_only_ && refs_[i].ints != nullptr;
    }
    // The all-absent term is the NULL term, not integer 0.
    if (num_refs_ == 0 && constant_.is_null()) int_only_ = false;
    if (int_only_ && !constant_.is_null()) const_int_ = constant_.AsInt();
  }

  /// True when every referenced column is null-free int64 and the
  /// constant (if any) is an int — EvalInt() is then exact.
  bool int_only() const { return int_only_; }

  /// Generic evaluation; `pre_of(alias)` yields the row's pre rank.
  template <typename PreOf>
  Value Eval(const PreOf& pre_of) const {
    Value acc = constant_;
    bool have = !acc.is_null();
    for (int i = 0; i < num_refs_; ++i) {
      const Ref& r = refs_[i];
      const int64_t pre = pre_of(r.alias);
      if (pre < 0) return Value::Null();
      const auto row = static_cast<size_t>(pre);
      if (r.col->IsNull(row)) return Value::Null();
      if (!AccumulateTermValue(&acc, &have, r.col->GetValue(row))) {
        return Value::Null();
      }
    }
    return acc;
  }

  /// Integer fast path (int_only() terms): returns false for a NULL term
  /// (an unbound alias).
  template <typename PreOf>
  bool EvalInt(const PreOf& pre_of, int64_t* out) const {
    int64_t v = const_int_;
    for (int i = 0; i < num_refs_; ++i) {
      const int64_t pre = pre_of(refs_[i].alias);
      if (pre < 0) return false;
      v += refs_[i].ints[pre];
    }
    *out = v;
    return true;
  }

 private:
  struct Ref {
    int alias = -1;
    const ValueColumn* col = nullptr;
    const int64_t* ints = nullptr;  // int fast path (null-free int64)
  };
  Ref refs_[2];
  int num_refs_ = 0;
  Value constant_;
  int64_t const_int_ = 0;
  bool int_only_ = false;
};

/// A QualComparison bound to the database: integer comparisons run over
/// raw int64 arrays; `dict_col = 'const'` (and ≠) over dictionary codes;
/// everything else through boxed Values with identical semantics.
class BoundQualCmp {
 public:
  BoundQualCmp() = default;

  BoundQualCmp(const opt::QualComparison& p, const Database& db)
      : lhs_(p.lhs, db), rhs_(p.rhs, db), op_(p.op) {
    fast_int_ = lhs_.int_only() && rhs_.int_only();
    if (op_ != algebra::CmpOp::kEq && op_ != algebra::CmpOp::kNe) return;
    const opt::QualTerm* col_side = nullptr;
    const opt::QualTerm* const_side = nullptr;
    if (p.lhs.IsSimpleCol() && p.rhs.IsConst() && p.rhs.alias2 < 0) {
      col_side = &p.lhs;
      const_side = &p.rhs;
    } else if (p.rhs.IsSimpleCol() && p.lhs.IsConst() && p.lhs.alias2 < 0) {
      col_side = &p.rhs;
      const_side = &p.lhs;
    }
    if (!col_side || const_side->constant.type() != ValueType::kString) {
      return;
    }
    dict_ = DictEqKernel::Compile(db.Column(db.ColumnIndex(col_side->col)),
                                  const_side->constant.AsString(),
                                  op_ == algebra::CmpOp::kNe);
    dict_alias_ = col_side->alias;
  }

  template <typename PreOf>
  bool Test(const PreOf& pre_of) const {
    if (dict_.ok) {
      const int64_t pre = pre_of(dict_alias_);
      if (pre < 0) return false;  // NULL term: comparison unknown
      return dict_.Test(static_cast<size_t>(pre));
    }
    if (fast_int_) {
      int64_t a, b;
      if (!lhs_.EvalInt(pre_of, &a) || !rhs_.EvalInt(pre_of, &b)) {
        return false;
      }
      switch (op_) {
        case algebra::CmpOp::kEq:
          return a == b;
        case algebra::CmpOp::kNe:
          return a != b;
        case algebra::CmpOp::kLt:
          return a < b;
        case algebra::CmpOp::kLe:
          return a <= b;
        case algebra::CmpOp::kGt:
          return a > b;
        case algebra::CmpOp::kGe:
          return a >= b;
      }
      return false;
    }
    const Value lhs = lhs_.Eval(pre_of);
    const Value rhs = rhs_.Eval(pre_of);
    const int c = lhs.Compare(rhs);
    if (c == Value::kNullCmp) return false;
    switch (op_) {
      case algebra::CmpOp::kEq:
        return c == 0;
      case algebra::CmpOp::kNe:
        return c != 0;
      case algebra::CmpOp::kLt:
        return c < 0;
      case algebra::CmpOp::kLe:
        return c <= 0;
      case algebra::CmpOp::kGt:
        return c > 0;
      case algebra::CmpOp::kGe:
        return c >= 0;
    }
    return false;
  }

 private:
  BoundQualTerm lhs_, rhs_;
  algebra::CmpOp op_ = algebra::CmpOp::kEq;
  bool fast_int_ = false;
  // Shared dictionary equality kernel: alias.col OP 'const' over codes.
  DictEqKernel dict_;
  int dict_alias_ = -1;
};

/// Compiles a node's predicate list (all aliases must be bound within
/// `bound_mask` for a predicate to be included; the rest are re-checked
/// at the join that binds them — same skip rule as the historical per-row
/// evaluability test, which was constant across a node's rows anyway).
inline std::vector<BoundQualCmp> CompileQuals(
    const std::vector<opt::QualComparison>& preds, const Database& db,
    uint32_t bound_mask, const std::vector<Value>* params = nullptr) {
  std::vector<BoundQualCmp> out;
  out.reserve(preds.size());
  for (const auto& p : preds) {
    bool evaluable = true;
    for (int a : p.Aliases()) {
      if (!(bound_mask & (1u << a))) evaluable = false;
    }
    if (!evaluable) continue;
    if (params) {
      out.emplace_back(ResolveParams(p, params), db);
    } else {
      out.emplace_back(p, db);  // no copy on the common unparameterized path
    }
  }
  return out;
}

/// The per-node compiled form of a scan: residual predicates checked per
/// fetched row, plus (for index scans) the probe-range plan — which
/// predicates feed the equality prefix and the range component, matched
/// once instead of per outer row.
struct CompiledScan {
  std::vector<BoundQualCmp> row_preds;

  struct ProbeTerm {
    opt::QualTerm sarg;  ///< oriented lhs — AdjustProbeValue input
    BoundQualTerm rhs;   ///< evaluated against outer bindings only
    algebra::CmpOp op = algebra::CmpOp::kEq;
  };
  std::vector<ProbeTerm> eq;     ///< one per equality-bound key column
  std::vector<ProbeTerm> range;  ///< comparisons on the next key column
};

/// Compiles `node` (kTbScan/kIxScan) probed with `outer_mask` bound.
/// `params` supplies Execute-time bindings for parameter markers.
inline CompiledScan CompileScan(const PhysNode& node, const Database& db,
                                uint32_t outer_mask,
                                const std::vector<Value>* params = nullptr) {
  CompiledScan cs;
  cs.row_preds = CompileQuals(node.preds, db,
                              outer_mask | (1u << node.alias), params);
  if (node.kind != PhysKind::kIxScan) return cs;
  const auto& key_cols = node.index->def.key_columns;
  std::vector<char> used(node.preds.size(), 0);
  auto rhs_evaluable = [&](const opt::QualComparison& p) {
    for (int a : {p.rhs.alias, p.rhs.alias2}) {
      if (a >= 0 && !(outer_mask & (1u << a))) return false;
    }
    return true;
  };
  size_t k = 0;
  for (; k < key_cols.size(); ++k) {
    bool matched = false;
    for (size_t i = 0; i < node.preds.size(); ++i) {
      if (used[i]) continue;
      opt::QualComparison p =
          ResolveParams(opt::OrientTo(node.preds[i], node.alias), params);
      if (p.op != algebra::CmpOp::kEq) continue;
      if (opt::SargColumn(p.lhs, node.alias) != key_cols[k]) continue;
      if (!rhs_evaluable(p)) continue;
      cs.eq.push_back({p.lhs, BoundQualTerm(p.rhs, db), p.op});
      used[i] = 1;
      matched = true;
      break;
    }
    if (!matched) break;
  }
  if (k < key_cols.size()) {
    for (size_t i = 0; i < node.preds.size(); ++i) {
      if (used[i]) continue;
      opt::QualComparison p =
          ResolveParams(opt::OrientTo(node.preds[i], node.alias), params);
      if (p.op == algebra::CmpOp::kEq || p.op == algebra::CmpOp::kNe) {
        continue;
      }
      if (opt::SargColumn(p.lhs, node.alias) != key_cols[k]) continue;
      if (!rhs_evaluable(p)) continue;
      cs.range.push_back({p.lhs, BoundQualTerm(p.rhs, db), p.op});
      used[i] = 1;
    }
  }
  return cs;
}

/// Builds the B-tree probe range for one outer row. Returns false when a
/// probe value is NULL — the scan then yields no rows (NULL never
/// matches), mirroring the historical early-out.
template <typename PreOf>
bool BuildProbeRange(const CompiledScan& cs, const PreOf& outer_row,
                     KeyRange* range) {
  for (const auto& pt : cs.eq) {
    Value v = opt::AdjustProbeValue(pt.sarg, pt.rhs.Eval(outer_row));
    if (v.is_null()) return false;
    range->lower.push_back(v);
    range->upper.push_back(std::move(v));
  }
  bool have_lo = false, have_hi = false;
  Value lo, hi;
  for (const auto& rt : cs.range) {
    Value v = opt::AdjustProbeValue(rt.sarg, rt.rhs.Eval(outer_row));
    if (v.is_null()) return false;
    switch (rt.op) {
      case algebra::CmpOp::kLt:
        if (!have_hi || v.SortLess(hi)) hi = v;
        have_hi = true;
        range->upper_inclusive = false;
        break;
      case algebra::CmpOp::kLe:
        if (!have_hi || v.SortLess(hi)) hi = v;
        have_hi = true;
        break;
      case algebra::CmpOp::kGt:
        if (!have_lo || lo.SortLess(v)) lo = v;
        have_lo = true;
        range->lower_inclusive = false;
        break;
      case algebra::CmpOp::kGe:
        if (!have_lo || lo.SortLess(v)) lo = v;
        have_lo = true;
        break;
      default:
        break;
    }
  }
  if (have_lo) range->lower.push_back(std::move(lo));
  if (have_hi) range->upper.push_back(std::move(hi));
  return true;
}

}  // namespace xqjg::engine

#endif  // XQJG_ENGINE_QUAL_EVAL_H_
