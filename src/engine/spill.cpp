#include "src/engine/spill.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

namespace xqjg::engine {

namespace {

// Value framing tags. One byte per value, then a fixed or
// length-prefixed payload.
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt = 1;
constexpr uint8_t kTagDouble = 2;
constexpr uint8_t kTagString = 3;

}  // namespace

SpillFile& SpillFile::operator=(SpillFile&& other) noexcept {
  if (this != &other) {
    Close();
    file_ = other.file_;
    bytes_ = other.bytes_;
    rows_ = other.rows_;
    other.file_ = nullptr;
    other.bytes_ = 0;
    other.rows_ = 0;
  }
  return *this;
}

void SpillFile::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status SpillFile::Append(const void* data, size_t n) {
  if (file_ == nullptr) {
    // tmpfile() is created unlinked: the OS reclaims the space when the
    // FILE closes, whatever else happens to the process.
    file_ = std::tmpfile();
    if (file_ == nullptr) {
      return Status::Internal("spill: cannot create temporary file");
    }
  }
  if (n > 0 && std::fwrite(data, 1, n, file_) != n) {
    return Status::Internal("spill: short write (disk full?)");
  }
  bytes_ += static_cast<int64_t>(n);
  return Status::OK();
}

Status SpillFile::Rewind() {
  if (file_ == nullptr) return Status::OK();  // empty file: reads see EOF
  if (std::fflush(file_) != 0 || std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::Internal("spill: rewind failed");
  }
  return Status::OK();
}

Result<size_t> SpillFile::Read(void* out, size_t n) {
  if (file_ == nullptr || n == 0) return static_cast<size_t>(0);
  const size_t got = std::fread(out, 1, n, file_);
  if (got < n && std::ferror(file_) != 0) {
    return Status::Internal("spill: read failed");
  }
  return got;
}

Status SpillAppendRow(SpillFile* file, const Value* row, size_t arity) {
  // One buffered fwrite per row keeps the syscall count low without a
  // second buffering layer on top of stdio's.
  std::string buf;
  for (size_t i = 0; i < arity; ++i) {
    const Value& v = row[i];
    switch (v.type()) {
      case ValueType::kNull:
        buf.push_back(static_cast<char>(kTagNull));
        break;
      case ValueType::kInt: {
        buf.push_back(static_cast<char>(kTagInt));
        const int64_t x = v.AsInt();
        buf.append(reinterpret_cast<const char*>(&x), sizeof(x));
        break;
      }
      case ValueType::kDouble: {
        buf.push_back(static_cast<char>(kTagDouble));
        const double x = v.AsDouble();
        buf.append(reinterpret_cast<const char*>(&x), sizeof(x));
        break;
      }
      case ValueType::kString: {
        buf.push_back(static_cast<char>(kTagString));
        const std::string& s = v.AsString();
        const uint32_t len = static_cast<uint32_t>(s.size());
        buf.append(reinterpret_cast<const char*>(&len), sizeof(len));
        buf.append(s);
        break;
      }
    }
  }
  XQJG_RETURN_NOT_OK(file->Append(buf.data(), buf.size()));
  ++file->rows_;
  return Status::OK();
}

Result<bool> SpillReadRow(SpillFile* file, Value* row, size_t arity) {
  for (size_t i = 0; i < arity; ++i) {
    uint8_t tag = 0;
    XQJG_ASSIGN_OR_RETURN(size_t got, file->Read(&tag, 1));
    if (got == 0) {
      if (i == 0) return false;  // clean end-of-file between rows
      return Status::Internal("spill: truncated row");
    }
    switch (tag) {
      case kTagNull:
        row[i] = Value::Null();
        break;
      case kTagInt: {
        int64_t x = 0;
        XQJG_ASSIGN_OR_RETURN(got, file->Read(&x, sizeof(x)));
        if (got != sizeof(x)) return Status::Internal("spill: truncated int");
        row[i] = Value::Int(x);
        break;
      }
      case kTagDouble: {
        double x = 0;
        XQJG_ASSIGN_OR_RETURN(got, file->Read(&x, sizeof(x)));
        if (got != sizeof(x)) {
          return Status::Internal("spill: truncated double");
        }
        row[i] = Value::Double(x);
        break;
      }
      case kTagString: {
        uint32_t len = 0;
        XQJG_ASSIGN_OR_RETURN(got, file->Read(&len, sizeof(len)));
        if (got != sizeof(len)) {
          return Status::Internal("spill: truncated string length");
        }
        std::string s(len, '\0');
        XQJG_ASSIGN_OR_RETURN(got, file->Read(s.data(), len));
        if (got != len) return Status::Internal("spill: truncated string");
        row[i] = Value::String(std::move(s));
        break;
      }
      default:
        return Status::Internal("spill: unknown value tag");
    }
  }
  return true;
}

Status SpillAppendInts(SpillFile* file, const int64_t* vals, size_t n) {
  XQJG_RETURN_NOT_OK(file->Append(vals, n * sizeof(int64_t)));
  ++file->rows_;
  return Status::OK();
}

Result<bool> SpillReadInts(SpillFile* file, int64_t* vals, size_t n) {
  const size_t want = n * sizeof(int64_t);
  XQJG_ASSIGN_OR_RETURN(size_t got,
                        file->Read(vals, want));
  if (got == 0) return false;
  if (got != want) return Status::Internal("spill: truncated tuple");
  return true;
}

int64_t ValueRowBytes(const Value* row, size_t arity) {
  int64_t bytes = 0;
  for (size_t i = 0; i < arity; ++i) {
    bytes += static_cast<int64_t>(sizeof(Value));
    if (row[i].type() == ValueType::kString) {
      bytes += static_cast<int64_t>(row[i].AsString().size());
    }
  }
  return bytes;
}

Status ExternalValueSorter::Add(std::vector<Value> row) {
  charge_.Add(ValueRowBytes(row.data(), arity_) +
              static_cast<int64_t>(sizeof(std::vector<Value>)));
  buf_.push_back(std::move(row));
  ++total_rows_;
  if (budget_->ShouldSpill() && buf_.size() >= kMinSpillRows) {
    XQJG_RETURN_NOT_OK(FlushRun());
  }
  return Status::OK();
}

Status ExternalValueSorter::Finish() {
  if (runs_.empty()) return SortBuf();
  if (!buf_.empty()) XQJG_RETURN_NOT_OK(FlushRun());
  cursors_.resize(runs_.size());
  for (size_t i = 0; i < runs_.size(); ++i) {
    XQJG_RETURN_NOT_OK(runs_[i].Rewind());
    cursors_[i].row.resize(arity_);
    XQJG_ASSIGN_OR_RETURN(
        cursors_[i].live,
        SpillReadRow(&runs_[i], cursors_[i].row.data(), arity_));
  }
  return Status::OK();
}

Result<bool> ExternalValueSorter::Next(std::vector<Value>* row) {
  if (runs_.empty()) {
    if (pos_ >= buf_.size()) return false;
    *row = std::move(buf_[pos_++]);
    return true;
  }
  // Linear min scan over the run heads (runs are ≥kMinSpillRows rows, so
  // the fan-in stays modest); strict less keeps ties on the earliest
  // run — the stable-sort order.
  int best = -1;
  for (size_t i = 0; i < cursors_.size(); ++i) {
    if (!cursors_[i].live) continue;
    if (best < 0 ||
        RowLess(cursors_[i].row, cursors_[static_cast<size_t>(best)].row)) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) return false;
  const size_t b = static_cast<size_t>(best);
  *row = cursors_[b].row;
  XQJG_ASSIGN_OR_RETURN(
      cursors_[b].live,
      SpillReadRow(&runs_[b], cursors_[b].row.data(), arity_));
  XQJG_RETURN_NOT_OK(clock_->Tick());
  return true;
}

bool ExternalValueSorter::RowLess(const std::vector<Value>& a,
                                  const std::vector<Value>& b) const {
  for (int k : keys_) {
    const Value& av = a[static_cast<size_t>(k)];
    const Value& bv = b[static_cast<size_t>(k)];
    if (av.SortLess(bv)) return true;
    if (bv.SortLess(av)) return false;
  }
  return false;
}

Status ExternalValueSorter::SortBuf() {
  try {
    std::stable_sort(
        buf_.begin() + static_cast<ptrdiff_t>(pos_), buf_.end(),
        [&](const std::vector<Value>& a, const std::vector<Value>& b) {
          clock_->TickThrow();
          return RowLess(a, b);
        });
  } catch (const BudgetExhausted&) {
    return Status::Timeout("execution exceeded wall-clock budget (DNF)");
  }
  return Status::OK();
}

Status ExternalValueSorter::FlushRun() {
  XQJG_RETURN_NOT_OK(SortBuf());
  SpillFile run;
  for (const auto& row : buf_) {
    XQJG_RETURN_NOT_OK(SpillAppendRow(&run, row.data(), arity_));
  }
  if (stats_ != nullptr) {
    stats_->spill_bytes += run.bytes_written();
    stats_->spill_events += 1;
  }
  runs_.push_back(std::move(run));
  buf_.clear();
  charge_.Reset();
  return Status::OK();
}

}  // namespace xqjg::engine
