// Spill-to-disk primitives for the pipelined columnar executors.
//
// When a pipeline breaker's buffered state would exceed
// ExecLimits::max_memory_bytes, it moves that state into anonymous
// temporary files (std::tmpfile — unlinked on creation, so crashes leak
// no paths and destruction is the only cleanup needed):
//
//   * sorts flush sorted runs and k-way-merge them on read-back, with a
//     run-index tie-break that reproduces the in-memory stable sort
//     bit-for-bit (runs are consecutive input ranges, so an earlier run
//     means a smaller original index);
//   * hash-join build sides and duplicate elimination hash-partition
//     their rows Grace-style and process one partition at a time.
//
// Two framings cover every spilled row in the system: tagged Value rows
// (the batch-algebra executor's mixed-type tuples) and raw int64 tuples
// (the alias-column executor's pre ranks). Both are fixed-arity per
// file, so readers need no per-file header.
#ifndef XQJG_ENGINE_SPILL_H_
#define XQJG_ENGINE_SPILL_H_

#include <cstdint>
#include <cstdio>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/engine/exec_options.h"

namespace xqjg::engine {

/// Grace partition fan-out for spilled hash state. 32 partitions cut the
/// resident build fraction to ~3% while the per-partition files stay
/// large enough for sequential I/O.
constexpr size_t kSpillPartitions = 32;
/// Floor under any spill decision: a buffer below this many rows never
/// flushes, whatever the governor says — prevents a run (or partition
/// write) per row at pathologically tiny budgets.
constexpr size_t kMinSpillRows = 1024;

/// Partition selector over a row's key hash. Uses the high bits so it
/// stays independent of any power-of-two bucket masking done with the
/// low bits of the same hash.
inline size_t SpillPartition(size_t h) {
  return (h >> 59) & (kSpillPartitions - 1);
}

/// One anonymous spill file: append-only until Rewind(), then a single
/// sequential read pass. Move-only RAII — closing the FILE* releases the
/// (already unlinked) disk space.
class SpillFile {
 public:
  SpillFile() = default;
  SpillFile(SpillFile&& other) noexcept
      : file_(other.file_), bytes_(other.bytes_), rows_(other.rows_) {
    other.file_ = nullptr;
    other.bytes_ = 0;
    other.rows_ = 0;
  }
  SpillFile& operator=(SpillFile&& other) noexcept;
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;
  ~SpillFile() { Close(); }

  /// Appends `n` raw bytes, creating the temp file on first use.
  Status Append(const void* data, size_t n);
  /// Flushes and seeks to the start for the read pass.
  Status Rewind();
  /// Reads up to `n` bytes; short count at end-of-file, 0 when exhausted.
  Result<size_t> Read(void* out, size_t n);
  void Close();

  bool open() const { return file_ != nullptr; }
  int64_t bytes_written() const { return bytes_; }
  /// Row count is bookkeeping for the writers below (Append alone does
  /// not advance it).
  int64_t rows() const { return rows_; }

 private:
  friend Status SpillAppendRow(SpillFile*, const Value*, size_t);
  friend Status SpillAppendInts(SpillFile*, const int64_t*, size_t);

  std::FILE* file_ = nullptr;
  int64_t bytes_ = 0;
  int64_t rows_ = 0;
};

/// Appends one fixed-arity row of Values (tagged binary framing).
Status SpillAppendRow(SpillFile* file, const Value* row, size_t arity);
/// Reads the next Value row; false when the file is exhausted. A partial
/// row (truncated file) is an Internal error.
Result<bool> SpillReadRow(SpillFile* file, Value* row, size_t arity);

/// Raw int64 tuple framing (the alias-column executor's rows).
Status SpillAppendInts(SpillFile* file, const int64_t* vals, size_t n);
Result<bool> SpillReadInts(SpillFile* file, int64_t* vals, size_t n);

/// Approximate in-memory bytes of one Value row — the charge unit for
/// breaker buffers that hold rows as Values.
int64_t ValueRowBytes(const Value* row, size_t arity);

/// External-merge sorter over boxed Value rows — the spill engine behind
/// every order-sensitive breaker (the batch executor's serialize sort,
/// Grace-join order restoration, and δ survivor merge; the plan
/// executor's ORDER BY tail). Rows accumulate in memory (charged against
/// `budget`); when the governor says spill, the buffer is stable-sorted
/// and flushed as one sorted run. Finish() sorts the tail run; Next()
/// merges runs with a run-index tie-break. Runs are consecutive input
/// ranges, so (key, run index, position in run) reproduces a stable
/// in-memory sort of the whole input bit-for-bit — which is how every
/// spilled path stays order-identical to the serial executor.
class ExternalValueSorter {
 public:
  /// `keys` are column indices compared in order via Value::SortLess;
  /// rows equal on every key keep their input order. `stats` (nullable)
  /// receives spill_bytes / spill_events accounting.
  ExternalValueSorter(BudgetClock* clock, MemoryBudget* budget,
                      ExecStats* stats, size_t arity, std::vector<int> keys)
      : clock_(clock),
        budget_(budget),
        stats_(stats),
        arity_(arity),
        keys_(std::move(keys)),
        charge_(budget) {}

  Status Add(std::vector<Value> row);

  /// Seals the input: sorts the in-memory tail (or opens the run
  /// cursors). Must be called exactly once before the first Next().
  Status Finish();

  /// Pops the next row in sort order; false when exhausted.
  Result<bool> Next(std::vector<Value>* row);

  int64_t total_rows() const { return total_rows_; }
  bool spilled() const { return !runs_.empty(); }

 private:
  struct RunCursor {
    std::vector<Value> row;
    bool live = false;
  };

  bool RowLess(const std::vector<Value>& a,
               const std::vector<Value>& b) const;
  Status SortBuf();
  Status FlushRun();

  BudgetClock* clock_;
  MemoryBudget* budget_;
  ExecStats* stats_;
  const size_t arity_;
  const std::vector<int> keys_;
  MemoryCharge charge_;
  std::vector<std::vector<Value>> buf_;
  size_t pos_ = 0;  ///< in-memory read cursor (always 0 before Finish)
  std::vector<SpillFile> runs_;
  std::vector<RunCursor> cursors_;
  int64_t total_rows_ = 0;
};

}  // namespace xqjg::engine

#endif  // XQJG_ENGINE_SPILL_H_
