#include "src/native/interp.h"

#include <algorithm>

#include "src/common/str.h"

namespace xqjg::native {

using xml::NodeKind;
using xml::XmlNode;
using xquery::Axis;
using xquery::CompOp;
using xquery::ExprKind;
using xquery::ExprPtr;
using xquery::NodeTest;
using xquery::TestKind;

Result<const XmlNode*> MapResolver::Resolve(const std::string& uri) {
  auto it = docs_.find(uri);
  if (it == docs_.end()) return Status::NotFound("document not loaded: " + uri);
  return it->second->doc_node.get();
}

namespace {

const XmlNode* RootOf(const XmlNode* node) {
  while (node->parent) node = node->parent;
  return node;
}

/// Document-order key across (possibly several) documents.
std::pair<const XmlNode*, int64_t> OrderKey(const XmlNode* node) {
  return {RootOf(node), node->pre};
}

void Ddo(std::vector<const XmlNode*>* nodes) {
  std::sort(nodes->begin(), nodes->end(),
            [](const XmlNode* a, const XmlNode* b) {
              return OrderKey(a) < OrderKey(b);
            });
  nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
}

/// Atomized untyped value, restricted like the doc-table encoding: nodes
/// with more than one descendant expose no value (paper §II-A; DESIGN.md
/// "value semantics").
std::optional<std::string> AtomizedString(const XmlNode* node) {
  switch (node->kind) {
    case NodeKind::kAttr:
    case NodeKind::kText:
      return node->value;
    case NodeKind::kElem:
    case NodeKind::kDoc:
      if (node->subtree_size > 1) return std::nullopt;
      if (node->children.size() == 1 &&
          node->children[0]->kind == NodeKind::kText) {
        return node->children[0]->value;
      }
      return std::string();
    default:
      return node->value;
  }
}

bool CompareStrings(const std::string& a, CompOp op, const std::string& b) {
  int c = a.compare(b);
  switch (op) {
    case CompOp::kEq:
      return c == 0;
    case CompOp::kNe:
      return c != 0;
    case CompOp::kLt:
      return c < 0;
    case CompOp::kLe:
      return c <= 0;
    case CompOp::kGt:
      return c > 0;
    case CompOp::kGe:
      return c >= 0;
  }
  return false;
}

bool CompareDoubles(double a, CompOp op, double b) {
  switch (op) {
    case CompOp::kEq:
      return a == b;
    case CompOp::kNe:
      return a != b;
    case CompOp::kLt:
      return a < b;
    case CompOp::kLe:
      return a <= b;
    case CompOp::kGt:
      return a > b;
    case CompOp::kGe:
      return a >= b;
  }
  return false;
}

class Interp {
 public:
  explicit Interp(DocumentResolver* resolver) : resolver_(resolver) {}

  using Seq = std::vector<const XmlNode*>;
  using Env = std::map<std::string, Seq>;

  Result<Seq> Eval(const ExprPtr& e, const Env& env) {
    switch (e->kind) {
      case ExprKind::kDoc: {
        XQJG_ASSIGN_OR_RETURN(const XmlNode* doc, resolver_->Resolve(e->str));
        return Seq{doc};
      }
      case ExprKind::kVar: {
        auto it = env.find(e->var);
        if (it == env.end()) {
          return Status::InvalidArgument("unbound variable $" + e->var);
        }
        return it->second;
      }
      case ExprKind::kEmptySeq:
        return Seq{};
      case ExprKind::kDdo: {
        XQJG_ASSIGN_OR_RETURN(Seq seq, Eval(e->a, env));
        Ddo(&seq);
        return seq;
      }
      case ExprKind::kStep: {
        XQJG_ASSIGN_OR_RETURN(Seq ctx, Eval(e->a, env));
        Seq out;
        for (const XmlNode* node : ctx) {
          Seq step = AxisStep(node, e->axis, e->test);
          out.insert(out.end(), step.begin(), step.end());
        }
        return out;
      }
      case ExprKind::kFor: {
        XQJG_ASSIGN_OR_RETURN(Seq in, Eval(e->a, env));
        Seq out;
        Env env2 = env;
        for (const XmlNode* node : in) {
          env2[e->var] = Seq{node};
          XQJG_ASSIGN_OR_RETURN(Seq body, Eval(e->b, env2));
          out.insert(out.end(), body.begin(), body.end());
        }
        return out;
      }
      case ExprKind::kLet: {
        XQJG_ASSIGN_OR_RETURN(Seq value, Eval(e->a, env));
        Env env2 = env;
        env2[e->var] = std::move(value);
        return Eval(e->b, env2);
      }
      case ExprKind::kIf: {
        XQJG_ASSIGN_OR_RETURN(bool cond, EvalCondition(e->a, env));
        if (!cond) return Seq{};
        return Eval(e->b, env);
      }
      default:
        return Status::NotSupported(
            StrPrintf("interpreter cannot evaluate expression kind '%s'",
                      xquery::ExprKindToString(e->kind)));
    }
  }

  Result<bool> EvalCondition(const ExprPtr& cond, const Env& env) {
    if (cond->kind == ExprKind::kEbv) {
      XQJG_ASSIGN_OR_RETURN(Seq seq, Eval(cond->a, env));
      return !seq.empty();
    }
    if (cond->kind == ExprKind::kComp) {
      return EvalComparison(cond, env);
    }
    XQJG_ASSIGN_OR_RETURN(Seq seq, Eval(cond, env));
    return !seq.empty();
  }

  // Existential general comparison over atomized operands.
  Result<bool> EvalComparison(const ExprPtr& comp, const Env& env) {
    const ExprPtr& lhs = comp->a;
    const ExprPtr& rhs = comp->b;
    auto is_lit = [](const ExprPtr& e) {
      return e->kind == ExprKind::kNumLit || e->kind == ExprKind::kStrLit;
    };
    if (is_lit(lhs) && is_lit(rhs)) {
      return Status::NotSupported("comparison of two literals");
    }
    if (is_lit(lhs) || is_lit(rhs)) {
      const ExprPtr& node_side = is_lit(lhs) ? rhs : lhs;
      const ExprPtr& lit = is_lit(lhs) ? lhs : rhs;
      CompOp op = comp->op;
      if (is_lit(lhs)) {
        // literal OP nodes  ==  nodes FLIP(OP) literal
        switch (op) {
          case CompOp::kLt: op = CompOp::kGt; break;
          case CompOp::kLe: op = CompOp::kGe; break;
          case CompOp::kGt: op = CompOp::kLt; break;
          case CompOp::kGe: op = CompOp::kLe; break;
          default: break;
        }
      }
      XQJG_ASSIGN_OR_RETURN(Seq nodes, Eval(node_side, env));
      for (const XmlNode* node : nodes) {
        std::optional<std::string> s = AtomizedString(node);
        if (!s) continue;
        if (lit->kind == ExprKind::kNumLit) {
          std::optional<double> d = ParseDecimal(*s);
          if (d && CompareDoubles(*d, op, lit->num)) return true;
        } else {
          if (CompareStrings(*s, op, lit->str)) return true;
        }
      }
      return false;
    }
    // node-node: untyped string comparison over all pairs.
    XQJG_ASSIGN_OR_RETURN(Seq left, Eval(lhs, env));
    XQJG_ASSIGN_OR_RETURN(Seq right, Eval(rhs, env));
    for (const XmlNode* l : left) {
      std::optional<std::string> ls = AtomizedString(l);
      if (!ls) continue;
      for (const XmlNode* r : right) {
        std::optional<std::string> rs = AtomizedString(r);
        if (!rs) continue;
        if (CompareStrings(*ls, comp->op, *rs)) return true;
      }
    }
    return false;
  }

 private:
  DocumentResolver* resolver_;
};

void CollectDescendants(const XmlNode* node, std::vector<const XmlNode*>* out) {
  // The native interpreter is the reference oracle: it is wall-clock
  // guarded per fragment/query by the deadline in xscan.cpp rather than
  // per row.  xqjg-lint: allow(no-budget-guard)
  for (const auto& child : node->children) {
    out->push_back(child.get());
    CollectDescendants(child.get(), out);
  }
}

}  // namespace

bool MatchesTest(const XmlNode* node, Axis axis, const NodeTest& test) {
  const bool attr_axis = axis == Axis::kAttribute;
  switch (test.kind) {
    case TestKind::kName:
      return node->kind == (attr_axis ? NodeKind::kAttr : NodeKind::kElem) &&
             node->name == test.name;
    case TestKind::kWildcard:
      return node->kind == (attr_axis ? NodeKind::kAttr : NodeKind::kElem);
    case TestKind::kText:
      return node->kind == NodeKind::kText;
    case TestKind::kComment:
      return node->kind == NodeKind::kComment;
    case TestKind::kPi:
      return node->kind == NodeKind::kPi;
    case TestKind::kElement:
      return node->kind == NodeKind::kElem &&
             (test.name.empty() || node->name == test.name);
    case TestKind::kAttribute:
      return node->kind == NodeKind::kAttr &&
             (test.name.empty() || node->name == test.name);
    case TestKind::kAnyNode:
      if (attr_axis) return node->kind == NodeKind::kAttr;
      if (node->kind == NodeKind::kAttr) return false;
      if (node->kind == NodeKind::kDoc) {
        switch (axis) {
          case Axis::kChild:
          case Axis::kDescendant:
          case Axis::kFollowing:
          case Axis::kPreceding:
          case Axis::kFollowingSibling:
          case Axis::kPrecedingSibling:
            return false;
          default:
            return true;
        }
      }
      return true;
  }
  return false;
}

std::vector<const XmlNode*> AxisStep(const XmlNode* context, Axis axis,
                                     const NodeTest& test) {
  std::vector<const XmlNode*> candidates;
  switch (axis) {
    case Axis::kChild:
      for (const auto& c : context->children) candidates.push_back(c.get());
      break;
    case Axis::kDescendant:
      CollectDescendants(context, &candidates);
      break;
    case Axis::kDescendantOrSelf:
      candidates.push_back(context);
      CollectDescendants(context, &candidates);
      break;
    case Axis::kSelf:
      candidates.push_back(context);
      break;
    case Axis::kAttribute:
      for (const auto& a : context->attrs) candidates.push_back(a.get());
      break;
    case Axis::kParent:
      if (context->parent) candidates.push_back(context->parent);
      break;
    case Axis::kAncestor:
      for (const XmlNode* p = context->parent; p; p = p->parent) {
        candidates.push_back(p);
      }
      std::reverse(candidates.begin(), candidates.end());
      break;
    case Axis::kAncestorOrSelf:
      for (const XmlNode* p = context; p; p = p->parent) {
        candidates.push_back(p);
      }
      std::reverse(candidates.begin(), candidates.end());
      break;
    case Axis::kFollowing: {
      const XmlNode* root = RootOf(context);
      std::vector<const XmlNode*> all;
      CollectDescendants(root, &all);
      const int64_t end = context->pre + context->subtree_size;
      // Oracle axis step; deadline-guarded in xscan.cpp.
      // xqjg-lint: allow(no-budget-guard)
      for (const XmlNode* n : all) {
        if (n->pre > end) candidates.push_back(n);
      }
      break;
    }
    case Axis::kPreceding: {
      const XmlNode* root = RootOf(context);
      std::vector<const XmlNode*> all;
      CollectDescendants(root, &all);
      // Oracle axis step; deadline-guarded in xscan.cpp.
      // xqjg-lint: allow(no-budget-guard)
      for (const XmlNode* n : all) {
        if (n->pre + n->subtree_size < context->pre) candidates.push_back(n);
      }
      break;
    }
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling: {
      if (context->kind == NodeKind::kAttr || !context->parent) break;
      // Oracle axis step; deadline-guarded in xscan.cpp.
      // xqjg-lint: allow(no-budget-guard)
      for (const auto& c : context->parent->children) {
        if (axis == Axis::kFollowingSibling ? c->pre > context->pre
                                            : c->pre < context->pre) {
          candidates.push_back(c.get());
        }
      }
      break;
    }
  }
  std::vector<const XmlNode*> out;
  // Oracle axis step; deadline-guarded in xscan.cpp.
  // xqjg-lint: allow(no-budget-guard)
  for (const XmlNode* n : candidates) {
    if (MatchesTest(n, axis, test)) out.push_back(n);
  }
  return out;
}

Result<std::vector<const XmlNode*>> EvaluateQuery(const ExprPtr& core,
                                                  DocumentResolver* resolver) {
  Interp interp(resolver);
  return interp.Eval(core, {});
}

}  // namespace xqjg::native
