// Reference XQuery interpreter over the native DOM.
//
// This is the executable XQuery semantics: a direct, node-at-a-time
// implementation of the Fig. 1 fragment (plus extensions) used (a) as the
// oracle for differential tests of the relational pipeline and (b) as the
// evaluation core of the pureXML™-style native engine (src/native/
// xscan.h adds the index-assisted document-at-a-time driver).
#ifndef XQJG_NATIVE_INTERP_H_
#define XQJG_NATIVE_INTERP_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/xml/dom.h"
#include "src/xquery/ast.h"

namespace xqjg::native {

/// Resolves doc("uri") references for the interpreter.
class DocumentResolver {
 public:
  virtual ~DocumentResolver() = default;
  virtual Result<const xml::XmlNode*> Resolve(const std::string& uri) = 0;
};

/// Simple resolver over a set of parsed documents.
class MapResolver : public DocumentResolver {
 public:
  void Add(const xml::XmlDocument* doc) { docs_[doc->uri] = doc; }
  Result<const xml::XmlNode*> Resolve(const std::string& uri) override;

 private:
  std::map<std::string, const xml::XmlDocument*> docs_;
};

/// Evaluates Core expression `core` and returns the resulting node
/// sequence (document order / duplicate semantics per fs:ddo placement).
Result<std::vector<const xml::XmlNode*>> EvaluateQuery(
    const xquery::ExprPtr& core, DocumentResolver* resolver);

/// Evaluates an XPath axis step from a single context node (all 12 axes,
/// results in document order). Exposed for reuse by the XSCAN driver and
/// for axis-semantics tests.
std::vector<const xml::XmlNode*> AxisStep(const xml::XmlNode* context,
                                          xquery::Axis axis,
                                          const xquery::NodeTest& test);

/// True iff `node` passes the kind/name test under `axis`.
bool MatchesTest(const xml::XmlNode* node, xquery::Axis axis,
                 const xquery::NodeTest& test);

}  // namespace xqjg::native

#endif  // XQJG_NATIVE_INTERP_H_
