#include "src/native/pattern_index.h"

#include <algorithm>

#include "src/common/str.h"

namespace xqjg::native {

using xml::NodeKind;
using xml::XmlNode;
using xquery::Axis;
using xquery::CompOp;
using xquery::ExprKind;
using xquery::ExprPtr;

std::string XmlPattern::ToString() const {
  std::string out = "doc(\"" + uri + "\")";
  for (const auto& s : steps) {
    if (s.axis == Axis::kAttribute) {
      out += "/@" + s.name;
    } else if (s.axis == Axis::kDescendant) {
      out += "//" + s.name;
    } else {
      out += "/" + s.name;
    }
  }
  out += type == PatternType::kVarchar ? " AS VARCHAR" : " AS DOUBLE";
  return out;
}

namespace {

void MatchStep(const XmlNode* node, const std::vector<PatternStep>& steps,
               size_t depth, std::vector<const XmlNode*>* out) {
  if (depth == steps.size()) {
    out->push_back(node);
    return;
  }
  const PatternStep& step = steps[depth];
  auto name_ok = [&](const XmlNode* n) {
    return step.name == "*" || n->name == step.name;
  };
  if (step.axis == Axis::kAttribute) {
    for (const auto& a : node->attrs) {
      if (name_ok(a.get())) MatchStep(a.get(), steps, depth + 1, out);
    }
    return;
  }
  for (const auto& c : node->children) {
    if (c->kind == NodeKind::kElem && name_ok(c.get())) {
      MatchStep(c.get(), steps, depth + 1, out);
    }
    if (step.axis == Axis::kDescendant && c->kind == NodeKind::kElem) {
      MatchStep(c.get(), steps, depth, out);  // keep searching deeper
    }
  }
}

}  // namespace

PatternIndex::PatternIndex(XmlPattern pattern, const DocumentStore& store)
    : pattern_(std::move(pattern)) {
  const auto& fragments = store.Fragments(pattern_.uri);
  for (size_t frag = 0; frag < fragments.size(); ++frag) {
    std::vector<const XmlNode*> matches;
    MatchStep(fragments[frag]->doc_node.get(), pattern_.steps, 0, &matches);
    // XMLPATTERN index build (DDL time), not query execution.
    // xqjg-lint: allow(no-budget-guard)
    for (const XmlNode* node : matches) {
      std::string s = xml::StringValue(node);
      if (pattern_.type == PatternType::kDouble) {
        auto d = ParseDecimal(s);
        if (!d) continue;
        entries_.emplace_back(Value::Double(*d), frag);
      } else {
        entries_.emplace_back(Value::String(std::move(s)), frag);
      }
    }
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const auto& a, const auto& b) {
              if (a.first.SortLess(b.first)) return true;
              if (b.first.SortLess(a.first)) return false;
              return a.second < b.second;
            });
}

std::vector<size_t> PatternIndex::Scan(CompOp op, const Value& literal) const {
  std::vector<size_t> out;
  for (const auto& [value, frag] : entries_) {
    int c = value.Compare(literal);
    if (c == Value::kNullCmp) continue;
    bool hit = false;
    switch (op) {
      case CompOp::kEq: hit = c == 0; break;
      case CompOp::kNe: hit = c != 0; break;
      case CompOp::kLt: hit = c < 0; break;
      case CompOp::kLe: hit = c <= 0; break;
      case CompOp::kGt: hit = c > 0; break;
      case CompOp::kGe: hit = c >= 0; break;
    }
    if (hit) out.push_back(frag);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::optional<XmlPattern> PatternOfExpr(
    const ExprPtr& core_path, PatternType type,
    const std::map<std::string, XmlPattern>* var_paths) {
  // Walk outside-in collecting steps; accept ddo wrappers.
  std::vector<PatternStep> reversed;
  const xquery::Expr* e = core_path.get();
  while (true) {
    if (e->kind == ExprKind::kDdo) {
      e = e->a.get();
      continue;
    }
    if (e->kind == ExprKind::kStep) {
      PatternStep step;
      step.axis = e->axis;
      if (step.axis != Axis::kChild && step.axis != Axis::kDescendant &&
          step.axis != Axis::kAttribute) {
        return std::nullopt;
      }
      switch (e->test.kind) {
        case xquery::TestKind::kName:
          step.name = e->test.name;
          break;
        case xquery::TestKind::kWildcard:
          step.name = "*";
          break;
        default:
          return std::nullopt;
      }
      reversed.push_back(std::move(step));
      e = e->a.get();
      continue;
    }
    if (e->kind == ExprKind::kDoc) {
      XmlPattern pattern;
      pattern.uri = e->str;
      pattern.steps.assign(reversed.rbegin(), reversed.rend());
      pattern.type = type;
      return pattern;
    }
    if (e->kind == ExprKind::kVar && var_paths) {
      auto it = var_paths->find(e->var);
      if (it == var_paths->end()) return std::nullopt;
      XmlPattern pattern = it->second;
      pattern.steps.insert(pattern.steps.end(), reversed.rbegin(),
                           reversed.rend());
      pattern.type = type;
      return pattern;
    }
    return std::nullopt;  // predicates, reverse axes: ineligible
  }
}

}  // namespace xqjg::native
