// XMLPATTERN-style value indexes for the native engine (paper §IV-B).
//
// An index is declared over a non-branching forward path (child /
// descendant / attribute steps) and a value type (VARCHAR-like string or
// DOUBLE-like decimal). Its entries map the typed values of the nodes the
// path selects to the ids of the fragments containing them; an XISCAN
// range lookup yields RIDs (fragment ids) whose trees are then traversed
// by the XSCAN evaluation (src/native/xscan.h).
#ifndef XQJG_NATIVE_PATTERN_INDEX_H_
#define XQJG_NATIVE_PATTERN_INDEX_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/native/store.h"
#include "src/xquery/ast.h"

namespace xqjg::native {

/// One step of an XMLPATTERN path (forward, non-branching).
struct PatternStep {
  xquery::Axis axis = xquery::Axis::kChild;  // child/descendant/attribute
  std::string name;                          // element/attribute name; "*"
};

enum class PatternType { kVarchar, kDouble };

struct XmlPattern {
  std::string uri;  ///< document the index is built over
  std::vector<PatternStep> steps;
  PatternType type = PatternType::kVarchar;

  std::string ToString() const;  ///< "/site/people/person/@id AS VARCHAR"
};

/// A built index: sorted (value, fragment id) entries.
class PatternIndex {
 public:
  PatternIndex(XmlPattern pattern, const DocumentStore& store);

  const XmlPattern& pattern() const { return pattern_; }
  size_t entry_count() const { return entries_.size(); }

  /// XISCAN: fragment ids whose indexed values satisfy `op literal`
  /// (deduplicated, ascending).
  std::vector<size_t> Scan(xquery::CompOp op, const Value& literal) const;

 private:
  XmlPattern pattern_;
  std::vector<std::pair<Value, size_t>> entries_;  // sorted by value
};

/// Extracts the XMLPATTERN path of a normalized path expression if it is a
/// non-branching forward path rooted at doc(uri) (index eligibility,
/// [2]). `var_paths` optionally maps variable names to their binding's
/// pattern (so predicate paths under `for $x in <pattern>` qualify too).
/// Returns nullopt otherwise.
std::optional<XmlPattern> PatternOfExpr(
    const xquery::ExprPtr& core_path, PatternType type,
    const std::map<std::string, XmlPattern>* var_paths = nullptr);

}  // namespace xqjg::native

#endif  // XQJG_NATIVE_PATTERN_INDEX_H_
