#include "src/native/store.h"

#include <algorithm>

namespace xqjg::native {

using xml::XmlDocument;
using xml::XmlNode;

namespace {

std::unique_ptr<XmlNode> CloneSubtree(const XmlNode* node) {
  auto copy = std::make_unique<XmlNode>();
  copy->kind = node->kind;
  copy->name = node->name;
  copy->value = node->value;
  for (const auto& a : node->attrs) {
    auto ac = CloneSubtree(a.get());
    ac->parent = copy.get();
    copy->attrs.push_back(std::move(ac));
  }
  // Document load (segmentation clones subtrees once per LoadDocument),
  // not query execution.  xqjg-lint: allow(no-budget-guard)
  for (const auto& c : node->children) {
    auto cc = CloneSubtree(c.get());
    cc->parent = copy.get();
    copy->children.push_back(std::move(cc));
  }
  return copy;
}

void CollectSegments(const XmlNode* node,
                     const std::set<std::string>& segment_tags,
                     std::vector<const XmlNode*>* out) {
  if (node->kind == xml::NodeKind::kElem && segment_tags.count(node->name)) {
    out->push_back(node);
    return;  // segments do not nest
  }
  for (const auto& c : node->children) {
    CollectSegments(c.get(), segment_tags, out);
  }
}

/// Builds a fragment document: ancestor spine (no siblings) + the cloned
/// subtree.
std::unique_ptr<XmlDocument> BuildFragment(const std::string& uri,
                                           const XmlNode* subtree_root) {
  // Collect ancestors (excluding the DOC node).
  std::vector<const XmlNode*> spine;
  for (const XmlNode* p = subtree_root->parent;
       p && p->kind != xml::NodeKind::kDoc; p = p->parent) {
    spine.push_back(p);
  }
  auto doc = std::make_unique<XmlDocument>();
  doc->uri = uri;
  doc->doc_node = std::make_unique<XmlNode>();
  doc->doc_node->kind = xml::NodeKind::kDoc;
  doc->doc_node->name = uri;
  XmlNode* attach = doc->doc_node.get();
  for (auto it = spine.rbegin(); it != spine.rend(); ++it) {
    auto elem = std::make_unique<XmlNode>();
    elem->kind = xml::NodeKind::kElem;
    elem->name = (*it)->name;
    elem->parent = attach;
    XmlNode* raw = elem.get();
    attach->children.push_back(std::move(elem));
    attach = raw;
  }
  auto clone = CloneSubtree(subtree_root);
  clone->parent = attach;
  attach->children.push_back(std::move(clone));
  doc->RenumberPre();
  return doc;
}

}  // namespace

Status DocumentStore::AddWhole(std::unique_ptr<XmlDocument> doc) {
  by_uri_[doc->uri].push_back(doc.get());
  owned_.push_back(std::move(doc));
  return Status::OK();
}

void DocumentStore::RemoveUri(const std::string& uri) {
  by_uri_.erase(uri);
  segmented_uris_.erase(uri);
  owned_.erase(std::remove_if(owned_.begin(), owned_.end(),
                              [&](const auto& doc) { return doc->uri == uri; }),
               owned_.end());
}

Status DocumentStore::AddSegmented(const XmlDocument& doc,
                                   const std::set<std::string>& segment_tags) {
  std::vector<const XmlNode*> roots;
  CollectSegments(doc.doc_node.get(), segment_tags, &roots);
  if (roots.empty()) {
    return Status::InvalidArgument(
        "no segment roots found for document " + doc.uri);
  }
  segmented_uris_.insert(doc.uri);
  for (const XmlNode* r : roots) {
    auto fragment = BuildFragment(doc.uri, r);
    by_uri_[doc.uri].push_back(fragment.get());
    owned_.push_back(std::move(fragment));
  }
  return Status::OK();
}

size_t DocumentStore::SegmentCount(const std::string& uri) const {
  auto it = by_uri_.find(uri);
  return it == by_uri_.end() ? 0 : it->second.size();
}

int64_t DocumentStore::TotalNodes() const {
  int64_t total = 0;
  for (const auto& doc : owned_) total += doc->node_count;
  return total;
}

const std::vector<const xml::XmlDocument*>& DocumentStore::Fragments(
    const std::string& uri) const {
  static const std::vector<const xml::XmlDocument*> kEmpty;
  auto it = by_uri_.find(uri);
  return it == by_uri_.end() ? kEmpty : it->second;
}

Result<const XmlNode*> DocumentStore::Resolve(const std::string& uri) {
  auto it = by_uri_.find(uri);
  if (it == by_uri_.end()) {
    return Status::NotFound("document not loaded: " + uri);
  }
  if (segmented_uris_.count(uri)) {
    return Status::InvalidArgument(
        "document " + uri + " is stored segmented; use per-fragment "
        "evaluation");
  }
  return it->second.front()->doc_node.get();
}

}  // namespace xqjg::native
