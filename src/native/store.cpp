#include "src/native/store.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace xqjg::native {

using xml::XmlDocument;
using xml::XmlNode;

namespace {

std::unique_ptr<XmlNode> CloneSubtree(const XmlNode* node) {
  auto copy = std::make_unique<XmlNode>();
  copy->kind = node->kind;
  copy->name = node->name;
  copy->value = node->value;
  for (const auto& a : node->attrs) {
    auto ac = CloneSubtree(a.get());
    ac->parent = copy.get();
    copy->attrs.push_back(std::move(ac));
  }
  // Document load (segmentation clones subtrees once per LoadDocument),
  // not query execution.  xqjg-lint: allow(no-budget-guard)
  for (const auto& c : node->children) {
    auto cc = CloneSubtree(c.get());
    cc->parent = copy.get();
    copy->children.push_back(std::move(cc));
  }
  return copy;
}

void CollectSegments(const XmlNode* node,
                     const std::set<std::string>& segment_tags,
                     std::vector<const XmlNode*>* out) {
  if (node->kind == xml::NodeKind::kElem && segment_tags.count(node->name)) {
    out->push_back(node);
    return;  // segments do not nest
  }
  for (const auto& c : node->children) {
    CollectSegments(c.get(), segment_tags, out);
  }
}

/// Builds a fragment document: ancestor spine (no siblings) + the cloned
/// subtree.
std::unique_ptr<XmlDocument> BuildFragment(const std::string& uri,
                                           const XmlNode* subtree_root) {
  // Collect ancestors (excluding the DOC node).
  std::vector<const XmlNode*> spine;
  for (const XmlNode* p = subtree_root->parent;
       p && p->kind != xml::NodeKind::kDoc; p = p->parent) {
    spine.push_back(p);
  }
  auto doc = std::make_unique<XmlDocument>();
  doc->uri = uri;
  doc->doc_node = std::make_unique<XmlNode>();
  doc->doc_node->kind = xml::NodeKind::kDoc;
  doc->doc_node->name = uri;
  XmlNode* attach = doc->doc_node.get();
  for (auto it = spine.rbegin(); it != spine.rend(); ++it) {
    auto elem = std::make_unique<XmlNode>();
    elem->kind = xml::NodeKind::kElem;
    elem->name = (*it)->name;
    elem->parent = attach;
    XmlNode* raw = elem.get();
    attach->children.push_back(std::move(elem));
    attach = raw;
  }
  auto clone = CloneSubtree(subtree_root);
  clone->parent = attach;
  attach->children.push_back(std::move(clone));
  doc->RenumberPre();
  return doc;
}

/// Segments `dom` into fragment documents; empty result when no segment
/// root matches.
std::vector<std::unique_ptr<XmlDocument>> SegmentDocument(
    const XmlDocument& dom, const std::set<std::string>& segment_tags) {
  std::vector<const XmlNode*> roots;
  CollectSegments(dom.doc_node.get(), segment_tags, &roots);
  std::vector<std::unique_ptr<XmlDocument>> out;
  out.reserve(roots.size());
  // Document load/first native use, not query execution.
  // xqjg-lint: allow(no-budget-guard)
  for (const XmlNode* r : roots) out.push_back(BuildFragment(dom.uri, r));
  return out;
}

/// Approximate heap bytes of one subtree (node structs + name/value
/// payloads + child-pointer vectors).
int64_t SubtreeBytes(const XmlNode* node) {
  int64_t bytes = static_cast<int64_t>(
      sizeof(XmlNode) + node->name.size() + node->value.size() +
      (node->attrs.size() + node->children.size()) *
          sizeof(std::unique_ptr<XmlNode>));
  for (const auto& a : node->attrs) bytes += SubtreeBytes(a.get());
  // Footprint accounting (tests/bench), not query execution.
  // xqjg-lint: allow(no-budget-guard)
  for (const auto& c : node->children) bytes += SubtreeBytes(c.get());
  return bytes;
}

}  // namespace

void DocumentStore::Entry::EnsureBuiltLocked() const {
  if (built) return;
  // The text parsed successfully when the URI was loaded (the shared
  // column block build uses the same scanner) and — for the segmented
  // layout — a segment root was verified present. A failure here would
  // silently lose a document from the native lane: abort loudly rather
  // than serve wrong results.
  auto dom = xml::ParseDom(uri, *text);
  if (!dom.ok()) {
    std::fprintf(stderr,
                 "fatal: retained source '%s' failed to rebuild the native "
                 "store: %s\n",
                 uri.c_str(), dom.status().ToString().c_str());
    std::abort();
  }
  if (segmented) {
    auto fragments = SegmentDocument(*dom.value(), segment_tags);
    if (fragments.empty()) {
      std::fprintf(stderr,
                   "fatal: retained source '%s' lost its segment roots\n",
                   uri.c_str());
      std::abort();
    }
    for (auto& f : fragments) docs.push_back(std::move(f));
  } else {
    docs.push_back(std::move(dom).value());
  }
  frags.reserve(docs.size());
  for (const auto& d : docs) frags.push_back(d.get());
  built = true;
}

Status DocumentStore::AddWhole(std::unique_ptr<XmlDocument> doc) {
  auto& entry = by_uri_[doc->uri];
  if (!entry) {
    entry = std::make_shared<Entry>();
    entry->uri = doc->uri;
    entry->built = true;
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  entry->frags.push_back(doc.get());
  entry->docs.push_back(std::move(doc));
  return Status::OK();
}

Status DocumentStore::AddSegmented(const XmlDocument& doc,
                                   const std::set<std::string>& segment_tags) {
  auto fragments = SegmentDocument(doc, segment_tags);
  if (fragments.empty()) {
    return Status::InvalidArgument(
        "no segment roots found for document " + doc.uri);
  }
  auto& entry = by_uri_[doc.uri];
  if (!entry) {
    entry = std::make_shared<Entry>();
    entry->uri = doc.uri;
    entry->built = true;
  }
  entry->segmented = true;
  std::lock_guard<std::mutex> lock(entry->mu);
  for (auto& f : fragments) {
    entry->frags.push_back(f.get());
    entry->docs.push_back(std::move(f));
  }
  return Status::OK();
}

Status DocumentStore::AddLazy(const std::string& uri,
                              std::shared_ptr<const std::string> xml_text,
                              const std::set<std::string>& segment_tags) {
  auto entry = std::make_shared<Entry>();
  entry->uri = uri;
  entry->text = std::move(xml_text);
  entry->segment_tags = segment_tags;
  entry->segmented = !segment_tags.empty();
  by_uri_[uri] = std::move(entry);
  return Status::OK();
}

void DocumentStore::RemoveUri(const std::string& uri) { by_uri_.erase(uri); }

size_t DocumentStore::SegmentCount(const std::string& uri) const {
  auto it = by_uri_.find(uri);
  if (it == by_uri_.end()) return 0;
  std::lock_guard<std::mutex> lock(it->second->mu);
  it->second->EnsureBuiltLocked();
  return it->second->frags.size();
}

int64_t DocumentStore::TotalNodes() const {
  int64_t total = 0;
  for (const auto& [uri, entry] : by_uri_) {
    std::lock_guard<std::mutex> lock(entry->mu);
    entry->EnsureBuiltLocked();
    for (const auto& doc : entry->docs) total += doc->node_count;
  }
  return total;
}

int64_t DocumentStore::RetainedBytes() const {
  int64_t total = 0;
  for (const auto& [uri, entry] : by_uri_) {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (!entry->built) continue;  // unbuilt entries retain no tree
    for (const auto& doc : entry->docs) {
      total += SubtreeBytes(doc->doc_node.get());
    }
  }
  return total;
}

const std::vector<const xml::XmlDocument*>& DocumentStore::Fragments(
    const std::string& uri) const {
  static const std::vector<const xml::XmlDocument*> kEmpty;
  auto it = by_uri_.find(uri);
  if (it == by_uri_.end()) return kEmpty;
  // First caller materializes the DOM; the entry lock publishes the built
  // vector to later callers (immutable afterwards, safe to hand out).
  std::lock_guard<std::mutex> lock(it->second->mu);
  it->second->EnsureBuiltLocked();
  return it->second->frags;
}

Result<const XmlNode*> DocumentStore::Resolve(const std::string& uri) {
  auto it = by_uri_.find(uri);
  if (it == by_uri_.end()) {
    return Status::NotFound("document not loaded: " + uri);
  }
  if (it->second->segmented) {
    return Status::InvalidArgument(
        "document " + uri + " is stored segmented; use per-fragment "
        "evaluation");
  }
  std::lock_guard<std::mutex> lock(it->second->mu);
  it->second->EnsureBuiltLocked();
  return it->second->frags.front()->doc_node.get();
}

}  // namespace xqjg::native
