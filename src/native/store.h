// Document store of the pureXML™-style native engine.
//
// Two layouts, mirroring the paper's §IV-B comparison:
//   * whole      — one monolithic document per URI;
//   * segmented  — the document cut into many small fragments (the layout
//     pureXML favors: "comparably small XML document segments per row").
//
// Segmentation is spine-preserving: each segment keeps the chain of
// ancestors of its root subtree (without siblings), so absolute paths
// like /site/people/person still match inside a segment.
//
// Storage is LAZY for processor-managed corpora: AddLazy registers the
// URI with its retained source text only; the DOM materializes on first
// native use (Fragments/Resolve), guarded per entry, and is then shared
// by every snapshot holding the entry — reloading one URI leaves every
// other document's built DOM pointer-identical, and a corpus that is
// never queried natively costs no tree at all (the shared column block
// is the only copy). AddWhole/AddSegmented remain as eager paths for
// direct engine use and tests.
#ifndef XQJG_NATIVE_STORE_H_
#define XQJG_NATIVE_STORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/xml/dom.h"
#include "src/native/interp.h"

namespace xqjg::native {

/// Copying a DocumentStore is cheap: per-URI entries (source text +
/// lazily built fragment documents) are immutable-once-built and held
/// through shared_ptr, so a copy shares every entry. The processor's
/// catalog snapshots rely on this — loading or reloading one document
/// clones the store, removes/re-adds only that URI's entry, and leaves
/// every other document (and its already-built DOM) shared with the
/// previous snapshot.
class DocumentStore : public DocumentResolver {
 public:
  DocumentStore() = default;
  DocumentStore(const DocumentStore&) = default;
  DocumentStore& operator=(const DocumentStore&) = default;

  /// Adds a whole document under its URI (eager: the tree exists).
  Status AddWhole(std::unique_ptr<xml::XmlDocument> doc);

  /// Adds a document cut into segments: every subtree rooted at an element
  /// whose tag is in `segment_tags` becomes one fragment document (with
  /// its ancestor spine). All fragments answer to the original URI.
  /// Eager path; errors when no segment root matches.
  Status AddSegmented(const xml::XmlDocument& doc,
                      const std::set<std::string>& segment_tags);

  /// Registers `uri` without building anything: the DOM (whole layout
  /// when `segment_tags` is empty, else the segmented fragments) parses
  /// from `xml_text` on first use. The caller has already validated the
  /// text and — for the segmented layout — the presence of a segment
  /// root, so the deferred build cannot fail on retained input.
  Status AddLazy(const std::string& uri,
                 std::shared_ptr<const std::string> xml_text,
                 const std::set<std::string>& segment_tags = {});

  /// Drops every fragment registered under `uri` (no-op when absent).
  /// Used by document reload: copy the store, remove the URI, re-add it.
  void RemoveUri(const std::string& uri);

  /// Number of stored fragment/whole documents for `uri` (forces the
  /// lazy build).
  size_t SegmentCount(const std::string& uri) const;
  /// Total stored nodes across all built fragments (forces lazy builds).
  int64_t TotalNodes() const;

  /// All fragments registered under `uri` (one entry for whole layout).
  /// Forces the lazy build; thread-safe (first caller builds under the
  /// entry lock, later callers see the built tree).
  const std::vector<const xml::XmlDocument*>& Fragments(
      const std::string& uri) const;

  /// DocumentResolver: resolves to the single whole document; errors for
  /// segmented URIs (per-fragment evaluation must be used instead).
  Result<const xml::XmlNode*> Resolve(const std::string& uri) override;

  /// Approximate heap bytes of MATERIALIZED trees only — an entry whose
  /// DOM was never forced costs nothing beyond the shared source text.
  /// The native lane's contribution to the corpus footprint accounting.
  int64_t RetainedBytes() const;

  /// Resolver view pinned to one fragment: doc(uri) yields that fragment.
  class FragmentResolver : public DocumentResolver {
   public:
    FragmentResolver(std::string uri, const xml::XmlNode* node)
        : uri_(std::move(uri)), node_(node) {}
    Result<const xml::XmlNode*> Resolve(const std::string& uri) override {
      if (uri != uri_) return Status::NotFound("document not loaded: " + uri);
      return node_;
    }

   private:
    std::string uri_;
    const xml::XmlNode* node_;
  };

 private:
  /// One URI's storage, shared across store copies. Built state mutates
  /// exactly once (unbuilt → built) under `mu`; after that every field is
  /// immutable, so readers that acquired `mu` once can keep the returned
  /// pointers without further locking.
  struct Entry {
    std::string uri;
    std::shared_ptr<const std::string> text;  ///< null for eager entries
    std::set<std::string> segment_tags;
    bool segmented = false;

    mutable std::mutex mu;
    mutable bool built = false;
    mutable std::vector<std::shared_ptr<const xml::XmlDocument>> docs;
    mutable std::vector<const xml::XmlDocument*> frags;

    /// Parses/segments from `text` if not built yet. Caller holds `mu`.
    void EnsureBuiltLocked() const;
  };

  std::map<std::string, std::shared_ptr<Entry>> by_uri_;
};

}  // namespace xqjg::native

#endif  // XQJG_NATIVE_STORE_H_
