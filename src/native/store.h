// Document store of the pureXML™-style native engine.
//
// Two layouts, mirroring the paper's §IV-B comparison:
//   * whole      — one monolithic document per URI;
//   * segmented  — the document cut into many small fragments (the layout
//     pureXML favors: "comparably small XML document segments per row").
//
// Segmentation is spine-preserving: each segment keeps the chain of
// ancestors of its root subtree (without siblings), so absolute paths
// like /site/people/person still match inside a segment.
#ifndef XQJG_NATIVE_STORE_H_
#define XQJG_NATIVE_STORE_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/xml/dom.h"
#include "src/native/interp.h"

namespace xqjg::native {

/// Copying a DocumentStore is cheap: parsed documents are immutable and
/// held through shared_ptr, so a copy shares every document. The
/// processor's catalog snapshots rely on this — loading or reloading one
/// document clones the store, removes/re-adds only that URI's fragments,
/// and leaves every other document shared with the previous snapshot.
class DocumentStore : public DocumentResolver {
 public:
  /// Adds a whole document under its URI.
  Status AddWhole(std::unique_ptr<xml::XmlDocument> doc);

  /// Adds a document cut into segments: every subtree rooted at an element
  /// whose tag is in `segment_tags` becomes one fragment document (with
  /// its ancestor spine). All fragments answer to the original URI.
  Status AddSegmented(const xml::XmlDocument& doc,
                      const std::set<std::string>& segment_tags);

  /// Drops every fragment registered under `uri` (no-op when absent).
  /// Used by document reload: copy the store, remove the URI, re-add it.
  void RemoveUri(const std::string& uri);

  /// Number of stored fragment/whole documents for `uri`.
  size_t SegmentCount(const std::string& uri) const;
  /// Total stored nodes (across all fragments).
  int64_t TotalNodes() const;

  /// All fragments registered under `uri` (one entry for whole layout).
  const std::vector<const xml::XmlDocument*>& Fragments(
      const std::string& uri) const;

  /// DocumentResolver: resolves to the single whole document; errors for
  /// segmented URIs (per-fragment evaluation must be used instead).
  Result<const xml::XmlNode*> Resolve(const std::string& uri) override;

  /// Resolver view pinned to one fragment: doc(uri) yields that fragment.
  class FragmentResolver : public DocumentResolver {
   public:
    FragmentResolver(std::string uri, const xml::XmlNode* node)
        : uri_(std::move(uri)), node_(node) {}
    Result<const xml::XmlNode*> Resolve(const std::string& uri) override {
      if (uri != uri_) return Status::NotFound("document not loaded: " + uri);
      return node_;
    }

   private:
    std::string uri_;
    const xml::XmlNode* node_;
  };

 private:
  std::vector<std::shared_ptr<const xml::XmlDocument>> owned_;
  std::map<std::string, std::vector<const xml::XmlDocument*>> by_uri_;
  std::set<std::string> segmented_uris_;
};

}  // namespace xqjg::native

#endif  // XQJG_NATIVE_STORE_H_
