#include "src/native/xscan.h"

#include <chrono>
#include <set>

#include "src/common/str.h"
#include "src/xml/serializer.h"

namespace xqjg::native {

using xml::XmlNode;
using xquery::ExprKind;
using xquery::ExprPtr;

namespace {

/// A value comparison found in the query that an XMLPATTERN index might
/// support: path `op` literal.
struct IndexableComparison {
  XmlPattern pattern;  // path part (uri + steps), type from the literal
  xquery::CompOp op;
  Value literal;
};

/// Collects indexable comparisons (path-vs-literal along non-branching
/// forward paths, rooted at doc() directly or through `for`/`let`
/// variables bound to such paths).
void CollectComparisons(const ExprPtr& e,
                        std::map<std::string, XmlPattern>* var_paths,
                        std::vector<IndexableComparison>* out) {
  if (!e) return;
  if (e->kind == ExprKind::kFor || e->kind == ExprKind::kLet) {
    auto bound = PatternOfExpr(e->a, PatternType::kVarchar, var_paths);
    CollectComparisons(e->a, var_paths, out);
    const bool inserted =
        bound && var_paths->emplace(e->var, std::move(*bound)).second;
    CollectComparisons(e->b, var_paths, out);
    if (inserted) var_paths->erase(e->var);
    return;
  }
  if (e->kind == ExprKind::kComp) {
    const bool lhs_lit =
        e->a->kind == ExprKind::kNumLit || e->a->kind == ExprKind::kStrLit;
    const bool rhs_lit =
        e->b->kind == ExprKind::kNumLit || e->b->kind == ExprKind::kStrLit;
    if (lhs_lit != rhs_lit) {
      const ExprPtr& lit = lhs_lit ? e->a : e->b;
      const ExprPtr& path = lhs_lit ? e->b : e->a;
      PatternType type = lit->kind == ExprKind::kNumLit
                             ? PatternType::kDouble
                             : PatternType::kVarchar;
      auto pattern = PatternOfExpr(path, type, var_paths);
      if (pattern) {
        xquery::CompOp op = e->op;
        if (lhs_lit) {
          switch (op) {
            case xquery::CompOp::kLt: op = xquery::CompOp::kGt; break;
            case xquery::CompOp::kLe: op = xquery::CompOp::kGe; break;
            case xquery::CompOp::kGt: op = xquery::CompOp::kLt; break;
            case xquery::CompOp::kGe: op = xquery::CompOp::kLe; break;
            default: break;
          }
        }
        Value literal = lit->kind == ExprKind::kNumLit
                            ? Value::Double(lit->num)
                            : Value::String(lit->str);
        out->push_back({*pattern, op, std::move(literal)});
      }
    }
  }
  CollectComparisons(e->a, var_paths, out);
  CollectComparisons(e->b, var_paths, out);
}

/// The query's primary document URI (first doc() reference found).
std::optional<std::string> PrimaryUri(const ExprPtr& e) {
  if (!e) return std::nullopt;
  if (e->kind == ExprKind::kDoc) return e->str;
  if (auto uri = PrimaryUri(e->a)) return uri;
  return PrimaryUri(e->b);
}

bool SamePattern(const XmlPattern& a, const XmlPattern& b) {
  if (a.uri != b.uri || a.type != b.type || a.steps.size() != b.steps.size()) {
    return false;
  }
  for (size_t i = 0; i < a.steps.size(); ++i) {
    if (a.steps[i].axis != b.steps[i].axis ||
        a.steps[i].name != b.steps[i].name) {
      return false;
    }
  }
  return true;
}

}  // namespace

void NativeEngine::CreateIndex(XmlPattern pattern) {
  indexes_.push_back(std::make_shared<const PatternIndex>(std::move(pattern),
                                                          *store_));
}

Result<std::vector<std::string>> NativeEngine::Run(
    const ExprPtr& core, double timeout_seconds, NativeRunStats* stats) const {
  auto uri = PrimaryUri(core);
  if (!uri) return Status::InvalidArgument("query references no document");
  const auto& fragments = store_->Fragments(*uri);
  if (fragments.empty()) return Status::NotFound("document not loaded: " + *uri);

  NativeRunStats local_stats;
  NativeRunStats* st = stats ? stats : &local_stats;
  st->fragments_considered = fragments.size();

  // Index eligibility: pick the first query comparison covered by a
  // declared XMLPATTERN index.
  std::vector<size_t> rids;
  bool pruned = false;
  std::vector<IndexableComparison> comparisons;
  std::map<std::string, XmlPattern> var_paths;
  CollectComparisons(core, &var_paths, &comparisons);
  for (const auto& cmp : comparisons) {
    for (const auto& index : indexes_) {
      if (!SamePattern(index->pattern(), cmp.pattern)) continue;
      rids = index->Scan(cmp.op, cmp.literal);
      pruned = true;
      st->used_index = true;
      st->index_used = index->pattern().ToString();
      break;
    }
    if (pruned) break;
  }
  if (!pruned) {
    rids.resize(fragments.size());
    for (size_t i = 0; i < rids.size(); ++i) rids[i] = i;
  }
  st->fragments_scanned = rids.size();

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              timeout_seconds > 0 ? timeout_seconds : 1e9));

  std::vector<std::string> out;
  for (size_t rid : rids) {
    if (timeout_seconds > 0 && std::chrono::steady_clock::now() > deadline) {
      return Status::Timeout("native evaluation exceeded budget (DNF)");
    }
    DocumentStore::FragmentResolver resolver(
        *uri, fragments[rid]->doc_node.get());
    auto result = EvaluateQuery(core, &resolver);
    if (!result.ok()) return result.status();
    for (const XmlNode* node : result.value()) {
      out.push_back(xml::SerializeSubtree(node));
    }
  }
  return out;
}

}  // namespace xqjg::native
