// The native engine's query driver (paper §IV-B architecture):
//
//   1. analyze the normalized query for value comparisons whose path is
//      covered by an XMLPATTERN index (index eligibility);
//   2. XISCAN: range-scan the eligible index -> RID list (fragment ids);
//   3. XSCAN: traverse only the RID'ed fragments' node trees with the
//      TurboXPath-style interpreter (src/native/interp.h).
//
// With whole-document storage an index lookup can only point at the single
// monolithic instance, so XSCAN does all the heavy work — exactly the
// behaviour Table IX shows for the `whole` column.
#ifndef XQJG_NATIVE_XSCAN_H_
#define XQJG_NATIVE_XSCAN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/native/interp.h"
#include "src/native/pattern_index.h"
#include "src/native/store.h"

namespace xqjg::native {

struct NativeRunStats {
  size_t fragments_considered = 0;
  size_t fragments_scanned = 0;  ///< after XISCAN pruning
  bool used_index = false;
  std::string index_used;
};

class NativeEngine {
 public:
  explicit NativeEngine(const DocumentStore* store) : store_(store) {}

  /// Declares an XMLPATTERN index (built immediately). NOT safe to call
  /// concurrently with Run — declare indexes before serving queries.
  void CreateIndex(XmlPattern pattern);

  /// Adopts an already-built index (shared, immutable). Used by catalog
  /// snapshots: a new engine over the SAME store reuses its
  /// predecessor's indexes instead of re-scanning the store per pattern.
  void AdoptIndex(std::shared_ptr<const PatternIndex> index) {
    indexes_.push_back(std::move(index));
  }

  /// Evaluates the Core query. `timeout_seconds` <= 0 disables the DNF
  /// guard. Results are serialized XML fragments in sequence order.
  /// Const and reentrant: all per-run state is local, so any number of
  /// threads may Run against one engine over one immutable store.
  Result<std::vector<std::string>> Run(const xquery::ExprPtr& core,
                                       double timeout_seconds = -1.0,
                                       NativeRunStats* stats = nullptr) const;

  const std::vector<std::shared_ptr<const PatternIndex>>& indexes() const {
    return indexes_;
  }

 private:
  const DocumentStore* store_;
  std::vector<std::shared_ptr<const PatternIndex>> indexes_;
};

}  // namespace xqjg::native

#endif  // XQJG_NATIVE_XSCAN_H_
