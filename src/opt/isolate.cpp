#include "src/opt/isolate.h"

#include "src/algebra/dag.h"
#include "src/opt/rules.h"

namespace xqjg::opt {

Result<IsolationResult> Isolate(const algebra::OpPtr& stacked) {
  IsolationResult result;
  result.ops_before = algebra::CountOps(stacked);
  Rewriter rewriter(algebra::ClonePlan(stacked));
  XQJG_RETURN_NOT_OK(rewriter.Run());
  result.isolated = rewriter.root();
  result.rule_counts = rewriter.rule_counts();
  result.ops_after = algebra::CountOps(result.isolated);
  result.ranks_after =
      algebra::CountOps(result.isolated, algebra::OpKind::kRank);
  result.distincts_after =
      algebra::CountOps(result.isolated, algebra::OpKind::kDistinct);
  return result;
}

}  // namespace xqjg::opt
