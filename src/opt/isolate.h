// Join graph isolation driver (paper §III).
#ifndef XQJG_OPT_ISOLATE_H_
#define XQJG_OPT_ISOLATE_H_

#include <map>
#include <string>

#include "src/algebra/operators.h"
#include "src/common/status.h"

namespace xqjg::opt {

struct IsolationResult {
  /// The rewritten plan (single tail ϱ/δ over a join bundle when the input
  /// is within the isolatable fragment).
  algebra::OpPtr isolated;
  /// Rule name -> application count (diagnostics, plan-shape bench).
  std::map<std::string, int> rule_counts;
  /// Convenience metrics for the Fig. 4 / Fig. 7 comparison.
  size_t ops_before = 0;
  size_t ops_after = 0;
  size_t ranks_after = 0;
  size_t distincts_after = 0;
};

/// Isolates the join graph of `stacked`. The input plan is cloned first —
/// the caller keeps the stacked original (needed for stacked-vs-isolated
/// experiments).
Result<IsolationResult> Isolate(const algebra::OpPtr& stacked);

}  // namespace xqjg::opt

#endif  // XQJG_OPT_ISOLATE_H_
