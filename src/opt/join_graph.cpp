#include "src/opt/join_graph.h"

#include <functional>
#include <map>

#include "src/common/str.h"

namespace xqjg::opt {

using algebra::CmpOp;
using algebra::Op;
using algebra::OpKind;
using algebra::OpPtr;
using algebra::Term;

std::string QualTerm::ToString() const {
  std::string out;
  if (alias >= 0) out = StrPrintf("d%d.%s", alias, col.c_str());
  if (alias2 >= 0) out += StrPrintf(" + d%d.%s", alias2, col2.c_str());
  algebra::AppendTermTail(&out, param, param_name, constant);
  return out.empty() ? "0" : out;
}

bool QualTerm::operator==(const QualTerm& other) const {
  const bool const_eq =
      constant.is_null() ? other.constant.is_null()
                         : (!other.constant.is_null() &&
                            constant.type() == other.constant.type() &&
                            constant == other.constant);
  return alias == other.alias && col == other.col && alias2 == other.alias2 &&
         col2 == other.col2 && param == other.param && const_eq;
}

bool JoinGraph::DistinctPayloadEqualsSortKey() const {
  std::vector<QualTerm> key = order_by;
  key.push_back(item);
  auto contains = [](const std::vector<QualTerm>& haystack,
                     const QualTerm& needle) {
    for (const QualTerm& t : haystack) {
      if (t == needle) return true;
    }
    return false;
  };
  for (const QualTerm& t : select_list) {
    if (!contains(key, t)) return false;
  }
  for (const QualTerm& t : key) {
    if (!contains(select_list, t)) return false;
  }
  return true;
}

QualComparison OrientTo(const QualComparison& p, int alias) {
  auto side_aliases = [](const QualTerm& t) {
    std::vector<int> out;
    if (t.alias >= 0) out.push_back(t.alias);
    if (t.alias2 >= 0) out.push_back(t.alias2);
    return out;
  };
  auto only = [&](const QualTerm& t) {
    for (int a : side_aliases(t)) {
      if (a != alias) return false;
    }
    return !side_aliases(t).empty();
  };
  if (only(p.lhs)) return p;
  if (only(p.rhs)) {
    return QualComparison{p.rhs, algebra::FlipCmpOp(p.op), p.lhs};
  }
  return p;
}

std::string SargColumn(const QualTerm& t, int alias) {
  if (t.alias != alias) return "";
  if (t.alias2 < 0) {
    // col (+ numeric constant) — the constant is compensated at probe
    // time (see AdjustProbeValue).
    if (!t.constant.is_null() && !t.constant.IsNumeric()) return "";
    return t.col;
  }
  if (t.alias2 == alias && !t.constant.is_null() && !t.constant.IsNumeric()) {
    return "";
  }
  if (t.alias2 == alias &&
      ((t.col == "pre" && t.col2 == "size") ||
       (t.col == "size" && t.col2 == "pre"))) {
    return "pss";
  }
  return "";
}

Value AdjustProbeValue(const QualTerm& sarg_side, Value v) {
  if (sarg_side.constant.is_null() || v.is_null()) return v;
  if (!v.IsNumeric() || !sarg_side.constant.IsNumeric()) return Value::Null();
  if (v.type() == ValueType::kInt &&
      sarg_side.constant.type() == ValueType::kInt) {
    return Value::Int(v.AsInt() - sarg_side.constant.AsInt());
  }
  return Value::Double(v.AsDouble() - sarg_side.constant.AsDouble());
}

std::vector<int> QualComparison::Aliases() const {
  std::vector<int> out;
  auto add = [&](int a) {
    if (a < 0) return;
    for (int existing : out) {
      if (existing == a) return;
    }
    out.push_back(a);
  };
  add(lhs.alias);
  add(lhs.alias2);
  add(rhs.alias);
  add(rhs.alias2);
  return out;
}

std::string QualComparison::ToString() const {
  return lhs.ToString() + " " + algebra::CmpOpToString(op) + " " +
         rhs.ToString();
}

std::string JoinGraph::ToString() const {
  std::string out = StrPrintf("join graph over %d doc instance(s)\n",
                              num_aliases);
  for (const auto& p : predicates) {
    out += "  " + p.ToString() + "\n";
  }
  out += distinct ? "  DISTINCT over:" : "  select:";
  for (const auto& t : select_list) {
    out += ' ';
    out += t.ToString();
  }
  out += "\n  order by:";
  for (const auto& t : order_by) {
    out += ' ';
    out += t.ToString();
  }
  out += "\n  item: ";
  out += item.ToString();
  out += '\n';
  return out;
}

namespace {

/// Marker for the tail rank's output column inside the flattener.
constexpr int kRankAlias = -2;

struct Flattener {
  int next_alias = 0;
  std::vector<QualComparison> preds;
  bool distinct = false;
  std::vector<QualTerm> distinct_payload;
  bool have_rank = false;
  std::string rank_col;
  std::vector<QualTerm> rank_order;

  using ColMap = std::map<std::string, QualTerm>;

  Result<QualTerm> MapTerm(const Term& term, const ColMap& colmap) {
    QualTerm out;
    out.constant = term.constant;
    out.param = term.param;
    out.param_name = term.param_name;
    auto add_col = [&](const std::string& c) -> Status {
      auto it = colmap.find(c);
      if (it == colmap.end()) {
        return Status::Internal("column " + c + " missing in flattening");
      }
      const QualTerm& src = it->second;
      if (src.alias == kRankAlias) {
        return Status::NotSupported(
            "rank output used inside the join graph");
      }
      // Fold src into out: out += src.
      if (src.alias >= 0) {
        if (out.alias < 0) {
          out.alias = src.alias;
          out.col = src.col;
        } else if (out.alias2 < 0) {
          out.alias2 = src.alias;
          out.col2 = src.col;
        } else {
          return Status::NotSupported("term with more than two columns");
        }
      }
      if (src.alias2 >= 0) {
        if (out.alias2 < 0) {
          out.alias2 = src.alias2;
          out.col2 = src.col2;
        } else {
          return Status::NotSupported("term with more than two columns");
        }
      }
      if (!src.constant.is_null()) {
        if (out.param >= 0) {
          // A parameter's value is unknown until Execute; folding another
          // constant into the same term cannot be compensated here.
          return Status::NotSupported("parameter arithmetic");
        }
        if (out.constant.is_null()) {
          out.constant = src.constant;
        } else if (out.constant.IsNumeric() && src.constant.IsNumeric()) {
          out.constant =
              Value::Int(out.constant.AsInt() + src.constant.AsInt());
        } else {
          return Status::NotSupported("non-numeric constant addition");
        }
      }
      return Status::OK();
    };
    if (!term.col.empty()) XQJG_RETURN_NOT_OK(add_col(term.col));
    if (!term.col2.empty()) XQJG_RETURN_NOT_OK(add_col(term.col2));
    return out;
  }

  Status MapPredicate(const algebra::Predicate& pred, const ColMap& colmap) {
    for (const auto& cmp : pred.conjuncts) {
      XQJG_ASSIGN_OR_RETURN(QualTerm lhs, MapTerm(cmp.lhs, colmap));
      XQJG_ASSIGN_OR_RETURN(QualTerm rhs, MapTerm(cmp.rhs, colmap));
      preds.push_back(QualComparison{std::move(lhs), cmp.op, std::move(rhs)});
    }
    return Status::OK();
  }

  Result<ColMap> Flatten(const Op* op) {
    switch (op->kind) {
      case OpKind::kDocTable: {
        const int alias = next_alias++;
        ColMap out;
        for (const auto& col : op->schema) {
          QualTerm t;
          t.alias = alias;
          t.col = col;
          out[col] = std::move(t);
        }
        return out;
      }
      case OpKind::kLiteral: {
        if (op->rows.size() != 1) {
          return Status::NotSupported(
              "non-singleton literal table in join graph");
        }
        ColMap out;
        for (size_t i = 0; i < op->schema.size(); ++i) {
          QualTerm t;
          t.constant = op->rows[0][i];
          out[op->schema[i]] = std::move(t);
        }
        return out;
      }
      case OpKind::kSelect: {
        XQJG_ASSIGN_OR_RETURN(ColMap cm, Flatten(op->children[0].get()));
        XQJG_RETURN_NOT_OK(MapPredicate(op->pred, cm));
        return cm;
      }
      case OpKind::kJoin:
      case OpKind::kCross: {
        XQJG_ASSIGN_OR_RETURN(ColMap left, Flatten(op->children[0].get()));
        XQJG_ASSIGN_OR_RETURN(ColMap right, Flatten(op->children[1].get()));
        left.insert(right.begin(), right.end());
        if (op->kind == OpKind::kJoin) {
          XQJG_RETURN_NOT_OK(MapPredicate(op->pred, left));
        }
        return left;
      }
      case OpKind::kProject: {
        XQJG_ASSIGN_OR_RETURN(ColMap cm, Flatten(op->children[0].get()));
        ColMap out;
        for (const auto& [o, in] : op->proj) {
          auto it = cm.find(in);
          if (it == cm.end()) {
            return Status::Internal("projection source missing: " + in);
          }
          out[o] = it->second;
        }
        return out;
      }
      case OpKind::kAttach: {
        XQJG_ASSIGN_OR_RETURN(ColMap cm, Flatten(op->children[0].get()));
        QualTerm t;
        t.constant = op->val;
        cm[op->col] = std::move(t);
        return cm;
      }
      case OpKind::kDistinct: {
        if (distinct) {
          return Status::NotSupported(
              "multiple duplicate eliminations outside the plan tail");
        }
        XQJG_ASSIGN_OR_RETURN(ColMap cm, Flatten(op->children[0].get()));
        distinct = true;
        for (const auto& col : op->children[0]->schema) {
          distinct_payload.push_back(cm.at(col));
        }
        return cm;
      }
      case OpKind::kRank: {
        if (have_rank) {
          return Status::NotSupported(
              "multiple rank operators outside the plan tail");
        }
        XQJG_ASSIGN_OR_RETURN(ColMap cm, Flatten(op->children[0].get()));
        have_rank = true;
        rank_col = op->col;
        for (const auto& b : op->order) {
          auto it = cm.find(b);
          if (it == cm.end()) {
            return Status::Internal("rank criterion missing: " + b);
          }
          if (it->second.alias == kRankAlias) {
            return Status::NotSupported("nested tail ranks");
          }
          rank_order.push_back(it->second);
        }
        QualTerm marker;
        marker.alias = kRankAlias;
        marker.col = op->col;
        cm[op->col] = std::move(marker);
        return cm;
      }
      default:
        return Status::NotSupported(
            std::string("operator not allowed in an isolated join graph: ") +
            algebra::OpKindToString(op->kind));
    }
  }
};

/// Merges doc aliases connected by `d_i.pre = d_j.pre`: pre is the key of
/// doc, so both aliases denote the same row (the compiler's context
/// re-fetch join). This reproduces the paper's alias count (Fig. 8: three
/// doc instances for Q1).
void UnifyKeyAliases(JoinGraph* jg) {
  std::vector<int> rep(static_cast<size_t>(jg->num_aliases));
  for (int i = 0; i < jg->num_aliases; ++i) rep[static_cast<size_t>(i)] = i;
  std::function<int(int)> find = [&](int a) {
    while (rep[static_cast<size_t>(a)] != a) a = rep[static_cast<size_t>(a)];
    return a;
  };
  for (const auto& p : jg->predicates) {
    if (p.op == CmpOp::kEq && p.lhs.IsSimpleCol() && p.rhs.IsSimpleCol() &&
        p.lhs.col == "pre" && p.rhs.col == "pre") {
      int a = find(p.lhs.alias), b = find(p.rhs.alias);
      if (a != b) rep[static_cast<size_t>(std::max(a, b))] = std::min(a, b);
    }
  }
  // Compact alias ids.
  std::vector<int> remap(static_cast<size_t>(jg->num_aliases), -1);
  int next = 0;
  for (int i = 0; i < jg->num_aliases; ++i) {
    int r = find(i);
    if (remap[static_cast<size_t>(r)] < 0) remap[static_cast<size_t>(r)] = next++;
    remap[static_cast<size_t>(i)] = remap[static_cast<size_t>(r)];
  }
  auto fix_term = [&](QualTerm* t) {
    if (t->alias >= 0) t->alias = remap[static_cast<size_t>(t->alias)];
    if (t->alias2 >= 0) t->alias2 = remap[static_cast<size_t>(t->alias2)];
  };
  std::vector<QualComparison> kept;
  std::vector<std::string> seen;
  for (auto& p : jg->predicates) {
    fix_term(&p.lhs);
    fix_term(&p.rhs);
    if (p.op == CmpOp::kEq && p.lhs.IsSimpleCol() && p.rhs.IsSimpleCol() &&
        p.lhs.col == "pre" && p.rhs.col == "pre" &&
        p.lhs.alias == p.rhs.alias) {
      continue;  // became a tautology through unification
    }
    std::string sig = p.ToString();
    if (std::find(seen.begin(), seen.end(), sig) != seen.end()) continue;
    seen.push_back(std::move(sig));
    kept.push_back(std::move(p));
  }
  jg->predicates = std::move(kept);
  for (auto& t : jg->select_list) fix_term(&t);
  for (auto& t : jg->order_by) fix_term(&t);
  fix_term(&jg->item);
  jg->num_aliases = next;
}

/// Under DISTINCT, an alias that feeds neither the select list nor the
/// ordering acts as a pure existence (semijoin) filter. Normalization's
/// predicate desugaring duplicates such filters (nested ifs re-derive the
/// same paths); two filter aliases with identical predicate signatures are
/// interchangeable, so one of them (and its predicates) can be dropped.
void MergeDuplicateSemijoinAliases(JoinGraph* jg) {
  if (!jg->distinct) return;
  auto output_alias = [&](int a) {
    auto uses = [&](const QualTerm& t) {
      return t.alias == a || t.alias2 == a;
    };
    for (const auto& t : jg->select_list) {
      if (uses(t)) return true;
    }
    for (const auto& t : jg->order_by) {
      if (uses(t)) return true;
    }
    return uses(jg->item);
  };
  auto signature = [&](int a) {
    std::vector<std::string> sig;
    for (const auto& p : jg->predicates) {
      bool mentions = false;
      for (int x : p.Aliases()) {
        if (x == a) mentions = true;
      }
      if (!mentions) continue;
      QualComparison copy = p;
      auto mask = [&](QualTerm* t) {
        if (t->alias == a) t->alias = 9999;  // placeholder for "self"
        if (t->alias2 == a) t->alias2 = 9999;
      };
      mask(&copy.lhs);
      mask(&copy.rhs);
      sig.push_back(copy.ToString());
    }
    std::sort(sig.begin(), sig.end());
    return sig;
  };
  std::vector<bool> dropped(static_cast<size_t>(jg->num_aliases), false);
  for (int i = 0; i < jg->num_aliases; ++i) {
    if (dropped[static_cast<size_t>(i)] || output_alias(i)) continue;
    const auto sig_i = signature(i);
    for (int j = i + 1; j < jg->num_aliases; ++j) {
      if (dropped[static_cast<size_t>(j)] || output_alias(j)) continue;
      // No predicate may connect i and j directly.
      bool connected = false;
      for (const auto& p : jg->predicates) {
        bool has_i = false, has_j = false;
        for (int x : p.Aliases()) {
          if (x == i) has_i = true;
          if (x == j) has_j = true;
        }
        if (has_i && has_j) connected = true;
      }
      if (connected) continue;
      if (signature(j) != sig_i) continue;
      dropped[static_cast<size_t>(j)] = true;
      std::vector<QualComparison> kept;
      for (auto& p : jg->predicates) {
        bool mentions_j = false;
        for (int x : p.Aliases()) {
          if (x == j) mentions_j = true;
        }
        if (!mentions_j) kept.push_back(std::move(p));
      }
      jg->predicates = std::move(kept);
    }
  }
  // Compact alias numbering.
  std::vector<int> remap(static_cast<size_t>(jg->num_aliases), -1);
  int next = 0;
  for (int a = 0; a < jg->num_aliases; ++a) {
    if (!dropped[static_cast<size_t>(a)]) remap[static_cast<size_t>(a)] = next++;
  }
  auto fix = [&](QualTerm* t) {
    if (t->alias >= 0) t->alias = remap[static_cast<size_t>(t->alias)];
    if (t->alias2 >= 0) t->alias2 = remap[static_cast<size_t>(t->alias2)];
  };
  for (auto& p : jg->predicates) {
    fix(&p.lhs);
    fix(&p.rhs);
  }
  for (auto& t : jg->select_list) fix(&t);
  for (auto& t : jg->order_by) fix(&t);
  fix(&jg->item);
  jg->num_aliases = next;
}

}  // namespace

Result<JoinGraph> ExtractJoinGraph(const OpPtr& isolated_root) {
  if (isolated_root->kind != OpKind::kSerialize) {
    return Status::InvalidArgument("expected a serialize-rooted plan");
  }
  Flattener fl;
  XQJG_ASSIGN_OR_RETURN(Flattener::ColMap cm,
                        fl.Flatten(isolated_root->children[0].get()));
  JoinGraph jg;
  jg.num_aliases = fl.next_alias;
  jg.predicates = std::move(fl.preds);
  jg.distinct = fl.distinct;

  auto item_it = cm.find(isolated_root->col);
  if (item_it == cm.end() || item_it->second.alias == kRankAlias ||
      !item_it->second.IsSimpleCol()) {
    return Status::NotSupported("result item column is not a plain column");
  }
  jg.item = item_it->second;

  const std::string& pos_col = isolated_root->order[0];
  auto pos_it = cm.find(pos_col);
  if (pos_it == cm.end()) {
    return Status::Internal("pos column missing after flattening");
  }
  if (pos_it->second.alias == kRankAlias) {
    jg.order_by = fl.rank_order;
  } else {
    jg.order_by = {pos_it->second};
  }
  // Constant order criteria are vacuous.
  std::vector<QualTerm> order;
  for (auto& t : jg.order_by) {
    if (!t.IsConst()) order.push_back(std::move(t));
  }
  jg.order_by = std::move(order);

  if (fl.distinct) {
    jg.select_list = std::move(fl.distinct_payload);
  } else {
    jg.select_list = jg.order_by;
    jg.select_list.push_back(jg.item);
  }
  // Trivial predicate elimination (constants on both sides). Parameter
  // markers are NOT folded — their values arrive at Execute time.
  std::vector<QualComparison> kept;
  for (auto& p : jg.predicates) {
    if (p.lhs.IsConst() && p.rhs.IsConst() && !p.lhs.IsParam() &&
        !p.rhs.IsParam()) {
      // Evaluated at plan time; keep only if not a tautology. A false
      // constant comparison empties the result — keep it so executors
      // notice.
      int c = p.lhs.constant.Compare(p.rhs.constant);
      bool truth = false;
      switch (p.op) {
        case CmpOp::kEq: truth = c == 0; break;
        case CmpOp::kNe: truth = c != 0 && c != Value::kNullCmp; break;
        case CmpOp::kLt: truth = c == -1; break;
        case CmpOp::kLe: truth = c == -1 || c == 0; break;
        case CmpOp::kGt: truth = c == 1; break;
        case CmpOp::kGe: truth = c == 1 || c == 0; break;
      }
      if (truth) continue;
    }
    kept.push_back(std::move(p));
  }
  jg.predicates = std::move(kept);
  UnifyKeyAliases(&jg);
  MergeDuplicateSemijoinAliases(&jg);
  return jg;
}

}  // namespace xqjg::opt
