// Join graph extraction: flattens an isolated plan into the declarative
// form the paper ships to the RDBMS — a bundle of doc-table aliases, a
// conjunctive predicate set, and the SELECT-DISTINCT / ORDER BY tail
// (paper §III-C, Figs 8/9).
#ifndef XQJG_OPT_JOIN_GRAPH_H_
#define XQJG_OPT_JOIN_GRAPH_H_

#include <string>
#include <vector>

#include "src/algebra/operators.h"
#include "src/common/status.h"

namespace xqjg::opt {

/// Term over qualified columns: value = Σ (alias_i.col_i) + constant.
/// alias == -1 marks an absent column part. A term with param >= 0 is a
/// parameter marker: a constant whose Value is bound at Execute time (the
/// executors substitute it into `constant` before compiling qualifiers).
struct QualTerm {
  int alias = -1;
  std::string col;
  int alias2 = -1;
  std::string col2;
  Value constant;  ///< NULL when absent
  int param = -1;  ///< binding slot of a parameter marker
  std::string param_name;  ///< parameter name (diagnostics / SQL rendering)

  bool IsConst() const { return alias < 0; }
  bool IsParam() const { return param >= 0; }
  bool IsSimpleCol() const {
    return alias >= 0 && alias2 < 0 && constant.is_null() && param < 0;
  }
  bool operator==(const QualTerm& other) const;
  std::string ToString() const;  ///< "d2.pre + d2.size + 1"
};

struct QualComparison {
  QualTerm lhs;
  algebra::CmpOp op = algebra::CmpOp::kEq;
  QualTerm rhs;

  /// Aliases referenced (1 or 2 entries; local predicates reference 1).
  std::vector<int> Aliases() const;
  std::string ToString() const;
};

/// The declarative join graph + plan tail.
struct JoinGraph {
  int num_aliases = 0;  ///< doc instances d0 .. d(n-1)
  std::vector<QualComparison> predicates;

  bool distinct = false;
  /// SELECT list (the δ payload after isolation; superset of order_by and
  /// item).
  std::vector<QualTerm> select_list;
  /// ORDER BY criteria, significant order.
  std::vector<QualTerm> order_by;
  /// The column holding the result nodes' pre ranks.
  QualTerm item;

  /// Tail-operator metadata for batch executors: true iff the DISTINCT
  /// payload (select_list) and the sort key (order_by + item) consist of
  /// exactly the same terms, so the batched plan tail may deduplicate by
  /// comparing adjacent sort keys instead of re-evaluating the payload.
  bool DistinctPayloadEqualsSortKey() const;

  std::string ToString() const;  ///< debugging dump
};

/// Normalizes a conjunct so that, if possible, the side referencing only
/// `alias` is on the left (shared by access-path selection and the scan
/// probes of both physical executors).
QualComparison OrientTo(const QualComparison& p, int alias);

/// The single index column a term denotes for sargability purposes:
/// `pre + size` of one alias maps to the computed column `pss`; a plain
/// column (optionally + numeric constant) maps to itself; anything else is
/// not sargable (empty).
std::string SargColumn(const QualTerm& t, int alias);

/// Probe value for `col_term OP other`: when the sarg side carries a
/// numeric constant k (col + k OP v), the probe compares col OP v - k.
Value AdjustProbeValue(const QualTerm& sarg_side, Value v);

/// Flattens the isolated plan into a JoinGraph. Fails with NotSupported if
/// blocking operators remain outside the plan tail (plan not isolatable —
/// callers fall back to direct DAG execution).
Result<JoinGraph> ExtractJoinGraph(const algebra::OpPtr& isolated_root);

}  // namespace xqjg::opt

#endif  // XQJG_OPT_JOIN_GRAPH_H_
