#include "src/opt/plan_check.h"

#include <set>
#include <utility>

#include "src/common/str.h"
#include "src/engine/columnar/column_batch.h"
#include "src/engine/database.h"
#include "src/engine/planner.h"

namespace xqjg::opt {

namespace {

using algebra::ValidationError;

/// Shared error builder: same rendering as the algebra validator, with
/// the physical node / graph element description in op_desc.
ValidationError MakeError(const std::string& stage, const char* invariant,
                          std::string desc, std::string detail) {
  ValidationError err;
  err.stage = stage;
  err.invariant = invariant;
  err.detail = std::move(detail);
  err.op_id = 0;  // physical nodes carry no ids; desc locates the node
  err.op_desc = std::move(desc);
  return err;
}

// ---------------------------------------------------------------------
// Join-graph checks
// ---------------------------------------------------------------------

class GraphChecker {
 public:
  GraphChecker(const JoinGraph& graph, const std::string& stage,
               int num_params)
      : graph_(graph), stage_(stage), num_params_(num_params) {}

  std::vector<ValidationError> Run() {
    // The planner and both executors mask alias sets into uint32s.
    if (graph_.num_aliases <= 0 || graph_.num_aliases > 32) {
      Report("alias-range", "join graph",
             StrPrintf("num_aliases is %d, expected 1..32 (alias sets are "
                       "uint32 masks)", graph_.num_aliases));
      return std::move(errors_);
    }
    for (const QualComparison& p : graph_.predicates) {
      CheckTerm(p.lhs, "predicate " + p.ToString());
      CheckTerm(p.rhs, "predicate " + p.ToString());
    }
    for (const QualTerm& t : graph_.select_list) {
      CheckTerm(t, "select list");
    }
    for (const QualTerm& t : graph_.order_by) {
      CheckTerm(t, "order by");
    }
    CheckTerm(graph_.item, "item");
    if (graph_.item.IsConst() && graph_.item.constant.is_null() &&
        !graph_.item.IsParam()) {
      Report("tail-sortkey", "item",
             "item term is absent (no result column)");
    }
    CheckTail();
    return std::move(errors_);
  }

 private:
  void Report(const char* invariant, std::string desc, std::string detail) {
    errors_.push_back(MakeError(stage_, invariant, std::move(desc),
                                std::move(detail)));
  }

  void CheckTerm(const QualTerm& t, const std::string& where) {
    for (const auto& [alias, col] :
         {std::pair<int, const std::string*>{t.alias, &t.col},
          {t.alias2, &t.col2}}) {
      if (alias < 0) continue;
      if (alias >= graph_.num_aliases) {
        Report("alias-range", where,
               StrPrintf("term %s references alias d%d but the graph has "
                         "%d alias(es)", t.ToString().c_str(), alias,
                         graph_.num_aliases));
      }
      bool known = false;
      for (const std::string& doc_col : engine::EngineDocColumns()) {
        if (doc_col == *col) known = true;
      }
      if (!known) {
        Report("column-ref", where,
               StrPrintf("term %s references unknown doc-relation column "
                         "'%s'", t.ToString().c_str(), col->c_str()));
      }
    }
    if (t.IsParam()) {
      if (t.param_name.empty()) {
        Report("param-slot", where,
               StrPrintf("parameter marker slot %d has no name", t.param));
      }
      if (num_params_ != algebra::kParamsUnknown &&
          t.param >= num_params_) {
        Report("param-slot", where,
               StrPrintf("parameter marker $%s uses slot %d but only %d "
                         "external variable(s) are declared",
                         t.param_name.c_str(), t.param, num_params_));
      }
    }
  }

  void CheckTail() {
    // The plan tail sorts by (order_by + item) and, when distinct,
    // deduplicates *adjacent* rows on the select_list payload. That is a
    // complete DISTINCT only if payload-equal rows are guaranteed
    // adjacent, i.e. the payload determines the sort key: every sort-key
    // term must appear in the select list.
    if (graph_.distinct) {
      std::vector<QualTerm> key = graph_.order_by;
      key.push_back(graph_.item);
      for (const QualTerm& t : key) {
        bool found = false;
        for (const QualTerm& s : graph_.select_list) {
          if (s == t) found = true;
        }
        if (!found) {
          Report("tail-sortkey", "distinct tail",
                 StrPrintf("sort-key term %s is missing from the DISTINCT "
                           "payload (select list %s) — adjacent-row dedup "
                           "after the sort would miss duplicates",
                           t.ToString().c_str(),
                           TermListToString(graph_.select_list).c_str()));
        }
      }
    }
    // DistinctPayloadEqualsSortKey() gates the batched executors'
    // dedup-by-sort-key fast path; recompute it independently (string
    // set containment both ways) and require agreement.
    std::set<std::string> payload, key;
    for (const QualTerm& t : graph_.select_list) payload.insert(t.ToString());
    for (const QualTerm& t : graph_.order_by) key.insert(t.ToString());
    key.insert(graph_.item.ToString());
    const bool recomputed = payload == key;
    if (graph_.DistinctPayloadEqualsSortKey() != recomputed) {
      Report("tail-sortkey", "distinct tail",
             StrPrintf("DistinctPayloadEqualsSortKey() reports %s but the "
                       "recomputed payload/sort-key comparison says %s "
                       "(payload %s vs sort key %s + item %s)",
                       graph_.DistinctPayloadEqualsSortKey() ? "true"
                                                             : "false",
                       recomputed ? "true" : "false",
                       TermListToString(graph_.select_list).c_str(),
                       TermListToString(graph_.order_by).c_str(),
                       graph_.item.ToString().c_str()));
    }
  }

  static std::string TermListToString(const std::vector<QualTerm>& terms) {
    std::string out = "[";
    for (size_t i = 0; i < terms.size(); ++i) {
      if (i) out += ", ";
      out += terms[i].ToString();
    }
    out += "]";
    return out;
  }

  const JoinGraph& graph_;
  const std::string& stage_;
  const int num_params_;
  std::vector<ValidationError> errors_;
};

// ---------------------------------------------------------------------
// Physical-plan checks
// ---------------------------------------------------------------------

const char* PhysKindName(engine::PhysKind kind) {
  switch (kind) {
    case engine::PhysKind::kIxScan: return "IXSCAN";
    case engine::PhysKind::kTbScan: return "TBSCAN";
    case engine::PhysKind::kNlJoin: return "NLJOIN";
    case engine::PhysKind::kHsJoin: return "HSJOIN";
  }
  return "?";
}

/// Type category of a hash-join key term for the hsjoin-key-types check.
/// kEither covers parameter markers (bound at Execute) and terms the
/// categorizer cannot pin down.
enum class KeyCat { kNumeric, kString, kEither };

class PlanChecker {
 public:
  PlanChecker(const engine::PhysicalPlan& plan, const engine::Database& db,
              const PlanCheckContext& context, const std::string& stage)
      : plan_(plan), db_(db), context_(context), stage_(stage) {}

  std::vector<ValidationError> Run() {
    if (!plan_.root) {
      Report("phys-structure", "physical plan", "plan root is null");
      return std::move(errors_);
    }
    if (!plan_.graph) {
      Report("phys-structure", "physical plan",
             "plan carries no join graph (graph is null)");
      return std::move(errors_);
    }
    num_aliases_ = plan_.graph->num_aliases;
    const uint32_t covered = CheckNode(plan_.root.get());
    const uint32_t all =
        num_aliases_ >= 32 ? ~0u : (1u << num_aliases_) - 1u;
    if (num_aliases_ > 0 && covered != all) {
      for (int a = 0; a < num_aliases_; ++a) {
        if (!(covered & (1u << a))) {
          Report("phys-structure", "physical plan",
                 StrPrintf("alias d%d is never scanned (join graph has %d "
                           "aliases)", a, num_aliases_));
        }
      }
    }
    return std::move(errors_);
  }

 private:
  void Report(const char* invariant, std::string desc, std::string detail) {
    errors_.push_back(MakeError(stage_, invariant, std::move(desc),
                                std::move(detail)));
  }

  std::string Desc(const engine::PhysNode* node) const {
    if (node->kind == engine::PhysKind::kIxScan ||
        node->kind == engine::PhysKind::kTbScan) {
      return StrPrintf("%s d%d", PhysKindName(node->kind), node->alias);
    }
    return PhysKindName(node->kind);
  }

  /// Returns the alias mask scanned in `node`'s subtree.
  uint32_t CheckNode(const engine::PhysNode* node) {
    const bool is_scan = node->kind == engine::PhysKind::kIxScan ||
                         node->kind == engine::PhysKind::kTbScan;
    uint32_t mask = 0;
    if (is_scan) {
      if (node->left || node->right) {
        Report("phys-structure", Desc(node),
               "scan node has children (scans are leaves)");
      }
      if (node->alias < 0 || node->alias >= num_aliases_) {
        Report("alias-range", Desc(node),
               StrPrintf("scan alias d%d is outside the graph's %d "
                         "alias(es)", node->alias, num_aliases_));
      } else {
        mask = 1u << node->alias;
        if (scanned_ & mask) {
          Report("phys-structure", Desc(node),
                 StrPrintf("alias d%d is scanned twice", node->alias));
        }
        scanned_ |= mask;
      }
      CheckScanIndex(node);
    } else {
      if (!node->left || !node->right) {
        Report("phys-structure", Desc(node),
               "join node is missing a child (joins are binary)");
        return mask;
      }
      mask = CheckNode(node->left.get()) | CheckNode(node->right.get());
      if (node->kind == engine::PhysKind::kHsJoin) CheckHashKeys(node);
    }
    CheckPreds(node, mask, is_scan);
    return mask;
  }

  void CheckScanIndex(const engine::PhysNode* node) {
    if (node->kind == engine::PhysKind::kTbScan) {
      if (node->index) {
        Report("phys-structure", Desc(node),
               "table scan carries an index pointer");
      }
      return;
    }
    if (!node->index) {
      Report("ixscan-index", Desc(node),
             "index scan carries no index pointer");
      return;
    }
    const std::string& name = node->index->def.name;
    const std::string rendered = node->index->def.ToString();
    if (context_.catalog_index_defs) {
      auto it = context_.catalog_index_defs->find(name);
      if (it == context_.catalog_index_defs->end()) {
        Report("ixscan-index", Desc(node),
               StrPrintf("probed index '%s' is not in the catalog "
                         "snapshot's index_defs", name.c_str()));
      } else if (it->second != rendered) {
        Report("ixscan-index", Desc(node),
               StrPrintf("probed index '%s' definition (%s) does not "
                         "match the catalog snapshot's (%s)", name.c_str(),
                         rendered.c_str(), it->second.c_str()));
      }
    }
    if (context_.used_indexes) {
      auto it = context_.used_indexes->find(name);
      if (it == context_.used_indexes->end()) {
        Report("used-indexes", Desc(node),
               StrPrintf("probed index '%s' is missing from the prepared "
                         "artifact's used_indexes — DDL on it would not "
                         "invalidate this plan", name.c_str()));
      } else if (it->second != rendered) {
        Report("used-indexes", Desc(node),
               StrPrintf("probed index '%s' is recorded in used_indexes "
                         "with a stale definition (%s vs plan's %s)",
                         name.c_str(), it->second.c_str(),
                         rendered.c_str()));
      }
    }
  }

  void CheckPreds(const engine::PhysNode* node, uint32_t subtree_mask,
                  bool is_scan) {
    for (const QualComparison& p : node->preds) {
      for (const QualTerm* t : {&p.lhs, &p.rhs}) {
        CheckTermRefs(node, *t, p);
        if (t->IsParam()) {
          if (t->param_name.empty()) {
            Report("param-slot", Desc(node),
                   StrPrintf("predicate %s: parameter marker slot %d has "
                             "no name", p.ToString().c_str(), t->param));
          }
          if (context_.num_params != algebra::kParamsUnknown &&
              t->param >= context_.num_params) {
            Report("param-slot", Desc(node),
                   StrPrintf("predicate %s: parameter marker $%s uses "
                             "slot %d but only %d external variable(s) "
                             "are declared", p.ToString().c_str(),
                             t->param_name.c_str(), t->param,
                             context_.num_params));
          }
        }
      }
      if (!is_scan) {
        // A join evaluates its edge predicates over its own output; a
        // reference to an alias outside the subtree would read a column
        // that does not exist yet. (Scan predicates may probe outer
        // aliases — that is exactly what a parameterized inner of an
        // NLJOIN does — so only alias validity is checked there, by
        // CheckTermRefs.)
        for (int alias : p.Aliases()) {
          if (alias >= 0 && alias < num_aliases_ &&
              !(subtree_mask & (1u << alias))) {
            Report("pred-binding", Desc(node),
                   StrPrintf("join predicate %s references alias d%d, "
                             "which is not scanned in this join's "
                             "subtree", p.ToString().c_str(), alias));
          }
        }
      }
    }
  }

  void CheckTermRefs(const engine::PhysNode* node, const QualTerm& t,
                     const QualComparison& p) {
    for (const auto& [alias, col] :
         {std::pair<int, const std::string*>{t.alias, &t.col},
          {t.alias2, &t.col2}}) {
      if (alias < 0) continue;
      if (alias >= num_aliases_) {
        Report("alias-range", Desc(node),
               StrPrintf("predicate %s references alias d%d but the "
                         "graph has %d alias(es)", p.ToString().c_str(),
                         alias, num_aliases_));
        continue;
      }
      if (db_.ColumnIndex(*col) < 0) {
        Report("column-ref", Desc(node),
               StrPrintf("predicate %s references unknown doc-relation "
                         "column '%s'", p.ToString().c_str(),
                         col->c_str()));
      }
    }
  }

  /// Category of one side of a hash-join equality key. Numeric-vs-string
  /// disagreement means the build and probe hashes can never collide on
  /// equal values — the join silently returns nothing.
  KeyCat TermCat(const QualTerm& t) const {
    if (t.IsParam()) return KeyCat::kEither;
    bool numeric = false;
    bool stringy = false;
    for (const auto& [alias, col] :
         {std::pair<int, const std::string*>{t.alias, &t.col},
          {t.alias2, &t.col2}}) {
      if (alias < 0) continue;
      const int idx = db_.ColumnIndex(*col);
      if (idx < 0) return KeyCat::kEither;  // reported as column-ref
      switch (db_.Column(idx).tag()) {
        case ColumnTag::kInt:
        case ColumnTag::kDouble:
          numeric = true;
          break;
        case ColumnTag::kString:
        case ColumnTag::kDictString:
          stringy = true;
          break;
        case ColumnTag::kMixed:
          return KeyCat::kEither;
      }
    }
    if (!t.constant.is_null()) {
      if (t.constant.type() == ValueType::kString) {
        stringy = true;
      } else {
        numeric = true;
      }
    }
    // A multi-part term (col + col2, or col + constant) is an arithmetic
    // sum, so any string participant is itself a key-type error.
    const bool is_sum = t.alias2 >= 0 || !t.constant.is_null();
    if (stringy && (numeric || is_sum)) return KeyCat::kString;  // flagged
    if (stringy) return KeyCat::kString;
    if (numeric) return KeyCat::kNumeric;
    return KeyCat::kEither;
  }

  void CheckHashKeys(const engine::PhysNode* node) {
    for (const QualComparison& p : node->preds) {
      if (p.op != algebra::CmpOp::kEq) continue;
      const KeyCat lhs = TermCat(p.lhs);
      const KeyCat rhs = TermCat(p.rhs);
      if ((lhs == KeyCat::kNumeric && rhs == KeyCat::kString) ||
          (lhs == KeyCat::kString && rhs == KeyCat::kNumeric)) {
        Report("hsjoin-key-types", Desc(node),
               StrPrintf("hash-join key %s compares a %s key against a "
                         "%s key — build/probe hashes can never match",
                         p.ToString().c_str(),
                         lhs == KeyCat::kNumeric ? "numeric" : "string",
                         rhs == KeyCat::kNumeric ? "numeric" : "string"));
      }
      // An arithmetic sum over a string column is malformed on its own,
      // whatever the other side is.
      for (const QualTerm* t : {&p.lhs, &p.rhs}) {
        const bool is_sum = t->alias2 >= 0 || !t->constant.is_null();
        if (!is_sum || t->alias < 0) continue;
        const int idx = db_.ColumnIndex(t->col);
        const int idx2 =
            t->alias2 >= 0 ? db_.ColumnIndex(t->col2) : -1;
        const bool str_part =
            (idx >= 0 && (db_.Column(idx).tag() == ColumnTag::kString ||
                          db_.Column(idx).tag() == ColumnTag::kDictString)) ||
            (idx2 >= 0 && (db_.Column(idx2).tag() == ColumnTag::kString ||
                           db_.Column(idx2).tag() == ColumnTag::kDictString));
        if (str_part) {
          Report("hsjoin-key-types", Desc(node),
                 StrPrintf("hash-join key term %s sums over a string "
                           "column", t->ToString().c_str()));
        }
      }
    }
  }

  const engine::PhysicalPlan& plan_;
  const engine::Database& db_;
  const PlanCheckContext& context_;
  const std::string& stage_;
  int num_aliases_ = 0;
  uint32_t scanned_ = 0;
  std::vector<ValidationError> errors_;
};

Status FirstError(std::vector<ValidationError> errors) {
  if (errors.empty()) return Status::OK();
  return errors.front().ToStatus();
}

}  // namespace

std::vector<ValidationError> CheckJoinGraph(const JoinGraph& graph,
                                            const std::string& stage,
                                            int num_params) {
  return GraphChecker(graph, stage, num_params).Run();
}

Status ValidateJoinGraph(const JoinGraph& graph, const std::string& stage,
                         int num_params) {
  return FirstError(CheckJoinGraph(graph, stage, num_params));
}

std::vector<ValidationError> CheckPhysicalPlanErrors(
    const engine::PhysicalPlan& plan, const engine::Database& db,
    const PlanCheckContext& context, const std::string& stage) {
  return PlanChecker(plan, db, context, stage).Run();
}

Status CheckPhysicalPlan(const engine::PhysicalPlan& plan,
                         const engine::Database& db,
                         const PlanCheckContext& context,
                         const std::string& stage) {
  return FirstError(CheckPhysicalPlanErrors(plan, db, context, stage));
}

Status CheckColumnBatch(const engine::columnar::ColumnBatch& batch,
                        const char* site) {
  const auto fail = [&](const char* invariant, std::string detail) {
    return MakeError("execute", invariant, StrPrintf("batch@%s", site),
                     std::move(detail))
        .ToStatus();
  };
  if (batch.schema.size() != batch.cols.size()) {
    return fail("batch-sel",
                StrPrintf("schema has %zu columns but the batch carries "
                          "%zu", batch.schema.size(), batch.cols.size()));
  }
  size_t phys = batch.num_rows;
  for (size_t i = 0; i < batch.cols.size(); ++i) {
    if (!batch.cols[i]) {
      return fail("batch-sel",
                  StrPrintf("column '%s' is null",
                            batch.schema[i].c_str()));
    }
    if (i == 0) {
      phys = batch.cols[i]->size();
    } else if (batch.cols[i]->size() != phys) {
      return fail("batch-sel",
                  StrPrintf("column '%s' has %zu physical rows, column "
                            "'%s' has %zu (columns must share one "
                            "physical length)", batch.schema[i].c_str(),
                            batch.cols[i]->size(),
                            batch.schema[0].c_str(), phys));
    }
  }
  if (batch.sel) {
    const std::vector<uint32_t>& sel = *batch.sel;
    if (sel.size() != batch.num_rows) {
      return fail("batch-sel",
                  StrPrintf("selection vector has %zu entries but "
                            "num_rows is %zu", sel.size(),
                            batch.num_rows));
    }
    for (size_t i = 0; i < sel.size(); ++i) {
      if (sel[i] >= phys) {
        return fail("batch-sel",
                    StrPrintf("selection entry %zu maps to physical row "
                              "%u, past the %zu physical rows", i, sel[i],
                              phys));
      }
      if (i > 0 && sel[i] <= sel[i - 1]) {
        return fail("batch-sel",
                    StrPrintf("selection vector is not strictly "
                              "increasing at entry %zu (%u after %u)", i,
                              sel[i], sel[i - 1]));
      }
    }
  } else if (batch.num_rows != phys && !batch.cols.empty()) {
    return fail("batch-sel",
                StrPrintf("dense batch claims %zu rows but columns hold "
                          "%zu", batch.num_rows, phys));
  }
  return Status::OK();
}

}  // namespace xqjg::opt
