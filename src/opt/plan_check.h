// Static checks over the join graph and the physical plan — the second
// half of the stage-boundary verifier started in src/algebra/validate.h.
// The algebra validator owns the DAG stages (compile, isolate, rewrites);
// this header owns everything after ExtractJoinGraph: the declarative
// JoinGraph itself, the cost-based PhysicalPlan built from it, and the
// ColumnBatch intermediates the columnar executor moves between
// operators.
//
// Checked invariant classes (stable tokens; continuing the vocabulary of
// src/algebra/validate.h):
//   alias-range       every alias a term references is in
//                     [0, num_aliases), and num_aliases fits the uint32
//                     alias masks the planner and executors use (≤ 32)
//   column-ref        every column a term names is a doc-relation column
//   param-slot        every parameter marker has a name and a slot that
//                     maps to a declared external variable
//   tail-sortkey      when distinct, the δ payload (select_list) covers
//                     the sort key (order_by + item) — adjacent-row
//                     dedup after the sort is only then complete — and
//                     DistinctPayloadEqualsSortKey() agrees with an
//                     independent recomputation
//   phys-structure    plan root/graph non-null, scans are leaves, joins
//                     binary, every alias scanned exactly once
//   pred-binding      predicates attached to a node only reference
//                     aliases scanned in that node's subtree (joins) or
//                     valid aliases at all (scans probe outer columns)
//   ixscan-index      kIxScan references a live index whose definition
//                     matches the catalog snapshot's index_defs
//   used-indexes      every probed index is recorded in the prepared
//                     artifact's used_indexes (otherwise index DDL
//                     would fail to invalidate the plan — the PR 6
//                     over-eviction fix, pinned)
//   hsjoin-key-types  hash-join equality keys type-agree (a numeric key
//                     hashed against a string/dict-code key can never
//                     match)
//   batch-sel         a ColumnBatch's selection vector is in-range and
//                     strictly increasing, and its columns share one
//                     physical length
#ifndef XQJG_OPT_PLAN_CHECK_H_
#define XQJG_OPT_PLAN_CHECK_H_

#include <map>
#include <string>
#include <vector>

#include "src/algebra/validate.h"
#include "src/opt/join_graph.h"

namespace xqjg::engine {
struct PhysicalPlan;
class Database;
namespace columnar {
struct ColumnBatch;
}  // namespace columnar
}  // namespace xqjg::engine

namespace xqjg::opt {

/// Checks the declarative join graph produced by ExtractJoinGraph:
/// alias-range, column-ref, param-slot, tail-sortkey. `num_params` as in
/// algebra::ValidateOptions (kParamsUnknown skips the upper-bound check).
std::vector<algebra::ValidationError> CheckJoinGraph(
    const JoinGraph& graph, const std::string& stage,
    int num_params = algebra::kParamsUnknown);

/// Status-returning wrapper: OK or the first violation as
/// Status::Internal.
Status ValidateJoinGraph(const JoinGraph& graph, const std::string& stage,
                         int num_params = algebra::kParamsUnknown);

/// Catalog/artifact context for CheckPhysicalPlan. Plain name → rendered
/// IndexDef::ToString() maps (the representation CatalogSnapshot and
/// PreparedQuery already keep), so this layer needs no api dependency.
/// Null members skip the corresponding check (e.g. plans built directly
/// in planner tests have no prepared artifact).
struct PlanCheckContext {
  /// CatalogSnapshot::index_defs — the indexes that exist.
  const std::map<std::string, std::string>* catalog_index_defs = nullptr;
  /// PreparedQuery::used_indexes — the indexes the artifact pins for
  /// invalidation.
  const std::map<std::string, std::string>* used_indexes = nullptr;
  int num_params = algebra::kParamsUnknown;
};

/// Checks the physical join tree: phys-structure, alias-range,
/// pred-binding, ixscan-index, used-indexes, hsjoin-key-types, plus
/// column-ref/param-slot over every attached predicate.
std::vector<algebra::ValidationError> CheckPhysicalPlanErrors(
    const engine::PhysicalPlan& plan, const engine::Database& db,
    const PlanCheckContext& context, const std::string& stage);

/// Status-returning wrapper used at the Prepare stage boundary.
Status CheckPhysicalPlan(const engine::PhysicalPlan& plan,
                         const engine::Database& db,
                         const PlanCheckContext& context = {},
                         const std::string& stage = "plan");

/// Checks a columnar intermediate (batch-sel): schema/column agreement,
/// one shared physical length, selection vector strictly increasing and
/// in-range, num_rows consistent. `site` names the producing operator
/// (echoed in the diagnostic). Debug-only call sites in the columnar
/// executors guard with XQJG_DCHECK_BATCHES.
Status CheckColumnBatch(const engine::columnar::ColumnBatch& batch,
                        const char* site);

}  // namespace xqjg::opt

#endif  // XQJG_OPT_PLAN_CHECK_H_
