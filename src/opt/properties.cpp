#include "src/opt/properties.h"

#include <algorithm>
#include <cassert>

namespace xqjg::opt {

using algebra::Op;
using algebra::OpKind;
using algebra::OpPtr;

bool NodeProps::HasKeyWithin(const std::set<std::string>& cols) const {
  for (const auto& key : keys) {
    if (std::includes(cols.begin(), cols.end(), key.begin(), key.end())) {
      return true;
    }
  }
  return false;
}

bool NodeProps::HasKeyWithinModuloEq(const std::set<std::string>& cols) const {
  auto class_of = [&](const std::string& c) {
    auto it = eq_class.find(c);
    return it == eq_class.end() ? -1 : it->second;
  };
  for (const auto& key : keys) {
    bool all = true;
    for (const auto& kcol : key) {
      if (cols.count(kcol)) continue;
      const int cls = class_of(kcol);
      bool represented = false;
      if (cls >= 0) {
        for (const auto& c : cols) {
          if (class_of(c) == cls) {
            represented = true;
            break;
          }
        }
      }
      if (!represented) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

bool NodeProps::HasSingletonKey(const std::string& col) const {
  for (const auto& key : keys) {
    if (key.size() == 1 && *key.begin() == col) return true;
  }
  return false;
}

namespace {

/// Inserts `key` into `keys`, keeping only minimal keys and respecting the
/// size caps. Columns known to be constant contribute nothing to a key and
/// are stripped first (e.g. the top-level loop's iter = 1), which exposes
/// singleton keys the rowid-elimination rule needs.
void AddKey(std::vector<std::set<std::string>>* keys,
            std::set<std::string> key,
            const std::map<std::string, Value>* consts = nullptr) {
  if (consts) {
    for (auto it = key.begin(); it != key.end();) {
      if (consts->count(*it) && key.size() > 1) {
        it = key.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (key.empty() || key.size() > kMaxKeyWidth) return;
  for (const auto& existing : *keys) {
    if (std::includes(key.begin(), key.end(), existing.begin(),
                      existing.end())) {
      return;  // superset of an existing key: redundant
    }
  }
  // Drop existing keys that are supersets of the new one.
  keys->erase(std::remove_if(keys->begin(), keys->end(),
                             [&](const std::set<std::string>& k) {
                               return std::includes(k.begin(), k.end(),
                                                    key.begin(), key.end());
                             }),
              keys->end());
  if (keys->size() < kMaxKeys) keys->push_back(std::move(key));
}

// ---------------- bottom-up: const and key (Tables III, IV) --------------

/// Column equality classes, bottom-up. Fresh class ids are allocated per
/// projection so two independent references to a shared subplan never
/// alias (each reference ranges over its own tuple variable).
void InferEqClasses(Op* op, std::unordered_map<const Op*, NodeProps>* props,
                    int* next_class) {
  NodeProps& p = (*props)[op];
  auto child = [&](size_t i) -> const NodeProps& {
    return (*props)[op->children[i].get()];
  };
  switch (op->kind) {
    case OpKind::kDocTable:
    case OpKind::kLiteral:
      for (const auto& col : op->schema) p.eq_class[col] = (*next_class)++;
      break;
    case OpKind::kProject: {
      std::map<int, int> remap;
      for (const auto& [out, in] : op->proj) {
        auto it = child(0).eq_class.find(in);
        const int src = it == child(0).eq_class.end() ? -1 : it->second;
        if (src < 0) {
          p.eq_class[out] = (*next_class)++;
          continue;
        }
        auto rit = remap.find(src);
        if (rit == remap.end()) rit = remap.emplace(src, (*next_class)++).first;
        p.eq_class[out] = rit->second;
      }
      break;
    }
    case OpKind::kJoin:
    case OpKind::kCross: {
      p.eq_class = child(0).eq_class;
      p.eq_class.insert(child(1).eq_class.begin(), child(1).eq_class.end());
      if (op->kind == OpKind::kJoin && op->pred.conjuncts.size() == 1 &&
          op->pred.conjuncts[0].IsColEq()) {
        auto ita = p.eq_class.find(op->pred.conjuncts[0].lhs.col);
        auto itb = p.eq_class.find(op->pred.conjuncts[0].rhs.col);
        if (ita != p.eq_class.end() && itb != p.eq_class.end()) {
          const int from = itb->second, to = ita->second;
          for (auto& [col, cls] : p.eq_class) {
            if (cls == from) cls = to;
          }
        }
      }
      break;
    }
    case OpKind::kAttach:
    case OpKind::kRowId:
    case OpKind::kRank:
      p.eq_class = child(0).eq_class;
      p.eq_class[op->col] = (*next_class)++;
      break;
    default:
      p.eq_class = child(0).eq_class;
      break;
  }
}

void InferBottomUp(const std::vector<Op*>& bottom_up,
                   std::unordered_map<const Op*, NodeProps>* props) {
  int next_class = 1;
  for (Op* op : bottom_up) {
    InferEqClasses(op, props, &next_class);
    NodeProps& p = (*props)[op];
    auto child = [&](size_t i) -> const NodeProps& {
      return (*props)[op->children[i].get()];
    };
    switch (op->kind) {
      case OpKind::kSerialize:
      case OpKind::kDistinct: {
        p.consts = child(0).consts;
        p.keys = child(0).keys;
        if (op->kind == OpKind::kDistinct) {
          AddKey(&p.keys,
                 std::set<std::string>(op->schema.begin(),
                                       op->schema.end()),
                 &p.consts);
        }
        break;
      }
      case OpKind::kProject: {
        const NodeProps& c = child(0);
        for (const auto& [out, in] : op->proj) {
          auto it = c.consts.find(in);
          if (it != c.consts.end()) p.consts[out] = it->second;
        }
        for (const auto& key : c.keys) {
          // Rename keys fully contained in the projection's sources. A
          // source duplicated into several outputs yields one candidate
          // key per output choice (the copies hold equal values).
          std::vector<std::set<std::string>> renamed = {{}};
          bool covered = true;
          for (const auto& kcol : key) {
            std::vector<std::string> outs;
            for (const auto& [out, in] : op->proj) {
              if (in == kcol) outs.push_back(out);
            }
            if (outs.empty()) {
              covered = false;
              break;
            }
            std::vector<std::set<std::string>> expanded;
            for (const auto& base : renamed) {
              for (const auto& out : outs) {
                if (expanded.size() >= 8) break;
                std::set<std::string> next = base;
                next.insert(out);
                expanded.push_back(std::move(next));
              }
            }
            renamed = std::move(expanded);
          }
          if (covered) {
            for (auto& candidate : renamed) {
              AddKey(&p.keys, std::move(candidate), &p.consts);
            }
          }
        }
        break;
      }
      case OpKind::kSelect:
        p.consts = child(0).consts;
        p.keys = child(0).keys;
        break;
      case OpKind::kJoin:
      case OpKind::kCross: {
        const NodeProps& l = child(0);
        const NodeProps& r = child(1);
        p.consts = l.consts;
        p.consts.insert(r.consts.begin(), r.consts.end());
        bool equi_handled = false;
        if (op->kind == OpKind::kJoin && op->pred.conjuncts.size() == 1 &&
            op->pred.conjuncts[0].IsColEq()) {
          const std::string& a = op->pred.conjuncts[0].lhs.col;
          const std::string& b = op->pred.conjuncts[0].rhs.col;
          const bool a_left = op->children[0]->HasColumn(a);
          const std::string& lcol = a_left ? a : b;
          const std::string& rcol = a_left ? b : a;
          // Table IV, equi-join: if the right join column is a key of the
          // right input, every left key survives (and vice versa).
          if (r.HasSingletonKey(rcol)) {
            for (const auto& k : l.keys) AddKey(&p.keys, k, &p.consts);
            equi_handled = true;
          }
          if (l.HasSingletonKey(lcol)) {
            for (const auto& k : r.keys) AddKey(&p.keys, k, &p.consts);
            equi_handled = true;
          }
        }
        if (!equi_handled) {
          for (const auto& k1 : l.keys) {
            for (const auto& k2 : r.keys) {
              std::set<std::string> combined = k1;
              combined.insert(k2.begin(), k2.end());
              AddKey(&p.keys, std::move(combined), &p.consts);
            }
          }
        }
        // For an equi-join a = b, every output row satisfies a = b, so a
        // and b are interchangeable inside candidate keys.
        if (op->kind == OpKind::kJoin && op->pred.conjuncts.size() == 1 &&
            op->pred.conjuncts[0].IsColEq()) {
          const std::string& a = op->pred.conjuncts[0].lhs.col;
          const std::string& b = op->pred.conjuncts[0].rhs.col;
          const std::vector<std::set<std::string>> snapshot = p.keys;
          for (const auto& k : snapshot) {
            if (k.count(a)) {
              std::set<std::string> swapped = k;
              swapped.erase(a);
              swapped.insert(b);
              AddKey(&p.keys, std::move(swapped), &p.consts);
            }
            if (k.count(b)) {
              std::set<std::string> swapped = k;
              swapped.erase(b);
              swapped.insert(a);
              AddKey(&p.keys, std::move(swapped), &p.consts);
            }
          }
        }
        break;
      }
      case OpKind::kAttach:
        p.consts = child(0).consts;
        p.consts[op->col] = op->val;
        p.keys = child(0).keys;
        break;
      case OpKind::kRowId:
        p.consts = child(0).consts;
        p.keys = child(0).keys;
        AddKey(&p.keys, {op->col}, &p.consts);
        break;
      case OpKind::kRank: {
        const NodeProps& c = child(0);
        p.consts = c.consts;
        p.keys = c.keys;
        // Table IV ϱ: rank col + (key minus order cols) is a key whenever
        // the key overlapped the ordering criteria.
        for (const auto& k : c.keys) {
          bool overlaps = false;
          for (const auto& b : op->order) {
            if (k.count(b)) overlaps = true;
          }
          if (!overlaps) continue;
          std::set<std::string> nk = {op->col};
          for (const auto& kcol : k) {
            if (std::find(op->order.begin(), op->order.end(), kcol) ==
                op->order.end()) {
              nk.insert(kcol);
            }
          }
          AddKey(&p.keys, std::move(nk), &p.consts);
        }
        break;
      }
      case OpKind::kDocTable:
        AddKey(&p.keys, {"pre"});
        break;
      case OpKind::kLiteral:
        if (op->rows.size() == 1) {
          for (size_t i = 0; i < op->schema.size(); ++i) {
            p.consts[op->schema[i]] = op->rows[0][i];
          }
        }
        if (op->rows.size() <= 1) {
          for (const auto& col : op->schema) AddKey(&p.keys, {col}, &p.consts);
        }
        break;
    }
  }
}

// ---------------- top-down: icols and set (Tables II, V) ------------------

void InferTopDown(const std::vector<Op*>& topo,
                  std::unordered_map<const Op*, NodeProps>* props) {
  // Initialize: icols empty, set true everywhere; the serialize root seeds
  // its own icols and set=false.
  for (Op* op : topo) {
    NodeProps& p = (*props)[op];
    p.icols.clear();
    p.dedup_upstream = true;
  }
  if (!topo.empty() && topo.front()->kind == OpKind::kSerialize) {
    NodeProps& root = (*props)[topo.front()];
    root.icols = {topo.front()->order[0], topo.front()->col};
    root.dedup_upstream = false;
  }
  // Track whether a node received any parent contribution to `set`; the
  // conjunction starts at true and parents AND their values in.
  for (Op* op : topo) {
    const NodeProps& p = (*props)[op];
    auto contribute = [&](size_t i, const std::set<std::string>& cols,
                          bool set_value) {
      NodeProps& c = (*props)[op->children[i].get()];
      c.icols.insert(cols.begin(), cols.end());
      c.dedup_upstream = c.dedup_upstream && set_value;
    };
    switch (op->kind) {
      case OpKind::kSerialize:
        contribute(0, {op->order[0], op->col}, false);
        break;
      case OpKind::kProject: {
        std::set<std::string> need;
        for (const auto& [out, in] : op->proj) {
          if (p.icols.count(out)) need.insert(in);
        }
        contribute(0, need, p.dedup_upstream);
        break;
      }
      case OpKind::kSelect: {
        std::set<std::string> need = p.icols;
        for (const auto& c : op->pred.Cols()) need.insert(c);
        contribute(0, need, p.dedup_upstream);
        break;
      }
      case OpKind::kJoin:
      case OpKind::kCross: {
        std::set<std::string> need = p.icols;
        if (op->kind == OpKind::kJoin) {
          for (const auto& c : op->pred.Cols()) need.insert(c);
        }
        for (size_t i = 0; i < 2; ++i) {
          std::set<std::string> mine;
          for (const auto& c : need) {
            if (op->children[i]->HasColumn(c)) mine.insert(c);
          }
          contribute(i, mine, p.dedup_upstream);
        }
        break;
      }
      case OpKind::kDistinct:
        contribute(0, p.icols, true);
        break;
      case OpKind::kAttach:
      case OpKind::kRowId: {
        std::set<std::string> need = p.icols;
        need.erase(op->col);
        contribute(0, need, p.dedup_upstream);
        break;
      }
      case OpKind::kRank: {
        std::set<std::string> need = p.icols;
        need.erase(op->col);
        for (const auto& b : op->order) need.insert(b);
        contribute(0, need, p.dedup_upstream);
        break;
      }
      case OpKind::kDocTable:
      case OpKind::kLiteral:
        break;
    }
  }
}

}  // namespace

PropertyMap PropertyMap::Infer(const OpPtr& root) {
  PropertyMap map;
  std::vector<Op*> topo = algebra::TopoOrder(root);
  std::vector<Op*> bottom_up(topo.rbegin(), topo.rend());
  InferBottomUp(bottom_up, &map.props_);
  InferTopDown(topo, &map.props_);
  return map;
}

const NodeProps& PropertyMap::Get(const Op* op) const {
  auto it = props_.find(op);
  assert(it != props_.end() && "property lookup for node outside the plan");
  return it->second;
}

}  // namespace xqjg::opt
