// Plan property inference (paper §III-A, Tables II–V).
//
// For every operator of a plan DAG we infer:
//   icols  — input columns strictly required upstream (top-down, Table II)
//   const  — columns holding one constant value in every row (bottom-up,
//            Table III)
//   key    — candidate keys of the operator's output (bottom-up, Table IV)
//   set    — whether the output undergoes duplicate elimination upstream
//            (top-down, Table V)
//
// The rewrite rules of src/opt/rules.h consult these properties; they are
// recomputed from scratch after every applied rewrite (plans are a few
// hundred operators, inference is linear).
#ifndef XQJG_OPT_PROPERTIES_H_
#define XQJG_OPT_PROPERTIES_H_

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/algebra/dag.h"
#include "src/algebra/operators.h"

namespace xqjg::opt {

struct NodeProps {
  std::set<std::string> icols;
  std::map<std::string, Value> consts;
  std::vector<std::set<std::string>> keys;
  bool dedup_upstream = true;  ///< the paper's `set` property
  /// Column equality classes: columns holding pairwise equal values in
  /// every output row (duplicated projection outputs, equi-join columns).
  /// Maps column -> class id; absent columns are singleton classes.
  std::map<std::string, int> eq_class;

  bool IsConst(const std::string& col) const { return consts.count(col) > 0; }

  /// True iff some candidate key is contained in `cols`.
  bool HasKeyWithin(const std::set<std::string>& cols) const;

  /// Like HasKeyWithin, but a key column may be represented by any column
  /// of its equality class inside `cols`.
  bool HasKeyWithinModuloEq(const std::set<std::string>& cols) const;

  /// True iff {col} alone is a candidate key.
  bool HasSingletonKey(const std::string& col) const;
};

class PropertyMap {
 public:
  /// Runs all four inferences over the DAG under `root`.
  static PropertyMap Infer(const algebra::OpPtr& root);

  const NodeProps& Get(const algebra::Op* op) const;

 private:
  std::unordered_map<const algebra::Op*, NodeProps> props_;
};

/// Caps applied to the key inference so candidate-key sets stay small.
inline constexpr size_t kMaxKeys = 24;
inline constexpr size_t kMaxKeyWidth = 6;

}  // namespace xqjg::opt

#endif  // XQJG_OPT_PROPERTIES_H_
