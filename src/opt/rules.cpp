#include "src/opt/rules.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "src/algebra/validate.h"
#include "src/common/str.h"

namespace xqjg::opt {

using algebra::CmpOp;
using algebra::Comparison;
using algebra::MakeAttach;
using algebra::MakeCross;
using algebra::MakeDistinct;
using algebra::MakeJoin;
using algebra::MakeProject;
using algebra::MakeRank;
using algebra::MakeSelect;
using algebra::Op;
using algebra::OpKind;
using algebra::OpPtr;
using algebra::Predicate;
using algebra::RecomputeSchema;
using algebra::Term;

namespace {

bool SchemasDisjoint(const Op& a, const Op& b) {
  for (const auto& col : b.schema) {
    if (a.HasColumn(col)) return false;
  }
  return true;
}

/// Identity projection entries for `cols`.
std::vector<std::pair<std::string, std::string>> Identity(
    const std::vector<std::string>& cols) {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(cols.size());
  for (const auto& c : cols) out.emplace_back(c, c);
  return out;
}

bool IsSingleEqJoin(const Op* op) {
  return op->kind == OpKind::kJoin && op->pred.conjuncts.size() == 1 &&
         op->pred.conjuncts[0].IsColEq();
}

/// Canonical key of a single-equality join predicate; used as a total
/// order that makes "may push below" antisymmetric between two such joins
/// (rule (11) would otherwise let two joins swap positions forever).
std::string JoinOrderKey(const Op* op) {
  const std::string& a = op->pred.conjuncts[0].lhs.col;
  const std::string& b = op->pred.conjuncts[0].rhs.col;
  return a < b ? a + "=" + b : b + "=" + a;
}

}  // namespace

Rewriter::Rewriter(OpPtr root) : root_(std::move(root)) {
  const char* env = std::getenv("XQJG_VALIDATE_REWRITES");
  validate_rewrites_ = env && *env && std::string(env) != "0";
}

OpPtr Rewriter::Ptr(Op* node) const { return node->shared_from_this(); }

void Rewriter::Replace(Op* old_node, OpPtr new_node) {
  if (old_node == root_.get()) {
    root_ = std::move(new_node);
    return;
  }
  size_t n = algebra::ReplaceChild(root_, old_node, std::move(new_node));
  assert(n > 0 && "Replace target not found in plan");
  (void)n;
}

// ---------------------------------------------------------------------------
// Rule (1): #a(q) -> q  when a not needed upstream.
bool Rewriter::RuleRowIdDead(Op* node) {
  if (node->kind != OpKind::kRowId) return false;
  if (props_.Get(node).icols.count(node->col)) return false;
  Replace(node, node->children[0]);
  return true;
}

// Rule (2): rank_a(q) -> q  when a not needed upstream.
bool Rewriter::RuleRankDead(Op* node) {
  if (node->kind != OpKind::kRank) return false;
  if (props_.Get(node).icols.count(node->col)) return false;
  Replace(node, node->children[0]);
  return true;
}

// Rule (3): @a:c(q) -> q  when a not needed upstream.
bool Rewriter::RuleAttachDead(Op* node) {
  if (node->kind != OpKind::kAttach) return false;
  if (props_.Get(node).icols.count(node->col)) return false;
  Replace(node, node->children[0]);
  return true;
}

// Rule (4): narrow a projection to the columns needed upstream.
bool Rewriter::RuleProjectNarrow(Op* node) {
  if (node->kind != OpKind::kProject) return false;
  const auto& icols = props_.Get(node).icols;
  std::vector<std::pair<std::string, std::string>> kept;
  for (const auto& entry : node->proj) {
    if (icols.count(entry.first)) kept.push_back(entry);
  }
  if (kept.empty() || kept.size() == node->proj.size()) return false;
  node->proj = std::move(kept);
  bool ok = RecomputeSchema(node);
  assert(ok);
  (void)ok;
  return true;
}

// Rule (5): q x <singleton literal> -> attach chain.
bool Rewriter::RuleCrossLiteral(Op* node) {
  if (node->kind != OpKind::kCross) return false;
  for (int side = 0; side < 2; ++side) {
    const OpPtr& lit = node->children[side];
    if (lit->kind != OpKind::kLiteral || lit->rows.size() != 1) continue;
    OpPtr result = node->children[1 - side];
    for (size_t i = 0; i < lit->schema.size(); ++i) {
      result = MakeAttach(result, lit->schema[i], lit->rows[0][i]);
    }
    Replace(node, std::move(result));
    return true;
  }
  return false;
}

// Rule (6): remove a duplicate elimination that is dominated by another
// one upstream (set property true).
bool Rewriter::RuleDistinctDead(Op* node) {
  if (node->kind != OpKind::kDistinct) return false;
  if (!props_.Get(node).dedup_upstream) return false;
  Replace(node, node->children[0]);
  return true;
}

// Rule (7): drop constant non-needed columns below a distinct.
bool Rewriter::RuleDistinctPruneConst(Op* node) {
  if (node->kind != OpKind::kDistinct) return false;
  const Op* child = node->children[0].get();
  const auto& child_consts = props_.Get(child).consts;
  const auto& icols = props_.Get(node).icols;
  std::vector<std::pair<std::string, std::string>> kept;
  for (const auto& col : child->schema) {
    if (child_consts.count(col) && !icols.count(col)) continue;
    kept.emplace_back(col, col);
  }
  if (kept.empty() || kept.size() == child->schema.size()) return false;
  node->children[0] = MakeProject(node->children[0], std::move(kept));
  RecomputeSchema(node);
  return true;
}

// Rule (8): introduce the tail duplicate elimination above a join whose
// output is keyed within icols and not yet deduplicated upstream.
bool Rewriter::RuleIntroduceTailDistinct(Op* node) {
  if (node->kind != OpKind::kJoin) return false;
  const NodeProps& p = props_.Get(node);
  if (p.dedup_upstream) return false;
  if (p.icols.empty()) return false;
  if (!p.HasKeyWithinModuloEq(p.icols)) return false;
  // Build delta(pi_icols(node)) and splice it between node and its parents.
  std::vector<std::string> cols(p.icols.begin(), p.icols.end());
  OpPtr narrowed = MakeProject(Ptr(node), Identity(cols));
  Replace(node, MakeDistinct(std::move(narrowed)));
  return true;
}

// Rule (9b): pi_A(S) join_{x=y} pi_B(S) over the same keyed S collapses to
// a single merged projection of S.
bool Rewriter::RuleMergeSelfJoin(Op* node) {
  if (node->kind != OpKind::kJoin) return false;
  if (node->pred.conjuncts.size() != 1 || !node->pred.conjuncts[0].IsColEq()) {
    return false;
  }
  Op* left = node->children[0].get();
  Op* right = node->children[1].get();
  if (left->kind != OpKind::kProject || right->kind != OpKind::kProject) {
    return false;
  }
  if (left->children[0] != right->children[0]) return false;
  const Op* base = left->children[0].get();
  const std::string& a = node->pred.conjuncts[0].lhs.col;
  const std::string& b = node->pred.conjuncts[0].rhs.col;
  const std::string& lcol = left->HasColumn(a) ? a : b;
  const std::string& rcol = left->HasColumn(a) ? b : a;
  auto source_of = [](const Op* proj, const std::string& out)
      -> const std::string* {
    const std::string* src = nullptr;
    for (const auto& [o, in] : proj->proj) {
      if (o == out) {
        if (src) return nullptr;  // ambiguous (cannot happen: outs unique)
        src = &in;
      }
    }
    return src;
  };
  const std::string* lsrc = source_of(left, lcol);
  const std::string* rsrc = source_of(right, rcol);
  if (!lsrc || !rsrc || *lsrc != *rsrc) return false;
  if (!props_.Get(base).HasSingletonKey(*lsrc)) return false;
  // Join on a key column of the shared input: every row pairs with itself.
  std::vector<std::pair<std::string, std::string>> merged = left->proj;
  merged.insert(merged.end(), right->proj.begin(), right->proj.end());
  Replace(node, MakeProject(left->children[0], std::move(merged)));
  return true;
}

// Rule (10): an equi-join whose both columns are the same constant is a
// Cartesian product.
bool Rewriter::RuleConstJoinToCross(Op* node) {
  if (node->kind != OpKind::kJoin) return false;
  if (node->pred.conjuncts.size() != 1 || !node->pred.conjuncts[0].IsColEq()) {
    return false;
  }
  const NodeProps& p = props_.Get(node);
  const std::string& a = node->pred.conjuncts[0].lhs.col;
  const std::string& b = node->pred.conjuncts[0].rhs.col;
  auto ita = p.consts.find(a);
  auto itb = p.consts.find(b);
  if (ita == p.consts.end() || itb == p.consts.end()) return false;
  if (!(ita->second == itb->second)) return false;
  Replace(node, MakeCross(node->children[0], node->children[1]));
  return true;
}

// Rule (11) with the inline rule-(9a) degenerate check: push a
// single-column equi-join below one of its child operators.
bool Rewriter::RulePushJoinDown(Op* node) {
  if (node->kind != OpKind::kJoin) return false;
  if (node->pred.conjuncts.size() != 1 || !node->pred.conjuncts[0].IsColEq()) {
    return false;
  }
  const std::string& a = node->pred.conjuncts[0].lhs.col;
  const std::string& b = node->pred.conjuncts[0].rhs.col;

  for (int side = 0; side < 2; ++side) {
    Op* box = node->children[side].get();
    const OpPtr& other = node->children[1 - side];
    switch (box->kind) {
      case OpKind::kProject:
      case OpKind::kSelect:
      case OpKind::kAttach:
      case OpKind::kRank:
      case OpKind::kJoin:
      case OpKind::kCross:
        break;
      default:
        continue;  // delta, rowid, leaves, serialize: not pushable
    }
    // q2 must not reach the box (would create a cycle).
    if (algebra::Reaches(other.get(), box)) continue;
    // Anti-ping-pong: between two single-equality joins, only the one with
    // the smaller canonical predicate key may descend below the other.
    if (IsSingleEqJoin(box) && !(JoinOrderKey(node) < JoinOrderKey(box))) {
      continue;
    }
    const std::string& jcol = box->HasColumn(a) ? a : b;
    const std::string& ocol = box->HasColumn(a) ? b : a;

    // Map the join column through the box.
    std::string mapped = jcol;
    if (box->kind == OpKind::kProject) {
      const std::string* src = nullptr;
      bool ambiguous = false;
      for (const auto& [out, in] : box->proj) {
        if (out == jcol) {
          if (src) ambiguous = true;
          src = &in;
        }
      }
      if (!src || ambiguous) continue;
      mapped = *src;
    } else if (box->kind == OpKind::kAttach || box->kind == OpKind::kRank) {
      if (box->col == jcol) continue;  // join col is created by the box
    }

    // Select the box input that provides the mapped column.
    size_t slot = 0;
    if (box->children.size() == 2) {
      if (box->children[0]->HasColumn(mapped)) {
        slot = 0;
      } else if (box->children[1]->HasColumn(mapped)) {
        slot = 1;
      } else {
        continue;
      }
    } else if (!box->children[0]->HasColumn(mapped)) {
      continue;
    }
    const OpPtr& inner = box->children[slot];

    // Rule (9a): the push would create inner join_{c=c} inner over the
    // same node on a key column -> the join is the identity; drop it.
    OpPtr pushed;
    if (inner.get() == other.get() && mapped == ocol &&
        props_.Get(inner.get()).HasSingletonKey(mapped)) {
      pushed = inner;
    } else {
      if (!SchemasDisjoint(*inner, *other)) continue;
      pushed = MakeJoin(inner, other,
                        Predicate::Single(Term::Col(mapped), CmpOp::kEq,
                                          Term::Col(ocol)));
    }

    // Rebuild the box above the pushed join. The rebuilt box must also
    // expose `other`'s columns (they flowed out of the original join).
    OpPtr rebuilt;
    switch (box->kind) {
      case OpKind::kProject: {
        const bool degenerate = pushed.get() == inner.get();
        auto proj = box->proj;
        bool clash = false;
        for (const auto& col : other->schema) {
          const std::string* existing_src = nullptr;
          for (const auto& [out, in] : box->proj) {
            if (out == col) existing_src = &in;
          }
          if (existing_src) {
            // With the join collapsed (9a) rows pair with themselves, so
            // an identity forwarding of `col` is already present iff the
            // box maps col from col; anything else is a genuine clash.
            if (degenerate && *existing_src == col) continue;
            clash = true;
            break;
          }
          proj.emplace_back(col, col);
        }
        if (clash) continue;
        rebuilt = MakeProject(pushed, std::move(proj));
        break;
      }
      case OpKind::kSelect:
        rebuilt = MakeSelect(pushed, box->pred);
        break;
      case OpKind::kAttach:
        if (other->HasColumn(box->col)) continue;
        rebuilt = MakeAttach(pushed, box->col, box->val);
        break;
      case OpKind::kRank:
        if (other->HasColumn(box->col)) continue;
        rebuilt = MakeRank(pushed, box->col, box->order);
        break;
      case OpKind::kJoin:
      case OpKind::kCross: {
        const OpPtr& sibling = box->children[1 - slot];
        if (!SchemasDisjoint(*pushed, *sibling) &&
            pushed.get() != inner.get()) {
          continue;
        }
        if (pushed.get() != inner.get() &&
            !SchemasDisjoint(*sibling, *other)) {
          continue;
        }
        if (pushed.get() == inner.get()) {
          // Join dropped: box is unchanged semantically; but `other`'s
          // columns must still be provided — they are, because other ==
          // inner is below box already. Just replace node with box.
          Replace(node, Ptr(box));
          return true;
        }
        if (box->kind == OpKind::kJoin) {
          rebuilt = slot == 0 ? MakeJoin(pushed, sibling, box->pred)
                              : MakeJoin(sibling, pushed, box->pred);
        } else {
          rebuilt = slot == 0 ? MakeCross(pushed, sibling)
                              : MakeCross(sibling, pushed);
        }
        break;
      }
      default:
        continue;
    }
    Replace(node, std::move(rebuilt));
    return true;
  }
  return false;
}

// Rule (12): a rank over a single criterion is just a column copy (rank
// values are only ever used as ordering criteria).
bool Rewriter::RuleRankSingleCol(Op* node) {
  if (node->kind != OpKind::kRank) return false;
  if (node->order.size() != 1) return false;
  const OpPtr& child = node->children[0];
  auto proj = Identity(child->schema);
  proj.emplace_back(node->col, node->order[0]);
  Replace(node, MakeProject(child, std::move(proj)));
  return true;
}

// Rule (13): constant columns cannot influence a rank order.
bool Rewriter::RuleRankDropConstOrder(Op* node) {
  if (node->kind != OpKind::kRank) return false;
  const auto& consts = props_.Get(node->children[0].get()).consts;
  std::vector<std::string> kept;
  for (const auto& b : node->order) {
    if (!consts.count(b)) kept.push_back(b);
  }
  if (kept.size() == node->order.size()) return false;
  if (kept.empty()) {
    // Rank over nothing: every row ranks 1.
    Replace(node, MakeAttach(node->children[0], node->col, Value::Int(1)));
    return true;
  }
  node->order = std::move(kept);
  return true;
}

// Rule (14): pull a rank up through select / distinct / attach / rowid.
bool Rewriter::RulePullRankUnary(Op* node) {
  switch (node->kind) {
    case OpKind::kSelect:
    case OpKind::kDistinct:
    case OpKind::kAttach:
    case OpKind::kRowId:
      break;
    default:
      return false;
  }
  const OpPtr& rank = node->children[0];
  if (rank->kind != OpKind::kRank) return false;
  if (parents_.NumParents(rank.get()) != 1) return false;
  if (node->kind == OpKind::kSelect &&
      node->pred.Cols().count(rank->col)) {
    return false;
  }
  if ((node->kind == OpKind::kAttach || node->kind == OpKind::kRowId) &&
      node->col == rank->col) {
    return false;
  }
  OpPtr inner;
  switch (node->kind) {
    case OpKind::kSelect:
      inner = MakeSelect(rank->children[0], node->pred);
      break;
    case OpKind::kDistinct:
      inner = MakeDistinct(rank->children[0]);
      break;
    case OpKind::kAttach:
      inner = MakeAttach(rank->children[0], node->col, node->val);
      break;
    default:
      inner = algebra::MakeRowId(rank->children[0], node->col);
      break;
  }
  Replace(node, MakeRank(std::move(inner), rank->col, rank->order));
  return true;
}

// Rule (15): pull a rank up through a join / cross product (rank values
// stay order-correct; see DESIGN.md on rank semantics).
bool Rewriter::RulePullRankJoin(Op* node) {
  if (node->kind != OpKind::kJoin && node->kind != OpKind::kCross) {
    return false;
  }
  for (int side = 0; side < 2; ++side) {
    const OpPtr& rank = node->children[side];
    if (rank->kind != OpKind::kRank) continue;
    if (parents_.NumParents(rank.get()) != 1) continue;
    if (node->kind == OpKind::kJoin && node->pred.Cols().count(rank->col)) {
      continue;
    }
    const OpPtr& other = node->children[1 - side];
    if (other->HasColumn(rank->col)) continue;
    OpPtr joined;
    if (node->kind == OpKind::kJoin) {
      joined = side == 0 ? MakeJoin(rank->children[0], other, node->pred)
                         : MakeJoin(other, rank->children[0], node->pred);
    } else {
      joined = side == 0 ? MakeCross(rank->children[0], other)
                         : MakeCross(other, rank->children[0]);
    }
    Replace(node, MakeRank(std::move(joined), rank->col, rank->order));
    return true;
  }
  return false;
}

// Rule (16): pull a rank up through a projection; the projection moves
// below the rank and keeps the ordering criteria alive.
bool Rewriter::RulePullRankProject(Op* node) {
  if (node->kind != OpKind::kProject) return false;
  const OpPtr& rank = node->children[0];
  if (rank->kind != OpKind::kRank) return false;
  if (parents_.NumParents(rank.get()) != 1) return false;
  // The rank column must be forwarded by exactly one entry.
  std::string out_name;
  int refs = 0;
  std::vector<std::pair<std::string, std::string>> below;
  for (const auto& [out, in] : node->proj) {
    if (in == rank->col) {
      out_name = out;
      ++refs;
    } else {
      below.emplace_back(out, in);
    }
  }
  if (refs != 1) return false;
  // Ensure every ordering criterion survives below; pick its (new) name.
  std::vector<std::string> new_order;
  for (const auto& b : rank->order) {
    const std::string* name = nullptr;
    for (const auto& [out, in] : below) {
      if (in == b) {
        name = &out;
        break;
      }
    }
    if (name) {
      new_order.push_back(*name);
    } else {
      // Add an identity pass-through; bail out on a name clash.
      bool clash = b == out_name;
      for (const auto& [out, in] : below) {
        if (out == b) clash = true;
      }
      if (clash) return false;
      below.emplace_back(b, b);
      new_order.push_back(b);
    }
  }
  OpPtr new_proj = MakeProject(rank->children[0], std::move(below));
  Replace(node, MakeRank(std::move(new_proj), out_name, std::move(new_order)));
  return true;
}

// Rule (17): splice the criteria of a nested rank into the outer rank.
bool Rewriter::RuleRankSplice(Op* node) {
  if (node->kind != OpKind::kRank) return false;
  const OpPtr& inner = node->children[0];
  if (inner->kind != OpKind::kRank) return false;
  auto it = std::find(node->order.begin(), node->order.end(), inner->col);
  if (it == node->order.end()) return false;
  std::vector<std::string> spliced(node->order.begin(), it);
  spliced.insert(spliced.end(), inner->order.begin(), inner->order.end());
  spliced.insert(spliced.end(), it + 1, node->order.end());
  // Drop duplicate criteria introduced by the splice (later occurrences
  // cannot influence the order).
  std::vector<std::string> dedup;
  for (const auto& c : spliced) {
    if (std::find(dedup.begin(), dedup.end(), c) == dedup.end()) {
      dedup.push_back(c);
    }
  }
  node->order = std::move(dedup);
  return true;
}

// Rowid elimination: # attaches *arbitrary* unique row ids (Table I), so
// over an input with a singleton candidate key the ids may simply copy
// that key column. This dissolves the FOR rule's #inner plumbing whenever
// the loop input is keyed (e.g. top-level loops, where iter is constant
// and fs:ddo guarantees item-uniqueness).
bool Rewriter::RuleRowIdFromKey(Op* node) {
  if (node->kind != OpKind::kRowId) return false;
  const NodeProps& c = props_.Get(node->children[0].get());
  for (const auto& k : c.keys) {
    if (k.size() != 1) continue;
    auto proj = Identity(node->children[0]->schema);
    proj.emplace_back(node->col, *k.begin());
    Replace(node, MakeProject(node->children[0], std::move(proj)));
    return true;
  }
  return false;
}

// Housekeeping: compose two stacked projections.
bool Rewriter::RuleProjectProject(Op* node) {
  if (node->kind != OpKind::kProject) return false;
  const OpPtr& inner = node->children[0];
  if (inner->kind != OpKind::kProject) return false;
  std::vector<std::pair<std::string, std::string>> composed;
  for (const auto& [out, mid] : node->proj) {
    const std::string* src = nullptr;
    for (const auto& [iout, iin] : inner->proj) {
      if (iout == mid) {
        src = &iin;
        break;
      }
    }
    if (!src) return false;  // cannot happen on well-formed plans
    composed.emplace_back(out, *src);
  }
  Replace(node, MakeProject(inner->children[0], std::move(composed)));
  return true;
}

// Housekeeping: remove an identity projection.
bool Rewriter::RuleProjectIdentity(Op* node) {
  if (node->kind != OpKind::kProject) return false;
  const OpPtr& child = node->children[0];
  if (node->proj.size() != child->schema.size()) return false;
  for (const auto& [out, in] : node->proj) {
    if (out != in) return false;
  }
  Replace(node, child);
  return true;
}

// ---------------------------------------------------------------------------

bool Rewriter::StepOnce(Phase phase) {
  props_ = PropertyMap::Infer(root_);
  parents_ = algebra::BuildParentMap(root_);
  using RuleFn = bool (Rewriter::*)(Op*);
  struct Entry {
    const char* name;
    RuleFn fn;
  };
  static const Entry kRankRules[] = {
      {"hk-pipi", &Rewriter::RuleProjectProject},
      {"hk-piid", &Rewriter::RuleProjectIdentity},
      {"r1-rowid-dead", &Rewriter::RuleRowIdDead},
      {"r2-rank-dead", &Rewriter::RuleRankDead},
      {"r3-attach-dead", &Rewriter::RuleAttachDead},
      {"r4-pi-narrow", &Rewriter::RuleProjectNarrow},
      {"r5-cross-literal", &Rewriter::RuleCrossLiteral},
      {"r13-rank-const", &Rewriter::RuleRankDropConstOrder},
      {"r12-rank-single", &Rewriter::RuleRankSingleCol},
      {"r17-rank-splice", &Rewriter::RuleRankSplice},
      {"r16-rank-pi", &Rewriter::RulePullRankProject},
      {"r14-rank-unary", &Rewriter::RulePullRankUnary},
      {"r15-rank-join", &Rewriter::RulePullRankJoin},
  };
  static const Entry kJoinRules[] = {
      {"hk-pipi", &Rewriter::RuleProjectProject},
      {"hk-piid", &Rewriter::RuleProjectIdentity},
      {"r1-rowid-dead", &Rewriter::RuleRowIdDead},
      {"r2-rank-dead", &Rewriter::RuleRankDead},
      {"r3-attach-dead", &Rewriter::RuleAttachDead},
      {"r4-pi-narrow", &Rewriter::RuleProjectNarrow},
      {"r5-cross-literal", &Rewriter::RuleCrossLiteral},
      {"r13-rank-const", &Rewriter::RuleRankDropConstOrder},
      {"r12-rank-single", &Rewriter::RuleRankSingleCol},
      {"r6-distinct-dead", &Rewriter::RuleDistinctDead},
      {"r7-distinct-prune", &Rewriter::RuleDistinctPruneConst},
      {"r10-const-join-cross", &Rewriter::RuleConstJoinToCross},
      {"rx-rowid-key", &Rewriter::RuleRowIdFromKey},
      {"r9b-merge-selfjoin", &Rewriter::RuleMergeSelfJoin},
      {"r8-tail-distinct", &Rewriter::RuleIntroduceTailDistinct},
      {"r11-push-join", &Rewriter::RulePushJoinDown},
  };
  const Entry* rules = phase == Phase::kRank ? kRankRules : kJoinRules;
  const size_t n_rules = phase == Phase::kRank
                             ? sizeof(kRankRules) / sizeof(Entry)
                             : sizeof(kJoinRules) / sizeof(Entry);
  static const bool trace = std::getenv("XQJG_REWRITE_TRACE") != nullptr;
  for (Op* op : algebra::TopoOrder(root_)) {
    for (size_t i = 0; i < n_rules; ++i) {
      const int id = op->id;
      const std::string desc = trace ? op->Describe() : std::string();
      if ((this->*rules[i].fn)(op)) {
        ++counts_[rules[i].name];
        if (trace) {
          std::fprintf(stderr, "%s @ [%d] %s\n", rules[i].name, id,
                       desc.c_str());
        }
        // In-place narrowing (e.g. rule 4) changes schemas of pass-through
        // ancestors (δ, σ, joins); refresh bottom-up so the next property
        // inference sees consistent schemas.
        for (Op* n : algebra::BottomUpOrder(root_)) {
          bool ok = algebra::RecomputeSchema(n);
          assert(ok && "rewrite left the plan schema-inconsistent");
          (void)ok;
        }
        if (validate_rewrites_) {
          // Mid-rewrite plans are fragments of a larger pipeline: the
          // serialize root is there, but parameter declarations are out
          // of scope, so the slot upper bound is not checked here.
          algebra::ValidateOptions vopts;
          vopts.num_params = algebra::kParamsUnknown;
          validation_status_ = algebra::Validate(
              root_, std::string("rewrite:") + rules[i].name, vopts);
          // Stop the phase on the first broken plan; RunPhase surfaces
          // the diagnostic (which names the rule that broke it).
          if (!validation_status_.ok()) return false;
        }
        return true;
      }
    }
  }
  return false;
}

Status Rewriter::RunPhase(Phase phase) {
  while (StepOnce(phase)) {
    if (--budget_ <= 0) {
      // Every rule is individually semantics-preserving, so an exhausted
      // budget yields a valid (just less optimized) plan. Record and stop.
      ++counts_["budget-exhausted"];
      return Status::OK();
    }
  }
  return validation_status_;
}

Status Rewriter::RunRankPhase() { return RunPhase(Phase::kRank); }
Status Rewriter::RunJoinPhase() { return RunPhase(Phase::kJoin); }

Status Rewriter::Run() {
  XQJG_RETURN_NOT_OK(RunRankPhase());
  XQJG_RETURN_NOT_OK(RunJoinPhase());
  // The join phase can re-enable rank simplifications (e.g. a rank freed
  // by join removal); do a final pass of each until a joint fixpoint.
  for (int round = 0; round < 8; ++round) {
    int before = budget_;
    XQJG_RETURN_NOT_OK(RunRankPhase());
    XQJG_RETURN_NOT_OK(RunJoinPhase());
    if (budget_ == before) break;
  }
  return Status::OK();
}

Result<OpPtr> IsolateJoinGraph(OpPtr root) {
  Rewriter rewriter(std::move(root));
  XQJG_RETURN_NOT_OK(rewriter.Run());
  return rewriter.root();
}

}  // namespace xqjg::opt
