// The join graph isolation rewrite rules (paper Fig. 5).
//
// Rules are numbered after the paper. Two adaptations are needed because
// our algebra is *named* (every operator output column has a name and join
// schemas must be disjoint) where the paper's presentation is loose about
// column collisions:
//
//   * Rule (11) (join push-down) maps the join predicate column through
//     projection renames as the join descends, and refuses pushes that
//     would create overlapping schemas.
//   * Rule (9) (key self-join removal) appears in two guises:
//       (9a) inside the rule-(11) step: if the push would create
//            q ⋈_{c=c} q over the very same node with {c} a key, the join
//            is dropped instead of created;
//       (9b) merge rule: π_A(S) ⋈_{x=y} π_B(S) over the same S where x and
//            y both rename the same key column c of S collapses to
//            π_{A∪B}(S) — each row pairs with itself, so the join is a
//            rename union. This is the Fig. 6(d) endgame in named form.
//
// Beyond Fig. 5 we add three pure housekeeping rules that the paper's
// unnamed algebra gets for free: π∘π composition, identity-π removal, and
// empty-rank-to-attach.
#ifndef XQJG_OPT_RULES_H_
#define XQJG_OPT_RULES_H_

#include <map>
#include <string>

#include "src/algebra/dag.h"
#include "src/algebra/operators.h"
#include "src/common/status.h"
#include "src/opt/properties.h"

namespace xqjg::opt {

/// Applies rewrite rules to a plan until fixpoint, in the paper's two
/// goal-directed phases (ϱ first, then δ + ⋈).
class Rewriter {
 public:
  /// Reads XQJG_VALIDATE_REWRITES from the environment at construction
  /// (not via a function-local static, so tests may toggle it): when set,
  /// the structural plan validator (src/algebra/validate.h) runs after
  /// EVERY individual rewrite application, and the first broken plan
  /// fails the phase with a diagnostic naming the exact rule
  /// ("rewrite:r11-push-join").
  explicit Rewriter(algebra::OpPtr root);

  /// Runs both phases to fixpoint. Errors only on internal invariant
  /// violations (e.g. rewrite budget exhausted, which would indicate a
  /// non-terminating rule interaction).
  Status Run();

  /// Phase ϱ: establish (at most) one rank operator in the plan tail.
  Status RunRankPhase();
  /// Phase δ+⋈: single tail duplicate elimination, join push-down/removal.
  Status RunJoinPhase();

  const algebra::OpPtr& root() const { return root_; }

  /// Rule name -> number of applications (diagnostics / the fig04_07
  /// bench).
  const std::map<std::string, int>& rule_counts() const { return counts_; }

 private:
  enum class Phase { kRank, kJoin };
  Status RunPhase(Phase phase);
  /// Attempts one rewrite anywhere in the plan; returns true if applied.
  bool StepOnce(Phase phase);

  // Individual rules; each returns true if it rewrote the plan. `node` is
  // the rule's focus operator.
  bool RuleRowIdDead(algebra::Op* node);                      // (1)
  bool RuleRankDead(algebra::Op* node);                       // (2)
  bool RuleAttachDead(algebra::Op* node);                     // (3)
  bool RuleProjectNarrow(algebra::Op* node);                  // (4)
  bool RuleCrossLiteral(algebra::Op* node);                   // (5)
  bool RuleDistinctDead(algebra::Op* node);                   // (6)
  bool RuleDistinctPruneConst(algebra::Op* node);             // (7)
  bool RuleIntroduceTailDistinct(algebra::Op* node);          // (8)
  bool RuleMergeSelfJoin(algebra::Op* node);                  // (9b)
  bool RuleConstJoinToCross(algebra::Op* node);               // (10)
  bool RulePushJoinDown(algebra::Op* node);                   // (11)+(9a)
  bool RuleRankSingleCol(algebra::Op* node);                  // (12)
  bool RuleRankDropConstOrder(algebra::Op* node);             // (13)
  bool RulePullRankUnary(algebra::Op* node);                  // (14)
  bool RulePullRankJoin(algebra::Op* node);                   // (15)
  bool RulePullRankProject(algebra::Op* node);                // (16)
  bool RuleRankSplice(algebra::Op* node);                     // (17)
  bool RuleProjectProject(algebra::Op* node);                 // (hk-ππ)
  bool RuleProjectIdentity(algebra::Op* node);                // (hk-πid)
  bool RuleRowIdFromKey(algebra::Op* node);                   // (#key)

  void Replace(algebra::Op* old_node, algebra::OpPtr new_node);
  algebra::OpPtr Ptr(algebra::Op* node) const;

  algebra::OpPtr root_;
  PropertyMap props_;
  algebra::ParentMap parents_;
  std::map<std::string, int> counts_;
  int budget_ = 50000;
  /// XQJG_VALIDATE_REWRITES: validate after every rewrite application.
  bool validate_rewrites_ = false;
  /// First per-rewrite validation failure (StepOnce stops the phase on
  /// it; RunPhase returns it).
  Status validation_status_;
};

/// Convenience: full isolation of a compiled plan (paper §III). Returns
/// the rewritten root (same serialize node object identity not
/// guaranteed).
Result<algebra::OpPtr> IsolateJoinGraph(algebra::OpPtr root);

}  // namespace xqjg::opt

#endif  // XQJG_OPT_RULES_H_
