#include "src/server/admission.h"

#include <chrono>

namespace xqjg::server {

const char* QueryClassToString(QueryClass c) {
  return c == QueryClass::kCheap ? "cheap" : "heavy";
}

QueryClass Classify(bool has_plan, double est_cost,
                    const AdmissionConfig& config) {
  if (!has_plan) return QueryClass::kHeavy;
  return est_cost >= config.heavy_cost_threshold ? QueryClass::kHeavy
                                                 : QueryClass::kCheap;
}

Ticket& Ticket::operator=(Ticket&& other) noexcept {
  if (this != &other) {
    Release();
    controller_ = other.controller_;
    cls_ = other.cls_;
    other.controller_ = nullptr;
  }
  return *this;
}

void Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot(cls_);
    controller_ = nullptr;
  }
}

Result<Ticket> AdmissionController::Admit(QueryClass cls) {
  const int idx = static_cast<int>(cls);
  std::unique_lock<std::mutex> lock(mu_);
  if (stats_.running[idx] < SlotsFor(cls)) {
    ++stats_.running[idx];
    ++stats_.admitted[idx];
    return Ticket(this, cls);
  }
  if (stats_.waiting[idx] >= QueueFor(cls)) {
    ++stats_.shed[idx];
    return Status::Busy("admission queue full for " +
                        std::string(QueryClassToString(cls)) + " class");
  }
  ++stats_.waiting[idx];
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(config_.max_queue_wait_seconds));
  const bool got_slot = cv_.wait_until(lock, deadline, [&] {
    return stats_.running[idx] < SlotsFor(cls);
  });
  --stats_.waiting[idx];
  if (!got_slot) {
    ++stats_.shed[idx];
    return Status::Busy("admission wait exceeded " +
                        std::to_string(config_.max_queue_wait_seconds) +
                        "s for " + QueryClassToString(cls) + " class");
  }
  ++stats_.running[idx];
  ++stats_.admitted[idx];
  return Ticket(this, cls);
}

void AdmissionController::ReleaseSlot(QueryClass cls) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --stats_.running[static_cast<int>(cls)];
  }
  // Both classes share the condvar; waiters re-check their own class's
  // predicate, so a spurious wake of the other class is harmless.
  cv_.notify_all();
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace xqjg::server
