// Admission control: bounded concurrency per query class, load shedding.
//
// Every EXECUTE acquires a ticket before the plan runs. Queries are
// classified by their planner cost estimate into cheap point-ish lookups
// and heavy scans (the Q2-class reverse-axis joins of the paper's
// workload): each class has its own concurrency slots and its own
// bounded wait queue, so a burst of heavy queries cannot starve cheap
// ones and vice versa. When a class's queue is full — or a waiter
// exceeds the configured patience — the request is shed with
// Status::Busy, which the server translates into a protocol-level BUSY
// frame: under overload the server stays responsive and the tail latency
// of *admitted* work stays bounded, rather than every request timing out
// together (bench/serving_load.cpp measures exactly this).
#ifndef XQJG_SERVER_ADMISSION_H_
#define XQJG_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "src/common/status.h"

namespace xqjg::server {

/// Admission classes. Kept to two on purpose: the workload split the
/// paper's evaluation exposes is "indexed lookups" vs "join-heavy scans",
/// and two classes are enough to keep one from starving the other.
enum class QueryClass : uint8_t {
  kCheap = 0,  ///< planned, low estimated cost
  kHeavy = 1,  ///< expensive plan, or no plan (native / fallback lanes)
};

inline constexpr int kNumQueryClasses = 2;

const char* QueryClassToString(QueryClass c);

struct AdmissionConfig {
  /// Concurrent executions allowed per class. The dev container is
  /// single-core, so the defaults are modest; a real deployment scales
  /// these with the machine.
  int cheap_slots = 4;
  int heavy_slots = 1;
  /// Requests allowed to wait per class once the slots are full; one
  /// more is shed immediately.
  int cheap_queue = 16;
  int heavy_queue = 4;
  /// Longest a request may wait for a slot before being shed anyway —
  /// bounds the latency of the admitted tail under sustained overload.
  double max_queue_wait_seconds = 2.0;
  /// Plans at or above this estimated cost are heavy. Calibrated so the
  /// paper queries split as intended: Q1/Q4/Q5-style lookups admit as
  /// cheap, Q2-class joins as heavy (see AdmissionTest.ClassifyPaperish).
  double heavy_cost_threshold = 5e5;
};

/// Point-in-time counters (per class, indexed by QueryClass).
struct AdmissionStats {
  int64_t admitted[kNumQueryClasses] = {0, 0};
  int64_t shed[kNumQueryClasses] = {0, 0};
  int running[kNumQueryClasses] = {0, 0};
  int waiting[kNumQueryClasses] = {0, 0};
};

class AdmissionController;

/// RAII admission grant: the slot frees (and a waiter wakes) when the
/// ticket dies. Move-only; an empty (moved-from) ticket releases nothing.
class Ticket {
 public:
  Ticket() = default;
  Ticket(Ticket&& other) noexcept
      : controller_(other.controller_), cls_(other.cls_) {
    other.controller_ = nullptr;
  }
  Ticket& operator=(Ticket&& other) noexcept;
  Ticket(const Ticket&) = delete;
  Ticket& operator=(const Ticket&) = delete;
  ~Ticket() { Release(); }

  bool valid() const { return controller_ != nullptr; }
  void Release();

 private:
  friend class AdmissionController;
  Ticket(AdmissionController* controller, QueryClass cls)
      : controller_(controller), cls_(cls) {}

  AdmissionController* controller_ = nullptr;
  QueryClass cls_ = QueryClass::kCheap;
};

/// Classifies a prepared query for admission. `has_plan` false means the
/// cost model never saw it (native and fallback lanes) — conservatively
/// heavy.
QueryClass Classify(bool has_plan, double est_cost,
                    const AdmissionConfig& config);

/// Thread-safe. One instance per server, shared by every connection.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config)
      : config_(config) {}

  /// Blocks until a slot for `cls` frees (bounded by the configured
  /// queue depth and patience) and returns the grant; Status::Busy when
  /// the request is shed instead. Never blocks past
  /// max_queue_wait_seconds.
  Result<Ticket> Admit(QueryClass cls);

  AdmissionStats stats() const;
  const AdmissionConfig& config() const { return config_; }

 private:
  friend class Ticket;
  void ReleaseSlot(QueryClass cls);

  int SlotsFor(QueryClass cls) const {
    return cls == QueryClass::kCheap ? config_.cheap_slots
                                     : config_.heavy_slots;
  }
  int QueueFor(QueryClass cls) const {
    return cls == QueryClass::kCheap ? config_.cheap_queue
                                     : config_.heavy_queue;
  }

  const AdmissionConfig config_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  AdmissionStats stats_;
};

}  // namespace xqjg::server

#endif  // XQJG_SERVER_ADMISSION_H_
