#include "src/server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace xqjg::server {

namespace {

void PutValue(WireWriter& w, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      w.PutU8(0);
      return;
    case ValueType::kInt:
      w.PutU8(1);
      w.PutU64(static_cast<uint64_t>(v.AsInt()));
      return;
    case ValueType::kDouble:
      w.PutU8(2);
      w.PutF64(v.AsDouble());
      return;
    case ValueType::kString:
      w.PutU8(3);
      w.PutString(v.AsString());
      return;
  }
}

}  // namespace

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                int port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("host must be a numeric IPv4 address: " +
                                   host);
  }
  int rc;
  do {
    rc = connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    const Status s = Status::Internal("connect " + host + ":" +
                                      std::to_string(port) + ": " +
                                      std::strerror(errno));
    close(fd);
    return s;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto client = std::make_unique<Client>(fd);
  auto hello = client->Hello();
  if (!hello.ok()) return hello.status();
  return client;
}

Result<Frame> Client::RoundTrip(Opcode request,
                                const std::vector<uint8_t>& payload,
                                Opcode expected) {
  XQJG_RETURN_NOT_OK(WriteFrame(fd_, request, payload));
  XQJG_ASSIGN_OR_RETURN(Frame response, ReadFrame(fd_));
  if (response.opcode == Opcode::kBusy) {
    WireReader r(response.payload);
    auto msg = r.GetString();
    return Status::Busy(msg.ok() ? msg.value() : "server busy");
  }
  if (response.opcode == Opcode::kError) {
    WireReader r(response.payload);
    auto code = r.GetU8();
    auto msg = code.ok() ? r.GetString() : Result<std::string>(code.status());
    if (!msg.ok()) return Status::Internal("malformed error frame");
    return StatusFromWire(static_cast<ErrorCode>(code.value()), msg.value());
  }
  if (response.opcode != expected) {
    return Status::Internal(
        "unexpected response opcode " +
        std::to_string(static_cast<int>(response.opcode)));
  }
  return response;
}

Result<HelloResult> Client::Hello() {
  WireWriter w;
  w.PutU32(kProtocolVersion);
  XQJG_ASSIGN_OR_RETURN(Frame f,
                        RoundTrip(Opcode::kHello, w.buffer(),
                                  Opcode::kHelloOk));
  WireReader r(f.payload);
  HelloResult result;
  XQJG_ASSIGN_OR_RETURN(result.session_id, r.GetU64());
  XQJG_ASSIGN_OR_RETURN(result.banner, r.GetString());
  session_id_ = result.session_id;
  return result;
}

Result<PrepareResult> Client::Prepare(const std::string& query, uint8_t mode,
                                      const std::string& context_document) {
  WireWriter w;
  w.PutU8(mode);
  w.PutString(context_document);
  w.PutString(query);
  XQJG_ASSIGN_OR_RETURN(
      Frame f, RoundTrip(Opcode::kPrepare, w.buffer(), Opcode::kPrepareOk));
  WireReader r(f.payload);
  PrepareResult result;
  XQJG_ASSIGN_OR_RETURN(result.statement_id, r.GetU32());
  XQJG_ASSIGN_OR_RETURN(result.query_class, r.GetU8());
  XQJG_ASSIGN_OR_RETURN(uint8_t has_plan, r.GetU8());
  result.has_plan = has_plan != 0;
  XQJG_ASSIGN_OR_RETURN(uint8_t fallback, r.GetU8());
  result.used_fallback = fallback != 0;
  XQJG_ASSIGN_OR_RETURN(result.est_cost, r.GetF64());
  XQJG_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  for (uint32_t i = 0; i < n; ++i) {
    XQJG_ASSIGN_OR_RETURN(std::string name, r.GetString());
    XQJG_ASSIGN_OR_RETURN(uint8_t numeric, r.GetU8());
    result.parameters.emplace_back(std::move(name), numeric != 0);
  }
  return result;
}

Result<ExecuteResult> Client::Execute(
    uint32_t statement_id, const std::map<std::string, Value>& parameters,
    bool use_columnar) {
  WireWriter w;
  w.PutU32(statement_id);
  w.PutU8(use_columnar ? 1 : 0);
  w.PutU32(static_cast<uint32_t>(parameters.size()));
  for (const auto& [name, value] : parameters) {
    w.PutString(name);
    PutValue(w, value);
  }
  XQJG_ASSIGN_OR_RETURN(
      Frame f, RoundTrip(Opcode::kExecute, w.buffer(), Opcode::kExecuteOk));
  WireReader r(f.payload);
  ExecuteResult result;
  XQJG_ASSIGN_OR_RETURN(result.cursor_id, r.GetU32());
  XQJG_ASSIGN_OR_RETURN(uint64_t rows_total, r.GetU64());
  result.rows_total = static_cast<int64_t>(rows_total);
  XQJG_ASSIGN_OR_RETURN(result.execute_seconds, r.GetF64());
  return result;
}

Result<FetchResult> Client::Fetch(uint32_t cursor_id, uint32_t max_items) {
  WireWriter w;
  w.PutU32(cursor_id);
  w.PutU32(max_items);
  XQJG_ASSIGN_OR_RETURN(Frame f,
                        RoundTrip(Opcode::kFetch, w.buffer(), Opcode::kRows));
  WireReader r(f.payload);
  FetchResult result;
  XQJG_ASSIGN_OR_RETURN(uint8_t exhausted, r.GetU8());
  result.exhausted = exhausted != 0;
  XQJG_ASSIGN_OR_RETURN(uint32_t n_items, r.GetU32());
  result.items.reserve(n_items);
  // Bounded by kMaxFrameBytes; the server capped the batch at max_items.
  // xqjg-lint: allow(no-budget-guard): frame-size cap, not a budget clock
  for (uint32_t i = 0; i < n_items; ++i) {
    XQJG_ASSIGN_OR_RETURN(std::string item, r.GetString());
    result.items.push_back(std::move(item));
  }
  return result;
}

Result<std::vector<std::string>> Client::FetchAll(uint32_t cursor_id,
                                                  uint32_t batch_size) {
  std::vector<std::string> all;
  for (;;) {
    XQJG_ASSIGN_OR_RETURN(FetchResult batch, Fetch(cursor_id, batch_size));
    for (auto& item : batch.items) all.push_back(std::move(item));
    if (batch.exhausted) break;
  }
  XQJG_RETURN_NOT_OK(CloseCursor(cursor_id));
  return all;
}

Status Client::CloseCursor(uint32_t cursor_id) {
  WireWriter w;
  w.PutU32(cursor_id);
  return RoundTrip(Opcode::kCloseCursor, w.buffer(), Opcode::kOk).status();
}

Status Client::LoadDocument(const std::string& uri,
                            const std::string& xml_text,
                            const std::set<std::string>& segment_tags) {
  WireWriter w;
  w.PutString(uri);
  w.PutString(xml_text);
  w.PutU32(static_cast<uint32_t>(segment_tags.size()));
  for (const auto& tag : segment_tags) w.PutString(tag);
  return RoundTrip(Opcode::kLoadDoc, w.buffer(), Opcode::kOk).status();
}

Status Client::IndexDdl(uint8_t action) {
  WireWriter w;
  w.PutU8(action);
  return RoundTrip(Opcode::kIndexDdl, w.buffer(), Opcode::kOk).status();
}

Result<std::string> Client::ServerStats() {
  XQJG_ASSIGN_OR_RETURN(Frame f,
                        RoundTrip(Opcode::kStats, {}, Opcode::kStatsOk));
  WireReader r(f.payload);
  return r.GetString();
}

Status Client::Goodbye() {
  return RoundTrip(Opcode::kGoodbye, {}, Opcode::kOk).status();
}

}  // namespace xqjg::server
