// Client — a blocking wire-protocol client for QueryServer.
//
// One Client wraps one connection (and therefore one server session).
// Methods mirror the protocol's request/response pairs one-to-one; a
// server-side kError frame comes back as the equivalent Status
// (StatusFromWire) and a kBusy frame as Status::Busy — admission
// shedding is a first-class, retryable outcome, not an exception.
//
// Not thread-safe: the protocol is strictly one request in flight per
// connection, so share nothing or open one Client per thread (the load
// driver in bench/serving_load.cpp does exactly that).
#ifndef XQJG_SERVER_CLIENT_H_
#define XQJG_SERVER_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/server/protocol.h"

namespace xqjg::server {

struct HelloResult {
  uint64_t session_id = 0;
  std::string banner;
};

struct PrepareResult {
  uint32_t statement_id = 0;
  uint8_t query_class = 0;  ///< QueryClass the server will admit this as
  bool has_plan = false;
  bool used_fallback = false;
  double est_cost = -1.0;
  /// name → declared-numeric, in slot order.
  std::vector<std::pair<std::string, bool>> parameters;
};

struct ExecuteResult {
  uint32_t cursor_id = 0;
  /// -1 when the server cannot know the cardinality yet (a spill-governed
  /// streaming tail learns it only as the cursor drains).
  int64_t rows_total = -1;
  double execute_seconds = 0.0;
};

struct FetchResult {
  bool exhausted = false;
  std::vector<std::string> items;
};

class Client {
 public:
  /// Takes ownership of a connected socket (tests that hand-craft frames
  /// use this directly).
  explicit Client(int fd) : fd_(fd) {}
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a numeric IPv4 host:port and completes the HELLO
  /// handshake.
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 int port);

  /// The HELLO handshake (Connect already ran it).
  Result<HelloResult> Hello();

  Result<PrepareResult> Prepare(const std::string& query, uint8_t mode,
                                const std::string& context_document);
  Result<ExecuteResult> Execute(
      uint32_t statement_id,
      const std::map<std::string, Value>& parameters = {},
      bool use_columnar = true);
  Result<FetchResult> Fetch(uint32_t cursor_id, uint32_t max_items);
  /// Fetch until exhausted, then CLOSE_CURSOR.
  Result<std::vector<std::string>> FetchAll(uint32_t cursor_id,
                                            uint32_t batch_size = 256);
  Status CloseCursor(uint32_t cursor_id);

  Status LoadDocument(const std::string& uri, const std::string& xml_text,
                      const std::set<std::string>& segment_tags = {});
  /// action 0 creates the default (Table VI) relational index set,
  /// action 1 drops it.
  Status IndexDdl(uint8_t action);
  Result<std::string> ServerStats();
  /// Polite shutdown; the server acknowledges and closes.
  Status Goodbye();

  uint64_t session_id() const { return session_id_; }

 private:
  /// One round trip; kError/kBusy frames become the equivalent Status,
  /// and the response opcode must match `expected`.
  Result<Frame> RoundTrip(Opcode request,
                          const std::vector<uint8_t>& payload,
                          Opcode expected);

  int fd_;
  uint64_t session_id_ = 0;
};

}  // namespace xqjg::server

#endif  // XQJG_SERVER_CLIENT_H_
