#include "src/server/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace xqjg::server {

namespace {

// Full read of `n` bytes. Returns the count actually read (short only at
// EOF) or a negative errno failure.
Result<size_t> ReadFull(int fd, uint8_t* out, size_t n) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = recv(fd, out + got, n - got, 0);
    if (r == 0) break;  // peer closed
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("recv: ") + std::strerror(errno));
    }
    got += static_cast<size_t>(r);
  }
  return got;
}

Status WriteFull(int fd, const uint8_t* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that disconnected mid-response surfaces as
    // EPIPE instead of killing the process with SIGPIPE.
    const ssize_t w = send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

ErrorCode ErrorCodeFromStatus(const Status& s) {
  switch (s.code()) {
    case StatusCode::kInvalidArgument:
      return ErrorCode::kInvalidArgument;
    case StatusCode::kParseError:
      return ErrorCode::kParseError;
    case StatusCode::kNotSupported:
      return ErrorCode::kNotSupported;
    case StatusCode::kNotFound:
      return ErrorCode::kNotFound;
    case StatusCode::kTimeout:
      return ErrorCode::kTimeout;
    case StatusCode::kOk:
    case StatusCode::kBusy:
    case StatusCode::kInternal:
      break;  // OK/Busy never reach here; Internal is the fallthrough.
  }
  return ErrorCode::kInternal;
}

Status StatusFromWire(ErrorCode code, const std::string& message) {
  switch (code) {
    case ErrorCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case ErrorCode::kParseError:
      return Status::ParseError(message);
    case ErrorCode::kNotSupported:
      return Status::NotSupported(message);
    case ErrorCode::kInternal:
      return Status::Internal(message);
    case ErrorCode::kNotFound:
      return Status::NotFound(message);
    case ErrorCode::kTimeout:
      return Status::Timeout(message);
    case ErrorCode::kProtocol:
      return Status::InvalidArgument("protocol error: " + message);
    case ErrorCode::kUnknownOpcode:
      return Status::InvalidArgument("unknown opcode: " + message);
    case ErrorCode::kSessionExpired:
      return Status::NotFound("session expired: " + message);
    case ErrorCode::kQuota:
      return Status::InvalidArgument("quota exceeded: " + message);
  }
  return Status::Internal("unknown wire error code: " + message);
}

void WireWriter::PutU32(uint32_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
  buf_.push_back(static_cast<uint8_t>(v >> 16));
  buf_.push_back(static_cast<uint8_t>(v >> 24));
}

void WireWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void WireWriter::PutF64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

Result<uint8_t> WireReader::GetU8() {
  if (pos_ + 1 > size_) return Status::InvalidArgument("payload truncated");
  return data_[pos_++];
}

Result<uint32_t> WireReader::GetU32() {
  if (pos_ + 4 > size_) return Status::InvalidArgument("payload truncated");
  const uint32_t v = LoadU32(data_ + pos_);
  pos_ += 4;
  return v;
}

Result<uint64_t> WireReader::GetU64() {
  XQJG_ASSIGN_OR_RETURN(uint32_t lo, GetU32());
  XQJG_ASSIGN_OR_RETURN(uint32_t hi, GetU32());
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

Result<double> WireReader::GetF64() {
  XQJG_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> WireReader::GetString() {
  XQJG_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (pos_ + len > size_ || len > size_) {
    return Status::InvalidArgument("string length exceeds payload");
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

Status WireReader::Finish() const {
  if (pos_ != size_) {
    return Status::InvalidArgument(
        "payload has " + std::to_string(size_ - pos_) + " trailing bytes");
  }
  return Status::OK();
}

Result<Frame> ReadFrame(int fd, uint32_t max_frame_bytes) {
  uint8_t header[4];
  XQJG_ASSIGN_OR_RETURN(size_t got, ReadFull(fd, header, sizeof(header)));
  if (got == 0) return Status::NotFound("connection closed");  // clean EOF
  if (got < sizeof(header)) {
    return Status::Internal("connection closed mid-frame (header)");
  }
  const uint32_t length = LoadU32(header);
  if (length < 1) return Status::InvalidArgument("frame length < 1");
  if (length > max_frame_bytes) {
    return Status::InvalidArgument(
        "frame length " + std::to_string(length) + " exceeds limit " +
        std::to_string(max_frame_bytes));
  }
  Frame frame;
  uint8_t opcode;
  XQJG_ASSIGN_OR_RETURN(got, ReadFull(fd, &opcode, 1));
  if (got < 1) return Status::Internal("connection closed mid-frame (opcode)");
  frame.opcode = static_cast<Opcode>(opcode);
  frame.payload.resize(length - 1);
  if (!frame.payload.empty()) {
    XQJG_ASSIGN_OR_RETURN(
        got, ReadFull(fd, frame.payload.data(), frame.payload.size()));
    if (got < frame.payload.size()) {
      return Status::Internal("connection closed mid-frame (payload)");
    }
  }
  return frame;
}

Status WriteFrame(int fd, Opcode opcode, const std::vector<uint8_t>& payload) {
  WireWriter header;
  header.PutU32(static_cast<uint32_t>(payload.size() + 1));
  header.PutU8(static_cast<uint8_t>(opcode));
  XQJG_RETURN_NOT_OK(
      WriteFull(fd, header.buffer().data(), header.buffer().size()));
  if (!payload.empty()) {
    XQJG_RETURN_NOT_OK(WriteFull(fd, payload.data(), payload.size()));
  }
  return Status::OK();
}

Status WriteError(int fd, ErrorCode code, const std::string& message) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(code));
  w.PutString(message);
  return WriteFrame(fd, Opcode::kError, w.buffer());
}

Status WriteStatusError(int fd, const Status& s) {
  if (s.code() == StatusCode::kBusy) {
    WireWriter w;
    w.PutString(s.message());
    return WriteFrame(fd, Opcode::kBusy, w.buffer());
  }
  return WriteError(fd, ErrorCodeFromStatus(s), s.message());
}

}  // namespace xqjg::server
