// Wire protocol for the query server: length-prefixed binary frames.
//
// Frame layout (all integers little-endian):
//
//   u32 length   — byte count of opcode + payload (not the length itself)
//   u8  opcode   — see Opcode
//   ...payload   — opcode-specific, built from the primitives below
//
// Primitives: u8 / u32 / u64 / f64 (IEEE-754 bits) raw little-endian;
// `str` is u32 byte length + bytes (UTF-8, no terminator); `value` is a
// u8 type tag (0 null, 1 int64, 2 double, 3 string) followed by the
// payload for that tag. Frames larger than the server's configured
// maximum are rejected before the payload is read — a malformed length
// cannot make the server allocate unbounded memory.
//
// The protocol is strictly request/response over one connection: the
// client writes one request frame, the server writes exactly one
// response frame. There is no pipelining and no server push, which keeps
// the session state machine trivial (docs/PROTOCOL.md specifies every
// payload).
#ifndef XQJG_SERVER_PROTOCOL_H_
#define XQJG_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace xqjg::server {

/// Protocol revision negotiated by HELLO. Bumped on any frame-layout
/// change; the server rejects clients with a different version.
inline constexpr uint32_t kProtocolVersion = 1;

/// Hard ceiling on the frame size any conforming peer may send; servers
/// may configure a lower limit. 64 MiB comfortably holds a loaded
/// document while bounding what a hostile length prefix can demand.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Request opcodes occupy 0x01–0x7F, responses 0x80–0xFF. A response's
/// meaning depends on the request it answers (kRows answers kFetch).
enum class Opcode : uint8_t {
  // ---- requests ----
  kHello = 0x01,        ///< u32 version — must open every connection
  kPrepare = 0x02,      ///< u8 mode, str context_document, str query
  kExecute = 0x03,      ///< u32 stmt_id, u8 flags, u32 n, n × (str, value)
  kFetch = 0x04,        ///< u32 cursor_id, u32 max_items
  kCloseCursor = 0x05,  ///< u32 cursor_id
  kLoadDoc = 0x06,      ///< str uri, str xml, u32 n_tags, n × str
  kIndexDdl = 0x07,     ///< u8 action (0 create default indexes, 1 drop)
  kStats = 0x08,        ///< (empty)
  kGoodbye = 0x09,      ///< (empty) — server answers kOk then closes
  // ---- responses ----
  kOk = 0x80,         ///< (empty)
  kHelloOk = 0x81,    ///< u64 session_id, str banner
  kPrepareOk = 0x82,  ///< u32 stmt_id, u8 query_class, u8 has_plan,
                      ///< u8 used_fallback, f64 est_cost,
                      ///< u32 n_params, n × (str name, u8 numeric)
  kExecuteOk = 0x83,  ///< u32 cursor_id, i64 rows_total (-1 = unknown
                      ///< until the cursor drains), f64 exec_seconds
  kRows = 0x84,       ///< u8 exhausted, u32 n, n × str
  kStatsOk = 0x85,    ///< str json
  kError = 0xE0,      ///< u8 code (ErrorCode), str message
  kBusy = 0xE1,       ///< str message — admission shed; retry later
};

/// Wire error codes. 1–6 mirror StatusCode one-to-one so a Status crosses
/// the wire losslessly; 100+ are protocol-level conditions that have no
/// engine Status equivalent.
enum class ErrorCode : uint8_t {
  kInvalidArgument = 1,
  kParseError = 2,
  kNotSupported = 3,
  kInternal = 4,
  kNotFound = 5,
  kTimeout = 6,
  kProtocol = 100,        ///< malformed frame or out-of-order request
  kUnknownOpcode = 101,   ///< request opcode the server does not know
  kSessionExpired = 102,  ///< the idle reaper closed this session
  kQuota = 103,           ///< per-session statement/cursor cap reached
};

/// Maps an engine Status onto the wire (never called with OK or Busy —
/// Busy has its own frame).
ErrorCode ErrorCodeFromStatus(const Status& s);

/// Reconstructs a client-side Status from a wire error. Protocol-level
/// codes come back as Internal/InvalidArgument with the code named in
/// the message.
Status StatusFromWire(ErrorCode code, const std::string& message);

/// One parsed frame: opcode plus raw payload bytes.
struct Frame {
  Opcode opcode = Opcode::kError;
  std::vector<uint8_t> payload;
};

/// Serializes payload primitives into a byte buffer.
class WireWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutF64(double v);
  void PutString(const std::string& s);

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked reader over a received payload. Every getter returns
/// an error instead of reading past the end, and Finish() rejects
/// trailing garbage — a truncated or oversized payload is a clean
/// protocol error, never undefined behavior.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::vector<uint8_t>& payload)
      : WireReader(payload.data(), payload.size()) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<double> GetF64();
  Result<std::string> GetString();

  size_t remaining() const { return size_ - pos_; }
  /// Error if any bytes remain unconsumed.
  Status Finish() const;

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Reads one frame from `fd` (blocking, EINTR-safe). NotFound signals
/// orderly EOF before any byte of a frame; any other partial read is an
/// Internal error. `max_frame_bytes` rejects oversized length prefixes
/// before the payload transfers.
Result<Frame> ReadFrame(int fd, uint32_t max_frame_bytes = kMaxFrameBytes);

/// Writes one frame to `fd` (blocking, EINTR-safe, SIGPIPE suppressed).
Status WriteFrame(int fd, Opcode opcode, const std::vector<uint8_t>& payload);

/// Convenience: kError frame payload.
Status WriteError(int fd, ErrorCode code, const std::string& message);
/// Convenience: maps the Status onto the right frame — kBusy for
/// StatusCode::kBusy, kError otherwise.
Status WriteStatusError(int fd, const Status& s);

}  // namespace xqjg::server

#endif  // XQJG_SERVER_PROTOCOL_H_
