#include "src/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <set>
#include <utility>

#include "src/common/value.h"
#include "src/engine/database.h"

namespace xqjg::server {

namespace {

Result<api::Mode> ModeFromWire(uint8_t wire) {
  switch (wire) {
    case 0:
      return api::Mode::kStacked;
    case 1:
      return api::Mode::kJoinGraph;
    case 2:
      return api::Mode::kNativeWhole;
    case 3:
      return api::Mode::kNativeSegmented;
  }
  return Status::InvalidArgument("unknown mode byte " + std::to_string(wire));
}

/// Decodes one tagged `value` primitive (see protocol.h).
Result<Value> ReadValue(WireReader& reader) {
  XQJG_ASSIGN_OR_RETURN(uint8_t tag, reader.GetU8());
  switch (tag) {
    case 0:
      return Value::Null();
    case 1: {
      XQJG_ASSIGN_OR_RETURN(uint64_t bits, reader.GetU64());
      return Value::Int(static_cast<int64_t>(bits));
    }
    case 2: {
      XQJG_ASSIGN_OR_RETURN(double d, reader.GetF64());
      return Value::Double(d);
    }
    case 3: {
      XQJG_ASSIGN_OR_RETURN(std::string s, reader.GetString());
      return Value::String(std::move(s));
    }
  }
  return Status::InvalidArgument("unknown value tag " + std::to_string(tag));
}

void TouchSession(Session& session) {
  std::lock_guard<std::mutex> lock(session.mu);
  session.last_active = std::chrono::steady_clock::now();
}

bool SessionClosed(Session& session) {
  std::lock_guard<std::mutex> lock(session.mu);
  return session.closed;
}

}  // namespace

Status QueryServer::Start() {
  if (running_.load()) return Status::InvalidArgument("server already running");
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("host must be a numeric IPv4 address: " +
                                   config_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status s =
        Status::Internal(std::string("bind ") + config_.host + ":" +
                         std::to_string(config_.port) + ": " +
                         std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (listen(listen_fd_, 64) < 0) {
    const Status s =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  running_.store(true);
  accept_thread_ = std::thread(&QueryServer::AcceptLoop, this);
  reaper_thread_ = std::thread(&QueryServer::ReaperLoop, this);
  return Status::OK();
}

void QueryServer::Stop() {
  if (!running_.exchange(false)) return;
  // Wake the accept loop (blocked in accept) and the reaper (in wait_for).
  shutdown(listen_fd_, SHUT_RDWR);
  reaper_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (reaper_thread_.joinable()) reaper_thread_.join();
  // Wake every connection thread blocked in ReadFrame.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const auto& [id, fd] : conn_fds_) shutdown(fd, SHUT_RDWR);
  }
  // Join connection threads without holding conn_mu_ (a finishing thread
  // locks it to deregister itself).
  for (;;) {
    std::thread victim;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (conn_threads_.empty()) break;
      auto it = conn_threads_.begin();
      victim = std::move(it->second);
      conn_threads_.erase(it);
    }
    if (victim.joinable()) victim.join();
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    finished_conns_.clear();
  }
  close(listen_fd_);
  listen_fd_ = -1;
}

void QueryServer::AcceptLoop() {
  while (running_.load()) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down (Stop) or fatal — exit the loop
    }
    if (!running_.load()) {
      close(fd);
      break;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    // Join connections that already finished so their thread objects
    // don't accumulate across a long-lived server.
    std::vector<std::thread> done;
    uint64_t id;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      for (uint64_t fin : finished_conns_) {
        auto it = conn_threads_.find(fin);
        if (it != conn_threads_.end()) {
          done.push_back(std::move(it->second));
          conn_threads_.erase(it);
        }
      }
      finished_conns_.clear();
      id = next_conn_id_++;
      conn_fds_.emplace(id, fd);
    }
    for (auto& t : done) {
      if (t.joinable()) t.join();
    }
    std::thread worker(&QueryServer::HandleConnection, this, id, fd);
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_threads_.emplace(id, std::move(worker));
    }
  }
}

void QueryServer::ReaperLoop() {
  std::unique_lock<std::mutex> lock(reaper_mu_);
  while (running_.load()) {
    reaper_cv_.wait_for(lock, std::chrono::duration<double>(
                                  config_.reap_interval_seconds));
    if (!running_.load()) break;
    const std::vector<uint64_t> reaped =
        sessions_.ReapIdle(config_.idle_timeout_seconds);
    if (reaped.empty()) continue;
    // Wake the reaped sessions' connections: their next (or current,
    // blocked) read fails and the connection thread exits.
    std::lock_guard<std::mutex> conn_lock(conn_mu_);
    for (uint64_t sid : reaped) {
      auto it = session_conns_.find(sid);
      if (it == session_conns_.end()) continue;
      auto fd_it = conn_fds_.find(it->second);
      if (fd_it != conn_fds_.end()) shutdown(fd_it->second, SHUT_RDWR);
      session_conns_.erase(it);
    }
  }
}

Status QueryServer::SendError(int fd, ErrorCode code,
                              const std::string& message) {
  errors_.fetch_add(1, std::memory_order_relaxed);
  return WriteError(fd, code, message);
}

Status QueryServer::SendStatus(int fd, const Status& s) {
  if (s.code() != StatusCode::kBusy) {
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  return WriteStatusError(fd, s);
}

void QueryServer::HandleConnection(uint64_t conn_id, int fd) {
  const int one = 1;
  // Request/response over small frames: Nagle only adds latency here.
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::shared_ptr<Session> session;
  // HELLO handshake: must be the first frame.
  do {
    auto frame = ReadFrame(fd, config_.max_frame_bytes);
    if (!frame.ok()) break;
    frames_.fetch_add(1, std::memory_order_relaxed);
    if (frame.value().opcode != Opcode::kHello) {
      SendError(fd, ErrorCode::kProtocol, "first frame must be HELLO");
      break;
    }
    WireReader reader(frame.value().payload);
    uint32_t version = 0;
    {
      auto v = reader.GetU32();
      if (v.ok()) version = v.value();
    }
    if (version != kProtocolVersion) {
      SendError(fd, ErrorCode::kProtocol,
                "protocol version " + std::to_string(version) +
                    " unsupported (server speaks " +
                    std::to_string(kProtocolVersion) + ")");
      break;
    }
    auto created = sessions_.Create(config_.session);
    if (!created.ok()) {
      SendStatus(fd, created.status());
      break;
    }
    session = std::move(created).value();
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      session_conns_[session->id] = conn_id;
    }
    WireWriter w;
    w.PutU64(session->id);
    w.PutString("xqjg/" + std::to_string(kProtocolVersion));
    if (!WriteFrame(fd, Opcode::kHelloOk, w.buffer()).ok()) break;

    // Request loop: one frame in, one frame out.
    for (;;) {
      auto request = ReadFrame(fd, config_.max_frame_bytes);
      if (!request.ok()) break;  // EOF, reaper shutdown, or malformed length
      frames_.fetch_add(1, std::memory_order_relaxed);
      if (SessionClosed(*session)) {
        SendError(fd, ErrorCode::kSessionExpired,
                  "session " + std::to_string(session->id) +
                      " was reaped after idling");
        break;
      }
      TouchSession(*session);
      WireReader body(request.value().payload);
      Status io = Status::OK();
      bool goodbye = false;
      switch (request.value().opcode) {
        case Opcode::kPrepare:
          io = HandlePrepare(fd, *session, body);
          break;
        case Opcode::kExecute:
          io = HandleExecute(fd, *session, body);
          break;
        case Opcode::kFetch:
          io = HandleFetch(fd, *session, body);
          break;
        case Opcode::kCloseCursor:
          io = HandleCloseCursor(fd, *session, body);
          break;
        case Opcode::kLoadDoc:
          io = HandleLoadDoc(fd, body);
          break;
        case Opcode::kIndexDdl:
          io = HandleIndexDdl(fd, body);
          break;
        case Opcode::kStats: {
          WireWriter w2;
          w2.PutString(StatsJson());
          io = WriteFrame(fd, Opcode::kStatsOk, w2.buffer());
          break;
        }
        case Opcode::kGoodbye:
          io = WriteFrame(fd, Opcode::kOk, {});
          goodbye = true;
          break;
        case Opcode::kHello:
          io = SendError(fd, ErrorCode::kProtocol, "HELLO after handshake");
          break;
        default:
          io = SendError(fd, ErrorCode::kUnknownOpcode,
                         std::to_string(static_cast<int>(
                             request.value().opcode)));
          break;
      }
      TouchSession(*session);
      if (!io.ok() || goodbye) break;
    }
  } while (false);

  if (session != nullptr) sessions_.Close(session->id);
  close(fd);
  std::lock_guard<std::mutex> lock(conn_mu_);
  conn_fds_.erase(conn_id);
  if (session != nullptr) session_conns_.erase(session->id);
  finished_conns_.push_back(conn_id);
}

Status QueryServer::HandlePrepare(int fd, Session& session,
                                  WireReader& reader) {
  uint8_t mode_byte;
  std::string context_document, query;
  {
    auto m = reader.GetU8();
    auto c = m.ok() ? reader.GetString() : Result<std::string>(m.status());
    auto q = c.ok() ? reader.GetString() : Result<std::string>(c.status());
    if (!q.ok() || !reader.Finish().ok()) {
      return SendError(fd, ErrorCode::kProtocol, "malformed PREPARE payload");
    }
    mode_byte = m.value();
    context_document = std::move(c).value();
    query = std::move(q).value();
  }
  auto mode = ModeFromWire(mode_byte);
  if (!mode.ok()) return SendStatus(fd, mode.status());

  {
    std::lock_guard<std::mutex> lock(session.mu);
    if (static_cast<int>(session.statements.size()) >=
        session.config.max_statements) {
      return SendError(fd, ErrorCode::kQuota,
                       "statement quota (" +
                           std::to_string(session.config.max_statements) +
                           ") reached; close the session or reuse ids");
    }
  }

  api::PrepareOptions options;
  options.mode = mode.value();
  options.context_document = context_document;
  auto prepared = processor_->Prepare(query, options);
  if (!prepared.ok()) return SendStatus(fd, prepared.status());
  const api::PreparedQuery& pq = *prepared.value();

  uint32_t stmt_id;
  {
    std::lock_guard<std::mutex> lock(session.mu);
    if (session.closed) {
      return SendError(fd, ErrorCode::kSessionExpired, "session reaped");
    }
    stmt_id = session.next_statement_id++;
    session.statements.emplace(stmt_id, prepared.value());
  }

  const double est_cost = pq.has_plan ? pq.plan.est_cost : -1.0;
  const QueryClass cls =
      Classify(pq.has_plan, est_cost, admission_.config());
  WireWriter w;
  w.PutU32(stmt_id);
  w.PutU8(static_cast<uint8_t>(cls));
  w.PutU8(pq.has_plan ? 1 : 0);
  w.PutU8(pq.used_fallback ? 1 : 0);
  w.PutF64(est_cost);
  w.PutU32(static_cast<uint32_t>(pq.parameters.size()));
  for (const auto& decl : pq.parameters) {
    w.PutString(decl.name);
    w.PutU8(decl.numeric ? 1 : 0);
  }
  return WriteFrame(fd, Opcode::kPrepareOk, w.buffer());
}

Status QueryServer::HandleExecute(int fd, Session& session,
                                  WireReader& reader) {
  auto stmt_id = reader.GetU32();
  auto flags = stmt_id.ok() ? reader.GetU8() : Result<uint8_t>(stmt_id.status());
  auto n_params = flags.ok() ? reader.GetU32() : Result<uint32_t>(flags.status());
  if (!n_params.ok()) {
    return SendError(fd, ErrorCode::kProtocol, "malformed EXECUTE payload");
  }
  api::ExecuteOptions options;
  options.limits = session.config.limits;
  options.use_columnar = (flags.value() & 0x1) != 0;
  options.threads = session.config.exec_threads;
  for (uint32_t i = 0; i < n_params.value(); ++i) {
    auto name = reader.GetString();
    if (!name.ok()) {
      return SendError(fd, ErrorCode::kProtocol, "malformed EXECUTE params");
    }
    auto value = ReadValue(reader);
    if (!value.ok()) {
      return SendError(fd, ErrorCode::kProtocol, "malformed EXECUTE params");
    }
    options.parameters[name.value()] = std::move(value).value();
  }
  if (!reader.Finish().ok()) {
    return SendError(fd, ErrorCode::kProtocol, "trailing EXECUTE bytes");
  }

  std::shared_ptr<const api::PreparedQuery> prepared;
  {
    std::lock_guard<std::mutex> lock(session.mu);
    auto it = session.statements.find(stmt_id.value());
    if (it == session.statements.end()) {
      return SendError(fd, ErrorCode::kNotFound,
                       "unknown statement id " +
                           std::to_string(stmt_id.value()));
    }
    if (static_cast<int>(session.cursors.size()) >=
        session.config.max_cursors) {
      return SendError(fd, ErrorCode::kQuota,
                       "cursor quota (" +
                           std::to_string(session.config.max_cursors) +
                           ") reached; CLOSE_CURSOR finished work first");
    }
    prepared = it->second;
  }

  // Admission: classify by the planner's cost estimate and take a slot
  // (or shed). The plan runs — Prime() — while the ticket is held; the
  // fetch phase pulls from the primed result stream and needs no slot
  // (on the pipelined lanes Prime no longer materializes the result, so
  // what the ticket covers is the join work, not the drain).
  const double est_cost = prepared->has_plan ? prepared->plan.est_cost : -1.0;
  const QueryClass cls =
      Classify(prepared->has_plan, est_cost, admission_.config());
  auto ticket = admission_.Admit(cls);
  if (!ticket.ok()) return SendStatus(fd, ticket.status());

  auto cursor = processor_->Execute(prepared, options);
  if (!cursor.ok()) return SendStatus(fd, cursor.status());
  const Status primed = cursor.value()->Prime();
  if (!primed.ok()) return SendStatus(fd, primed);
  ticket.value().Release();

  const int64_t rows_total = cursor.value()->stats().rows_total;
  const double execute_seconds = cursor.value()->stats().execute_seconds;
  uint32_t cursor_id;
  {
    std::lock_guard<std::mutex> lock(session.mu);
    if (session.closed) {
      return SendError(fd, ErrorCode::kSessionExpired, "session reaped");
    }
    cursor_id = session.next_cursor_id++;
    session.cursors.emplace(cursor_id, std::move(cursor).value());
  }
  WireWriter w;
  w.PutU32(cursor_id);
  w.PutU64(static_cast<uint64_t>(rows_total));
  w.PutF64(execute_seconds);
  return WriteFrame(fd, Opcode::kExecuteOk, w.buffer());
}

Status QueryServer::HandleFetch(int fd, Session& session, WireReader& reader) {
  auto cursor_id = reader.GetU32();
  auto max_items =
      cursor_id.ok() ? reader.GetU32() : Result<uint32_t>(cursor_id.status());
  if (!max_items.ok() || !reader.Finish().ok()) {
    return SendError(fd, ErrorCode::kProtocol, "malformed FETCH payload");
  }
  // The session mutex stays held across the fetch: the only contenders
  // are this connection thread and the reaper, and a held mutex reads as
  // "not idle" to the latter (try_lock). Serialization work is bounded
  // by the session's per-fetch wall-clock budget.
  std::lock_guard<std::mutex> lock(session.mu);
  auto it = session.cursors.find(cursor_id.value());
  if (it == session.cursors.end()) {
    return SendError(fd, ErrorCode::kNotFound,
                     "unknown cursor id " + std::to_string(cursor_id.value()) +
                         " (closed or never opened)");
  }
  auto batch = it->second->FetchNext(max_items.value());
  if (!batch.ok()) return SendStatus(fd, batch.status());
  WireWriter w;
  w.PutU8(it->second->exhausted() ? 1 : 0);
  w.PutU32(static_cast<uint32_t>(batch.value().size()));
  for (const auto& item : batch.value()) w.PutString(item);
  return WriteFrame(fd, Opcode::kRows, w.buffer());
}

Status QueryServer::HandleCloseCursor(int fd, Session& session,
                                      WireReader& reader) {
  auto cursor_id = reader.GetU32();
  if (!cursor_id.ok() || !reader.Finish().ok()) {
    return SendError(fd, ErrorCode::kProtocol, "malformed CLOSE payload");
  }
  std::lock_guard<std::mutex> lock(session.mu);
  const size_t erased = session.cursors.erase(cursor_id.value());
  if (erased == 0) {
    // Double-close is a clean protocol error, never a crash: the id is
    // simply no longer (or never was) registered.
    return SendError(fd, ErrorCode::kNotFound,
                     "unknown cursor id " + std::to_string(cursor_id.value()) +
                         " (already closed?)");
  }
  return WriteFrame(fd, Opcode::kOk, {});
}

Status QueryServer::HandleLoadDoc(int fd, WireReader& reader) {
  auto uri = reader.GetString();
  auto xml = uri.ok() ? reader.GetString() : Result<std::string>(uri.status());
  auto n_tags =
      xml.ok() ? reader.GetU32() : Result<uint32_t>(xml.status());
  if (!n_tags.ok()) {
    return SendError(fd, ErrorCode::kProtocol, "malformed LOAD_DOC payload");
  }
  std::set<std::string> tags;
  for (uint32_t i = 0; i < n_tags.value(); ++i) {
    auto tag = reader.GetString();
    if (!tag.ok()) {
      return SendError(fd, ErrorCode::kProtocol, "malformed LOAD_DOC tags");
    }
    tags.insert(std::move(tag).value());
  }
  if (!reader.Finish().ok()) {
    return SendError(fd, ErrorCode::kProtocol, "trailing LOAD_DOC bytes");
  }
  // Rides the processor's copy-on-write snapshot swap: open cursors on
  // other sessions keep draining their pinned snapshots.
  const Status s = processor_->LoadDocument(uri.value(), xml.value(), tags);
  if (!s.ok()) return SendStatus(fd, s);
  return WriteFrame(fd, Opcode::kOk, {});
}

Status QueryServer::HandleIndexDdl(int fd, WireReader& reader) {
  auto action = reader.GetU8();
  if (!action.ok() || !reader.Finish().ok()) {
    return SendError(fd, ErrorCode::kProtocol, "malformed INDEX_DDL payload");
  }
  switch (action.value()) {
    case 0: {
      const Status s = processor_->CreateRelationalIndexes();
      if (!s.ok()) return SendStatus(fd, s);
      break;
    }
    case 1:
      processor_->DropRelationalIndexes();
      break;
    default:
      return SendError(fd, ErrorCode::kProtocol,
                       "unknown INDEX_DDL action " +
                           std::to_string(action.value()));
  }
  return WriteFrame(fd, Opcode::kOk, {});
}

ServerStats QueryServer::stats() const {
  ServerStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.frames = frames_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.sessions = sessions_.stats();
  s.admission = admission_.stats();
  return s;
}

std::string QueryServer::StatsJson() const {
  const ServerStats s = stats();
  std::string out = "{";
  out += "\"connections\":" + std::to_string(s.connections);
  out += ",\"frames\":" + std::to_string(s.frames);
  out += ",\"errors\":" + std::to_string(s.errors);
  out += ",\"sessions\":{\"created\":" + std::to_string(s.sessions.created) +
         ",\"reaped\":" + std::to_string(s.sessions.reaped) +
         ",\"open\":" + std::to_string(s.sessions.open) +
         ",\"open_cursors\":" + std::to_string(s.sessions.open_cursors) +
         ",\"retained_cursor_bytes\":" +
         std::to_string(s.sessions.retained_cursor_bytes) + "}";
  out += ",\"admission\":{";
  for (int i = 0; i < kNumQueryClasses; ++i) {
    const char* name = QueryClassToString(static_cast<QueryClass>(i));
    if (i > 0) out += ",";
    out += std::string("\"") + name + "\":{";
    out += "\"admitted\":" + std::to_string(s.admission.admitted[i]);
    out += ",\"shed\":" + std::to_string(s.admission.shed[i]);
    out += ",\"running\":" + std::to_string(s.admission.running[i]);
    out += ",\"waiting\":" + std::to_string(s.admission.waiting[i]);
    out += "}";
  }
  out += "}}";
  return out;
}

}  // namespace xqjg::server
