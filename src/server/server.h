// QueryServer — serves the XQueryProcessor facade over TCP.
//
// One server wraps one XQueryProcessor: every connection shares its plan
// cache and its catalog snapshot chain, so a statement PREPAREd on one
// session and the identical text PREPAREd on another hit the same cached
// artifact, and catalog mutations (LOAD_DOC, INDEX_DDL) ride the
// processor's existing atomic snapshot swap — in-flight executions on
// other sessions keep draining their pinned snapshots, exactly as in
// embedded use.
//
// Request lifecycle (docs/ARCHITECTURE.md has the diagram):
//
//   accept → HELLO (session created) → loop:
//     read frame → touch session → dispatch:
//       PREPARE        Prepare() through the shared plan cache
//       EXECUTE        classify by plan cost → Admit() (BUSY when shed)
//                      → Execute() + Prime() under the admission ticket
//                      → cursor registered in the session
//       FETCH          drain a batch from a registered cursor
//       ...
//   → GOODBYE / EOF / error → session closed, cursors released
//
// Threads: one accept loop, one connection thread per client (joined on
// Stop — never detached, so TSan sees every edge), one idle reaper that
// closes sessions with no request activity for idle_timeout_seconds and
// shuts down their connections (releasing cursors and the catalog
// snapshots they pin).
#ifndef XQJG_SERVER_SERVER_H_
#define XQJG_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/api/processor.h"
#include "src/common/status.h"
#include "src/server/admission.h"
#include "src/server/protocol.h"
#include "src/server/session.h"

namespace xqjg::server {

struct ServerConfig {
  /// Numeric IPv4 address to bind ("127.0.0.1"; the server is an
  /// application protocol demo, not an internet-facing hardened daemon).
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port — read the chosen one back via port().
  int port = 0;
  int max_sessions = 64;
  uint32_t max_frame_bytes = kMaxFrameBytes;
  /// Sessions with no request activity for this long are reaped: their
  /// cursors (and pinned catalog snapshots) are released and their
  /// connections shut down.
  double idle_timeout_seconds = 300.0;
  double reap_interval_seconds = 5.0;
  SessionConfig session;
  AdmissionConfig admission;
};

struct ServerStats {
  int64_t connections = 0;
  int64_t frames = 0;
  int64_t errors = 0;  ///< kError responses sent
  SessionManagerStats sessions;
  AdmissionStats admission;
};

/// Thread-safe once Start()ed; Stop() (or destruction) joins every
/// thread. The processor must outlive the server.
class QueryServer {
 public:
  QueryServer(api::XQueryProcessor* processor, const ServerConfig& config)
      : processor_(processor),
        config_(config),
        admission_(config.admission),
        sessions_(config.max_sessions) {}
  ~QueryServer() { Stop(); }

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens, and spawns the accept + reaper threads.
  Status Start();
  /// Graceful shutdown: stops accepting, shuts every connection down,
  /// joins every thread, closes every session. Idempotent.
  void Stop();

  /// The bound port (after Start; resolves port 0 to the kernel's pick).
  int port() const { return port_; }
  ServerStats stats() const;
  /// stats() plus admission config rendered as a JSON object (the STATS
  /// opcode and the daemon's exit report both serve this).
  std::string StatsJson() const;

 private:
  void AcceptLoop();
  void ReaperLoop();
  void HandleConnection(uint64_t conn_id, int fd);

  /// Per-opcode handlers: decode payload, act, write the response frame.
  /// The returned Status reflects only the socket write (a handler error
  /// becomes a kError/kBusy *frame*, which is a successful exchange) —
  /// a non-OK return ends the connection.
  Status HandlePrepare(int fd, Session& session, WireReader& reader);
  Status HandleExecute(int fd, Session& session, WireReader& reader);
  Status HandleFetch(int fd, Session& session, WireReader& reader);
  Status HandleCloseCursor(int fd, Session& session, WireReader& reader);
  Status HandleLoadDoc(int fd, WireReader& reader);
  Status HandleIndexDdl(int fd, WireReader& reader);

  /// WriteError + error counter bump.
  Status SendError(int fd, ErrorCode code, const std::string& message);
  Status SendStatus(int fd, const Status& s);

  api::XQueryProcessor* const processor_;
  const ServerConfig config_;
  AdmissionController admission_;
  SessionManager sessions_;

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::thread reaper_thread_;

  std::mutex reaper_mu_;
  std::condition_variable reaper_cv_;

  /// Connection registry. conn_fds_ lets Stop() and the reaper shut
  /// down blocked reads; threads are joined (finished ones eagerly by
  /// the accept loop, the rest by Stop) so no thread outlives the
  /// server object.
  mutable std::mutex conn_mu_;
  uint64_t next_conn_id_ = 1;
  std::map<uint64_t, int> conn_fds_;
  std::map<uint64_t, std::thread> conn_threads_;
  std::vector<uint64_t> finished_conns_;
  /// session id → conn id, so reaping a session wakes its connection.
  std::map<uint64_t, uint64_t> session_conns_;

  std::atomic<int64_t> connections_{0};
  std::atomic<int64_t> frames_{0};
  std::atomic<int64_t> errors_{0};
};

}  // namespace xqjg::server

#endif  // XQJG_SERVER_SERVER_H_
