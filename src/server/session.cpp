#include "src/server/session.h"

#include <utility>
#include <vector>

namespace xqjg::server {

Result<std::shared_ptr<Session>> SessionManager::Create(
    const SessionConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int>(sessions_.size()) >= max_sessions_) {
    return Status::Busy("session limit reached (" +
                        std::to_string(max_sessions_) + " open)");
  }
  auto session = std::make_shared<Session>(next_id_++, config);
  sessions_.emplace(session->id, session);
  ++created_;
  return session;
}

std::shared_ptr<Session> SessionManager::Find(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

void SessionManager::CloseLocked(const std::shared_ptr<Session>& session) {
  // Tear down under the session's own mutex so a connection thread
  // mid-request either finishes before state vanishes or observes
  // `closed` afterwards. Destroying cursors releases their pinned
  // catalog snapshots; destroying statements drops plan-cache shares.
  std::lock_guard<std::mutex> session_lock(session->mu);
  session->closed = true;
  session->cursors.clear();
  session->statements.clear();
}

void SessionManager::Close(uint64_t id) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;  // already closed — idempotent
    session = std::move(it->second);
    sessions_.erase(it);
  }
  CloseLocked(session);
}

std::vector<uint64_t> SessionManager::ReapIdle(double idle_seconds) {
  const auto cutoff =
      std::chrono::steady_clock::now() -
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(idle_seconds));
  std::vector<std::shared_ptr<Session>> victims;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      // try_lock: a held session mutex means a request is in flight
      // right now — by definition not idle, and the reaper must never
      // stall the registry behind a long-running execution.
      bool idle = false;
      if (it->second->mu.try_lock()) {
        idle = it->second->last_active <= cutoff;
        it->second->mu.unlock();
      }
      if (idle) {
        victims.push_back(std::move(it->second));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
    reaped_ += static_cast<int64_t>(victims.size());
  }
  // Cursor destruction (snapshot unpinning, result buffers) happens
  // outside the registry lock — reaping one bloated session must not
  // stall HELLOs.
  std::vector<uint64_t> ids;
  ids.reserve(victims.size());
  for (const auto& session : victims) {
    CloseLocked(session);
    ids.push_back(session->id);
  }
  return ids;
}

SessionManagerStats SessionManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SessionManagerStats s;
  s.created = created_;
  s.reaped = reaped_;
  s.open = static_cast<int>(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    // mu_ → session->mu is the established lock order (Close takes the
    // same pair); a session mid-request just waits out one fetch.
    std::lock_guard<std::mutex> slock(session->mu);
    if (session->closed) continue;
    s.open_cursors += static_cast<int>(session->cursors.size());
    for (const auto& [cid, cursor] : session->cursors) {
      s.retained_cursor_bytes += cursor->retained_memory_bytes();
    }
  }
  return s;
}

}  // namespace xqjg::server
