// Sessions: per-connection server-side state, with idle reaping.
//
// A Session is a first-class object owning the statements a client
// PREPAREd and the cursors its EXECUTEs opened, plus the per-session
// execution limits every statement runs under. All sessions share one
// XQueryProcessor (and therefore one PlanCache and one catalog snapshot
// chain); what a session owns is exactly the state a disconnect or idle
// reap must release — open cursors pin catalog snapshots, so abandoning
// them would pin memory for documents the catalog has since replaced.
//
// Locking: SessionManager::mu_ guards the id→session map; each Session's
// own mu guards its statement/cursor tables and is held by whichever
// thread is acting on the session (its connection thread, or the reaper
// tearing it down). The reaper marks a session closed and clears its
// state under that mutex; a connection thread that finds its session
// closed answers kSessionExpired instead of touching freed state.
#ifndef XQJG_SERVER_SESSION_H_
#define XQJG_SERVER_SESSION_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/api/cursor.h"
#include "src/api/prepared_query.h"
#include "src/engine/exec_options.h"

namespace xqjg::server {

struct SessionConfig {
  /// Execution limits applied to every statement the session runs
  /// (per-fetch wall clock + intermediate-row cap — the cooperative DNF
  /// budgets of the engine).
  engine::ExecLimits limits;
  /// Open-cursor and prepared-statement quotas; exceeding either is a
  /// kQuota protocol error, not a hidden eviction.
  int max_cursors = 8;
  int max_statements = 64;
  /// Relational lanes run columnar by default (faster, identical
  /// results).
  bool use_columnar = true;
  /// Morsel workers per execution.
  int exec_threads = 1;
};

/// One client session. Public state is guarded by `mu` (see file
/// comment); the immutable fields (id, config) are lock-free reads.
struct Session {
  Session(uint64_t id_in, const SessionConfig& config_in)
      : id(id_in), config(config_in) {}

  const uint64_t id;
  const SessionConfig config;

  std::mutex mu;
  /// Guarded by mu from here down.
  std::chrono::steady_clock::time_point last_active =
      std::chrono::steady_clock::now();
  bool closed = false;
  uint32_t next_statement_id = 1;
  uint32_t next_cursor_id = 1;
  std::map<uint32_t, std::shared_ptr<const api::PreparedQuery>> statements;
  std::map<uint32_t, std::unique_ptr<api::ResultCursor>> cursors;
};

struct SessionManagerStats {
  int64_t created = 0;
  int64_t reaped = 0;
  int open = 0;
  /// Open cursors across live sessions, and the tracked bytes they still
  /// retain (stream state + pull buffers + undelivered native items) —
  /// the observable for "an open cursor holds O(batch), not O(result)".
  int open_cursors = 0;
  int64_t retained_cursor_bytes = 0;
};

/// Thread-safe registry of live sessions. Creation enforces the server's
/// session cap; Close() is idempotent (connection teardown and the idle
/// reaper may race to it).
class SessionManager {
 public:
  explicit SessionManager(int max_sessions) : max_sessions_(max_sessions) {}

  /// Status::Busy at the session cap — the server maps it to a BUSY
  /// frame, the connection-level analogue of admission shedding.
  Result<std::shared_ptr<Session>> Create(const SessionConfig& config);

  std::shared_ptr<Session> Find(uint64_t id);

  /// Marks the session closed and releases its statements and cursors.
  /// Safe to call twice; safe to call while the connection thread holds
  /// a reference (it observes `closed` under the session mutex).
  void Close(uint64_t id);

  /// Closes every session idle for at least `idle_seconds` and returns
  /// their ids (the server shuts down the matching connections so their
  /// blocked reads wake up). A session whose mutex is held is mid-request
  /// and therefore not idle — the reaper skips it rather than block.
  std::vector<uint64_t> ReapIdle(double idle_seconds);

  SessionManagerStats stats() const;

 private:
  void CloseLocked(const std::shared_ptr<Session>& session);

  const int max_sessions_;
  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  std::map<uint64_t, std::shared_ptr<Session>> sessions_;
  int64_t created_ = 0;
  int64_t reaped_ = 0;
};

}  // namespace xqjg::server

#endif  // XQJG_SERVER_SESSION_H_
