#include "src/sql/sqlgen.h"

#include <map>
#include <set>

#include "src/algebra/dag.h"
#include "src/common/str.h"

namespace xqjg::sql {

using algebra::CmpOp;
using algebra::Op;
using algebra::OpKind;
using algebra::OpPtr;
using algebra::Term;
using opt::JoinGraph;
using opt::QualTerm;

namespace {

std::string ValueSql(const Value& v) {
  switch (v.type()) {
    case ValueType::kString:
      return SqlQuote(v.AsString());
    case ValueType::kNull:
      return "NULL";
    default:
      return v.ToString();
  }
}

std::string QualTermSql(const QualTerm& t) {
  std::string out;
  if (t.alias >= 0) out = StrPrintf("d%d.%s", t.alias, t.col.c_str());
  if (t.alias2 >= 0) {
    out += StrPrintf(" + d%d.%s", t.alias2, t.col2.c_str());
  }
  if (t.param >= 0) {
    // SQL prepared-statement parameter marker.
    out = out.empty() ? "?" : out + " + ?";
  }
  if (!t.constant.is_null()) {
    if (out.empty()) {
      out = ValueSql(t.constant);
    } else {
      out += " + " + t.constant.ToString();
    }
  }
  return out.empty() ? "0" : out;
}

std::string TermSql(const Term& t) {
  std::string out;
  if (!t.col.empty()) out = t.col;
  if (!t.col2.empty()) out += " + " + t.col2;
  if (t.param >= 0) {
    out = out.empty() ? "?" : out + " + ?";
  }
  if (!t.constant.is_null()) {
    if (out.empty()) {
      out = ValueSql(t.constant);
    } else {
      out += " + " + t.constant.ToString();
    }
  }
  return out.empty() ? "0" : out;
}

}  // namespace

std::string EmitJoinGraphSql(const JoinGraph& graph) {
  std::string out = "SELECT ";
  if (graph.distinct) out += "DISTINCT ";
  std::vector<std::string> select;
  for (const auto& t : graph.select_list) select.push_back(QualTermSql(t));
  out += select.empty() ? "*" : Join(select, ", ");
  out += "\nFROM ";
  std::vector<std::string> froms;
  for (int i = 0; i < graph.num_aliases; ++i) {
    froms.push_back(StrPrintf("doc AS d%d", i));
  }
  out += Join(froms, ", ");
  if (!graph.predicates.empty()) {
    out += "\nWHERE ";
    std::vector<std::string> preds;
    for (const auto& p : graph.predicates) {
      preds.push_back(QualTermSql(p.lhs) + " " +
                      algebra::CmpOpToString(p.op) + " " +
                      QualTermSql(p.rhs));
    }
    out += Join(preds, "\n  AND ");
  }
  if (!graph.order_by.empty()) {
    out += "\nORDER BY ";
    std::vector<std::string> order;
    for (const auto& t : graph.order_by) order.push_back(QualTermSql(t));
    out += Join(order, ", ");
  }
  return out;
}

Result<std::string> EmitStackedCte(const OpPtr& root) {
  // One CTE per operator, bottom-up; column names are globally unique, so
  // cross-CTE references never need qualification.
  std::map<const Op*, std::string> names;
  std::vector<std::string> ctes;
  int next = 1;
  for (Op* op : algebra::BottomUpOrder(root)) {
    if (op->kind == OpKind::kSerialize) continue;
    std::string name = StrPrintf("t%d", next++);
    std::string body;
    auto child = [&](size_t i) { return names.at(op->children[i].get()); };
    switch (op->kind) {
      case OpKind::kDocTable:
        body = "SELECT * FROM doc";
        break;
      case OpKind::kLiteral: {
        if (op->rows.empty()) {
          std::vector<std::string> cols;
          for (const auto& c : op->schema) cols.push_back("NULL AS " + c);
          body = "SELECT " + Join(cols, ", ") + " WHERE 1 = 0";
        } else {
          std::vector<std::string> rows;
          for (const auto& row : op->rows) {
            std::vector<std::string> vals;
            for (size_t i = 0; i < row.size(); ++i) {
              vals.push_back(ValueSql(row[i]) + " AS " + op->schema[i]);
            }
            rows.push_back("SELECT " + Join(vals, ", "));
          }
          body = Join(rows, " UNION ALL ");
        }
        break;
      }
      case OpKind::kProject: {
        std::vector<std::string> cols;
        for (const auto& [out_name, in] : op->proj) {
          cols.push_back(in == out_name ? in : in + " AS " + out_name);
        }
        body = "SELECT " + Join(cols, ", ") + " FROM " + child(0);
        break;
      }
      case OpKind::kSelect: {
        std::vector<std::string> preds;
        for (const auto& c : op->pred.conjuncts) {
          preds.push_back(TermSql(c.lhs) + " " +
                          algebra::CmpOpToString(c.op) + " " +
                          TermSql(c.rhs));
        }
        body = "SELECT * FROM " + child(0) + " WHERE " +
               Join(preds, " AND ");
        break;
      }
      case OpKind::kJoin:
      case OpKind::kCross: {
        body = "SELECT * FROM " + child(0) + ", " + child(1);
        if (op->kind == OpKind::kJoin) {
          std::vector<std::string> preds;
          for (const auto& c : op->pred.conjuncts) {
            preds.push_back(TermSql(c.lhs) + " " +
                            algebra::CmpOpToString(c.op) + " " +
                            TermSql(c.rhs));
          }
          body += " WHERE " + Join(preds, " AND ");
        }
        break;
      }
      case OpKind::kDistinct:
        body = "SELECT DISTINCT * FROM " + child(0);
        break;
      case OpKind::kAttach:
        body = "SELECT *, " + ValueSql(op->val) + " AS " + op->col +
               " FROM " + child(0);
        break;
      case OpKind::kRowId:
        body = "SELECT *, ROW_NUMBER() OVER () AS " + op->col + " FROM " +
               child(0);
        break;
      case OpKind::kRank: {
        body = "SELECT *, RANK() OVER (ORDER BY " + Join(op->order, ", ") +
               ") AS " + op->col + " FROM " + child(0);
        break;
      }
      case OpKind::kSerialize:
        break;
    }
    names[op] = name;
    ctes.push_back(name + " AS (" + body + ")");
  }
  if (root->kind != OpKind::kSerialize) {
    return Status::InvalidArgument("expected a serialize-rooted plan");
  }
  std::string out = "WITH " + Join(ctes, ",\n     ") + "\n";
  out += "SELECT * FROM " + names.at(root->children[0].get());
  out += "\nORDER BY " + root->order[0] + ", " + root->col;
  return out;
}

}  // namespace xqjg::sql
