// SQL generation (paper §III-C, Figs 8/9).
//
// Two emitters, matching what Pathfinder shipped to DB2:
//   * EmitJoinGraphSql — the isolated plan as a single
//     SELECT-DISTINCT-FROM-WHERE-ORDER BY block over doc self-joins;
//   * EmitStackedCte — the unrewritten stacked plan as a WITH-CTE chain
//     featuring one DISTINCT / RANK() OVER per blocking operator (the
//     form whose staged execution Table IX's `stacked` column measures).
#ifndef XQJG_SQL_SQLGEN_H_
#define XQJG_SQL_SQLGEN_H_

#include <string>

#include "src/algebra/operators.h"
#include "src/common/status.h"
#include "src/opt/join_graph.h"

namespace xqjg::sql {

/// Renders the extracted join graph as one SFW block (Fig. 8 / Fig. 9).
std::string EmitJoinGraphSql(const opt::JoinGraph& graph);

/// Renders any algebra plan (stacked or partially isolated) as a WITH-CTE
/// chain culminating in an ORDER BY on the serialize columns.
Result<std::string> EmitStackedCte(const algebra::OpPtr& root);

}  // namespace xqjg::sql

#endif  // XQJG_SQL_SQLGEN_H_
