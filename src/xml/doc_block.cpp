#include "src/xml/doc_block.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <utility>

namespace xqjg::xml {

namespace {

/// A row range of the previous block to copy into a spliced column.
/// `shift` is the pre-coordinate delta applied to the copied rows of the
/// pre-valued columns (parent/root/pss); the prefix of a splice always
/// has shift 0.
struct PrevRange {
  int64_t begin = 0;
  int64_t len = 0;
  int64_t shift = 0;
};

/// Builds the ten engine columns of `before ++ scratch@scratch_base ++
/// after`, where before/after copy rows of `prev` and scratch is a
/// freshly parsed single-document builder table. The only per-row work
/// over copied rows is vector splicing (plus the pre shift); strings are
/// never re-hashed and dictionaries stay shared unless the scratch
/// document interns a new distinct entry.
std::vector<std::shared_ptr<const ValueColumn>> SpliceColumns(
    const DocBlock& prev, const DocTable& scratch, const PrevRange& before,
    int64_t scratch_base, const PrevRange& after) {
  std::vector<std::shared_ptr<const ValueColumn>> out(DocBlock::kNumCols);
  const int64_t sn = scratch.row_count();
  const auto n = static_cast<size_t>(before.len + sn + after.len);
  auto put = [&](int c, ValueColumn col) {
    out[static_cast<size_t>(c)] =
        std::make_shared<const ValueColumn>(std::move(col));
  };

  // pre is the row position by construction.
  {
    std::vector<int64_t> pre(n);
    std::iota(pre.begin(), pre.end(), 0);
    put(DocBlock::kPre, ValueColumn::Ints(std::move(pre)));
  }

  // Structural int64 columns. Copied rows of the PRE-VALUED columns
  // (parent/root/pss — always within their own document's run) shift by
  // the range's pre delta; size/level/kind are pre-invariant and copy
  // verbatim. Negative values (the -1 parent of a DOC row) never shift.
  auto build_ints = [&](int c, bool pre_valued,
                        const std::function<int64_t(int64_t)>& fresh) {
    const std::vector<int64_t>& src = prev.column(c).ints();
    std::vector<int64_t> v;
    v.reserve(n);
    auto copy_range = [&](const PrevRange& r) {
      for (int64_t i = 0; i < r.len; ++i) {
        int64_t x = src[static_cast<size_t>(r.begin + i)];
        if (pre_valued && r.shift != 0 && x >= 0) x += r.shift;
        v.push_back(x);
      }
    };
    copy_range(before);
    for (int64_t i = 0; i < sn; ++i) v.push_back(fresh(i));
    copy_range(after);
    put(c, ValueColumn::Ints(std::move(v)));
  };
  build_ints(DocBlock::kSizeCol, false,
             [&](int64_t i) { return scratch.size(i); });
  build_ints(DocBlock::kLevel, false,
             [&](int64_t i) { return scratch.level(i); });
  build_ints(DocBlock::kKind, false, [&](int64_t i) {
    return static_cast<int64_t>(scratch.kind(i));
  });
  build_ints(DocBlock::kParent, true, [&](int64_t i) {
    const int64_t p = scratch.Parent(i);
    return p < 0 ? p : scratch_base + p;
  });
  build_ints(DocBlock::kRoot, true,
             [&](int64_t i) { return scratch_base + scratch.Root(i); });
  build_ints(DocBlock::kPss, true, [&](int64_t i) {
    return scratch_base + i + scratch.size(i);
  });

  // name: dictionary-encoded, never NULL. EmptyLike shares prev's
  // dictionary; copy-on-write fires only on a genuinely new tag/URI.
  {
    const ValueColumn& src = prev.column(DocBlock::kName);
    ValueColumn name = ValueColumn::EmptyLike(src);
    name.AppendRange(src, static_cast<size_t>(before.begin),
                     static_cast<size_t>(before.len));
    for (int64_t i = 0; i < sn; ++i) name.AppendString(scratch.name(i));
    name.AppendRange(src, static_cast<size_t>(after.begin),
                     static_cast<size_t>(after.len));
    put(DocBlock::kName, std::move(name));
  }

  // value: dictionary-encoded with a NULL mask (rows without a value).
  {
    const ValueColumn& src = prev.column(DocBlock::kValue);
    ValueColumn value = ValueColumn::EmptyLike(src);
    value.AppendRange(src, static_cast<size_t>(before.begin),
                      static_cast<size_t>(before.len));
    for (int64_t i = 0; i < sn; ++i) {
      if (scratch.has_value(i)) {
        value.AppendString(scratch.value(i));
      } else {
        value.AppendNull();
      }
    }
    value.AppendRange(src, static_cast<size_t>(after.begin),
                      static_cast<size_t>(after.len));
    put(DocBlock::kValue, std::move(value));
  }

  // data: doubles with a NULL mask (rows whose value is not a decimal).
  {
    const ValueColumn& src = prev.column(DocBlock::kData);
    const std::vector<double>& pd = src.doubles();
    const uint8_t* pm = src.null_mask();
    std::vector<double> data;
    std::vector<uint8_t> nulls;
    data.reserve(n);
    nulls.reserve(n);
    auto copy_range = [&](const PrevRange& r) {
      for (int64_t i = 0; i < r.len; ++i) {
        const auto idx = static_cast<size_t>(r.begin + i);
        data.push_back(pd[idx]);
        nulls.push_back(pm ? pm[idx] : 0);
      }
    };
    copy_range(before);
    for (int64_t i = 0; i < sn; ++i) {
      data.push_back(scratch.has_data(i) ? scratch.data(i) : 0.0);
      nulls.push_back(scratch.has_data(i) ? 0 : 1);
    }
    copy_range(after);
    put(DocBlock::kData, ValueColumn::Doubles(std::move(data),
                                              std::move(nulls)));
  }

  return out;
}

}  // namespace

std::shared_ptr<const DocBlock> DocBlock::FromTable(const DocTable& table) {
  auto block = std::make_shared<DocBlock>();
  const auto n = static_cast<size_t>(table.row_count());
  // Identical materialization to what engine::Database historically built
  // per copy: typed int64 arrays, dictionary-encoded name/value, doubles
  // for data — built ONCE here, then adopted by every lane.
  std::vector<int64_t> pre(n), size(n), level(n), kind(n), parent(n), root(n),
      pss(n);
  std::vector<std::string> name(n), value(n);
  std::vector<uint8_t> value_null(n, 0);
  std::vector<double> data(n, 0.0);
  std::vector<uint8_t> data_null(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const auto p = static_cast<int64_t>(i);
    pre[i] = p;
    size[i] = table.size(p);
    level[i] = table.level(p);
    kind[i] = static_cast<int64_t>(table.kind(p));
    name[i] = table.name(p);
    if (table.has_value(p)) {
      value[i] = table.value(p);
    } else {
      value_null[i] = 1;
    }
    if (table.has_data(p)) {
      data[i] = table.data(p);
    } else {
      data_null[i] = 1;
    }
    parent[i] = table.Parent(p);
    root[i] = table.Root(p);
    pss[i] = p + table.size(p);
  }
  block->cols_.resize(kNumCols);
  auto put = [&](int c, ValueColumn col) {
    block->cols_[static_cast<size_t>(c)] =
        std::make_shared<const ValueColumn>(std::move(col));
  };
  put(kPre, ValueColumn::Ints(std::move(pre)));
  put(kSizeCol, ValueColumn::Ints(std::move(size)));
  put(kLevel, ValueColumn::Ints(std::move(level)));
  put(kKind, ValueColumn::Ints(std::move(kind)));
  put(kName, ValueColumn::DictStrings(name));
  put(kValue, ValueColumn::DictStrings(value, std::move(value_null)));
  put(kData, ValueColumn::Doubles(std::move(data), std::move(data_null)));
  put(kParent, ValueColumn::Ints(std::move(parent)));
  put(kRoot, ValueColumn::Ints(std::move(root)));
  put(kPss, ValueColumn::Ints(std::move(pss)));
  for (int64_t p = 0; p < table.row_count(); ++p) {
    if (table.kind(p) == NodeKind::kDoc) {
      block->runs_.push_back(DocRun{table.name(p), p, table.size(p) + 1});
    }
  }
  block->rows_ = table.row_count();
  return block;
}

std::shared_ptr<const DocBlock> DocBlock::Append(
    const std::shared_ptr<const DocBlock>& prev, const DocTable& scratch,
    const std::string& uri) {
  const int64_t base = prev->rows_;
  auto block = std::make_shared<DocBlock>();
  block->cols_ = SpliceColumns(*prev, scratch, PrevRange{0, base, 0}, base,
                               PrevRange{});
  block->runs_ = prev->runs_;
  block->runs_.push_back(DocRun{uri, base, scratch.row_count()});
  block->rows_ = base + scratch.row_count();
  return block;
}

std::shared_ptr<const DocBlock> DocBlock::Reload(
    const std::shared_ptr<const DocBlock>& prev, const DocTable& scratch,
    const std::string& uri) {
  const DocRun* target = prev->FindRun(uri);
  if (target == nullptr) return Append(prev, scratch, uri);  // defensive
  const int64_t delta = scratch.row_count() - target->rows;
  const PrevRange before{0, target->base, 0};
  const PrevRange after{target->base + target->rows,
                        prev->rows_ - target->base - target->rows, delta};
  auto block = std::make_shared<DocBlock>();
  block->cols_ = SpliceColumns(*prev, scratch, before, target->base, after);
  block->runs_.reserve(prev->runs_.size());
  for (const DocRun& run : prev->runs_) {
    DocRun out = run;
    if (run.uri == uri) {
      out.rows = scratch.row_count();
    } else if (run.base > target->base) {
      out.base += delta;
    }
    block->runs_.push_back(std::move(out));
  }
  block->rows_ = prev->rows_ + delta;
  return block;
}

const DocRun* DocBlock::FindRun(const std::string& uri) const {
  for (const DocRun& run : runs_) {
    if (run.uri == uri) return &run;
  }
  return nullptr;
}

int64_t DocBlock::ApproxBytes() const {
  int64_t bytes = 0;
  std::vector<const StringDict*> seen;
  for (const auto& col : cols_) {
    bytes += col->ApproxBytes();
    const auto dict = col->dict_ptr();
    if (dict &&
        std::find(seen.begin(), seen.end(), dict.get()) == seen.end()) {
      seen.push_back(dict.get());
      bytes += col->dict_bytes();
    }
  }
  return bytes;
}

}  // namespace xqjg::xml
