// The shared document block: ONE immutable, typed/dict ValueColumn
// materialization of the merged doc relation per corpus.
//
// Every execution lane views this block without copying a row:
//   * engine::Database adopts the column pointers as its storage,
//   * the columnar DocRelationBatch wraps the first nine columns,
//   * DocTable::FromBlock serves the row-lane / serializer accessors, and
//   * the native DocumentStore rebuilds its DOM lazily from the retained
//     source text (the only non-columnar representation, built on first
//     native use and shared across snapshots).
//
// Mutation is incremental and copy-on-write at run granularity:
//   * Append(prev, scratch, uri)  — loading document N+1 splices the new
//     rows behind the existing runs (one vector copy per column; the
//     dictionaries stay shared, pointer-identical, unless the new
//     document interns a new distinct string), and
//   * Reload(prev, scratch, uri)  — replacing a URI rebuilds only that
//     run; every other run's rows are range-copied verbatim with the pre/
//     parent/root/pss shift applied, never re-parsed or re-interned.
//
// Columns are contiguous (the executors' raw-pointer loops require it),
// so a delta produces NEW column vectors — what is shared across
// snapshots is the dictionaries, the native DOM, the B-trees of pinned
// snapshots, and the bytes of every untouched run (memcpy, not rebuild).
#ifndef XQJG_XML_DOC_BLOCK_H_
#define XQJG_XML_DOC_BLOCK_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/value_column.h"
#include "src/xml/infoset.h"

namespace xqjg::xml {

/// One document's contiguous row range inside the merged block.
struct DocRun {
  std::string uri;
  int64_t base = 0;  ///< pre rank of the document's DOC row
  int64_t rows = 0;  ///< node count of the document (DOC row included)
};

class DocBlock {
 public:
  /// Engine column order (== engine::EngineDocColumns()); the algebra's
  /// doc columns are the prefix [kPre, kRoot].
  enum Col {
    kPre = 0,
    kSizeCol,
    kLevel,
    kKind,
    kName,
    kValue,
    kData,
    kParent,
    kRoot,
    kPss,
    kNumCols
  };

  /// Materializes a block from any DocTable (builder- or view-backed):
  /// int64 arrays for the structural columns, dictionary-encoded strings
  /// for name/value, doubles-with-nulls for data. Runs derive from the
  /// table's DOC rows.
  static std::shared_ptr<const DocBlock> FromTable(const DocTable& table);

  /// Appends one parsed document (`scratch` holds exactly that document,
  /// DOC row at pre 0) behind prev's runs. Every existing column is
  /// vector-copied (dictionaries shared); the new rows are offset by
  /// prev->row_count().
  static std::shared_ptr<const DocBlock> Append(
      const std::shared_ptr<const DocBlock>& prev, const DocTable& scratch,
      const std::string& uri);

  /// Replaces the run of `uri` (which must exist in prev) with the
  /// document in `scratch`. Runs before the target copy verbatim; runs
  /// after copy with pre/parent/root/pss shifted by the row-count delta;
  /// only the target's rows are built from the fresh parse.
  static std::shared_ptr<const DocBlock> Reload(
      const std::shared_ptr<const DocBlock>& prev, const DocTable& scratch,
      const std::string& uri);

  int64_t row_count() const { return rows_; }
  const std::vector<DocRun>& runs() const { return runs_; }
  /// The run of `uri`, or nullptr when absent.
  const DocRun* FindRun(const std::string& uri) const;

  const ValueColumn& column(int c) const {
    return *cols_[static_cast<size_t>(c)];
  }
  const std::shared_ptr<const ValueColumn>& column_ptr(int c) const {
    return cols_[static_cast<size_t>(c)];
  }
  /// All kNumCols shared columns in engine order.
  const std::vector<std::shared_ptr<const ValueColumn>>& columns() const {
    return cols_;
  }

  /// Approximate heap bytes of the block: per-column payload plus each
  /// DISTINCT dictionary once. The reference quantity of the
  /// memory-footprint regression (every lane's retained bytes must sum to
  /// ~1× of this, not ~3×).
  int64_t ApproxBytes() const;

 private:
  std::vector<std::shared_ptr<const ValueColumn>> cols_;
  std::vector<DocRun> runs_;
  int64_t rows_ = 0;
};

}  // namespace xqjg::xml

#endif  // XQJG_XML_DOC_BLOCK_H_
