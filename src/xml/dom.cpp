#include "src/xml/dom.h"

#include "src/common/str.h"

namespace xqjg::xml {
namespace {

void AppendTextRecursive(const XmlNode* node, std::string* out) {
  if (node->kind == NodeKind::kText) {
    *out += node->value;
    return;
  }
  for (const auto& child : node->children) {
    AppendTextRecursive(child.get(), out);
  }
}

class DomBuilder : public ContentHandler {
 public:
  explicit DomBuilder(const std::string& uri) {
    doc_ = std::make_unique<XmlDocument>();
    doc_->uri = uri;
    doc_->doc_node = std::make_unique<XmlNode>();
    doc_->doc_node->kind = NodeKind::kDoc;
    doc_->doc_node->name = uri;
    stack_.push_back(doc_->doc_node.get());
  }

  void StartElement(
      const std::string& name,
      const std::vector<std::pair<std::string, std::string>>& attrs) override {
    auto elem = std::make_unique<XmlNode>();
    elem->kind = NodeKind::kElem;
    elem->name = name;
    elem->parent = stack_.back();
    for (const auto& [aname, avalue] : attrs) {
      auto attr = std::make_unique<XmlNode>();
      attr->kind = NodeKind::kAttr;
      attr->name = aname;
      attr->value = avalue;
      attr->parent = elem.get();
      elem->attrs.push_back(std::move(attr));
    }
    XmlNode* raw = elem.get();
    stack_.back()->children.push_back(std::move(elem));
    stack_.push_back(raw);
  }

  void EndElement() override { stack_.pop_back(); }

  void Text(const std::string& text) override {
    auto node = std::make_unique<XmlNode>();
    node->kind = NodeKind::kText;
    node->value = text;
    node->parent = stack_.back();
    stack_.back()->children.push_back(std::move(node));
  }

  std::unique_ptr<XmlDocument> Finish() {
    doc_->RenumberPre();
    return std::move(doc_);
  }

 private:
  std::unique_ptr<XmlDocument> doc_;
  std::vector<XmlNode*> stack_;
};

int64_t Renumber(XmlNode* node, int64_t pre, int32_t level) {
  node->pre = pre;
  node->level = level;
  int64_t next = pre + 1;
  for (auto& attr : node->attrs) {
    attr->pre = next++;
    attr->level = level + 1;
    attr->subtree_size = 0;
  }
  for (auto& child : node->children) {
    next = Renumber(child.get(), next, level + 1);
  }
  node->subtree_size = next - pre - 1;
  return next;
}

}  // namespace

std::string StringValue(const XmlNode* node) {
  switch (node->kind) {
    case NodeKind::kAttr:
    case NodeKind::kText:
    case NodeKind::kComment:
    case NodeKind::kPi:
      return node->value;
    default: {
      std::string out;
      AppendTextRecursive(node, &out);
      return out;
    }
  }
}

std::optional<double> DecimalValue(const XmlNode* node) {
  return ParseDecimal(StringValue(node));
}

void XmlDocument::RenumberPre() {
  node_count = Renumber(doc_node.get(), 0, 0);
}

Result<std::unique_ptr<XmlDocument>> ParseDom(const std::string& uri,
                                              std::string_view text,
                                              const ParseOptions& options) {
  DomBuilder builder(uri);
  XQJG_RETURN_NOT_OK(ParseXml(text, &builder, options));
  return builder.Finish();
}

std::unique_ptr<XmlNode> TableToDom(const DocTable& table, int64_t pre) {
  auto node = std::make_unique<XmlNode>();
  node->kind = table.kind(pre);
  node->name = table.name(pre);
  node->level = static_cast<int32_t>(table.level(pre));
  node->pre = pre;
  node->subtree_size = table.size(pre);
  if (node->kind == NodeKind::kAttr || node->kind == NodeKind::kText) {
    node->value = table.value(pre);
    return node;
  }
  int64_t child = pre + 1;
  const int64_t end = pre + table.size(pre);
  while (child <= end) {
    auto sub = TableToDom(table, child);
    sub->parent = node.get();
    if (sub->kind == NodeKind::kAttr) {
      node->attrs.push_back(std::move(sub));
    } else {
      node->children.push_back(std::move(sub));
    }
    child += table.size(child) + 1;
  }
  return node;
}

}  // namespace xqjg::xml
