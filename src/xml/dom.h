// Native in-memory XML node tree.
//
// This is the document representation of the pureXML™-style native engine
// (src/native/): documents are stored as node trees and queried by tree
// traversal (XSCAN), exactly like the paper's comparator system. It also
// backs the reference XQuery interpreter used for differential testing.
#ifndef XQJG_XML_DOM_H_
#define XQJG_XML_DOM_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/xml/infoset.h"
#include "src/xml/parser.h"

namespace xqjg::xml {

/// One node of the native tree. Attribute nodes live in `attrs` of their
/// owner element; all other children in `children`.
struct XmlNode {
  NodeKind kind = NodeKind::kElem;
  std::string name;   ///< tag / attribute name; URI for the DOC node
  std::string value;  ///< attribute value or text content
  XmlNode* parent = nullptr;
  std::vector<std::unique_ptr<XmlNode>> attrs;
  std::vector<std::unique_ptr<XmlNode>> children;

  /// Document-order rank within the owning document (DOC node = 0);
  /// assigned by ParseDom / XmlDocument::RenumberPre.
  int64_t pre = 0;
  int64_t subtree_size = 0;  ///< number of nodes below this one
  int32_t level = 0;

  bool IsElement(std::string_view tag) const {
    return kind == NodeKind::kElem && name == tag;
  }
};

/// Untyped string value of a node [XQuery §3.5.2]: concatenation of all
/// descendant text for elements/documents, `value` for attributes/text.
std::string StringValue(const XmlNode* node);

/// Typed-decimal view of StringValue; nullopt when the cast fails.
std::optional<double> DecimalValue(const XmlNode* node);

/// A parsed document: DOC node plus bookkeeping.
struct XmlDocument {
  std::string uri;
  std::unique_ptr<XmlNode> doc_node;
  int64_t node_count = 0;

  /// Reassigns pre/subtree_size/level in document order (after mutation).
  void RenumberPre();
};

/// Parses `text` into a native tree with URI `uri`.
Result<std::unique_ptr<XmlDocument>> ParseDom(const std::string& uri,
                                              std::string_view text,
                                              const ParseOptions& options = {});

/// Converts a DocTable subtree rooted at `pre` into a native tree fragment.
std::unique_ptr<XmlNode> TableToDom(const DocTable& table, int64_t pre);

}  // namespace xqjg::xml

#endif  // XQJG_XML_DOM_H_
