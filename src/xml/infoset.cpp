#include "src/xml/infoset.h"

#include <utility>

#include "src/common/str.h"
#include "src/xml/doc_block.h"

namespace xqjg::xml {

const char* NodeKindToString(NodeKind kind) {
  switch (kind) {
    case NodeKind::kDoc:
      return "DOC";
    case NodeKind::kElem:
      return "ELEM";
    case NodeKind::kAttr:
      return "ATTR";
    case NodeKind::kText:
      return "TEXT";
    case NodeKind::kComment:
      return "COMM";
    case NodeKind::kPi:
      return "PI";
  }
  return "?";
}

void DocTable::AppendRow(int64_t size, int64_t level, NodeKind kind,
                         std::string name, std::string value, bool has_value,
                         int64_t parent, int64_t root) {
  pre_size_.push_back(size);
  parent_.push_back(parent);
  root_.push_back(root);
  level_.push_back(static_cast<int32_t>(level));
  kind_.push_back(kind);
  name_.push_back(std::move(name));
  has_value_.push_back(has_value ? 1 : 0);
  if (has_value) {
    auto dec = ParseDecimal(value);
    data_.push_back(dec.value_or(0.0));
    has_data_.push_back(dec.has_value() ? 1 : 0);
  } else {
    data_.push_back(0.0);
    has_data_.push_back(0);
  }
  value_.push_back(std::move(value));
}

void DocTable::SetValue(int64_t pre, std::string value) {
  auto dec = ParseDecimal(value);
  data_[pre] = dec.value_or(0.0);
  has_data_[pre] = dec.has_value() ? 1 : 0;
  has_value_[pre] = 1;
  value_[pre] = std::move(value);
}

DocRow DocTable::Row(int64_t pre) const {
  DocRow row;
  row.pre = pre;
  row.size = size(pre);
  row.level = level(pre);
  row.parent = Parent(pre);
  row.root = Root(pre);
  row.kind = kind(pre);
  row.name = name(pre);
  row.value = value(pre);
  row.has_value = has_value(pre);
  row.data = data(pre);
  row.has_data = has_data(pre);
  return row;
}

const std::string& DocTable::EmptyString() {
  static const std::string kEmpty;
  return kEmpty;
}

DocTable DocTable::FromBlock(std::shared_ptr<const DocBlock> block) {
  DocTable t;
  const DocBlock& b = *block;
  t.view_rows_ = b.row_count();
  t.v_size_ = b.column(DocBlock::kSizeCol).ints().data();
  t.v_level_ = b.column(DocBlock::kLevel).ints().data();
  t.v_kind_ = b.column(DocBlock::kKind).ints().data();
  t.v_parent_ = b.column(DocBlock::kParent).ints().data();
  t.v_root_ = b.column(DocBlock::kRoot).ints().data();
  const ValueColumn& name = b.column(DocBlock::kName);
  t.v_name_strings_ = &name.dict().strings;
  t.v_name_codes_ = name.dict_codes().data();
  const ValueColumn& value = b.column(DocBlock::kValue);
  t.v_value_strings_ = &value.dict().strings;
  t.v_value_codes_ = value.dict_codes().data();
  t.v_value_nulls_ = value.null_mask();
  const ValueColumn& data = b.column(DocBlock::kData);
  t.v_data_ = data.doubles().data();
  t.v_data_nulls_ = data.null_mask();
  t.block_ = std::move(block);
  return t;
}

Result<int64_t> DocTable::FindDocument(const std::string& uri) const {
  if (block_) {
    // O(#documents) via run metadata instead of a full row scan.
    if (const DocRun* run = block_->FindRun(uri)) return run->base;
    return Status::NotFound("document not loaded: " + uri);
  }
  for (int64_t pre = 0; pre < row_count(); ++pre) {
    if (kind_[pre] == NodeKind::kDoc && name_[pre] == uri) return pre;
  }
  return Status::NotFound("document not loaded: " + uri);
}

std::vector<int64_t> DocTable::DocumentRoots() const {
  std::vector<int64_t> roots;
  if (block_) {
    roots.reserve(block_->runs().size());
    for (const DocRun& run : block_->runs()) roots.push_back(run.base);
    return roots;
  }
  for (int64_t pre = 0; pre < row_count(); ++pre) {
    if (kind_[pre] == NodeKind::kDoc) roots.push_back(pre);
  }
  return roots;
}

}  // namespace xqjg::xml
