#include "src/xml/infoset.h"

#include "src/common/str.h"

namespace xqjg::xml {

const char* NodeKindToString(NodeKind kind) {
  switch (kind) {
    case NodeKind::kDoc:
      return "DOC";
    case NodeKind::kElem:
      return "ELEM";
    case NodeKind::kAttr:
      return "ATTR";
    case NodeKind::kText:
      return "TEXT";
    case NodeKind::kComment:
      return "COMM";
    case NodeKind::kPi:
      return "PI";
  }
  return "?";
}

void DocTable::AppendRow(int64_t size, int64_t level, NodeKind kind,
                         std::string name, std::string value, bool has_value,
                         int64_t parent, int64_t root) {
  pre_size_.push_back(size);
  parent_.push_back(parent);
  root_.push_back(root);
  level_.push_back(static_cast<int32_t>(level));
  kind_.push_back(kind);
  name_.push_back(std::move(name));
  has_value_.push_back(has_value ? 1 : 0);
  if (has_value) {
    auto dec = ParseDecimal(value);
    data_.push_back(dec.value_or(0.0));
    has_data_.push_back(dec.has_value() ? 1 : 0);
  } else {
    data_.push_back(0.0);
    has_data_.push_back(0);
  }
  value_.push_back(std::move(value));
}

void DocTable::SetValue(int64_t pre, std::string value) {
  auto dec = ParseDecimal(value);
  data_[pre] = dec.value_or(0.0);
  has_data_[pre] = dec.has_value() ? 1 : 0;
  has_value_[pre] = 1;
  value_[pre] = std::move(value);
}

DocRow DocTable::Row(int64_t pre) const {
  DocRow row;
  row.pre = pre;
  row.size = pre_size_[pre];
  row.level = level_[pre];
  row.parent = parent_[pre];
  row.root = root_[pre];
  row.kind = kind_[pre];
  row.name = name_[pre];
  row.value = value_[pre];
  row.has_value = has_value_[pre] != 0;
  row.data = data_[pre];
  row.has_data = has_data_[pre] != 0;
  return row;
}

Result<int64_t> DocTable::FindDocument(const std::string& uri) const {
  for (int64_t pre = 0; pre < row_count(); ++pre) {
    if (kind_[pre] == NodeKind::kDoc && name_[pre] == uri) return pre;
  }
  return Status::NotFound("document not loaded: " + uri);
}

std::vector<int64_t> DocTable::DocumentRoots() const {
  std::vector<int64_t> roots;
  for (int64_t pre = 0; pre < row_count(); ++pre) {
    if (kind_[pre] == NodeKind::kDoc) roots.push_back(pre);
  }
  return roots;
}

}  // namespace xqjg::xml
