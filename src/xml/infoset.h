// Tabular XML infoset encoding (paper Fig. 2).
//
// Each XML node occupies one row of the `doc` table:
//   pre    unique document-order rank (key)
//   size   number of nodes in the subtree below the node
//   level  length of the path to the node's document root
//   kind   DOC / ELEM / ATTR / TEXT / COMM / PI
//   name   tag or attribute name; for DOC rows the document URI
//   value  untyped string value for nodes with size <= 1
//   data   result of casting `value` to xs:decimal, when that cast succeeds
//
// Encoding extensions: we additionally keep
//   parent  pre rank of the parent node (-1 for DOC rows) — pre/size/level
//           alone cannot express the sibling axes as a predicate between
//           two rows; with `parent`, following-sibling becomes
//           `parent = parent° AND pre > pre°`, still join-graph material;
//   root    pre rank of the owning document's DOC row — bounds the
//           following/preceding axes when one table hosts several trees.
//
// One DocTable may host several documents ("multiple occurrences of DOC in
// column kind"), distinguished by their URIs.
#ifndef XQJG_XML_INFOSET_H_
#define XQJG_XML_INFOSET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace xqjg::xml {

class DocBlock;  // shared typed/dict column block (src/xml/doc_block.h)

/// XML node kinds stored in the `kind` column.
enum class NodeKind : uint8_t {
  kDoc = 0,
  kElem = 1,
  kAttr = 2,
  kText = 3,
  kComment = 4,
  kPi = 5,
};

/// Renders a NodeKind the way the paper prints it ("DOC", "ELEM", ...).
const char* NodeKindToString(NodeKind kind);

/// One row of the doc table; used for row-at-a-time access and tests.
struct DocRow {
  int64_t pre = 0;
  int64_t size = 0;
  int64_t level = 0;
  int64_t parent = -1;
  int64_t root = 0;
  NodeKind kind = NodeKind::kElem;
  std::string name;
  std::string value;
  bool has_value = false;
  double data = 0.0;
  bool has_data = false;
};

/// \brief Columnar pre/size/level encoding of one or more XML documents.
///
/// Rows are stored in document order; `pre` equals the row position, which
/// makes pre-based point access O(1).
///
/// A DocTable is either BUILDER-backed (the parser appends into private
/// row vectors — the historical representation, still used for scratch
/// parses and ad-hoc test tables) or VIEW-backed over a shared DocBlock
/// (FromBlock): the accessors then read the block's typed columns in
/// place, so the row lane and the serializer work off the same bytes as
/// the columnar executors. View tables are read-only — the builder
/// mutators (AppendRow/SetSize/SetValue) must not be called on them.
class DocTable {
 public:
  /// Wraps a shared column block as a read-only DocTable view; no row
  /// payload is copied.
  static DocTable FromBlock(std::shared_ptr<const DocBlock> block);

  /// The shared block backing this table, or null for builder tables.
  const std::shared_ptr<const DocBlock>& block() const { return block_; }

  int64_t row_count() const {
    return block_ ? view_rows_ : static_cast<int64_t>(pre_size_.size());
  }

  /// Appends a row; `pre` is implied by the current row count.
  void AppendRow(int64_t size, int64_t level, NodeKind kind,
                 std::string name, std::string value, bool has_value,
                 int64_t parent = -1, int64_t root = 0);

  /// Patches `size` of an existing row (used by the single-pass builder).
  void SetSize(int64_t pre, int64_t size) { pre_size_[pre] = size; }
  /// Patches `value`/`data` of an existing row.
  void SetValue(int64_t pre, std::string value);

  int64_t size(int64_t pre) const {
    return block_ ? v_size_[pre] : pre_size_[pre];
  }
  int64_t level(int64_t pre) const {
    return block_ ? v_level_[pre] : level_[pre];
  }
  NodeKind kind(int64_t pre) const {
    return block_ ? static_cast<NodeKind>(v_kind_[pre]) : kind_[pre];
  }
  const std::string& name(int64_t pre) const {
    return block_ ? (*v_name_strings_)[v_name_codes_[pre]] : name_[pre];
  }
  const std::string& value(int64_t pre) const {
    if (!block_) return value_[pre];
    // Builder tables keep an empty string in valueless slots; the view
    // returns the same observable content for them.
    if (v_value_nulls_ && v_value_nulls_[pre]) return EmptyString();
    return (*v_value_strings_)[v_value_codes_[pre]];
  }
  bool has_value(int64_t pre) const {
    if (!block_) return has_value_[pre] != 0;
    return !(v_value_nulls_ && v_value_nulls_[pre]);
  }
  double data(int64_t pre) const { return block_ ? v_data_[pre] : data_[pre]; }
  bool has_data(int64_t pre) const {
    if (!block_) return has_data_[pre] != 0;
    return !(v_data_nulls_ && v_data_nulls_[pre]);
  }

  /// Materializes one row (tests / debugging).
  DocRow Row(int64_t pre) const;

  /// Pre rank of the DOC row whose URI is `uri`, or error if absent.
  Result<int64_t> FindDocument(const std::string& uri) const;

  /// Pre ranks of all DOC rows, in document order.
  std::vector<int64_t> DocumentRoots() const;

  /// True iff `descendant` lies in the subtree below `ancestor`
  /// (pre interval containment, Fig. 3).
  bool IsDescendant(int64_t ancestor, int64_t descendant) const {
    return ancestor < descendant && descendant <= ancestor + size(ancestor);
  }

  /// Parent pre rank of `pre`, or -1 for DOC rows. O(1).
  int64_t Parent(int64_t pre) const {
    return block_ ? v_parent_[pre] : parent_[pre];
  }

  /// Pre rank of the owning document's DOC row. O(1).
  int64_t Root(int64_t pre) const { return block_ ? v_root_[pre] : root_[pre]; }

 private:
  static const std::string& EmptyString();

  // Builder representation (empty for view tables).
  std::vector<int64_t> pre_size_;
  std::vector<int64_t> parent_;
  std::vector<int64_t> root_;
  std::vector<int32_t> level_;
  std::vector<NodeKind> kind_;
  std::vector<std::string> name_;
  std::vector<std::string> value_;
  std::vector<uint8_t> has_value_;
  std::vector<double> data_;
  std::vector<uint8_t> has_data_;

  // View representation: the owning block plus raw spans into its typed
  // columns, cached once by FromBlock so the accessors stay branch+load.
  // The pointers stay valid for the block's lifetime (columns immutable).
  std::shared_ptr<const DocBlock> block_;
  int64_t view_rows_ = 0;
  const int64_t* v_size_ = nullptr;
  const int64_t* v_level_ = nullptr;
  const int64_t* v_kind_ = nullptr;
  const int64_t* v_parent_ = nullptr;
  const int64_t* v_root_ = nullptr;
  const std::vector<std::string>* v_name_strings_ = nullptr;
  const uint32_t* v_name_codes_ = nullptr;
  const std::vector<std::string>* v_value_strings_ = nullptr;
  const uint32_t* v_value_codes_ = nullptr;
  const uint8_t* v_value_nulls_ = nullptr;  // null = no NULL rows
  const double* v_data_ = nullptr;
  const uint8_t* v_data_nulls_ = nullptr;  // null = no NULL rows
};

}  // namespace xqjg::xml

#endif  // XQJG_XML_INFOSET_H_
