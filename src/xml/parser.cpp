#include "src/xml/parser.h"

#include <cctype>

#include "src/common/str.h"

namespace xqjg::xml {
namespace {

/// Hand-written recursive-descent scanner over the XML text.
class XmlScanner {
 public:
  XmlScanner(std::string_view text, ContentHandler* handler,
             const ParseOptions& options)
      : text_(text), handler_(handler), options_(options) {}

  Status Run() {
    SkipProlog();
    SkipMisc();
    if (Eof()) return Err("document has no root element");
    XQJG_RETURN_NOT_OK(ParseElement());
    SkipMisc();
    if (!Eof()) return Err("trailing content after root element");
    if (depth_ != 0) return Err("unbalanced element nesting");
    return Status::OK();
  }

 private:
  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Lookahead(std::string_view s) const {
    return text_.substr(pos_, s.size()) == s;
  }
  void SkipWs() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  Status Err(const std::string& msg) const {
    // Report 1-based line numbers for usable diagnostics.
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    return Status::ParseError(StrPrintf("line %zu: %s", line, msg.c_str()));
  }

  void SkipProlog() {
    SkipWs();
    if (Lookahead("<?xml")) {
      size_t end = text_.find("?>", pos_);
      pos_ = (end == std::string_view::npos) ? text_.size() : end + 2;
    }
  }

  // Skips comments, PIs, DOCTYPE, and whitespace between markup.
  void SkipMisc() {
    while (true) {
      SkipWs();
      if (Lookahead("<!--")) {
        size_t end = text_.find("-->", pos_);
        pos_ = (end == std::string_view::npos) ? text_.size() : end + 3;
      } else if (Lookahead("<?")) {
        size_t end = text_.find("?>", pos_);
        pos_ = (end == std::string_view::npos) ? text_.size() : end + 2;
      } else if (Lookahead("<!DOCTYPE")) {
        size_t end = text_.find('>', pos_);
        pos_ = (end == std::string_view::npos) ? text_.size() : end + 1;
      } else {
        return;
      }
    }
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool IsNameChar(char c) {
    return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.';
  }

  Result<std::string> ParseName() {
    if (Eof() || !IsNameStart(Peek())) return Err("expected XML name");
    size_t start = pos_;
    while (!Eof() && IsNameChar(Peek())) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  Status DecodeEntities(std::string_view raw, std::string* out) {
    out->reserve(out->size() + raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out->push_back(raw[i]);
        ++i;
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) return Err("unterminated entity");
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "amp") *out += '&';
      else if (ent == "lt") *out += '<';
      else if (ent == "gt") *out += '>';
      else if (ent == "quot") *out += '"';
      else if (ent == "apos") *out += '\'';
      else if (!ent.empty() && ent[0] == '#') {
        long code = 0;
        if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
          code = std::strtol(std::string(ent.substr(2)).c_str(), nullptr, 16);
        } else {
          code = std::strtol(std::string(ent.substr(1)).c_str(), nullptr, 10);
        }
        // UTF-8 encode the code point.
        if (code < 0x80) {
          *out += static_cast<char>(code);
        } else if (code < 0x800) {
          *out += static_cast<char>(0xC0 | (code >> 6));
          *out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
          *out += static_cast<char>(0xE0 | (code >> 12));
          *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          *out += static_cast<char>(0x80 | (code & 0x3F));
        }
      } else {
        return Err("unknown entity &" + std::string(ent) + ";");
      }
      i = semi + 1;
    }
    return Status::OK();
  }

  Status ParseAttributes(
      std::vector<std::pair<std::string, std::string>>* attrs) {
    while (true) {
      SkipWs();
      if (Eof()) return Err("unterminated start tag");
      if (Peek() == '>' || Peek() == '/') return Status::OK();
      XQJG_ASSIGN_OR_RETURN(std::string name, ParseName());
      SkipWs();
      if (Eof() || Peek() != '=') return Err("expected '=' after attribute");
      ++pos_;
      SkipWs();
      if (Eof() || (Peek() != '"' && Peek() != '\'')) {
        return Err("expected quoted attribute value");
      }
      char quote = Peek();
      ++pos_;
      size_t start = pos_;
      while (!Eof() && Peek() != quote) ++pos_;
      if (Eof()) return Err("unterminated attribute value");
      std::string value;
      XQJG_RETURN_NOT_OK(
          DecodeEntities(text_.substr(start, pos_ - start), &value));
      ++pos_;
      attrs->emplace_back(std::move(name), std::move(value));
    }
  }

  Status ParseElement() {
    // Caller guarantees Peek() == '<'.
    ++pos_;
    XQJG_ASSIGN_OR_RETURN(std::string name, ParseName());
    std::vector<std::pair<std::string, std::string>> attrs;
    XQJG_RETURN_NOT_OK(ParseAttributes(&attrs));
    if (Peek() == '/') {
      ++pos_;
      if (Eof() || Peek() != '>') return Err("expected '>' in empty tag");
      ++pos_;
      handler_->StartElement(name, attrs);
      handler_->EndElement();
      return Status::OK();
    }
    ++pos_;  // consume '>'
    handler_->StartElement(name, attrs);
    ++depth_;
    XQJG_RETURN_NOT_OK(ParseContent(name));
    --depth_;
    handler_->EndElement();
    return Status::OK();
  }

  void EmitText(std::string text) {
    if (options_.strip_whitespace) {
      std::string_view trimmed = Trim(text);
      if (trimmed.empty()) return;
      text = std::string(trimmed);
    }
    handler_->Text(text);
  }

  Status ParseContent(const std::string& open_name) {
    std::string pending_text;
    auto flush = [&] {
      if (!pending_text.empty()) {
        EmitText(std::move(pending_text));
        pending_text.clear();
      }
    };
    while (true) {
      if (Eof()) return Err("unexpected end inside <" + open_name + ">");
      if (Peek() == '<') {
        if (Lookahead("</")) {
          flush();
          pos_ += 2;
          XQJG_ASSIGN_OR_RETURN(std::string name, ParseName());
          if (name != open_name) {
            return Err("mismatched close tag </" + name + "> for <" +
                       open_name + ">");
          }
          SkipWs();
          if (Eof() || Peek() != '>') return Err("expected '>' in close tag");
          ++pos_;
          return Status::OK();
        }
        if (Lookahead("<!--")) {
          flush();
          size_t end = text_.find("-->", pos_);
          if (end == std::string_view::npos) return Err("unterminated comment");
          if (options_.keep_comments_and_pis) {
            handler_->Comment(std::string(text_.substr(pos_ + 4, end - pos_ - 4)));
          }
          pos_ = end + 3;
          continue;
        }
        if (Lookahead("<![CDATA[")) {
          size_t end = text_.find("]]>", pos_);
          if (end == std::string_view::npos) return Err("unterminated CDATA");
          pending_text += text_.substr(pos_ + 9, end - pos_ - 9);
          pos_ = end + 3;
          continue;
        }
        if (Lookahead("<?")) {
          flush();
          size_t end = text_.find("?>", pos_);
          if (end == std::string_view::npos) return Err("unterminated PI");
          pos_ = end + 2;
          continue;
        }
        flush();
        XQJG_RETURN_NOT_OK(ParseElement());
        continue;
      }
      size_t next = text_.find_first_of('<', pos_);
      if (next == std::string_view::npos) next = text_.size();
      XQJG_RETURN_NOT_OK(
          DecodeEntities(text_.substr(pos_, next - pos_), &pending_text));
      pos_ = next;
    }
  }

  std::string_view text_;
  ContentHandler* handler_;
  ParseOptions options_;
  size_t pos_ = 0;
  int depth_ = 0;
};

/// ContentHandler that appends the pre/size/level encoding to a DocTable.
class DocTableBuilder : public ContentHandler {
 public:
  DocTableBuilder(DocTable* table, const std::string& uri) : table_(table) {
    const int64_t pre = table_->row_count();
    frames_.push_back({pre, 0, -1});
    table_->AppendRow(/*size=*/0, /*level=*/0, NodeKind::kDoc, uri, "",
                      /*has_value=*/false, /*parent=*/-1, /*root=*/pre);
  }

  void StartElement(
      const std::string& name,
      const std::vector<std::pair<std::string, std::string>>& attrs) override {
    const int64_t level = static_cast<int64_t>(frames_.size());
    const int64_t pre = table_->row_count();
    const int64_t root = frames_.front().pre;
    table_->AppendRow(0, level, NodeKind::kElem, name, "", false,
                      frames_.back().pre, root);
    for (const auto& [aname, avalue] : attrs) {
      table_->AppendRow(0, level + 1, NodeKind::kAttr, aname, avalue, true,
                        pre, root);
    }
    frames_.push_back({pre, 0, -1});
  }

  void EndElement() override {
    Frame frame = frames_.back();
    frames_.pop_back();
    const int64_t size = table_->row_count() - frame.pre - 1;
    table_->SetSize(frame.pre, size);
    // Elements with size <= 1 expose their untyped string value through the
    // value/data columns (paper §II-A); with size <= 1 the only possible
    // text content is a single direct text child.
    if (size <= 1) {
      table_->SetValue(frame.pre,
                       frame.text_child >= 0
                           ? table_->value(frame.text_child)
                           : std::string());
    }
  }

  void Text(const std::string& text) override {
    const int64_t level = static_cast<int64_t>(frames_.size());
    const int64_t pre = table_->row_count();
    table_->AppendRow(0, level, NodeKind::kText, "", text, true,
                      frames_.back().pre, frames_.front().pre);
    frames_.back().text_child = pre;
  }

  void Finish() {
    Frame doc = frames_.front();
    table_->SetSize(doc.pre, table_->row_count() - doc.pre - 1);
  }

 private:
  struct Frame {
    int64_t pre;
    int64_t n_children;
    int64_t text_child;  // pre of a direct text child, -1 if none
  };
  DocTable* table_;
  std::vector<Frame> frames_;
};

}  // namespace

Status ParseXml(std::string_view text, ContentHandler* handler,
                const ParseOptions& options) {
  XmlScanner scanner(text, handler, options);
  return scanner.Run();
}

Status LoadDocument(DocTable* table, const std::string& uri,
                    std::string_view text, const ParseOptions& options) {
  // Parse into a scratch table first so a parse error cannot leave `table`
  // half-populated.
  DocTable scratch;
  DocTableBuilder builder(&scratch, uri);
  XQJG_RETURN_NOT_OK(ParseXml(text, &builder, options));
  builder.Finish();
  const int64_t base = table->row_count();
  for (int64_t pre = 0; pre < scratch.row_count(); ++pre) {
    DocRow row = scratch.Row(pre);
    table->AppendRow(row.size, row.level, row.kind, std::move(row.name),
                     std::move(row.value), row.has_value,
                     row.parent < 0 ? -1 : row.parent + base,
                     row.root + base);
  }
  return Status::OK();
}

}  // namespace xqjg::xml
