// Single-pass XML parser for the XQJG document substrate.
//
// The parser supports the XML subset the paper's workloads need: elements,
// attributes, character data, CDATA sections, comments, processing
// instructions, and the five predefined entities plus numeric character
// references. DTDs and namespaces are out of scope (neither XMark nor the
// DBLP-style workloads require them).
//
// Parsing is event-driven (SAX style); two builders sit on top:
//   * LoadDocument  — appends the pre/size/level encoding to a DocTable
//   * (src/xml/dom.h) ParseDom — builds the native node tree
#ifndef XQJG_XML_PARSER_H_
#define XQJG_XML_PARSER_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/xml/infoset.h"

namespace xqjg::xml {

/// Receives parse events in document order.
class ContentHandler {
 public:
  virtual ~ContentHandler() = default;
  virtual void StartElement(
      const std::string& name,
      const std::vector<std::pair<std::string, std::string>>& attrs) = 0;
  virtual void EndElement() = 0;
  virtual void Text(const std::string& text) = 0;
  virtual void Comment(const std::string& text) { (void)text; }
  virtual void ProcessingInstruction(const std::string& target,
                                     const std::string& body) {
    (void)target;
    (void)body;
  }
};

struct ParseOptions {
  /// Drop whitespace-only text nodes and trim mixed-content boundaries;
  /// matches the whitespace handling behind the paper's Fig. 2 encoding.
  bool strip_whitespace = true;
  /// Emit Comment / ProcessingInstruction events (off: skipped entirely).
  bool keep_comments_and_pis = false;
};

/// Runs the parser over `text`, delivering events to `handler`.
Status ParseXml(std::string_view text, ContentHandler* handler,
                const ParseOptions& options = {});

/// Parses `text` and appends its pre/size/level encoding to `table` with a
/// DOC row named `uri`. On error the table is left unmodified.
Status LoadDocument(DocTable* table, const std::string& uri,
                    std::string_view text, const ParseOptions& options = {});

}  // namespace xqjg::xml

#endif  // XQJG_XML_PARSER_H_
