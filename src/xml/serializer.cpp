#include "src/xml/serializer.h"

#include "src/common/str.h"

namespace xqjg::xml {
namespace {

void SerializeTableNode(const DocTable& table, int64_t pre, std::string* out) {
  switch (table.kind(pre)) {
    case NodeKind::kText:
      *out += XmlEscapeText(table.value(pre));
      return;
    case NodeKind::kAttr:
      *out += table.name(pre);
      *out += "=\"";
      *out += XmlEscapeAttr(table.value(pre));
      *out += "\"";
      return;
    case NodeKind::kComment:
      *out += "<!--" + table.value(pre) + "-->";
      return;
    case NodeKind::kPi:
      *out += "<?" + table.name(pre) + "?>";
      return;
    case NodeKind::kDoc: {
      int64_t child = pre + 1;
      const int64_t end = pre + table.size(pre);
      while (child <= end) {
        SerializeTableNode(table, child, out);
        child += table.size(child) + 1;
      }
      return;
    }
    case NodeKind::kElem:
      break;
  }
  *out += "<" + table.name(pre);
  const int64_t end = pre + table.size(pre);
  int64_t child = pre + 1;
  // Attributes come first in pre order, directly after their element.
  while (child <= end && table.kind(child) == NodeKind::kAttr) {
    *out += " " + table.name(child) + "=\"" +
            XmlEscapeAttr(table.value(child)) + "\"";
    ++child;
  }
  if (child > end) {
    *out += "/>";
    return;
  }
  *out += ">";
  while (child <= end) {
    SerializeTableNode(table, child, out);
    child += table.size(child) + 1;
  }
  *out += "</" + table.name(pre) + ">";
}

void SerializeDomNode(const XmlNode* node, std::string* out) {
  switch (node->kind) {
    case NodeKind::kText:
      *out += XmlEscapeText(node->value);
      return;
    case NodeKind::kAttr:
      *out += node->name + "=\"" + XmlEscapeAttr(node->value) + "\"";
      return;
    case NodeKind::kComment:
      *out += "<!--" + node->value + "-->";
      return;
    case NodeKind::kPi:
      *out += "<?" + node->name + "?>";
      return;
    case NodeKind::kDoc:
      for (const auto& child : node->children) {
        SerializeDomNode(child.get(), out);
      }
      return;
    case NodeKind::kElem:
      break;
  }
  *out += "<" + node->name;
  for (const auto& attr : node->attrs) {
    *out += " " + attr->name + "=\"" + XmlEscapeAttr(attr->value) + "\"";
  }
  if (node->children.empty()) {
    *out += "/>";
    return;
  }
  *out += ">";
  for (const auto& child : node->children) {
    SerializeDomNode(child.get(), out);
  }
  *out += "</" + node->name + ">";
}

}  // namespace

std::string SerializeSubtree(const DocTable& table, int64_t pre) {
  std::string out;
  SerializeTableNode(table, pre, &out);
  return out;
}

std::string SerializeSequence(const DocTable& table,
                              const std::vector<int64_t>& pres) {
  std::string out;
  for (size_t i = 0; i < pres.size(); ++i) {
    if (i > 0) out += "\n";
    SerializeTableNode(table, pres[i], &out);
  }
  return out;
}

std::string SerializeSubtree(const XmlNode* node) {
  std::string out;
  SerializeDomNode(node, &out);
  return out;
}

std::string SerializeSequence(const std::vector<const XmlNode*>& nodes) {
  std::string out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += "\n";
    SerializeDomNode(nodes[i], &out);
  }
  return out;
}

}  // namespace xqjg::xml
