// XML serialization: turns doc-table subtrees or native tree fragments back
// into XML text (the final stage of query evaluation, paper §II-A).
#ifndef XQJG_XML_SERIALIZER_H_
#define XQJG_XML_SERIALIZER_H_

#include <string>
#include <vector>

#include "src/xml/dom.h"
#include "src/xml/infoset.h"

namespace xqjg::xml {

/// Serializes the subtree rooted at `pre` (a table scan in pre order).
/// Attribute nodes render as `name="value"`, text nodes as escaped text.
std::string SerializeSubtree(const DocTable& table, int64_t pre);

/// Serializes an XQuery result sequence: each node's subtree in order,
/// separated by newlines (the canonical form our tests compare against).
std::string SerializeSequence(const DocTable& table,
                              const std::vector<int64_t>& pres);

/// Native-tree counterparts (used by the native engine / interpreter).
std::string SerializeSubtree(const XmlNode* node);
std::string SerializeSequence(const std::vector<const XmlNode*>& nodes);

}  // namespace xqjg::xml

#endif  // XQJG_XML_SERIALIZER_H_
