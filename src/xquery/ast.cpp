#include "src/xquery/ast.h"

#include <algorithm>
#include <set>

#include "src/common/str.h"

namespace xqjg::xquery {

const char* AxisToString(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kSelf:
      return "self";
    case Axis::kFollowing:
      return "following";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kParent:
      return "parent";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kAncestorOrSelf:
      return "ancestor-or-self";
    case Axis::kPreceding:
      return "preceding";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
    case Axis::kAttribute:
      return "attribute";
  }
  return "?";
}

bool IsForwardAxis(Axis axis) {
  switch (axis) {
    case Axis::kParent:
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
    case Axis::kPreceding:
    case Axis::kPrecedingSibling:
      return false;
    default:
      return true;
  }
}

Axis DualAxis(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return Axis::kParent;
    case Axis::kParent:
      return Axis::kChild;
    case Axis::kDescendant:
      return Axis::kAncestor;
    case Axis::kAncestor:
      return Axis::kDescendant;
    case Axis::kDescendantOrSelf:
      return Axis::kAncestorOrSelf;
    case Axis::kAncestorOrSelf:
      return Axis::kDescendantOrSelf;
    case Axis::kFollowing:
      return Axis::kPreceding;
    case Axis::kPreceding:
      return Axis::kFollowing;
    case Axis::kFollowingSibling:
      return Axis::kPrecedingSibling;
    case Axis::kPrecedingSibling:
      return Axis::kFollowingSibling;
    case Axis::kSelf:
      return Axis::kSelf;
    case Axis::kAttribute:
      return Axis::kAttribute;  // owner relationship handled separately
  }
  return axis;
}

std::string NodeTest::ToString() const {
  switch (kind) {
    case TestKind::kName:
      return name;
    case TestKind::kWildcard:
      return "*";
    case TestKind::kAnyNode:
      return "node()";
    case TestKind::kText:
      return "text()";
    case TestKind::kElement:
      return name.empty() ? "element()" : "element(" + name + ")";
    case TestKind::kAttribute:
      return name.empty() ? "attribute()" : "attribute(" + name + ")";
    case TestKind::kComment:
      return "comment()";
    case TestKind::kPi:
      return "processing-instruction()";
  }
  return "?";
}

const char* CompOpToString(CompOp op) {
  switch (op) {
    case CompOp::kEq:
      return "=";
    case CompOp::kNe:
      return "!=";
    case CompOp::kLt:
      return "<";
    case CompOp::kLe:
      return "<=";
    case CompOp::kGt:
      return ">";
    case CompOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ExprKindToString(ExprKind kind) {
  switch (kind) {
    case ExprKind::kFor:
      return "for";
    case ExprKind::kLet:
      return "let";
    case ExprKind::kVar:
      return "var";
    case ExprKind::kIf:
      return "if";
    case ExprKind::kDoc:
      return "doc";
    case ExprKind::kStep:
      return "step";
    case ExprKind::kComp:
      return "comp";
    case ExprKind::kNumLit:
      return "numlit";
    case ExprKind::kStrLit:
      return "strlit";
    case ExprKind::kParam:
      return "param";
    case ExprKind::kEmptySeq:
      return "empty";
    case ExprKind::kPredicate:
      return "predicate";
    case ExprKind::kAnd:
      return "and";
    case ExprKind::kContextItem:
      return "context-item";
    case ExprKind::kRoot:
      return "root";
    case ExprKind::kDdo:
      return "fs:ddo";
    case ExprKind::kEbv:
      return "fn:boolean";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kFor:
      return "for $" + var + " in " + a->ToString() + " return " +
             b->ToString();
    case ExprKind::kLet:
      return "let $" + var + " := " + a->ToString() + " return " +
             b->ToString();
    case ExprKind::kVar:
      return "$" + var;
    case ExprKind::kIf:
      return "if (" + a->ToString() + ") then " + b->ToString() + " else ()";
    case ExprKind::kDoc:
      return "doc(\"" + str + "\")";
    case ExprKind::kStep:
      return a->ToString() + "/" + std::string(AxisToString(axis)) + "::" +
             test.ToString();
    case ExprKind::kComp:
      return a->ToString() + " " + CompOpToString(op) + " " + b->ToString();
    case ExprKind::kNumLit:
      return FormatDecimal(num);
    case ExprKind::kStrLit:
      return "\"" + str + "\"";
    case ExprKind::kParam:
      return "$" + var;
    case ExprKind::kEmptySeq:
      return "()";
    case ExprKind::kPredicate:
      return a->ToString() + "[" + b->ToString() + "]";
    case ExprKind::kAnd:
      return a->ToString() + " and " + b->ToString();
    case ExprKind::kContextItem:
      return ".";
    case ExprKind::kRoot:
      return "/";
    case ExprKind::kDdo:
      return "fs:ddo(" + a->ToString() + ")";
    case ExprKind::kEbv:
      return "fn:boolean(" + a->ToString() + ")";
  }
  return "?";
}

namespace {
std::shared_ptr<Expr> New(ExprKind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}
}  // namespace

ExprPtr MakeFor(std::string var, ExprPtr in, ExprPtr ret) {
  auto e = New(ExprKind::kFor);
  e->var = std::move(var);
  e->a = std::move(in);
  e->b = std::move(ret);
  return e;
}

ExprPtr MakeLet(std::string var, ExprPtr value, ExprPtr ret) {
  auto e = New(ExprKind::kLet);
  e->var = std::move(var);
  e->a = std::move(value);
  e->b = std::move(ret);
  return e;
}

ExprPtr MakeVar(std::string var) {
  auto e = New(ExprKind::kVar);
  e->var = std::move(var);
  return e;
}

ExprPtr MakeIf(ExprPtr cond, ExprPtr then_branch) {
  auto e = New(ExprKind::kIf);
  e->a = std::move(cond);
  e->b = std::move(then_branch);
  return e;
}

ExprPtr MakeDoc(std::string uri) {
  auto e = New(ExprKind::kDoc);
  e->str = std::move(uri);
  return e;
}

ExprPtr MakeStep(ExprPtr input, Axis axis, NodeTest test) {
  auto e = New(ExprKind::kStep);
  e->a = std::move(input);
  e->axis = axis;
  e->test = std::move(test);
  return e;
}

ExprPtr MakeComp(ExprPtr lhs, CompOp op, ExprPtr rhs) {
  auto e = New(ExprKind::kComp);
  e->a = std::move(lhs);
  e->op = op;
  e->b = std::move(rhs);
  return e;
}

ExprPtr MakeNumLit(double value) {
  auto e = New(ExprKind::kNumLit);
  e->num = value;
  return e;
}

ExprPtr MakeStrLit(std::string value) {
  auto e = New(ExprKind::kStrLit);
  e->str = std::move(value);
  return e;
}

ExprPtr MakeParam(std::string name, int slot, bool numeric) {
  auto e = New(ExprKind::kParam);
  e->var = std::move(name);
  e->slot = slot;
  e->numeric = numeric;
  return e;
}

ExprPtr MakeEmptySeq() { return New(ExprKind::kEmptySeq); }

ExprPtr MakePredicate(ExprPtr input, ExprPtr pred) {
  auto e = New(ExprKind::kPredicate);
  e->a = std::move(input);
  e->b = std::move(pred);
  return e;
}

ExprPtr MakeAnd(ExprPtr lhs, ExprPtr rhs) {
  auto e = New(ExprKind::kAnd);
  e->a = std::move(lhs);
  e->b = std::move(rhs);
  return e;
}

ExprPtr MakeContextItem() { return New(ExprKind::kContextItem); }
ExprPtr MakeRoot() { return New(ExprKind::kRoot); }

ExprPtr MakeDdo(ExprPtr input) {
  auto e = New(ExprKind::kDdo);
  e->a = std::move(input);
  return e;
}

ExprPtr MakeEbv(ExprPtr input) {
  auto e = New(ExprKind::kEbv);
  e->a = std::move(input);
  return e;
}

bool IsCore(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kPredicate:
    case ExprKind::kAnd:
    case ExprKind::kContextItem:
    case ExprKind::kRoot:
      return false;
    case ExprKind::kIf:
      // Core conditions are fn:boolean(...) or a general comparison.
      if (e.a->kind != ExprKind::kEbv && e.a->kind != ExprKind::kComp) {
        return false;
      }
      break;
    default:
      break;
  }
  if (e.a && !IsCore(*e.a)) return false;
  if (e.b && !IsCore(*e.b)) return false;
  return true;
}

namespace {
void CollectFree(const Expr& e, std::set<std::string>* bound,
                 std::vector<std::string>* out,
                 std::set<std::string>* seen) {
  switch (e.kind) {
    case ExprKind::kVar:
      if (!bound->count(e.var) && !seen->count(e.var)) {
        seen->insert(e.var);
        out->push_back(e.var);
      }
      return;
    case ExprKind::kFor:
    case ExprKind::kLet: {
      CollectFree(*e.a, bound, out, seen);
      const bool inserted = bound->insert(e.var).second;
      CollectFree(*e.b, bound, out, seen);
      if (inserted) bound->erase(e.var);
      return;
    }
    default:
      if (e.a) CollectFree(*e.a, bound, out, seen);
      if (e.b) CollectFree(*e.b, bound, out, seen);
  }
}
}  // namespace

std::vector<std::string> FreeVariables(const Expr& e) {
  std::set<std::string> bound;
  std::set<std::string> seen;
  std::vector<std::string> out;
  CollectFree(e, &bound, &out, &seen);
  return out;
}

namespace {
void CollectParamsInto(const Expr& e, std::vector<ParamDecl>* out) {
  if (e.kind == ExprKind::kParam) {
    for (const ParamDecl& p : *out) {
      if (p.slot == e.slot) return;
    }
    out->push_back(ParamDecl{e.var, e.slot, e.numeric});
    return;
  }
  if (e.a) CollectParamsInto(*e.a, out);
  if (e.b) CollectParamsInto(*e.b, out);
}
}  // namespace

std::vector<ParamDecl> CollectParams(const Expr& e) {
  std::vector<ParamDecl> out;
  CollectParamsInto(e, &out);
  std::sort(out.begin(), out.end(),
            [](const ParamDecl& a, const ParamDecl& b) {
              return a.slot < b.slot;
            });
  return out;
}

Result<ExprPtr> BindParams(const ExprPtr& e, const std::vector<Value>& params) {
  if (!e) return e;
  if (e->kind == ExprKind::kParam) {
    if (e->slot < 0 || static_cast<size_t>(e->slot) >= params.size()) {
      return Status::Internal("parameter $" + e->var +
                              " has no bound value (slot out of range)");
    }
    const Value& v = params[static_cast<size_t>(e->slot)];
    switch (v.type()) {
      case ValueType::kNull:
        return MakeEmptySeq();
      case ValueType::kInt:
      case ValueType::kDouble:
        return MakeNumLit(v.AsDouble());
      case ValueType::kString:
        return MakeStrLit(v.AsString());
    }
    return Status::Internal("unhandled value type for parameter $" + e->var);
  }
  XQJG_ASSIGN_OR_RETURN(ExprPtr a, BindParams(e->a, params));
  XQJG_ASSIGN_OR_RETURN(ExprPtr b, BindParams(e->b, params));
  if (a == e->a && b == e->b) return e;  // untouched subtree: share it
  auto copy = std::make_shared<Expr>(*e);
  copy->a = std::move(a);
  copy->b = std::move(b);
  return ExprPtr(std::move(copy));
}

}  // namespace xqjg::xquery
