// Abstract syntax for the XQuery fragment of paper Fig. 1 plus the
// extensions the paper's evaluation uses (let, where, predicates,
// conjunction, abbreviated steps, node-node general comparisons).
//
// The same Expr type represents both the surface syntax produced by the
// parser and the XQuery Core form produced by Normalize() (src/xquery/
// normalize.h); Core restricts the constructor set (see IsCore()).
#ifndef XQJG_XQUERY_AST_H_
#define XQJG_XQUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"

namespace xqjg::xquery {

/// The 12 XPath axes (full axis feature, paper §I).
enum class Axis {
  kChild,
  kDescendant,
  kDescendantOrSelf,
  kSelf,
  kFollowing,
  kFollowingSibling,
  kParent,
  kAncestor,
  kAncestorOrSelf,
  kPreceding,
  kPrecedingSibling,
  kAttribute,
};

const char* AxisToString(Axis axis);

/// True for axes that advance in document order (the reverse axes are
/// parent, ancestor, ancestor-or-self, preceding, preceding-sibling).
bool IsForwardAxis(Axis axis);

/// The dual of an axis under the pre/size interval encoding
/// (descendant <-> ancestor, child <-> parent, following <-> preceding, ...);
/// self is its own dual. Used by the engine's axis-reversal tests.
Axis DualAxis(Axis axis);

/// XPath node tests.
enum class TestKind {
  kName,      ///< name test: `bidder`, `*` uses kWildcard
  kWildcard,  ///< `*` (principal node kind of the axis)
  kAnyNode,   ///< node()
  kText,      ///< text()
  kElement,   ///< element() / element(n)
  kAttribute, ///< attribute() / attribute(n)
  kComment,   ///< comment()
  kPi,        ///< processing-instruction()
};

struct NodeTest {
  TestKind kind = TestKind::kName;
  std::string name;  ///< set for kName / kElement(n) / kAttribute(n)

  std::string ToString() const;
};

/// General comparison operators (grammar rule [60]).
enum class CompOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompOpToString(CompOp op);  ///< "=", "!=", ...

enum class ExprKind {
  // ---- shared between surface and Core ----
  kFor,          ///< for $var in `a` return `b`
  kLet,          ///< let $var := `a` return `b`
  kVar,          ///< $var
  kIf,           ///< if (`a`) then `b` else ()   (else branch fixed to ())
  kDoc,          ///< doc("str")
  kStep,         ///< `a` / axis::test
  kComp,         ///< `a` op `b`  (b literal or expression)
  kNumLit,       ///< numeric literal (comparison operand only)
  kStrLit,       ///< string literal  (comparison operand only)
  kParam,        ///< $var declared external (comparison operand only);
                 ///< a parameter marker bound to a value at Execute time
  kEmptySeq,     ///< ()
  // ---- surface only (removed by Normalize) ----
  kPredicate,    ///< `a` [ `b` ]
  kAnd,          ///< `a` and `b` (condition position only)
  kContextItem,  ///< `.` / implicit leading step context
  kRoot,         ///< leading "/" or "//" of an absolute path
  // ---- Core only (introduced by Normalize) ----
  kDdo,          ///< fs:ddo(`a`)  — distinct-doc-order
  kEbv,          ///< fn:boolean(`a`) — effective boolean value
};

const char* ExprKindToString(ExprKind kind);

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// One AST node. Immutable after construction (normalization builds new
/// trees rather than mutating).
struct Expr {
  ExprKind kind;
  std::string var;   ///< kFor/kLet/kVar/kParam: variable QName (without '$')
  std::string str;   ///< kDoc: URI; kStrLit: value
  double num = 0.0;  ///< kNumLit
  int slot = -1;     ///< kParam: binding slot (prolog declaration order)
  bool numeric = false;  ///< kParam: declared numeric (compares `data`, not
                         ///< `value` — same split as num vs str literals)
  Axis axis = Axis::kChild;  ///< kStep
  NodeTest test;             ///< kStep
  CompOp op = CompOp::kEq;   ///< kComp
  ExprPtr a;  ///< first child (see ExprKind comments)
  ExprPtr b;  ///< second child

  /// Renders the expression in XQuery-like concrete syntax.
  std::string ToString() const;
};

// ---- constructors ----
ExprPtr MakeFor(std::string var, ExprPtr in, ExprPtr ret);
ExprPtr MakeLet(std::string var, ExprPtr value, ExprPtr ret);
ExprPtr MakeVar(std::string var);
ExprPtr MakeIf(ExprPtr cond, ExprPtr then_branch);
ExprPtr MakeDoc(std::string uri);
ExprPtr MakeStep(ExprPtr input, Axis axis, NodeTest test);
ExprPtr MakeComp(ExprPtr lhs, CompOp op, ExprPtr rhs);
ExprPtr MakeNumLit(double value);
ExprPtr MakeStrLit(std::string value);
ExprPtr MakeParam(std::string name, int slot, bool numeric);
ExprPtr MakeEmptySeq();
ExprPtr MakePredicate(ExprPtr input, ExprPtr pred);
ExprPtr MakeAnd(ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeContextItem();
ExprPtr MakeRoot();
ExprPtr MakeDdo(ExprPtr input);
ExprPtr MakeEbv(ExprPtr input);

/// True iff `e` uses only the Core constructor subset (post-normalization
/// invariant checked by the compiler).
bool IsCore(const Expr& e);

/// Free variables of `e` (used by tests and the compiler's environment
/// plumbing). Parameters (kParam) are not free variables — they are bound
/// at Execute time, not by an enclosing FLWOR clause.
std::vector<std::string> FreeVariables(const Expr& e);

/// One external parameter used by a query (`declare variable $n external`
/// references surviving into the AST as kParam nodes).
struct ParamDecl {
  std::string name;      ///< without '$'
  int slot = -1;         ///< binding slot (prolog declaration order)
  bool numeric = false;  ///< declared numeric (xs:integer/decimal/double)
};

/// The parameters referenced by `e`, ordered by slot (each slot once).
/// Externals that are declared but never referenced do not appear.
std::vector<ParamDecl> CollectParams(const Expr& e);

/// Substitutes every kParam marker in `e` with the literal for its bound
/// value (`params` indexed by slot): numeric values become kNumLit,
/// strings kStrLit, and NULL becomes kEmptySeq — a comparison against the
/// empty sequence is existentially false, matching the relational lanes'
/// NULL-matches-nothing contract. Unchanged subtrees are shared with the
/// input (the AST is immutable), so binding costs O(path-to-marker)
/// allocations. This is how the native lanes serve parameterized queries:
/// the interpreter evaluates literals, so the cursor binds a literal tree
/// per execution while the cached PreparedQuery keeps the marked Core.
Result<ExprPtr> BindParams(const ExprPtr& e, const std::vector<Value>& params);

}  // namespace xqjg::xquery

#endif  // XQJG_XQUERY_AST_H_
