#include "src/xquery/lexer.h"

#include <cctype>
#include <cstdlib>

#include "src/common/str.h"

namespace xqjg::xquery {

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kName: return "name";
    case TokenKind::kVariable: return "variable";
    case TokenKind::kString: return "string";
    case TokenKind::kNumber: return "number";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kSlashSlash: return "'//'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kAxisSep: return "'::'";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kAssign: return "':='";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kEof: return "end of query";
  }
  return "?";
}

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

// QName characters; ':' is handled separately so '::' stays a token.
bool IsNameChar(char c) {
  return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view query) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = query.size();
  auto err = [&](const std::string& msg) {
    return Status::ParseError(StrPrintf("offset %zu: %s", i, msg.c_str()));
  };
  while (i < n) {
    char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Nestable XQuery comments "(: ... :)".
    if (c == '(' && i + 1 < n && query[i + 1] == ':') {
      int depth = 1;
      i += 2;
      while (i < n && depth > 0) {
        if (query[i] == '(' && i + 1 < n && query[i + 1] == ':') {
          ++depth;
          i += 2;
        } else if (query[i] == ':' && i + 1 < n && query[i + 1] == ')') {
          --depth;
          i += 2;
        } else {
          ++i;
        }
      }
      if (depth > 0) return err("unterminated comment");
      continue;
    }
    Token tok;
    tok.offset = i;
    switch (c) {
      case '/':
        if (i + 1 < n && query[i + 1] == '/') {
          tok.kind = TokenKind::kSlashSlash;
          i += 2;
        } else {
          tok.kind = TokenKind::kSlash;
          ++i;
        }
        break;
      case '(':
        tok.kind = TokenKind::kLParen;
        ++i;
        break;
      case ')':
        tok.kind = TokenKind::kRParen;
        ++i;
        break;
      case '[':
        tok.kind = TokenKind::kLBracket;
        ++i;
        break;
      case ']':
        tok.kind = TokenKind::kRBracket;
        ++i;
        break;
      case '@':
        tok.kind = TokenKind::kAt;
        ++i;
        break;
      case ',':
        tok.kind = TokenKind::kComma;
        ++i;
        break;
      case ';':
        tok.kind = TokenKind::kSemicolon;
        ++i;
        break;
      case '*':
        tok.kind = TokenKind::kStar;
        ++i;
        break;
      case '=':
        tok.kind = TokenKind::kEq;
        ++i;
        break;
      case '!':
        if (i + 1 < n && query[i + 1] == '=') {
          tok.kind = TokenKind::kNe;
          i += 2;
        } else {
          return err("stray '!'");
        }
        break;
      case '<':
        if (i + 1 < n && query[i + 1] == '=') {
          tok.kind = TokenKind::kLe;
          i += 2;
        } else {
          tok.kind = TokenKind::kLt;
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && query[i + 1] == '=') {
          tok.kind = TokenKind::kGe;
          i += 2;
        } else {
          tok.kind = TokenKind::kGt;
          ++i;
        }
        break;
      case ':':
        if (i + 1 < n && query[i + 1] == ':') {
          tok.kind = TokenKind::kAxisSep;
          i += 2;
        } else if (i + 1 < n && query[i + 1] == '=') {
          tok.kind = TokenKind::kAssign;
          i += 2;
        } else {
          return err("stray ':'");
        }
        break;
      case '$': {
        ++i;
        if (i >= n || !IsNameStart(query[i])) {
          return err("expected variable name after '$'");
        }
        size_t start = i;
        while (i < n && IsNameChar(query[i])) ++i;
        // Allow one ':' for prefixed names like $fs:dot.
        if (i < n && query[i] == ':' && i + 1 < n && IsNameStart(query[i + 1]) &&
            query[i + 1] != ':') {
          ++i;
          while (i < n && IsNameChar(query[i])) ++i;
        }
        tok.kind = TokenKind::kVariable;
        tok.text = std::string(query.substr(start, i - start));
        break;
      }
      case '"':
      case '\'': {
        char quote = c;
        ++i;
        std::string value;
        while (i < n && query[i] != quote) {
          value += query[i];
          ++i;
        }
        if (i >= n) return err("unterminated string literal");
        ++i;
        tok.kind = TokenKind::kString;
        tok.text = std::move(value);
        break;
      }
      case '.': {
        if (i + 1 < n && std::isdigit(static_cast<unsigned char>(query[i + 1]))) {
          // fallthrough to number handling below
        } else {
          tok.kind = TokenKind::kDot;
          ++i;
          break;
        }
        [[fallthrough]];
      }
      default: {
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
          size_t start = i;
          while (i < n && (std::isdigit(static_cast<unsigned char>(query[i])) ||
                           query[i] == '.')) {
            ++i;
          }
          tok.kind = TokenKind::kNumber;
          tok.text = std::string(query.substr(start, i - start));
          auto num = ParseDecimal(tok.text);
          if (!num) return err("malformed numeric literal " + tok.text);
          tok.num = *num;
        } else if (IsNameStart(c)) {
          size_t start = i;
          while (i < n && IsNameChar(query[i])) ++i;
          // Allow one ':' for prefixed QNames like xs:string; '::' stays
          // the axis separator (same rule as variable names above).
          if (i < n && query[i] == ':' && i + 1 < n &&
              IsNameStart(query[i + 1])) {
            ++i;
            while (i < n && IsNameChar(query[i])) ++i;
          }
          tok.kind = TokenKind::kName;
          tok.text = std::string(query.substr(start, i - start));
        } else {
          return err(StrPrintf("unexpected character '%c'", c));
        }
      }
    }
    out.push_back(std::move(tok));
  }
  Token eof;
  eof.kind = TokenKind::kEof;
  eof.offset = n;
  out.push_back(eof);
  return out;
}

}  // namespace xqjg::xquery
