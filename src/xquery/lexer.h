// Tokenizer for the XQuery fragment.
#ifndef XQJG_XQUERY_LEXER_H_
#define XQJG_XQUERY_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace xqjg::xquery {

enum class TokenKind {
  kName,        // QName (also keywords; keyword-ness is contextual in XQuery)
  kVariable,    // $name
  kString,      // "..." or '...'
  kNumber,      // 123, 4.5
  kSlash,       // /
  kSlashSlash,  // //
  kLParen,      // (
  kRParen,      // )
  kLBracket,    // [
  kRBracket,    // ]
  kAxisSep,     // ::
  kAt,          // @
  kComma,       // ,
  kDot,         // .
  kStar,        // *
  kAssign,      // :=
  kSemicolon,   // ; (prolog declaration separator)
  kEq,          // =
  kNe,          // !=
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  kEof,
};

const char* TokenKindToString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;   // name / string value / number text
  double num = 0.0;   // kNumber
  size_t offset = 0;  // byte offset into the query text (diagnostics)
};

/// Tokenizes `query`. XQuery comments `(: ... :)` (nestable) are skipped.
Result<std::vector<Token>> Tokenize(std::string_view query);

}  // namespace xqjg::xquery

#endif  // XQJG_XQUERY_LEXER_H_
