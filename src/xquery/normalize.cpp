#include "src/xquery/normalize.h"

#include "src/common/str.h"

namespace xqjg::xquery {
namespace {

class Normalizer {
 public:
  explicit Normalizer(const NormalizeOptions& options) : options_(options) {}

  Result<ExprPtr> Norm(const ExprPtr& e) {
    switch (e->kind) {
      case ExprKind::kFor: {
        XQJG_ASSIGN_OR_RETURN(ExprPtr in, Norm(e->a));
        XQJG_ASSIGN_OR_RETURN(ExprPtr ret, Norm(e->b));
        return MakeFor(e->var, std::move(in), std::move(ret));
      }
      case ExprKind::kLet: {
        XQJG_ASSIGN_OR_RETURN(ExprPtr value, Norm(e->a));
        XQJG_ASSIGN_OR_RETURN(ExprPtr ret, Norm(e->b));
        return MakeLet(e->var, std::move(value), std::move(ret));
      }
      case ExprKind::kVar:
      case ExprKind::kDoc:
      case ExprKind::kParam:
      case ExprKind::kEmptySeq:
        return e;
      case ExprKind::kIf: {
        XQJG_ASSIGN_OR_RETURN(ExprPtr then_branch, Norm(e->b));
        return NormCondition(e->a, std::move(then_branch));
      }
      case ExprKind::kStep:
        return NormStep(e);
      case ExprKind::kPredicate: {
        XQJG_ASSIGN_OR_RETURN(ExprPtr input, Norm(e->a));
        std::string dot = FreshDot();
        dots_.push_back(dot);
        auto then_branch = MakeVar(dot);
        auto norm_if = NormCondition(e->b, std::move(then_branch));
        dots_.pop_back();
        if (!norm_if.ok()) return norm_if.status();
        return MakeFor(dot, std::move(input), std::move(norm_if).value());
      }
      case ExprKind::kContextItem:
        if (!dots_.empty()) return MakeVar(dots_.back());
        [[fallthrough]];
      case ExprKind::kRoot:
        if (options_.context_document.empty()) {
          return Status::InvalidArgument(
              "absolute path or '.' used but no context document configured");
        }
        return MakeDoc(options_.context_document);
      case ExprKind::kComp:
        return Status::NotSupported(
            "general comparison used outside a condition position");
      case ExprKind::kAnd:
        return Status::NotSupported(
            "'and' used outside a condition position");
      case ExprKind::kNumLit:
      case ExprKind::kStrLit:
        return Status::NotSupported(
            "literal used outside a comparison operand position");
      case ExprKind::kDdo:
      case ExprKind::kEbv:
        // Already Core (idempotent normalization).
        {
          XQJG_ASSIGN_OR_RETURN(ExprPtr inner, Norm(e->a));
          return e->kind == ExprKind::kDdo ? MakeDdo(std::move(inner))
                                           : MakeEbv(std::move(inner));
        }
    }
    return Status::Internal("unhandled expression kind in Normalize");
  }

 private:
  std::string FreshDot() {
    return StrPrintf("fs:dot%d", ++dot_counter_);
  }

  // Step normalization: fs:ddo around the step; `//name` (i.e.
  // descendant-or-self::node()/child::name) fuses to descendant::name.
  Result<ExprPtr> NormStep(const ExprPtr& e) {
    const Expr* input = e->a.get();
    const bool fuse =
        e->axis == Axis::kChild && input->kind == ExprKind::kStep &&
        input->axis == Axis::kDescendantOrSelf &&
        input->test.kind == TestKind::kAnyNode;
    if (fuse) {
      XQJG_ASSIGN_OR_RETURN(ExprPtr base, Norm(input->a));
      return MakeDdo(MakeStep(std::move(base), Axis::kDescendant, e->test));
    }
    XQJG_ASSIGN_OR_RETURN(ExprPtr base, Norm(e->a));
    return MakeDdo(MakeStep(std::move(base), e->axis, e->test));
  }

  // Builds `if (C') then then_branch else ()` with C' in Core form;
  // conjunctions become nested ifs.
  Result<ExprPtr> NormCondition(const ExprPtr& cond, ExprPtr then_branch) {
    switch (cond->kind) {
      case ExprKind::kAnd: {
        XQJG_ASSIGN_OR_RETURN(ExprPtr inner,
                              NormCondition(cond->b, std::move(then_branch)));
        return NormCondition(cond->a, std::move(inner));
      }
      case ExprKind::kComp: {
        XQJG_ASSIGN_OR_RETURN(ExprPtr lhs, NormOperand(cond->a));
        XQJG_ASSIGN_OR_RETURN(ExprPtr rhs, NormOperand(cond->b));
        return MakeIf(MakeComp(std::move(lhs), cond->op, std::move(rhs)),
                      std::move(then_branch));
      }
      default: {
        // Existential condition over a node sequence: fn:boolean(fs:ddo(..)).
        XQJG_ASSIGN_OR_RETURN(ExprPtr seq, Norm(cond));
        return MakeIf(MakeEbv(std::move(seq)), std::move(then_branch));
      }
    }
  }

  Result<ExprPtr> NormOperand(const ExprPtr& e) {
    if (e->kind == ExprKind::kNumLit || e->kind == ExprKind::kStrLit ||
        e->kind == ExprKind::kParam) {
      return e;
    }
    return Norm(e);
  }

  NormalizeOptions options_;
  std::vector<std::string> dots_;
  int dot_counter_ = 0;
};

}  // namespace

Result<ExprPtr> Normalize(const ExprPtr& expr,
                          const NormalizeOptions& options) {
  Normalizer normalizer(options);
  XQJG_ASSIGN_OR_RETURN(ExprPtr core, normalizer.Norm(expr));
  if (!IsCore(*core)) {
    return Status::Internal("normalization produced a non-Core expression: " +
                            core->ToString());
  }
  return core;
}

}  // namespace xqjg::xquery
