// XQuery Core normalization (paper §II-C, [8 §4.2.1, §3.4.3]).
//
// Rewrites the surface AST into the Core form the loop-lifting compiler
// expects:
//   * every XPath location step is wrapped in fs:ddo(...) — document order
//     and duplicate removal made explicit,
//   * conditional expressions compute effective boolean values explicitly
//     (fn:boolean), with general comparisons kept as-is,
//   * predicates  e[p]  desugar to
//       for $fs:dotN in e return if (p') then $fs:dotN else (),
//   * `and` conjunctions desugar to nested ifs,
//   * `//` over a name test fuses to a descendant step,
//   * absolute paths and query-level context items resolve to
//     doc(<context document>).
#ifndef XQJG_XQUERY_NORMALIZE_H_
#define XQJG_XQUERY_NORMALIZE_H_

#include <string>

#include "src/common/status.h"
#include "src/xquery/ast.h"

namespace xqjg::xquery {

struct NormalizeOptions {
  /// URI substituted for absolute paths ("/site/...") and query-level
  /// context items. May stay empty for queries that name their documents
  /// via doc(...).
  std::string context_document;
};

/// Normalizes a surface AST into XQuery Core; the result satisfies
/// IsCore().
Result<ExprPtr> Normalize(const ExprPtr& expr,
                          const NormalizeOptions& options = {});

}  // namespace xqjg::xquery

#endif  // XQJG_XQUERY_NORMALIZE_H_
